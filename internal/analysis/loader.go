package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, type-checked package — the unit an
// analyzer sees. Files are parsed with comments (the ignore mechanism
// needs them); Info may be partially populated when a dependency failed
// to type-check, so analyzers must degrade gracefully around nil types.
type Package struct {
	Path  string // import path the package was checked under
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects soft type-check failures. The suite surfaces
	// them only when an analyzer would otherwise be blind.
	TypeErrors []error
}

// Loader parses and type-checks packages using nothing outside the
// standard library: repo-internal import paths resolve against the
// module root (read from go.mod), everything else resolves through
// go/build against GOROOT — type-checking the standard library from
// source. Checked dependencies are cached by directory, so a whole-repo
// run pays for net/http exactly once.
type Loader struct {
	ModRoot string
	ModPath string
	fset    *token.FileSet
	ctx     build.Context
	byDir   map[string]*types.Package
	inFly   map[string]bool
	errs    map[string]error
}

// NewLoader builds a loader for the module rooted at modRoot, reading
// the module path from its go.mod.
func NewLoader(modRoot string) (*Loader, error) {
	abs, err := filepath.Abs(modRoot)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: reading go.mod: %w", err)
	}
	modPath := modulePath(string(data))
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", abs)
	}
	ctx := build.Default
	// Cgo variants of std packages (net, crypto/x509) pull in C; the
	// pure-Go fallbacks type-check identically for our purposes.
	ctx.CgoEnabled = false
	return &Loader{
		ModRoot: abs,
		ModPath: modPath,
		fset:    token.NewFileSet(),
		ctx:     ctx,
		byDir:   map[string]*types.Package{},
		inFly:   map[string]bool{},
		errs:    map[string]error{},
	}, nil
}

// modulePath extracts the module path from go.mod content.
func modulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// Expand resolves package patterns to directories. Supported forms are
// Go-tool-like but deliberately small: "./..." and "./dir/..." walk for
// directories containing non-test Go files (skipping testdata, hidden
// directories, and _-prefixed directories); anything else is taken as a
// single directory path. Patterns are relative to base.
func (l *Loader) Expand(base string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		rest, recursive := strings.CutSuffix(pat, "...")
		rest = strings.TrimSuffix(rest, "/")
		if rest == "" || rest == "." {
			rest = "."
		}
		root := rest
		if !filepath.IsAbs(root) {
			root = filepath.Join(base, root)
		}
		if !recursive {
			if !hasGoFiles(root) {
				return nil, fmt.Errorf("analysis: no Go files in %s", root)
			}
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test Go source file.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir parses and type-checks the package in dir under import path
// asPath (empty derives it from the directory's position in the
// module). Only non-test files are loaded: the invariants lint enforces
// are production-code invariants, and tests legitimately use wall
// clocks, raw reads, and unordered iteration.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if asPath == "" {
		rel, err := filepath.Rel(l.ModRoot, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("analysis: %s is outside module %s", dir, l.ModRoot)
		}
		asPath = l.ModPath
		if rel != "." {
			asPath = l.ModPath + "/" + filepath.ToSlash(rel)
		}
	}
	bp, err := l.ctx.ImportDir(abs, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(abs, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg := &Package{Path: asPath, Dir: abs, Fset: l.fset, Files: files}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		// Collect-and-continue: a missing dependency should degrade one
		// analyzer's precision, not abort the whole lint run.
		Error: func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(asPath, l.fset, files, info)
	pkg.Types, pkg.Info = tpkg, info
	return pkg, nil
}

// Lookup returns the named object from an importable package, or nil.
// Analyzers use it to reach types they compare against structurally
// (net.Conn) without hard-coding assumptions.
func (l *Loader) Lookup(pkgPath, name string) types.Object {
	pkg, err := l.ImportFrom(pkgPath, l.ModRoot, 0)
	if err != nil {
		return nil
	}
	return pkg.Scope().Lookup(name)
}

// dirFor maps an import path to its source directory: module-internal
// paths against ModRoot, the rest (std lib and its vendored deps)
// through go/build relative to the importing directory.
func (l *Loader) dirFor(path, srcDir string) (string, error) {
	if path == l.ModPath {
		return l.ModRoot, nil
	}
	if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
		return filepath.Join(l.ModRoot, filepath.FromSlash(rest)), nil
	}
	p, err := l.ctx.Import(path, srcDir, build.FindOnly)
	if err != nil {
		return "", err
	}
	return p.Dir, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModRoot, 0)
}

// ImportFrom implements types.ImporterFrom: it type-checks the imported
// package from source, recursively, caching by resolved directory so
// vendored std-lib paths and their canonical spellings share one
// checked package.
func (l *Loader) ImportFrom(path, srcDir string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	dir, err := l.dirFor(path, srcDir)
	if err != nil {
		return nil, err
	}
	if p, ok := l.byDir[dir]; ok {
		return p, nil
	}
	if err, ok := l.errs[dir]; ok {
		return nil, err
	}
	if l.inFly[dir] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.inFly[dir] = true
	defer delete(l.inFly, dir)
	pkg, err := l.checkDep(path, dir)
	if err != nil {
		l.errs[dir] = err
		return nil, err
	}
	l.byDir[dir] = pkg
	return pkg, nil
}

// checkDep parses and fully type-checks a dependency package (without
// comments — only analyzed packages need them).
func (l *Loader) checkDep(path, dir string) (*types.Package, error) {
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: l, FakeImportC: true}
	return conf.Check(path, l.fset, files, nil)
}
