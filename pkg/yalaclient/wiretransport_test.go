package yalaclient

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// deadWireAddr returns a loopback address nothing is listening on.
func deadWireAddr(t *testing.T) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()
	return addr
}

// TestWireFallbackToHTTP: a client configured with a wire address that
// stops answering must serve every Predict over HTTP transparently —
// same result, no error — and park the wire path so subsequent calls
// skip the dead dial entirely.
func TestWireFallbackToHTTP(t *testing.T) {
	var httpPredicts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		httpPredicts.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"nf":"ACL","backend":"analytic","predicted_pps":123.0,"solo_pps":456.0}`))
	}))
	defer ts.Close()

	c := New(ts.URL, WithWire(deadWireAddr(t)))
	defer c.Close()
	if !c.WireActive() {
		t.Fatal("wire path not active before the first dial")
	}
	res, err := c.Predict(context.Background(), ModelID{NF: "ACL"}, "", PredictParams{})
	if err != nil {
		t.Fatalf("predict with dead wire listener: %v", err)
	}
	if res.PredictedPPS != 123.0 {
		t.Fatalf("fallback answer wrong: %+v", res)
	}
	if httpPredicts.Load() != 1 {
		t.Fatalf("HTTP saw %d predicts, want 1", httpPredicts.Load())
	}
	// The transport failure parks the wire path: the next call goes
	// straight to HTTP without re-dialing the dead listener.
	if c.WireActive() {
		t.Fatal("dead wire listener did not park the wire path")
	}
	if _, err := c.Predict(context.Background(), ModelID{NF: "ACL"}, "", PredictParams{}); err != nil {
		t.Fatalf("second predict while parked: %v", err)
	}
	if httpPredicts.Load() != 2 {
		t.Fatalf("HTTP saw %d predicts after park, want 2", httpPredicts.Load())
	}
}

// TestResponseTooLarge: a server answering more than maxResponseBytes
// must produce ErrResponseTooLarge, not an unbounded buffer.
func TestResponseTooLarge(t *testing.T) {
	chunk := make([]byte, 1<<20)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		for i := 0; i < 11; i++ { // 11 MiB > the 10 MiB cap
			if _, err := w.Write(chunk); err != nil {
				return
			}
		}
	}))
	defer ts.Close()
	c := New(ts.URL)
	_, err := c.Predict(context.Background(), ModelID{NF: "ACL"}, "", PredictParams{})
	if !errors.Is(err, ErrResponseTooLarge) {
		t.Fatalf("oversized response produced %v, want ErrResponseTooLarge", err)
	}
}
