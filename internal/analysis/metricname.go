package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// metricNameRE is the naming law for every registered series: a
// subsystem prefix the dashboards key on, then lower_snake.
var metricNameRE = regexp.MustCompile(`^(yala|gateway|cluster)_[a-z0-9_]+$`)

// registrars maps obs.Registry method names to the index where label
// pairs begin in the argument list.
var registrars = map[string]int{
	"Counter":     1, // (name, labels...)
	"CounterFunc": 2, // (name, fn, labels...)
	"GaugeFunc":   2, // (name, fn, labels...)
	"Histogram":   2, // (name, buckets, labels...)
}

// metricSite is one fully-literal CounterFunc/GaugeFunc registration.
type metricSite struct {
	key string
	pos token.Pos
}

// Metricname checks every obs.Registry registration in the repo: the
// series name must be a string literal (so the suite can verify it)
// matching ^(yala|gateway|cluster)_[a-z0-9_]+$, and the same
// fully-literal (name, labels) series must not be registered by
// CounterFunc/GaugeFunc at two different sites — the second silently
// replaces the first's read function. Counter/Histogram are
// get-or-create by design (hot paths share series), so only the
// func-registering forms participate in the duplicate check.
func Metricname() *Analyzer {
	var sites []metricSite
	a := &Analyzer{
		Name: "metricname",
		Doc:  "enforces metric naming (^(yala|gateway|cluster)_[a-z0-9_]+$) and flags duplicate func registrations",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				labelStart, isRegistrar := registrars[sel.Sel.Name]
				if !isRegistrar || len(call.Args) < 1 {
					return true
				}
				if !isObsRegistry(pass.TypeOf(sel.X)) {
					return true
				}
				name, ok := stringLit(call.Args[0])
				if !ok {
					pass.Reportf(call.Args[0].Pos(), "metric name must be a string literal so the suite can verify it")
					return true
				}
				if !metricNameRE.MatchString(name) {
					pass.Reportf(call.Args[0].Pos(), "metric name %q does not match ^(yala|gateway|cluster)_[a-z0-9_]+$", name)
				}
				if sel.Sel.Name != "CounterFunc" && sel.Sel.Name != "GaugeFunc" {
					return true
				}
				if key, ok := literalSeriesKey(name, call.Args[labelStart:]); ok {
					sites = append(sites, metricSite{key: key, pos: call.Args[0].Pos()})
				}
				return true
			})
		}
	}
	a.Finish = func(rep *Reporter) {
		first := map[string]metricSite{}
		// Sites arrive in package-load order; sort by position so "first
		// registration" is stable and the duplicate is always the later
		// source location.
		sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
		for _, s := range sites {
			if prev, dup := first[s.key]; dup {
				p := rep.fset.Position(prev.pos)
				rep.Reportf(s.pos, "series %s already registered at %s:%d; a second func registration silently replaces the first",
					s.key, rep.relFile(p.Filename), p.Line)
				continue
			}
			first[s.key] = s
		}
	}
	return a
}

// isObsRegistry reports whether t is (a pointer to) the obs package's
// Registry type; matched by path suffix so the check survives a module
// rename.
func isObsRegistry(t types.Type) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil &&
		(obj.Pkg().Path() == "internal/obs" || strings.HasSuffix(obj.Pkg().Path(), "/internal/obs"))
}

// stringLit unwraps e as a string literal.
func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// literalSeriesKey canonicalizes (name, label pairs) when every label
// key and value is a string literal; registrations with computed label
// values (per-tenant, per-replica) are legitimately repeated shapes and
// sit out the duplicate check.
func literalSeriesKey(name string, labelArgs []ast.Expr) (string, bool) {
	if len(labelArgs)%2 != 0 {
		return "", false
	}
	pairs := make([]string, 0, len(labelArgs)/2)
	for i := 0; i < len(labelArgs); i += 2 {
		k, ok := stringLit(labelArgs[i])
		if !ok {
			return "", false
		}
		v, ok := stringLit(labelArgs[i+1])
		if !ok {
			return "", false
		}
		pairs = append(pairs, fmt.Sprintf("%s=%q", k, v))
	}
	sort.Strings(pairs)
	if len(pairs) == 0 {
		return name, true
	}
	return name + "{" + strings.Join(pairs, ",") + "}", true
}
