package patmatch

// DefaultRules is an L7-filter-style signature set: protocol keywords and
// byte sequences typical of application-protocol classifiers. The paper's
// regex NFs all share one ruleset [5]; the NFs here share this one.
//
// Patterns are plain strings (the RXP accelerator compiles regexes to a
// DFA; our Aho-Corasick stand-in plays the role of that compiled form).
var DefaultRules = []string{
	"GET ", "POST ", "PUT ", "DELETE ", "HEAD ",
	"HTTP/1.0", "HTTP/1.1", "Host: ", "User-Agent:", "Content-Length:",
	"SSH-2.0", "SSH-1.99",
	"220 ", "USER ", "PASS ", "RETR ", "STOR ",
	"EHLO", "MAIL FROM:", "RCPT TO:", "DATA\r\n",
	"\x16\x03\x01", "\x16\x03\x03", // TLS client hello versions
	"BitTorrent protocol",
	"RTSP/1.0", "SETUP rtsp",
	"INVITE sip:", "REGISTER sip:",
	"\x00\x00\x00\x00\x00\x01\x00\x00", // DNS-ish
	"SELECT ", "INSERT INTO", "DROP TABLE",
	"cmd.exe", "/bin/sh", "etc/passwd",
	"%x90%x90", "\x90\x90\x90\x90",
}

// CompileDefault compiles DefaultRules. It panics on failure, which cannot
// happen for the static set; the panic guards against future edits
// introducing an empty pattern.
func CompileDefault() *Matcher {
	m, err := Compile(DefaultRules)
	if err != nil {
		panic("patmatch: default ruleset failed to compile: " + err.Error())
	}
	return m
}
