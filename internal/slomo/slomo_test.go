package slomo

import (
	"testing"

	"repro/internal/ml"
	"repro/internal/nfbench"
	"repro/internal/nicsim"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

func quickCfg() Config {
	return Config{Samples: 80, GBR: ml.DefaultGBRConfig(), Seed: 1}
}

func TestSLOMOAccurateAtTrainingProfile(t *testing.T) {
	tb := testbed.New(nicsim.BlueField2(), 21)
	m, err := Train(tb, "FlowStats", traffic.Default, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	w, err := tb.Workload("FlowStats", traffic.Default)
	if err != nil {
		t.Fatal(err)
	}
	var pred, truth []float64
	for _, c := range []testbed.MemContention{
		{CAR: 60e6, WSS: 3 << 20},
		{CAR: 140e6, WSS: 9 << 20},
		{CAR: 220e6, WSS: 13 << 20},
	} {
		got, err := tb.WithMemBench(w, c.CAR, c.WSS)
		if err != nil {
			t.Fatal(err)
		}
		benchSolo, err := tb.RunSolo(nfbench.MemBench(c.CAR, c.WSS))
		if err != nil {
			t.Fatal(err)
		}
		pred = append(pred, m.Predict(benchSolo.Counters))
		truth = append(truth, got.Throughput)
	}
	if mape := ml.MAPE(pred, truth); mape > 12 {
		t.Fatalf("SLOMO MAPE %.1f%% at its own training profile", mape)
	}
}

func TestSLOMODegradesOffProfile(t *testing.T) {
	// The paper's core claim about SLOMO: accuracy collapses when the
	// traffic deviates far from training (Fig. 3b), even with
	// extrapolation, for flow-sensitive NFs.
	tb := testbed.New(nicsim.BlueField2(), 22)
	m, err := Train(tb, "FlowStats", traffic.Default, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	far := traffic.Default.With(traffic.AttrFlows, 300000)
	w, err := tb.Workload("FlowStats", far)
	if err != nil {
		t.Fatal(err)
	}
	soloFar, err := tb.RunSolo(w)
	if err != nil {
		t.Fatal(err)
	}
	c := testbed.MemContention{CAR: 140e6, WSS: 9 << 20}
	truth, err := tb.WithMemBench(w, c.CAR, c.WSS)
	if err != nil {
		t.Fatal(err)
	}
	benchSolo, err := tb.RunSolo(nfbench.MemBench(c.CAR, c.WSS))
	if err != nil {
		t.Fatal(err)
	}
	raw := m.Predict(benchSolo.Counters)
	extr := m.PredictExtrapolated(benchSolo.Counters, soloFar.Throughput)
	rawErr := abs(raw-truth.Throughput) / truth.Throughput
	extrErr := abs(extr-truth.Throughput) / truth.Throughput
	if extrErr >= rawErr {
		t.Logf("extrapolation did not help here: raw %.1f%% extr %.1f%%", rawErr*100, extrErr*100)
	}
	if rawErr < 0.10 {
		t.Fatalf("raw SLOMO unexpectedly accurate far off-profile: %.1f%%", rawErr*100)
	}
}

func TestSLOMOExtrapolationScalesBySolo(t *testing.T) {
	m := &Model{SoloAtTrain: 2e6}
	// No GBR: Predict would panic; test the scaling arithmetic only via
	// a model with a trained regressor.
	tb := testbed.New(nicsim.BlueField2(), 23)
	trained, err := Train(tb, "ACL", traffic.Default, Config{Samples: 20, GBR: ml.DefaultGBRConfig(), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	comp := nicsim.Counters{L2CRD: 70e6, L2CWR: 30e6, WSS: 4 << 20}
	base := trained.Predict(comp)
	scaled := trained.PredictExtrapolated(comp, trained.SoloAtTrain/2)
	if rel := abs(scaled-base/2) / (base / 2); rel > 1e-9 {
		t.Fatalf("extrapolation not proportional: %v vs %v", scaled, base/2)
	}
	// Degenerate solo baselines fall back to the raw prediction.
	if got := trained.PredictExtrapolated(comp, 0); got != base {
		t.Fatalf("zero solo fallback = %v, want %v", got, base)
	}
	_ = m
}

func TestSLOMOTrainErrors(t *testing.T) {
	tb := testbed.New(nicsim.BlueField2(), 24)
	if _, err := Train(tb, "FlowStats", traffic.Default, Config{Samples: 0}); err == nil {
		t.Fatal("expected sample-budget error")
	}
	if _, err := Train(tb, "NoSuchNF", traffic.Default, quickCfg()); err == nil {
		t.Fatal("expected unknown-NF error")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
