// Diagnosis: sweep FlowMonitor's traffic MTBR under fixed contention and
// watch the bottleneck shift from the memory subsystem to the regex
// accelerator — the paper's §7.5.2 use case. Yala tracks the shift; a
// memory-only model cannot.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/nfbench"
	"repro/internal/nicsim"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

func main() {
	tb := testbed.New(nicsim.BlueField2(), 3)
	fmt.Println("training Yala model for FlowMonitor...")
	model, err := core.NewTrainer(tb, core.DefaultTrainConfig()).Train("FlowMonitor")
	if err != nil {
		log.Fatal(err)
	}

	// Fixed contention: a memory hog and moderate regex pressure.
	memB := nfbench.MemBench(120e6, 10<<20)
	regexB := nfbench.RegexBench(0.58e6, 1000, 2000, 1)
	memSolo, err := tb.RunSolo(memB)
	if err != nil {
		log.Fatal(err)
	}
	regexSolo, err := tb.RunSolo(regexB)
	if err != nil {
		log.Fatal(err)
	}
	comps := []core.Competitor{
		core.CompetitorFromMeasurement(memSolo),
		core.CompetitorFromMeasurement(regexSolo),
	}

	fmt.Printf("\n%8s  %12s  %12s  %10s\n", "MTBR", "predicted", "actual", "tput(Mpps)")
	for _, mtbr := range []float64{0, 80, 200, 400, 600, 800, 1000, 1100} {
		prof := traffic.Default.With(traffic.AttrMTBR, mtbr)
		pred := model.Predict(prof, comps)
		w, err := tb.Workload("FlowMonitor", prof)
		if err != nil {
			log.Fatal(err)
		}
		ms, err := tb.Run(w, memB, regexB)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8.0f  %12v  %12v  %10.3f\n",
			mtbr, pred.Bottleneck, ms[0].Bottleneck, ms[0].Throughput/1e6)
	}
}
