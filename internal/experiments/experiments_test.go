package experiments

import (
	"strings"
	"testing"

	"repro/internal/nicsim"
	"repro/internal/traffic"
)

// tinyLab keeps experiment smoke tests fast.
func tinyLab() *Lab { return NewLab(51, 0.05) }

func TestFig4EquilibriumShape(t *testing.T) {
	l := tinyLab()
	rep, err := Fig4(l)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.String(), "regex-NF@194m/MB") {
		t.Fatalf("missing series:\n%s", rep)
	}
}

func TestFig5Patterns(t *testing.T) {
	l := tinyLab()
	rep, err := Fig5(l)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	if !strings.Contains(s, "pipeline p-NF") || !strings.Contains(s, "run-to-completion r-NF") {
		t.Fatalf("missing sections:\n%s", s)
	}
}

func TestFig6Shape(t *testing.T) {
	l := tinyLab()
	rep, err := Fig6(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Lines) < 10 {
		t.Fatalf("thin report:\n%s", rep)
	}
}

func TestFig1Runs(t *testing.T) {
	l := tinyLab()
	rep, err := Fig1(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Lines) < 11 { // header + sep + 9 NFs
		t.Fatalf("unexpected row count:\n%s", rep)
	}
}

func TestTable4CompositionOrdering(t *testing.T) {
	l := tinyLab()
	rep, err := Table4(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Lines) != 6 { // header + sep + 4 rows
		t.Fatalf("unexpected table:\n%s", rep)
	}
}

func TestTable7DiagnosisBeatsBaseline(t *testing.T) {
	l := tinyLab()
	rep, err := Table7(l)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.String())
}

func TestTable9Pensando(t *testing.T) {
	rep, err := Table9(51, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.String(), "Firewall") {
		t.Fatalf("missing Firewall row:\n%s", rep)
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, err := ByID(tinyLab(), "fig99"); err == nil {
		t.Fatal("expected error")
	}
}

func TestIDsComplete(t *testing.T) {
	if len(IDs()) != 16 {
		t.Fatalf("IDs() = %v", IDs())
	}
}

func TestSynthSourceTrafficDependence(t *testing.T) {
	src := synthSource(synthBuilders["NF2"], nicsim.Pipeline)
	lo, err := src(traffic.Profile{Flows: 16000, PktSize: 256, MTBR: 100})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := src(traffic.Profile{Flows: 16000, PktSize: 1500, MTBR: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if hi.Accel[nicsim.AccelRegex].MatchesPerReq <= lo.Accel[nicsim.AccelRegex].MatchesPerReq {
		t.Fatal("regex matches insensitive to MTBR")
	}
	if hi.Accel[nicsim.AccelCompress].BytesPerReq <= lo.Accel[nicsim.AccelCompress].BytesPerReq {
		t.Fatal("compression bytes insensitive to packet size")
	}
}
