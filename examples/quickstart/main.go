// Quickstart: train a Yala model for FlowMonitor, predict its throughput
// when co-located with NIDS and FlowStats, and compare against the
// simulated ground truth — the equivalent of the paper artifact's
// train.py / predict.py walk-through.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/nicsim"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

func main() {
	// A testbed binds the simulated BlueField-2 to the NF catalog.
	tb := testbed.New(nicsim.BlueField2(), 42)

	// Offline phase (§3): adaptive profiling + model fitting. This runs
	// FlowMonitor's real packet-processing code over generated traffic,
	// co-runs it with mem-bench and regex-bench, and fits the
	// per-resource models.
	fmt.Println("training Yala model for FlowMonitor...")
	model, err := core.NewTrainer(tb, core.DefaultTrainConfig()).Train("FlowMonitor")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  detected execution pattern: %v\n", model.Pattern)
	am := model.Accels[nicsim.AccelRegex]
	fmt.Printf("  regex model: n=%g queues, t(m) = %.0fns + %.3fns·MTBR\n",
		am.Queues, am.T0*1e9, am.A*1e9)

	// Online phase: describe the co-location. Competitor contention
	// levels come from their offline solo profiles.
	var comps []core.Competitor
	ws := []*nicsim.Workload{}
	target, err := tb.Workload("FlowMonitor", traffic.Default)
	if err != nil {
		log.Fatal(err)
	}
	ws = append(ws, target)
	for _, name := range []string{"NIDS", "FlowStats"} {
		w, err := tb.Workload(name, traffic.Default)
		if err != nil {
			log.Fatal(err)
		}
		solo, err := tb.RunSolo(w)
		if err != nil {
			log.Fatal(err)
		}
		comps = append(comps, core.CompetitorFromMeasurement(solo))
		ws = append(ws, w)
	}

	pred := model.Predict(traffic.Default, comps)
	fmt.Printf("\npredicted solo throughput:       %.3f Mpps\n", pred.Solo/1e6)
	fmt.Printf("predicted co-located throughput: %.3f Mpps\n", pred.Throughput/1e6)
	fmt.Printf("predicted bottleneck:            %v\n", pred.Bottleneck)

	// Ground truth from the simulator.
	ms, err := tb.Run(ws...)
	if err != nil {
		log.Fatal(err)
	}
	truth := ms[0].Throughput
	errPct := 100 * abs(pred.Throughput-truth) / truth
	fmt.Printf("measured co-located throughput:  %.3f Mpps\n", truth/1e6)
	fmt.Printf("prediction error:                %.1f%%\n", errPct)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
