package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteProm renders every registered series in Prometheus text
// exposition format 0.0.4: one # TYPE line per family, series sorted by
// (family, labels), histograms as cumulative _bucket/_sum/_count with a
// +Inf bucket always present.
func (r *Registry) WriteProm(w io.Writer) error {
	bw := bufio.NewWriter(w)
	lastFamily := ""
	for _, s := range r.snapshot() {
		if s.family != lastFamily {
			fmt.Fprintf(bw, "# TYPE %s %s\n", s.family, s.kind.promType())
			lastFamily = s.family
		}
		switch s.kind {
		case kindCounter:
			writeSample(bw, s.family, s.labels, "", float64(s.counter.Load()))
		case kindCounterFunc, kindGaugeFunc:
			writeSample(bw, s.family, s.labels, "", s.fn())
		case kindHistogram:
			h := s.hist
			cum := h.snapshotCumulative()
			for i, u := range h.uppers {
				writeSample(bw, s.family+"_bucket", s.labels,
					`le="`+formatValue(u)+`"`, float64(cum[i]))
			}
			writeSample(bw, s.family+"_bucket", s.labels, `le="+Inf"`, float64(cum[len(cum)-1]))
			writeSample(bw, s.family+"_sum", s.labels, "", h.Sum())
			writeSample(bw, s.family+"_count", s.labels, "", float64(h.Count()))
		}
	}
	return bw.Flush()
}

// writeSample emits one `name{labels} value` line; extra is an
// additional rendered label (the histogram le) appended after labels.
func writeSample(w io.Writer, name, labels, extra string, v float64) {
	switch {
	case labels == "" && extra == "":
		fmt.Fprintf(w, "%s %s\n", name, formatValue(v))
	case labels == "":
		fmt.Fprintf(w, "%s{%s} %s\n", name, extra, formatValue(v))
	case extra == "":
		fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatValue(v))
	default:
		fmt.Fprintf(w, "%s{%s,%s} %s\n", name, labels, extra, formatValue(v))
	}
}

// Sample is one parsed exposition line: a fully qualified series name
// (including any _bucket/_sum/_count suffix), its rendered label block
// (without braces, may be empty), and the value.
type Sample struct {
	Name   string
	Labels string
	Value  float64
}

// Key is the series identity used for merging.
func (s Sample) Key() string { return s.Name + "\x00" + s.Labels }

// Exposition is a parsed /metrics payload: the samples in input order
// plus the # TYPE declarations seen.
type Exposition struct {
	Samples []Sample
	Types   map[string]string // family -> counter|gauge|histogram
}

// ParseExposition parses Prometheus text exposition format. It is a
// tolerant single-pass parser for the subset WriteProm emits (plus
// HELP lines and blank lines); malformed lines are skipped rather than
// failing the whole scrape.
func ParseExposition(r io.Reader) (*Exposition, error) {
	exp := &Exposition{Types: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if f := strings.Fields(line); len(f) >= 4 && f[1] == "TYPE" {
				exp.Types[f[2]] = f[3]
			}
			continue
		}
		name, labels, rest, ok := splitSeries(line)
		if !ok {
			continue
		}
		valStr := strings.Fields(rest) // value [timestamp]
		if len(valStr) == 0 {
			continue
		}
		v, err := strconv.ParseFloat(valStr[0], 64)
		if err != nil {
			continue
		}
		exp.Samples = append(exp.Samples, Sample{Name: name, Labels: labels, Value: v})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return exp, nil
}

// splitSeries splits `name{labels} value` into its parts. The label
// block is returned verbatim (quotes included); the closing brace is
// located respecting quoted values so label values containing '}' do
// not truncate the block.
func splitSeries(line string) (name, labels, rest string, ok bool) {
	brace := strings.IndexByte(line, '{')
	sp := strings.IndexAny(line, " \t")
	if brace == -1 || (sp != -1 && sp < brace) {
		if sp == -1 {
			return "", "", "", false
		}
		return line[:sp], "", line[sp+1:], true
	}
	name = line[:brace]
	inQuote, esc := false, false
	for i := brace + 1; i < len(line); i++ {
		c := line[i]
		switch {
		case esc:
			esc = false
		case c == '\\' && inQuote:
			esc = true
		case c == '"':
			inQuote = !inQuote
		case c == '}' && !inQuote:
			return name, line[brace+1 : i], strings.TrimSpace(line[i+1:]), true
		}
	}
	return "", "", "", false
}

// MergeRule decides how a family's samples combine across sources.
// WriteProm-shaped counters and histogram components sum; gauges that
// are not meaningfully summable (uptime, start time) use max/min.
type MergeRule int

const (
	MergeSum MergeRule = iota
	MergeMax
	MergeMin
)

// MergeExpositions merges scraped expositions from several sources into
// one, combining samples with identical (name, labels) per the rule
// returned by ruleFor (called with the sample name minus any
// _bucket/_sum/_count histogram suffix). Output order is the first
// exposition's order with unseen series from later sources appended;
// TYPE lines are carried over.
func MergeExpositions(exps []*Exposition, ruleFor func(family string) MergeRule) *Exposition {
	out := &Exposition{Types: map[string]string{}}
	idx := map[string]int{}
	for _, e := range exps {
		if e == nil {
			continue
		}
		for fam, typ := range e.Types {
			if _, ok := out.Types[fam]; !ok {
				out.Types[fam] = typ
			}
		}
		for _, s := range e.Samples {
			k := s.Key()
			i, seen := idx[k]
			if !seen {
				idx[k] = len(out.Samples)
				out.Samples = append(out.Samples, s)
				continue
			}
			switch ruleFor(familyOf(s.Name)) {
			case MergeMax:
				if s.Value > out.Samples[i].Value {
					out.Samples[i].Value = s.Value
				}
			case MergeMin:
				if s.Value < out.Samples[i].Value {
					out.Samples[i].Value = s.Value
				}
			default:
				out.Samples[i].Value += s.Value
			}
		}
	}
	return out
}

// familyOf strips the histogram component suffixes off a sample name so
// merge rules key on the declared family.
func familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// Render writes a (possibly merged) exposition back to text, with
// TYPE lines emitted before each family's first sample.
func (e *Exposition) Render(w io.Writer) error {
	bw := bufio.NewWriter(w)
	typed := map[string]bool{}
	for _, s := range e.Samples {
		fam := familyOf(s.Name)
		if !typed[fam] {
			typed[fam] = true
			if t, ok := e.Types[fam]; ok {
				fmt.Fprintf(bw, "# TYPE %s %s\n", fam, t)
			}
		}
		writeSample(bw, s.Name, s.Labels, "", s.Value)
	}
	return bw.Flush()
}

// Value returns the value of the first sample whose name matches and
// whose label block contains labelSubstr (empty matches any), plus
// whether one was found. Convenience for tests and smoke checks.
func (e *Exposition) Value(name, labelSubstr string) (float64, bool) {
	for _, s := range e.Samples {
		if s.Name == name && (labelSubstr == "" || strings.Contains(s.Labels, labelSubstr)) {
			return s.Value, true
		}
	}
	return 0, false
}

// HistogramSeries extracts one labeled histogram from the exposition:
// the finite bucket upper bounds (ascending) with cumulative counts,
// aligned so cum has one extra trailing element for +Inf, plus sum and
// count. labelSubstr selects among multiple label sets of the family.
func (e *Exposition) HistogramSeries(family, labelSubstr string) (uppers []float64, cum []uint64, sum float64, count uint64, ok bool) {
	type bkt struct {
		le float64
		v  uint64
	}
	var (
		finite []bkt
		inf    uint64
		hasInf bool
	)
	for _, s := range e.Samples {
		if labelSubstr != "" && !strings.Contains(s.Labels, labelSubstr) {
			continue
		}
		switch s.Name {
		case family + "_bucket":
			le, found := labelValue(s.Labels, "le")
			if !found {
				continue
			}
			if le == "+Inf" {
				inf, hasInf = uint64(s.Value), true
				continue
			}
			u, err := strconv.ParseFloat(le, 64)
			if err != nil {
				continue
			}
			finite = append(finite, bkt{u, uint64(s.Value)})
		case family + "_sum":
			sum = s.Value
		case family + "_count":
			count, ok = uint64(s.Value), true
		}
	}
	if !ok && !hasInf && len(finite) == 0 {
		return nil, nil, 0, 0, false
	}
	sort.Slice(finite, func(i, j int) bool { return finite[i].le < finite[j].le })
	for _, b := range finite {
		uppers = append(uppers, b.le)
		cum = append(cum, b.v)
	}
	if !hasInf {
		inf = count
	}
	cum = append(cum, inf)
	return uppers, cum, sum, count, true
}

// labelValue extracts one label's value from a rendered label block.
func labelValue(labels, key string) (string, bool) {
	for rest := labels; rest != ""; {
		eq := strings.Index(rest, `="`)
		if eq == -1 {
			return "", false
		}
		k := strings.TrimLeft(rest[:eq], ",")
		vStart := eq + 2
		i, esc := vStart, false
		for ; i < len(rest); i++ {
			c := rest[i]
			if esc {
				esc = false
				continue
			}
			if c == '\\' {
				esc = true
				continue
			}
			if c == '"' {
				break
			}
		}
		if i >= len(rest) {
			return "", false
		}
		if k == key {
			return rest[vStart:i], true
		}
		rest = rest[i+1:]
	}
	return "", false
}
