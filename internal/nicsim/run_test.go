package nicsim

import (
	"math"
	"testing"
)

// nfLike builds a representative NF workload.
func nfLike(name string, pattern ExecPattern, regex bool) *Workload {
	w := &Workload{
		Name: name, Pattern: pattern, Cores: 2,
		CPUSecPerPkt:  800e-9,
		MemRefsPerPkt: 60,
		WSSBytes:      2 << 20,
		PktBytes:      1500,
		Accel:         map[AccelKind]AccelUse{},
	}
	if regex {
		w.Accel[AccelRegex] = AccelUse{
			ReqsPerPkt: 1, BytesPerReq: 1460, MatchesPerReq: 0.9, Queues: 1,
		}
	}
	return w
}

// memBenchLike builds an open-loop memory contention generator.
func memBenchLike(carTarget float64, wss float64) *Workload {
	refsPerOp := 100.0
	return &Workload{
		Name: "mem-bench", Pattern: RunToCompletion, Cores: 2,
		CPUSecPerPkt:  50e-9,
		MemRefsPerPkt: refsPerOp,
		WSSBytes:      wss,
		MemMLP:        8,
		PktBytes:      64,
		OfferedRate:   carTarget / refsPerOp,
	}
}

func TestRunSoloPositiveThroughput(t *testing.T) {
	nic := New(BlueField2(), 1)
	m, err := nic.RunSolo(nfLike("nf", RunToCompletion, true))
	if err != nil {
		t.Fatal(err)
	}
	if m.Throughput <= 0 {
		t.Fatal("zero solo throughput")
	}
	if m.Counters.WSS <= 0 || m.Counters.CAR() <= 0 {
		t.Fatalf("counters not derived: %+v", m.Counters)
	}
}

func TestRunContentionReducesThroughput(t *testing.T) {
	nic := New(BlueField2(), 2)
	target := nfLike("target", RunToCompletion, true)
	solo, err := nic.RunSolo(target)
	if err != nil {
		t.Fatal(err)
	}
	comp := memBenchLike(150e6, 12<<20)
	ms, err := nic.Run(target, comp)
	if err != nil {
		t.Fatal(err)
	}
	if ms[0].Throughput >= solo.Throughput {
		t.Fatalf("contended tput %v >= solo %v", ms[0].Throughput, solo.Throughput)
	}
	drop := 1 - ms[0].Throughput/solo.Throughput
	if drop < 0.02 || drop > 0.95 {
		t.Fatalf("implausible throughput drop %.1f%%", drop*100)
	}
}

func TestRunCompetitorCountersVisible(t *testing.T) {
	nic := New(BlueField2(), 3)
	target := nfLike("target", RunToCompletion, false)
	comp := memBenchLike(100e6, 8<<20)
	ms, err := nic.Run(target, comp)
	if err != nil {
		t.Fatal(err)
	}
	if ms[0].Competitors.CAR() < 50e6 {
		t.Fatalf("competitor CAR %v, want ~100e6", ms[0].Competitors.CAR())
	}
	if ms[1].Competitors.CAR() <= 0 {
		t.Fatal("mem-bench sees no competitor counters")
	}
}

func TestPipelineInsensitiveToMemoryWhenAccelBound(t *testing.T) {
	// Fig. 5 top: a pipeline NF bottlenecked on the regex stage holds its
	// throughput as memory contention rises (within the non-binding range).
	nic := New(BlueField2(), 4)
	p := nfLike("p-nf", Pipeline, true)
	p.Accel[AccelRegex] = AccelUse{ReqsPerPkt: 1, BytesPerReq: 1460, MatchesPerReq: 3, Queues: 1}

	regexHog := &Workload{
		Name: "regex-bench", Pattern: RunToCompletion, Cores: 2,
		CPUSecPerPkt: 30e-9, MemRefsPerPkt: 2, WSSBytes: 1 << 16, PktBytes: 64,
		OfferedRate: 5e6,
		Accel: map[AccelKind]AccelUse{
			AccelRegex: {ReqsPerPkt: 1, BytesPerReq: 1000, MatchesPerReq: 2, Queues: 1},
		},
	}
	base, err := nic.Run(p, regexHog)
	if err != nil {
		t.Fatal(err)
	}
	memHog := memBenchLike(60e6, 8<<20)
	with, err := nic.Run(p, regexHog, memHog)
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(with[0].Throughput-base[0].Throughput) / base[0].Throughput
	if rel > 0.08 {
		t.Fatalf("accel-bound pipeline moved %.1f%% under light memory contention", rel*100)
	}
	if with[0].Bottleneck != ResRegex {
		t.Fatalf("bottleneck %v, want regex", with[0].Bottleneck)
	}
}

func TestRTCCompoundsContention(t *testing.T) {
	// Fig. 5 bottom: run-to-completion throughput decreases under each
	// added resource's contention.
	nic := New(BlueField2(), 5)
	r := nfLike("r-nf", RunToCompletion, true)
	solo, err := nic.RunSolo(r)
	if err != nil {
		t.Fatal(err)
	}
	regexHog := &Workload{
		Name: "regex-bench", Pattern: RunToCompletion, Cores: 2,
		CPUSecPerPkt: 30e-9, MemRefsPerPkt: 2, WSSBytes: 1 << 16, PktBytes: 64,
		OfferedRate: 1.5e6,
		Accel: map[AccelKind]AccelUse{
			AccelRegex: {ReqsPerPkt: 1, BytesPerReq: 1000, MatchesPerReq: 2, Queues: 1},
		},
	}
	mRegex, err := nic.Run(r, regexHog)
	if err != nil {
		t.Fatal(err)
	}
	memHog := memBenchLike(100e6, 8<<20)
	mBoth, err := nic.Run(r, regexHog, memHog)
	if err != nil {
		t.Fatal(err)
	}
	if !(mBoth[0].Throughput < mRegex[0].Throughput && mRegex[0].Throughput < solo.Throughput) {
		t.Fatalf("RTC contention not compounding: solo %v regex %v both %v",
			solo.Throughput, mRegex[0].Throughput, mBoth[0].Throughput)
	}
}

func TestRunErrors(t *testing.T) {
	nic := New(BlueField2(), 6)
	if _, err := nic.Run(); err == nil {
		t.Fatal("expected error for empty run")
	}
	w := nfLike("a", Pipeline, false)
	w.Cores = 0
	if _, err := nic.Run(w); err == nil {
		t.Fatal("expected validation error")
	}
	// 5 workloads x 2 cores = 10 > 8 cores.
	var ws []*Workload
	for i := 0; i < 5; i++ {
		ws = append(ws, nfLike("nf", RunToCompletion, false))
	}
	if _, err := nic.Run(ws...); err == nil {
		t.Fatal("expected core-capacity error")
	}
}

func TestOpenLoopRespectsOfferedRate(t *testing.T) {
	nic := New(BlueField2(), 7)
	mb := memBenchLike(50e6, 1<<20)
	m, err := nic.RunSolo(mb)
	if err != nil {
		t.Fatal(err)
	}
	if m.Throughput > mb.OfferedRate*1.05 {
		t.Fatalf("open-loop tput %v exceeds offered %v", m.Throughput, mb.OfferedRate)
	}
}

func TestBottleneckAttributionMemory(t *testing.T) {
	nic := New(BlueField2(), 8)
	w := nfLike("memheavy", RunToCompletion, false)
	w.MemRefsPerPkt = 400
	w.WSSBytes = 24 << 20
	m, err := nic.RunSolo(w)
	if err != nil {
		t.Fatal(err)
	}
	if m.Bottleneck != ResMemory {
		t.Fatalf("bottleneck %v, want memory", m.Bottleneck)
	}
}

func TestBottleneckAttributionCPU(t *testing.T) {
	nic := New(BlueField2(), 9)
	w := nfLike("cpuheavy", RunToCompletion, false)
	w.CPUSecPerPkt = 5e-6
	w.MemRefsPerPkt = 5
	w.WSSBytes = 1 << 16
	m, err := nic.RunSolo(w)
	if err != nil {
		t.Fatal(err)
	}
	if m.Bottleneck != ResCPU {
		t.Fatalf("bottleneck %v, want cpu", m.Bottleneck)
	}
}

func TestPensandoPresetRuns(t *testing.T) {
	nic := New(Pensando(), 10)
	m, err := nic.RunSolo(nfLike("fw", RunToCompletion, false))
	if err != nil {
		t.Fatal(err)
	}
	if m.Throughput <= 0 {
		t.Fatal("pensando preset gives zero throughput")
	}
}

func TestMeasurementDeterministicPerSeed(t *testing.T) {
	run := func() float64 {
		nic := New(BlueField2(), 42)
		m, err := nic.RunSolo(nfLike("nf", RunToCompletion, true))
		if err != nil {
			t.Fatal(err)
		}
		return m.Throughput
	}
	if run() != run() {
		t.Fatal("same seed produced different measurements")
	}
}

func TestAccelStatsPopulated(t *testing.T) {
	nic := New(BlueField2(), 11)
	w := nfLike("nf", RunToCompletion, true)
	m, err := nic.RunSolo(w)
	if err != nil {
		t.Fatal(err)
	}
	st, ok := m.AccelStats[AccelRegex]
	if !ok {
		t.Fatal("no regex accel stats")
	}
	if st.RequestRate <= 0 || st.MeanServiceSec <= 0 || st.Queues != 1 {
		t.Fatalf("bad accel stats: %+v", st)
	}
	if st.MatchRate <= 0 {
		t.Fatalf("match rate not derived: %+v", st)
	}
}

func TestWorkloadValidate(t *testing.T) {
	good := nfLike("ok", Pipeline, true)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := nfLike("bad", Pipeline, true)
	bad.Accel[AccelRegex] = AccelUse{ReqsPerPkt: 1, Queues: 0}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected queue validation error")
	}
	neg := nfLike("neg", Pipeline, false)
	neg.CPUSecPerPkt = -1
	if err := neg.Validate(); err == nil {
		t.Fatal("expected negative-cost error")
	}
	tiny := nfLike("tiny", Pipeline, false)
	tiny.PktBytes = 0
	if err := tiny.Validate(); err == nil {
		t.Fatal("expected packet-size error")
	}
}

func TestResourceStrings(t *testing.T) {
	names := map[Resource]string{
		ResCPU: "cpu", ResMemory: "memory", ResRegex: "regex",
		ResCompress: "compress", ResNICPort: "nic-port",
	}
	for r, want := range names {
		if r.String() != want {
			t.Errorf("Resource(%d).String() = %q", r, r.String())
		}
	}
	if Pipeline.String() != "pipeline" || RunToCompletion.String() != "run-to-completion" {
		t.Error("pattern names wrong")
	}
	if AccelRegex.String() != "regex" || AccelCompress.String() != "compress" {
		t.Error("accel names wrong")
	}
}

func TestDVFSScalesCPUBoundThroughput(t *testing.T) {
	// §8 extension: a DVFS governor at half frequency roughly halves a
	// CPU-bound NF's maximum throughput but barely moves a memory-bound
	// one (DRAM speed is frequency-independent).
	base := BlueField2()
	base.MeasureNoise = 0
	slow := base.WithFrequencyScale(0.5)

	cpuBound := nfLike("cpu", RunToCompletion, false)
	cpuBound.CPUSecPerPkt = 3e-6
	cpuBound.MemRefsPerPkt = 4
	a, err := New(base, 1).RunSolo(cpuBound)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(slow, 1).RunSolo(cpuBound)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := b.Throughput / a.Throughput; math.Abs(ratio-0.5) > 0.05 {
		t.Fatalf("cpu-bound DVFS ratio %v, want ~0.5", ratio)
	}

	memBound := nfLike("mem", RunToCompletion, false)
	memBound.CPUSecPerPkt = 100e-9
	memBound.MemRefsPerPkt = 400
	memBound.WSSBytes = 32 << 20
	c, err := New(base, 2).RunSolo(memBound)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(slow, 2).RunSolo(memBound)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := d.Throughput / c.Throughput; ratio < 0.85 {
		t.Fatalf("mem-bound DVFS ratio %v, want near 1", ratio)
	}
}

func TestWithFrequencyScalePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BlueField2().WithFrequencyScale(0)
}
