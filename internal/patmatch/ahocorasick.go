// Package patmatch implements a multi-pattern string matcher (Aho-Corasick)
// that stands in for the BlueField-2 RXP regex accelerator's matching
// semantics: given a compiled rule set, it scans packet payloads and counts
// rule matches. The match count per payload byte (match-to-byte ratio,
// MTBR) is the traffic attribute the paper's accelerator model depends on.
package patmatch

import (
	"fmt"
	"sort"
)

// Matcher is a compiled multi-pattern matcher. Build one with Compile; a
// Matcher is immutable and safe for concurrent use.
type Matcher struct {
	patterns []string

	// Automaton in flattened form: per-state child map, fail link, and the
	// number of pattern occurrences ending at the state (output count,
	// accumulated through suffix links at compile time).
	next []map[byte]int32
	fail []int32
	outs []int32
}

// Compile builds the automaton for the given patterns. Empty patterns are
// rejected. Duplicate patterns each count as separate outputs, matching
// how a ruleset with duplicate rules would report.
func Compile(patterns []string) (*Matcher, error) {
	for i, p := range patterns {
		if p == "" {
			return nil, fmt.Errorf("patmatch: empty pattern at index %d", i)
		}
	}
	m := &Matcher{
		patterns: append([]string(nil), patterns...),
		next:     []map[byte]int32{{}},
		fail:     []int32{0},
		outs:     []int32{0},
	}
	// Trie construction.
	for _, p := range patterns {
		s := int32(0)
		for i := 0; i < len(p); i++ {
			c := p[i]
			nxt, ok := m.next[s][c]
			if !ok {
				nxt = int32(len(m.next))
				m.next[s][c] = nxt
				m.next = append(m.next, map[byte]int32{})
				m.fail = append(m.fail, 0)
				m.outs = append(m.outs, 0)
			}
			s = nxt
		}
		m.outs[s]++
	}
	// BFS to set failure links and accumulate outputs.
	queue := make([]int32, 0, len(m.next))
	for _, s := range m.next[0] {
		queue = append(queue, s)
	}
	sortInt32(queue)
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		var children []byte
		for c := range m.next[s] {
			children = append(children, c)
		}
		sort.Slice(children, func(i, j int) bool { return children[i] < children[j] })
		for _, c := range children {
			child := m.next[s][c]
			f := m.fail[s]
			for f != 0 {
				if n, ok := m.next[f][c]; ok {
					f = n
					goto linked
				}
				f = m.fail[f]
			}
			if n, ok := m.next[0][c]; ok && n != child {
				f = n
			} else {
				f = 0
			}
		linked:
			m.fail[child] = f
			m.outs[child] += m.outs[f]
			queue = append(queue, child)
		}
	}
	return m, nil
}

func sortInt32(a []int32) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}

// NumPatterns reports how many patterns the matcher was compiled from.
func (m *Matcher) NumPatterns() int { return len(m.patterns) }

// NumStates reports the automaton size, a proxy for compiled-rule memory.
func (m *Matcher) NumStates() int { return len(m.next) }

// Count returns the total number of pattern occurrences in data,
// including overlapping occurrences.
func (m *Matcher) Count(data []byte) int {
	var s int32
	total := 0
	for _, c := range data {
		for s != 0 {
			if n, ok := m.next[s][c]; ok {
				s = n
				goto advanced
			}
			s = m.fail[s]
		}
		if n, ok := m.next[0][c]; ok {
			s = n
		}
	advanced:
		total += int(m.outs[s])
	}
	return total
}

// Contains reports whether any pattern occurs in data, stopping at the
// first match.
func (m *Matcher) Contains(data []byte) bool {
	var s int32
	for _, c := range data {
		for s != 0 {
			if n, ok := m.next[s][c]; ok {
				s = n
				goto advanced
			}
			s = m.fail[s]
		}
		if n, ok := m.next[0][c]; ok {
			s = n
		}
	advanced:
		if m.outs[s] > 0 {
			return true
		}
	}
	return false
}

// MTBR returns the match-to-byte ratio of data in matches per megabyte.
func (m *Matcher) MTBR(data []byte) float64 {
	if len(data) == 0 {
		return 0
	}
	return float64(m.Count(data)) / float64(len(data)) * 1e6
}
