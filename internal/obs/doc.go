// Package obs is the serving stack's stdlib-only telemetry core: named
// counters, gauges and fixed-bucket latency histograms behind a
// lock-sharded Registry, a per-request span API that attributes a
// request's time to pipeline stages (decode, cache, predict, encode),
// and Prometheus text exposition (WriteProm) with a matching parser and
// merger (ParseExposition, MergeExpositions) so a gateway can aggregate
// its replicas' scrapes into one exposition.
//
// The design is allocation-conscious: hot paths hold direct *Counter
// and *Histogram pointers obtained once at construction (a registry
// lookup is get-or-create, but nothing forces one per event), Span is a
// value type so StartSpan/End on a traced request stays off the heap,
// and an untraced context makes the whole span API a no-op. The
// registry lock is only ever taken at registration and exposition time,
// never per observation — counters are single atomics and histogram
// observations are one atomic add per bucket plus a CAS-loop float sum.
//
// Instrumentation convention across the repo:
//
//   - internal/serve exposes yala_* series (per-verb request counters,
//     stage latency histograms, cache and worker-pool state),
//   - internal/gateway exposes gateway_* series (per-replica upstream
//     latency, failover and fan-out counters, edge-cache state),
//   - internal/cluster exposes cluster_* series (scheduler decision
//     latency and candidate-slots-scanned counters).
package obs
