package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestLoadgenReportsServerErrors is the regression test for the CI gate:
// a run that recorded server errors must return a non-nil error (so
// `yala loadgen` exits nonzero) while still carrying the counts.
func TestLoadgenReportsServerErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	defer ts.Close()

	rep, err := Loadgen(LoadgenConfig{URL: ts.URL, Workers: 2, Requests: 10})
	if err == nil {
		t.Fatal("loadgen against an erroring server returned nil error")
	}
	if rep.Errors != 10 || rep.Requests != 10 {
		t.Fatalf("errors/requests = %d/%d, want 10/10", rep.Errors, rep.Requests)
	}
}

// TestLoadgenTransportErrors covers the connection-refused flavor: the
// run must fail, not silently report zero throughput.
func TestLoadgenTransportErrors(t *testing.T) {
	// A closed server: every request fails at the transport.
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close()

	rep, err := Loadgen(LoadgenConfig{URL: url, Workers: 2, Requests: 4})
	if err == nil {
		t.Fatal("loadgen against a dead server returned nil error")
	}
	if rep.Errors != 4 {
		t.Fatalf("errors = %d, want 4", rep.Errors)
	}
}
