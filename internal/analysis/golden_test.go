package analysis

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// update rewrites the golden files from current analyzer output:
//
//	go test ./internal/analysis -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

// sharedLoader type-checks the standard library once for the whole test
// binary; fixtures load against it.
var sharedLoader *Loader

func loader(t *testing.T) *Loader {
	t.Helper()
	if sharedLoader == nil {
		l, err := NewLoader(filepath.Join("..", ".."))
		if err != nil {
			t.Fatal(err)
		}
		sharedLoader = l
	}
	return sharedLoader
}

// fixtureFindings runs the full suite (all analyzers plus the ignore
// machinery) over one testdata/src fixture loaded under asPath, with
// file paths relative to the fixture directory.
func fixtureFindings(t *testing.T, name, asPath string) []Finding {
	t.Helper()
	l := loader(t)
	dir := filepath.Join("testdata", "src", name)
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(dir, asPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s has type errors: %v", name, terr)
	}
	return RunPackages(l, []*Package{pkg}, DefaultAnalyzers(), abs)
}

// goldenCases maps each fixture to the import path it impersonates —
// determinism- and serving-critical paths for the analyzers that are
// package-scoped — and the analyzer whose coverage it must prove.
var goldenCases = []struct {
	name     string
	asPath   string
	analyzer string
}{
	{"detmap", "repro/internal/sim", "detmap"},
	{"wallclock", "repro/internal/cluster", "wallclock"},
	{"boundedread", "repro/fixture/boundedread", "boundedread"},
	{"envelope", "repro/internal/serve", "envelope"},
	{"metricname", "repro/fixture/metricname", "metricname"},
	{"bodyclose", "repro/fixture/bodyclose", "bodyclose"},
	{"ignores", "repro/internal/trace", "yalalint"},
}

// TestGolden pins each analyzer's exact findings on its fixture. Every
// analyzer must flag at least once — a gate that cannot fail is not a
// gate — and the rendered findings must match the committed golden
// file byte for byte.
func TestGolden(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			findings := fixtureFindings(t, tc.name, tc.asPath)
			flagged := false
			for _, f := range findings {
				if f.Analyzer == tc.analyzer {
					flagged = true
					break
				}
			}
			if !flagged {
				t.Errorf("fixture %s produced no %s findings — the analyzer cannot fail", tc.name, tc.analyzer)
			}
			var b strings.Builder
			WriteText(&b, findings)
			goldenPath := filepath.Join("testdata", "golden", tc.name+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, []byte(b.String()), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got := b.String(); got != string(want) {
				t.Errorf("findings drifted from golden file %s\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
			}
		})
	}
}

// TestIgnoreSelectivity pins the suppression semantics behaviorally,
// independent of golden formatting: suppressed lines stay quiet, the
// unsuppressed finding survives, and stale/unknown/malformed directives
// surface as yalalint findings.
func TestIgnoreSelectivity(t *testing.T) {
	findings := fixtureFindings(t, "ignores", "repro/internal/trace")
	byAnalyzer := map[string]int{}
	for _, f := range findings {
		byAnalyzer[f.Analyzer]++
	}
	if got := byAnalyzer["wallclock"]; got != 1 {
		t.Errorf("want exactly 1 surviving wallclock finding (the unsuppressed one), got %d: %v", got, findings)
	}
	if got := byAnalyzer["yalalint"]; got != 3 {
		t.Errorf("want 3 yalalint findings (stale, unknown analyzer, missing reason), got %d: %v", got, findings)
	}
}

// TestReportJSONShape pins the machine-readable -json contract: the
// exact key set and types consumers parse. A shape change here is an
// API break for CI tooling.
func TestReportJSONShape(t *testing.T) {
	rep := Report{
		Findings: []Finding{{File: "a/b.go", Line: 3, Col: 7, Analyzer: "detmap", Message: "m"}},
		Packages: 2,
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"findings":[{"file":"a/b.go","line":3,"col":7,"analyzer":"detmap","message":"m"}],"packages":2}`
	if string(data) != want {
		t.Errorf("report shape drifted:\n got %s\nwant %s", data, want)
	}
	empty, err := json.Marshal(Report{Findings: []Finding{}})
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"findings":[],"packages":0}`; string(empty) != want {
		t.Errorf("empty report: got %s want %s", empty, want)
	}
}

// TestRepoIsClean runs the suite over the whole repository — the same
// gate CI runs. Any finding (including a stale ignore) fails.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repo lint in -short mode")
	}
	rep, err := Run(filepath.Join("..", ".."), nil, DefaultAnalyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Findings {
		t.Errorf("%s", f)
	}
}
