// Package placement implements the paper's first use case (§7.5.1):
// online, contention-aware scheduling of arriving NFs onto a cluster of
// SmartNICs so as to minimize NICs used while meeting throughput SLAs.
//
// Strategies: Monopolization (one NF per NIC), Greedy (most free cores),
// and contention-aware placement driven by any registered prediction
// backend (PredictionAware; YalaAware and SLOMOAware are the built-in
// instances). An Oracle strategy that checks feasibility with actual
// co-runs stands in for the paper's exhaustive-search optimum (offline
// bin packing is NP-complete; the paper also compares against a
// search-based reference). Prediction models reach this package only
// through the internal/backend interface — the simulator holds opaque
// handles keyed (backend, NF) and never inspects them.
package placement

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/backend"
	"repro/internal/nicsim"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

// Arrival is one NF arrival: a catalog NF with its traffic profile and an
// SLA expressed as the maximum tolerated throughput drop relative to solo
// (e.g. 0.1 = may lose at most 10%).
type Arrival struct {
	Name    string
	Profile traffic.Profile
	SLA     float64
}

// stratKind discriminates the placement policy families.
type stratKind int

const (
	kindMonopolization stratKind = iota
	kindGreedy
	kindPredict
	kindOracle
)

// Strategy selects a placement policy. The zero value is Monopolization.
// Strategies are comparable values: the built-in ones below, plus one
// PredictionAware instance per prediction backend.
type Strategy struct {
	kind stratKind
	// backend names the prediction backend a kindPredict strategy
	// consults; empty for the model-free strategies.
	backend string
}

// Placement strategies, in the order of the paper's Table 6.
var (
	Monopolization = Strategy{kind: kindMonopolization}
	Greedy         = Strategy{kind: kindGreedy}
	SLOMOAware     = PredictionAware("slomo")
	YalaAware      = PredictionAware("yala")
	Oracle         = Strategy{kind: kindOracle}
)

// PredictionAware is contention-aware placement guided by the named
// prediction backend: place an arrival on a NIC only when the backend's
// models predict every resident (including the newcomer) stays within
// its SLA.
func PredictionAware(backendName string) Strategy {
	return Strategy{kind: kindPredict, backend: backendName}
}

// Backend names the prediction backend a PredictionAware strategy
// consults; empty for the model-free strategies.
func (s Strategy) Backend() string { return s.backend }

// String names the strategy.
func (s Strategy) String() string {
	switch s.kind {
	case kindMonopolization:
		return "monopolization"
	case kindGreedy:
		return "greedy"
	case kindPredict:
		return s.backend
	case kindOracle:
		return "oracle"
	}
	return fmt.Sprintf("strategy(%d)", int(s.kind))
}

// Result summarizes one placed sequence.
type Result struct {
	NICsUsed   int
	Violations int // NFs whose ground-truth throughput violates their SLA
	Total      int
}

// Simulator places NF arrival sequences under a strategy and evaluates
// the outcome against simulator ground truth.
type Simulator struct {
	TB *testbed.Testbed

	// NFCores is the per-NF core allocation; NICCores the per-NIC total.
	NFCores  int
	NICCores int

	// models holds the prediction handles the prediction-aware
	// strategies consult, keyed backend name → NF name. Opaque: only the
	// owning backend ever looks inside.
	models map[string]map[string]backend.Model

	soloCache  map[string]*nicsim.Measurement
	coRunCache map[string][]nicsim.Measurement
}

// NewSimulator returns a placement simulator. Prediction-aware
// strategies additionally need models supplied through SetModel.
func NewSimulator(tb *testbed.Testbed) *Simulator {
	return &Simulator{
		TB:         tb,
		NFCores:    2,
		NICCores:   tb.Config().Cores,
		models:     map[string]map[string]backend.Model{},
		soloCache:  map[string]*nicsim.Measurement{},
		coRunCache: map[string][]nicsim.Measurement{},
	}
}

// SetModel installs the backend's model for one NF.
func (s *Simulator) SetModel(backendName, nf string, m backend.Model) {
	byNF, ok := s.models[backendName]
	if !ok {
		byNF = map[string]backend.Model{}
		s.models[backendName] = byNF
	}
	byNF[nf] = m
}

// HasModel reports whether the backend's model for an NF is installed.
func (s *Simulator) HasModel(backendName, nf string) bool {
	_, ok := s.models[backendName][nf]
	return ok
}

// Model returns the installed handle, or an error naming the gap.
func (s *Simulator) Model(backendName, nf string) (backend.Model, error) {
	m, ok := s.models[backendName][nf]
	if !ok {
		return nil, fmt.Errorf("placement: no %s model for %s", backendName, nf)
	}
	return m, nil
}

func arrivalKey(a Arrival) string {
	return fmt.Sprintf("%s@%s", a.Name, a.Profile)
}

// solo returns the cached solo measurement for an arrival. The pointer
// is stable for the simulator's lifetime, so prediction scenarios can
// share it without copying.
func (s *Simulator) solo(a Arrival) (*nicsim.Measurement, error) {
	key := arrivalKey(a)
	if m, ok := s.soloCache[key]; ok {
		return m, nil
	}
	m, err := s.TB.SoloNF(a.Name, a.Profile)
	if err != nil {
		return nil, err
	}
	s.soloCache[key] = &m
	return &m, nil
}

// coRun measures a NIC's residents together, cached by the (sorted)
// resident multiset. The returned slice is ordered by the sorted keys.
func (s *Simulator) coRun(residents []Arrival) ([]nicsim.Measurement, []Arrival, error) {
	ordered := append([]Arrival(nil), residents...)
	sort.Slice(ordered, func(i, j int) bool {
		return arrivalKey(ordered[i]) < arrivalKey(ordered[j])
	})
	keys := make([]string, len(ordered))
	for i, a := range ordered {
		keys[i] = arrivalKey(a)
	}
	cacheKey := strings.Join(keys, "|")
	if ms, ok := s.coRunCache[cacheKey]; ok {
		return ms, ordered, nil
	}
	ws := make([]*nicsim.Workload, len(ordered))
	for i, a := range ordered {
		w, err := s.TB.Workload(a.Name, a.Profile)
		if err != nil {
			return nil, nil, err
		}
		ws[i] = w
	}
	ms, err := s.TB.Run(ws...)
	if err != nil {
		return nil, nil, err
	}
	s.coRunCache[cacheKey] = ms
	return ms, ordered, nil
}

// nic is one SmartNIC's residents during placement.
type nic struct {
	residents []Arrival
	cores     int
}

// Place runs the strategy over the arrival sequence and evaluates the
// final assignment against ground truth.
func (s *Simulator) Place(seq []Arrival, strat Strategy) (Result, error) {
	var nics []*nic
	for _, a := range seq {
		idx, err := s.chooseNIC(nics, a, strat)
		if err != nil {
			return Result{}, err
		}
		if idx < 0 {
			nics = append(nics, &nic{})
			idx = len(nics) - 1
		}
		nics[idx].residents = append(nics[idx].residents, a)
		nics[idx].cores += s.NFCores
	}
	res := Result{NICsUsed: len(nics), Total: len(seq)}
	for _, n := range nics {
		v, err := s.violations(n.residents)
		if err != nil {
			return Result{}, err
		}
		res.Violations += v
	}
	return res, nil
}

// chooseNIC returns the index of the NIC to place a on, or -1 for a new
// NIC.
func (s *Simulator) chooseNIC(nics []*nic, a Arrival, strat Strategy) (int, error) {
	fits := func(n *nic) bool { return n.cores+s.NFCores <= s.NICCores }
	switch strat.kind {
	case kindMonopolization:
		return -1, nil
	case kindGreedy:
		// Most available resources first (the E3/Meili heuristic).
		best, bestFree := -1, -1
		for i, n := range nics {
			if !fits(n) {
				continue
			}
			if free := s.NICCores - n.cores; free > bestFree {
				best, bestFree = i, free
			}
		}
		return best, nil
	case kindPredict, kindOracle:
		for i, n := range nics {
			if !fits(n) {
				continue
			}
			ok, err := s.feasible(n, a, strat)
			if err != nil {
				return 0, err
			}
			if ok {
				return i, nil
			}
		}
		return -1, nil
	}
	return 0, fmt.Errorf("placement: unknown strategy %v", strat)
}

// Fits reports whether a NIC already hosting residents NFs has the core
// budget for one more — the capacity half of the admission decision.
func (s *Simulator) Fits(residents int) bool {
	return (residents+1)*s.NFCores <= s.NICCores
}

// SeedSolo pre-populates the solo-measurement cache for an arrival. The
// serving layer shares its memoized deterministic measurements this way,
// so online feasibility checks skip re-simulating solos the server has
// already measured.
func (s *Simulator) SeedSolo(a Arrival, m nicsim.Measurement) {
	s.soloCache[arrivalKey(a)] = &m
}

// Feasible reports whether adding a to a NIC already hosting residents
// keeps every NF (including a) within its SLA according to the strategy's
// predictor, and within the NIC's core budget — the same fits-plus-SLA
// pair Place applies. It is the admission-control primitive the serving
// layer (internal/serve) exposes online; Oracle additionally consults
// ground-truth co-runs.
func (s *Simulator) Feasible(residents []Arrival, a Arrival, strat Strategy) (bool, error) {
	if !s.Fits(len(residents)) {
		return false, nil
	}
	return s.feasible(&nic{residents: residents}, a, strat)
}

// feasible predicts whether adding a to the NIC keeps every resident
// (including a) within its SLA, according to the strategy's predictor.
func (s *Simulator) feasible(n *nic, a Arrival, strat Strategy) (bool, error) {
	all := append(append([]Arrival(nil), n.residents...), a)
	if strat.kind == kindOracle {
		ms, ordered, err := s.coRun(all)
		if err != nil {
			return false, err
		}
		for i, r := range ordered {
			solo, err := s.solo(r)
			if err != nil {
				return false, err
			}
			if ms[i].Throughput < (1-r.SLA)*solo.Throughput {
				return false, nil
			}
		}
		return true, nil
	}
	b, ok := backend.Get(strat.backend)
	if !ok {
		return false, fmt.Errorf("placement: unknown prediction backend %q", strat.backend)
	}
	for ti, target := range all {
		var comps []backend.Competitor
		// Skip by index, not value: two identical arrivals (same NF,
		// profile and SLA) are distinct residents and contend with each
		// other.
		for oi, other := range all {
			if oi == ti {
				continue
			}
			m, err := s.solo(other)
			if err != nil {
				return false, err
			}
			comps = append(comps, backend.Competitor{NF: other.Name, Profile: other.Profile, Solo: m})
		}
		solo, err := s.solo(target)
		if err != nil {
			return false, err
		}
		model, err := s.Model(strat.backend, target.Name)
		if err != nil {
			return false, err
		}
		pred, err := b.Predict(model, backend.Scenario{
			Profile:     target.Profile,
			Competitors: comps,
			Solo:        func() (float64, error) { return solo.Throughput, nil },
		})
		if err != nil {
			return false, err
		}
		if pred.PredictedPPS < (1-target.SLA)*solo.Throughput {
			return false, nil
		}
	}
	return true, nil
}

// batchKey identifies one (NF, profile) pair without string formatting —
// the per-call memo key FeasibleBatch uses instead of the simulator's
// string-keyed caches, whose fmt.Sprintf rendering dominates tight
// scheduling loops.
type batchKey struct {
	name string
	prof traffic.Profile
}

// batchState carries the buffers one FeasibleBatch call reuses across
// candidate sets: a struct-keyed solo-measurement memo, the backend's
// own memoizing Batch (feature vectors, solo-model predictions), and a
// competitor slice that grows once and is re-sliced per evaluation.
type batchState struct {
	batch   backend.Batch
	solos   map[batchKey]*nicsim.Measurement
	compBuf []backend.Competitor
}

// solo resolves a measured solo through the per-call memo.
func (e *batchState) solo(s *Simulator, a Arrival) (*nicsim.Measurement, error) {
	key := batchKey{a.Name, a.Profile}
	if m, ok := e.solos[key]; ok {
		return m, nil
	}
	m, err := s.solo(a)
	if err != nil {
		return nil, err
	}
	e.solos[key] = m
	return m, nil
}

// FeasibleBatch evaluates adding a to every candidate resident set in
// one pass — the batched form of Feasible the class-aware fleet
// scheduler scores all (NIC, class) slots through. Verdicts are
// bit-identical to calling Feasible per set (same fits-plus-SLA pair,
// same feature-assembly order), but the per-arrival work is amortized:
// solo measurements resolve once per distinct (NF, profile) in the
// simulator's cache, and the backend's Batch memoizes its derived
// features (competitor vectors, solo-model predictions) across the
// whole call. Oracle feasibility needs per-set ground-truth co-runs, so
// it falls back to the per-set path.
func (s *Simulator) FeasibleBatch(sets [][]Arrival, a Arrival, strat Strategy) ([]bool, error) {
	out := make([]bool, len(sets))
	if strat.kind == kindOracle {
		for i, set := range sets {
			ok, err := s.Feasible(set, a, strat)
			if err != nil {
				return nil, err
			}
			out[i] = ok
		}
		return out, nil
	}
	if strat.kind != kindPredict {
		return nil, fmt.Errorf("placement: FeasibleBatch does not support strategy %v", strat)
	}
	b, ok := backend.Get(strat.backend)
	if !ok {
		return nil, fmt.Errorf("placement: unknown prediction backend %q", strat.backend)
	}
	e := &batchState{
		batch: backend.NewBatch(b),
		solos: map[batchKey]*nicsim.Measurement{},
	}
	for i, set := range sets {
		ok, err := s.feasibleBatched(e, set, a, strat)
		if err != nil {
			return nil, err
		}
		out[i] = ok
	}
	return out, nil
}

// feasibleBatched answers one set through the batch state. The SLA pass
// iterates targets and competitors in the same index order as feasible,
// so float accumulation (and therefore the verdict) matches it exactly.
func (s *Simulator) feasibleBatched(e *batchState, set []Arrival, a Arrival, strat Strategy) (bool, error) {
	if !s.Fits(len(set)) {
		return false, nil
	}
	n := len(set) + 1
	at := func(i int) Arrival {
		if i < len(set) {
			return set[i]
		}
		return a
	}
	for ti := 0; ti < n; ti++ {
		target := at(ti)
		soloMeas, err := e.solo(s, target)
		if err != nil {
			return false, err
		}
		model, err := s.Model(strat.backend, target.Name)
		if err != nil {
			return false, err
		}
		comps := e.compBuf[:0]
		for oi := 0; oi < n; oi++ {
			if oi == ti {
				continue
			}
			other := at(oi)
			m, err := e.solo(s, other)
			if err != nil {
				return false, err
			}
			comps = append(comps, backend.Competitor{NF: other.Name, Profile: other.Profile, Solo: m})
		}
		e.compBuf = comps[:0]
		predicted, err := e.batch.Predict(model, backend.Key{NF: target.Name, Profile: target.Profile}, comps, soloMeas.Throughput)
		if err != nil {
			return false, err
		}
		if predicted < (1-target.SLA)*soloMeas.Throughput {
			return false, nil
		}
	}
	return true, nil
}

// Violations counts residents whose ground-truth throughput breaks
// their SLA when co-run together. It is the enforcement probe the fleet
// orchestrator (internal/cluster) applies after every placement and
// drift; co-runs are cached by resident multiset, so re-checking an
// unchanged NIC is a lookup.
func (s *Simulator) Violations(residents []Arrival) (int, error) {
	return s.violations(residents)
}

// CoRun exposes the simulator's cached ground-truth co-run measurements
// for a resident set, ordered by the canonical (sorted) arrival key. It
// is the measurement probe the online-feedback loop (internal/cluster)
// scores model predictions against; the cache keeps repeated probes of
// an unchanged NIC free.
func (s *Simulator) CoRun(residents []Arrival) ([]nicsim.Measurement, []Arrival, error) {
	return s.coRun(residents)
}

// PredictWith predicts target's co-located throughput among others
// using an explicit model handle instead of the installed one. It is
// the shadow-evaluation primitive: a retrained candidate predicts live
// scenarios through it without ever being installed, so its output can
// be scored against ground truth while the installed model keeps
// serving every decision.
func (s *Simulator) PredictWith(backendName string, m backend.Model, target Arrival, others []Arrival) (float64, error) {
	b, ok := backend.Get(backendName)
	if !ok {
		return 0, fmt.Errorf("placement: unknown prediction backend %q", backendName)
	}
	var comps []backend.Competitor
	for _, o := range others {
		sm, err := s.solo(o)
		if err != nil {
			return 0, err
		}
		comps = append(comps, backend.Competitor{NF: o.Name, Profile: o.Profile, Solo: sm})
	}
	solo, err := s.solo(target)
	if err != nil {
		return 0, err
	}
	pred, err := b.Predict(m, backend.Scenario{
		Profile:     target.Profile,
		Competitors: comps,
		Solo:        func() (float64, error) { return solo.Throughput, nil },
	})
	if err != nil {
		return 0, err
	}
	return pred.PredictedPPS, nil
}

// violations counts residents whose ground-truth throughput breaks their
// SLA.
func (s *Simulator) violations(residents []Arrival) (int, error) {
	if len(residents) <= 1 {
		return 0, nil
	}
	ms, ordered, err := s.coRun(residents)
	if err != nil {
		return 0, err
	}
	count := 0
	for i, r := range ordered {
		solo, err := s.solo(r)
		if err != nil {
			return 0, err
		}
		if ms[i].Throughput < (1-r.SLA)*solo.Throughput {
			count++
		}
	}
	return count, nil
}
