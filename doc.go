// Package repro is a from-scratch Go reproduction of "Performance
// Prediction of On-NIC Network Functions with Multi-Resource Contention
// and Traffic Awareness" (ASPLOS 2025): the Yala prediction framework,
// the network functions it models, and a simulated SoC SmartNIC standing
// in for the paper's BlueField-2 testbed.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// hardware substitutions, and EXPERIMENTS.md for the paper-vs-measured
// record of every table and figure. The benchmarks in bench_test.go
// regenerate each experiment.
package repro
