package nf

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestFlowTableInsertLookup(t *testing.T) {
	tb := NewFlowTable()
	e, _, created := tb.Insert(42)
	if !created {
		t.Fatal("first insert not created")
	}
	e.Data[0] = 7
	got, _ := tb.Lookup(42)
	if got == nil || got.Data[0] != 7 {
		t.Fatal("lookup after insert failed")
	}
	if _, _, created := tb.Insert(42); created {
		t.Fatal("re-insert reported created")
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d", tb.Len())
	}
}

func TestFlowTableMissingKey(t *testing.T) {
	tb := NewFlowTable()
	if e, _ := tb.Lookup(99); e != nil {
		t.Fatal("lookup of absent key returned entry")
	}
}

func TestFlowTableGrowthPreservesEntries(t *testing.T) {
	tb := NewFlowTable()
	const n = 10000
	for i := uint64(0); i < n; i++ {
		e, _, _ := tb.Insert(i * 2654435761)
		e.Data[0] = i
	}
	if tb.Len() != n {
		t.Fatalf("Len = %d, want %d", tb.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		e, _ := tb.Lookup(i * 2654435761)
		if e == nil || e.Data[0] != i {
			t.Fatalf("entry %d lost after growth", i)
		}
	}
}

func TestFlowTableStateBytesGrows(t *testing.T) {
	tb := NewFlowTable()
	before := tb.StateBytes()
	for i := uint64(0); i < 100000; i++ {
		tb.Insert(i*0x9e3779b97f4a7c15 + 1)
	}
	if tb.StateBytes() <= before {
		t.Fatal("StateBytes did not grow with entries")
	}
	tb.Reset()
	if tb.StateBytes() != before || tb.Len() != 0 {
		t.Fatal("Reset did not restore initial size")
	}
}

func TestFlowTableLoadFactorBound(t *testing.T) {
	tb := NewFlowTable()
	for i := uint64(0); i < 50000; i++ {
		tb.Insert(i + 1)
	}
	load := float64(tb.Len()) / (tb.StateBytes() / entryBytes)
	if load > maxLoad+0.01 {
		t.Fatalf("load factor %v exceeds bound %v", load, maxLoad)
	}
}

func TestFlowTableProperty(t *testing.T) {
	f := func(keys []uint64) bool {
		tb := NewFlowTable()
		seen := map[uint64]bool{}
		for _, k := range keys {
			tb.Insert(k)
			seen[k] = true
		}
		if tb.Len() != len(seen) {
			return false
		}
		for k := range seen {
			if e, _ := tb.Lookup(k); e == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLPMBasic(t *testing.T) {
	l := NewLPM()
	l.Insert(0x0a000000, 8, 1)  // 10/8 -> 1
	l.Insert(0x0a010000, 16, 2) // 10.1/16 -> 2
	l.Insert(0x0a010200, 24, 3) // 10.1.2/24 -> 3
	cases := []struct {
		ip   uint32
		want int32
	}{
		{0x0a636363, 1}, // 10.99.99.99 -> /8
		{0x0a017f01, 2}, // 10.1.127.1 -> /16
		{0x0a010203, 3}, // 10.1.2.3 -> /24
		{0x0b000001, -1},
	}
	for _, c := range cases {
		got, steps := l.Lookup(c.ip)
		if got != c.want {
			t.Errorf("Lookup(%08x) = %d, want %d", c.ip, got, c.want)
		}
		if steps < 1 || steps > 2 {
			t.Errorf("steps = %d", steps)
		}
	}
}

func TestLPMLongestWinsInsertionOrder(t *testing.T) {
	// Insert the long prefix first, then the short: the long one must
	// still win for covered addresses.
	l := NewLPM()
	l.Insert(0x0a010200, 24, 3)
	l.Insert(0x0a000000, 8, 1)
	if got, _ := l.Lookup(0x0a010203); got != 3 {
		t.Fatalf("long prefix lost: got %d", got)
	}
	if got, _ := l.Lookup(0x0a990001); got != 1 {
		t.Fatalf("short prefix missing: got %d", got)
	}
}

func TestLPMPopulateRandom(t *testing.T) {
	l := NewLPM()
	l.PopulateRandom(5000, sim.NewRNG(1))
	if l.Routes() != 5000 {
		t.Fatalf("Routes = %d", l.Routes())
	}
	if l.StateBytes() <= 4*65536 {
		t.Fatal("no chunks allocated for long prefixes")
	}
	// Lookups must be well-formed for arbitrary addresses.
	rng := sim.NewRNG(2)
	hits := 0
	for i := 0; i < 10000; i++ {
		hop, steps := l.Lookup(uint32(rng.Uint64()))
		if steps < 1 || steps > 2 {
			t.Fatalf("steps = %d", steps)
		}
		if hop >= 0 {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("random FIB matched nothing")
	}
}
