package backend

import (
	"fmt"

	"repro/internal/ml"
	"repro/internal/nicsim"
	"repro/internal/slomo"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

func init() { Register(slomoBackend{}) }

// SLOMOOptions configures slomo on-demand training: the sampling/GBR
// config plus the fixed traffic profile the baseline trains at. Zero
// values select the quick serving defaults.
type SLOMOOptions struct {
	Config  slomo.Config
	Profile traffic.Profile
}

// slomoBackend is the paper's baseline: a counter-aggregate black-box
// model trained at one profile and extrapolated by solo throughput.
type slomoBackend struct{}

type slomoModel struct {
	m *slomo.Model
}

func (m slomoModel) NF() string { return m.m.Name }

// WrapSLOMO adapts an already-trained slomo model into the backend
// handle.
func WrapSLOMO(m *slomo.Model) Model { return slomoModel{m} }

// QuickSLOMOConfig mirrors QuickYalaConfig for the baseline.
func QuickSLOMOConfig(seed uint64) slomo.Config {
	cfg := slomo.DefaultConfig()
	cfg.Seed = seed
	cfg.Samples = 48
	cfg.GBR = ml.GBRConfig{
		Trees:        60,
		LearningRate: 0.1,
		MaxDepth:     4,
		MinLeaf:      2,
		Subsample:    0.85,
		Seed:         seed,
	}
	return cfg
}

func (slomoBackend) Name() string { return "slomo" }

func (slomoBackend) Train(env TrainEnv, nf string) (Model, error) {
	opts, _ := env.Options.(SLOMOOptions)
	if opts.Config.Samples == 0 {
		opts.Config = QuickSLOMOConfig(env.Seed)
	}
	if opts.Profile == (traffic.Profile{}) {
		opts.Profile = traffic.Default
	}
	tb := testbed.New(env.NIC, env.Seed)
	m, err := slomo.Train(tb, nf, opts.Profile, opts.Config)
	if err != nil {
		return nil, err
	}
	return slomoModel{m}, nil
}

func (slomoBackend) own(m Model) (*slomo.Model, error) {
	sm, ok := m.(slomoModel)
	if !ok {
		return nil, fmt.Errorf("backend: slomo handed a foreign model %T", m)
	}
	return sm.m, nil
}

func (b slomoBackend) Predict(m Model, sc Scenario) (Prediction, error) {
	sm, err := b.own(m)
	if err != nil {
		return Prediction{}, err
	}
	if sc.Solo == nil {
		return Prediction{}, fmt.Errorf("backend: slomo requires a measured solo throughput")
	}
	// SLOMO extrapolates its fixed-profile sensitivity using the NF's
	// measured solo throughput at the requested profile (§7.1).
	solo, err := sc.Solo()
	if err != nil {
		return Prediction{}, err
	}
	var agg nicsim.Counters
	for _, c := range sc.Competitors {
		agg.Add(c.Solo.Counters)
	}
	return Prediction{
		SoloPPS:      solo,
		PredictedPPS: sm.PredictExtrapolated(agg, solo),
	}, nil
}

func (b slomoBackend) Save(m Model, path string) error {
	sm, err := b.own(m)
	if err != nil {
		return err
	}
	return sm.SaveFile(path)
}

func (slomoBackend) Load(path string) (Model, error) {
	m, err := slomo.LoadModelFile(path)
	if err != nil {
		return nil, err
	}
	return slomoModel{m}, nil
}

func (slomoBackend) NewBatch() Batch { return slomoBatch{} }

// slomoBatch is stateless: counter aggregation per evaluation is the
// whole feature assembly, so there is nothing worth memoizing.
type slomoBatch struct{}

func (slomoBatch) Predict(m Model, target Key, comps []Competitor, solo float64) (float64, error) {
	sm, err := slomoBackend{}.own(m)
	if err != nil {
		return 0, err
	}
	var agg nicsim.Counters
	for i := range comps {
		agg.Add(comps[i].Solo.Counters)
	}
	return sm.PredictExtrapolated(agg, solo), nil
}
