package yalaclient

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/wire"
)

// wireParkDuration is how long the client stops attempting the wire
// path after a transport failure. Within the grace window every call
// goes straight to HTTP, so a dead listener costs one failed dial, not
// one failed dial per request.
const wireParkDuration = 5 * time.Second

// wirePool is the client's handle on the binary transport: a small
// pool of persistent, handshaken connections toward one wire listener.
type wirePool struct {
	*wire.Pool
}

// newWirePool sizes the pool for load-generation fan-out, mirroring
// the HTTP transport's generous idle-connection budget in spirit (wire
// connections are serial per exchange, so the pool is the concurrency
// ceiling for retained connections; extras dial-and-discard).
func newWirePool(addr, apiKey string) *wirePool {
	return &wirePool{wire.NewPool(addr, apiKey, 16)}
}

// wireReady reports whether the wire path should be attempted: it is
// configured and not parked by a recent transport failure.
func (c *Client) wireReady() bool {
	return c.wire != nil && time.Now().UnixNano() >= c.wireRetryAt.Load()
}

// WireActive reports whether the binary wire transport is currently in
// use for Predict/PredictBatch: WithWire was configured and the path is
// not parked by a recent transport failure. It exists for operational
// visibility (loadgen reports, tests); callers never need to branch on
// it for correctness — fallback to HTTP is automatic.
func (c *Client) WireActive() bool { return c.wireReady() }

// wireFallback decides what to do with a wire-path error: true means
// "re-issue this call over HTTP", false means "return (out, err) to
// the caller as-is". A transport failure parks the wire path and falls
// back; a retryable application refusal (5xx, 429) falls back only
// when the caller opted into WithRetries, so the standard HTTP
// backoff/Retry-After schedule applies; every other outcome — success,
// 4xx, caller cancellation — is final.
func (c *Client) wireFallback(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, wire.ErrTransport) {
		c.wireRetryAt.Store(time.Now().Add(wireParkDuration).UnixNano())
		return true
	}
	if c.retries <= 0 {
		return false
	}
	var rle *RateLimitError
	if errors.As(err, &rle) {
		return true
	}
	var ae *APIError
	return errors.As(err, &ae) && ae.StatusCode >= 500
}

// wirePredict runs one Predict exchange over the wire transport.
func (c *Client) wirePredict(ctx context.Context, m ModelID, backendName string, p PredictParams) (PredictResult, error) {
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	if backendName == "" {
		backendName = DefaultBackend
	}
	req := wire.PredictRequest{
		NF:          m.NF,
		HW:          m.HW,
		Backend:     backendName,
		Profile:     toWireProfile(p.Profile),
		Competitors: toWireCompetitors(p.Competitors),
	}
	buf := wire.AppendPredictRequest(wire.GetBuf(), &req)
	var out PredictResult
	err := c.wire.Do(ctx, wire.TypePredict, buf, func(f wire.Frame) error {
		switch f.Type {
		case wire.TypePredictResp:
			resp, derr := wire.DecodePredictResponse(f.Payload)
			if derr != nil {
				return fmt.Errorf("%w: %v", wire.ErrTransport, derr)
			}
			out = fromWireResponse(resp)
			return nil
		case wire.TypeError:
			return wireError(f.Payload)
		default:
			return fmt.Errorf("%w: unexpected frame type %d", wire.ErrTransport, f.Type)
		}
	})
	wire.PutBuf(buf)
	if err != nil && ctx.Err() != nil {
		// The exchange died because the caller gave up; surface that,
		// not a transport-flavored wrapper (and never park the wire
		// path over it).
		return out, ctx.Err()
	}
	return out, err
}

// wirePredictBatch runs one PredictBatch exchange over the wire
// transport.
func (c *Client) wirePredictBatch(ctx context.Context, items []BatchItem) (BatchResult, error) {
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	req := wire.BatchRequest{Requests: make([]wire.PredictRequest, len(items))}
	for i, it := range items {
		req.Requests[i] = wire.PredictRequest{
			NF:          it.Model.NF,
			HW:          it.Model.HW,
			Backend:     it.Backend,
			Profile:     toWireProfile(it.Profile),
			Competitors: toWireCompetitors(it.Competitors),
		}
	}
	buf := wire.AppendBatchRequest(wire.GetBuf(), &req)
	var out BatchResult
	err := c.wire.Do(ctx, wire.TypeBatch, buf, func(f wire.Frame) error {
		switch f.Type {
		case wire.TypeBatchResp:
			resp, derr := wire.DecodeBatchResponse(f.Payload)
			if derr != nil {
				return fmt.Errorf("%w: %v", wire.ErrTransport, derr)
			}
			out.Responses = make([]PredictResult, len(resp.Responses))
			for i := range resp.Responses {
				out.Responses[i] = fromWireResponse(resp.Responses[i])
			}
			out.Errors = resp.Errors
			return nil
		case wire.TypeError:
			return wireError(f.Payload)
		default:
			return fmt.Errorf("%w: unexpected frame type %d", wire.ErrTransport, f.Type)
		}
	})
	wire.PutBuf(buf)
	if err != nil && ctx.Err() != nil {
		return out, ctx.Err()
	}
	return out, err
}

// wireIngest runs one IngestBatch exchange over the wire transport,
// tunneled as a Call frame (the server runs the identical /v2/ingest
// HTTP handler behind it, so validation and envelopes match exactly).
func (c *Client) wireIngest(ctx context.Context, body any) (IngestResult, error) {
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	payload, err := json.Marshal(body)
	if err != nil {
		return IngestResult{}, fmt.Errorf("yalaclient: encoding /v2/ingest request: %w", err)
	}
	call := wire.Call{
		Method:      http.MethodPost,
		URI:         "/v2/ingest",
		ContentType: "application/json",
		Body:        payload,
	}
	buf := wire.AppendCall(wire.GetBuf(), &call)
	var out IngestResult
	err = c.wire.Do(ctx, wire.TypeCall, buf, func(f wire.Frame) error {
		switch f.Type {
		case wire.TypeCallResp:
			resp, derr := wire.DecodeCallResp(f.Payload)
			if derr != nil {
				return fmt.Errorf("%w: %v", wire.ErrTransport, derr)
			}
			if resp.Status != http.StatusOK {
				hdr := make(http.Header, len(resp.Headers))
				for _, kv := range resp.Headers {
					hdr.Set(kv.Key, kv.Value)
				}
				if resp.Status == http.StatusTooManyRequests {
					return rateLimitError(resp.Status, resp.Body, hdr)
				}
				return apiError(resp.Status, resp.Body)
			}
			if derr := json.Unmarshal(resp.Body, &out); derr != nil {
				return fmt.Errorf("%w: decoding /v2/ingest response: %v", wire.ErrTransport, derr)
			}
			return nil
		case wire.TypeError:
			return wireError(f.Payload)
		default:
			return fmt.Errorf("%w: unexpected frame type %d", wire.ErrTransport, f.Type)
		}
	})
	wire.PutBuf(buf)
	if err != nil && ctx.Err() != nil {
		return out, ctx.Err()
	}
	return out, err
}

// wireError decodes a TypeError payload into the same typed errors the
// HTTP path produces, so callers branch on *APIError/*RateLimitError
// without caring which transport answered.
func wireError(payload []byte) error {
	ef, err := wire.DecodeError(payload)
	if err != nil {
		return fmt.Errorf("%w: %v", wire.ErrTransport, err)
	}
	ae := APIError{
		StatusCode: ef.Status,
		Code:       ef.Code,
		Message:    ef.Message,
		RequestID:  ef.RequestID,
	}
	if ef.Status == http.StatusTooManyRequests {
		return &RateLimitError{
			APIError:   ae,
			RetryAfter: time.Duration(ef.RetryAfterSec * float64(time.Second)),
		}
	}
	return &ae
}

func toWireProfile(p ProfileSpec) wire.Profile {
	return wire.Profile{Flows: p.Flows, PktSize: p.PktSize, MTBR: p.MTBR}
}

func toWireCompetitors(cs []Competitor) []wire.Competitor {
	if len(cs) == 0 {
		return nil
	}
	out := make([]wire.Competitor, len(cs))
	for i, cp := range cs {
		out[i] = wire.Competitor{Name: cp.Name, Profile: toWireProfile(cp.Profile)}
	}
	return out
}

func fromWireResponse(r wire.PredictResponse) PredictResult {
	out := PredictResult{
		NF:           r.NF,
		HW:           r.HW,
		Backend:      r.Backend,
		Profile:      ProfileSpec{Flows: r.Profile.Flows, PktSize: r.Profile.PktSize, MTBR: r.Profile.MTBR},
		SoloPPS:      r.SoloPPS,
		PredictedPPS: r.PredictedPPS,
		Bottleneck:   r.Bottleneck,
	}
	if len(r.PerResource) > 0 {
		out.PerResourcePPS = make(map[string]float64, len(r.PerResource))
		for _, rp := range r.PerResource {
			out.PerResourcePPS[rp.Resource] = rp.PPS
		}
	}
	return out
}
