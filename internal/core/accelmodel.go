package core

import (
	"fmt"

	"repro/internal/ml"
	"repro/internal/nicsim"
	"repro/internal/traffic"
)

// AccelModel is Yala's white-box queueing model for one hardware
// accelerator (§4.1.1), traffic-aware in the match-to-byte ratio
// (§5.1.1): the driver round-robins over per-NF request queues, so at
// saturation the target's share follows Eq. (1); the per-request service
// time is a linear function of the traffic's MTBR,
//
//	t(m) = T0 + A·m        (t_j = t_{j,0} + a_j·m_j)
//
// fitted by linear regression over co-runs with regex-bench.
type AccelModel struct {
	// Queues is the inferred number of request queues (n_i).
	Queues float64
	// T0 is the base per-request service time (seconds); A the extra
	// service time per unit of the accelerator-specific traffic
	// attribute (matches/MB for regex, payload bytes for compression —
	// §5.1.1's "other accelerators" generalization).
	T0, A float64
	// Attr is the traffic attribute the service time depends on.
	Attr traffic.Attribute
	// ReqsPerPkt converts between request rate and packet rate.
	ReqsPerPkt float64
}

// AttrFor maps an accelerator kind to the traffic attribute its service
// time depends on.
func AttrFor(kind nicsim.AccelKind) traffic.Attribute {
	if kind == nicsim.AccelCompress {
		return traffic.AttrPktSize
	}
	return traffic.AttrMTBR
}

// ServiceSec returns the modeled per-request service time at traffic
// attribute value m. Degenerate fits clamp at a fraction of T0.
func (a *AccelModel) ServiceSec(m float64) float64 {
	t := a.T0 + a.A*m
	if t < a.T0*0.1 {
		t = a.T0 * 0.1
	}
	return t
}

// AccelLoad is a competitor's demand on the accelerator as the model sees
// it: its queue count, per-request service time, and — if it is an
// open-loop generator — its offered request rate (0 means saturating).
type AccelLoad struct {
	Queues     float64
	ServiceSec float64
	OfferedReq float64
}

// PacketRate predicts the target NF's accelerator-stage packet rate under
// the given competing loads, at traffic MTBR m.
//
// The prediction generalizes Eq. (1) to partially loaded competitors:
// at full saturation every RR round serves one request per queue, so the
// target receives n_i of every Σn_j requests and
//
//	T_eq = n_i / Σ_j n_j·t_j .
//
// A competitor offering fewer requests than its saturated share only
// consumes what it offers, and the target picks up the slack — producing
// the linear-then-floor shape of Fig. 4.
func (a *AccelModel) PacketRate(m float64, competitors []AccelLoad) float64 {
	ti := a.ServiceSec(m)
	if ti <= 0 || a.Queues <= 0 {
		return 0
	}
	// Saturated round time and equilibrium share.
	round := a.Queues * ti
	for _, c := range competitors {
		round += c.Queues * c.ServiceSec
	}
	eq := a.Queues / round

	// Competitors' actual consumption: min(offered, their saturated share).
	busy := 0.0
	for _, c := range competitors {
		share := c.Queues / round
		rate := share
		if c.OfferedReq > 0 && c.OfferedReq < share {
			rate = c.OfferedReq
		}
		busy += rate * c.ServiceSec
	}
	if busy > 1 {
		busy = 1
	}
	reqRate := (1 - busy) / ti
	if reqRate < eq {
		reqRate = eq
	}
	if max := 1 / ti; reqRate > max {
		reqRate = max
	}
	rpp := a.ReqsPerPkt
	if rpp <= 0 {
		rpp = 1
	}
	return reqRate / rpp
}

// SoloPacketRate is the accelerator-stage packet rate with no contention.
func (a *AccelModel) SoloPacketRate(m float64) float64 {
	return a.PacketRate(m, nil)
}

// AccelSample is one calibration co-run outcome used for fitting.
type AccelSample struct {
	// Attr is the target traffic's accelerator-specific attribute value
	// during the co-run (MTBR for regex, packet size for compression).
	Attr float64
	// TargetRate and BenchRate are the equilibrium request rates of the
	// target NF and regex-bench.
	TargetRate, BenchRate float64
	// BenchServiceSec and BenchQueues are regex-bench's known parameters.
	BenchServiceSec float64
	BenchQueues     float64
}

// FitAccelModel infers (n_i, t(m)) from saturated co-runs with
// regex-bench at different MTBRs (§4.1.1's estimation procedure): at
// equilibrium the rate ratio gives the queue-count ratio, and the round
// time gives the target's service time; t(m) then comes from linear
// regression.
func FitAccelModel(samples []AccelSample, attr traffic.Attribute, reqsPerPkt float64) (*AccelModel, error) {
	if len(samples) < 2 {
		return nil, fmt.Errorf("core: accelerator fit needs >=2 samples, got %d", len(samples))
	}
	// Queue count from the equilibrium rate ratio, averaged over samples.
	var nSum float64
	var nCnt int
	for _, s := range samples {
		if s.BenchRate <= 0 || s.TargetRate <= 0 {
			continue
		}
		nSum += s.TargetRate / s.BenchRate * s.BenchQueues
		nCnt++
	}
	if nCnt == 0 {
		return nil, fmt.Errorf("core: no usable equilibrium samples")
	}
	n := nSum / float64(nCnt)
	// Snap to the nearest positive integer: queue counts are integral.
	ni := float64(int(n + 0.5))
	if ni < 1 {
		ni = 1
	}

	// Per-sample service time: T_i = n_i / (n_i·t_i + n_b·t_b)
	//  =>  t_i = (n_i/T_i − n_b·t_b) / n_i.
	var X [][]float64
	var y []float64
	for _, s := range samples {
		if s.TargetRate <= 0 {
			continue
		}
		ti := (ni/s.TargetRate - s.BenchQueues*s.BenchServiceSec) / ni
		if ti <= 0 {
			continue
		}
		X = append(X, []float64{s.Attr})
		y = append(y, ti)
	}
	if len(y) < 2 {
		return nil, fmt.Errorf("core: not enough valid service-time samples")
	}
	lin, err := ml.FitLinear(X, y, 1e-12)
	if err != nil {
		return nil, fmt.Errorf("core: accelerator service-time regression: %w", err)
	}
	m := &AccelModel{Queues: ni, T0: lin.Intercept, A: lin.Coef[0], Attr: attr, ReqsPerPkt: reqsPerPkt}
	if m.T0 <= 0 {
		return nil, fmt.Errorf("core: accelerator fit produced non-positive base time %g", m.T0)
	}
	return m, nil
}
