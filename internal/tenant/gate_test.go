package tenant

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestRegistryParse(t *testing.T) {
	reg, err := Parse([]byte(`{
		"tenants": [
			{"name": "acme", "key": "k-acme", "rps": 5, "burst": 10},
			{"name": "globex", "key": "k-globex", "rps": 100, "bulk_rps": 10}
		],
		"anonymous": {"rps": 1}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(reg.Tenants()); got != 3 {
		t.Fatalf("tenants = %d, want 3 (two keyed + anonymous)", got)
	}
	acme, ok := reg.Lookup("k-acme")
	if !ok || acme.Name() != "acme" {
		t.Fatalf("Lookup(k-acme) = %v, %v", acme, ok)
	}
	if acme.shared.Rate() != 5 || acme.shared.Burst() != 10 {
		t.Fatalf("acme bucket = %v/%v, want 5/10", acme.shared.Rate(), acme.shared.Burst())
	}
	globex, _ := reg.Lookup("k-globex")
	if globex.bulk == nil || globex.bulk.Rate() != 10 {
		t.Fatal("globex missing its dedicated bulk bucket")
	}
	if globex.shared.Burst() != 200 {
		t.Fatalf("default burst = %v, want 2·rps = 200", globex.shared.Burst())
	}
	anon, ok := reg.Lookup("")
	if !ok || anon.Name() != AnonymousName || !anon.Limited() {
		t.Fatalf("anonymous tenant = %v, ok=%v, limited=%v", anon, ok, anon != nil && anon.Limited())
	}
	if _, ok := reg.Lookup("nope"); ok {
		t.Fatal("unknown key resolved")
	}
}

func TestRegistryValidation(t *testing.T) {
	bad := []string{
		`{"tenants": [{"key": "k"}]}`,                                          // no name
		`{"tenants": [{"name": "a"}]}`,                                         // no key
		`{"tenants": [{"name": "a", "key": "k"}, {"name": "a", "key": "k2"}]}`, // dup name
		`{"tenants": [{"name": "a", "key": "k"}, {"name": "b", "key": "k"}]}`,  // dup key
		`{"tenants": [{"name": "a", "key": "k", "rps": -1}]}`,                  // negative
		`{"anonymous": {"key": "k"}}`,                                          // keyed anonymous
		`{"tenants": [{"name": "a", "key": "k", "requests_per_second": 5}]}`,   // unknown field
		`{"tenants": [{"name": "a", "key": "k"}], "anonymous": {"name": "a"}}`, // anon name clash
	}
	for _, src := range bad {
		if _, err := Parse([]byte(src)); err == nil {
			t.Errorf("Parse(%s) accepted invalid config", src)
		}
	}
}

func TestRegistryRequireKey(t *testing.T) {
	reg, err := Parse([]byte(`{"tenants": [{"name": "a", "key": "k"}], "require_key": true}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Lookup(""); ok {
		t.Fatal("keyless lookup succeeded with require_key")
	}
	g := NewGate(reg, GateConfig{})
	d := g.Admit("", ClassInteractive, time.Now())
	if d.OK || d.Status != http.StatusUnauthorized || d.Code != CodeUnauthenticated {
		t.Fatalf("keyless admit = %+v, want 401 unauthenticated", d)
	}
}

func TestGateRateLimit(t *testing.T) {
	reg, err := Parse([]byte(`{"tenants": [{"name": "slow", "key": "k", "rps": 2, "burst": 3}]}`))
	if err != nil {
		t.Fatal(err)
	}
	g := NewGate(reg, GateConfig{})
	now := time.Unix(50, 0)
	for i := 0; i < 3; i++ {
		if d := g.Admit("k", ClassInteractive, now); !d.OK {
			t.Fatalf("burst request %d refused: %+v", i, d)
		}
	}
	d := g.Admit("k", ClassInteractive, now)
	if d.OK {
		t.Fatal("request beyond burst admitted")
	}
	if d.Status != http.StatusTooManyRequests || d.Code != CodeResourceExhausted {
		t.Fatalf("refusal = %d %s, want 429 resource_exhausted", d.Status, d.Code)
	}
	if d.RetryAfter <= 0 || d.RetryAfter > time.Second {
		t.Fatalf("RetryAfter = %v, want (0, 1s] at 2 rps", d.RetryAfter)
	}
	tn, _ := reg.Lookup("k")
	snap := tn.Snapshot()
	if snap.Requests != 3 || snap.RateLimited != 1 || snap.Shed != 1 {
		t.Fatalf("snapshot = %+v, want 3 admitted / 1 rate-limited", snap)
	}
	// The unlimited anonymous tenant is never rate-shed.
	for i := 0; i < 100; i++ {
		if d := g.Admit("", ClassInteractive, now); !d.OK {
			t.Fatalf("anonymous request refused: %+v", d)
		}
	}
}

// TestGateShedsBulkFirst pins the priority-class ordering: at a load
// score between the two thresholds, bulk sheds while interactive still
// admits; past the interactive threshold both shed.
func TestGateShedsBulkFirst(t *testing.T) {
	g := NewGate(nil, GateConfig{BulkShedAt: 0.75, InteractiveShedAt: 0.95})
	load := 0.0
	g.SetQueueFunc(func() float64 { return load })

	now := time.Unix(100, 0)
	check := func(class Class, wantOK bool) {
		t.Helper()
		d := g.Admit("", class, now)
		if d.OK != wantOK {
			t.Fatalf("load=%.2f class=%s: OK=%v, want %v (%+v)", load, class, d.OK, wantOK, d)
		}
		if !d.OK && d.Code != CodeResourceExhausted {
			t.Fatalf("shed code = %q, want resource_exhausted", d.Code)
		}
		// Step past the score cache so the next check recomputes.
		now = now.Add(2 * scoreTTL)
	}

	load = 0.5
	check(ClassBulk, true)
	check(ClassInteractive, true)
	load = 0.8
	check(ClassBulk, false)
	check(ClassInteractive, true)
	load = 1.0
	check(ClassBulk, false)
	check(ClassInteractive, false)

	tn, _ := g.Registry().Lookup("")
	if snap := tn.Snapshot(); snap.Overloaded != 3 {
		t.Fatalf("overloaded = %d, want 3", snap.Overloaded)
	}
}

// TestGateWindowSignals feeds slow and failing samples through Observe
// and checks they raise the load score without any queue signal.
func TestGateWindowSignals(t *testing.T) {
	g := NewGate(nil, GateConfig{P99SLO: 100 * time.Millisecond, WindowSize: 64})
	d := Decision{OK: true, Tenant: g.reg.anon}
	for i := 0; i < 64; i++ {
		g.Observe(d, 300*time.Millisecond, false) // 3x the SLO
	}
	if score := g.computeScore(); score < 2.9 {
		t.Fatalf("score = %.2f after sustained 3x-SLO latency, want ≈3", score)
	}

	g2 := NewGate(nil, GateConfig{MaxErrorRate: 0.10, WindowSize: 64})
	for i := 0; i < 64; i++ {
		g2.Observe(d, time.Millisecond, i%5 == 0) // 20% errors
	}
	if score := g2.computeScore(); score < 1.9 {
		t.Fatalf("score = %.2f at 20%% errors vs 10%% budget, want ≈2", score)
	}
}

// TestGateWindowAgesOut: a latency spike must not latch the gate shut.
// Only admitted requests are observed, so a gate shedding 100% gets no
// fresh samples — the spike's samples have to expire by age for the
// score to fall and the gate to reopen.
func TestGateWindowAgesOut(t *testing.T) {
	g := NewGate(nil, GateConfig{P99SLO: 100 * time.Millisecond, WindowSize: 64, WindowAge: 50 * time.Millisecond})
	d := Decision{OK: true, Tenant: g.reg.anon}
	for i := 0; i < 64; i++ {
		g.Observe(d, time.Second, false) // 10x the SLO
	}
	if score := g.computeScore(); score < 9 {
		t.Fatalf("score = %.2f right after a 10x-SLO spike, want ≈10", score)
	}
	time.Sleep(80 * time.Millisecond)
	if score := g.computeScore(); score != 0 {
		t.Fatalf("score = %.2f after the spike aged out with nothing admitted since, want 0", score)
	}
}

// TestShedTarpit: bucket sheds stall for ShedDelay (throttling the
// abuser's connection), overload sheds answer immediately (within-quota
// tenants should hear "back off" fast).
func TestShedTarpit(t *testing.T) {
	reg, err := Parse([]byte(`{"tenants": [{"name": "capped", "key": "k", "rps": 0.001, "burst": 1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	g := NewGate(reg, GateConfig{ShedDelay: 60 * time.Millisecond})
	h := g.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	fire := func() (int, time.Duration) {
		req := httptest.NewRequest("POST", "/v2/models/FlowStats/yala:predict", nil)
		req.Header.Set("X-API-Key", "k")
		w := httptest.NewRecorder()
		start := time.Now()
		h.ServeHTTP(w, req)
		return w.Code, time.Since(start)
	}
	if code, _ := fire(); code != http.StatusOK {
		t.Fatalf("first request = %d, want 200", code)
	}
	code, took := fire()
	if code != http.StatusTooManyRequests {
		t.Fatalf("second request = %d, want 429", code)
	}
	if took < 50*time.Millisecond {
		t.Fatalf("rate-limited shed answered in %v, want ≥ the 60ms tarpit", took)
	}

	// Overload shed: saturate the queue signal; the same tenant's bucket
	// no longer matters — the refusal must not stall. Wait out the score
	// cache so the saturated signal is actually read.
	g.SetQueueFunc(func() float64 { return 2.0 })
	time.Sleep(2 * scoreTTL)
	code, took = fire()
	if code != http.StatusTooManyRequests {
		t.Fatalf("overloaded request = %d, want 429", code)
	}
	if took > 40*time.Millisecond {
		t.Fatalf("overload shed stalled %v, want an immediate refusal", took)
	}
}

// TestMiddleware drives the HTTP layer end to end: exemptions, auth
// extraction from both headers, the 429 envelope with Retry-After and
// request_id, and latency observation of admitted requests.
func TestMiddleware(t *testing.T) {
	reg, err := Parse([]byte(`{
		"tenants": [{"name": "capped", "key": "k-capped", "rps": 1, "burst": 1}],
		"require_key": true
	}`))
	if err != nil {
		t.Fatal(err)
	}
	g := NewGate(reg, GateConfig{})
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	// Mount the gate inside a trace-minting middleware, as serve and
	// gateway do, so refusals can carry the request ID.
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tr := obs.NewTrace("test-rid-1")
		g.Middleware(inner).ServeHTTP(w, r.WithContext(obs.ContextWithTrace(r.Context(), tr)))
	})

	get := func(path, bearer, apiKey string) *httptest.ResponseRecorder {
		r := httptest.NewRequest(http.MethodGet, path, nil)
		if bearer != "" {
			r.Header.Set("Authorization", "Bearer "+bearer)
		}
		if apiKey != "" {
			r.Header.Set("X-API-Key", apiKey)
		}
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		return w
	}

	// Exempt paths bypass auth entirely.
	if w := get("/healthz", "", ""); w.Code != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", w.Code)
	}
	// Keyless request against require_key → 401.
	if w := get("/v2/models", "", ""); w.Code != http.StatusUnauthorized {
		t.Fatalf("keyless = %d, want 401", w.Code)
	}
	// Both header forms authenticate.
	if w := get("/v2/models", "k-capped", ""); w.Code != http.StatusOK {
		t.Fatalf("bearer auth = %d, want 200", w.Code)
	}
	if w := get("/v2/models", "", "k-capped"); w.Code != http.StatusTooManyRequests {
		// burst 1 consumed above; this one must be the 429 path.
		t.Fatalf("x-api-key over burst = %d, want 429", w.Code)
	}

	// Pin the 429 envelope + Retry-After.
	w := get("/v2/models", "k-capped", "")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-limit = %d, want 429", w.Code)
	}
	ra, err := strconv.Atoi(w.Header().Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want integer ≥ 1", w.Header().Get("Retry-After"))
	}
	var body refusalBody
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Error.Code != CodeResourceExhausted || body.Error.RequestID != "test-rid-1" || body.Error.Message == "" {
		t.Fatalf("envelope = %+v", body.Error)
	}

	tn, _ := reg.Lookup("k-capped")
	snap := tn.Snapshot()
	if snap.Requests != 1 || snap.RateLimited != 2 {
		t.Fatalf("snapshot = %+v, want 1 admitted / 2 rate-limited", snap)
	}
}

// TestClassifyPath pins the bulk/interactive split.
func TestClassifyPath(t *testing.T) {
	bulk := []string{"/v2/models/m:batchPredict", "/v1/predict/batch", "/v1/cluster/run", "/v2/cluster/runs"}
	for _, p := range bulk {
		if ClassifyPath(p) != ClassBulk {
			t.Errorf("ClassifyPath(%s) = interactive, want bulk", p)
		}
	}
	interactive := []string{"/v2/models/m:predict", "/v2/models/m:admit", "/v1/predict", "/v2/models"}
	for _, p := range interactive {
		if ClassifyPath(p) != ClassInteractive {
			t.Errorf("ClassifyPath(%s) = bulk, want interactive", p)
		}
	}
}
