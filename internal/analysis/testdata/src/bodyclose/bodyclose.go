// Package fixture exercises the bodyclose analyzer.
package fixture

import (
	"io"
	"net/http"
)

// leak reads the body but never closes it — flagged.
func leak(c *http.Client, url string) ([]byte, error) {
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	return io.ReadAll(io.LimitReader(resp.Body, 1<<20))
}

// closed defers the close — fine.
func closed(c *http.Client, url string) ([]byte, error) {
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(io.LimitReader(resp.Body, 1<<20))
}

// closure closes inside a deferred closure — fine.
func closure(c *http.Client, url string) error {
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	defer func() { resp.Body.Close() }()
	return nil
}

// escapes returns the response: the caller owns the close — fine.
func escapes(c *http.Client, url string) (*http.Response, error) {
	return c.Get(url)
}

// escapesVar binds then returns — fine.
func escapesVar(c *http.Client, url string) (*http.Response, error) {
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// handoff passes the response to a callee — obligation transferred,
// fine.
func handoff(c *http.Client, url string, sink func(*http.Response) error) error {
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	return sink(resp)
}

// dropped discards the response entirely — flagged.
func dropped(c *http.Client, url string) {
	c.Get(url)
}

// blank binds the response to _ — flagged.
func blank(c *http.Client, url string) {
	_, _ = c.Get(url)
}
