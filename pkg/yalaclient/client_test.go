package yalaclient

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestModelIDString(t *testing.T) {
	if got := (ModelID{NF: "FlowStats"}).String(); got != "FlowStats" {
		t.Fatalf("plain id %q", got)
	}
	if got := (ModelID{NF: "FlowStats", HW: "pensando"}).String(); got != "FlowStats@pensando" {
		t.Fatalf("qualified id %q", got)
	}
}

// TestWithTimeoutOrderSafe locks in the option contract: the timeout
// applies regardless of option order and never mutates a caller-owned
// http.Client.
func TestWithTimeoutOrderSafe(t *testing.T) {
	shared := &http.Client{}
	c := New("http://x", WithTimeout(5*time.Second), WithHTTPClient(shared))
	if c.httpc.Timeout != 5*time.Second {
		t.Fatalf("timeout lost when WithHTTPClient follows: %v", c.httpc.Timeout)
	}
	if shared.Timeout != 0 {
		t.Fatalf("caller-owned client mutated: %v", shared.Timeout)
	}
	c = New("http://x", WithHTTPClient(shared), WithTimeout(5*time.Second))
	if c.httpc.Timeout != 5*time.Second || shared.Timeout != 0 {
		t.Fatalf("reversed order: client %v, shared %v", c.httpc.Timeout, shared.Timeout)
	}
}

// TestAPIErrorDecoding covers both envelope shapes and the raw-status
// fallback.
func TestAPIErrorDecoding(t *testing.T) {
	var body atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(body.Load().(string)))
	}))
	defer ts.Close()
	c := New(ts.URL)

	body.Store(`{"error":{"code":"invalid_argument","message":"nope","request_id":"req-000042"}}`)
	_, err := c.Predict(context.Background(), ModelID{NF: "x"}, "", PredictParams{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != "invalid_argument" || apiErr.RequestID != "req-000042" {
		t.Fatalf("v2 envelope decoded as %v", err)
	}

	body.Store(`{"error":"flat message"}`)
	_, err = c.Predict(context.Background(), ModelID{NF: "x"}, "", PredictParams{})
	if !errors.As(err, &apiErr) || apiErr.Message != "flat message" || apiErr.Code != "" {
		t.Fatalf("v1 envelope decoded as %v", err)
	}

	body.Store(`not json at all`)
	_, err = c.Predict(context.Background(), ModelID{NF: "x"}, "", PredictParams{})
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("raw fallback decoded as %v", err)
	}
}

// TestRetries asserts 5xx responses retry up to the configured budget
// and 4xx responses never do.
func TestRetries(t *testing.T) {
	var calls atomic.Int64
	var status atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(int(status.Load()))
		w.Write([]byte(`{"error":{"code":"unavailable","message":"busy"}}`))
	}))
	defer ts.Close()

	status.Store(http.StatusServiceUnavailable)
	c := New(ts.URL, WithRetries(2), WithRetryBackoff(time.Millisecond))
	if _, err := c.Stats(context.Background()); err == nil {
		t.Fatal("expected error from always-503 server")
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("5xx retried %d calls, want 3 (1 + 2 retries)", got)
	}

	calls.Store(0)
	status.Store(http.StatusBadRequest)
	if _, err := c.Stats(context.Background()); err == nil {
		t.Fatal("expected error from 400 server")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("4xx retried %d calls, want exactly 1", got)
	}
}

// TestRequestShapes pins the wire paths and bodies the SDK emits.
func TestRequestShapes(t *testing.T) {
	type seen struct {
		method, path, body string
	}
	var last atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		buf := make([]byte, r.ContentLength+1)
		n, _ := r.Body.Read(buf)
		last.Store(seen{r.Method, r.URL.RequestURI(), string(buf[:n])})
		fmt.Fprint(w, `{}`)
	}))
	defer ts.Close()
	c := New(ts.URL)
	ctx := context.Background()

	if _, err := c.Predict(ctx, ModelID{NF: "FlowStats", HW: "pensando"}, "slomo", PredictParams{}); err != nil {
		t.Fatal(err)
	}
	if got := last.Load().(seen); got.path != "/v2/models/FlowStats@pensando/slomo:predict" {
		t.Fatalf("predict path %q", got.path)
	}

	if _, err := c.Predict(ctx, ModelID{NF: "ACL"}, "", PredictParams{}); err != nil {
		t.Fatal(err)
	}
	if got := last.Load().(seen); got.path != "/v2/models/ACL/yala:predict" {
		t.Fatalf("default-backend path %q", got.path)
	}

	if err := c.Reload(ctx, ModelID{NF: "ACL"}, "yala"); err != nil {
		t.Fatal(err)
	}
	if got := last.Load().(seen); got.path != "/v2/models/ACL/yala:reload" || got.body != "" {
		t.Fatalf("reload request %+v", got)
	}

	if _, err := c.PredictBatch(ctx, []BatchItem{{Model: ModelID{NF: "NAT"}}}); err != nil {
		t.Fatal(err)
	}
	got := last.Load().(seen)
	if got.path != "/v2/models:batchPredict" {
		t.Fatalf("batch path %q", got.path)
	}
	var batch struct {
		Requests []map[string]any `json:"requests"`
	}
	if err := json.Unmarshal([]byte(got.body), &batch); err != nil || len(batch.Requests) != 1 {
		t.Fatalf("batch body %q: %v", got.body, err)
	}
	if batch.Requests[0]["model"] != "NAT" {
		t.Fatalf("batch element %+v", batch.Requests[0])
	}

	if _, err := c.ListModels(ctx, ListModelsParams{PageSize: 2, PageToken: "tok"}); err != nil {
		t.Fatal(err)
	}
	if got := last.Load().(seen); got.path != "/v2/models?page_size=2&page_token=tok" {
		t.Fatalf("list path %q", got.path)
	}
}

// TestAllModelsPagination walks a two-page listing.
func TestAllModelsPagination(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("page_token") == "" {
			fmt.Fprint(w, `{"models":[{"id":"A/yala"},{"id":"B/yala"}],"next_page_token":"p2","total_size":3}`)
			return
		}
		fmt.Fprint(w, `{"models":[{"id":"C/yala"}],"total_size":3}`)
	}))
	defer ts.Close()
	models, err := New(ts.URL).AllModels(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 3 || models[2].ID != "C/yala" {
		t.Fatalf("paginated walk: %+v", models)
	}
}
