package cluster

import (
	"fmt"
	"math"

	"repro/internal/backend"
	"repro/internal/feedback"
	"repro/internal/placement"
	"repro/internal/testbed"
)

// Calibration bounds for feedback-driven retraining, mirroring the
// serving layer: the gate's measured/predicted ratio is applied as a
// DVFS-style frequency scale on the training NIC, clamped so one
// pathological window cannot train against absurd hardware.
const (
	minCalibrationScale = 0.25
	maxCalibrationScale = 4.0
)

// onlineLoop is the orchestrator's closed feedback loop: every
// enforcement probe's ground-truth measurements become drift-gate
// observations against the live model's predictions; a drift trip
// retrains a calibrated candidate through the backend, the candidate
// shadow-scores on subsequent probes, and promotion installs it — plus
// refreshed solo baselines on the calibrated hardware — into the
// class's prediction-side simulator. Everything runs synchronously on
// the event loop, so runs stay deterministic and replayable.
type onlineLoop struct {
	env   *Env
	sc    Scenario
	bname string
	ctrl  *feedback.Controller
	// cal is each key's effective calibration — the frequency factor
	// the current live model was trained at (1 until a promotion).
	// pending holds a shadowing candidate's factor until promotion
	// confirms it. The gate's ratio is measured against the *current*
	// live model, so successive retrains compound: a second trip at
	// ratio r on a model calibrated at c trains at c·r, converging on
	// the true hardware rather than re-deriving from nominal.
	cal     map[feedback.Key]float64
	pending map[feedback.Key]float64
}

// newOnlineLoop wires the loop for one prediction-guided policy run; a
// model-free policy returns nil (nothing to retrain).
func newOnlineLoop(e *Env, sc Scenario, policy Scheduler) *onlineLoop {
	strat, ok := policyStrategy(policy.Name())
	if !ok {
		return nil
	}
	l := &onlineLoop{
		env:     e,
		sc:      sc,
		bname:   strat.Backend(),
		cal:     map[feedback.Key]float64{},
		pending: map[feedback.Key]float64{},
	}
	cfg := feedback.Config{
		// Cluster-scale defaults: enforcement probes arrive far less
		// often than serving-path ingests, so the gate warms up on less
		// evidence than the serving default.
		WindowSize:        64,
		MinSamples:        12,
		MinPromoteSamples: 6,
	}
	if e.Feedback != nil {
		cfg = *e.Feedback
	}
	cfg.Synchronous = true
	cfg.Train = l.train
	cfg.Promote = l.promote
	l.ctrl = feedback.New(cfg)
	return l
}

// classCfg resolves a class name back to its hardware preset. Distinct
// core-budget overrides of one class share the preset, so any match
// would serve for training — but the walk is over sorted keys so two
// replays of one recorded run always train against the same classEnv
// (and its co-run caches), keeping retrain outcomes bit-identical.
func (l *onlineLoop) classCfg(class string) (*classEnv, error) {
	for _, key := range l.env.sortedClassKeys() {
		if key.name == class {
			return l.env.class[key], nil
		}
	}
	return nil, fmt.Errorf("cluster: no environment for class %q", class)
}

// train is the drift gate's retrain callback: fit a candidate for the
// key's NF through the backend interface against the class's hardware
// preset, frequency-scaled by the gate's calibration estimate. The
// trusted median measured/predicted ratio is exactly the uniform
// slowdown (or speedup) the enforcement measurements exhibit, so the
// candidate learns the hardware the measurements describe rather than
// the hardware the stale model assumed.
func (l *onlineLoop) train(k feedback.Key, scale float64) (backend.Model, error) {
	b, ok := backend.Get(k.Backend)
	if !ok {
		return nil, fmt.Errorf("cluster: unknown backend %q", k.Backend)
	}
	ce, err := l.classCfg(k.HW)
	if err != nil {
		return nil, err
	}
	eff := l.effective(k) * scale
	eff = math.Min(math.Max(eff, minCalibrationScale), maxCalibrationScale)
	base := ce.cfg.FreqScale
	if base <= 0 {
		base = 1
	}
	var opts any
	if l.env.TrainOptions != nil {
		opts = l.env.TrainOptions(k.Backend)
	}
	m, err := b.Train(backend.TrainEnv{
		NIC:     ce.cfg.WithFrequencyScale(base * eff),
		Seed:    l.env.seed,
		Options: opts,
	}, k.NF)
	if err != nil {
		return nil, err
	}
	l.pending[k] = eff
	return m, nil
}

// effective is the key's current live-model calibration factor.
func (l *onlineLoop) effective(k feedback.Key) float64 {
	if c := l.cal[k]; c > 0 {
		return c
	}
	return 1
}

// promote installs a winning candidate as the live model for every
// class environment sharing the key's class, and reseeds the promoted
// NF's solo baselines from the calibrated hardware — feasibility
// compares predicted co-run throughput against (1-SLA)·solo, so a
// recalibrated model needs recalibrated solos to express the same
// contention ratios the measurements showed.
func (l *onlineLoop) promote(k feedback.Key, m backend.Model) error {
	scale := l.pending[k]
	if scale <= 0 {
		scale = 1
	}
	l.cal[k] = scale
	for _, key := range l.env.sortedClassKeys() {
		if key.name != k.HW {
			continue
		}
		ce := l.env.class[key]
		base := ce.cfg.FreqScale
		if base <= 0 {
			base = 1
		}
		tb := testbed.New(ce.cfg.WithFrequencyScale(base*scale), l.env.seed)
		for _, prof := range l.sc.ProfilePool() {
			meas, err := tb.SoloNF(k.NF, prof)
			if err != nil {
				return err
			}
			ce.sim.SeedSolo(placement.Arrival{Name: k.NF, Profile: prof}, meas)
		}
		ce.sim.SetModel(k.Backend, k.NF, m)
	}
	return nil
}

// observe scores one enforcement probe: the NIC's ground-truth co-run
// measurements (from the possibly-shifted simulator) against the live
// model's predictions on the prediction-side class simulator, one
// observation per resident. An active shadow candidate predicts the
// same scenarios — its output is scored, never used for any decision.
func (l *onlineLoop) observe(gt *placement.Simulator, n *NIC) error {
	if len(n.Tenants) == 0 {
		return nil
	}
	ce, ok := l.env.class[n.key]
	if !ok {
		return fmt.Errorf("cluster: NIC %d has unresolved class %q", n.ID, n.Class)
	}
	residents := n.arrivals()
	names := make([]string, len(residents))
	for i, a := range residents {
		names[i] = a.Name
	}
	// First placements onto empty NICs never consult a model, so the
	// class set may not hold one yet for these NFs.
	if err := l.env.ensureModels(ce, placement.PredictionAware(l.bname), names); err != nil {
		return err
	}
	meas, ordered, err := gt.CoRun(residents)
	if err != nil {
		return err
	}
	for i, a := range ordered {
		others := make([]placement.Arrival, 0, len(ordered)-1)
		others = append(others, ordered[:i]...)
		others = append(others, ordered[i+1:]...)
		model, err := ce.sim.Model(l.bname, a.Name)
		if err != nil {
			return err
		}
		live, err := ce.sim.PredictWith(l.bname, model, a, others)
		if err != nil {
			return err
		}
		o := feedback.Observation{
			Key:      feedback.Key{NF: a.Name, HW: n.Class, Backend: l.bname},
			Source:   fmt.Sprintf("nic-%d", n.ID),
			Measured: meas[i].Throughput,
			LivePred: live,
		}
		if sm, ok := l.ctrl.ShadowModel(o.Key); ok {
			if sp, serr := ce.sim.PredictWith(l.bname, sm, a, others); serr == nil && sp > 0 {
				o.ShadowPred = sp
				o.HasShadow = true
			}
		}
		l.ctrl.Observe(o)
	}
	return nil
}
