package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/nf"
	"repro/internal/nfbench"
	"repro/internal/nicsim"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// Fig1 reproduces Figure 1: throughput drop ratios of the nine NFs when
// co-located with up to three other random NFs at the default profile.
func Fig1(l *Lab) (*Report, error) {
	r := &Report{ID: "fig1", Title: "Throughput drop under random co-location (%, median/95/99)"}
	rng := sim.NewRNG(l.Seed ^ 0xf16)
	names := nf.Table1Names()
	sets := l.n(40, 10)

	var rows [][]string
	for _, target := range names {
		w, err := l.TB.Workload(target, traffic.Default)
		if err != nil {
			return nil, err
		}
		solo, err := l.TB.RunSolo(w)
		if err != nil {
			return nil, err
		}
		var drops []float64
		for s := 0; s < sets; s++ {
			k := 1 + rng.Intn(3)
			ws := []*nicsim.Workload{w}
			for j := 0; j < k; j++ {
				other := names[rng.Intn(len(names))]
				ow, err := l.TB.Workload(other, traffic.Default)
				if err != nil {
					return nil, err
				}
				ws = append(ws, ow)
			}
			ms, err := l.TB.Run(ws...)
			if err != nil {
				return nil, err
			}
			drop := 100 * (1 - ms[0].Throughput/solo.Throughput)
			if drop < 0 {
				drop = 0
			}
			drops = append(drops, drop)
		}
		rows = append(rows, []string{
			target,
			f1(ml.Median(drops)),
			f1(ml.Quantile(drops, 0.95)),
			f1(ml.Quantile(drops, 0.99)),
		})
	}
	r.table([]string{"NF", "median", "p95", "p99"}, rows)
	return r, nil
}

// Fig2 reproduces Figure 2: prediction error of single-resource models on
// FlowMonitor under multi-resource contention (a), and MAPE of sum/min
// composition for the synthetic NF1 (run-to-completion) and NF2
// (pipeline) (b).
func Fig2(l *Lab) (*Report, error) {
	r := &Report{ID: "fig2", Title: "Single-resource models under multi-resource contention"}

	// (a) FlowMonitor: memory-only (SLOMO) vs regex-only predictions.
	yala, err := l.Yala("FlowMonitor")
	if err != nil {
		return nil, err
	}
	sl, err := l.SLOMO("FlowMonitor")
	if err != nil {
		return nil, err
	}
	w, err := l.TB.Workload("FlowMonitor", traffic.Default)
	if err != nil {
		return nil, err
	}
	rng := sim.NewRNG(l.Seed ^ 0xf26)
	var memPred, regexPred, truth []float64
	for i := 0; i < l.n(60, 15); i++ {
		memB := nfbench.MemBench(rng.Range(30e6, 200e6), rng.Range(1<<20, 14<<20))
		regexB := nfbench.RegexBench(rng.Range(0.2e6, 0.9e6), 1000, 2000, 1)
		ms, err := l.TB.Run(w, memB, regexB)
		if err != nil {
			return nil, err
		}
		memSolo, err := l.TB.RunSolo(memB)
		if err != nil {
			return nil, err
		}
		regexSolo, err := l.TB.RunSolo(regexB)
		if err != nil {
			return nil, err
		}
		truth = append(truth, ms[0].Throughput)
		memPred = append(memPred, sl.Predict(memSolo.Counters))
		rc := core.CompetitorFromMeasurement(regexSolo)
		am := yala.Accels[nicsim.AccelRegex]
		stage := am.PacketRate(traffic.Default.MTBR, []core.AccelLoad{rc.Accel[nicsim.AccelRegex]})
		solo := yala.Solo.Predict(traffic.Default)
		regexPred = append(regexPred, math.Min(stage, solo))
	}
	memAPE := ml.APEs(memPred, truth)
	regexAPE := ml.APEs(regexPred, truth)
	r.addf("(a) FlowMonitor, mem+regex contention:")
	r.table([]string{"model", "median APE%", "p95 APE%"}, [][]string{
		{"memory-only (SLOMO)", f1(ml.Median(memAPE)), f1(ml.Quantile(memAPE, 0.95))},
		{"regex-only", f1(ml.Median(regexAPE)), f1(ml.Quantile(regexAPE, 0.95))},
	})

	// (b) Composition baselines on NF1 (RTC) and NF2 (pipeline).
	r.addf("")
	r.addf("(b) composition MAPE%% on synthetic NFs:")
	var rows [][]string
	for _, c := range []struct {
		label   string
		nf      string
		pattern nicsim.ExecPattern
	}{
		{"NF1 (run-to-completion)", "NF1", nicsim.RunToCompletion},
		{"NF2 (pipeline)", "NF2", nicsim.Pipeline},
	} {
		res, err := l.synthComposition(c.nf, c.pattern)
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{
			c.label,
			f1(res[core.ComposeSum]), f1(res[core.ComposeMin]), f1(res[memOnlyKey]), f1(res[regexOnlyKey]),
		})
	}
	r.table([]string{"NF", "sum", "min", "mem-only", "regex-only"}, rows)
	return r, nil
}

// Fig3 reproduces Figure 3: FlowStats throughput vs competing CAR across
// traffic profiles (a), and SLOMO's error on the default vs other
// profiles (b).
func Fig3(l *Lab) (*Report, error) {
	r := &Report{ID: "fig3", Title: "Traffic-profile dependence of contention sensitivity"}
	r.addf("(a) FlowStats throughput (Mpps) vs competing CAR (Mref/s):")
	cars := []float64{25e6, 50e6, 75e6, 100e6, 150e6, 200e6}
	header := []string{"flows\\CAR"}
	for _, c := range cars {
		header = append(header, f0(c/1e6))
	}
	var rows [][]string
	for _, flows := range []int{4000, 8000, 16000} {
		prof := traffic.Default.With(traffic.AttrFlows, float64(flows))
		w, err := l.TB.Workload("FlowStats", prof)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%dK", flows/1000)}
		for _, car := range cars {
			m, err := l.TB.WithMemBench(w, car, 10<<20)
			if err != nil {
				return nil, err
			}
			row = append(row, mpps(m.Throughput))
		}
		rows = append(rows, row)
	}
	r.table(header, rows)

	r.addf("")
	r.addf("(b) SLOMO median APE%%, default profile vs 100 random profiles:")
	rng := sim.NewRNG(l.Seed ^ 0xf3b)
	var brows [][]string
	for _, name := range []string{"FlowStats", "FlowClassifier", "FlowTracker"} {
		sl, err := l.SLOMO(name)
		if err != nil {
			return nil, err
		}
		evalOne := func(prof traffic.Profile) (float64, error) {
			w, err := l.TB.Workload(name, prof)
			if err != nil {
				return 0, err
			}
			car, wss := rng.Range(30e6, 220e6), rng.Range(1<<20, 15<<20)
			truth, err := l.TB.WithMemBench(w, car, wss)
			if err != nil {
				return 0, err
			}
			benchSolo, err := l.TB.RunSolo(nfbench.MemBench(car, wss))
			if err != nil {
				return 0, err
			}
			soloNew, err := l.soloAt(name, prof)
			if err != nil {
				return 0, err
			}
			pred := sl.PredictExtrapolated(benchSolo.Counters, soloNew)
			return 100 * math.Abs(pred-truth.Throughput) / truth.Throughput, nil
		}
		var def, other []float64
		for i := 0; i < l.n(20, 8); i++ {
			e, err := evalOne(traffic.Default)
			if err != nil {
				return nil, err
			}
			def = append(def, e)
		}
		for i := 0; i < l.n(40, 12); i++ {
			e, err := evalOne(traffic.Random(rng))
			if err != nil {
				return nil, err
			}
			other = append(other, e)
		}
		brows = append(brows, []string{name, f1(ml.Median(def)), f1(ml.Median(other))})
	}
	r.table([]string{"NF", "default profile", "other profiles"}, brows)
	return r, nil
}

// Fig4 reproduces Figure 4: throughput of the synthetic regex-NF and
// regex-bench as a function of regex-bench's arrival rate, at several
// regex-NF MTBRs — linear decline into a shared equilibrium.
func Fig4(l *Lab) (*Report, error) {
	r := &Report{ID: "fig4", Title: "Regex accelerator round-robin equilibrium (Mreq/s)"}
	const reqBytes = 4096
	benchMTBR := 300.0
	rates := []float64{0, 0.1e6, 0.2e6, 0.3e6, 0.4e6, 0.6e6, 0.9e6, 1.3e6}
	header := []string{"bench-rate(M/s)"}
	for _, rate := range rates {
		header = append(header, fmt.Sprintf("%.1f", rate/1e6))
	}
	var rows [][]string
	for _, mtbr := range []float64{194, 220, 417, 628} {
		nfRow := []string{fmt.Sprintf("regex-NF@%.0fm/MB", mtbr)}
		benchRow := []string{"  regex-bench"}
		for _, rate := range rates {
			target := nfbench.RegexNF(reqBytes, mtbr, 1)
			bench := nfbench.RegexBench(rate, reqBytes, benchMTBR, 1)
			if rate == 0 {
				m, err := l.TB.RunSolo(target)
				if err != nil {
					return nil, err
				}
				nfRow = append(nfRow, mpps(m.Throughput))
				benchRow = append(benchRow, "0")
				continue
			}
			ms, err := l.TB.Run(target, bench)
			if err != nil {
				return nil, err
			}
			nfRow = append(nfRow, mpps(ms[0].Throughput))
			benchRow = append(benchRow, mpps(ms[1].Throughput))
		}
		rows = append(rows, nfRow, benchRow)
	}
	r.table(header, rows)
	return r, nil
}

// Fig5 reproduces Figure 5: throughput of the synthetic pipeline and
// run-to-completion NFs as a function of competing CAR and competing
// regex match rate.
func Fig5(l *Lab) (*Report, error) {
	r := &Report{ID: "fig5", Title: "Execution-pattern response to combined contention (Kpps)"}
	cars := []float64{30e6, 84e6, 138e6, 192e6, 246e6}
	matchRates := []float64{0, 520e3, 2600e3} // Kmatches/s
	const benchBytes, benchMTBR = 1000.0, 2000.0
	matchesPerReq := benchMTBR * benchBytes / 1e6

	for _, c := range []struct {
		label string
		mk    func() *nicsim.Workload
	}{
		{"pipeline p-NF", nfbench.PNF},
		{"run-to-completion r-NF", nfbench.RNF},
	} {
		r.addf("%s:", c.label)
		header := []string{"match-rate\\CAR"}
		for _, car := range cars {
			header = append(header, f0(car/1e6))
		}
		var rows [][]string
		for _, mr := range matchRates {
			row := []string{fmt.Sprintf("%.0fK/s", mr/1e3)}
			for _, car := range cars {
				ws := []*nicsim.Workload{c.mk(), nfbench.MemBench(car, 8<<20)}
				if mr > 0 {
					ws = append(ws, nfbench.RegexBench(mr/matchesPerReq, benchBytes, benchMTBR, 1))
				}
				ms, err := l.TB.Run(ws...)
				if err != nil {
					return nil, err
				}
				row = append(row, f0(ms[0].Throughput/1e3))
			}
			rows = append(rows, row)
		}
		r.table(header, rows)
		r.addf("")
	}
	return r, nil
}

// Fig6 reproduces Figure 6: FlowStats throughput as a function of traffic
// attributes — flow count under several competing WSS (a), packet size
// under several competing WSS, normalized (b).
func Fig6(l *Lab) (*Report, error) {
	r := &Report{ID: "fig6", Title: "FlowStats throughput vs traffic attributes"}
	const car = 100e6
	wss := []float64{0.5 * (1 << 20), 5 << 20, 10 << 20}

	r.addf("(a) throughput (Mpps) vs flow count (packet size 1500B):")
	header := []string{"flows\\WSS(MB)"}
	for _, w := range wss {
		header = append(header, f1(w/(1<<20)))
	}
	var rows [][]string
	for _, flows := range []int{1000, 10000, 20000, 40000, 60000} {
		prof := traffic.Default.With(traffic.AttrFlows, float64(flows))
		w, err := l.TB.Workload("FlowStats", prof)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%dK", flows/1000)}
		for _, cw := range wss {
			m, err := l.TB.WithMemBench(w, car, cw)
			if err != nil {
				return nil, err
			}
			row = append(row, mpps(m.Throughput))
		}
		rows = append(rows, row)
	}
	r.table(header, rows)

	r.addf("")
	r.addf("(b) normalized throughput vs competing WSS (16K flows):")
	header = []string{"pktsize\\WSS(MB)"}
	for _, w := range wss {
		header = append(header, f1(w/(1<<20)))
	}
	rows = nil
	for _, size := range []int{64, 128, 256, 512, 1024} {
		prof := traffic.Default.With(traffic.AttrPktSize, float64(size))
		w, err := l.TB.Workload("FlowStats", prof)
		if err != nil {
			return nil, err
		}
		solo, err := l.TB.RunSolo(w)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%dB", size)}
		for _, cw := range wss {
			m, err := l.TB.WithMemBench(w, car, cw)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2f", m.Throughput/solo.Throughput))
		}
		rows = append(rows, row)
	}
	r.table(header, rows)
	return r, nil
}

// Fig7 reproduces Figure 7: error distributions under (a) low vs high
// regex contention for Yala and SLOMO on FlowMonitor, and (b) low vs high
// flow-count deviation for Yala, SLOMO, and SLOMO without extrapolation.
func Fig7(l *Lab) (*Report, error) {
	r := &Report{ID: "fig7", Title: "Error distributions by contention level and traffic deviation"}
	yala, err := l.Yala("FlowMonitor")
	if err != nil {
		return nil, err
	}
	sl, err := l.SLOMO("FlowMonitor")
	if err != nil {
		return nil, err
	}
	rng := sim.NewRNG(l.Seed ^ 0xf77)

	evalAt := func(mtbr float64) (yAPE, sAPE float64, err error) {
		prof := traffic.Default.With(traffic.AttrMTBR, mtbr)
		w, err := l.TB.Workload("FlowMonitor", prof)
		if err != nil {
			return 0, 0, err
		}
		memB := nfbench.MemBench(rng.Range(40e6, 160e6), rng.Range(2<<20, 12<<20))
		regexB := nfbench.RegexBench(rng.Range(0.2e6, 0.6e6), 1000, 2000, 1)
		ms, err := l.TB.Run(w, memB, regexB)
		if err != nil {
			return 0, 0, err
		}
		memSolo, err := l.TB.RunSolo(memB)
		if err != nil {
			return 0, 0, err
		}
		regexSolo, err := l.TB.RunSolo(regexB)
		if err != nil {
			return 0, 0, err
		}
		truth := ms[0].Throughput
		yp := yala.Predict(prof, []core.Competitor{
			core.CompetitorFromMeasurement(memSolo),
			core.CompetitorFromMeasurement(regexSolo),
		}).Throughput
		soloNew, err := l.soloAt("FlowMonitor", prof)
		if err != nil {
			return 0, 0, err
		}
		var agg nicsim.Counters
		agg.Add(memSolo.Counters)
		agg.Add(regexSolo.Counters)
		sp := sl.PredictExtrapolated(agg, soloNew)
		return 100 * math.Abs(yp-truth) / truth, 100 * math.Abs(sp-truth) / truth, nil
	}

	var yLow, yHigh, sLow, sHigh []float64
	for i := 0; i < l.n(30, 10); i++ {
		y, s, err := evalAt(rng.Range(50, 600))
		if err != nil {
			return nil, err
		}
		yLow, sLow = append(yLow, y), append(sLow, s)
		y, s, err = evalAt(rng.Range(600, 1100))
		if err != nil {
			return nil, err
		}
		yHigh, sHigh = append(yHigh, y), append(sHigh, s)
	}
	r.addf("(a) FlowMonitor median APE%% by regex contention level:")
	r.table([]string{"model", "low (MTBR<=600)", "high (MTBR>600)"}, [][]string{
		{"Yala", f1(ml.Median(yLow)), f1(ml.Median(yHigh))},
		{"SLOMO", f1(ml.Median(sLow)), f1(ml.Median(sHigh))},
	})

	// (b) memory-only contention, flow-count deviation.
	yalaFS, err := l.Yala("FlowStats")
	if err != nil {
		return nil, err
	}
	slFS, err := l.SLOMO("FlowStats")
	if err != nil {
		return nil, err
	}
	evalFlows := func(flows float64) (y, se, sr float64, err error) {
		prof := traffic.Default.With(traffic.AttrFlows, flows)
		w, err := l.TB.Workload("FlowStats", prof)
		if err != nil {
			return 0, 0, 0, err
		}
		car, wssV := rng.Range(40e6, 200e6), rng.Range(1<<20, 14<<20)
		truth, err := l.TB.WithMemBench(w, car, wssV)
		if err != nil {
			return 0, 0, 0, err
		}
		benchSolo, err := l.TB.RunSolo(nfbench.MemBench(car, wssV))
		if err != nil {
			return 0, 0, 0, err
		}
		yp := yalaFS.Predict(prof, []core.Competitor{core.CompetitorFromMeasurement(benchSolo)}).Throughput
		soloNew, err := l.soloAt("FlowStats", prof)
		if err != nil {
			return 0, 0, 0, err
		}
		spExt := slFS.PredictExtrapolated(benchSolo.Counters, soloNew)
		spRaw := slFS.Predict(benchSolo.Counters)
		t := truth.Throughput
		return 100 * math.Abs(yp-t) / t, 100 * math.Abs(spExt-t) / t, 100 * math.Abs(spRaw-t) / t, nil
	}
	var yL, yH, seL, seH, srL, srH []float64
	for i := 0; i < l.n(30, 10); i++ {
		f := 16000 * rng.Range(0.8, 1.2) // within 20%
		y, se, sr, err := evalFlows(f)
		if err != nil {
			return nil, err
		}
		yL, seL, srL = append(yL, y), append(seL, se), append(srL, sr)
		f = rng.Range(40000, 500000) // far off
		y, se, sr, err = evalFlows(f)
		if err != nil {
			return nil, err
		}
		yH, seH, srH = append(yH, y), append(seH, se), append(srH, sr)
	}
	r.addf("")
	r.addf("(b) FlowStats median APE%% by flow-count deviation (memory-only):")
	r.table([]string{"model", "low (<=20%)", "high (>20%)"}, [][]string{
		{"Yala", f1(ml.Median(yL)), f1(ml.Median(yH))},
		{"SLOMO", f1(ml.Median(seL)), f1(ml.Median(seH))},
		{"SLOMO (w/o extrapolation)", f1(ml.Median(srL)), f1(ml.Median(srH))},
	})
	return r, nil
}

// Fig8 reproduces Figure 8: FlowClassifier prediction error under full,
// random and adaptive profiling as the profiling quota changes.
func Fig8(l *Lab) (*Report, error) {
	r := &Report{ID: "fig8", Title: "FlowClassifier MAPE% vs profiling quota"}
	baseQuota := l.n(400, 120)
	rows := [][]string{}
	for _, mult := range []float64{0.5, 1, 1.5} {
		quota := int(float64(baseQuota) * mult)
		randM, err := l.profiledMAPE("FlowClassifier", planRandom, quota)
		if err != nil {
			return nil, err
		}
		adapM, err := l.profiledMAPE("FlowClassifier", planAdaptive, quota)
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.1fx (%d)", mult, quota), f1(randM), f1(adapM),
		})
	}
	fullM, err := l.profiledMAPE("FlowClassifier", planFull, 0)
	if err != nil {
		return nil, err
	}
	r.table([]string{"quota", "random", "adaptive"}, rows)
	r.addf("full profiling reference: %.1f%% (reduced grid; paper's full grid is 3200x)", fullM)
	return r, nil
}
