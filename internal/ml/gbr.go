package ml

import (
	"fmt"

	"repro/internal/sim"
)

// GBRConfig configures gradient-boosting regression. The defaults mirror
// the hyperparameter regime SLOMO uses with sklearn's
// GradientBoostingRegressor.
type GBRConfig struct {
	Trees        int
	LearningRate float64
	MaxDepth     int
	MinLeaf      int
	Subsample    float64 // fraction of samples per tree (1 = all)
	Seed         uint64
}

// DefaultGBRConfig is a reasonable general-purpose configuration.
func DefaultGBRConfig() GBRConfig {
	return GBRConfig{
		Trees:        220,
		LearningRate: 0.06,
		MaxDepth:     6,
		MinLeaf:      2,
		Subsample:    0.85,
		Seed:         1,
	}
}

// GBR is a fitted gradient-boosting regressor: a bias plus a sum of
// shrunken regression trees fitted to successive residuals.
type GBR struct {
	bias  float64
	rate  float64
	trees []*Tree
}

// FitGBR trains a gradient-boosting regressor with squared-error loss.
func FitGBR(X [][]float64, y []float64, cfg GBRConfig) (*GBR, error) {
	n := len(X)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("ml: FitGBR with %d rows, %d targets", n, len(y))
	}
	if cfg.Trees <= 0 {
		return nil, fmt.Errorf("ml: FitGBR needs at least one tree")
	}
	if cfg.LearningRate <= 0 {
		return nil, fmt.Errorf("ml: FitGBR learning rate must be positive")
	}
	if cfg.Subsample <= 0 || cfg.Subsample > 1 {
		cfg.Subsample = 1
	}
	rng := sim.NewRNG(cfg.Seed)

	var bias float64
	for _, v := range y {
		bias += v
	}
	bias /= float64(n)

	g := &GBR{bias: bias, rate: cfg.LearningRate}
	pred := make([]float64, n)
	for i := range pred {
		pred[i] = bias
	}
	residual := make([]float64, n)
	tc := TreeConfig{MaxDepth: cfg.MaxDepth, MinLeaf: cfg.MinLeaf}

	for t := 0; t < cfg.Trees; t++ {
		for i := range residual {
			residual[i] = y[i] - pred[i]
		}
		sX, sY := X, residual
		if cfg.Subsample < 1 {
			m := int(cfg.Subsample * float64(n))
			if m < 2 {
				m = 2
			}
			perm := rng.Perm(n)[:m]
			sX = make([][]float64, m)
			sY = make([]float64, m)
			for j, p := range perm {
				sX[j] = X[p]
				sY[j] = residual[p]
			}
		}
		tree := FitTree(sX, sY, tc)
		g.trees = append(g.trees, tree)
		for i := range pred {
			pred[i] += cfg.LearningRate * tree.Predict(X[i])
		}
	}
	return g, nil
}

// Predict evaluates the ensemble at x.
func (g *GBR) Predict(x []float64) float64 {
	y := g.bias
	for _, t := range g.trees {
		y += g.rate * t.Predict(x)
	}
	return y
}

// NumTrees reports the ensemble size.
func (g *GBR) NumTrees() int { return len(g.trees) }
