package obs

import (
	"context"
	"sync"
	"time"
)

// Trace accumulates per-stage timings for one request. It is created
// by the serving layer's request middleware, carried in the request
// context, and read back at response time to feed stage histograms and
// access-log lines. Safe for concurrent spans — batch elements fan out
// on a shared request context.
type Trace struct {
	ID string

	mu     sync.Mutex
	stages []stageSample
}

type stageSample struct {
	name string
	dur  time.Duration
}

// NewTrace returns a trace for one request.
func NewTrace(id string) *Trace { return &Trace{ID: id} }

// add records one finished span.
func (t *Trace) add(name string, dur time.Duration) {
	t.mu.Lock()
	t.stages = append(t.stages, stageSample{name, dur})
	t.mu.Unlock()
}

// Stages returns the total time attributed to each stage name. A stage
// spanned more than once (batch elements, retries) sums.
func (t *Trace) Stages() map[string]time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]time.Duration, len(t.stages))
	for _, s := range t.stages {
		out[s.name] += s.dur
	}
	return out
}

type traceKey struct{}

// ContextWithTrace attaches t to ctx.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the request's trace, or nil if the context is
// untraced (direct library calls, tests).
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// Span is one in-flight stage timing. It is a value type: starting and
// ending a span allocates nothing, and a span started on an untraced
// context is a no-op.
type Span struct {
	tr    *Trace
	name  string
	start time.Time
}

// StartSpan begins timing the named stage on ctx's trace. Call End on
// the returned span when the stage finishes; on an untraced context
// both calls are no-ops.
func StartSpan(ctx context.Context, name string) Span {
	tr := FromContext(ctx)
	if tr == nil {
		return Span{}
	}
	return Span{tr: tr, name: name, start: time.Now()}
}

// End finishes the span and records its duration on the trace.
func (s Span) End() {
	if s.tr == nil {
		return
	}
	s.tr.add(s.name, time.Since(s.start))
}
