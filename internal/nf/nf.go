// Package nf implements the on-NIC network functions of the paper's
// Table 1 as real packet processors: they parse packet bytes, maintain
// flow tables, walk routing tries, match ACLs, and scan payloads.
//
// The NFs run their processing logic on generated traffic to *measure*
// their structural footprint (working-set size, memory references per
// packet, accelerator request shape), which is then mapped onto a
// nicsim.Workload. Traffic attributes therefore change workload
// characteristics the same way they do on hardware: more flows grow the
// flow table (and the WSS), larger packets carry more payload to the
// regex engine, higher MTBR means more matches per request.
package nf

import (
	"fmt"

	"repro/internal/nicsim"
	"repro/internal/packet"
	"repro/internal/patmatch"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// OpStats accumulates the operations an NF performs while processing a
// batch of packets. Measure converts these into per-packet hardware costs.
type OpStats struct {
	Packets       float64
	HashProbes    float64 // flow-table slot inspections
	TrieSteps     float64 // LPM trie node visits
	RuleChecks    float64 // ACL rule evaluations
	BytesTouched  float64 // packet bytes read/written by the CPU
	RegexBytes    float64 // payload bytes submitted to the regex engine
	RegexMatches  float64 // ruleset matches in the submitted payloads
	CompressBytes float64 // payload bytes submitted to the compression engine
	Drops         float64
}

// NF is a network function: a real packet processor with inspectable
// state. Implementations are not safe for concurrent use.
type NF interface {
	// Name is the NF's catalog name (e.g. "FlowMonitor").
	Name() string
	// Pattern is the NF's execution pattern (how Measure composes its
	// resource usage).
	Pattern() nicsim.ExecPattern
	// Process runs the NF's per-packet logic, accumulating operation
	// counts into st.
	Process(p *packet.Packet, st *OpStats) error
	// StateBytes is the current size of the NF's tables.
	StateBytes() float64
	// Reset clears all state.
	Reset()
}

// Per-operation hardware cost constants mapping measured operations onto
// the simulated SoC. Calibrated so solo NF throughputs land in the same
// 0.1–1.5 Mpps range the paper reports for Click/DPDK NFs on BlueField-2.
const (
	baseCPUSec     = 850e-9    // rx/tx + framework overhead per packet
	hashProbeSec   = 55e-9     // one table-slot inspection
	trieStepSec    = 9e-9      // one trie node visit
	ruleCheckSec   = 4e-9      // one ACL rule evaluation
	byteTouchSec   = 0.30e-9   // one payload byte handled by the CPU
	accelDispatch  = 60e-9     // enqueue/dequeue of one accelerator request
	baseMemRefs    = 20.0      // descriptor, ring, header and buffer-metadata cache lines
	probeMemRefs   = 4.0       // cache lines per table probe (entry + chain metadata)
	trieMemRefs    = 1.0       // cache lines per trie step
	ruleMemRefs    = 0.5       // cache lines per rule check
	codeFootprint  = 192 << 10 // instruction/stack working set
	defaultMemMLP  = 1.6       // modest overlap for pointer-chasing NFs
	defaultNFCores = 2         // paper: each NF gets two dedicated cores
)

// Matcher is the shared compiled ruleset (the paper's NFs share one
// ruleset [5]).
var Matcher = patmatch.CompileDefault()

// MeasureConfig tunes footprint measurement.
type MeasureConfig struct {
	// MeasurePackets is the number of full packets processed in the
	// measurement phase (after table population).
	MeasurePackets int
	// PopulatePasses is how many one-packet-per-flow passes warm the
	// tables before measurement.
	PopulatePasses int
}

// DefaultMeasure is the standard measurement configuration.
var DefaultMeasure = MeasureConfig{MeasurePackets: 300, PopulatePasses: 1}

// Measure profiles the NF's packet-processing code under the given
// traffic profile and returns the equivalent hardware workload. The NF is
// Reset first, its tables are populated with the profile's flows, and then
// MeasurePackets full packets (with synthesized payloads) are processed
// while counting operations.
func Measure(n NF, prof traffic.Profile, seed uint64) (*nicsim.Workload, error) {
	return MeasureWith(n, prof, seed, DefaultMeasure)
}

// MeasureWith is Measure with an explicit configuration.
func MeasureWith(n NF, prof traffic.Profile, seed uint64, cfg MeasureConfig) (*nicsim.Workload, error) {
	rng := sim.NewRNG(seed)
	gen := traffic.NewGenerator(prof, rng)
	n.Reset()
	if r, ok := n.(FlowReserver); ok {
		r.ReserveFlows(gen.NumFlows())
	}

	// Population phase: one cheap header-only packet per flow, so
	// per-flow state reaches its steady-state size.
	var warm OpStats
	for pass := 0; pass < cfg.PopulatePasses; pass++ {
		for i := 0; i < gen.NumFlows(); i++ {
			if err := n.Process(gen.HeaderPacket(i), &warm); err != nil {
				return nil, fmt.Errorf("nf %s: populate: %w", n.Name(), err)
			}
		}
	}

	// Measurement phase: full packets with payloads at the profile MTBR.
	var st OpStats
	for i := 0; i < cfg.MeasurePackets; i++ {
		if err := n.Process(gen.Packet(), &st); err != nil {
			return nil, fmt.Errorf("nf %s: measure: %w", n.Name(), err)
		}
	}
	if st.Packets == 0 {
		return nil, fmt.Errorf("nf %s: no packets measured", n.Name())
	}

	per := 1 / st.Packets
	w := &nicsim.Workload{
		Name:    n.Name(),
		Pattern: n.Pattern(),
		Cores:   defaultNFCores,
		CPUSecPerPkt: baseCPUSec +
			st.HashProbes*per*hashProbeSec +
			st.TrieSteps*per*trieStepSec +
			st.RuleChecks*per*ruleCheckSec +
			st.BytesTouched*per*byteTouchSec,
		MemRefsPerPkt: baseMemRefs +
			st.HashProbes*per*probeMemRefs +
			st.TrieSteps*per*trieMemRefs +
			st.RuleChecks*per*ruleMemRefs +
			st.BytesTouched*per/64,
		WSSBytes: n.StateBytes() + codeFootprint,
		MemMLP:   defaultMemMLP,
		PktBytes: float64(prof.PktSize),
		Accel:    map[nicsim.AccelKind]nicsim.AccelUse{},
	}
	// NFs open one request queue per worker core (per-core queue pairs,
	// the DPDK/DOCA convention), so a core never waits behind its own
	// sibling's request.
	if st.RegexBytes > 0 {
		w.CPUSecPerPkt += accelDispatch
		w.Accel[nicsim.AccelRegex] = nicsim.AccelUse{
			ReqsPerPkt:    1,
			BytesPerReq:   st.RegexBytes * per,
			MatchesPerReq: st.RegexMatches * per,
			Queues:        defaultNFCores,
		}
	}
	if st.CompressBytes > 0 {
		w.CPUSecPerPkt += accelDispatch
		w.Accel[nicsim.AccelCompress] = nicsim.AccelUse{
			ReqsPerPkt:  1,
			BytesPerReq: st.CompressBytes * per,
			Queues:      defaultNFCores,
		}
	}
	return w, nil
}
