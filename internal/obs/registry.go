package obs

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero Counter is
// usable; registry-created counters are shared by series identity.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load reads the current count. The method name matches
// atomic.Uint64's so a Counter can drop into code that held one.
func (c *Counter) Load() uint64 { return c.v.Load() }

// metricKind discriminates what one registered series holds.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindCounterFunc
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGaugeFunc:
		return "gauge"
	}
	return "histogram"
}

// series is one registered (family, label set) metric.
type series struct {
	family string
	labels string // rendered, key-sorted: `verb="predict"`, "" when unlabeled
	kind   metricKind

	counter *Counter
	fn      func() float64
	hist    *Histogram
}

// registryShards is the shard count; a power of two so the key hash
// maps to a shard with a mask. Registration and exposition are the only
// lock takers — observations go through pointers — so sharding exists
// for callers that look series up on a warm-ish path (the scheduler's
// per-policy lookups) instead of caching the pointer.
const registryShards = 8

type registryShard struct {
	mu     sync.Mutex
	series map[string]*series
}

// Registry holds a process's (or subsystem's) metric series and renders
// them in Prometheus text exposition format. Get-or-create accessors
// are safe for concurrent use; registering the same (name, labels) with
// a different metric kind panics — that is a programming error, not a
// runtime condition.
type Registry struct {
	shards [registryShards]registryShard
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	for i := range r.shards {
		r.shards[i].series = map[string]*series{}
	}
	return r
}

// renderLabels renders alternating key, value label pairs canonically:
// sorted by key, values escaped for the exposition format. Odd trailing
// arguments are a programming error.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", labels))
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// get returns the series for (family, labels), creating it with mk on
// first use. A kind clash with an existing series panics.
func (r *Registry) get(family string, labels []string, kind metricKind, mk func() *series) *series {
	rendered := renderLabels(labels)
	key := family + "\x00" + rendered
	h := fnv.New32a()
	h.Write([]byte(key))
	sh := &r.shards[h.Sum32()&(registryShards-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s, ok := sh.series[key]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("obs: %s{%s} re-registered as %s (was %s)",
				family, rendered, kind.promType(), s.kind.promType()))
		}
		return s
	}
	s := mk()
	s.family, s.labels, s.kind = family, rendered, kind
	sh.series[key] = s
	return s
}

// Counter returns the counter for (name, labels), creating it on first
// use. Labels are alternating key, value pairs.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	s := r.get(name, labels, kindCounter, func() *series {
		return &series{counter: &Counter{}}
	})
	return s.counter
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — for counters another subsystem already maintains
// (cache hits, replica request totals) that should not be double
// counted into a second atomic.
func (r *Registry) CounterFunc(name string, fn func() uint64, labels ...string) {
	s := r.get(name, labels, kindCounterFunc, func() *series { return &series{} })
	s.fn = func() float64 { return float64(fn()) }
}

// GaugeFunc registers a gauge read from fn at exposition time (queue
// depth, uptime, entry counts).
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...string) {
	s := r.get(name, labels, kindGaugeFunc, func() *series { return &series{} })
	s.fn = fn
}

// Histogram returns the histogram for (name, labels), creating it with
// the given bucket upper bounds on first use (nil selects
// LatencyBuckets). Subsequent calls return the existing histogram
// regardless of the buckets argument.
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	s := r.get(name, labels, kindHistogram, func() *series {
		return &series{hist: NewHistogram(buckets)}
	})
	return s.hist
}

// snapshot collects every registered series sorted by (family, labels)
// so exposition order is deterministic.
func (r *Registry) snapshot() []*series {
	var all []*series
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for _, s := range sh.series {
			all = append(all, s)
		}
		sh.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].family != all[j].family {
			return all[i].family < all[j].family
		}
		return all[i].labels < all[j].labels
	})
	return all
}

// formatValue renders a sample value: integral values print without an
// exponent or trailing zeros, everything else in Go's shortest 'g'
// form.
func formatValue(v float64) string {
	if v == float64(uint64(v)) && v >= 0 && v < 1e15 {
		return strconv.FormatUint(uint64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
