// Placement: schedule a random sequence of NF arrivals onto SmartNICs
// with four strategies and compare NIC usage and SLA violations — the
// paper's §7.5.1 use case at example scale.
package main

import (
	"fmt"
	"log"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/nicsim"
	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/slomo"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

func main() {
	tb := testbed.New(nicsim.BlueField2(), 7)
	names := []string{"FlowStats", "ACL", "FlowClassifier", "FlowTracker"}

	// The simulator consumes models only through the backend interface;
	// offline-trained models are wrapped into opaque handles.
	ps := placement.NewSimulator(tb)
	for _, n := range names {
		fmt.Printf("training models for %s...\n", n)
		m, err := core.NewTrainer(tb, core.DefaultTrainConfig()).Train(n)
		if err != nil {
			log.Fatal(err)
		}
		ps.SetModel("yala", n, backend.WrapYala(m))
		sm, err := slomo.Train(tb, n, traffic.Default, slomo.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		ps.SetModel("slomo", n, backend.WrapSLOMO(sm))
	}

	// 50 arrivals with SLAs between 5% and 20% allowed drop.
	rng := sim.NewRNG(99)
	var seq []placement.Arrival
	for i := 0; i < 50; i++ {
		seq = append(seq, placement.Arrival{
			Name:    names[rng.Intn(len(names))],
			Profile: traffic.Default,
			SLA:     0.05 + 0.15*rng.Float64(),
		})
	}

	fmt.Printf("\n%-16s %6s %12s\n", "strategy", "NICs", "violations")
	for _, st := range []placement.Strategy{
		placement.Monopolization, placement.Greedy,
		placement.SLOMOAware, placement.YalaAware, placement.Oracle,
	} {
		res, err := ps.Place(seq, st)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %6d %9d/%d\n", st, res.NICsUsed, res.Violations, res.Total)
	}
}
