package serve

// Contract tests for the v1→v2 API transition: the /v1 adapters and the
// /v2 resource API must return identical logical results for the same
// scenario, every /v1 response must carry the Deprecation header, and
// the /v2 error envelope and paginated model listing are pinned by
// golden JSON fixtures (regenerate with `go test ./internal/serve -run
// TestV2Golden -update`).

import (
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden /v2 fixtures")

// canonJSON re-marshals a JSON document with sorted keys and stable
// indentation so two logically equal bodies compare equal as strings.
func canonJSON(t *testing.T, data []byte) string {
	t.Helper()
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("canonJSON: %v (body %s)", err, data)
	}
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// roundTrip posts body to path and returns the response.
func roundTrip(t *testing.T, ts *httptest.Server, method, path, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestV1V2Contract is the table-driven equivalence suite: each case
// names a /v1 call and its /v2 counterpart; both must return the same
// status and the same canonical JSON body.
func TestV1V2Contract(t *testing.T) {
	ts := testServer(t)
	cases := []struct {
		name           string
		v1Path, v1Body string
		v2Path, v2Body string
	}{
		{
			name:   "predict default backend",
			v1Path: "/v1/predict", v1Body: `{"nf":"FlowStats","competitors":[{"name":"ACL"}]}`,
			v2Path: "/v2/models/FlowStats/yala:predict", v2Body: `{"competitors":[{"name":"ACL"}]}`,
		},
		{
			name:   "predict slomo with profile",
			v1Path: "/v1/predict", v1Body: `{"nf":"ACL","backend":"slomo","profile":{"flows":64000},"competitors":[{"name":"FlowStats"}]}`,
			v2Path: "/v2/models/ACL/slomo:predict", v2Body: `{"profile":{"flows":64000},"competitors":[{"name":"FlowStats"}]}`,
		},
		{
			name:   "batch",
			v1Path: "/v1/predict/batch", v1Body: `{"requests":[{"nf":"FlowStats"},{"nf":"ACL","competitors":[{"name":"FlowStats"}]}]}`,
			v2Path: "/v2/models:batchPredict", v2Body: `{"requests":[{"model":"FlowStats"},{"model":"ACL","competitors":[{"name":"FlowStats"}]}]}`,
		},
		{
			name:   "compare",
			v1Path: "/v1/compare", v1Body: `{"nf":"FlowStats","competitors":[{"name":"ACL"}]}`,
			v2Path: "/v2/models/FlowStats:compare", v2Body: `{"competitors":[{"name":"ACL"}]}`,
		},
		{
			name:   "diagnose",
			v1Path: "/v1/diagnose", v1Body: `{"nf":"FlowStats","competitors":[{"name":"ACL"}]}`,
			v2Path: "/v2/models/FlowStats:diagnose", v2Body: `{"competitors":[{"name":"ACL"}]}`,
		},
		{
			name:   "admit",
			v1Path: "/v1/admit", v1Body: `{"residents":[{"name":"ACL","sla":0.9}],"candidate":{"name":"FlowStats","sla":0.9}}`,
			v2Path: "/v2/models/FlowStats/yala:admit", v2Body: `{"residents":[{"name":"ACL","sla":0.9}],"sla":0.9}`,
		},
		{
			name:   "admit rejected on cores",
			v1Path: "/v1/admit", v1Body: `{"residents":[{"name":"ACL","sla":1},{"name":"ACL","sla":1},{"name":"ACL","sla":1},{"name":"ACL","sla":1}],"candidate":{"name":"ACL","sla":1}}`,
			v2Path: "/v2/models/ACL/yala:admit", v2Body: `{"residents":[{"name":"ACL","sla":1},{"name":"ACL","sla":1},{"name":"ACL","sla":1},{"name":"ACL","sla":1}],"sla":1}`,
		},
		{
			name:   "bad request statuses agree",
			v1Path: "/v1/predict", v1Body: `{"nf":"NoSuchNF"}`,
			v2Path: "/v2/models/NoSuchNF/yala:predict", v2Body: `{}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r1, b1 := roundTrip(t, ts, "POST", tc.v1Path, tc.v1Body)
			r2, b2 := roundTrip(t, ts, "POST", tc.v2Path, tc.v2Body)
			if r1.StatusCode != r2.StatusCode {
				t.Fatalf("status diverged: v1 %d, v2 %d\nv1 %s\nv2 %s", r1.StatusCode, r2.StatusCode, b1, b2)
			}
			if r1.StatusCode != http.StatusOK {
				// Error bodies use different envelopes by design; the
				// contract is the status code and that both name the cause.
				return
			}
			if got, want := canonJSON(t, b2), canonJSON(t, b1); got != want {
				t.Fatalf("body diverged:\nv1 %s\nv2 %s", want, got)
			}
		})
	}
}

// TestV1DeprecationHeaders asserts every /v1 route advertises its
// deprecation and /v2 successor — the CI smoke gates on this.
func TestV1DeprecationHeaders(t *testing.T) {
	ts := testServer(t)
	routes := []struct{ method, path, body string }{
		{"POST", "/v1/predict", `{"nf":"FlowStats"}`},
		{"POST", "/v1/predict/batch", `{"requests":[{"nf":"FlowStats"}]}`},
		{"POST", "/v1/compare", `{"nf":"FlowStats"}`},
		{"POST", "/v1/admit", `{"candidate":{"name":"FlowStats","sla":0.5}}`},
		{"POST", "/v1/diagnose", `{"nf":"FlowStats"}`},
		{"POST", "/v1/reload", `{"nf":"FlowStats"}`},
		{"GET", "/v1/models", ""},
		{"GET", "/v1/stats", ""},
		{"GET", "/v1/cluster/policies", ""},
	}
	for _, rt := range routes {
		resp, _ := roundTrip(t, ts, rt.method, rt.path, rt.body)
		if dep := resp.Header.Get("Deprecation"); dep != "true" {
			t.Errorf("%s %s: Deprecation header %q, want \"true\"", rt.method, rt.path, dep)
		}
		if link := resp.Header.Get("Link"); !strings.Contains(link, "successor-version") {
			t.Errorf("%s %s: Link header %q lacks successor-version", rt.method, rt.path, link)
		}
		if rid := resp.Header.Get("X-Request-Id"); rid == "" {
			t.Errorf("%s %s: missing X-Request-Id", rt.method, rt.path)
		}
	}
	// /v2 responses must NOT be marked deprecated.
	resp, _ := roundTrip(t, ts, "GET", "/v2/models", "")
	if dep := resp.Header.Get("Deprecation"); dep != "" {
		t.Errorf("/v2/models: unexpected Deprecation header %q", dep)
	}
}

// requestIDPat normalizes the per-request IDs inside golden fixtures;
// trainedAtPat normalizes the wall-clock training timestamps model
// listings carry (the fixture pins that the field is present, not when
// the test ran).
var (
	requestIDPat = regexp.MustCompile(`req-[0-9]{6}`)
	trainedAtPat = regexp.MustCompile(`"trained_at": [0-9]+`)
)

// checkGolden compares got against the named fixture, normalizing
// request IDs and training timestamps; -update rewrites the fixture.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	got = requestIDPat.ReplaceAllString(got, "req-NNNNNN")
	got = trainedAtPat.ReplaceAllString(got, `"trained_at": 1700000000`) + "\n"
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading fixture (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("fixture %s drifted:\n--- want\n%s\n--- got\n%s", name, want, got)
	}
}

// TestV2GoldenErrorEnvelope pins the exact error-envelope shape clients
// program against.
func TestV2GoldenErrorEnvelope(t *testing.T) {
	ts := testServer(t)
	resp, body := roundTrip(t, ts, "POST", "/v2/models/NoSuchNF/yala:predict", `{}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	checkGolden(t, "v2_error_envelope.json", canonJSON(t, body))
}

// TestV2GoldenModelsPage pins the paginated model listing: a dedicated
// service over its own model directory, three cheap stub models, page
// size two — first page plus continuation token, then the final page.
func TestV2GoldenModelsPage(t *testing.T) {
	svc := NewService(ServiceConfig{
		Registry: RegistryConfig{Dir: t.TempDir(), Seed: 1, Train: testTrainConfig(1), SLOMO: testSLOMOConfig(1)},
		Workers:  2,
	})
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)

	// Materialize three models through the stub backend (no training
	// cost, fully deterministic listing state).
	for _, nf := range []string{"ACL", "FlowStats", "NAT"} {
		resp, body := roundTrip(t, ts, "POST", "/v2/models/"+nf+"/fake:predict", `{}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seeding %s: %d %s", nf, resp.StatusCode, body)
		}
	}

	resp, body := roundTrip(t, ts, "GET", "/v2/models?page_size=2", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("page 1: status %d", resp.StatusCode)
	}
	checkGolden(t, "v2_models_page.json", canonJSON(t, body))

	var page modelsPageV2
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatal(err)
	}
	if page.NextPageToken == "" || page.TotalSize != 3 || len(page.Models) != 2 {
		t.Fatalf("page 1 shape: %+v", page)
	}
	resp, body = roundTrip(t, ts, "GET", "/v2/models?page_size=2&page_token="+page.NextPageToken, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("page 2: status %d", resp.StatusCode)
	}
	var page2 modelsPageV2
	if err := json.Unmarshal(body, &page2); err != nil {
		t.Fatal(err)
	}
	if len(page2.Models) != 1 || page2.NextPageToken != "" {
		t.Fatalf("page 2 shape: %+v", page2)
	}
	if page2.Models[0].ID != "NAT/fake" {
		t.Fatalf("page 2 content: %+v", page2.Models)
	}

	// A mangled token is an invalid_argument, not a 500.
	resp, body = roundTrip(t, ts, "GET", "/v2/models?page_token=%21%21", "")
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "page_token") {
		t.Fatalf("bad token: status %d body %s", resp.StatusCode, body)
	}
}

// TestV2PaginationDrift is the shrinking-listing contract: a page token
// minted against a longer listing must, after models disappear between
// page fetches (reload drops the loaded entries, the files leave the
// model directory), land as an empty final page — 200, no models, no
// next_page_token — never an error or an out-of-range slice. Offset
// tokens are documented as snapshot-quality, but "the listing moved"
// must degrade to "the walk ends", not to a failed walk: behind a
// scale-out gateway every replica pages independently, so drift is the
// common case, not the corner.
func TestV2PaginationDrift(t *testing.T) {
	dir := t.TempDir()
	svc := NewService(ServiceConfig{
		Registry: RegistryConfig{Dir: dir, Seed: 1, Train: testTrainConfig(1), SLOMO: testSLOMOConfig(1)},
		Workers:  2,
	})
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)

	// Four stub models: listing = [ACL, FlowStats, NAT, NIDS] × fake.
	seeded := []string{"ACL", "FlowStats", "NAT", "NIDS"}
	for _, name := range seeded {
		if resp, body := roundTrip(t, ts, "POST", "/v2/models/"+name+"/fake:predict", `{}`); resp.StatusCode != http.StatusOK {
			t.Fatalf("seeding %s: %d %s", name, resp.StatusCode, body)
		}
	}
	resp, body := roundTrip(t, ts, "GET", "/v2/models?page_size=3", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("page 1: status %d body %s", resp.StatusCode, body)
	}
	var page1 modelsPageV2
	if err := json.Unmarshal(body, &page1); err != nil {
		t.Fatal(err)
	}
	if len(page1.Models) != 3 || page1.NextPageToken == "" || page1.TotalSize != 4 {
		t.Fatalf("page 1 shape: %+v", page1)
	}

	// Mutate the registry between fetches: drop every model but ACL from
	// memory and from disk. The held token now points past the end.
	for _, name := range seeded[1:] {
		svc.Reload("fake", name)
		if err := os.Remove(filepath.Join(dir, name+".fake.json")); err != nil {
			t.Fatal(err)
		}
	}

	resp, body = roundTrip(t, ts, "GET", "/v2/models?page_size=3&page_token="+page1.NextPageToken, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale token: status %d body %s (want empty final page)", resp.StatusCode, body)
	}
	var page2 modelsPageV2
	if err := json.Unmarshal(body, &page2); err != nil {
		t.Fatal(err)
	}
	if len(page2.Models) != 0 || page2.NextPageToken != "" || page2.TotalSize != 1 {
		t.Fatalf("stale token page: %+v, want empty final page over 1 model", page2)
	}

	// The exact-boundary token (offset == listing length) is the token a
	// client legitimately holds when the final page filled completely;
	// it must also close the walk cleanly.
	resp, body = roundTrip(t, ts, "GET", "/v2/models?page_token="+encodePageToken(1), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("boundary token: status %d body %s", resp.StatusCode, body)
	}
	var page3 modelsPageV2
	if err := json.Unmarshal(body, &page3); err != nil {
		t.Fatal(err)
	}
	if len(page3.Models) != 0 || page3.NextPageToken != "" {
		t.Fatalf("boundary token page: %+v, want empty final page", page3)
	}

	// A walk restarted from scratch sees the shrunken listing whole.
	resp, body = roundTrip(t, ts, "GET", "/v2/models", "")
	var page4 modelsPageV2
	if err := json.Unmarshal(body, &page4); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(page4.Models) != 1 || page4.Models[0].ID != "ACL/fake" {
		t.Fatalf("fresh walk after shrink: status %d page %+v", resp.StatusCode, page4)
	}
}

// TestV2HardwareQualifiedPredict exercises the hw-qualified model path:
// the same NF served on two hardware classes yields class-specific
// predictions, and an unknown class is rejected up front.
func TestV2HardwareQualifiedPredict(t *testing.T) {
	ts := testServer(t)
	base := postAs[PredictResponse](t, ts, "/v2/models/FlowStats/fake:predict", predictParamsV2{})
	qualified := postAs[PredictResponse](t, ts, "/v2/models/FlowStats@pensando/fake:predict", predictParamsV2{})
	if base.HW != "" || qualified.HW != "pensando" {
		t.Fatalf("hw labels: base %q, qualified %q", base.HW, qualified.HW)
	}
	status, body := postRaw(t, ts, "/v2/models/FlowStats@martian/yala:predict", `{}`)
	if status != http.StatusBadRequest || !strings.Contains(body, "hardware class") {
		t.Fatalf("unknown class: status %d body %s", status, body)
	}
	status, body = postRaw(t, ts, "/v2/models/a@b@c/yala:predict", `{}`)
	if status != http.StatusBadRequest || !strings.Contains(body, "more than one @") {
		t.Fatalf("double-@ id: status %d body %s", status, body)
	}
	status, body = postRaw(t, ts, "/v2/models/FlowStats@/yala:predict", `{}`)
	if status != http.StatusBadRequest || !strings.Contains(body, "empty hardware qualifier") {
		t.Fatalf("trailing-@ id: status %d body %s", status, body)
	}
}

// TestV2YalaHardwareQualified runs a real (yala) prediction on a
// non-default class end to end: the model trains against the class
// preset and persists under the hardware-keyed layout.
func TestV2YalaHardwareQualified(t *testing.T) {
	dir := t.TempDir()
	svc := NewService(ServiceConfig{
		Registry: RegistryConfig{Dir: dir, Seed: 1, Train: testTrainConfig(1), SLOMO: testSLOMOConfig(1)},
		Workers:  2,
	})
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)

	resp := postAs[PredictResponse](t, ts, "/v2/models/FlowStats@pensando/yala:predict", predictParamsV2{})
	if resp.HW != "pensando" || resp.PredictedPPS <= 0 {
		t.Fatalf("hw-qualified yala prediction: %+v", resp)
	}
	if _, err := os.Stat(filepath.Join(dir, "FlowStats@pensando.yala.json")); err != nil {
		t.Fatalf("hardware-keyed model file missing: %v", err)
	}
	// The listing reports the qualified resource.
	resp2, body := roundTrip(t, ts, "GET", "/v2/models", "")
	if resp2.StatusCode != http.StatusOK || !strings.Contains(string(body), `"FlowStats@pensando/yala"`) {
		t.Fatalf("listing lacks hw-qualified ID: %s", body)
	}
}
