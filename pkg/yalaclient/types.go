package yalaclient

import "encoding/json"

// ProfileSpec is a traffic profile on the wire. Absent attributes fall
// back to the server's default profile; MTBR is a pointer because 0
// matches/MB (a match-free workload) must stay distinguishable from
// "not specified".
type ProfileSpec struct {
	Flows   int      `json:"flows,omitempty"`
	PktSize int      `json:"pktsize,omitempty"`
	MTBR    *float64 `json:"mtbr,omitempty"`
}

// F64 builds the pointer form MTBR takes in a ProfileSpec literal.
func F64(v float64) *float64 { return &v }

// Competitor names one co-located NF and its traffic profile.
type Competitor struct {
	Name    string      `json:"name"`
	Profile ProfileSpec `json:"profile,omitzero"`
}

// PredictParams is the scenario body of Predict and Diagnose calls.
type PredictParams struct {
	Profile     ProfileSpec  `json:"profile,omitzero"`
	Competitors []Competitor `json:"competitors,omitempty"`
}

// PredictResult is the server's prediction for one scenario.
type PredictResult struct {
	NF             string             `json:"nf"`
	HW             string             `json:"hw,omitempty"`
	Backend        string             `json:"backend"`
	Profile        ProfileSpec        `json:"profile"`
	SoloPPS        float64            `json:"solo_pps"`
	PredictedPPS   float64            `json:"predicted_pps"`
	PerResourcePPS map[string]float64 `json:"per_resource_pps,omitempty"`
	Bottleneck     string             `json:"bottleneck,omitempty"`
}

// BatchItem is one element of a PredictBatch call: a fully qualified
// (model, backend, scenario) tuple, so one batch can span NFs, hardware
// classes and backends.
type BatchItem struct {
	Model       ModelID      `json:"-"`
	Backend     string       `json:"backend,omitempty"`
	Profile     ProfileSpec  `json:"profile,omitzero"`
	Competitors []Competitor `json:"competitors,omitempty"`
}

// batchItemWire is BatchItem with the model rendered as its resource ID.
type batchItemWire struct {
	Model       string       `json:"model"`
	Backend     string       `json:"backend,omitempty"`
	Profile     ProfileSpec  `json:"profile,omitzero"`
	Competitors []Competitor `json:"competitors,omitempty"`
}

// BatchResult returns one response per request, in order. An element
// that failed carries its message in Errors at the same index and a
// zero response; the batch call itself still succeeds.
type BatchResult struct {
	Responses []PredictResult `json:"responses"`
	Errors    []string        `json:"errors,omitempty"`
}

// CompareParams is the scenario body of a Compare call.
type CompareParams struct {
	Profile     ProfileSpec  `json:"profile,omitzero"`
	Competitors []Competitor `json:"competitors,omitempty"`
	// GroundTruth additionally co-runs the scenario on the server's
	// simulator and reports each predictor's error against it.
	GroundTruth bool `json:"ground_truth,omitempty"`
}

// CompareResult is the Yala-vs-SLOMO head-to-head for one scenario.
type CompareResult struct {
	NF          string        `json:"nf"`
	HW          string        `json:"hw,omitempty"`
	Profile     ProfileSpec   `json:"profile"`
	Yala        PredictResult `json:"yala"`
	SLOMO       PredictResult `json:"slomo"`
	MeasuredPPS float64       `json:"measured_pps,omitempty"`
	YalaErrPct  float64       `json:"yala_err_pct,omitempty"`
	SLOMOErrPct float64       `json:"slomo_err_pct,omitempty"`
}

// Resident is one NF already on the NIC in an Admit call.
type Resident struct {
	Name    string      `json:"name"`
	Profile ProfileSpec `json:"profile,omitzero"`
	SLA     float64     `json:"sla"`
}

// AdmitParams asks whether the path model can join Residents without
// breaking any SLA: the candidate's profile and SLA, plus the resident
// set.
type AdmitParams struct {
	Residents []Resident  `json:"residents,omitempty"`
	Profile   ProfileSpec `json:"profile,omitzero"`
	SLA       float64     `json:"sla"`
}

// AdmitResult is the admission decision. Reason distinguishes a
// core-capacity rejection ("cores") from a predicted SLA violation
// ("sla").
type AdmitResult struct {
	Admit     bool   `json:"admit"`
	Backend   string `json:"backend"`
	Residents int    `json:"residents"`
	Reason    string `json:"reason,omitempty"`
}

// DiagnoseResult is the per-resource bottleneck attribution.
type DiagnoseResult struct {
	NF             string             `json:"nf"`
	HW             string             `json:"hw,omitempty"`
	Profile        ProfileSpec        `json:"profile"`
	Bottleneck     string             `json:"bottleneck"`
	SoloPPS        float64            `json:"solo_pps"`
	PredictedPPS   float64            `json:"predicted_pps"`
	DropPct        float64            `json:"drop_pct"`
	PerResourcePPS map[string]float64 `json:"per_resource_pps"`
}

// ModelInfo describes one model the server knows about. Generation
// counts fresh in-process model resolutions — initial train or load is
// 1, each feedback-driven promotion bumps it — and TrainedAt is the
// Unix time of the latest one; both are 0 for models the server has
// only seen on disk.
type ModelInfo struct {
	ID         string `json:"id"`
	NF         string `json:"nf"`
	HW         string `json:"hw,omitempty"`
	Backend    string `json:"backend"`
	Loaded     bool   `json:"loaded"`
	OnDisk     bool   `json:"on_disk"`
	Generation uint64 `json:"generation,omitempty"`
	TrainedAt  int64  `json:"trained_at,omitempty"`
}

// Measurement is one ground-truth throughput report for Ingest: the
// model it concerns, the scenario it was measured under, and the
// observed co-located throughput. Source optionally names the
// measurement origin (a rig, an agent) so the server's drift gate can
// quarantine origins whose reports disagree with the consensus.
type Measurement struct {
	Model       ModelID      `json:"-"`
	Backend     string       `json:"backend,omitempty"`
	Profile     ProfileSpec  `json:"profile,omitzero"`
	Competitors []Competitor `json:"competitors,omitempty"`
	MeasuredPPS float64      `json:"measured_pps"`
	Source      string       `json:"source,omitempty"`
}

// measurementWire is Measurement with the model rendered as its
// resource ID.
type measurementWire struct {
	Model       string       `json:"model"`
	Backend     string       `json:"backend,omitempty"`
	Profile     ProfileSpec  `json:"profile,omitzero"`
	Competitors []Competitor `json:"competitors,omitempty"`
	MeasuredPPS float64      `json:"measured_pps"`
	Source      string       `json:"source,omitempty"`
}

// IngestResult summarizes one ingest batch: measurements accepted into
// the feedback windows vs recorded under a quarantined source.
type IngestResult struct {
	Accepted    int `json:"accepted"`
	Quarantined int `json:"quarantined"`
}

// DriftStats is the server's online-feedback counter snapshot: the
// drift gate's decision stream and the candidate train/shadow/promote
// lifecycle.
type DriftStats struct {
	Observations   uint64 `json:"observations"`
	Quarantined    uint64 `json:"quarantined"`
	Holds          uint64 `json:"holds"`
	Trips          uint64 `json:"trips"`
	Retrains       uint64 `json:"retrains"`
	TrainFailures  uint64 `json:"train_failures,omitempty"`
	ShadowSamples  uint64 `json:"shadow_samples"`
	ShadowCompares uint64 `json:"shadow_compares"`
	ShadowAborts   uint64 `json:"shadow_aborts,omitempty"`
	Promotions     uint64 `json:"promotions"`
}

// ListModelsParams pages through the model listing.
type ListModelsParams struct {
	PageSize  int
	PageToken string
}

// ModelsPage is one page of the listing; a non-empty NextPageToken
// continues it.
type ModelsPage struct {
	Models        []ModelInfo `json:"models"`
	NextPageToken string      `json:"next_page_token,omitempty"`
	TotalSize     int         `json:"total_size"`
}

// ClusterRunParams shapes a fleet-orchestration comparison run. Zero
// values take the server's defaults; Policies empty means all
// policies.
type ClusterRunParams struct {
	NICs         int         `json:"nics,omitempty"`
	Classes      []ClassSpec `json:"classes,omitempty"`
	Workload     string      `json:"workload,omitempty"`
	Arrivals     int         `json:"arrivals,omitempty"`
	Seed         uint64      `json:"seed,omitempty"`
	NFs          []string    `json:"nfs,omitempty"`
	Policies     []string    `json:"policies,omitempty"`
	Profiles     int         `json:"profiles,omitempty"`
	MeanIAT      float64     `json:"mean_iat,omitempty"`
	MeanLifetime float64     `json:"mean_lifetime,omitempty"`
	DriftProb    *float64    `json:"drift_prob,omitempty"`
	SLALo        float64     `json:"sla_lo,omitempty"`
	SLAHi        float64     `json:"sla_hi,omitempty"`
	// ShiftAt/ShiftScale apply a mid-run hardware shift; Online closes
	// the server's feedback loop so prediction-guided policies retrain
	// and promote against the shifted measurements mid-run.
	ShiftAt    float64 `json:"shift_at,omitempty"`
	ShiftScale float64 `json:"shift_scale,omitempty"`
	Online     bool    `json:"online,omitempty"`
}

// ClassSpec declares one homogeneous slice of a mixed fleet.
type ClassSpec struct {
	Class string `json:"class"`
	Count int    `json:"count"`
	Cores int    `json:"cores,omitempty"`
}

// ClusterPolicyResult is one policy's outcome in a comparison run.
type ClusterPolicyResult struct {
	Policy         string  `json:"policy"`
	Arrivals       int     `json:"arrivals"`
	Admitted       int     `json:"admitted"`
	Rejected       int     `json:"rejected"`
	Rollbacks      int     `json:"rollbacks"`
	Migrations     int     `json:"migrations"`
	Evictions      int     `json:"evictions"`
	Departures     int     `json:"departures"`
	Violations     int     `json:"violations"`
	PeakTenants    int     `json:"peak_tenants"`
	AvgUtilization float64 `json:"avg_utilization"`
	// Retrains/Promotions count the online feedback loop's actions; zero
	// unless the run set Online and the policy is prediction-guided.
	Retrains      int   `json:"retrains,omitempty"`
	Promotions    int   `json:"promotions,omitempty"`
	DecisionP50NS int64 `json:"decision_p50_ns"`
	DecisionP99NS int64 `json:"decision_p99_ns"`
}

// ClusterComparison is a comparison run's result. Scenario is kept as
// raw JSON so callers that understand the server's full scenario shape
// (the CLI) can decode it losslessly.
type ClusterComparison struct {
	Scenario json.RawMessage       `json:"scenario"`
	Results  []ClusterPolicyResult `json:"results"`
}

// CacheStats is the server's response-cache counter snapshot.
type CacheStats struct {
	Entries   int    `json:"entries"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// GatewayReplicaStats is one replica's state as seen by a scale-out
// gateway: liveness, how much traffic it served, how many fan-outs
// reached it, and a live snapshot of its response-cache size
// (CacheEntries is -1 when the replica could not be asked).
type GatewayReplicaStats struct {
	URL            string `json:"url"`
	Slot           int    `json:"slot,omitempty"`
	Healthy        bool   `json:"healthy"`
	Requests       uint64 `json:"requests"`
	Errors         uint64 `json:"errors"`
	Fanouts        uint64 `json:"fanouts"`
	CacheEntries   int    `json:"cache_entries"`
	PendingReloads int    `json:"pending_reloads,omitempty"`
}

// GatewayTenantStats is one tenant's accounting row on a gateway with
// the multi-tenant admission gate mounted: admitted traffic by priority
// class, sheds by reason, and server errors attributed to the tenant.
type GatewayTenantStats struct {
	Tenant      string `json:"tenant"`
	Limited     bool   `json:"limited"`
	Requests    uint64 `json:"requests"`
	Interactive uint64 `json:"interactive"`
	Bulk        uint64 `json:"bulk"`
	Shed        uint64 `json:"shed"`
	RateLimited uint64 `json:"rate_limited"`
	Overloaded  uint64 `json:"overloaded"`
	Errors      uint64 `json:"errors"`
}

// GatewayStats is the gateway's operator snapshot: per-replica state
// plus the gateway's own routing and edge-cache counters. Slots is the
// hash-ring size; an elastic gateway may have fewer replicas attached
// than slots. Tenants is present when the admission gate is mounted.
type GatewayStats struct {
	Replicas []GatewayReplicaStats `json:"replicas"`
	Slots    int                   `json:"slots,omitempty"`
	Tenants  []GatewayTenantStats  `json:"tenants,omitempty"`
	Requests uint64                `json:"requests"`
	Retries  uint64                `json:"retries"`
	Fanouts  uint64                `json:"fanouts"`
	// Coalesced counts requests answered by sharing a concurrent
	// identical in-flight upstream call instead of dialing a replica;
	// Canceled counts requests whose client hung up before an upstream
	// answered (499s, excluded from the shed signal).
	Coalesced   uint64 `json:"coalesced,omitempty"`
	Canceled    uint64 `json:"canceled,omitempty"`
	EdgeHits    uint64 `json:"edge_hits"`
	EdgeMisses  uint64 `json:"edge_misses"`
	EdgeEntries int    `json:"edge_entries"`
}

// Stats is the operator-facing server snapshot.
type Stats struct {
	UptimeSec float64 `json:"uptime_sec"`
	// UptimeSeconds and StartTime are the /v2 additions: uptime derived
	// from a monotonic clock, and the Unix start instant. A gateway's
	// aggregated view reports the oldest replica's uptime and the
	// earliest start — uptimes never sum across a fleet.
	UptimeSeconds   float64           `json:"uptime_seconds,omitempty"`
	StartTime       int64             `json:"start_time,omitempty"`
	Workers         int               `json:"workers"`
	Backends        []string          `json:"backends,omitempty"`
	Requests        map[string]uint64 `json:"requests"`
	Errors          uint64            `json:"errors"`
	Cache           CacheStats        `json:"cache"`
	Models          []ModelInfo       `json:"models"`
	PersistFailures uint64            `json:"persist_failures,omitempty"`
	LastPersistErr  string            `json:"last_persist_error,omitempty"`
	// WireAddr is the server's yalawire binary listener (host:port),
	// empty when the server runs without one. Clients and gateways use
	// it to discover the wire transport (WithWire) without extra
	// configuration.
	WireAddr string `json:"wire_addr,omitempty"`
	// Drift is the online-feedback snapshot; a gateway's aggregated
	// view sums it across replicas. Absent on servers predating the
	// feedback loop.
	Drift *DriftStats `json:"drift,omitempty"`
}
