// Package ml provides the machine-learning substrate the paper gets from
// scikit-learn: ordinary least squares linear regression, CART regression
// trees, gradient-boosting regression (SLOMO's model family), and the
// evaluation metrics the paper reports (MAPE, ±5% and ±10% accuracy).
// Everything is implemented from scratch on the standard library.
package ml

import (
	"fmt"

	"repro/internal/sim"
)

// Dataset is a supervised regression dataset: feature rows X and targets Y.
type Dataset struct {
	X [][]float64
	Y []float64
}

// Add appends one sample. The feature vector is copied.
func (d *Dataset) Add(x []float64, y float64) {
	d.X = append(d.X, append([]float64(nil), x...))
	d.Y = append(d.Y, y)
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Y) }

// Dims returns the feature dimensionality (0 for an empty dataset).
func (d *Dataset) Dims() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Merge appends all samples of other.
func (d *Dataset) Merge(other *Dataset) {
	d.X = append(d.X, other.X...)
	d.Y = append(d.Y, other.Y...)
}

// Validate reports structural problems (ragged rows, mismatched lengths).
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("ml: %d feature rows vs %d targets", len(d.X), len(d.Y))
	}
	dims := d.Dims()
	for i, row := range d.X {
		if len(row) != dims {
			return fmt.Errorf("ml: row %d has %d features, want %d", i, len(row), dims)
		}
	}
	return nil
}

// Split partitions the dataset into train/test with the given train
// fraction, shuffling deterministically with rng.
func (d *Dataset) Split(trainFrac float64, rng *sim.RNG) (train, test *Dataset) {
	n := d.Len()
	perm := rng.Perm(n)
	nTrain := int(trainFrac * float64(n))
	train, test = &Dataset{}, &Dataset{}
	for i, p := range perm {
		if i < nTrain {
			train.X = append(train.X, d.X[p])
			train.Y = append(train.Y, d.Y[p])
		} else {
			test.X = append(test.X, d.X[p])
			test.Y = append(test.Y, d.Y[p])
		}
	}
	return train, test
}
