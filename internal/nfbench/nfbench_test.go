package nfbench

import (
	"math"
	"testing"

	"repro/internal/nicsim"
)

func TestMemBenchTargetsCAR(t *testing.T) {
	nic := nicsim.New(nicsim.BlueField2(), 1)
	for _, target := range []float64{50e6, 120e6, 200e6} {
		m, err := nic.RunSolo(MemBench(target, 4<<20))
		if err != nil {
			t.Fatal(err)
		}
		got := m.Counters.CAR()
		if rel := math.Abs(got-target) / target; rel > 0.10 {
			t.Errorf("target CAR %.0fM: achieved %.0fM (%.0f%% off)",
				target/1e6, got/1e6, rel*100)
		}
	}
}

func TestMemBenchSelfLimitsAtExtremeWSS(t *testing.T) {
	// A giant working set with a huge CAR target cannot be met; the bench
	// must degrade gracefully rather than error.
	nic := nicsim.New(nicsim.BlueField2(), 2)
	m, err := nic.RunSolo(MemBench(500e6, 64<<20))
	if err != nil {
		t.Fatal(err)
	}
	if m.Counters.CAR() >= 500e6 {
		t.Fatal("physically impossible CAR achieved")
	}
	if m.Counters.CAR() <= 0 {
		t.Fatal("bench produced no traffic")
	}
}

func TestRegexBenchMatchScaling(t *testing.T) {
	w := RegexBench(1e6, 1000, 2000, 1)
	u := w.Accel[nicsim.AccelRegex]
	if u.MatchesPerReq != 2 { // 2000 matches/MB * 1000B
		t.Fatalf("MatchesPerReq = %v, want 2", u.MatchesPerReq)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRegexBenchAchievesRate(t *testing.T) {
	nic := nicsim.New(nicsim.BlueField2(), 3)
	m, err := nic.RunSolo(RegexBench(0.5e6, 1000, 600, 1))
	if err != nil {
		t.Fatal(err)
	}
	st := m.AccelStats[nicsim.AccelRegex]
	if rel := math.Abs(st.RequestRate-0.5e6) / 0.5e6; rel > 0.1 {
		t.Fatalf("request rate %v, want ~0.5e6", st.RequestRate)
	}
}

func TestCompressBenchUsesCompressor(t *testing.T) {
	nic := nicsim.New(nicsim.BlueField2(), 4)
	m, err := nic.RunSolo(CompressBench(0.4e6, 1400, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.AccelStats[nicsim.AccelCompress]; !ok {
		t.Fatal("no compression stats")
	}
}

func TestRegexNFSaturates(t *testing.T) {
	nic := nicsim.New(nicsim.BlueField2(), 5)
	m, err := nic.RunSolo(RegexNF(4096, 400, 1))
	if err != nil {
		t.Fatal(err)
	}
	if m.Bottleneck != nicsim.ResRegex {
		t.Fatalf("regex-NF bottleneck %v, want regex", m.Bottleneck)
	}
}

func TestSyntheticSpecBuild(t *testing.T) {
	for _, pattern := range []nicsim.ExecPattern{nicsim.Pipeline, nicsim.RunToCompletion} {
		for _, w := range []*nicsim.Workload{NF1(pattern), NF2(pattern)} {
			if err := w.Validate(); err != nil {
				t.Fatalf("%s/%v: %v", w.Name, pattern, err)
			}
			if w.Pattern != pattern {
				t.Fatalf("%s pattern %v", w.Name, w.Pattern)
			}
		}
	}
	if !NF2(nicsim.Pipeline).UsesAccel(nicsim.AccelCompress) {
		t.Fatal("NF2 must use the compression accelerator")
	}
	if NF1(nicsim.Pipeline).UsesAccel(nicsim.AccelCompress) {
		t.Fatal("NF1 must not use the compression accelerator")
	}
}

func TestPNFAndRNFDifferOnlyInPattern(t *testing.T) {
	p, r := PNF(), RNF()
	if p.Pattern == r.Pattern {
		t.Fatal("patterns identical")
	}
	if p.CPUSecPerPkt != r.CPUSecPerPkt || p.MemRefsPerPkt != r.MemRefsPerPkt ||
		p.WSSBytes != r.WSSBytes {
		t.Fatal("resource demands differ between p-NF and r-NF")
	}
}

func TestFig5PatternDivergence(t *testing.T) {
	// Under regex-heavy contention the pipeline NF should hold up better
	// than its run-to-completion twin under additional memory load
	// (Fig. 5's qualitative claim).
	nic := nicsim.New(nicsim.BlueField2(), 6)
	regexB := RegexBench(0.4e6, 1000, 2000, 1)
	memB := MemBench(120e6, 8<<20)

	pm, err := nic.Run(PNF(), regexB, memB)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := nic.Run(RNF(), regexB, memB)
	if err != nil {
		t.Fatal(err)
	}
	if pm[0].Throughput <= rm[0].Throughput {
		t.Fatalf("pipeline %.0f should beat RTC %.0f under combined contention",
			pm[0].Throughput, rm[0].Throughput)
	}
}
