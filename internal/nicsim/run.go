package nicsim

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// AccelStat summarizes one workload's interaction with one accelerator
// over a measurement run.
type AccelStat struct {
	RequestRate    float64 // requests/s completed
	MatchRate      float64 // ruleset matches/s flowing through the engine
	MeanSojournSec float64 // average queueing + service time per request
	MeanServiceSec float64 // average service time per request
	Queues         int
}

// Measurement is the observable outcome for one workload in a co-location
// run: throughput, its own counters, and the aggregate contention level of
// its competitors (what prediction models receive as input).
type Measurement struct {
	Name       string
	Throughput float64 // packets/s

	// Counters are the workload's own PMU counters; Competitors holds the
	// aggregated counters of all co-located workloads, the "contention
	// level" input of SLOMO-style models.
	Counters    Counters
	Competitors Counters

	// AccelStats describes the workload's accelerator usage;
	// CompetitorAccel the aggregate competing demand per accelerator.
	AccelStats      map[AccelKind]AccelStat
	CompetitorAccel map[AccelKind]AccelStat

	// Bottleneck is the simulator's ground-truth attribution of the
	// binding resource (the "perf hotspot analysis" stand-in, §7.5.2).
	Bottleneck Resource

	// MemBandwidthUtil is the DRAM bandwidth utilization at convergence.
	MemBandwidthUtil float64
}

// NIC simulates one SmartNIC. Create with New; Run co-locates workloads.
type NIC struct {
	cfg Config
	rng *sim.RNG
}

// New returns a NIC simulator for the given hardware config. All
// randomness (service jitter, arrival processes, measurement noise)
// derives from seed.
func New(cfg Config, seed uint64) *NIC {
	return &NIC{cfg: cfg, rng: sim.NewRNG(seed)}
}

// Config returns the NIC's hardware configuration.
func (n *NIC) Config() Config { return n.cfg }

// solver iteration limits.
const (
	maxIters    = 40
	minIters    = 6
	damping     = 0.55
	convergeTol = 4e-3
	desEventsIt = 6000  // DES arrivals per accel per solver iterate
	desEventsFi = 24000 // DES arrivals for the final measurement pass
)

// Run co-locates the workloads on the NIC and measures each one's maximum
// throughput at equilibrium. Contention is mutual, so the solver iterates
// between the memory model, the accelerator simulations, and the
// throughput equations until a fixed point, then takes a measurement pass
// with noise.
func (n *NIC) Run(ws ...*Workload) ([]Measurement, error) {
	if len(ws) == 0 {
		return nil, fmt.Errorf("nicsim: Run with no workloads")
	}
	var cores int
	for _, w := range ws {
		if err := w.Validate(); err != nil {
			return nil, err
		}
		cores += w.Cores
	}
	if cores > n.cfg.Cores {
		return nil, fmt.Errorf("nicsim: workloads need %d cores, NIC %s has %d",
			cores, n.cfg.Name, n.cfg.Cores)
	}
	rng := n.rng.Split()

	tput := make([]float64, len(ws))
	for i, w := range ws {
		tput[i] = n.initialRate(w)
	}

	var (
		mem      []memState
		memUtil  float64
		accelRes map[AccelKind][]accelResult
	)
	for iter := 0; iter < maxIters; iter++ {
		mem, memUtil = memSolve(&n.cfg, ws, tput)
		accelRes = n.solveAccels(ws, tput, mem, rng, desEventsIt)

		maxRel := 0.0
		for i, w := range ws {
			next := n.workloadRate(w, mem[i], accelRes, i)
			if tput[i] > 0 {
				rel := math.Abs(next-tput[i]) / tput[i]
				if rel > maxRel {
					maxRel = rel
				}
			}
			tput[i] = damping*tput[i] + (1-damping)*next
		}
		if iter >= minIters && maxRel < convergeTol {
			break
		}
	}

	// Final measurement pass: bigger accelerator window, then noise.
	mem, memUtil = memSolve(&n.cfg, ws, tput)
	accelRes = n.solveAccels(ws, tput, mem, rng, desEventsFi)

	measurements := make([]Measurement, len(ws))
	for i, w := range ws {
		rate := n.workloadRate(w, mem[i], accelRes, i)
		m := Measurement{
			Name:             w.Name,
			Throughput:       rng.Jitter(rate, n.cfg.MeasureNoise),
			Counters:         deriveCounters(&n.cfg, w, rate, mem[i], rng),
			AccelStats:       map[AccelKind]AccelStat{},
			CompetitorAccel:  map[AccelKind]AccelStat{},
			Bottleneck:       n.bottleneck(w, mem[i], accelRes, i),
			MemBandwidthUtil: memUtil,
		}
		for kind, res := range accelRes {
			u := ws[i].Accel[kind]
			st := res[i]
			if ws[i].UsesAccel(kind) {
				m.AccelStats[kind] = AccelStat{
					RequestRate:    st.completionRate,
					MatchRate:      st.completionRate * u.MatchesPerReq,
					MeanSojournSec: st.meanSojourn,
					MeanServiceSec: st.meanService,
					Queues:         u.Queues,
				}
			}
		}
		measurements[i] = m
	}
	// Aggregate competitor views.
	for i := range ws {
		for j := range ws {
			if i == j {
				continue
			}
			measurements[i].Competitors.Add(measurements[j].Counters)
			for kind, st := range measurements[j].AccelStats {
				agg := measurements[i].CompetitorAccel[kind]
				agg.RequestRate += st.RequestRate
				agg.MatchRate += st.MatchRate
				agg.Queues += st.Queues
				agg.MeanServiceSec = math.Max(agg.MeanServiceSec, st.MeanServiceSec)
				measurements[i].CompetitorAccel[kind] = agg
			}
		}
	}
	return measurements, nil
}

// RunSolo measures a single workload with the NIC to itself — the paper's
// baseline configuration.
func (n *NIC) RunSolo(w *Workload) (Measurement, error) {
	ms, err := n.Run(w)
	if err != nil {
		return Measurement{}, err
	}
	return ms[0], nil
}

// cpuSec is the workload's per-packet CPU time under the configured
// DVFS frequency scale.
func (n *NIC) cpuSec(w *Workload) float64 {
	return w.CPUSecPerPkt / n.cfg.freqScale()
}

// initialRate seeds the solver with an optimistic uncontended estimate.
func (n *NIC) initialRate(w *Workload) float64 {
	perPkt := n.cpuSec(w) + w.MemRefsPerPkt*n.cfg.CacheHitSec
	rate := math.Inf(1)
	if perPkt > 0 {
		rate = float64(w.Cores) / perPkt
	}
	if w.OfferedRate > 0 && w.OfferedRate < rate {
		rate = w.OfferedRate
	}
	if lr := n.lineRate(w); lr < rate {
		rate = lr
	}
	if math.IsInf(rate, 1) {
		rate = 1e9
	}
	return rate
}

func (n *NIC) lineRate(w *Workload) float64 {
	if n.cfg.LineRateBps <= 0 {
		return math.Inf(1)
	}
	return n.cfg.LineRateBps / (8 * w.PktBytes)
}

// solveAccels runs each in-use accelerator's DES at the workloads' current
// offered rates.
func (n *NIC) solveAccels(ws []*Workload, tput []float64, mem []memState, rng *sim.RNG, minEvents int) map[AccelKind][]accelResult {
	out := map[AccelKind][]accelResult{}
	for kind := AccelKind(0); kind < numAccelKinds; kind++ {
		inUse := false
		for _, w := range ws {
			if w.UsesAccel(kind) {
				inUse = true
				break
			}
		}
		if !inUse {
			continue
		}
		cfg, ok := n.cfg.Accels[kind]
		if !ok {
			continue
		}
		users := make([]accelUser, len(ws))
		for i, w := range ws {
			u, used := w.Accel[kind]
			if !used || u.ReqsPerPkt <= 0 {
				continue
			}
			users[i] = accelUser{
				bytes:   u.BytesPerReq,
				matches: u.MatchesPerReq,
				queues:  u.Queues,
			}
			if w.OfferedRate <= 0 && w.Pattern == RunToCompletion {
				// A run-to-completion NF keeps one request in flight per
				// core, with the packet's CPU+memory work as think time.
				users[i].closed = true
				users[i].population = w.Cores
				users[i].thinkSec = (n.cpuSec(w) + mem[i].memSec) / u.ReqsPerPkt
			} else {
				offeredPkts := n.accelOfferedPkts(w, mem[i], tput[i])
				users[i].offered = offeredPkts * u.ReqsPerPkt
			}
		}
		out[kind] = simulateAccel(cfg, users, rng, minEvents)
	}
	return out
}

// accelOfferedPkts is the packet rate a workload pushes into an
// accelerator. A pipeline NF dispatches as fast as its core stage allows
// (the accelerator queue absorbs the difference); a run-to-completion NF
// dispatches at its current overall rate; an open-loop generator at its
// configured rate.
func (n *NIC) accelOfferedPkts(w *Workload, ms memState, cur float64) float64 {
	if w.OfferedRate > 0 {
		return math.Min(w.OfferedRate, n.coreStageRate(w, ms))
	}
	if w.Pattern == Pipeline {
		return math.Min(n.coreStageRate(w, ms), n.lineRate(w))
	}
	return cur
}

// coreStageRate is the packet rate the CPU+memory stage sustains.
func (n *NIC) coreStageRate(w *Workload, ms memState) float64 {
	perPkt := n.cpuSec(w) + ms.memSec
	if perPkt <= 0 {
		return math.Inf(1)
	}
	return float64(w.Cores) / perPkt
}

// workloadRate computes a workload's end-to-end throughput from the
// current per-resource state, according to its execution pattern.
func (n *NIC) workloadRate(w *Workload, ms memState, accel map[AccelKind][]accelResult, idx int) float64 {
	var rate float64
	switch w.Pattern {
	case Pipeline:
		// Throughput of a pipeline is its slowest stage.
		rate = n.coreStageRate(w, ms)
		for kind, res := range accel {
			u, used := w.Accel[kind]
			if !used || u.ReqsPerPkt <= 0 {
				continue
			}
			if c := res[idx].completionRate / u.ReqsPerPkt; c > 0 && c < rate {
				rate = c
			}
		}
	case RunToCompletion:
		// Each packet holds a core through every stage, including
		// accelerator round trips.
		perPkt := n.cpuSec(w) + ms.memSec
		for kind, res := range accel {
			u, used := w.Accel[kind]
			if !used || u.ReqsPerPkt <= 0 {
				continue
			}
			perPkt += u.ReqsPerPkt * res[idx].meanSojourn
		}
		if perPkt <= 0 {
			return math.Inf(1)
		}
		rate = float64(w.Cores) / perPkt
	}
	if w.OfferedRate > 0 && w.OfferedRate < rate {
		rate = w.OfferedRate
	}
	if lr := n.lineRate(w); lr < rate {
		rate = lr
	}
	return rate
}

// bottleneck attributes the binding resource for a workload.
func (n *NIC) bottleneck(w *Workload, ms memState, accel map[AccelKind][]accelResult, idx int) Resource {
	memVsCPU := func() Resource {
		if ms.memSec > n.cpuSec(w) {
			return ResMemory
		}
		return ResCPU
	}
	switch w.Pattern {
	case Pipeline:
		// The accelerator stage binds only if its queue could not absorb
		// the offered load; otherwise the core (CPU/memory) stage does.
		minRate := n.coreStageRate(w, ms)
		res := memVsCPU()
		for kind, r := range accel {
			u, used := w.Accel[kind]
			if !used || u.ReqsPerPkt <= 0 || !r[idx].saturated() {
				continue
			}
			if c := r[idx].completionRate / u.ReqsPerPkt; c > 0 && c < minRate {
				minRate = c
				res = AccelResource(kind)
			}
		}
		if lr := n.lineRate(w); lr < minRate {
			return ResNICPort
		}
		return res
	default:
		// Largest per-packet time component wins.
		best, bestT := memVsCPU(), math.Max(ms.memSec, n.cpuSec(w))
		for kind, r := range accel {
			u, used := w.Accel[kind]
			if !used || u.ReqsPerPkt <= 0 {
				continue
			}
			if t := u.ReqsPerPkt * r[idx].meanSojourn; t > bestT {
				bestT = t
				best = AccelResource(kind)
			}
		}
		return best
	}
}
