package gateway

import (
	"context"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/pkg/yalaclient"
)

// TestDetachReattachReplaysReload is the non-stale-rejoin proof behind
// elastic scale-down: a reload fanned out while a slot is vacant queues
// on the slot, and whatever replica attaches there next replays it
// before taking traffic.
func TestDetachReattachReplaysReload(t *testing.T) {
	a, b := newStubReplica(t, "a"), newStubReplica(t, "b")
	g, ts := testGateway(t, -1, a, b)

	url, err := g.Detach(1)
	if err != nil {
		t.Fatal(err)
	}
	if url != b.url() {
		t.Fatalf("detached %q, want %q", url, b.url())
	}

	// Fan out while slot 1 is vacant: only the attached replica dials.
	status, body := post(t, ts.URL+"/v2/models/FlowStats/yala:reload", ``)
	if status != 200 {
		t.Fatalf("reload with a vacant slot: %d %s", status, body)
	}
	if _, ra := a.counts(); ra != 1 {
		t.Fatalf("attached replica reloads = %d, want 1", ra)
	}
	if _, rb := b.counts(); rb != 0 {
		t.Fatalf("detached replica dialed anyway (%d reloads)", rb)
	}

	// A fresh replica fills the slot and must replay the missed reload
	// during Attach, before any routed traffic can reach it stale.
	c := newStubReplica(t, "c")
	if err := g.Attach(1, c.url()); err != nil {
		t.Fatal(err)
	}
	if _, rc := c.counts(); rc != 1 {
		t.Fatalf("rejoining replica replayed %d reloads, want 1", rc)
	}

	st, err := yalaclient.New(ts.URL).GatewayStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Replicas) != 2 || st.Slots != 2 {
		t.Fatalf("stats after reattach: %+v", st)
	}
	for _, r := range st.Replicas {
		if r.PendingReloads != 0 {
			t.Fatalf("replica %s still holds pending reloads after replay", r.URL)
		}
		if r.URL == b.url() {
			t.Fatal("detached replica still listed in stats")
		}
	}
}

// TestAutoscalerSignals drives evaluate/tick directly with fabricated
// signals: in-flight pressure, windowed p99 pressure (and its reset
// once the window moves on), and the consecutive-tick hysteresis.
func TestAutoscalerSignals(t *testing.T) {
	a := newStubReplica(t, "a")
	g, _ := testGateway(t, -1, a)
	as := &Autoscaler{
		g:    g,
		cfg:  AutoscaleConfig{Min: 1, Max: 1, UpAfter: 3, DownAfter: 3},
		pool: map[int]*Replica{0: nil},
		stop: make(chan struct{}),
	}
	if err := as.cfg.fillDefaults(); err != nil {
		t.Fatal(err)
	}

	if score := as.evaluate(); score != 0 {
		t.Fatalf("idle score = %g, want 0", score)
	}

	// Queue signal: 16 in flight against 1 replica × target 8 → 2.0.
	g.inflight.Store(16)
	if score := as.evaluate(); score != 2 {
		t.Fatalf("inflight score = %g, want 2", score)
	}
	g.inflight.Store(0)

	// Latency signal: a burst of 1s requests against a 250ms SLO.
	for i := 0; i < 20; i++ {
		g.reqSeconds.Observe(1.0)
	}
	if score := as.evaluate(); score < 2 {
		t.Fatalf("p99 score = %g, want >= 2 (1s observed vs 250ms SLO)", score)
	}
	// The window moved on: the old spike must not pin the score high.
	if score := as.evaluate(); score != 0 {
		t.Fatalf("score after quiet window = %g, want 0 (stale p99 retained)", score)
	}

	// Hysteresis: with Max == active the up branch can't act, so the
	// counters are observable. One busy tick then one idle tick must
	// not accumulate toward a scale-up.
	g.inflight.Store(16)
	as.tick()
	if as.upTicks != 1 {
		t.Fatalf("upTicks = %d after one busy tick, want 1", as.upTicks)
	}
	g.inflight.Store(0)
	as.tick()
	if as.upTicks != 0 || as.downTicks != 1 {
		t.Fatalf("ticks = up %d / down %d after idle tick, want 0/1", as.upTicks, as.downTicks)
	}
	g.inflight.Store(4) // mid-band: neither busy nor idle
	as.tick()
	if as.upTicks != 0 || as.downTicks != 0 {
		t.Fatalf("mid-band tick kept counters: up %d / down %d", as.upTicks, as.downTicks)
	}
}

// TestElasticScaleUpAndDown is the acceptance run: a -min 1 -max 3
// fleet of real replicas scales up under sustained concurrent load and
// back down to min when idle, with zero client-visible errors across
// both transitions.
func TestElasticScaleUpAndDown(t *testing.T) {
	g, as, err := NewElastic(
		Config{HealthInterval: 20 * time.Millisecond, EdgeCacheEntries: -1},
		quickServiceConfig(t.TempDir()),
		AutoscaleConfig{
			Min:            1,
			Max:            3,
			Interval:       25 * time.Millisecond,
			TargetInflight: 1,
			UpAfter:        2,
			DownAfter:      4,
			DrainGrace:     50 * time.Millisecond,
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { as.Close(); g.Close() })
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)

	if got := as.Active(); got != 1 {
		t.Fatalf("boot pool = %d, want min 1", got)
	}

	// Sustained concurrent load: 8 workers keep gateway in-flight well
	// over the pool's aggregate target.
	stop := make(chan struct{})
	var failures atomic.Int64
	var wg sync.WaitGroup
	models := []string{"FlowStats", "ACL"}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := yalaclient.New(ts.URL)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				m := models[(w+i)%len(models)]
				if _, err := client.Predict(context.Background(), yalaclient.ModelID{NF: m}, "", yalaclient.PredictParams{}); err != nil {
					failures.Add(1)
					t.Logf("predict %s: %v", m, err)
				}
			}
		}(w)
	}

	deadline := time.Now().Add(30 * time.Second)
	for as.Active() < 2 {
		if time.Now().After(deadline) {
			close(stop)
			wg.Wait()
			t.Fatalf("pool never scaled up under load (active=%d)", as.Active())
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	// Idle: the pool must drain back to min.
	deadline = time.Now().Add(30 * time.Second)
	for as.Active() > 1 {
		if time.Now().After(deadline) {
			t.Fatalf("pool never scaled down when idle (active=%d)", as.Active())
		}
		time.Sleep(10 * time.Millisecond)
	}

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d client errors across scale transitions, want 0", n)
	}
	if as.ScaleUps() == 0 || as.ScaleDowns() == 0 {
		t.Fatalf("lifecycle counters up=%d down=%d, want both > 0", as.ScaleUps(), as.ScaleDowns())
	}

	// The fleet still answers after the churn, from the min-size pool.
	if _, err := yalaclient.New(ts.URL).Predict(context.Background(), yalaclient.ModelID{NF: "FlowStats"}, "", yalaclient.PredictParams{}); err != nil {
		t.Fatalf("predict after scale-down: %v", err)
	}
}
