package serve

import "sync"

// flightGroup memoizes successful results per key with duplicate-call
// suppression: the first caller for a key computes while concurrent
// callers wait on the same attempt; failed attempts are evicted so a
// later call retries. It is the one implementation of the idiom the
// model registry and the solo-measurement memo both need.
type flightGroup[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]*flight[V]
}

// flight is one load attempt; ready closes when it resolves.
type flight[V any] struct {
	ready chan struct{}
	val   V
	err   error
}

// do returns the memoized value for key, computing it with fn on first
// use. A positive maxEntries bounds the memo: resolved entries are
// evicted (oldest-iteration-order) to stay under it — only correct when
// fn is deterministic, so eviction merely costs recomputation.
func (g *flightGroup[K, V]) do(key K, maxEntries int, fn func() (V, error)) (V, error) {
	g.mu.Lock()
	if g.entries == nil {
		g.entries = map[K]*flight[V]{}
	}
	e, ok := g.entries[key]
	if !ok {
		if maxEntries > 0 && len(g.entries) >= maxEntries {
			g.evictResolvedLocked(maxEntries)
		}
		e = &flight[V]{ready: make(chan struct{})}
		g.entries[key] = e
	}
	g.mu.Unlock()
	if !ok {
		e.val, e.err = fn()
		if e.err != nil {
			g.mu.Lock()
			if g.entries[key] == e {
				delete(g.entries, key)
			}
			g.mu.Unlock()
		}
		close(e.ready)
	}
	<-e.ready
	return e.val, e.err
}

// evictResolvedLocked drops resolved entries until under max; in-flight
// attempts are never dropped. Caller holds g.mu.
func (g *flightGroup[K, V]) evictResolvedLocked(max int) {
	for k, e := range g.entries {
		select {
		case <-e.ready:
			delete(g.entries, k)
		default:
		}
		if len(g.entries) < max {
			return
		}
	}
}

// forget drops the key so the next do recomputes (operator reloads).
func (g *flightGroup[K, V]) forget(key K) {
	g.mu.Lock()
	delete(g.entries, key)
	g.mu.Unlock()
}

// forgetMatching drops every key the predicate selects — the multi-key
// form of forget, for reloads that span derived keys (e.g. one NF's
// models across every hardware class).
func (g *flightGroup[K, V]) forgetMatching(match func(K) bool) {
	g.mu.Lock()
	for k := range g.entries {
		if match(k) {
			delete(g.entries, k)
		}
	}
	g.mu.Unlock()
}

// resolved lists keys whose attempts completed successfully.
func (g *flightGroup[K, V]) resolved() []K {
	g.mu.Lock()
	defer g.mu.Unlock()
	keys := make([]K, 0, len(g.entries))
	for k, e := range g.entries {
		select {
		case <-e.ready:
			if e.err == nil {
				keys = append(keys, k)
			}
		default:
		}
	}
	return keys
}
