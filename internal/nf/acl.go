package nf

import (
	"repro/internal/nicsim"
	"repro/internal/packet"
	"repro/internal/sim"
)

// ACLRule matches packets on masked addresses and a destination port
// range, with an allow/deny action.
type ACLRule struct {
	SrcIP, SrcMask uint32
	DstIP, DstMask uint32
	PortLo, PortHi uint16
	Allow          bool
}

// Matches reports whether the rule covers the tuple.
func (r ACLRule) Matches(t packet.FiveTuple) bool {
	return t.SrcIP&r.SrcMask == r.SrcIP&r.SrcMask &&
		t.DstIP&r.DstMask == r.DstIP&r.DstMask &&
		t.DstPort >= r.PortLo && t.DstPort <= r.PortHi
}

// aclRuleCount is the synthetic policy size.
const aclRuleCount = 100

// aclRuleBytes models one rule's memory footprint.
const aclRuleBytes = 32

// ACL filters packets against an ordered rule list with first-match
// semantics (DPDK). It keeps no per-flow state, so it is the paper's
// lightweight, traffic-insensitive NF.
type ACL struct {
	rules   []ACLRule
	denied  uint64
	allowed uint64
}

// NewACL returns an ACL with a deterministic synthetic policy: narrow
// early rules that rarely match, so most packets traverse much of the
// list, plus a default-allow tail.
func NewACL() *ACL {
	rng := sim.NewRNG(0xac1)
	a := &ACL{}
	for i := 0; i < aclRuleCount-1; i++ {
		a.rules = append(a.rules, ACLRule{
			SrcIP: uint32(rng.Uint64()), SrcMask: 0xffffff00,
			DstIP: uint32(rng.Uint64()), DstMask: 0xffff0000,
			PortLo: uint16(rng.Intn(60000)), PortHi: uint16(rng.Intn(60000)),
			Allow: rng.Float64() < 0.5,
		})
	}
	a.rules = append(a.rules, ACLRule{PortHi: 0xffff, Allow: true}) // default allow
	return a
}

// Name implements NF.
func (a *ACL) Name() string { return "ACL" }

// Pattern implements NF.
func (a *ACL) Pattern() nicsim.ExecPattern { return nicsim.RunToCompletion }

// StateBytes implements NF.
func (a *ACL) StateBytes() float64 { return float64(len(a.rules) * aclRuleBytes) }

// Reset implements NF: rules are static policy; counters clear.
func (a *ACL) Reset() { a.denied, a.allowed = 0, 0 }

// Process implements NF.
func (a *ACL) Process(p *packet.Packet, st *OpStats) error {
	if err := ensureParsed(p); err != nil {
		return err
	}
	for i := range a.rules {
		st.RuleChecks++
		if a.rules[i].Matches(p.Tuple) {
			if a.rules[i].Allow {
				a.allowed++
			} else {
				a.denied++
				st.Drops++
			}
			break
		}
	}
	st.BytesTouched += headerBytes
	st.Packets++
	return nil
}

// Denied reports packets denied by policy.
func (a *ACL) Denied() uint64 { return a.denied }

// firewallWalkEntries is how many neighbouring flow entries the firewall
// touches per packet during its flow walk.
const firewallWalkEntries = 4

// Firewall is the Pensando generalization NF (§8, Table 9): it walks the
// hardware flow table, updating entry metadata on matches against input
// traffic. The periodic walk touches extra entries per packet, giving it
// a distinctive memory profile.
type Firewall struct {
	table *FlowTable
	walk  uint64
}

// NewFirewall returns an empty firewall.
func NewFirewall() *Firewall { return &Firewall{table: NewFlowTable()} }

// Name implements NF.
func (f *Firewall) Name() string { return "Firewall" }

// Pattern implements NF.
func (f *Firewall) Pattern() nicsim.ExecPattern { return nicsim.RunToCompletion }

// StateBytes implements NF.
func (f *Firewall) StateBytes() float64 { return f.table.StateBytes() }

// Reset implements NF.
func (f *Firewall) Reset() {
	f.table.Reset()
	f.walk = 0
}

// Process implements NF: update the matched flow, then advance the flow
// walk over the next few table slots.
func (f *Firewall) Process(p *packet.Packet, st *OpStats) error {
	if err := ensureParsed(p); err != nil {
		return err
	}
	e, probes, _ := f.table.Insert(p.Tuple.Hash())
	e.Data[0]++
	e.Data[1] = f.walk
	st.HashProbes += float64(probes)
	// Flow walk: scan the next few slots for expiry metadata updates.
	for i := 0; i < firewallWalkEntries; i++ {
		f.walk++
		slot := &f.table.slots[f.walk%uint64(len(f.table.slots))]
		if slot.used {
			slot.Data[3]++
		}
		st.HashProbes++
	}
	st.BytesTouched += headerBytes
	st.Packets++
	return nil
}
