// Command yala is the CLI front end for the Yala reproduction: profile an
// NF's footprint, train its models, predict throughput under a
// co-location, diagnose its bottleneck, schedule an arrival sequence, or
// run the online prediction service and its load generator.
//
// Usage:
//
//	yala profile  -nf FlowMonitor [-flows n] [-pktsize n] [-mtbr f]
//	yala train    -nf FlowMonitor -out flowmonitor.json
//	yala predict  -nf FlowMonitor -with NIDS,FlowStats [-flows n] [-pktsize n] [-mtbr f]
//	yala diagnose -nf FlowMonitor [-mtbr f]
//	yala place    -arrivals 60 [-seed n]
//	yala serve    -addr :8844 -models DIR [-workers n] [-cache n] [-seed n] [-full] [-tenants keys.json] [-slo 250ms] [-pprof] [-accesslog] [-wire :8845]
//	yala gateway  -addr :8860 {-replicas N -models DIR | -backends url,url | -min 1 -max 4 -models DIR}
//	              [-edgecache n] [-health 500ms] [-tenants keys.json] [-slo 250ms] [-accesslog]
//	yala loadgen  -url http://localhost:8844 [-n 20000] [-c 8] [-profiles 4] [-gateway] [-seed n] [-json path]
//	              [-tenants n | -tenant-keys k1,k2] [-hot i] [-quietrps r] [-wire host:port [-wirefloor]]
//	yala cluster  -nics 16 -arrivals 120 [-classes bluefield2:12,pensando:4] [-workload churn|diurnal|flashcrowd|heavytail]
//	              [-policies random,firstfit,slomo,yala] [-seed n] [-json path] [-shiftat t -shiftscale f] [-online]
//	yala trace record -out scenario.trace [-arrivals n] [-classes ...] [-workload kind] [-seed n]
//	yala trace replay -in scenario.trace [-policies ...] [-models DIR] [-json path]
//	yala lint     [-json path] [-analyzers] [packages...]
//	yala list
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/backend"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/nf"
	"repro/internal/nfbench"
	"repro/internal/nicsim"
	"repro/internal/placement"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/slomo"
	"repro/internal/tenant"
	"repro/internal/testbed"
	"repro/internal/trace"
	"repro/internal/traffic"
	"repro/pkg/yalaclient"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "profile":
		err = cmdProfile(args)
	case "train":
		err = cmdTrain(args)
	case "predict":
		err = cmdPredict(args)
	case "diagnose":
		err = cmdDiagnose(args)
	case "place":
		err = cmdPlace(args)
	case "serve":
		err = cmdServe(args)
	case "gateway":
		err = cmdGateway(args)
	case "loadgen":
		err = cmdLoadgen(args)
	case "cluster":
		err = cmdCluster(args)
	case "trace":
		err = cmdTrace(args)
	case "lint":
		err = cmdLint(args)
	case "list":
		fmt.Println(strings.Join(nf.Names(), "\n"))
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "yala:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: yala {profile|train|predict|diagnose|place|serve|gateway|loadgen|cluster|trace|lint|list} [flags]")
	os.Exit(2)
}

func profileFlags(fs *flag.FlagSet) (*string, *int, *int, *float64) {
	name := fs.String("nf", "FlowMonitor", "catalog NF name")
	flows := fs.Int("flows", traffic.Default.Flows, "flow count")
	pkt := fs.Int("pktsize", traffic.Default.PktSize, "packet size (B)")
	mtbr := fs.Float64("mtbr", traffic.Default.MTBR, "match-to-byte ratio (matches/MB)")
	return name, flows, pkt, mtbr
}

func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	name, flows, pkt, mtbr := profileFlags(fs)
	fs.Parse(args)
	prof := traffic.Profile{Flows: *flows, PktSize: *pkt, MTBR: *mtbr}

	tb := testbed.New(nicsim.BlueField2(), 1)
	w, err := tb.Workload(*name, prof)
	if err != nil {
		return err
	}
	m, err := tb.RunSolo(w)
	if err != nil {
		return err
	}
	fmt.Printf("NF %s at %s on %s\n", *name, prof, tb.Config().Name)
	fmt.Printf("  pattern            %v\n", w.Pattern)
	fmt.Printf("  cpu/packet         %.0f ns\n", w.CPUSecPerPkt*1e9)
	fmt.Printf("  mem refs/packet    %.1f\n", w.MemRefsPerPkt)
	fmt.Printf("  working set        %.2f MB\n", w.WSSBytes/(1<<20))
	for kind, u := range w.Accel {
		fmt.Printf("  %v: %.0f B/req, %.2f matches/req, %d queues\n",
			kind, u.BytesPerReq, u.MatchesPerReq, u.Queues)
	}
	fmt.Printf("  solo throughput    %.3f Mpps\n", m.Throughput/1e6)
	fmt.Printf("  bottleneck         %v\n", m.Bottleneck)
	return nil
}

// cmdTrain runs offline profiling and saves the fitted model as JSON —
// the artifact's train.py / models.pkl flow.
func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	name := fs.String("nf", "FlowMonitor", "catalog NF name")
	out := fs.String("out", "", "output model file (JSON)")
	seed := fs.Uint64("seed", 1, "training seed")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("train: -out is required")
	}
	tb := testbed.New(nicsim.BlueField2(), *seed)
	cfg := core.DefaultTrainConfig()
	cfg.Seed = *seed
	fmt.Printf("profiling and training %s...\n", *name)
	model, err := core.NewTrainer(tb, cfg).Train(*name)
	if err != nil {
		return err
	}
	if err := model.SaveFile(*out); err != nil {
		return err
	}
	fmt.Printf("saved %s model (pattern %v, %d accelerator models) to %s\n",
		model.Name, model.Pattern, len(model.Accels), *out)
	return nil
}

func cmdPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	name, flows, pkt, mtbr := profileFlags(fs)
	with := fs.String("with", "NIDS", "comma-separated competitor NFs")
	fs.Parse(args)
	prof := traffic.Profile{Flows: *flows, PktSize: *pkt, MTBR: *mtbr}

	tb := testbed.New(nicsim.BlueField2(), 1)
	fmt.Printf("training Yala model for %s (offline profiling)...\n", *name)
	model, err := core.NewTrainer(tb, core.DefaultTrainConfig()).Train(*name)
	if err != nil {
		return err
	}

	var comps []core.Competitor
	ws := []*nicsim.Workload{}
	targetW, err := tb.Workload(*name, prof)
	if err != nil {
		return err
	}
	ws = append(ws, targetW)
	for _, c := range strings.Split(*with, ",") {
		c = strings.TrimSpace(c)
		cw, err := tb.Workload(c, traffic.Default)
		if err != nil {
			return err
		}
		solo, err := tb.RunSolo(cw)
		if err != nil {
			return err
		}
		comps = append(comps, core.CompetitorFromMeasurement(solo))
		ws = append(ws, cw)
	}

	pred := model.Predict(prof, comps)
	fmt.Printf("predicted solo        %.3f Mpps\n", pred.Solo/1e6)
	fmt.Printf("predicted co-located  %.3f Mpps\n", pred.Throughput/1e6)
	for res, t := range pred.PerResource {
		fmt.Printf("  %-8v limit       %.3f Mpps\n", res, t/1e6)
	}
	fmt.Printf("predicted bottleneck  %v\n", pred.Bottleneck)

	ms, err := tb.Run(ws...)
	if err != nil {
		return err
	}
	truth := ms[0].Throughput
	fmt.Printf("measured  co-located  %.3f Mpps (prediction error %.1f%%)\n",
		truth/1e6, 100*math.Abs(pred.Throughput-truth)/truth)
	return nil
}

func cmdDiagnose(args []string) error {
	fs := flag.NewFlagSet("diagnose", flag.ExitOnError)
	name, flows, pkt, mtbr := profileFlags(fs)
	fs.Parse(args)
	prof := traffic.Profile{Flows: *flows, PktSize: *pkt, MTBR: *mtbr}

	tb := testbed.New(nicsim.BlueField2(), 1)
	fmt.Printf("training Yala model for %s...\n", *name)
	model, err := core.NewTrainer(tb, core.DefaultTrainConfig()).Train(*name)
	if err != nil {
		return err
	}
	memB := nfbench.MemBench(120e6, 10<<20)
	regexB := nfbench.RegexBench(0.58e6, 1000, 2000, 1)
	memSolo, err := tb.RunSolo(memB)
	if err != nil {
		return err
	}
	regexSolo, err := tb.RunSolo(regexB)
	if err != nil {
		return err
	}
	pred := model.Predict(prof, []core.Competitor{
		core.CompetitorFromMeasurement(memSolo),
		core.CompetitorFromMeasurement(regexSolo),
	})
	w, err := tb.Workload(*name, prof)
	if err != nil {
		return err
	}
	ms, err := tb.Run(w, memB, regexB)
	if err != nil {
		return err
	}
	fmt.Printf("predicted bottleneck %v, ground truth %v\n", pred.Bottleneck, ms[0].Bottleneck)
	return nil
}

func cmdPlace(args []string) error {
	fs := flag.NewFlagSet("place", flag.ExitOnError)
	arrivals := fs.Int("arrivals", 40, "arrival count")
	seed := fs.Uint64("seed", 1, "sequence seed")
	fs.Parse(args)

	tb := testbed.New(nicsim.BlueField2(), *seed)
	names := []string{"FlowStats", "ACL", "FlowClassifier", "FlowTracker", "NAT"}
	ps := placement.NewSimulator(tb)
	for _, n := range names {
		fmt.Printf("training models for %s...\n", n)
		m, err := core.NewTrainer(tb, core.DefaultTrainConfig()).Train(n)
		if err != nil {
			return err
		}
		ps.SetModel("yala", n, backend.WrapYala(m))
		sm, err := slomo.Train(tb, n, traffic.Default, slomo.DefaultConfig())
		if err != nil {
			return err
		}
		ps.SetModel("slomo", n, backend.WrapSLOMO(sm))
	}
	rng := sim.NewRNG(*seed)
	var seq []placement.Arrival
	for i := 0; i < *arrivals; i++ {
		seq = append(seq, placement.Arrival{
			Name:    names[rng.Intn(len(names))],
			Profile: traffic.Default,
			SLA:     0.05 + 0.15*rng.Float64(),
		})
	}
	fmt.Printf("%-16s %6s %10s\n", "strategy", "NICs", "violations")
	for _, st := range []placement.Strategy{
		placement.Monopolization, placement.Greedy,
		placement.SLOMOAware, placement.YalaAware, placement.Oracle,
	} {
		res, err := ps.Place(seq, st)
		if err != nil {
			return err
		}
		fmt.Printf("%-16s %6d %10d\n", st, res.NICsUsed, res.Violations)
	}
	return nil
}

// cmdServe runs the online prediction service (internal/serve): models
// load lazily from -models, train on demand when absent, and requests
// arrive over HTTP/JSON.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8844", "listen address")
	models := fs.String("models", "", "model directory (persisted models; trained on demand when absent)")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	cache := fs.Int("cache", 0, "prediction cache capacity (0 = default 8192, negative disables)")
	seed := fs.Uint64("seed", 1, "testbed and on-demand training seed")
	full := fs.Bool("full", false, "use the full offline training protocol for on-demand training (slow; default is the quick serving config)")
	tenants := fs.String("tenants", "", "tenant key file (JSON); mounts the multi-tenant admission gate")
	slo := fs.Duration("slo", 0, "admission-gate p99 latency objective (0 = default 250ms); size to the box and workload")
	pprofOn := fs.Bool("pprof", false, "expose net/http/pprof profiling under /debug/pprof/")
	accessLog := fs.Bool("accesslog", false, "log one line per request (request ID, verb, status, latency, stage timings)")
	wireAddr := fs.String("wire", "", "also listen for the yalawire binary protocol on this address (e.g. :8845)")
	fs.Parse(args)
	if *models == "" {
		return fmt.Errorf("serve: -models is required")
	}
	if err := os.MkdirAll(*models, 0o755); err != nil {
		return err
	}
	gate, err := loadGate(*tenants, *slo)
	if err != nil {
		return err
	}

	reg := serve.RegistryConfig{Dir: *models, Seed: *seed}
	if *full {
		cfg := core.DefaultTrainConfig()
		cfg.Seed = *seed
		reg.Train = cfg
		sc := slomo.DefaultConfig()
		sc.Seed = *seed
		reg.SLOMO = sc
	}
	svc := serve.NewService(serve.ServiceConfig{
		Registry:     reg,
		Workers:      *workers,
		CacheEntries: *cache,
		AccessLog:    *accessLog,
		Gate:         gate,
	})
	defer svc.Close()

	// The service handler owns "/" (including GET /metrics); pprof, when
	// asked for, mounts on an outer mux so nothing ever reaches the
	// side-effect-registered http.DefaultServeMux.
	serveHandler := svc.Handler()
	handler := http.Handler(serveHandler)
	if *wireAddr != "" {
		wlis, err := net.Listen("tcp", *wireAddr)
		if err != nil {
			return fmt.Errorf("serve: wire listener: %w", err)
		}
		// TypeCall tunneling goes through the bare service handler, not
		// the pprof-wrapped outer mux — the wire path never exposes
		// debug endpoints.
		ws := svc.ServeWire(wlis, serveHandler)
		defer ws.Close()
	}
	if *pprofOn {
		outer := http.NewServeMux()
		outer.Handle("/", handler)
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = outer
	}

	fmt.Printf("yala serve: listening on %s, models in %s\n", *addr, *models)
	fmt.Printf("  GET  /v2/models /v2/stats /v2/cluster/policies /healthz /metrics\n")
	fmt.Printf("  POST /v2/models:batchPredict /v2/models/{nf[@hw]}/{backend}:predict|:admit|:reload\n")
	fmt.Printf("       /v2/models/{nf[@hw]}:compare|:diagnose /v2/cluster/runs\n")
	fmt.Printf("  /v1 endpoints remain available (deprecated; Deprecation header set)\n")
	if wa := svc.WireAddr(); wa != "" {
		fmt.Printf("  wire: yalawire binary listener on %s (advertised via /v2/stats wire_addr)\n", wa)
	}
	if *pprofOn {
		fmt.Printf("  pprof: /debug/pprof/ enabled\n")
	}
	return http.ListenAndServe(*addr, handler)
}

// cmdGateway runs the scale-out serving front end (internal/gateway):
// either spawn N in-process serve replicas sharing a model directory
// (single-binary operation) or route across externally managed replicas
// given by -backends. Traffic shards by (nf, hw, backend) rendezvous
// hashing with health-checked failover; reloads fan out to every
// replica; repeated deterministic scenarios serve from the edge cache.
func cmdGateway(args []string) error {
	fs := flag.NewFlagSet("gateway", flag.ExitOnError)
	addr := fs.String("addr", ":8860", "listen address")
	replicas := fs.Int("replicas", 0, "spawn this many in-process serve replicas")
	backends := fs.String("backends", "", "comma-separated external replica base URLs (alternative to -replicas)")
	models := fs.String("models", "", "model directory shared by in-process replicas (required with -replicas)")
	workers := fs.Int("workers", 0, "per-replica worker pool size (0 = GOMAXPROCS)")
	cache := fs.Int("cache", 0, "per-replica prediction cache capacity (0 = default 8192, negative disables)")
	edge := fs.Int("edgecache", 0, "gateway edge response cache capacity (0 = default 8192, negative disables)")
	seed := fs.Uint64("seed", 1, "replica testbed and on-demand training seed")
	health := fs.Duration("health", 500*time.Millisecond, "replica health-check interval")
	accessLog := fs.Bool("accesslog", false, "log one line per gateway request (request ID, method, path, status, latency)")
	tenants := fs.String("tenants", "", "tenant key file (JSON); mounts the multi-tenant admission gate")
	slo := fs.Duration("slo", 0, "p99 latency objective for the admission gate and the elastic autoscaler (0 = default 250ms)")
	minReplicas := fs.Int("min", 0, "elastic pool: minimum in-process replicas (use with -max and -models)")
	maxReplicas := fs.Int("max", 0, "elastic pool: maximum in-process replicas; the pool autoscales between -min and -max")
	fs.Parse(args)

	gate, err := loadGate(*tenants, *slo)
	if err != nil {
		return err
	}

	// Elastic mode: the gateway owns its replica pool and autoscales it
	// between -min and -max under queue-depth/latency pressure.
	if *maxReplicas > 0 {
		if *models == "" {
			return fmt.Errorf("gateway: -models is required with -min/-max")
		}
		if *replicas > 0 || *backends != "" {
			return fmt.Errorf("gateway: -min/-max replaces -replicas/-backends")
		}
		if err := os.MkdirAll(*models, 0o755); err != nil {
			return err
		}
		gw, as, err := gateway.NewElastic(
			gateway.Config{
				HealthInterval:   *health,
				EdgeCacheEntries: *edge,
				AccessLog:        *accessLog,
				Gate:             gate,
			},
			serve.ServiceConfig{
				Registry:     serve.RegistryConfig{Dir: *models, Seed: *seed},
				Workers:      *workers,
				CacheEntries: *cache,
			},
			gateway.AutoscaleConfig{Min: *minReplicas, Max: *maxReplicas, P99SLO: *slo},
		)
		if err != nil {
			return err
		}
		defer gw.Close()
		defer as.Close()
		fmt.Printf("yala gateway: listening on %s, elastic pool %d..%d replicas (%d booted)\n",
			*addr, *minReplicas, *maxReplicas, as.Active())
		if gate != nil {
			fmt.Printf("  tenants: admission gate on (%d tenants incl. anonymous)\n", len(gate.Registry().Tenants()))
		}
		fmt.Printf("  routing: rendezvous on (nf, hw, backend); reloads fan out; GET /v2/gateway/stats /metrics\n")
		return http.ListenAndServe(*addr, gw.Handler())
	}

	var urls []string
	if *backends != "" {
		for _, u := range strings.Split(*backends, ",") {
			// Skip empties so a trailing comma doesn't register a
			// phantom, permanently dead replica.
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
	}
	var reps []*gateway.Replica
	if *replicas > 0 {
		if *models == "" {
			return fmt.Errorf("gateway: -models is required with -replicas")
		}
		if err := os.MkdirAll(*models, 0o755); err != nil {
			return err
		}
		var err error
		reps, err = gateway.SpawnReplicas(*replicas, serve.ServiceConfig{
			Registry:     serve.RegistryConfig{Dir: *models, Seed: *seed},
			Workers:      *workers,
			CacheEntries: *cache,
		})
		if err != nil {
			return err
		}
		defer gateway.CloseReplicas(reps)
		for _, rep := range reps {
			urls = append(urls, rep.URL)
		}
	}
	if len(urls) == 0 {
		return fmt.Errorf("gateway: need -replicas N or -backends url,url")
	}

	gw, err := gateway.New(gateway.Config{
		Backends:         urls,
		HealthInterval:   *health,
		EdgeCacheEntries: *edge,
		AccessLog:        *accessLog,
		Gate:             gate,
	})
	if err != nil {
		return err
	}
	defer gw.Close()
	// In-process replicas promote shadow models on their own drift
	// gates; fan each promotion out so peers reload and the edge cache
	// sheds stale responses.
	for _, rep := range reps {
		gw.WirePromote(rep)
	}
	fmt.Printf("yala gateway: listening on %s, %d replicas\n", *addr, len(urls))
	for i, u := range urls {
		fmt.Printf("  replica %d: %s\n", i, u)
	}
	if gate != nil {
		fmt.Printf("  tenants: admission gate on (%d tenants incl. anonymous)\n", len(gate.Registry().Tenants()))
	}
	fmt.Printf("  routing: rendezvous on (nf, hw, backend); reloads fan out; GET /v2/gateway/stats /metrics\n")
	return http.ListenAndServe(*addr, gw.Handler())
}

// loadGate builds the multi-tenant admission gate from a -tenants key
// file; "" means no gate (the pre-tenancy behavior, no admission
// control at all). slo overrides the gate's p99 objective when > 0.
func loadGate(path string, slo time.Duration) (*tenant.Gate, error) {
	if path == "" {
		return nil, nil
	}
	reg, err := tenant.Load(path)
	if err != nil {
		return nil, err
	}
	return tenant.NewGate(reg, tenant.GateConfig{P99SLO: slo}), nil
}

// cmdLoadgen replays randomized arrival scenarios against a live server.
// It exits nonzero when the run recorded any transport or server error,
// so CI can gate on it.
func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	url := fs.String("url", "http://localhost:8844", "server base URL")
	n := fs.Int("n", 20000, "total request count")
	c := fs.Int("c", 8, "concurrent client workers")
	profiles := fs.Int("profiles", 4, "distinct traffic-profile pool size (small = warm cache)")
	batch := fs.Int("batch", 1, "scenarios per Predict round trip (/v1/predict/batch)")
	maxComp := fs.Int("maxcomp", 3, "max competitors per scenario")
	nfs := fs.String("nfs", "", "comma-separated NF pool (default: a standard mix)")
	compare := fs.Float64("compare", 0, "fraction of Compare requests")
	diagnose := fs.Float64("diagnose", 0, "fraction of Diagnose requests")
	admit := fs.Float64("admit", 0, "fraction of Admit requests")
	ingest := fs.Float64("ingest", 0, "fraction of requests that predict solo and Ingest the result back as a ground-truth measurement")
	ingestShift := fs.Float64("ingestshift", 1, "scale ingested measurements by this factor (a sustained shift away from 1 trips the server's drift gate)")
	seed := fs.Uint64("seed", 1, "scenario seed")
	gw := fs.Bool("gateway", false, "the URL is a yala gateway: report per-replica distribution and edge-cache counters")
	tenantsN := fs.Int("tenants", 0, "multi-tenant mode: simulate n tenants with keys tenant-0..tenant-(n-1)")
	tenantKeys := fs.String("tenant-keys", "", "multi-tenant mode: comma-separated explicit API keys (overrides -tenants)")
	hot := fs.Int("hot", -1, "index of the hostile flooder among the tenants (unpaced; -1 = none)")
	quietRPS := fs.Float64("quietrps", 20, "paced request rate per non-hot tenant")
	wireAddr := fs.String("wire", "", "server's yalawire address: route Predict/PredictBatch over the binary protocol")
	wireFloor := fs.Bool("wirefloor", false, "measure the raw yalawire echo floor instead of a serving run (requires -wire; uses -n/-c)")
	jsonPath := fs.String("json", "", "write the machine-readable report to this path")
	fs.Parse(args)

	// -wirefloor is a pure transport measurement: TypeEcho frames with a
	// predict-request-sized payload, no gate, cache, or prediction in the
	// path. It bounds what any serving run over the same transport can do.
	if *wireFloor {
		if *wireAddr == "" {
			return fmt.Errorf("loadgen: -wirefloor requires -wire")
		}
		rep, err := serve.WireEchoFloor(*wireAddr, *c, *n, 256)
		if rep.Frames > 0 {
			fmt.Println(rep)
		}
		if *jsonPath != "" {
			bench := struct {
				Kind   string                `json:"kind"`
				Report serve.WireFloorReport `json:"report"`
			}{Kind: "wirefloor", Report: rep}
			if werr := writeJSONFile(*jsonPath, bench); werr != nil {
				return werr
			}
		}
		return err
	}

	cfg := serve.LoadgenConfig{
		URL:            *url,
		Workers:        *c,
		Requests:       *n,
		Seed:           *seed,
		Profiles:       *profiles,
		Batch:          *batch,
		MaxCompetitors: *maxComp,
		CompareFrac:    *compare,
		DiagnoseFrac:   *diagnose,
		AdmitFrac:      *admit,
		IngestFrac:     *ingest,
		IngestShift:    *ingestShift,
		Gateway:        *gw,
		HotTenant:      *hot,
		QuietRPS:       *quietRPS,
		WireAddr:       *wireAddr,
	}
	if *tenantKeys != "" {
		for _, k := range strings.Split(*tenantKeys, ",") {
			cfg.TenantKeys = append(cfg.TenantKeys, strings.TrimSpace(k))
		}
	} else {
		for i := 0; i < *tenantsN; i++ {
			cfg.TenantKeys = append(cfg.TenantKeys, fmt.Sprintf("tenant-%d", i))
		}
	}
	if *hot >= len(cfg.TenantKeys) {
		return fmt.Errorf("loadgen: -hot %d is out of range for %d tenants", *hot, len(cfg.TenantKeys))
	}
	if *nfs != "" {
		for _, name := range strings.Split(*nfs, ",") {
			cfg.NFs = append(cfg.NFs, strings.TrimSpace(name))
		}
	}
	// Snapshot server cache counters around the run so the reported hit
	// rate is this run's, not the server's lifetime.
	client := yalaclient.New(*url)
	before, beforeErr := client.Stats(context.Background())
	rep, runErr := serve.Loadgen(cfg)
	// A partially failed run still carries the measurement of everything
	// that succeeded — print and persist the report before surfacing the
	// error.
	if rep.Requests > 0 {
		fmt.Println(rep)
	}
	if *jsonPath != "" {
		bench := struct {
			Kind   string              `json:"kind"`
			Config serve.LoadgenConfig `json:"config"`
			Report serve.LoadgenReport `json:"report"`
		}{Kind: "loadgen", Config: cfg, Report: rep}
		if err := writeJSONFile(*jsonPath, bench); err != nil {
			return err
		}
	}
	if runErr != nil {
		return runErr
	}
	// Belt and braces for the CI gate: never exit 0 with recorded errors,
	// even if the error path above missed them.
	if rep.Errors > 0 {
		return fmt.Errorf("loadgen: %d/%d requests failed", rep.Errors, rep.Requests)
	}
	if after, err := client.Stats(context.Background()); err == nil && beforeErr == nil {
		hits := after.Cache.Hits - before.Cache.Hits
		total := hits + after.Cache.Misses - before.Cache.Misses
		if total > 0 {
			fmt.Printf("server      cache hit rate %.1f%% this run (%d entries)\n",
				100*float64(hits)/float64(total), after.Cache.Entries)
		}
	}
	return nil
}

// scenarioFlags registers the fleet-scenario flags shared by `yala
// cluster` and `yala trace record`, returning a resolver that builds the
// scenario after fs.Parse.
func scenarioFlags(fs *flag.FlagSet) func() (cluster.Scenario, error) {
	nics := fs.Int("nics", 16, "fleet size (NIC count; ignored when -classes is set)")
	classes := fs.String("classes", "", "heterogeneous fleet spec: comma-separated class:count[:cores] (classes: "+strings.Join(cluster.ClassNames(), ", ")+")")
	workload := fs.String("workload", cluster.WorkloadChurn, "workload generator: "+strings.Join(cluster.Workloads(), ", "))
	arrivals := fs.Int("arrivals", 120, "NF arrival count")
	seed := fs.Uint64("seed", 1, "scenario and testbed seed")
	nfs := fs.String("nfs", "", "comma-separated NF pool (default: a standard mix)")
	profiles := fs.Int("profiles", 4, "traffic-profile pool size")
	drift := fs.Float64("drift", cluster.DefaultDriftProb, "per-tenant traffic-drift probability")
	iat := fs.Float64("iat", 1, "mean inter-arrival time (s)")
	meanlife := fs.Float64("meanlife", 40, "mean tenant lifetime (s)")
	slaLo := fs.Float64("slalo", 0.05, "SLA lower bound (max tolerated throughput drop)")
	slaHi := fs.Float64("slahi", 0.2, "SLA upper bound")
	shiftAt := fs.Float64("shiftat", 0, "apply a mid-run hardware shift at this time (0: none)")
	shiftScale := fs.Float64("shiftscale", 0, "frequency scale of the mid-run shift (requires -shiftat)")
	online := fs.Bool("online", false, "close the feedback loop: drift-gate enforcement measurements, retrain and promote mid-run")
	return func() (cluster.Scenario, error) {
		sc := cluster.Scenario{
			NICs:         *nics,
			Workload:     *workload,
			Arrivals:     *arrivals,
			Seed:         *seed,
			Profiles:     *profiles,
			MeanIAT:      *iat,
			MeanLifetime: *meanlife,
			DriftProb:    *drift,
			SLALo:        *slaLo,
			SLAHi:        *slaHi,
			ShiftAt:      *shiftAt,
			ShiftScale:   *shiftScale,
			Online:       *online,
		}
		if *classes != "" {
			specs, err := parseClasses(*classes)
			if err != nil {
				return cluster.Scenario{}, err
			}
			sc.Classes = specs
		}
		if *nfs != "" {
			for _, name := range strings.Split(*nfs, ",") {
				sc.NFs = append(sc.NFs, strings.TrimSpace(name))
			}
		}
		sc = sc.WithDefaults()
		return sc, sc.Validate()
	}
}

// parseClasses parses the -classes spec: class:count[:cores], comma
// separated, e.g. "bluefield2:12,pensando:4" or "bluefield2:8:4".
func parseClasses(spec string) ([]cluster.ClassSpec, error) {
	var out []cluster.ClassSpec
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("classes: %q is not class:count[:cores]", part)
		}
		cs := cluster.ClassSpec{Class: fields[0]}
		var err error
		if cs.Count, err = strconv.Atoi(fields[1]); err != nil {
			return nil, fmt.Errorf("classes: bad count in %q", part)
		}
		if len(fields) == 3 {
			if cs.Cores, err = strconv.Atoi(fields[2]); err != nil {
				return nil, fmt.Errorf("classes: bad cores in %q", part)
			}
		}
		out = append(out, cs)
	}
	return out, nil
}

// parsePolicies splits a -policies flag value.
func parsePolicies(spec string) []string {
	var out []string
	if spec != "" {
		for _, p := range strings.Split(spec, ",") {
			out = append(out, strings.TrimSpace(p))
		}
	}
	return out
}

// cmdCluster runs a fleet-orchestration scenario and prints the policy
// comparison (internal/cluster). By default the run executes locally,
// with models from a serve.ModelRegistry — loaded from -models (or
// quick-trained on demand) exactly once per (class, NF) across all
// compared policies. With -url the scenario is submitted to a running
// `yala serve` through the pkg/yalaclient SDK (/v2/cluster/runs)
// instead — the remote path, sharing the server's registry and caches.
func cmdCluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	scenario := scenarioFlags(fs)
	policies := fs.String("policies", "", "comma-separated policies to compare (default: all)")
	models := fs.String("models", "", "model directory (persisted models; quick-trained on demand when absent or empty)")
	url := fs.String("url", "", "run remotely on this yala serve base URL instead of locally")
	jsonPath := fs.String("json", "", "write the machine-readable comparison to this path")
	fs.Parse(args)

	sc, err := scenario()
	if err != nil {
		return err
	}
	if *url != "" {
		return clusterRemote(*url, sc, parsePolicies(*policies), *jsonPath)
	}
	if *models != "" {
		if err := os.MkdirAll(*models, 0o755); err != nil {
			return err
		}
	}
	reg := serve.NewRegistry(serve.RegistryConfig{Dir: *models, Seed: sc.Seed})
	env := cluster.NewEnv(nicsim.BlueField2(), sc.Seed, reg)
	fmt.Printf("cluster: %d NICs, %d %s arrivals, NF pool %v (models %s)\n",
		sc.NICs, sc.Arrivals, sc.Workload, sc.NFs, modelSourceDesc(*models))
	cmp, err := cluster.Run(context.Background(), env, sc, parsePolicies(*policies))
	if err != nil {
		return err
	}
	fmt.Println(cmp.Table())
	if *jsonPath != "" {
		return writeJSONFile(*jsonPath, cmp)
	}
	return nil
}

// clusterRemote submits the scenario to a running server through the
// SDK and renders the returned comparison exactly like a local run.
func clusterRemote(url string, sc cluster.Scenario, policies []string, jsonPath string) error {
	params := yalaclient.ClusterRunParams{
		NICs:         sc.NICs,
		Workload:     sc.Workload,
		Arrivals:     sc.Arrivals,
		Seed:         sc.Seed,
		NFs:          sc.NFs,
		Policies:     policies,
		Profiles:     sc.Profiles,
		MeanIAT:      sc.MeanIAT,
		MeanLifetime: sc.MeanLifetime,
		DriftProb:    &sc.DriftProb,
		SLALo:        sc.SLALo,
		SLAHi:        sc.SLAHi,
		ShiftAt:      sc.ShiftAt,
		ShiftScale:   sc.ShiftScale,
		Online:       sc.Online,
	}
	for _, cs := range sc.Classes {
		params.Classes = append(params.Classes, yalaclient.ClassSpec{Class: cs.Class, Count: cs.Count, Cores: cs.Cores})
	}
	fmt.Printf("cluster: %d NICs, %d %s arrivals, NF pool %v (remote: %s)\n",
		sc.NICs, sc.Arrivals, sc.Workload, sc.NFs, url)
	result, err := yalaclient.New(url).ClusterRun(context.Background(), params)
	if err != nil {
		return err
	}
	// The SDK result is wire-shape compatible with the orchestrator's
	// comparison; round-trip through JSON to reuse its table renderer.
	raw, err := json.Marshal(result)
	if err != nil {
		return err
	}
	var cmp cluster.Comparison
	if err := json.Unmarshal(raw, &cmp); err != nil {
		return err
	}
	fmt.Println(cmp.Table())
	if jsonPath != "" {
		return writeJSONFile(jsonPath, cmp)
	}
	return nil
}

// cmdTrace records and replays fleet workload traces (internal/trace):
// `record` freezes a scenario's full tenant stream into a versioned
// JSONL file, `replay` runs a recorded stream through the policy
// comparison — reproducing a recorded run event for event.
func cmdTrace(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("trace: want `yala trace record` or `yala trace replay`")
	}
	switch args[0] {
	case "record":
		return cmdTraceRecord(args[1:])
	case "replay":
		return cmdTraceReplay(args[1:])
	}
	return fmt.Errorf("trace: unknown subcommand %q (want record or replay)", args[0])
}

func cmdTraceRecord(args []string) error {
	fs := flag.NewFlagSet("trace record", flag.ExitOnError)
	scenario := scenarioFlags(fs)
	out := fs.String("out", "", "output trace file (JSONL); required")
	fs.Parse(args)
	sc, err := scenario()
	if err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("trace record: -out is required")
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	tr, err := trace.Record(f, sc)
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("recorded %d %s arrivals over %s to %s\n",
		len(tr.Stream), tr.Scenario.Workload, tr.Scenario.FleetDesc(), *out)
	return nil
}

func cmdTraceReplay(args []string) error {
	fs := flag.NewFlagSet("trace replay", flag.ExitOnError)
	in := fs.String("in", "", "input trace file (from `yala trace record`); required")
	policies := fs.String("policies", "", "comma-separated policies to compare (default: all)")
	models := fs.String("models", "", "model directory (persisted models; quick-trained on demand when absent or empty)")
	jsonPath := fs.String("json", "", "write the machine-readable comparison to this path")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("trace replay: -in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	tr, err := trace.Decode(f)
	f.Close()
	if err != nil {
		return err
	}
	if *models != "" {
		if err := os.MkdirAll(*models, 0o755); err != nil {
			return err
		}
	}
	reg := serve.NewRegistry(serve.RegistryConfig{Dir: *models, Seed: tr.Scenario.Seed})
	env := cluster.NewEnv(nicsim.BlueField2(), tr.Scenario.Seed, reg)
	fmt.Printf("replay: %d arrivals over %s from %s (models %s)\n",
		len(tr.Stream), tr.Scenario.FleetDesc(), *in, modelSourceDesc(*models))
	cmp, err := cluster.RunStream(context.Background(), env, tr.Scenario, tr.Stream, parsePolicies(*policies))
	if err != nil {
		return err
	}
	fmt.Println(cmp.Table())
	if *jsonPath != "" {
		return writeJSONFile(*jsonPath, cmp)
	}
	return nil
}

func modelSourceDesc(dir string) string {
	if dir == "" {
		return "quick-trained in memory"
	}
	return "loaded from " + dir
}

// writeJSONFile writes v as indented JSON — the machine-readable output
// behind the -json flags.
func writeJSONFile(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
