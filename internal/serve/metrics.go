package serve

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/tenant"
)

// stageNames are the request pipeline stages the span instrumentation
// records. Their histogram series are pre-registered so /metrics
// exposes every stage (zero-valued) from the first scrape, before any
// traffic arrives.
var stageNames = []string{"decode", "cache", "predict", "encode"}

// initObs builds the service's metric registry. Counters the request
// paths already maintain as atomics (per-verb totals, errors, cache
// stats) are exposed through read-at-scrape funcs rather than being
// double counted into a second atomic; only histograms are new state.
func (s *Service) initObs() {
	r := obs.NewRegistry()
	s.obs = r
	r.CounterFunc("yala_requests_total", s.predicts.Load, "verb", "predict")
	r.CounterFunc("yala_requests_total", s.compares.Load, "verb", "compare")
	r.CounterFunc("yala_requests_total", s.admits.Load, "verb", "admit")
	r.CounterFunc("yala_requests_total", s.diagnoses.Load, "verb", "diagnose")
	r.CounterFunc("yala_requests_total", s.clusterRuns.Load, "verb", "cluster_run")
	r.CounterFunc("yala_requests_total", s.ingests.Load, "verb", "ingest")
	r.CounterFunc("yala_requests_total", s.httpRequests.Load, "transport", "http")
	r.CounterFunc("yala_requests_total", s.wireRequests.Load, "transport", "wire")
	r.CounterFunc("yala_request_errors_total", s.errors.Load)
	r.CounterFunc("yala_client_canceled_total", s.canceled.Load)
	r.CounterFunc("yala_cache_hits_total", s.cache.Hits)
	r.CounterFunc("yala_cache_misses_total", s.cache.Misses)
	r.CounterFunc("yala_cache_evictions_total", s.cache.Evictions)
	r.GaugeFunc("yala_cache_entries", func() float64 { return float64(s.cache.Len()) })
	r.GaugeFunc("yala_queue_depth", func() float64 { return float64(len(s.jobs)) })
	r.GaugeFunc("yala_workers", func() float64 { return float64(s.cfg.Workers) })
	r.GaugeFunc("yala_uptime_seconds", func() float64 { return time.Since(s.started).Seconds() })
	r.GaugeFunc("yala_start_time_seconds", func() float64 { return float64(s.started.Unix()) })
	// Online-feedback series: the drift gate's decision stream and the
	// candidate lifecycle, read at scrape from the controller's counters.
	r.CounterFunc("yala_drift_observations_total", func() uint64 { return s.fb.Stats().Observations })
	r.CounterFunc("yala_drift_quarantined_total", func() uint64 { return s.fb.Stats().Quarantined })
	r.CounterFunc("yala_drift_holds_total", func() uint64 { return s.fb.Stats().Holds })
	r.CounterFunc("yala_drift_trips_total", func() uint64 { return s.fb.Stats().Trips })
	r.CounterFunc("yala_drift_retrains_total", func() uint64 { return s.fb.Stats().Retrains })
	r.CounterFunc("yala_drift_shadow_samples_total", func() uint64 { return s.fb.Stats().ShadowSamples })
	r.CounterFunc("yala_drift_shadow_compares_total", func() uint64 { return s.fb.Stats().ShadowCompares })
	r.CounterFunc("yala_drift_promotions_total", func() uint64 { return s.fb.Stats().Promotions })
	s.reqSeconds = r.Histogram("yala_request_seconds", nil)
	s.stageHist = make(map[string]*obs.Histogram, len(stageNames))
	for _, st := range stageNames {
		s.stageHist[st] = r.Histogram("yala_stage_seconds", nil, "stage", st)
	}
}

// stageHistogram returns the stage's latency histogram; unknown stage
// names fall back to a registry get-or-create so a future span name
// cannot drop observations.
func (s *Service) stageHistogram(name string) *obs.Histogram {
	if h, ok := s.stageHist[name]; ok {
		return h
	}
	return s.obs.Histogram("yala_stage_seconds", nil, "stage", name)
}

// Obs exposes the service's metric registry — the embedding hook for
// components (the cluster scheduler) that publish into the server's
// exposition.
func (s *Service) Obs() *obs.Registry { return s.obs }

// WriteMetrics renders the service's metrics in Prometheus text
// exposition format.
func (s *Service) WriteMetrics(w io.Writer) error { return s.obs.WriteProm(w) }

// promContentType is the Prometheus text exposition media type.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", promContentType)
	s.obs.WriteProm(w)
}

// statusRecorder captures the response status for metrics and the
// access log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// withObs is the request middleware: it assigns (or adopts) the
// X-Request-Id, attaches a stage trace to the context, and on
// completion feeds the request and per-stage latency histograms plus
// the optional access log. It subsumes the former withRequestID —
// requestID(r) still reads the ID out of the context.
func (s *Service) withObs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := fmt.Sprintf("req-%06d", requestCounter.Add(1))
		if hdr := strings.TrimSpace(r.Header.Get("X-Request-Id")); hdr != "" && len(hdr) <= 64 {
			rid = hdr
		}
		w.Header().Set("X-Request-Id", rid)
		tr := obs.NewTrace(rid)
		ctx := context.WithValue(r.Context(), ridKey{}, rid)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r.WithContext(obs.ContextWithTrace(ctx, tr)))
		dur := time.Since(start)
		// Requests tunneled off the wire listener (TypeCall dispatch)
		// carry a context marker so the transport split stays honest
		// even though they run the same HTTP handler.
		if r.Context().Value(wireTransportKey{}) != nil {
			s.wireRequests.Add(1)
		} else {
			s.httpRequests.Add(1)
		}
		if rec.status == tenant.StatusClientClosedRequest {
			s.canceled.Add(1)
		}
		s.reqSeconds.Observe(dur.Seconds())
		stages := tr.Stages()
		for name, d := range stages {
			s.stageHistogram(name).Observe(d.Seconds())
		}
		if s.cfg.AccessLog {
			log.Printf("serve: rid=%s method=%s path=%s status=%d dur=%s%s",
				rid, r.Method, r.URL.Path, rec.status, dur.Round(time.Microsecond), renderStages(stages))
		}
	})
}

// renderStages renders a trace's stage totals for one access-log line,
// sorted for deterministic output; no stages renders as nothing.
func renderStages(stages map[string]time.Duration) string {
	if len(stages) == 0 {
		return ""
	}
	names := make([]string, 0, len(stages))
	for n := range stages {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString(" stages=")
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s:%s", n, stages[n].Round(time.Microsecond))
	}
	return b.String()
}
