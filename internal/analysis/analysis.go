package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one analyzer diagnostic. File is relative to the root the
// suite was run from so golden files and CI output are stable across
// checkouts.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// String renders the finding in the canonical file:line:col form used by
// text output and golden files.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// sortFindings orders findings by (file, line, col, analyzer, message) so
// every run of the suite emits the same sequence — the suite must hold
// itself to the determinism bar it enforces.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// Analyzer is one check. Run is called once per loaded package; Finish,
// if set, is called once after every package has been visited — the hook
// for checks that need repo-global state (duplicate metric names).
// Analyzer values carry per-run state, so obtain fresh instances from
// DefaultAnalyzers for every suite run.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
	// Finish reports findings that only materialize after the whole
	// run: it receives a position-aware reporter bound to the suite.
	Finish func(r *Reporter)
}

// Pass hands one loaded package to one analyzer.
type Pass struct {
	Pkg    *Package
	Loader *Loader
	r      *Reporter
}

// Reportf records a finding for the running analyzer at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.r.Reportf(pos, format, args...)
}

// TypeOf returns the static type of e, or nil when type information for
// e is unavailable (a dependency failed to type-check). Analyzers must
// treat nil as "unknown", never as "not a match is proven".
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Pkg.Info == nil {
		return nil
	}
	return p.Pkg.Info.TypeOf(e)
}

// ObjectOf resolves an identifier to the object it denotes, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if p.Pkg.Info == nil {
		return nil
	}
	if o := p.Pkg.Info.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// usesPkgFunc reports whether sel is a selector for function name from
// package pkgPath ("time", "io", "net/http"), resolving through type
// information when present and falling back to matching the file's
// imports syntactically — so analyzers keep working on packages whose
// dependencies failed to type-check.
func (p *Pass) usesPkgFunc(file *ast.File, sel *ast.SelectorExpr, pkgPath, name string) bool {
	if sel.Sel.Name != name {
		return false
	}
	if obj := p.ObjectOf(sel.Sel); obj != nil {
		return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	return importNames(file)[id.Name] == pkgPath
}

// importNames maps local package names in file to import paths, honoring
// aliases; dot and blank imports are skipped.
func importNames(file *ast.File) map[string]string {
	names := map[string]string{}
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path[strings.LastIndex(path, "/")+1:]
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == "." || name == "_" {
			continue
		}
		names[name] = path
	}
	return names
}

// Reporter accumulates findings, translating token positions to
// root-relative paths.
type Reporter struct {
	fset     *token.FileSet
	root     string
	analyzer string
	findings []Finding
}

// Reportf records a finding at pos for the current analyzer.
func (r *Reporter) Reportf(pos token.Pos, format string, args ...any) {
	p := r.fset.Position(pos)
	r.findings = append(r.findings, Finding{
		File:     r.relFile(p.Filename),
		Line:     p.Line,
		Col:      p.Column,
		Analyzer: r.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// relFile renders file relative to the suite root when it lies inside
// it; paths outside the root (GOROOT sources) stay absolute.
func (r *Reporter) relFile(file string) string {
	if rel, err := filepath.Rel(r.root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return file
}

// walkStack traverses root depth-first, calling fn with each node and the
// stack of its ancestors (outermost first, not including n itself). It is
// the stdlib-only stand-in for x/tools' inspector with stack.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}
