// Package serve is the online prediction-serving subsystem: the
// long-running system the paper's operators would deploy, layered over
// the offline artifacts the rest of the tree produces.
//
// The paper frames Yala's predictor as an online component consulted at
// NF-arrival time — persisted models are loaded "without re-profiling"
// and drive admission and placement decisions. This package turns the
// one-shot CLI flow into a service:
//
//   - ModelRegistry discovers and lazily loads persisted per-NF models
//     (Yala and the SLOMO baseline) from a model directory, suppressing
//     duplicate loads under concurrency and training-and-persisting on
//     demand when a model file is absent.
//   - Service answers Predict / Compare / Admit / Diagnose requests
//     through a bounded worker pool, with a sharded LRU cache keyed on
//     (NF, competitor set, traffic profile) — sound because predictions
//     are deterministic functions of that key.
//   - Handler exposes the service over HTTP/JSON (yala serve), and
//     Loadgen replays randomized arrival scenarios against a live server
//     (yala loadgen), reporting throughput and latency percentiles.
package serve

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/profiling"
	"repro/internal/slomo"
	"repro/internal/traffic"
)

// Backend selects which predictor answers a request.
type Backend string

// Supported prediction backends.
const (
	BackendYala  Backend = "yala"
	BackendSLOMO Backend = "slomo"
)

// ParseBackend normalizes a request's backend field; empty means Yala.
func ParseBackend(s string) (Backend, error) {
	switch Backend(strings.ToLower(strings.TrimSpace(s))) {
	case "", BackendYala:
		return BackendYala, nil
	case BackendSLOMO:
		return BackendSLOMO, nil
	}
	return "", fmt.Errorf("serve: unknown backend %q (have yala, slomo)", s)
}

// ProfileSpec is a traffic profile on the wire. Absent attributes fall
// back to the paper's default profile. MTBR is a pointer because 0
// matches/MB is a valid value (a match-free workload) that must remain
// distinguishable from "not specified"; flows and packet size have
// positive lower bounds, so 0 can mean absent there.
type ProfileSpec struct {
	Flows   int      `json:"flows,omitempty"`
	PktSize int      `json:"pktsize,omitempty"`
	MTBR    *float64 `json:"mtbr,omitempty"`
}

// F64 builds the pointer form MTBR takes in a ProfileSpec literal.
func F64(v float64) *float64 { return &v }

// Profile resolves the spec against the default profile.
func (p ProfileSpec) Profile() traffic.Profile {
	prof := traffic.Default
	if p.Flows > 0 {
		prof.Flows = p.Flows
	}
	if p.PktSize > 0 {
		prof.PktSize = p.PktSize
	}
	if p.MTBR != nil {
		prof.MTBR = *p.MTBR
	}
	return prof
}

// SpecOf converts a resolved profile back to its wire form.
func SpecOf(p traffic.Profile) ProfileSpec {
	return ProfileSpec{Flows: p.Flows, PktSize: p.PktSize, MTBR: F64(p.MTBR)}
}

// CompetitorSpec names one co-located NF and its traffic profile.
type CompetitorSpec struct {
	Name    string      `json:"name"`
	Profile ProfileSpec `json:"profile,omitzero"`
}

// specKey renders one competitor canonically.
func specKey(c CompetitorSpec) string {
	return fmt.Sprintf("%s@%s", c.Name, c.Profile.Profile())
}

// canonSpecs returns the competitor set in canonical order. Both the
// cache key and the computation must see one order: counter aggregation
// and ground-truth co-runs are order-sensitive (IPC averaging, per-run
// RNG draws), so serving a sorted-key cache entry for an unsorted
// computation would break the cache-equals-direct invariant.
func canonSpecs(specs []CompetitorSpec) []CompetitorSpec {
	out := append([]CompetitorSpec(nil), specs...)
	sort.Slice(out, func(i, j int) bool { return specKey(out[i]) < specKey(out[j]) })
	return out
}

// scenarioKey renders the deterministic cache-key fragment for a target
// NF, its profile and a canonically ordered competitor set (canonSpecs).
func scenarioKey(nf string, prof traffic.Profile, comps []CompetitorSpec) string {
	parts := make([]string, len(comps))
	for i, c := range comps {
		parts[i] = specKey(c)
	}
	return fmt.Sprintf("%s@%s|%s", nf, prof, strings.Join(parts, ","))
}

// QuickTrainConfig is a reduced-cost Yala training configuration for
// on-demand training in a serving context: a small random profiling plan
// and a slimmer regressor. Accuracy is below the paper's full protocol
// but training completes in well under a second per NF, which is what an
// online admission path can afford. Offline-trained full models in the
// model directory always take precedence.
func QuickTrainConfig(seed uint64) core.TrainConfig {
	cfg := core.DefaultTrainConfig()
	cfg.Seed = seed
	cfg.Plan = profiling.Random(48, seed)
	cfg.GBR = ml.GBRConfig{
		Trees:        60,
		LearningRate: 0.1,
		MaxDepth:     4,
		MinLeaf:      2,
		Subsample:    0.85,
		Seed:         seed,
	}
	return cfg
}

// QuickSLOMOConfig mirrors QuickTrainConfig for the SLOMO baseline.
func QuickSLOMOConfig(seed uint64) slomo.Config {
	cfg := slomo.DefaultConfig()
	cfg.Seed = seed
	cfg.Samples = 48
	cfg.GBR = ml.GBRConfig{
		Trees:        60,
		LearningRate: 0.1,
		MaxDepth:     4,
		MinLeaf:      2,
		Subsample:    0.85,
		Seed:         seed,
	}
	return cfg
}
