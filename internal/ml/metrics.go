package ml

import "math"

// MAPE is the mean absolute percentage error of predictions against
// ground truth, in percent — the paper's headline accuracy metric.
// Samples with zero truth are skipped.
func MAPE(pred, truth []float64) float64 {
	var sum float64
	var n int
	for i := range truth {
		if truth[i] == 0 {
			continue
		}
		sum += math.Abs(pred[i]-truth[i]) / math.Abs(truth[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return 100 * sum / float64(n)
}

// APEs returns the absolute percentage error of every sample, in percent,
// for distribution plots (box-and-whisker figures).
func APEs(pred, truth []float64) []float64 {
	out := make([]float64, 0, len(truth))
	for i := range truth {
		if truth[i] == 0 {
			continue
		}
		out = append(out, 100*math.Abs(pred[i]-truth[i])/math.Abs(truth[i]))
	}
	return out
}

// AccWithin is the fraction (in percent) of predictions within ±tol
// relative error of the truth — the paper's ±5% Acc. and ±10% Acc.
func AccWithin(pred, truth []float64, tol float64) float64 {
	var hit, n int
	for i := range truth {
		if truth[i] == 0 {
			continue
		}
		n++
		if math.Abs(pred[i]-truth[i])/math.Abs(truth[i]) <= tol {
			hit++
		}
	}
	if n == 0 {
		return 0
	}
	return 100 * float64(hit) / float64(n)
}

// RMSE is the root mean squared error.
func RMSE(pred, truth []float64) float64 {
	if len(truth) == 0 {
		return 0
	}
	var sum float64
	for i := range truth {
		d := pred[i] - truth[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(truth)))
}

// Quantile returns the q-quantile (0..1) of values using linear
// interpolation on a sorted copy.
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := append([]float64(nil), values...)
	insertionSort(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Median is the 0.5 quantile.
func Median(values []float64) float64 { return Quantile(values, 0.5) }

func insertionSort(a []float64) {
	// Shell-style gap sort: fine for metric-sized slices, no sort import
	// needed for float-specific comparators.
	for gap := len(a) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(a); i++ {
			v := a[i]
			j := i
			for ; j >= gap && a[j-gap] > v; j -= gap {
				a[j] = a[j-gap]
			}
			a[j] = v
		}
	}
}
