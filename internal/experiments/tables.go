package experiments

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/diagnose"
	"repro/internal/nf"
	"repro/internal/nfbench"
	"repro/internal/nicsim"
	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// evalColocation measures prediction accuracy for one target NF across
// random co-location sets and traffic profiles — the Table 2 protocol.
// withRegexBench additionally mixes in synthetic regex contention.
func (l *Lab) evalColocation(target string, profiles []traffic.Profile, sets int) (yala, slomoS accStats, err error) {
	yModel, err := l.Yala(target)
	if err != nil {
		return yala, slomoS, err
	}
	sModel, err := l.SLOMO(target)
	if err != nil {
		return yala, slomoS, err
	}
	names := nf.Table1Names()
	rng := sim.NewRNG(l.Seed ^ 0x7ab2)

	for s := 0; s < sets; s++ {
		// Random co-location: 1-3 other NFs at the default profile.
		k := 1 + rng.Intn(3)
		var others []string
		for j := 0; j < k; j++ {
			o := names[rng.Intn(len(names))]
			for o == target {
				o = names[rng.Intn(len(names))]
			}
			others = append(others, o)
		}
		prof := profiles[s%len(profiles)]

		w, err := l.TB.Workload(target, prof)
		if err != nil {
			return yala, slomoS, err
		}
		ws := []*nicsim.Workload{w}
		var comps []core.Competitor
		var agg nicsim.Counters
		for _, o := range others {
			ow, err := l.TB.Workload(o, traffic.Default)
			if err != nil {
				return yala, slomoS, err
			}
			ws = append(ws, ow)
			solo, err := l.TB.RunSolo(ow)
			if err != nil {
				return yala, slomoS, err
			}
			comps = append(comps, core.CompetitorFromMeasurement(solo))
			agg.Add(solo.Counters)
		}
		ms, err := l.TB.Run(ws...)
		if err != nil {
			return yala, slomoS, err
		}
		truth := ms[0].Throughput

		yala.add(yModel.Predict(prof, comps).Throughput, truth)
		soloNew, err := l.soloAt(target, prof)
		if err != nil {
			return yala, slomoS, err
		}
		slomoS.add(sModel.PredictExtrapolated(agg, soloNew), truth)
	}
	return yala, slomoS, nil
}

// Table2 reproduces the overall accuracy comparison: nine NFs under
// multi-resource contention and varying traffic attributes.
func Table2(l *Lab) (*Report, error) {
	r := &Report{ID: "table2", Title: "Overall prediction accuracy (multi-resource + traffic)"}
	var rows [][]string
	profiles := traffic.EvalProfiles()
	for _, name := range nf.Table1Names() {
		y, s, err := l.evalColocation(name, profiles, l.n(45, 18))
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{
			name,
			f1(s.mape()), f1(s.acc5()), f1(s.acc10()),
			f1(y.mape()), f1(y.acc5()), f1(y.acc10()),
		})
	}
	r.table([]string{"NF", "SLOMO MAPE%", "±5%", "±10%", "Yala MAPE%", "±5%", "±10%"}, rows)
	return r, nil
}

// Table3 reproduces the multi-resource-only comparison (fixed default
// traffic): NIDS and FlowMonitor under mem-bench + regex-bench.
func Table3(l *Lab) (*Report, error) {
	r := &Report{ID: "table3", Title: "Accuracy under multi-resource contention (default traffic)"}
	rng := sim.NewRNG(l.Seed ^ 0x7ab3)
	var rows [][]string
	for _, name := range []string{"NIDS", "FlowMonitor"} {
		yModel, err := l.Yala(name)
		if err != nil {
			return nil, err
		}
		sModel, err := l.SLOMO(name)
		if err != nil {
			return nil, err
		}
		w, err := l.TB.Workload(name, traffic.Default)
		if err != nil {
			return nil, err
		}
		var y, s accStats
		for i := 0; i < l.n(45, 15); i++ {
			memB := nfbench.MemBench(rng.Range(30e6, 200e6), rng.Range(1<<20, 14<<20))
			regexB := nfbench.RegexBench(rng.Range(0.15e6, 0.7e6), 1000, 2000, 1)
			ms, err := l.TB.Run(w, memB, regexB)
			if err != nil {
				return nil, err
			}
			memSolo, err := l.TB.RunSolo(memB)
			if err != nil {
				return nil, err
			}
			regexSolo, err := l.TB.RunSolo(regexB)
			if err != nil {
				return nil, err
			}
			truth := ms[0].Throughput
			y.add(yModel.Predict(traffic.Default, []core.Competitor{
				core.CompetitorFromMeasurement(memSolo),
				core.CompetitorFromMeasurement(regexSolo),
			}).Throughput, truth)
			var agg nicsim.Counters
			agg.Add(memSolo.Counters)
			agg.Add(regexSolo.Counters)
			s.add(sModel.Predict(agg), truth)
		}
		rows = append(rows, []string{
			name,
			f1(s.mape()), f1(s.acc5()), f1(s.acc10()),
			f1(y.mape()), f1(y.acc5()), f1(y.acc10()),
		})
	}
	r.table([]string{"NF", "SLOMO MAPE%", "±5%", "±10%", "Yala MAPE%", "±5%", "±10%"}, rows)
	return r, nil
}

// Table4 reproduces the composition comparison: sum vs min vs Yala's
// execution-pattern composition for NF1 and NF2 in both patterns.
func Table4(l *Lab) (*Report, error) {
	r := &Report{ID: "table4", Title: "Composition MAPE% by execution pattern"}
	var rows [][]string
	for _, name := range []string{"NF1", "NF2"} {
		for _, pattern := range []nicsim.ExecPattern{nicsim.Pipeline, nicsim.RunToCompletion} {
			res, err := l.synthComposition(name, pattern)
			if err != nil {
				return nil, err
			}
			rows = append(rows, []string{
				name, pattern.String(),
				f1(res[core.ComposeSum]),
				f1(res[core.ComposeMin]),
				f1(res[core.ForPattern(pattern)]),
			})
		}
	}
	r.table([]string{"NF", "pattern", "sum", "min", "Yala"}, rows)
	return r, nil
}

// Table5 reproduces the traffic-awareness comparison: memory-only
// contention with random traffic profiles for the traffic-sensitive NFs.
func Table5(l *Lab) (*Report, error) {
	return l.table5On("table5", []string{
		"NIDS", "FlowClassifier", "NAT", "FlowTracker", "FlowStats", "FlowMonitor", "IPTunnel",
	})
}

// table5On runs the Table 5 protocol for a set of NFs (Table 9 reuses it
// on the Pensando preset).
func (l *Lab) table5On(id string, names []string) (*Report, error) {
	r := &Report{ID: id, Title: "Accuracy under memory contention + dynamic traffic"}
	rng := sim.NewRNG(l.Seed ^ 0x7ab5)
	var rows [][]string
	for _, name := range names {
		yModel, err := l.Yala(name)
		if err != nil {
			return nil, err
		}
		sModel, err := l.SLOMO(name)
		if err != nil {
			return nil, err
		}
		var y, s accStats
		for i := 0; i < l.n(50, 15); i++ {
			prof := traffic.Random(rng)
			w, err := l.TB.Workload(name, prof)
			if err != nil {
				return nil, err
			}
			car, wss := rng.Range(40e6, 200e6), rng.Range(1<<20, 14<<20)
			truth, err := l.TB.WithMemBench(w, car, wss)
			if err != nil {
				return nil, err
			}
			benchSolo, err := l.TB.RunSolo(nfbench.MemBench(car, wss))
			if err != nil {
				return nil, err
			}
			y.add(yModel.Predict(prof, []core.Competitor{
				core.CompetitorFromMeasurement(benchSolo),
			}).Throughput, truth.Throughput)
			soloNew, err := l.soloAt(name, prof)
			if err != nil {
				return nil, err
			}
			s.add(sModel.PredictExtrapolated(benchSolo.Counters, soloNew), truth.Throughput)
		}
		rows = append(rows, []string{
			name,
			f1(s.mape()), f1(s.acc5()), f1(s.acc10()),
			f1(y.mape()), f1(y.acc5()), f1(y.acc10()),
		})
	}
	r.table([]string{"NF", "SLOMO MAPE%", "±5%", "±10%", "Yala MAPE%", "±5%", "±10%"}, rows)
	return r, nil
}

// Table6 reproduces the contention-aware scheduling use case: resource
// wastage vs an oracle packing and SLA violations per strategy.
func Table6(l *Lab) (*Report, error) {
	r := &Report{ID: "table6", Title: "NF placement: resource wastage and SLA violations"}
	names := nf.Table1Names()
	ps := placement.NewSimulator(l.TB)
	for _, n := range names {
		ym, err := l.Yala(n)
		if err != nil {
			return nil, err
		}
		ps.SetModel("yala", n, backend.WrapYala(ym))
		sm, err := l.SLOMO(n)
		if err != nil {
			return nil, err
		}
		ps.SetModel("slomo", n, backend.WrapSLOMO(sm))
	}

	rng := sim.NewRNG(l.Seed ^ 0x7ab6)
	sequences := l.n(12, 3)
	arrivals := l.n(60, 24)
	type agg struct{ wastage, violations, runs float64 }
	sums := map[placement.Strategy]*agg{}
	for _, st := range []placement.Strategy{
		placement.Monopolization, placement.Greedy, placement.SLOMOAware, placement.YalaAware,
	} {
		sums[st] = &agg{}
	}
	for seq := 0; seq < sequences; seq++ {
		var arr []placement.Arrival
		for i := 0; i < arrivals; i++ {
			arr = append(arr, placement.Arrival{
				Name:    names[rng.Intn(len(names))],
				Profile: traffic.Default,
				SLA:     0.05 + 0.15*rng.Float64(),
			})
		}
		oracle, err := ps.Place(arr, placement.Oracle)
		if err != nil {
			return nil, err
		}
		for st, a := range sums {
			res, err := ps.Place(arr, st)
			if err != nil {
				return nil, err
			}
			a.wastage += 100 * float64(res.NICsUsed-oracle.NICsUsed) / float64(oracle.NICsUsed)
			a.violations += 100 * float64(res.Violations) / float64(res.Total)
			a.runs++
		}
	}
	var rows [][]string
	for _, st := range []placement.Strategy{
		placement.Monopolization, placement.Greedy, placement.SLOMOAware, placement.YalaAware,
	} {
		a := sums[st]
		rows = append(rows, []string{
			st.String(), f1(a.wastage / a.runs), f1(a.violations / a.runs),
		})
	}
	r.table([]string{"strategy", "resource wastage %", "SLA violations %"}, rows)
	r.addf("(wastage vs. oracle first-fit packing with ground-truth feasibility checks;")
	r.addf(" the paper's exhaustive-search optimum is NP-complete bin packing)")
	return r, nil
}

// Table7 reproduces the performance-diagnosis use case: correctness of
// bottleneck identification as MTBR sweeps 0→1100 under fixed contention.
func Table7(l *Lab) (*Report, error) {
	r := &Report{ID: "table7", Title: "Bottleneck identification correctness (%)"}
	memB := nfbench.MemBench(120e6, 10<<20)
	regexB := nfbench.RegexBench(0.58e6, 1000, 2000, 1)
	memSolo, err := l.TB.RunSolo(memB)
	if err != nil {
		return nil, err
	}
	regexSolo, err := l.TB.RunSolo(regexB)
	if err != nil {
		return nil, err
	}
	comps := []core.Competitor{
		core.CompetitorFromMeasurement(memSolo),
		core.CompetitorFromMeasurement(regexSolo),
	}
	mtbrs := []float64{0, 40, 80, 200, 400, 600, 800, 900, 1000, 1100}

	var rows [][]string
	for _, name := range []string{"FlowStats", "FlowMonitor", "IPCompGateway"} {
		model, err := l.Yala(name)
		if err != nil {
			return nil, err
		}
		var yv, sv []diagnose.Verdict
		for _, mtbr := range mtbrs {
			prof := traffic.Default.With(traffic.AttrMTBR, mtbr)
			w, err := l.TB.Workload(name, prof)
			if err != nil {
				return nil, err
			}
			ms, err := l.TB.Run(w, memB, regexB)
			if err != nil {
				return nil, err
			}
			actual := ms[0].Bottleneck
			// CPU-bound cases count as memory-side for both predictors
			// (the paper's hotspot buckets are memory vs accelerator).
			if actual == nicsim.ResCPU {
				actual = nicsim.ResMemory
			}
			yd := diagnose.YalaDiagnosis(model, prof, comps, actual)
			if yd.Predicted == nicsim.ResCPU {
				yd.Predicted = nicsim.ResMemory
			}
			yv = append(yv, yd)
			sv = append(sv, diagnose.SLOMODiagnosis(actual))
		}
		rows = append(rows, []string{name, f1(diagnose.Accuracy(sv)), f1(diagnose.Accuracy(yv))})
	}
	r.table([]string{"NF", "SLOMO", "Yala"}, rows)
	return r, nil
}

// Table8 reproduces the profiling cost/accuracy comparison for the
// traffic-sensitive NFs: full vs random vs adaptive profiling.
func Table8(l *Lab) (*Report, error) {
	r := &Report{ID: "table8", Title: "Profiling cost vs model accuracy (MAPE%)"}
	quota := l.n(400, 120)
	var rows [][]string
	for _, name := range []string{"FlowClassifier", "NAT", "FlowTracker", "FlowMonitor", "FlowStats", "IPTunnel"} {
		fullM, err := l.profiledMAPE(name, planFull, 0)
		if err != nil {
			return nil, err
		}
		randM, err := l.profiledMAPE(name, planRandom, quota)
		if err != nil {
			return nil, err
		}
		adapM, err := l.profiledMAPE(name, planAdaptive, quota)
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{name, f1(fullM), f1(randM), f1(adapM)})
	}
	r.table([]string{"NF", "full (reduced grid)", "random 1x", "adaptive 1x"}, rows)
	return r, nil
}

// Table9 reproduces the generalization study: the Firewall flow-walk NF
// on the Pensando SoC preset, memory contention + dynamic traffic.
func Table9(seed uint64, scale float64) (*Report, error) {
	lab := NewLabOn(nicsim.Pensando(), seed, scale)
	rep, err := lab.table5On("table9", []string{"Firewall"})
	if err != nil {
		return nil, err
	}
	rep.Title = "Generalization: Firewall on the Pensando SoC preset"
	return rep, nil
}

// All runs every experiment in paper order.
func All(l *Lab) ([]*Report, error) {
	type mk struct {
		id string
		fn func() (*Report, error)
	}
	makers := []mk{
		{"fig1", func() (*Report, error) { return Fig1(l) }},
		{"fig2", func() (*Report, error) { return Fig2(l) }},
		{"fig3", func() (*Report, error) { return Fig3(l) }},
		{"fig4", func() (*Report, error) { return Fig4(l) }},
		{"fig5", func() (*Report, error) { return Fig5(l) }},
		{"fig6", func() (*Report, error) { return Fig6(l) }},
		{"fig7", func() (*Report, error) { return Fig7(l) }},
		{"fig8", func() (*Report, error) { return Fig8(l) }},
		{"table2", func() (*Report, error) { return Table2(l) }},
		{"table3", func() (*Report, error) { return Table3(l) }},
		{"table4", func() (*Report, error) { return Table4(l) }},
		{"table5", func() (*Report, error) { return Table5(l) }},
		{"table6", func() (*Report, error) { return Table6(l) }},
		{"table7", func() (*Report, error) { return Table7(l) }},
		{"table8", func() (*Report, error) { return Table8(l) }},
		{"table9", func() (*Report, error) { return Table9(l.Seed, l.Scale) }},
	}
	var out []*Report
	for _, m := range makers {
		rep, err := m.fn()
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", m.id, err)
		}
		out = append(out, rep)
	}
	return out, nil
}

// ByID runs one experiment by identifier.
func ByID(l *Lab, id string) (*Report, error) {
	switch id {
	case "fig1":
		return Fig1(l)
	case "fig2":
		return Fig2(l)
	case "fig3":
		return Fig3(l)
	case "fig4":
		return Fig4(l)
	case "fig5":
		return Fig5(l)
	case "fig6":
		return Fig6(l)
	case "fig7":
		return Fig7(l)
	case "fig8":
		return Fig8(l)
	case "table2":
		return Table2(l)
	case "table3":
		return Table3(l)
	case "table4":
		return Table4(l)
	case "table5":
		return Table5(l)
	case "table6":
		return Table6(l)
	case "table7":
		return Table7(l)
	case "table8":
		return Table8(l)
	case "table9":
		return Table9(l.Seed, l.Scale)
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", id)
}

// IDs lists all experiment identifiers in paper order.
func IDs() []string {
	return []string{
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"table2", "table3", "table4", "table5", "table6", "table7", "table8", "table9",
	}
}
