package analysis

import (
	"strings"
)

// ignoreDirective is the comment prefix that suppresses one analyzer's
// findings:
//
//	//yalalint:ignore <analyzer> <reason>
//
// The directive applies to findings on its own line and on the line
// directly below it — covering both trailing comments and a standalone
// comment above the offending statement. The reason is mandatory: an
// ignore is a reviewed exception, and the review goes in the source. A
// stale ignore — one that suppresses nothing — is itself an error, so
// exceptions cannot outlive the code they excused.
const ignoreDirective = "//yalalint:ignore"

// ignore is one parsed directive.
type ignore struct {
	file     string
	line     int
	analyzer string
	used     bool
}

// collectIgnores parses every yalalint:ignore directive in the package,
// reporting malformed directives and unknown analyzer names through rep
// (as findings of the pseudo-analyzer "yalalint" — a broken suppression
// must fail CI, not silently suppress nothing).
func collectIgnores(pkg *Package, known map[string]bool, rep *Reporter) []*ignore {
	var igs []*ignore
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignoreDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignoreDirective)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // some other directive, e.g. yalalint:ignorefile
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					rep.Reportf(c.Pos(), "malformed directive %q: want //yalalint:ignore <analyzer> <reason>", c.Text)
					continue
				}
				name := fields[0]
				if !known[name] {
					rep.Reportf(c.Pos(), "ignore names unknown analyzer %q", name)
					continue
				}
				p := pkg.Fset.Position(c.Pos())
				igs = append(igs, &ignore{
					file:     rep.relFile(p.Filename),
					line:     p.Line,
					analyzer: name,
				})
			}
		}
	}
	return igs
}

// applyIgnores drops findings matched by a directive, marking the
// directives that earned their keep.
func applyIgnores(findings []Finding, igs []*ignore) []Finding {
	kept := findings[:0]
	for _, f := range findings {
		suppressed := false
		for _, ig := range igs {
			if ig.analyzer == f.Analyzer && ig.file == f.File &&
				(f.Line == ig.line || f.Line == ig.line+1) {
				ig.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}
	return kept
}

// reportStale turns every unused directive into a finding.
func reportStale(igs []*ignore, rep *Reporter) {
	for _, ig := range igs {
		if !ig.used {
			rep.findings = append(rep.findings, Finding{
				File:     ig.file,
				Line:     ig.line,
				Col:      1,
				Analyzer: "yalalint",
				Message:  "stale //yalalint:ignore " + ig.analyzer + ": no finding to suppress here",
			})
		}
	}
}
