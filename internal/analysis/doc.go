// Package analysis is the repo's own static-analysis suite — the
// engine behind `yala lint`. It is built entirely on the standard
// library's go/ast, go/parser and go/types (no golang.org/x/tools),
// including a recursive source importer that type-checks the whole
// module and its std-lib dependencies from source.
//
// The suite enforces invariants the test suite can only sample:
//
//   - detmap: no ranging over maps in determinism-critical packages
//     (internal/sim, placement, trace, cluster, wire) unless the loop
//     only collects keys for sorting — replay determinism is the
//     product's core guarantee.
//   - wallclock: no time.Now/Since/Until or math/rand in those same
//     packages; simulation time and seeded randomness only.
//   - boundedread: no io.ReadAll on an http body or net.Conn without
//     an io.LimitReader/http.MaxBytesReader cap, anywhere in the repo.
//   - envelope: handlers in internal/serve and internal/gateway must
//     send errors through the structured envelope helpers, not raw
//     http.Error / WriteHeader(4xx|5xx).
//   - metricname: metric series registered on obs.Registry must be
//     literal, match ^(yala|gateway|cluster)_[a-z0-9_]+$, and func
//     registrations must not silently replace an existing series.
//   - bodyclose: an *http.Response obtained in a function must have
//     its Body closed there or escape to a caller.
//
// Findings are suppressed — one at a time, with a mandatory reason —
// by a directive on the offending line or the line above:
//
//	//yalalint:ignore wallclock socket handshake deadline, real I/O
//
// A directive that suppresses nothing (stale), names an unknown
// analyzer, or omits the reason is itself a finding, so exceptions
// cannot outlive the code they excused.
//
// Run is the entry point: it loads packages matching go-style patterns
// rooted at a module directory, applies the analyzers, resolves ignore
// directives, and returns a deterministic, sorted Report. `yala lint`
// and the CI lint step are thin wrappers over it; the golden tests in
// this package pin each analyzer's exact findings on fixtures under
// testdata/src.
package analysis
