// Package fixture exercises the detmap analyzer: loaded by the golden
// test under a determinism-critical import path.
package fixture

import "sort"

func add(a, b int) int { return a + b }

// sumValues ranges a map directly — flagged.
func sumValues(m map[string]int) int {
	total := 0
	for _, v := range m {
		total = add(total, v)
	}
	return total
}

// sumSorted is the blessed idiom: the key-collection loop is exempt,
// and the second loop ranges a slice.
func sumSorted(m map[string]int) int {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0
	for _, k := range keys {
		total += m[k]
	}
	return total
}

type registry map[int]string

// walk ranges a named map type — still flagged.
func walk(r registry) []int {
	var ids []int
	for id, name := range r {
		if name != "" {
			ids = append(ids, id)
		}
	}
	return ids
}

// sumSlice ranges a slice — never flagged.
func sumSlice(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
