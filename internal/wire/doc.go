// Package wire implements yalawire, the persistent-connection,
// length-prefixed binary protocol for the predict hot path.
//
// BENCH_gateway.json showed the warm predict path pinned to the box's
// raw HTTP/1+JSON round-trip floor: serving cost was no longer the
// bottleneck, transport was. yalawire removes the per-request HTTP
// parse and JSON encode/decode while keeping /v2 JSON as the
// compatible front door — the wire listener is an additive fast lane,
// never a replacement.
//
// # Frame layout
//
// Every frame is a fixed 16-byte header followed by a payload:
//
//	offset  size  field
//	0       2     magic "YW"
//	2       1     protocol version (currently 1)
//	3       1     frame type
//	4       4     payload length, uint32 big-endian (≤ 10 MiB)
//	8       8     request id, uint64 big-endian
//	16      n     payload
//
// The version byte travels in every header, so a server can answer an
// unknown version with a TypeError frame instead of misparsing, and
// clients fall back to HTTP — JSON stays the cross-version contract.
//
// A connection opens with TypeHello (payload: the client's API key,
// possibly empty) answered by TypeHelloAck; after that, requests are
// strictly serial per connection — a client pool (Pool) holds several
// connections for concurrency instead of multiplexing one.
//
// Payload encodings are hand-rolled append-style encoders over pooled
// buffers (GetBuf/PutBuf): uvarint-length strings, zigzag varints for
// ints, fixed 8-byte big-endian floats. Decoders never panic on
// malformed input and validate collection counts against the actual
// remaining bytes before allocating.
//
// # Frame types
//
//   - TypeEcho/TypeEchoAck — payload reflection, bypassing serving
//     entirely; loadgen's -wirefloor mode uses it to measure the pure
//     transport floor (framing + syscalls).
//   - TypePredict/TypePredictResp, TypeBatch/TypeBatchResp — the typed
//     hot path: binary predict and batch-predict, no JSON anywhere.
//   - TypeCall/TypeCallResp — a generic HTTP-shaped tunnel (method,
//     URI, raw body) for everything else; the gateway uses it to reach
//     wire upstreams without re-encoding bodies, and the server
//     dispatches it through its real HTTP handler so middleware
//     semantics (tenant gate, request IDs, caching) are identical.
//   - TypeError — failures carry the same status/code/message triple
//     as the /v2 JSON error envelope, so typed client errors
//     (*yalaclient.APIError, *yalaclient.RateLimitError) are
//     transport-independent.
//
// Both sides cap payloads at MaxPayload (10 MiB), mirroring the HTTP
// layer's request-body and response-read caps.
package wire
