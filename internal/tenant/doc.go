// Package tenant is the multi-tenant control plane between the serving
// edge and the fleet: API-key authentication, per-tenant token-bucket
// rate limits, priority classes, SLO accounting, and a load-shedding
// admission gate. "Millions of users" means the gateway must defend
// itself — without a notion of a tenant, any single client can flood
// the front end and starve everyone else.
//
// A Registry maps API keys to tenants. It loads from a JSON file (the
// `-tenants` flag on `yala serve` and `yala gateway`) or defaults to a
// single anonymous tenant, so an unconfigured server behaves exactly as
// before. Each tenant carries up to two token buckets — one for the
// interactive class (:predict, :admit, :compare, :diagnose), optionally
// a separate one for the bulk class (:batchPredict, cluster runs) —
// refilled from the monotonic clock on each Allow call, with no
// background goroutines to leak.
//
// A Gate makes the admission decision for one request: resolve the
// tenant from the Authorization: Bearer / X-API-Key header, charge the
// class's bucket, and — under combined load pressure, not a single
// threshold — shed work. Pressure is the maximum of three normalized
// signals: queue occupancy reported by the embedding layer, the
// windowed p99 latency against the gate's SLO, and the windowed server
// error rate (the dDCA diagnostics exemplar: decisions from combined
// signals separate real overload from noise on any one metric). Bulk
// traffic sheds first (score ≥ BulkShedAt), interactive only near
// saturation (score ≥ InteractiveShedAt).
//
// A shed request is answered with the /v2 structured error envelope —
// {"error": {code: "resource_exhausted", message, request_id}} — plus a
// Retry-After header derived from the bucket's refill time, so
// well-behaved clients (pkg/yalaclient) back off precisely instead of
// hammering. Clients that hammer anyway are tarpitted: rate-limited
// refusals stall ShedDelay before the 429 is written, so an unpaced
// keep-alive abuser is bounded to ~1/ShedDelay attempts per connection
// instead of consuming the server's CPU at line rate. The latency/error
// window behind the pressure signals ages out after WindowAge — only
// admitted requests are observed, so without the age-out a spike that
// drives the gate to shed everything would latch it shut forever. Every
// decision is accounted per tenant: request/shed counters and latency
// histograms surface as yala_tenant_* metric series and as per-tenant
// rows in /v2/gateway/stats.
//
// Both the scale-out gateway and a bare serve replica mount the same
// middleware, so the QoS contract holds whether a tenant talks to the
// edge or to a replica directly.
package tenant
