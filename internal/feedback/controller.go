package feedback

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/backend"
)

// Key identifies one served model: NF name, hardware key ("" = the
// default preset), backend name.
type Key struct {
	NF      string
	HW      string
	Backend string
}

// String renders the key as its /v2 resource ID: "<nf>[@<hw>]/<backend>".
func (k Key) String() string {
	stem := k.NF
	if k.HW != "" {
		stem += "@" + k.HW
	}
	return stem + "/" + k.Backend
}

// Observation is one ground-truth throughput measurement paired with
// what the live (and, when active, shadow) model predicted for the
// same scenario.
type Observation struct {
	Key Key
	// Scenario is an opaque identifier for the workload the measurement
	// was taken under (bookkeeping only; the gate does not use it).
	Scenario string
	// Source identifies the reporting agent — a tenant, probe, or
	// replica. Per-source quarantine keys off it; the empty source is
	// "untracked" and exempt (single-reporter deployments).
	Source string
	// Measured is the observed co-located throughput (pps); positive.
	Measured float64
	// LivePred is the live model's prediction for the same scenario;
	// positive.
	LivePred float64
	// ShadowPred is the shadow candidate's prediction when one is
	// active (HasShadow); the controller uses it to score the candidate
	// against ground truth.
	ShadowPred float64
	HasShadow  bool
}

// Result reports what the controller did with one observation.
type Result struct {
	// Accepted: the sample entered the key's window and, when a shadow
	// candidate is active, its scoring.
	Accepted bool
	// Quarantined: the sample's source is currently quarantined for
	// this key; the sample was recorded but excluded from the trusted
	// set and from shadow scoring.
	Quarantined bool
	// Decision is the gate's decision after this sample: one of the
	// Decision* constants.
	Decision string
}

// Config tunes a Controller. The zero value of every numeric field
// selects a sensible default; Train and Promote wire the controller to
// the owning layer's training and promotion paths.
type Config struct {
	// WindowSize bounds each key's sample ring (default 256).
	WindowSize int
	// MinSamples is the warmup floor: no gate decision below this many
	// windowed samples (default 24).
	MinSamples int
	// DriftThreshold trips retraining when the trusted median
	// measured/predicted ratio deviates from 1 by more than this
	// (default 0.15).
	DriftThreshold float64
	// OutlierDev marks a sample an outlier when its relative deviation
	// from the window median exceeds this (default 0.30).
	OutlierDev float64
	// SourceOutlierFrac quarantines a source when more than this
	// fraction of its windowed samples are outliers (default 0.5).
	SourceOutlierFrac float64
	// MinTrustedFrac holds the gate when fewer than this fraction of
	// the window survives outlier and quarantine filtering (default 0.5).
	MinTrustedFrac float64
	// ConsistencyMax holds the gate when the trusted set's relative
	// median absolute deviation exceeds this — mutually inconsistent
	// input never triggers retraining (default 0.10).
	ConsistencyMax float64
	// MinPromoteSamples is the minimum number of ground-truth-bearing
	// shadow comparisons before a candidate may be promoted (default 12).
	MinPromoteSamples int
	// Synchronous trains inline in Observe instead of on a background
	// goroutine — the deterministic mode simulations and tests use.
	Synchronous bool
	// Train builds a candidate model for a drifted key. scale is the
	// gate's calibration estimate — the trusted median
	// measured/predicted ratio. Called outside the controller's lock.
	Train func(k Key, scale float64) (backend.Model, error)
	// Promote installs a winning candidate as the live model. Called
	// outside the controller's lock. A nil Promote disables promotion:
	// candidates shadow until aborted.
	Promote func(k Key, m backend.Model) error
}

func (c Config) withDefaults() Config {
	if c.WindowSize <= 0 {
		c.WindowSize = 256
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 24
	}
	if c.DriftThreshold <= 0 {
		c.DriftThreshold = 0.15
	}
	if c.OutlierDev <= 0 {
		c.OutlierDev = 0.30
	}
	if c.SourceOutlierFrac <= 0 {
		c.SourceOutlierFrac = 0.5
	}
	if c.MinTrustedFrac <= 0 {
		c.MinTrustedFrac = 0.5
	}
	if c.ConsistencyMax <= 0 {
		c.ConsistencyMax = 0.10
	}
	if c.MinPromoteSamples <= 0 {
		c.MinPromoteSamples = 12
	}
	return c
}

// Per-key lifecycle states.
const (
	stateIdle = iota
	stateTraining
	stateShadowing
	statePromoting
)

// keyState is one key's window, quarantine set, and candidate
// lifecycle.
type keyState struct {
	win *window
	// quarantined is the latest gate evaluation's quarantine set.
	quarantined map[string]bool
	state       int
	shadow      backend.Model
	// Shadow scoring: cumulative relative error of the live and shadow
	// models over ground-truth-bearing observations since the candidate
	// appeared.
	liveErrSum   float64
	shadowErrSum float64
	shadowN      int
}

// trainJob is one queued retrain request.
type trainJob struct {
	key   Key
	scale float64
}

// Stats is the controller's counter snapshot — the source for the
// yala_drift_* metric series and the "drift" block of /v2/stats.
type Stats struct {
	// Observations counts valid observations ingested.
	Observations uint64 `json:"observations"`
	// Quarantined counts samples recorded while their source was
	// quarantined.
	Quarantined uint64 `json:"quarantined"`
	// Holds and Trips count gate decisions (per observation, once the
	// window is warm).
	Holds uint64 `json:"holds"`
	Trips uint64 `json:"trips"`
	// Retrains counts candidate models trained; TrainFailures counts
	// training or promotion callbacks that errored.
	Retrains      uint64 `json:"retrains"`
	TrainFailures uint64 `json:"train_failures,omitempty"`
	// ShadowSamples counts ground-truth-bearing observations scored
	// against a shadow candidate; ShadowCompares counts live-traffic
	// predictions where both models ran (no ground truth).
	ShadowSamples  uint64 `json:"shadow_samples"`
	ShadowCompares uint64 `json:"shadow_compares"`
	// ShadowAborts counts candidates discarded for failing to beat the
	// live model; Promotions counts candidates installed.
	ShadowAborts uint64 `json:"shadow_aborts,omitempty"`
	Promotions   uint64 `json:"promotions"`
}

// Controller is the online-feedback engine: per-key windows, the drift
// gate, the background retrainer, shadow scoring, and promotion. Safe
// for concurrent use.
type Controller struct {
	cfg Config

	mu   sync.Mutex
	keys map[Key]*keyState

	observations   atomic.Uint64
	quarantined    atomic.Uint64
	holds          atomic.Uint64
	trips          atomic.Uint64
	retrains       atomic.Uint64
	trainFailures  atomic.Uint64
	shadowSamples  atomic.Uint64
	shadowCompares atomic.Uint64
	shadowAborts   atomic.Uint64
	promotions     atomic.Uint64

	trainCh   chan trainJob
	stop      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// New returns a controller. Unless cfg.Synchronous, a single
// background trainer goroutine serves retrain requests (bounded queue;
// a full queue drops the request and a later drift decision retries).
func New(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{
		cfg:  cfg,
		keys: map[Key]*keyState{},
		stop: make(chan struct{}),
	}
	if !cfg.Synchronous && cfg.Train != nil {
		c.trainCh = make(chan trainJob, 16)
		c.wg.Add(1)
		go c.trainer()
	}
	return c
}

// Close stops the background trainer and waits for an in-flight
// training to finish. Idempotent.
func (c *Controller) Close() {
	c.closeOnce.Do(func() {
		close(c.stop)
		c.wg.Wait()
	})
}

func (c *Controller) keyStateLocked(k Key) *keyState {
	ks := c.keys[k]
	if ks == nil {
		ks = &keyState{win: newWindow(c.cfg.WindowSize)}
		c.keys[k] = ks
	}
	return ks
}

// relErr is the relative prediction error against ground truth.
func relErr(measured, pred float64) float64 {
	return abs(measured-pred) / measured
}

// Observe ingests one measurement: records it in the key's window,
// re-evaluates the drift gate, scores an active shadow candidate, and
// — on a drift decision with the key idle — starts a retrain. Training
// and promotion callbacks run outside the controller's lock.
func (c *Controller) Observe(o Observation) Result {
	if !(o.Measured > 0) || !(o.LivePred > 0) ||
		math.IsInf(o.Measured, 0) || math.IsInf(o.LivePred, 0) {
		return Result{Decision: DecisionInvalid}
	}
	c.observations.Add(1)

	c.mu.Lock()
	ks := c.keyStateLocked(o.Key)
	ks.win.push(sample{ratio: o.Measured / o.LivePred, source: o.Source})
	g := evaluate(c.cfg, ks.win.samples())
	ks.quarantined = g.quarantined

	res := Result{Decision: g.decision}
	if o.Source != "" && g.quarantined[o.Source] {
		res.Quarantined = true
		c.quarantined.Add(1)
	} else {
		res.Accepted = true
	}

	var (
		promoteModel backend.Model
		doPromote    bool
		doTrain      bool
		trainScale   float64
	)
	if res.Accepted && ks.state == stateShadowing && o.HasShadow && o.ShadowPred > 0 {
		ks.liveErrSum += relErr(o.Measured, o.LivePred)
		ks.shadowErrSum += relErr(o.Measured, o.ShadowPred)
		ks.shadowN++
		c.shadowSamples.Add(1)
		switch {
		case ks.shadowN >= c.cfg.MinPromoteSamples && ks.shadowErrSum < ks.liveErrSum && c.cfg.Promote != nil:
			ks.state = statePromoting
			promoteModel = ks.shadow
			doPromote = true
		case ks.shadowN >= 4*c.cfg.MinPromoteSamples:
			// The candidate had four times the required evidence and
			// never beat live — discard it and rearm the gate.
			ks.state = stateIdle
			ks.shadow = nil
			c.shadowAborts.Add(1)
		}
	}
	switch g.decision {
	case DecisionHold:
		c.holds.Add(1)
	case DecisionDrift:
		c.trips.Add(1)
		if ks.state == stateIdle && c.cfg.Train != nil {
			ks.state = stateTraining
			doTrain = true
			trainScale = g.scale
		}
	}
	c.mu.Unlock()

	if doPromote {
		c.promote(o.Key, promoteModel)
	}
	if doTrain {
		job := trainJob{key: o.Key, scale: trainScale}
		if c.cfg.Synchronous {
			c.runTrain(job)
		} else {
			select {
			case c.trainCh <- job:
			default:
				// Queue full: drop and rearm — a later drift decision
				// re-requests.
				c.mu.Lock()
				if ks := c.keys[o.Key]; ks != nil && ks.state == stateTraining {
					ks.state = stateIdle
				}
				c.mu.Unlock()
			}
		}
	}
	return res
}

// trainer is the background retrain loop (async mode).
func (c *Controller) trainer() {
	defer c.wg.Done()
	for {
		select {
		case job := <-c.trainCh:
			c.runTrain(job)
		case <-c.stop:
			return
		}
	}
}

// runTrain executes one retrain and transitions the key to shadowing.
func (c *Controller) runTrain(job trainJob) {
	m, err := c.cfg.Train(job.key, job.scale)
	if err == nil && m == nil {
		err = errNilModel
	}
	c.mu.Lock()
	ks := c.keys[job.key]
	if ks != nil && ks.state == stateTraining {
		if err != nil {
			c.trainFailures.Add(1)
			ks.state = stateIdle
		} else {
			c.retrains.Add(1)
			ks.state = stateShadowing
			ks.shadow = m
			ks.liveErrSum, ks.shadowErrSum, ks.shadowN = 0, 0, 0
		}
	}
	c.mu.Unlock()
}

// promote installs a winning candidate and resets the key: the window
// empties (its ratios described the retired model) and the quarantine
// set clears.
func (c *Controller) promote(k Key, m backend.Model) {
	err := c.cfg.Promote(k, m)
	c.mu.Lock()
	ks := c.keys[k]
	if ks != nil && ks.state == statePromoting {
		if err != nil {
			c.trainFailures.Add(1)
			ks.state = stateIdle
			ks.shadow = nil
		} else {
			c.promotions.Add(1)
			ks.state = stateIdle
			ks.shadow = nil
			ks.win.reset()
			ks.quarantined = nil
		}
	}
	c.mu.Unlock()
}

// ShadowModel returns the key's shadow candidate when one is being
// evaluated. Serving layers call this to run the candidate alongside
// the live model; the candidate's output must never be returned to
// clients.
func (c *Controller) ShadowModel(k Key) (backend.Model, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ks := c.keys[k]
	if ks == nil || ks.shadow == nil || (ks.state != stateShadowing && ks.state != statePromoting) {
		return nil, false
	}
	return ks.shadow, true
}

// RecordShadowCompare notes one live-traffic request where both models
// predicted (no ground truth — scoring happens in Observe).
func (c *Controller) RecordShadowCompare(k Key, livePred, shadowPred float64) {
	c.shadowCompares.Add(1)
}

// Stats snapshots the controller's counters.
func (c *Controller) Stats() Stats {
	return Stats{
		Observations:   c.observations.Load(),
		Quarantined:    c.quarantined.Load(),
		Holds:          c.holds.Load(),
		Trips:          c.trips.Load(),
		Retrains:       c.retrains.Load(),
		TrainFailures:  c.trainFailures.Load(),
		ShadowSamples:  c.shadowSamples.Load(),
		ShadowCompares: c.shadowCompares.Load(),
		ShadowAborts:   c.shadowAborts.Load(),
		Promotions:     c.promotions.Load(),
	}
}

// errNilModel guards against a Train callback returning (nil, nil).
var errNilModel = errNil{}

type errNil struct{}

func (errNil) Error() string { return "feedback: Train returned a nil model" }
