package profiling

import (
	"math"
	"testing"

	"repro/internal/testbed"
	"repro/internal/traffic"
)

// flowSensitiveOracle mimics a FlowStats-like NF: solo throughput depends
// only on flow count, with an LLC-saturation knee.
func flowSensitiveOracle(p traffic.Profile) (float64, error) {
	f := float64(p.Flows)
	t := 2e6 - 1.4e6*math.Min(f, 80000)/80000
	return t, nil
}

// insensitiveOracle is flat in every attribute (ACL-like).
func insensitiveOracle(traffic.Profile) (float64, error) { return 1.5e6, nil }

func TestAdaptivePrunesInsensitiveAttributes(t *testing.T) {
	plan, err := Adaptive(flowSensitiveOracle, DefaultConfig(100))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Attributes) != 1 || plan.Attributes[0] != traffic.AttrFlows {
		t.Fatalf("kept attributes %v, want [flows]", plan.Attributes)
	}
	// Pruned attributes must stay at their defaults in every sample.
	for _, s := range plan.Samples {
		if s.Profile.PktSize != traffic.Default.PktSize || s.Profile.MTBR != traffic.Default.MTBR {
			t.Fatalf("pruned attribute varied: %v", s.Profile)
		}
	}
}

func TestAdaptiveRespectsQuota(t *testing.T) {
	for _, quota := range []int{10, 50, 333} {
		plan, err := Adaptive(flowSensitiveOracle, DefaultConfig(quota))
		if err != nil {
			t.Fatal(err)
		}
		if plan.Cost() != quota {
			t.Fatalf("cost %d, want quota %d", plan.Cost(), quota)
		}
	}
}

func TestAdaptiveTargetsSensitiveRange(t *testing.T) {
	plan, err := Adaptive(flowSensitiveOracle, DefaultConfig(300))
	if err != nil {
		t.Fatal(err)
	}
	// The oracle's knee is at 80K flows; most samples should sit below
	// 160K where the throughput actually changes.
	low := 0
	for _, s := range plan.Samples {
		if s.Profile.Flows <= 160000 {
			low++
		}
	}
	if frac := float64(low) / float64(len(plan.Samples)); frac < 0.5 {
		t.Fatalf("only %.0f%% of samples in the sensitive range", frac*100)
	}
}

func TestAdaptiveInsensitiveNFSamplesDefaultProfile(t *testing.T) {
	plan, err := Adaptive(insensitiveOracle, DefaultConfig(50))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Attributes) != 0 {
		t.Fatalf("kept %v for an insensitive NF", plan.Attributes)
	}
	for _, s := range plan.Samples {
		if s.Profile != traffic.Default {
			t.Fatalf("sample at %v, want default profile", s.Profile)
		}
	}
	if plan.Cost() != 50 {
		t.Fatalf("cost %d", plan.Cost())
	}
}

func TestAdaptiveSoloObsRecorded(t *testing.T) {
	plan, err := Adaptive(flowSensitiveOracle, DefaultConfig(60))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.SoloObs) < 5 {
		t.Fatalf("only %d solo observations recorded", len(plan.SoloObs))
	}
}

func TestAdaptiveErrors(t *testing.T) {
	if _, err := Adaptive(flowSensitiveOracle, DefaultConfig(0)); err == nil {
		t.Fatal("expected quota error")
	}
	zero := func(traffic.Profile) (float64, error) { return 0, nil }
	if _, err := Adaptive(zero, DefaultConfig(10)); err == nil {
		t.Fatal("expected zero-throughput error")
	}
}

func TestRandomPlan(t *testing.T) {
	plan := Random(100, 3)
	if plan.Cost() != 100 {
		t.Fatalf("cost %d", plan.Cost())
	}
	distinct := map[traffic.Profile]bool{}
	for _, s := range plan.Samples {
		distinct[s.Profile] = true
		b := testbed.MemContentionBounds
		if s.Contention.CAR < b.CARLo || s.Contention.CAR >= b.CARHi {
			t.Fatalf("contention CAR out of bounds: %v", s.Contention)
		}
	}
	if len(distinct) < 90 {
		t.Fatalf("random plan reused profiles: %d distinct", len(distinct))
	}
}

func TestFullPlan(t *testing.T) {
	grid := traffic.FullGrid(4, 5)
	plan := Full(grid, 3, 1)
	if plan.Cost() != 60 {
		t.Fatalf("cost %d, want 60", plan.Cost())
	}
}

func TestContentionSequenceCoversCorners(t *testing.T) {
	plan, err := Adaptive(flowSensitiveOracle, DefaultConfig(200))
	if err != nil {
		t.Fatal(err)
	}
	b := testbed.MemContentionBounds
	highCorner := false
	for _, s := range plan.Samples {
		if s.Contention.CAR > 0.9*(b.CARHi-b.CARLo)+b.CARLo &&
			s.Contention.WSS > 0.9*(b.WSSHi-b.WSSLo)+b.WSSLo {
			highCorner = true
		}
	}
	if !highCorner {
		t.Fatal("no sample near the high-contention corner")
	}
}
