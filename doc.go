// Package repro is a from-scratch Go reproduction of "Performance
// Prediction of On-NIC Network Functions with Multi-Resource Contention
// and Traffic Awareness" (ASPLOS 2025): the Yala prediction framework,
// the network functions it models, and a simulated SoC SmartNIC standing
// in for the paper's BlueField-2 testbed.
//
// See README.md for the package map, CLI entry points, the online
// prediction-serving subsystem (internal/serve) and the cluster-scale
// fleet orchestrator (internal/cluster), which schedules churning NF
// lifecycles across many simulated SmartNICs under pluggable,
// prediction-guided placement policies. The benchmarks in bench_test.go
// regenerate each of the paper's experiments.
package repro
