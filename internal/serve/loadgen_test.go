package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestPercentile pins the quantile edge cases: the empty slice, exact
// boundary quantiles, one-element slices (p99 of one sample is that
// sample) and out-of-range p must all read without indexing out of
// range.
func TestPercentile(t *testing.T) {
	ms := func(vs ...int) []time.Duration {
		out := make([]time.Duration, len(vs))
		for i, v := range vs {
			out[i] = time.Duration(v) * time.Millisecond
		}
		return out
	}
	cases := []struct {
		name   string
		sorted []time.Duration
		p      float64
		want   time.Duration
	}{
		{"empty p50", nil, 0.50, 0},
		{"empty p0", ms(), 0.0, 0},
		{"empty p100", ms(), 1.0, 0},
		{"one element p0", ms(7), 0.0, 7 * time.Millisecond},
		{"one element p50", ms(7), 0.50, 7 * time.Millisecond},
		{"one element p99", ms(7), 0.99, 7 * time.Millisecond},
		{"one element p100", ms(7), 1.0, 7 * time.Millisecond},
		{"two elements p0 is min", ms(1, 9), 0.0, 1 * time.Millisecond},
		{"two elements p100 is max", ms(1, 9), 1.0, 9 * time.Millisecond},
		{"ten elements p50", ms(1, 2, 3, 4, 5, 6, 7, 8, 9, 10), 0.50, 5 * time.Millisecond},
		{"ten elements p99", ms(1, 2, 3, 4, 5, 6, 7, 8, 9, 10), 0.99, 9 * time.Millisecond},
		{"negative p clamps to min", ms(1, 9), -0.5, 1 * time.Millisecond},
		{"p beyond 1 clamps to max", ms(1, 9), 1.5, 9 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := percentile(tc.sorted, tc.p); got != tc.want {
			t.Errorf("%s: percentile(%v, %g) = %v, want %v", tc.name, tc.sorted, tc.p, got, tc.want)
		}
	}
}

// TestCounterDelta: monotonic-counter deltas degrade to the raw after
// value on a mid-run counter reset instead of wrapping unsigned.
func TestCounterDelta(t *testing.T) {
	cases := []struct{ after, before, want uint64 }{
		{10, 3, 7},
		{3, 3, 0},
		{2, 10, 2}, // reset between snapshots
		{0, 5, 0},
	}
	for _, tc := range cases {
		if got := counterDelta(tc.after, tc.before); got != tc.want {
			t.Errorf("counterDelta(%d, %d) = %d, want %d", tc.after, tc.before, got, tc.want)
		}
	}
}

// TestLoadgenReportsServerErrors is the regression test for the CI gate:
// a run that recorded server errors must return a non-nil error (so
// `yala loadgen` exits nonzero) while still carrying the counts.
func TestLoadgenReportsServerErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	defer ts.Close()

	rep, err := Loadgen(LoadgenConfig{URL: ts.URL, Workers: 2, Requests: 10})
	if err == nil {
		t.Fatal("loadgen against an erroring server returned nil error")
	}
	if rep.Errors != 10 || rep.Requests != 10 {
		t.Fatalf("errors/requests = %d/%d, want 10/10", rep.Errors, rep.Requests)
	}
}

// TestLoadgenTransportErrors covers the connection-refused flavor: the
// run must fail, not silently report zero throughput.
func TestLoadgenTransportErrors(t *testing.T) {
	// A closed server: every request fails at the transport.
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close()

	rep, err := Loadgen(LoadgenConfig{URL: url, Workers: 2, Requests: 4})
	if err == nil {
		t.Fatal("loadgen against a dead server returned nil error")
	}
	if rep.Errors != 4 {
		t.Fatalf("errors = %d, want 4", rep.Errors)
	}
}
