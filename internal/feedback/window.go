package feedback

// sample is one windowed measurement: the measured/predicted ratio and
// the source that reported it.
type sample struct {
	ratio  float64
	source string
}

// window is a bounded ring of the most recent samples for one key —
// the data signal the drift gate evaluates. Old samples age out by
// displacement, so a transient fault's footprint is bounded by the
// window size no matter how long the key lives.
type window struct {
	buf  []sample
	next int
	full bool
}

func newWindow(n int) *window { return &window{buf: make([]sample, n)} }

func (w *window) push(s sample) {
	w.buf[w.next] = s
	w.next++
	if w.next == len(w.buf) {
		w.next = 0
		w.full = true
	}
}

func (w *window) len() int {
	if w.full {
		return len(w.buf)
	}
	return w.next
}

// samples returns the live samples in ring-storage order (the gate is
// order-insensitive). The slice aliases the ring; callers must not
// retain it past the controller's lock.
func (w *window) samples() []sample {
	if w.full {
		return w.buf
	}
	return w.buf[:w.next]
}

// reset empties the window — promotion does this, because ratios
// measured against the retired model say nothing about the new one.
func (w *window) reset() {
	w.next = 0
	w.full = false
}
