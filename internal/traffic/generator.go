package traffic

import (
	"repro/internal/packet"
	"repro/internal/sim"
)

// MinPktSize is the smallest frame we generate (classic 64B minimum).
const MinPktSize = 64

// markerPattern is the byte sequence inserted into payloads to produce
// ruleset matches. It is the first DefaultRules entry ("GET "), so every
// insertion yields exactly one match against the default matcher.
const markerPattern = "GET "

// fillerAlphabet contains bytes that cannot form any default-rule match:
// no rule consists solely of these characters.
var fillerAlphabet = []byte{'.', '-', '~', '#', '_'}

// Generator produces packets for one traffic profile. It pre-builds the
// flow set; Packet and Batch then draw flows uniformly (the paper's
// uniform flow-size distribution).
type Generator struct {
	profile Profile
	flows   []packet.FiveTuple
	rng     *sim.RNG
}

// NewGenerator builds a generator for profile, drawing all randomness
// from rng.
func NewGenerator(profile Profile, rng *sim.RNG) *Generator {
	if profile.PktSize < MinPktSize {
		profile.PktSize = MinPktSize
	}
	if profile.Flows < 1 {
		profile.Flows = 1
	}
	g := &Generator{profile: profile, rng: rng}
	g.flows = make([]packet.FiveTuple, profile.Flows)
	for i := range g.flows {
		g.flows[i] = packet.FiveTuple{
			SrcIP:   uint32(0x0a000000 + rng.Intn(1<<24)),
			DstIP:   uint32(0xc0a80000 + rng.Intn(1<<16)),
			SrcPort: uint16(1024 + rng.Intn(64000)),
			DstPort: uint16([]int{80, 443, 53, 22, 25}[rng.Intn(5)]),
			Proto:   packet.ProtoTCP,
		}
	}
	return g
}

// Profile returns the generator's traffic profile.
func (g *Generator) Profile() Profile { return g.profile }

// NumFlows returns the number of distinct flows.
func (g *Generator) NumFlows() int { return len(g.flows) }

// Packet generates one packet: a uniformly drawn flow carrying a payload
// synthesized at the profile's MTBR.
func (g *Generator) Packet() *packet.Packet {
	t := g.flows[g.rng.Intn(len(g.flows))]
	payloadLen := g.profile.PktSize - packet.EthHeaderLen - packet.IPv4HeaderLen - packet.TCPHeaderLen
	if payloadLen < 0 {
		payloadLen = 0
	}
	payload := SynthPayload(payloadLen, g.profile.MTBR, g.rng)
	return packet.Build(t, g.profile.PktSize, payload)
}

// HeaderPacket builds a minimum-size, payload-free packet for flow i.
// NFs use it to populate per-flow state cheaply during footprint
// measurement, where payload contents are irrelevant.
func (g *Generator) HeaderPacket(i int) *packet.Packet {
	return packet.Build(g.flows[i%len(g.flows)], MinPktSize, nil)
}

// Batch generates n packets.
func (g *Generator) Batch(n int) []*packet.Packet {
	pkts := make([]*packet.Packet, n)
	for i := range pkts {
		pkts[i] = g.Packet()
	}
	return pkts
}

// SynthPayload produces size bytes whose expected match count against the
// default ruleset is mtbr·size/1e6 (matches per MB), by inserting the
// marker pattern into non-matching filler at stochastically rounded
// density. This is the exrex role from the paper: payloads with a
// controlled match-to-byte ratio.
func SynthPayload(size int, mtbr float64, rng *sim.RNG) []byte {
	buf := make([]byte, size)
	for i := range buf {
		buf[i] = fillerAlphabet[rng.Intn(len(fillerAlphabet))]
	}
	if size < len(markerPattern) || mtbr <= 0 {
		return buf
	}
	want := mtbr * float64(size) / 1e6
	n := int(want)
	if rng.Float64() < want-float64(n) {
		n++
	}
	// Place n non-overlapping markers in distinct slots so each insertion
	// contributes exactly one match.
	slots := size / len(markerPattern)
	if n > slots {
		n = slots
	}
	for _, slot := range rng.Perm(slots)[:n] {
		copy(buf[slot*len(markerPattern):], markerPattern)
	}
	return buf
}
