package wire

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"reflect"
	"testing"
	"time"
)

// rwPair is an in-memory bidirectional stream for framer tests.
func rwPair() (io.ReadWriter, io.ReadWriter) {
	c1, c2 := net.Pipe()
	return c1, c2
}

func TestFrameRoundTrip(t *testing.T) {
	a, b := rwPair()
	fa, fb := NewFramer(a), NewFramer(b)
	payload := []byte("hello, wire")
	done := make(chan error, 1)
	go func() { done <- fa.WriteFrame(TypeEcho, 42, payload) }()
	f, err := fb.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if f.Type != TypeEcho || f.ID != 42 || !bytes.Equal(f.Payload, payload) {
		t.Fatalf("frame %+v", f)
	}
}

func TestFrameRejectsBadMagicAndVersion(t *testing.T) {
	mk := func(mut func(h []byte)) error {
		hdr := make([]byte, headerSize)
		hdr[0], hdr[1], hdr[2], hdr[3] = magic0, magic1, Version, TypeEcho
		mut(hdr)
		fr := NewFramer(struct {
			io.Reader
			io.Writer
		}{bytes.NewReader(hdr), io.Discard})
		_, err := fr.ReadFrame()
		return err
	}
	if err := mk(func(h []byte) { h[0] = 'X' }); !errors.Is(err, ErrTransport) {
		t.Fatalf("bad magic: %v", err)
	}
	if err := mk(func(h []byte) { h[2] = 99 }); !errors.Is(err, ErrTransport) {
		t.Fatalf("bad version: %v", err)
	}
	if err := mk(func(h []byte) {
		binary.BigEndian.PutUint32(h[4:8], MaxPayload+1)
	}); !errors.Is(err, ErrTransport) {
		t.Fatalf("oversized: %v", err)
	}
}

func TestWriteFrameRejectsOversizedPayload(t *testing.T) {
	fr := NewFramer(struct {
		io.Reader
		io.Writer
	}{bytes.NewReader(nil), io.Discard})
	if err := fr.WriteFrame(TypeEcho, 1, make([]byte, MaxPayload+1)); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestPredictRequestRoundTrip(t *testing.T) {
	mtbr := 12.5
	in := PredictRequest{
		NF:      "FlowStats",
		HW:      "bluefield2",
		Backend: "yala",
		Profile: Profile{Flows: 1000, PktSize: 512, MTBR: &mtbr},
		Competitors: []Competitor{
			{Name: "ACL", Profile: Profile{Flows: 200}},
			{Name: "NAT"},
		},
	}
	buf := AppendPredictRequest(GetBuf(), &in)
	out, err := DecodePredictRequest(buf)
	PutBuf(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip:\n in %+v\nout %+v", in, out)
	}
}

func TestPredictResponseRoundTrip(t *testing.T) {
	in := PredictResponse{
		NF:           "ACL",
		Backend:      "slomo",
		Profile:      Profile{Flows: 5000, PktSize: 1500},
		SoloPPS:      1.5e6,
		PredictedPPS: 7.2e5,
		Bottleneck:   "dram",
		PerResource: []ResourcePPS{
			{Resource: "dram", PPS: 7.2e5},
			{Resource: "llc", PPS: 9e5},
		},
	}
	buf := AppendPredictResponse(GetBuf(), &in)
	out, err := DecodePredictResponse(buf)
	PutBuf(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip:\n in %+v\nout %+v", in, out)
	}
}

func TestBatchRoundTrip(t *testing.T) {
	req := BatchRequest{Requests: []PredictRequest{
		{NF: "A", Backend: "yala"},
		{NF: "B", Backend: "slomo", Profile: Profile{Flows: 7}},
	}}
	buf := AppendBatchRequest(GetBuf(), &req)
	gotReq, err := DecodeBatchRequest(buf)
	PutBuf(buf)
	if err != nil || !reflect.DeepEqual(req, gotReq) {
		t.Fatalf("batch request round trip: %+v (err %v)", gotReq, err)
	}

	resp := BatchResponse{
		Responses: []PredictResponse{{NF: "A", Backend: "yala", SoloPPS: 1}, {}},
		Errors:    []string{"", "bad model"},
	}
	buf = AppendBatchResponse(GetBuf(), &resp)
	gotResp, err := DecodeBatchResponse(buf)
	PutBuf(buf)
	if err != nil || !reflect.DeepEqual(resp, gotResp) {
		t.Fatalf("batch response round trip: %+v (err %v)", gotResp, err)
	}

	// All-clean batches drop the error column entirely.
	clean := BatchResponse{Responses: []PredictResponse{{NF: "A"}}}
	buf = AppendBatchResponse(GetBuf(), &clean)
	gotClean, err := DecodeBatchResponse(buf)
	PutBuf(buf)
	if err != nil || gotClean.Errors != nil {
		t.Fatalf("clean batch grew errors: %+v (err %v)", gotClean, err)
	}
}

func TestErrorAndCallRoundTrip(t *testing.T) {
	e := ErrorFrame{Status: 429, Code: "resource_exhausted", Message: "shed", RequestID: "wire-000001", RetryAfterSec: 2}
	buf := AppendError(GetBuf(), &e)
	gotE, err := DecodeError(buf)
	PutBuf(buf)
	if err != nil || !reflect.DeepEqual(e, gotE) {
		t.Fatalf("error round trip: %+v (err %v)", gotE, err)
	}

	c := Call{Method: "POST", URI: "/v2/models/A/yala:predict", ContentType: "application/json", RequestID: "gw-000001", Body: []byte(`{}`)}
	buf = AppendCall(GetBuf(), &c)
	gotC, err := DecodeCall(buf)
	PutBuf(buf)
	if err != nil || !reflect.DeepEqual(c, gotC) {
		t.Fatalf("call round trip: %+v (err %v)", gotC, err)
	}

	cr := CallResp{Status: 200, Headers: []HeaderKV{{"Content-Type", "application/json"}}, Body: []byte(`{"ok":true}`)}
	buf = AppendCallResp(GetBuf(), &cr)
	gotCR, err := DecodeCallResp(buf)
	PutBuf(buf)
	if err != nil || !reflect.DeepEqual(cr, gotCR) {
		t.Fatalf("callresp round trip: %+v (err %v)", gotCR, err)
	}
}

// TestDecodeMalformedNeverPanics feeds truncations and mutations of a
// valid payload through every decoder: errors are fine, panics are
// not, and a forged element count must not cause a huge allocation.
func TestDecodeMalformedNeverPanics(t *testing.T) {
	mtbr := 1.0
	valid := AppendPredictRequest(nil, &PredictRequest{
		NF: "FlowStats", Backend: "yala",
		Profile:     Profile{Flows: 10, MTBR: &mtbr},
		Competitors: []Competitor{{Name: "ACL"}},
	})
	decoders := []func([]byte) error{
		func(b []byte) error { _, err := DecodePredictRequest(b); return err },
		func(b []byte) error { _, err := DecodePredictResponse(b); return err },
		func(b []byte) error { _, err := DecodeBatchRequest(b); return err },
		func(b []byte) error { _, err := DecodeBatchResponse(b); return err },
		func(b []byte) error { _, err := DecodeError(b); return err },
		func(b []byte) error { _, err := DecodeCall(b); return err },
		func(b []byte) error { _, err := DecodeCallResp(b); return err },
	}
	for _, dec := range decoders {
		for i := 0; i < len(valid); i++ {
			dec(valid[:i]) // truncations
			mut := append([]byte(nil), valid...)
			mut[i] ^= 0xff
			dec(mut) // bit damage
		}
		// Forged huge count: uvarint(1<<40) followed by nothing.
		dec(binary.AppendUvarint(nil, 1<<40))
	}
	// Trailing garbage is an error, not silently ignored.
	if _, err := DecodePredictRequest(append(append([]byte(nil), valid...), 0xfe)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// echoServer is a minimal wire listener: handshake then echo.
func echoServer(t *testing.T) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				fr := NewFramer(c)
				f, err := fr.ReadFrame()
				if err != nil || f.Type != TypeHello {
					return
				}
				if fr.WriteFrame(TypeHelloAck, f.ID, nil) != nil {
					return
				}
				for {
					f, err := fr.ReadFrame()
					if err != nil {
						return
					}
					if fr.WriteFrame(TypeEchoAck, f.ID, f.Payload) != nil {
						return
					}
				}
			}()
		}
	}()
	return lis.Addr().String()
}

func TestPoolRoundTrip(t *testing.T) {
	addr := echoServer(t)
	p := NewPool(addr, "key", 2)
	defer p.Close()
	for i := 0; i < 10; i++ {
		var got []byte
		err := p.Do(context.Background(), TypeEcho, []byte("ping"), func(f Frame) error {
			if f.Type != TypeEchoAck {
				t.Fatalf("frame type %d", f.Type)
			}
			got = append([]byte(nil), f.Payload...)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "ping" {
			t.Fatalf("echo %q", got)
		}
	}
}

func TestPoolTransportErrorTagged(t *testing.T) {
	// Nothing listens here: Do must fail with ErrTransport quickly.
	p := NewPool("127.0.0.1:1", "", 1)
	defer p.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	err := p.Do(ctx, TypeEcho, nil, func(Frame) error { return nil })
	if !errors.Is(err, ErrTransport) {
		t.Fatalf("want ErrTransport, got %v", err)
	}
}
