package cluster

import (
	"fmt"
	"math"

	"repro/internal/nicsim"
	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// DefaultDriftProb is the standard churn setup's traffic-drift
// probability. It lives here — not in WithDefaults — because a zero
// DriftProb legitimately means "no drift": callers with an
// absent-vs-zero distinction on the wire (the serve layer, the CLI flag
// default) apply it themselves.
const DefaultDriftProb = 0.35

// Workload kinds: the scenario families the trace generators produce.
// Every kind is a deterministic function of the scenario seed; they
// differ in how arrival times, NF mixes and lifetimes are drawn.
const (
	// WorkloadChurn is the original scenario family: exponential
	// inter-arrival times and lifetimes, uniform NF/profile mix.
	WorkloadChurn = "churn"
	// WorkloadDiurnal modulates the arrival rate sinusoidally over the
	// stream — the day/night wave a long-running fleet sees.
	WorkloadDiurnal = "diurnal"
	// WorkloadFlashCrowd is baseline churn with a burst window in which
	// arrivals come an order of magnitude faster.
	WorkloadFlashCrowd = "flashcrowd"
	// WorkloadHeavyTail draws NFs from a Zipf mix and lifetimes from a
	// Pareto distribution: a few tenant types dominate and a few tenants
	// live far longer than the mean.
	WorkloadHeavyTail = "heavytail"
)

// Workloads lists the workload kinds in a stable order.
func Workloads() []string {
	return []string{WorkloadChurn, WorkloadDiurnal, WorkloadFlashCrowd, WorkloadHeavyTail}
}

// ClassSpec declares one homogeneous slice of a mixed fleet: Count NICs
// of a named hardware class. Cores optionally overrides the class's
// per-NIC core budget (a capacity scaler for what-if runs — ground-truth
// simulation and models stay on the class's stock hardware preset).
type ClassSpec struct {
	Class string `json:"class"`
	Count int    `json:"count"`
	Cores int    `json:"cores,omitempty"`
}

// String renders the spec in the CLI's class:count[:cores] form.
func (cs ClassSpec) String() string {
	if cs.Cores > 0 {
		return fmt.Sprintf("%s:%d:%d", cs.Class, cs.Count, cs.Cores)
	}
	return fmt.Sprintf("%s:%d", cs.Class, cs.Count)
}

// ClassNames lists the built-in NIC hardware classes.
func ClassNames() []string { return []string{"bluefield2", "pensando"} }

// ClassConfig resolves a NIC-class name to its hardware preset. The
// empty name is reserved for "the environment's base preset" and is
// resolved by Env, not here.
func ClassConfig(name string) (nicsim.Config, error) {
	switch name {
	case "bluefield2":
		return nicsim.BlueField2(), nil
	case "pensando":
		return nicsim.Pensando(), nil
	}
	return nicsim.Config{}, fmt.Errorf("cluster: unknown NIC class %q (have %v)", name, ClassNames())
}

// Scenario specifies one churning fleet workload. Everything the run
// does is a deterministic function of the scenario (given an Env), so a
// seed fully reproduces a comparison.
type Scenario struct {
	// NICs is the fleet size. When Classes is set it is derived (the
	// total count) and ignored on input.
	NICs int `json:"nics"`
	// Classes declares a heterogeneous fleet as ordered homogeneous
	// slices; empty means NICs × the environment's base hardware class.
	Classes []ClassSpec `json:"classes,omitempty"`
	// Workload selects the generator family (churn, diurnal, flashcrowd,
	// heavytail); empty means churn.
	Workload string `json:"workload,omitempty"`
	// Arrivals is the total NF-arrival count in the stream.
	Arrivals int `json:"arrivals"`
	// Seed drives every random draw: the arrival stream and each
	// tenant's lifetime/drift schedule.
	Seed uint64 `json:"seed"`
	// NFs is the catalog pool arrivals draw from.
	NFs []string `json:"nfs"`
	// Profiles is the traffic-profile pool size: the default profile
	// plus random draws from the paper's attribute bounds.
	Profiles int `json:"profiles"`
	// MeanIAT is the mean inter-arrival time (exponential), seconds.
	MeanIAT float64 `json:"mean_iat"`
	// MeanLifetime is the mean tenant lifetime (exponential), seconds.
	// Lifetime/MeanIAT sets the steady-state load on the fleet.
	MeanLifetime float64 `json:"mean_lifetime"`
	// DriftProb is the probability a tenant's traffic profile drifts to
	// a new pool draw at a random point of its life.
	DriftProb float64 `json:"drift_prob"`
	// SLALo and SLAHi bound each arrival's SLA draw (max tolerated
	// throughput drop relative to solo).
	SLALo float64 `json:"sla_lo"`
	SLAHi float64 `json:"sla_hi"`
	// ShiftAt, when positive, is the time at which the fleet's
	// ground-truth hardware behavior shifts: from then on every class's
	// NICs run at ShiftScale times nominal core frequency (a DVFS-style
	// governor change). Models trained before the shift describe
	// hardware that no longer exists, so prediction-guided admission
	// goes stale mid-run — the scenario the online feedback loop is for.
	ShiftAt float64 `json:"shift_at,omitempty"`
	// ShiftScale is the post-shift frequency factor; required positive
	// when ShiftAt is set.
	ShiftScale float64 `json:"shift_scale,omitempty"`
	// Online closes the feedback loop during the run: every enforcement
	// probe's ground-truth measurements are scored against the live
	// model's predictions by a drift gate; a trip retrains a candidate
	// through the backend (calibrated by the gate's measured/predicted
	// ratio), the candidate shadow-scores on subsequent measurements,
	// and promotion installs it into the prediction-side model set once
	// it beats the live model. Only prediction-guided policies are
	// affected; model-free baselines have nothing to retrain.
	Online bool `json:"online,omitempty"`
}

// WithDefaults fills unset scenario fields with the standard churn
// setup: a 16-NIC fleet at ~60% steady-state core load with a mixed
// memory/accelerator NF pool and the paper's placement SLA range.
func (sc Scenario) WithDefaults() Scenario {
	if len(sc.Classes) > 0 {
		total := 0
		for _, cs := range sc.Classes {
			total += cs.Count
		}
		sc.NICs = total
	}
	if sc.NICs <= 0 {
		sc.NICs = 16
	}
	if sc.Workload == "" {
		sc.Workload = WorkloadChurn
	}
	if sc.Arrivals <= 0 {
		sc.Arrivals = 120
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	if len(sc.NFs) == 0 {
		sc.NFs = []string{"FlowStats", "ACL", "NAT", "FlowMonitor", "NIDS"}
	}
	if sc.Profiles <= 0 {
		sc.Profiles = 4
	}
	if sc.MeanIAT <= 0 {
		sc.MeanIAT = 1
	}
	if sc.MeanLifetime <= 0 {
		sc.MeanLifetime = 40
	}
	if sc.DriftProb < 0 {
		sc.DriftProb = 0
	}
	if sc.SLALo <= 0 {
		sc.SLALo = 0.05
	}
	if sc.SLAHi <= 0 {
		sc.SLAHi = 0.2
	}
	return sc
}

// Validate rejects scenarios the orchestrator cannot run.
func (sc Scenario) Validate() error {
	if len(sc.NFs) == 0 {
		return fmt.Errorf("cluster: scenario has no NF pool")
	}
	if sc.SLAHi < sc.SLALo {
		return fmt.Errorf("cluster: SLA range [%g, %g] is inverted", sc.SLALo, sc.SLAHi)
	}
	if sc.DriftProb > 1 {
		return fmt.Errorf("cluster: drift probability %g above 1", sc.DriftProb)
	}
	switch sc.Workload {
	case "", WorkloadChurn, WorkloadDiurnal, WorkloadFlashCrowd, WorkloadHeavyTail:
	default:
		return fmt.Errorf("cluster: unknown workload %q (have %v)", sc.Workload, Workloads())
	}
	if sc.ShiftAt < 0 {
		return fmt.Errorf("cluster: shift time %g must not be negative", sc.ShiftAt)
	}
	if sc.ShiftAt > 0 && sc.ShiftScale <= 0 {
		return fmt.Errorf("cluster: shift at %g needs a positive shift scale (got %g)", sc.ShiftAt, sc.ShiftScale)
	}
	if sc.ShiftScale != 0 && sc.ShiftAt <= 0 {
		return fmt.Errorf("cluster: shift scale %g set without a shift time", sc.ShiftScale)
	}
	for i, cs := range sc.Classes {
		if _, err := ClassConfig(cs.Class); err != nil {
			return fmt.Errorf("cluster: classes[%d]: %w", i, err)
		}
		if cs.Count <= 0 {
			return fmt.Errorf("cluster: classes[%d]: count %d must be positive", i, cs.Count)
		}
		if cs.Cores < 0 {
			return fmt.Errorf("cluster: classes[%d]: cores %d must not be negative", i, cs.Cores)
		}
	}
	return nil
}

// classSlots expands the fleet declaration into ordered homogeneous
// slices: the scenario's explicit classes, or NICs × the environment's
// base class (the empty class name).
func (sc Scenario) classSlots() []ClassSpec {
	if len(sc.Classes) == 0 {
		return []ClassSpec{{Class: "", Count: sc.NICs}}
	}
	return sc.Classes
}

// ProfilePool returns the scenario's traffic-profile pool: the paper's
// default profile plus deterministic random draws. The pool is derived
// from the seed alone, so drift redraws and the arrival stream agree on
// it.
func (sc Scenario) ProfilePool() []traffic.Profile {
	rng := sim.NewRNG(sc.Seed ^ 0x70726f66696c6573) // "profiles"
	pool := []traffic.Profile{traffic.Default}
	for len(pool) < sc.Profiles {
		pool = append(pool, traffic.Random(rng))
	}
	return pool
}

// TenantSpec is one tenant's complete, policy-independent lifecycle: the
// arrival (time, NF, profile, SLA) plus the pre-drawn lifetime and
// optional drift. Streams are generated eagerly so the whole workload
// exists before any scheduling decision — the property trace recording
// and bit-identical replay rest on.
type TenantSpec struct {
	Tenant
	// At is the arrival time (seconds).
	At float64
	// Lifetime is the tenant's residence time once admitted (seconds).
	Lifetime float64
	// DriftAt, when positive, is the time after admission at which the
	// tenant's traffic profile drifts to DriftProfile; zero means the
	// tenant never drifts.
	DriftAt      float64
	DriftProfile traffic.Profile
}

// Stream generates the scenario's full workload per its kind. The
// stream depends only on the scenario, never on placement outcomes, so
// every policy replays the identical workload. For the churn kind the
// draws reproduce the original generator exactly.
func (sc Scenario) Stream() []TenantSpec {
	rng := sim.NewRNG(sc.Seed)
	pool := sc.ProfilePool()
	specs := make([]TenantSpec, 0, sc.Arrivals)
	now := 0.0
	var zipf []float64
	if sc.Workload == WorkloadHeavyTail {
		zipf = zipfCDF(len(sc.NFs), 1.2)
	}
	for i := 0; i < sc.Arrivals; i++ {
		now += sc.gap(rng, i)
		var name string
		if zipf != nil {
			name = sc.NFs[cdfIndex(zipf, rng.Float64())]
		} else {
			name = sc.NFs[rng.Intn(len(sc.NFs))]
		}
		spec := TenantSpec{
			At: now,
			Tenant: Tenant{
				ID: i,
				Arrival: placement.Arrival{
					Name:    name,
					Profile: pool[rng.Intn(len(pool))],
					SLA:     sc.SLALo + (sc.SLAHi-sc.SLALo)*rng.Float64(),
				},
			},
		}
		// Lifetime and drift come from the tenant's private stream, so a
		// tenant behaves identically under every policy that admits it,
		// regardless of what else that policy placed.
		trng := sc.tenantRNG(i)
		spec.Lifetime = sc.lifetime(trng)
		if trng.Float64() < sc.DriftProb {
			spec.DriftAt = trng.Range(0.1, 0.9) * spec.Lifetime
			spec.DriftProfile = pool[trng.Intn(len(pool))]
		}
		specs = append(specs, spec)
	}
	return specs
}

// gap draws the i-th inter-arrival time per the workload kind.
func (sc Scenario) gap(rng *sim.RNG, i int) float64 {
	switch sc.Workload {
	case WorkloadDiurnal:
		// Two day/night cycles over the stream: the instantaneous rate
		// swings ±80% around the base, so the fleet sees both a packed
		// peak and a drained trough.
		phase := 2 * math.Pi * 2 * float64(i) / float64(max(sc.Arrivals, 1))
		return rng.Exp(sc.MeanIAT / (1 + 0.8*math.Sin(phase)))
	case WorkloadFlashCrowd:
		// A burst window over [45%, 60%) of the stream arriving 10×
		// faster than baseline — the flash crowd the admission path must
		// absorb or reject.
		frac := float64(i) / float64(max(sc.Arrivals, 1))
		if frac >= 0.45 && frac < 0.60 {
			return rng.Exp(sc.MeanIAT / 10)
		}
		return rng.Exp(sc.MeanIAT)
	default:
		return rng.Exp(sc.MeanIAT)
	}
}

// lifetime draws one tenant lifetime per the workload kind.
func (sc Scenario) lifetime(trng *sim.RNG) float64 {
	if sc.Workload == WorkloadHeavyTail {
		// Pareto with α=1.5 and the scale chosen so the mean matches
		// MeanLifetime: most tenants are short-lived, a few pin cores for
		// many multiples of the mean.
		const alpha = 1.5
		xm := sc.MeanLifetime * (alpha - 1) / alpha
		u := 1 - trng.Float64() // (0, 1]
		return xm * math.Pow(u, -1/alpha)
	}
	return trng.Exp(sc.MeanLifetime)
}

// zipfCDF builds the cumulative Zipf(s) distribution over n ranks.
func zipfCDF(n int, s float64) []float64 {
	cdf := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return cdf
}

// cdfIndex returns the first index whose cumulative mass covers u.
func cdfIndex(cdf []float64, u float64) int {
	for i, c := range cdf {
		if u < c {
			return i
		}
	}
	return len(cdf) - 1
}

// tenantRNG derives tenant id's private random stream. Lifetime and
// drift draws come from here, so a tenant behaves identically under
// every policy that admits it, regardless of what else that policy
// placed.
func (sc Scenario) tenantRNG(id int) *sim.RNG {
	return sim.NewRNG(sc.Seed ^ (uint64(id)+1)*0x9e3779b97f4a7c15)
}
