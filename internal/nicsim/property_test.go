package nicsim

import (
	"testing"
	"testing/quick"
)

// TestThroughputMonotoneInCompetitorPressure: adding a competitor, or
// strengthening one, never increases a closed-loop workload's throughput
// beyond noise.
func TestThroughputMonotoneInCompetitorPressure(t *testing.T) {
	cfg := BlueField2()
	cfg.MeasureNoise = 0 // isolate the model from measurement noise
	f := func(carStep, wssStep uint8) bool {
		nic := New(cfg, 7)
		target := &Workload{
			Name: "t", Pattern: RunToCompletion, Cores: 2,
			CPUSecPerPkt: 700e-9, MemRefsPerPkt: 50, WSSBytes: 3 << 20,
			MemMLP: 1.6, PktBytes: 1500,
		}
		car := 20e6 + float64(carStep)/255*200e6
		wss := 1<<20 + float64(wssStep)/255*14*(1<<20)
		weak := &Workload{
			Name: "weak", Pattern: RunToCompletion, Cores: 2,
			CPUSecPerPkt: 40e-9, MemRefsPerPkt: 100, WSSBytes: wss,
			MemMLP: 8, PktBytes: 64, OfferedRate: car / 100,
		}
		strong := &Workload{
			Name: "strong", Pattern: RunToCompletion, Cores: 2,
			CPUSecPerPkt: 40e-9, MemRefsPerPkt: 100, WSSBytes: wss * 1.5,
			MemMLP: 8, PktBytes: 64, OfferedRate: car / 100 * 1.5,
		}
		a, err := nic.Run(target, weak)
		if err != nil {
			return false
		}
		b, err := nic.Run(target, strong)
		if err != nil {
			return false
		}
		return b[0].Throughput <= a[0].Throughput*1.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestSoloDominatesColocated: a workload never runs faster co-located
// than alone.
func TestSoloDominatesColocated(t *testing.T) {
	cfg := BlueField2()
	cfg.MeasureNoise = 0
	f := func(refs, wssMB uint8, regex bool) bool {
		nic := New(cfg, 9)
		target := &Workload{
			Name: "t", Pattern: RunToCompletion, Cores: 2,
			CPUSecPerPkt:  600e-9,
			MemRefsPerPkt: 10 + float64(refs)/2,
			WSSBytes:      float64(wssMB%24+1) * (1 << 20),
			MemMLP:        1.6, PktBytes: 1500,
			Accel: map[AccelKind]AccelUse{},
		}
		if regex {
			target.Accel[AccelRegex] = AccelUse{
				ReqsPerPkt: 1, BytesPerReq: 1400, MatchesPerReq: 1, Queues: 2,
			}
		}
		solo, err := nic.RunSolo(target)
		if err != nil {
			return false
		}
		comp := &Workload{
			Name: "c", Pattern: RunToCompletion, Cores: 2,
			CPUSecPerPkt: 40e-9, MemRefsPerPkt: 100, WSSBytes: 10 << 20,
			MemMLP: 8, PktBytes: 64, OfferedRate: 1.2e6,
			Accel: map[AccelKind]AccelUse{
				AccelRegex: {ReqsPerPkt: 0.3, BytesPerReq: 800, MatchesPerReq: 1.5, Queues: 1},
			},
		}
		co, err := nic.Run(target, comp)
		if err != nil {
			return false
		}
		return co[0].Throughput <= solo.Throughput*1.03
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestCountersScaleWithThroughput: IRT and cache rates are extensive in
// throughput — a faster run reports proportionally higher rates.
func TestCountersScaleWithThroughput(t *testing.T) {
	cfg := BlueField2()
	cfg.MeasureNoise = 0
	nic := New(cfg, 11)
	mk := func(offered float64) *Workload {
		return &Workload{
			Name: "w", Pattern: RunToCompletion, Cores: 2,
			CPUSecPerPkt: 500e-9, MemRefsPerPkt: 40, WSSBytes: 1 << 20,
			MemMLP: 2, PktBytes: 512, OfferedRate: offered,
		}
	}
	slow, err := nic.RunSolo(mk(0.2e6))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := nic.RunSolo(mk(0.4e6))
	if err != nil {
		t.Fatal(err)
	}
	ratio := fast.Counters.CAR() / slow.Counters.CAR()
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("CAR ratio %v, want ~2", ratio)
	}
	if fast.Counters.IRT <= slow.Counters.IRT {
		t.Fatal("IRT did not scale with throughput")
	}
	// WSS is intensive: unchanged.
	if slow.Counters.WSS != fast.Counters.WSS {
		t.Fatal("WSS should not depend on rate without noise")
	}
}

// TestAccelWorkConservation: total accelerator completions never exceed
// engine capacity.
func TestAccelWorkConservation(t *testing.T) {
	cfg := BlueField2()
	cfg.MeasureNoise = 0
	nic := New(cfg, 13)
	mk := func(name string, rate float64) *Workload {
		return &Workload{
			Name: name, Pattern: RunToCompletion, Cores: 2,
			CPUSecPerPkt: 30e-9, MemRefsPerPkt: 2, WSSBytes: 1 << 16,
			MemMLP: 4, PktBytes: 64, OfferedRate: rate,
			Accel: map[AccelKind]AccelUse{
				AccelRegex: {ReqsPerPkt: 1, BytesPerReq: 1000, MatchesPerReq: 2, Queues: 1},
			},
		}
	}
	ms, err := nic.Run(mk("a", 3e6), mk("b", 3e6))
	if err != nil {
		t.Fatal(err)
	}
	service := 180e-9 + 1000*0.12e-9 + 2*320e-9
	capacity := 1 / service
	total := ms[0].AccelStats[AccelRegex].RequestRate + ms[1].AccelStats[AccelRegex].RequestRate
	if total > capacity*1.05 {
		t.Fatalf("completions %v exceed capacity %v", total, capacity)
	}
}
