package cluster

import (
	"context"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/nicsim"
	"repro/internal/placement"
	"repro/internal/profiling"
	"repro/internal/slomo"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

// testNFs is the pool the model-needing tests draw from; kept to two NFs
// so tiny-model training stays cheap.
var testNFs = []string{"FlowStats", "ACL"}

var (
	modelsOnce sync.Once
	tinyModels MapModels
	modelsErr  error
)

// testModels trains minimal-cost Yala and SLOMO models for testNFs once
// per test binary. Accuracy is irrelevant — these tests assert
// determinism and orchestration logic, not model quality.
func testModels(t testing.TB) MapModels {
	t.Helper()
	modelsOnce.Do(func() {
		tb := testbed.New(nicsim.BlueField2(), 1)
		cfg := core.DefaultTrainConfig()
		cfg.Seed = 1
		cfg.Plan = profiling.Random(12, 1)
		cfg.PatternProbes = 1
		cfg.GBR = ml.GBRConfig{Trees: 25, LearningRate: 0.15, MaxDepth: 3, MinLeaf: 2, Subsample: 1, Seed: 1}
		scfg := slomo.DefaultConfig()
		scfg.Seed = 1
		scfg.Samples = 12
		scfg.GBR = cfg.GBR
		tinyModels = MapModels{
			YalaModels:  map[string]*core.Model{},
			SLOMOModels: map[string]*slomo.Model{},
		}
		for _, name := range testNFs {
			m, err := core.NewTrainer(tb, cfg).Train(name)
			if err != nil {
				modelsErr = err
				return
			}
			tinyModels.YalaModels[name] = m
			sm, err := slomo.Train(tb, name, traffic.Default, scfg)
			if err != nil {
				modelsErr = err
				return
			}
			tinyModels.SLOMOModels[name] = sm
		}
	})
	if modelsErr != nil {
		t.Fatalf("training test models: %v", modelsErr)
	}
	return tinyModels
}

func testEnv(t testing.TB, models ModelSource) *Env {
	t.Helper()
	if models == nil {
		models = MapModels{}
	}
	return NewEnv(nicsim.BlueField2(), 1, models)
}

func testScenario() Scenario {
	return Scenario{
		NICs:      4,
		Arrivals:  12,
		Seed:      3,
		NFs:       testNFs,
		Profiles:  2,
		DriftProb: 0.5,
	}.WithDefaults()
}

func TestArrivalStreamDeterministicAndOrdered(t *testing.T) {
	sc := testScenario()
	s1, s2 := sc.ArrivalStream(), sc.ArrivalStream()
	if len(s1) != sc.Arrivals {
		t.Fatalf("stream has %d events, want %d", len(s1), sc.Arrivals)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("stream not deterministic at %d: %+v vs %+v", i, s1[i], s2[i])
		}
		if s1[i].Tenant.ID != i {
			t.Fatalf("event %d has tenant ID %d", i, s1[i].Tenant.ID)
		}
		if i > 0 && s1[i].Time < s1[i-1].Time {
			t.Fatalf("event %d at %g before event %d at %g", i, s1[i].Time, i-1, s1[i-1].Time)
		}
		if sla := s1[i].Tenant.SLA; sla < sc.SLALo || sla > sc.SLAHi {
			t.Fatalf("event %d SLA %g outside [%g, %g]", i, sla, sc.SLALo, sc.SLAHi)
		}
	}
	// A different seed must produce a different stream.
	sc2 := sc
	sc2.Seed = sc.Seed + 1
	d1, d2 := sc.ArrivalStream(), sc2.ArrivalStream()
	same := true
	for i := range d1 {
		if d1[i] != d2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestFirstFitAndRandomPolicies(t *testing.T) {
	env := testEnv(t, nil)
	f := env.NewFleet(3)
	a := placement.Arrival{Name: "FlowStats", Profile: traffic.Default, SLA: 0.1}

	ff, err := NewScheduler("firstfit", env, 1)
	if err != nil {
		t.Fatal(err)
	}
	if idx, _ := ff.Choose(f, a); idx != 0 {
		t.Fatalf("firstfit on empty fleet chose %d, want 0", idx)
	}
	// Fill NIC 0; first-fit moves to NIC 1.
	for f.Fits(0) {
		f.place(0, Tenant{ID: 100 + len(f.NICs[0].Tenants), Arrival: a})
	}
	if idx, _ := ff.Choose(f, a); idx != 1 {
		t.Fatalf("firstfit with NIC 0 full chose %d, want 1", idx)
	}

	// Random only ever picks NICs with capacity, deterministically under
	// one seed.
	r1, _ := NewScheduler("random", env, 7)
	r2, _ := NewScheduler("random", env, 7)
	for i := 0; i < 20; i++ {
		i1, _ := r1.Choose(f, a)
		i2, _ := r2.Choose(f, a)
		if i1 != i2 {
			t.Fatalf("random policy not deterministic: %d vs %d", i1, i2)
		}
		if i1 == 0 {
			t.Fatal("random chose a full NIC")
		}
	}

	// A full fleet rejects under every policy.
	for i := 1; i < 3; i++ {
		for f.Fits(i) {
			f.place(i, Tenant{ID: 200 + 10*i + len(f.NICs[i].Tenants), Arrival: a})
		}
	}
	for _, name := range []string{"random", "firstfit"} {
		s, _ := NewScheduler(name, env, 1)
		if idx, _ := s.Choose(f, a); idx != -1 {
			t.Fatalf("%s on full fleet chose %d, want -1", name, idx)
		}
	}

	if _, err := NewScheduler("nope", env, 1); err == nil {
		t.Fatal("unknown policy did not error")
	}
}

func TestPredictFitConsolidatesUnderGenerousSLA(t *testing.T) {
	env := testEnv(t, testModels(t))
	f := env.NewFleet(3)
	// NIC 1 holds one resident; a generous SLA makes co-location
	// predicted-feasible, so best-fit must consolidate onto NIC 1 rather
	// than open an empty NIC.
	generous := placement.Arrival{Name: "FlowStats", Profile: traffic.Default, SLA: 0.95}
	f.place(1, Tenant{ID: 0, Arrival: generous})
	for _, policy := range []string{"yala", "slomo"} {
		s, err := NewScheduler(policy, env, 1)
		if err != nil {
			t.Fatal(err)
		}
		idx, err := s.Choose(f, generous)
		if err != nil {
			t.Fatal(err)
		}
		if idx != 1 {
			t.Fatalf("%s chose NIC %d, want consolidation on 1", policy, idx)
		}
	}
}

func TestEventOrdering(t *testing.T) {
	env := testEnv(t, nil)
	// One NIC, one tenant slot: admission outcomes depend entirely on
	// event order.
	env.Sim.NFCores = env.Sim.NICCores
	sc := Scenario{NICs: 1, Arrivals: 3, Seed: 5, NFs: testNFs, DriftProb: -1}.WithDefaults()
	o := newOrchestrator(context.Background(), env, sc, firstFit{})
	a := placement.Arrival{Name: "FlowStats", Profile: traffic.Default, SLA: 0.1}
	// Tenant 0 occupies the slot for life0 seconds; tenant 1 arrives
	// mid-life and must be rejected; tenant 2 arrives after the
	// departure and must be admitted.
	life0 := sc.tenantRNG(0).Exp(sc.MeanLifetime)
	o.engine.At(1, func() { o.arrive(Tenant{ID: 0, Arrival: a}) })
	o.engine.At(1+life0/2, func() { o.arrive(Tenant{ID: 1, Arrival: a}) })
	o.engine.At(1+life0+1, func() { o.arrive(Tenant{ID: 2, Arrival: a}) })
	o.engine.Run()
	if o.err != nil {
		t.Fatal(o.err)
	}
	if o.res.Admitted != 2 || o.res.Rejected != 1 || o.res.Departures != 2 {
		t.Fatalf("admitted/rejected/departed = %d/%d/%d, want 2/1/2",
			o.res.Admitted, o.res.Rejected, o.res.Departures)
	}
	if o.fleet.Tenants() != 0 {
		t.Fatalf("%d tenants still resident after drain", o.fleet.Tenants())
	}
}

// scriptSched returns a fixed sequence of targets — the migration tests
// drive the orchestrator with it, independent of any model.
type scriptSched struct {
	targets []int
	i       int
}

func (s *scriptSched) Name() string { return "script" }

func (s *scriptSched) Choose(f *Fleet, a placement.Arrival) (int, error) {
	t := s.targets[s.i%len(s.targets)]
	s.i++
	return t, nil
}

func TestDriftMigration(t *testing.T) {
	env := testEnv(t, nil)
	sc := Scenario{NICs: 2, Arrivals: 1, Seed: 1, NFs: testNFs}.WithDefaults()
	// Two regex-accelerator NFs share NIC 0 under zero-tolerance SLAs:
	// any throughput drop is a breach, so the post-drift check must
	// breach and the scripted policy migrates the drifted tenant to the
	// empty NIC 1.
	o := newOrchestrator(context.Background(), env, sc, &scriptSched{targets: []int{1}})
	o.fleet.place(0, Tenant{ID: 0, Arrival: placement.Arrival{Name: "NIDS", Profile: traffic.Default, SLA: 0}})
	o.fleet.place(0, Tenant{ID: 1, Arrival: placement.Arrival{Name: "FlowMonitor", Profile: traffic.Default, SLA: 0}})
	o.drift(1, traffic.Profile{Flows: 64000, PktSize: 512, MTBR: 1000})
	if o.err != nil {
		t.Fatal(o.err)
	}
	if o.res.Violations == 0 {
		t.Fatal("zero-tolerance co-location drifted without a recorded violation")
	}
	if o.res.Migrations != 1 || o.res.Evictions != 0 {
		t.Fatalf("migrations/evictions = %d/%d, want 1/0", o.res.Migrations, o.res.Evictions)
	}
	if got := o.fleet.locate(1); got != 1 {
		t.Fatalf("drifted tenant on NIC %d, want 1", got)
	}
	if len(o.fleet.NICs[0].Tenants) != 1 {
		t.Fatalf("NIC 0 has %d tenants after migration, want 1", len(o.fleet.NICs[0].Tenants))
	}
}

func TestDriftEvictionWhenNoTarget(t *testing.T) {
	env := testEnv(t, nil)
	sc := Scenario{NICs: 1, Arrivals: 1, Seed: 1, NFs: testNFs}.WithDefaults()
	// Single-NIC fleet: the policy can only re-offer the breached NIC,
	// so the drifted tenant must be evicted.
	o := newOrchestrator(context.Background(), env, sc, &scriptSched{targets: []int{0}})
	o.fleet.place(0, Tenant{ID: 0, Arrival: placement.Arrival{Name: "NIDS", Profile: traffic.Default, SLA: 0}})
	o.fleet.place(0, Tenant{ID: 1, Arrival: placement.Arrival{Name: "FlowMonitor", Profile: traffic.Default, SLA: 0}})
	o.drift(1, traffic.Profile{Flows: 64000, PktSize: 512, MTBR: 1000})
	if o.err != nil {
		t.Fatal(o.err)
	}
	if o.res.Evictions != 1 || o.res.Migrations != 0 {
		t.Fatalf("evictions/migrations = %d/%d, want 1/0", o.res.Evictions, o.res.Migrations)
	}
	if got := o.fleet.locate(1); got != -1 {
		t.Fatalf("evicted tenant still resident on NIC %d", got)
	}
}

// stripLatencies zeroes the wall-clock fields so runs compare on
// placement outcomes alone.
func stripLatencies(rs []PolicyResult) []PolicyResult {
	out := append([]PolicyResult(nil), rs...)
	for i := range out {
		out[i].DecisionP50, out[i].DecisionP99 = 0, 0
	}
	return out
}

func TestRunComparisonDeterministicAndAccounted(t *testing.T) {
	models := testModels(t)
	sc := testScenario()
	policies := []string{"random", "firstfit", "slomo", "yala"}

	run := func() []PolicyResult {
		cmp, err := Run(context.Background(), testEnv(t, models), sc, policies)
		if err != nil {
			t.Fatal(err)
		}
		return stripLatencies(cmp.Results)
	}
	r1, r2 := run(), run()
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("policy %s not deterministic across envs:\n%+v\n%+v",
				r1[i].Policy, r1[i], r2[i])
		}
		if r1[i].Arrivals != sc.Arrivals {
			t.Fatalf("policy %s saw %d arrivals, want %d", r1[i].Policy, r1[i].Arrivals, sc.Arrivals)
		}
		if got := r1[i].Admitted + r1[i].Rejected + r1[i].Rollbacks; got != sc.Arrivals {
			t.Fatalf("policy %s: admitted+rejected+rollbacks = %d, want %d",
				r1[i].Policy, got, sc.Arrivals)
		}
	}
}
