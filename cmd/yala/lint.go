package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

// cmdLint runs the repo's static-analysis suite (internal/analysis)
// over the given package patterns (default ./...). Text findings go to
// stdout; -json writes the machine-readable report (findings array +
// package count) like the other verbs' -json flags. Any finding —
// including a stale //yalalint:ignore — makes the command fail, so CI
// can gate on the exit code alone.
func cmdLint(args []string) error {
	fs := flag.NewFlagSet("lint", flag.ExitOnError)
	jsonPath := fs.String("json", "", "write the machine-readable report to this path")
	list := fs.Bool("analyzers", false, "list the suite's analyzers and exit")
	fs.Parse(args)
	if *list {
		for _, a := range analysis.DefaultAnalyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return nil
	}
	root, err := findModRoot()
	if err != nil {
		return err
	}
	report, err := analysis.Run(root, fs.Args(), analysis.DefaultAnalyzers())
	if err != nil {
		return fmt.Errorf("lint: %w", err)
	}
	if *jsonPath != "" {
		if err := writeJSONFile(*jsonPath, report); err != nil {
			return err
		}
	}
	analysis.WriteText(os.Stdout, report.Findings)
	if n := len(report.Findings); n > 0 {
		return fmt.Errorf("lint: %d finding(s) in %d package(s)", n, report.Packages)
	}
	fmt.Printf("lint: %d packages clean\n", report.Packages)
	return nil
}

// findModRoot walks up from the working directory to the enclosing
// go.mod, so `yala lint ./...` works from any subdirectory.
func findModRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}
