// Package fixture exercises the wallclock analyzer: loaded by the
// golden test under a determinism-critical import path.
package fixture

import (
	"math/rand"
	"time"
	clock "time"
)

// now reads the wall clock — flagged.
func now() time.Time { return time.Now() }

// age calls time.Since — flagged.
func age(t time.Time) time.Duration { return time.Since(t) }

// left calls time.Until — flagged.
func left(t time.Time) time.Duration { return time.Until(t) }

// aliased resolves through the import alias — still flagged.
func aliased() clock.Time { return clock.Now() }

// roll uses math/rand — the import itself is flagged.
func roll() int { return rand.Int() }

// double only computes with durations — never flagged.
func double(d time.Duration) time.Duration { return 2 * d }
