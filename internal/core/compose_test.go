package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/nicsim"
)

func TestComposePipelineTakesMaxDrop(t *testing.T) {
	got := Compose(ComposePipeline, 100, []float64{10, 30, 5})
	if got != 70 {
		t.Fatalf("pipeline = %v, want 70", got)
	}
}

func TestComposeMinEqualsPipeline(t *testing.T) {
	drops := []float64{12, 7, 25}
	if Compose(ComposeMin, 100, drops) != Compose(ComposePipeline, 100, drops) {
		t.Fatal("min and pipeline compositions should coincide")
	}
}

func TestComposeSum(t *testing.T) {
	if got := Compose(ComposeSum, 100, []float64{10, 30, 5}); got != 55 {
		t.Fatalf("sum = %v, want 55", got)
	}
	if got := Compose(ComposeSum, 100, []float64{60, 60}); got != 0 {
		t.Fatalf("over-subtracted sum = %v, want 0", got)
	}
}

func TestComposeRTCMatchesEquation(t *testing.T) {
	// Eq. 3 with r=2: T = 1/(1/(S-d1) + 1/(S-d2) - 1/S).
	S, d1, d2 := 100.0, 20.0, 10.0
	want := 1 / (1/(S-d1) + 1/(S-d2) - 1/S)
	if got := Compose(ComposeRTC, S, []float64{d1, d2}); math.Abs(got-want) > 1e-9 {
		t.Fatalf("rtc = %v, want %v", got, want)
	}
}

func TestComposeRTCSingleResource(t *testing.T) {
	// With one resource, Eq. 3 reduces to T = S - d.
	if got := Compose(ComposeRTC, 100, []float64{25}); math.Abs(got-75) > 1e-9 {
		t.Fatalf("rtc single = %v, want 75", got)
	}
}

func TestComposeNoDrops(t *testing.T) {
	for _, c := range []Composition{ComposePipeline, ComposeRTC, ComposeSum, ComposeMin} {
		if got := Compose(c, 100, nil); got != 100 {
			t.Fatalf("%v with no drops = %v", c, got)
		}
	}
}

func TestComposeClampsNegativeAndOversizedDrops(t *testing.T) {
	if got := Compose(ComposePipeline, 100, []float64{-5}); got != 100 {
		t.Fatalf("negative drop not clamped: %v", got)
	}
	got := Compose(ComposeRTC, 100, []float64{150, 10})
	if got <= 0 || got > 100 {
		t.Fatalf("oversized drop produced %v", got)
	}
}

func TestComposeZeroSolo(t *testing.T) {
	if got := Compose(ComposeRTC, 0, []float64{1}); got != 0 {
		t.Fatalf("zero solo = %v", got)
	}
}

func TestComposeRTCBelowPipelineProperty(t *testing.T) {
	// With multiple contended resources, compounding (RTC) never yields
	// more throughput than the slowest-stage bound (pipeline).
	f := func(s uint16, a, b uint8) bool {
		solo := float64(s%1000) + 100
		d1 := float64(a) / 255 * solo * 0.8
		d2 := float64(b) / 255 * solo * 0.8
		rtc := Compose(ComposeRTC, solo, []float64{d1, d2})
		pipe := Compose(ComposePipeline, solo, []float64{d1, d2})
		return rtc <= pipe+1e-9 && rtc > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForPattern(t *testing.T) {
	if ForPattern(nicsim.Pipeline) != ComposePipeline {
		t.Fatal("pipeline mapping wrong")
	}
	if ForPattern(nicsim.RunToCompletion) != ComposeRTC {
		t.Fatal("rtc mapping wrong")
	}
}

func TestCompositionString(t *testing.T) {
	if ComposeSum.String() != "sum" || ComposeMin.String() != "min" {
		t.Fatal("composition names wrong")
	}
}

func TestDetectPatternRecoversGroundTruth(t *testing.T) {
	// Build observations from each composition law and check detection.
	mk := func(c Composition) []PatternObservation {
		var obs []PatternObservation
		for _, d := range [][]float64{{10, 40}, {30, 5}, {20, 20}} {
			obs = append(obs, PatternObservation{
				SoloT:    100,
				Drops:    d,
				Measured: Compose(c, 100, d),
			})
		}
		return obs
	}
	if got := DetectPattern(mk(ComposePipeline)); got != nicsim.Pipeline {
		t.Fatalf("pipeline detected as %v", got)
	}
	if got := DetectPattern(mk(ComposeRTC)); got != nicsim.RunToCompletion {
		t.Fatalf("rtc detected as %v", got)
	}
}

func TestDetectPatternNoisy(t *testing.T) {
	var obs []PatternObservation
	for i, d := range [][]float64{{10, 40}, {30, 5}, {20, 20}, {5, 35}} {
		noise := 1.0
		if i%2 == 0 {
			noise = -1.0
		}
		obs = append(obs, PatternObservation{
			SoloT:    100,
			Drops:    d,
			Measured: Compose(ComposeRTC, 100, d) + noise,
		})
	}
	if got := DetectPattern(obs); got != nicsim.RunToCompletion {
		t.Fatalf("noisy rtc detected as %v", got)
	}
}
