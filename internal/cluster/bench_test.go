package cluster

import (
	"context"
	"sort"
	"testing"

	"repro/internal/placement"
	"repro/internal/traffic"
)

// benchFleet builds a half-loaded fleet over a prewarmed environment —
// the steady state the scheduling hot path runs in.
func benchFleet(b *testing.B, env *Env, nics int) *Fleet {
	b.Helper()
	sc := Scenario{NICs: nics, NFs: testNFs, Profiles: 2, Seed: 1}.WithDefaults()
	if err := env.Prewarm(context.Background(), sc, []string{"yala", "slomo"}); err != nil {
		b.Fatal(err)
	}
	pool := sc.ProfilePool()
	f := env.NewFleet(nics)
	id := 0
	for i := 0; i < nics; i++ {
		for j := 0; j < 1+i%2; j++ {
			f.place(i, Tenant{ID: id, Arrival: placement.Arrival{
				Name:    testNFs[id%len(testNFs)],
				Profile: pool[id%len(pool)],
				SLA:     0.5,
			}})
			id++
		}
	}
	return f
}

// benchChoose measures one policy's scheduling decision over a 32-NIC
// fleet — the hot path every arrival, drift and migration goes through.
func benchChoose(b *testing.B, policy string) {
	env := testEnv(b, testModels(b))
	f := benchFleet(b, env, 32)
	a := placement.Arrival{Name: "FlowStats", Profile: traffic.Default, SLA: 0.2}
	sched, err := NewScheduler(policy, env, 1)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sched.Choose(f, a); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Choose(f, a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChooseYala(b *testing.B)     { benchChoose(b, "yala") }
func BenchmarkChooseSLOMO(b *testing.B)    { benchChoose(b, "slomo") }
func BenchmarkChooseFirstFit(b *testing.B) { benchChoose(b, "firstfit") }

// referenceScenario is the committed benchmark's 16-NIC/120-arrival
// reference shape (the default fleet and stream sizes over the test NF
// pool, so tiny-model training stays cheap).
func referenceScenario() Scenario {
	return Scenario{NICs: 16, Arrivals: 120, NFs: testNFs, Profiles: 4, Seed: 1, DriftProb: DefaultDriftProb}.WithDefaults()
}

// refEvent is one scheduling-relevant event in the reference replay: an
// arrival offered to the scheduler, or a departure freeing its slot.
type refEvent struct {
	at     float64
	spec   TenantSpec
	depart int // tenant ID to remove; -1 for arrivals
}

// referenceEvents flattens a stream into time-ordered arrivals and
// departures so the benchmark exercises the scheduler against the
// realistic occupancy the stream produces, without paying for
// ground-truth enforcement (which is not the scheduling hot path).
func referenceEvents(stream []TenantSpec) []refEvent {
	events := make([]refEvent, 0, 2*len(stream))
	for _, s := range stream {
		events = append(events, refEvent{at: s.At, spec: s, depart: -1})
		events = append(events, refEvent{at: s.At + s.Lifetime, depart: s.ID})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].at < events[j].at })
	return events
}

// playReference drives one full pass of the reference decisions.
func playReference(f *Fleet, sched Scheduler, events []refEvent) error {
	for _, ev := range events {
		if ev.depart >= 0 {
			if i := f.locate(ev.depart); i >= 0 {
				f.remove(i, ev.depart)
			}
			continue
		}
		idx, err := sched.Choose(f, ev.spec.Arrival)
		if err != nil {
			return err
		}
		if idx >= 0 {
			f.place(idx, ev.spec.Tenant)
		}
	}
	return nil
}

// benchReference measures all 120 reference scheduling decisions (plus
// fleet bookkeeping) per iteration, on the batched or per-slot path.
func benchReference(b *testing.B, perSlot bool) {
	env := testEnv(b, testModels(b))
	sc := referenceScenario()
	if err := env.Prewarm(context.Background(), sc, []string{"yala"}); err != nil {
		b.Fatal(err)
	}
	events := referenceEvents(sc.Stream())
	sched := predictFit{env: env, strat: placement.YalaAware, name: "yala", perSlot: perSlot}
	// One warm pass populates the simulator's measurement caches so the
	// timed passes measure scheduling, not first-touch simulation.
	f, err := env.ScenarioFleet(sc)
	if err != nil {
		b.Fatal(err)
	}
	if err := playReference(f, sched, events); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := env.ScenarioFleet(sc)
		if err != nil {
			b.Fatal(err)
		}
		if err := playReference(f, sched, events); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduleReferenceBatched is the committed scheduler hot-path
// benchmark (BENCH_cluster.json); PerSlot is the reference loop it is
// gated against.
func BenchmarkScheduleReferenceBatched(b *testing.B) { benchReference(b, false) }
func BenchmarkScheduleReferencePerSlot(b *testing.B) { benchReference(b, true) }
