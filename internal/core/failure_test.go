package core

import (
	"strings"
	"testing"

	"repro/internal/nicsim"
	"repro/internal/profiling"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

func TestTrainUnknownNF(t *testing.T) {
	tb := testbed.New(nicsim.BlueField2(), 61)
	_, err := NewTrainer(tb, DefaultTrainConfig()).Train("NoSuchNF")
	if err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Fatalf("err = %v", err)
	}
}

func TestTrainSourceErrorsPropagate(t *testing.T) {
	tb := testbed.New(nicsim.BlueField2(), 62)
	src := func(traffic.Profile) (*nicsim.Workload, error) {
		return nil, errBoom
	}
	if _, err := NewTrainer(tb, DefaultTrainConfig()).TrainSource("boom", src, nil); err == nil {
		t.Fatal("expected source error to propagate")
	}
}

type boomErr struct{}

func (boomErr) Error() string { return "boom" }

var errBoom = boomErr{}

func TestTrainOnPensando(t *testing.T) {
	tb := testbed.New(nicsim.Pensando(), 63)
	cfg := DefaultTrainConfig()
	cfg.Plan = nil
	m, err := NewTrainer(tb, cfg).Train("Firewall")
	if err != nil {
		t.Fatal(err)
	}
	if m.Solo.Predict(traffic.Default) <= 0 {
		t.Fatal("degenerate solo model on Pensando")
	}
}

func TestTrafficAgnosticAblation(t *testing.T) {
	// The fixed-traffic ablation must train and predict, but its memory
	// model ignores profile features.
	tb := testbed.New(nicsim.BlueField2(), 64)
	cfg := DefaultTrainConfig()
	cfg.TrafficAware = false
	cfg.Plan = profiling.Random(80, 3)
	m, err := NewTrainer(tb, cfg).Train("FlowStats")
	if err != nil {
		t.Fatal(err)
	}
	if m.Mem.TrafficAware() {
		t.Fatal("ablation model claims traffic awareness")
	}
	comp := nicsim.Counters{L2CRD: 70e6, L2CWR: 30e6, MEMRD: 30e6, MEMWR: 12e6, WSS: 8 << 20}
	a := m.Mem.PredictRatio(comp, traffic.Default)
	b := m.Mem.PredictRatio(comp, traffic.Default.With(traffic.AttrFlows, 400000))
	if a != b {
		t.Fatal("traffic-agnostic model varied with profile")
	}
}

func TestFitMemModelRequiresSoloBaseline(t *testing.T) {
	samples := []MemSample{{Profile: traffic.Default, Throughput: 1e6}}
	if _, err := FitMemModel(samples, true, DefaultTrainConfig().GBR); err == nil {
		t.Fatal("expected missing-baseline error")
	}
}

func TestPredictionBottleneckDefaultsToCPU(t *testing.T) {
	m := &Model{
		Solo:   mustSolo(t),
		Mem:    nil,
		Accels: map[nicsim.AccelKind]*AccelModel{},
	}
	_ = m
	// A zero-solo model yields an empty prediction with the CPU default.
	zero := Prediction{Bottleneck: nicsim.ResCPU}
	if zero.Bottleneck != nicsim.ResCPU {
		t.Fatal("unexpected zero-value bottleneck")
	}
}

func mustSolo(t *testing.T) *SoloModel {
	t.Helper()
	s, err := FitSoloModel([]SoloSample{
		{Profile: traffic.Default, Throughput: 1e6},
		{Profile: traffic.Default.With(traffic.AttrFlows, 100000), Throughput: 0.5e6},
	}, DefaultTrainConfig().GBR)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
