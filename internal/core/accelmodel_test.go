package core

import (
	"math"
	"testing"

	"repro/internal/nicsim"
	"repro/internal/traffic"
)

func testAccelModel() *AccelModel {
	return &AccelModel{
		Queues: 1, T0: 200e-9, A: 0.4e-9, Attr: traffic.AttrMTBR, ReqsPerPkt: 1,
	}
}

func TestAccelServiceSecLinear(t *testing.T) {
	m := testAccelModel()
	if got := m.ServiceSec(0); got != 200e-9 {
		t.Fatalf("t(0) = %v", got)
	}
	want := 200e-9 + 0.4e-9*600
	if got := m.ServiceSec(600); math.Abs(got-want) > 1e-15 {
		t.Fatalf("t(600) = %v, want %v", got, want)
	}
}

func TestAccelSoloRate(t *testing.T) {
	m := testAccelModel()
	want := 1 / m.ServiceSec(600)
	if got := m.SoloPacketRate(600); math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("solo rate = %v, want %v", got, want)
	}
}

func TestAccelEquilibriumEqualQueues(t *testing.T) {
	// Eq. (1): equal queue counts at saturation share equally regardless
	// of each side's service time.
	m := testAccelModel()
	comp := AccelLoad{Queues: 1, ServiceSec: 900e-9} // saturating (OfferedReq 0)
	ti := m.ServiceSec(600)
	want := 1 / (ti + 900e-9)
	if got := m.PacketRate(600, []AccelLoad{comp}); math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("equilibrium = %v, want %v", got, want)
	}
}

func TestAccelLinearDeclineThenFloor(t *testing.T) {
	// Fig. 4's shape out of the analytic model.
	m := testAccelModel()
	ti := m.ServiceSec(600)
	tb := 500e-9
	eq := 1 / (ti + tb)
	var prev float64 = math.Inf(1)
	for _, lam := range []float64{0.1e6, 0.4e6, 0.8e6, 1.2e6, 3e6, 10e6} {
		got := m.PacketRate(600, []AccelLoad{{Queues: 1, ServiceSec: tb, OfferedReq: lam}})
		if got > prev+1e-9 {
			t.Fatalf("rate increased with competitor load")
		}
		if got < eq-1e-9 {
			t.Fatalf("rate %v fell below equilibrium floor %v", got, eq)
		}
		prev = got
	}
	// Deep saturation must sit exactly at the floor.
	got := m.PacketRate(600, []AccelLoad{{Queues: 1, ServiceSec: tb, OfferedReq: 100e6}})
	if math.Abs(got-eq)/eq > 1e-9 {
		t.Fatalf("saturated rate %v, want floor %v", got, eq)
	}
}

func TestAccelQueueWeighting(t *testing.T) {
	// Target with 3 queues vs saturating 1-queue competitor: target gets
	// 3x the competitor's share.
	m := testAccelModel()
	m.Queues = 3
	ti := m.ServiceSec(0)
	comp := AccelLoad{Queues: 1, ServiceSec: ti}
	got := m.PacketRate(0, []AccelLoad{comp})
	want := 3 / (4 * ti)
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("3-queue rate %v, want %v", got, want)
	}
}

func TestAccelReqsPerPktScaling(t *testing.T) {
	m := testAccelModel()
	m.ReqsPerPkt = 2
	if got, want := m.SoloPacketRate(0), 1/(2*m.ServiceSec(0)); math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("2 reqs/pkt rate %v, want %v", got, want)
	}
}

func TestFitAccelModelRecoversParameters(t *testing.T) {
	// Synthesize equilibrium co-runs from known parameters and refit.
	trueT0, trueA, trueN := 300e-9, 0.5e-9, 1.0
	benchT, benchN := 700e-9, 1.0
	var samples []AccelSample
	for _, mtbr := range []float64{100, 400, 700, 1000} {
		ti := trueT0 + trueA*mtbr
		round := trueN*ti + benchN*benchT
		samples = append(samples, AccelSample{
			Attr:            mtbr,
			TargetRate:      trueN / round,
			BenchRate:       benchN / round,
			BenchServiceSec: benchT,
			BenchQueues:     benchN,
		})
	}
	m, err := FitAccelModel(samples, traffic.AttrMTBR, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Queues != 1 {
		t.Fatalf("queues = %v", m.Queues)
	}
	if math.Abs(m.T0-trueT0)/trueT0 > 0.02 || math.Abs(m.A-trueA)/trueA > 0.02 {
		t.Fatalf("fit (%v, %v), want (%v, %v)", m.T0, m.A, trueT0, trueA)
	}
}

func TestFitAccelModelMultiQueue(t *testing.T) {
	trueT0, trueN := 300e-9, 3.0
	benchT := 500e-9
	var samples []AccelSample
	for _, mtbr := range []float64{100, 900} {
		ti := trueT0 + 0.2e-9*mtbr
		round := trueN*ti + benchT
		samples = append(samples, AccelSample{
			Attr: mtbr, TargetRate: trueN / round, BenchRate: 1 / round,
			BenchServiceSec: benchT, BenchQueues: 1,
		})
	}
	m, err := FitAccelModel(samples, traffic.AttrMTBR, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Queues != 3 {
		t.Fatalf("queues = %v, want 3", m.Queues)
	}
}

func TestFitAccelModelErrors(t *testing.T) {
	if _, err := FitAccelModel(nil, traffic.AttrMTBR, 1); err == nil {
		t.Fatal("expected error for no samples")
	}
	bad := []AccelSample{{Attr: 1}, {Attr: 2}}
	if _, err := FitAccelModel(bad, traffic.AttrMTBR, 1); err == nil {
		t.Fatal("expected error for zero rates")
	}
}

func TestAttrFor(t *testing.T) {
	if AttrFor(nicsim.AccelRegex) != traffic.AttrMTBR {
		t.Fatal("regex attr wrong")
	}
	if AttrFor(nicsim.AccelCompress) != traffic.AttrPktSize {
		t.Fatal("compress attr wrong")
	}
}
