// Package nfbench builds the synthetic benchmarking workloads the paper
// uses to assert controllable contention levels and to study resource
// behaviour in isolation (§6): mem-bench, regex-bench and
// compression-bench, plus the configurable synthetic NFs used in the
// composition experiments (regex-NF, NF1, NF2, and the pipeline /
// run-to-completion pair of Figure 5).
package nfbench

import "repro/internal/nicsim"

// benchCores is the core allocation for synthetic workloads (the paper
// gives every NF two dedicated cores).
const benchCores = 2

// memBenchRefsPerOp is the number of cache references one mem-bench
// operation issues.
const memBenchRefsPerOp = 100

// MemBench returns an open-loop memory-contention generator targeting the
// given cache access rate (refs/s) over a working set of wssBytes. It is
// the stress-ng/mbw stand-in: streaming accesses with high memory-level
// parallelism and negligible accelerator usage.
func MemBench(targetCAR, wssBytes float64) *nicsim.Workload {
	return &nicsim.Workload{
		Name:          "mem-bench",
		Pattern:       nicsim.RunToCompletion,
		Cores:         benchCores,
		CPUSecPerPkt:  40e-9,
		MemRefsPerPkt: memBenchRefsPerOp,
		WSSBytes:      wssBytes,
		MemMLP:        8,
		PktBytes:      64,
		OfferedRate:   targetCAR / memBenchRefsPerOp,
	}
}

// RegexBench returns an open-loop regex-contention generator issuing
// reqRate requests/s of bytesPerReq bytes at the given match-to-byte
// ratio (matches/MB), over queues request queues. Its memory footprint is
// negligible by construction (§2.2.1 footnote: purpose-built to have
// negligible memory usage but extensive regex usage).
func RegexBench(reqRate, bytesPerReq, mtbr float64, queues int) *nicsim.Workload {
	return &nicsim.Workload{
		Name:          "regex-bench",
		Pattern:       nicsim.RunToCompletion,
		Cores:         benchCores,
		CPUSecPerPkt:  30e-9,
		MemRefsPerPkt: 2,
		WSSBytes:      64 << 10,
		MemMLP:        4,
		PktBytes:      64,
		OfferedRate:   reqRate,
		Accel: map[nicsim.AccelKind]nicsim.AccelUse{
			nicsim.AccelRegex: {
				ReqsPerPkt:    1,
				BytesPerReq:   bytesPerReq,
				MatchesPerReq: mtbr * bytesPerReq / 1e6,
				Queues:        queues,
			},
		},
	}
}

// CompressBench returns an open-loop compression-contention generator.
func CompressBench(reqRate, bytesPerReq float64, queues int) *nicsim.Workload {
	return &nicsim.Workload{
		Name:          "compression-bench",
		Pattern:       nicsim.RunToCompletion,
		Cores:         benchCores,
		CPUSecPerPkt:  30e-9,
		MemRefsPerPkt: 2,
		WSSBytes:      64 << 10,
		MemMLP:        4,
		PktBytes:      64,
		OfferedRate:   reqRate,
		Accel: map[nicsim.AccelKind]nicsim.AccelUse{
			nicsim.AccelCompress: {
				ReqsPerPkt:  1,
				BytesPerReq: bytesPerReq,
				Queues:      queues,
			},
		},
	}
}

// RegexNF returns the closed-loop synthetic pattern-matching NF of the
// Figure 4 study: it saturates the regex accelerator with bytesPerReq
// requests at the given MTBR and is bottlenecked on nothing else.
func RegexNF(bytesPerReq, mtbr float64, queues int) *nicsim.Workload {
	return &nicsim.Workload{
		Name:          "regex-NF",
		Pattern:       nicsim.Pipeline,
		Cores:         benchCores,
		CPUSecPerPkt:  25e-9,
		MemRefsPerPkt: 2,
		WSSBytes:      64 << 10,
		MemMLP:        4,
		PktBytes:      64,
		Accel: map[nicsim.AccelKind]nicsim.AccelUse{
			nicsim.AccelRegex: {
				ReqsPerPkt:    1,
				BytesPerReq:   bytesPerReq,
				MatchesPerReq: mtbr * bytesPerReq / 1e6,
				Queues:        queues,
			},
		},
	}
}

// SyntheticSpec parameterizes a hand-built NF workload for the
// composition experiments (§2.2.1's NF1/NF2, §4.2's p-NF/r-NF).
type SyntheticSpec struct {
	Name    string
	Pattern nicsim.ExecPattern

	CPUSecPerPkt  float64
	MemRefsPerPkt float64
	WSSBytes      float64
	PktBytes      float64

	// RegexBytes/RegexMTBR configure a regex stage (0 bytes = unused);
	// CompressBytes a compression stage.
	RegexBytes    float64
	RegexMTBR     float64
	CompressBytes float64
}

// Build materializes the spec as a workload.
func (s SyntheticSpec) Build() *nicsim.Workload {
	w := &nicsim.Workload{
		Name:          s.Name,
		Pattern:       s.Pattern,
		Cores:         benchCores,
		CPUSecPerPkt:  s.CPUSecPerPkt,
		MemRefsPerPkt: s.MemRefsPerPkt,
		WSSBytes:      s.WSSBytes,
		MemMLP:        1.6,
		PktBytes:      s.PktBytes,
		Accel:         map[nicsim.AccelKind]nicsim.AccelUse{},
	}
	if s.RegexBytes > 0 {
		w.Accel[nicsim.AccelRegex] = nicsim.AccelUse{
			ReqsPerPkt:    1,
			BytesPerReq:   s.RegexBytes,
			MatchesPerReq: s.RegexMTBR * s.RegexBytes / 1e6,
			Queues:        1,
		}
	}
	if s.CompressBytes > 0 {
		w.Accel[nicsim.AccelCompress] = nicsim.AccelUse{
			ReqsPerPkt:  1,
			BytesPerReq: s.CompressBytes,
			Queues:      1,
		}
	}
	return w
}

// NF1 is the two-resource synthetic NF (memory + regex) of §2.2.1 and
// Table 4, in the requested execution pattern.
func NF1(pattern nicsim.ExecPattern) *nicsim.Workload {
	return SyntheticSpec{
		Name:          "NF1",
		Pattern:       pattern,
		CPUSecPerPkt:  600e-9,
		MemRefsPerPkt: 90,
		WSSBytes:      5 << 20,
		PktBytes:      1500,
		RegexBytes:    1400,
		RegexMTBR:     600,
	}.Build()
}

// NF2 is NF1 plus a compression stage (§7.3, Table 4).
func NF2(pattern nicsim.ExecPattern) *nicsim.Workload {
	return SyntheticSpec{
		Name:          "NF2",
		Pattern:       pattern,
		CPUSecPerPkt:  600e-9,
		MemRefsPerPkt: 90,
		WSSBytes:      5 << 20,
		PktBytes:      1500,
		RegexBytes:    1400,
		RegexMTBR:     600,
		CompressBytes: 1400,
	}.Build()
}

// PNF and RNF are the synthetic Click NFs of Figure 5: identical resource
// demands, differing only in execution pattern.
func PNF() *nicsim.Workload {
	w := fig5Spec("p-NF", nicsim.Pipeline).Build()
	return w
}

// RNF is the run-to-completion twin of PNF.
func RNF() *nicsim.Workload {
	return fig5Spec("r-NF", nicsim.RunToCompletion).Build()
}

func fig5Spec(name string, pattern nicsim.ExecPattern) SyntheticSpec {
	return SyntheticSpec{
		Name:          name,
		Pattern:       pattern,
		CPUSecPerPkt:  1500e-9,
		MemRefsPerPkt: 160,
		WSSBytes:      4 << 20,
		PktBytes:      1500,
		RegexBytes:    1400,
		RegexMTBR:     600,
	}
}
