// Package yalaclient is the supported Go SDK for the yala prediction
// service's versioned /v2 HTTP API.
//
// A Client is constructed from a base URL plus functional options:
//
//	client := yalaclient.New("http://localhost:8844",
//		yalaclient.WithTimeout(5*time.Second),
//		yalaclient.WithRetries(2),
//	)
//
// Models are addressed by ModelID — an NF name, optionally qualified by
// a fleet hardware class ({NF: "FlowStats", HW: "pensando"} →
// "FlowStats@pensando") — and every prediction call names the backend
// that should answer ("" selects the default, "yala"). The surface maps
// one-to-one onto /v2:
//
//	Predict, PredictBatch   → :predict, /v2/models:batchPredict
//	Compare, Diagnose       → :compare, :diagnose
//	Admit                   → :admit
//	Reload                  → :reload
//	ListModels, AllModels   → GET /v2/models (paginated)
//	ClusterRun, ClusterPolicies → /v2/cluster/runs, /v2/cluster/policies
//	Stats, Health           → /v2/stats, /healthz
//	Metrics                 → GET /metrics (parsed Prometheus exposition)
//
// Server-side failures surface as *APIError carrying the structured
// envelope's machine-readable code, message and request ID:
//
//	_, err := client.Predict(ctx, yalaclient.ModelID{NF: "NoSuchNF"}, "", params)
//	var apiErr *yalaclient.APIError
//	if errors.As(err, &apiErr) && apiErr.Code == "invalid_argument" { ... }
//
// # Wire transport
//
// WithWire(addr) routes Predict and PredictBatch over the server's
// yalawire binary listener (internal/wire) instead of HTTP — same
// results, same typed errors, no JSON or HTTP parsing on the hot path:
//
//	client := yalaclient.New("http://localhost:8844",
//		yalaclient.WithWire("localhost:8845"))
//	defer client.Close() // releases pooled wire connections
//
// The wire path is an additive fast lane, never a second contract: a
// transport failure falls back to HTTP transparently and parks the
// wire path for a grace window so a dead listener costs one failed
// dial, not one per request; WireActive reports whether the next call
// will attempt it. Caller cancellation surfaces as ctx.Err() and never
// parks the path. Every other method always rides HTTP.
//
// # Safety bounds
//
// Response bodies are read through a hard 10 MiB cap on both
// transports; anything larger fails with ErrResponseTooLarge instead
// of buffering without bound (mirroring the server's own request-body
// cap). Retry sleeps honor the server's Retry-After hint but are
// clamped to an internal ceiling (maxRetryAfterWait, 10s) so a
// misconfigured server cannot pin a retrying client indefinitely; the
// caller's context deadline always wins over any backoff schedule.
//
// The package depends only on the standard library, so external tools
// can vendor it without pulling in the simulator tree. See
// Example (package example) for an end-to-end walkthrough against an
// in-process server.
package yalaclient
