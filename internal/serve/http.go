package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/tenant"
)

// Handler exposes the service over HTTP/JSON. The resource-oriented,
// versioned /v2 API (httpv2.go) is the supported surface; the flat /v1
// endpoints remain as thin adapters over the same service methods —
// byte-for-byte compatible bodies, plus a Deprecation header pointing
// clients at their /v2 successor:
//
//	POST /v1/predict        PredictRequest  → PredictResponse
//	POST /v1/predict/batch  BatchRequest    → BatchResponse
//	POST /v1/compare        CompareRequest  → CompareResponse
//	POST /v1/admit          AdmitRequest    → AdmitResponse
//	POST /v1/diagnose       DiagnoseRequest → DiagnoseResponse
//	POST /v1/cluster/run    ClusterRunRequest → cluster.Comparison
//	GET  /v1/cluster/policies          → ClusterPoliciesResponse
//	GET  /v1/models                    → []ModelInfo
//	GET  /v1/stats                     → ServiceStats
//	POST /v1/reload    reloadRequest   → {"ok": true}
//	GET  /healthz                      → ok
//
// Every error path — including unknown routes and wrong methods —
// returns a JSON error envelope: /v1 keeps its flat {"error": "..."}
// shape, /v2 the structured code/message/request-id envelope.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	s.registerV1(mux)
	s.registerV2(mux)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	// Unknown paths get a structured 404 instead of net/http's plain
	// text; requestID tags every response for cross-log correlation.
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeErrorV2(w, r, http.StatusNotFound, codeNotFound,
			fmt.Sprintf("no such endpoint %s %s", r.Method, r.URL.Path), nil)
	})
	var h http.Handler = mux
	if s.cfg.Gate != nil {
		// The admission gate sits inside withObs — its 429/401 envelopes
		// carry the request ID the trace middleware minted — and outside
		// the business mux, so shed requests never reach a worker.
		h = s.cfg.Gate.Middleware(h)
	}
	return s.withObs(h)
}

// v1Route registers one /v1 endpoint: the method-bound handler, a
// deprecation header on every response, and a methodless fallback that
// turns net/http's text 405 into the /v1 JSON envelope.
func v1Route(mux *http.ServeMux, method, path string, h http.HandlerFunc) {
	mux.HandleFunc(method+" "+path, func(w http.ResponseWriter, r *http.Request) {
		setDeprecation(w, path)
		h(w, r)
	})
	mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		setDeprecation(w, path)
		w.Header().Set("Allow", method)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{fmt.Sprintf("method %s not allowed on %s (use %s)", r.Method, path, method)})
	})
}

// v1Successor maps a /v1 path to the /v2 surface the Deprecation link
// advertises.
var v1Successor = map[string]string{
	"/v1/predict":          "/v2/models/{nf}/{backend}:predict",
	"/v1/predict/batch":    "/v2/models:batchPredict",
	"/v1/compare":          "/v2/models/{nf}:compare",
	"/v1/admit":            "/v2/models/{nf}/{backend}:admit",
	"/v1/diagnose":         "/v2/models/{nf}:diagnose",
	"/v1/reload":           "/v2/models/{nf}/{backend}:reload",
	"/v1/models":           "/v2/models",
	"/v1/stats":            "/v2/stats",
	"/v1/cluster/run":      "/v2/cluster/runs",
	"/v1/cluster/policies": "/v2/cluster/policies",
}

// setDeprecation stamps the RFC 9745 deprecation header plus a
// successor-version link on a /v1 response. The CI smoke step gates on
// this header staying present.
func setDeprecation(w http.ResponseWriter, path string) {
	w.Header().Set("Deprecation", "true")
	if succ, ok := v1Successor[path]; ok {
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", succ))
	}
}

func (s *Service) registerV1(mux *http.ServeMux) {
	v1Route(mux, "POST", "/v1/cluster/run", func(w http.ResponseWriter, r *http.Request) {
		handleJSON(w, r, func(req ClusterRunRequest) (cluster.Comparison, error) {
			return s.ClusterRun(r.Context(), req)
		})
	})
	v1Route(mux, "GET", "/v1/cluster/policies", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, ClusterPoliciesResponse{Policies: cluster.Policies()})
	})
	v1Route(mux, "POST", "/v1/predict", func(w http.ResponseWriter, r *http.Request) {
		handleJSON(w, r, func(req PredictRequest) (PredictResponse, error) {
			return s.Predict(r.Context(), req)
		})
	})
	v1Route(mux, "POST", "/v1/predict/batch", func(w http.ResponseWriter, r *http.Request) {
		handleJSON(w, r, func(req BatchRequest) (BatchResponse, error) {
			return s.PredictBatch(r.Context(), req)
		})
	})
	v1Route(mux, "POST", "/v1/compare", func(w http.ResponseWriter, r *http.Request) {
		handleJSON(w, r, func(req CompareRequest) (CompareResponse, error) {
			return s.Compare(r.Context(), req)
		})
	})
	v1Route(mux, "POST", "/v1/admit", func(w http.ResponseWriter, r *http.Request) {
		handleJSON(w, r, func(req AdmitRequest) (AdmitResponse, error) {
			return s.Admit(r.Context(), req)
		})
	})
	v1Route(mux, "POST", "/v1/diagnose", func(w http.ResponseWriter, r *http.Request) {
		handleJSON(w, r, func(req DiagnoseRequest) (DiagnoseResponse, error) {
			return s.Diagnose(r.Context(), req)
		})
	})
	v1Route(mux, "GET", "/v1/models", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.reg.Models())
	})
	v1Route(mux, "GET", "/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	v1Route(mux, "POST", "/v1/reload", func(w http.ResponseWriter, r *http.Request) {
		handleJSON(w, r, func(req reloadRequest) (map[string]bool, error) {
			// An unknown backend or NF is the client's mistake: reject it
			// with a 400 rather than silently reloading nothing.
			backendName, err := ParseBackend(req.Backend)
			if err != nil {
				return nil, badRequestf("%v", err)
			}
			if err := validNF(req.NF); err != nil {
				return nil, err
			}
			s.Reload(backendName, req.NF)
			return map[string]bool{"ok": true}, nil
		})
	})
}

// reloadRequest names the model to evict from the registry.
type reloadRequest struct {
	NF      string `json:"nf"`
	Backend string `json:"backend,omitempty"`
}

// errorBody is the flat /v1 JSON error envelope. /v2 uses the structured
// envelope in httpv2.go.
type errorBody struct {
	Error string `json:"error"`
}

// errorStatus maps a service error to its HTTP status. Client-caused
// errors (unknown NF, malformed profile, unknown backend/policy) are
// 400; transient server conditions are 503 so retry policies keyed on
// 4xx-vs-5xx retry them; everything else is a scenario the client asked
// for that the service cannot answer (422).
func errorStatus(err error) int {
	switch {
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, ErrClosed), errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	}
	return http.StatusUnprocessableEntity
}

// errorStatusReq is errorStatus with the caller's request in hand: a
// cancellation error whose origin is the *request's own context* means
// the client went away, which is 499 (client closed request), not a
// 503 — a 5xx here would feed the tenant gate's windowed error rate
// and let a burst of client disconnects shed healthy traffic.
func errorStatusReq(r *http.Request, err error) int {
	if r.Context().Err() != nil &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return tenant.StatusClientClosedRequest
	}
	return errorStatus(err)
}

// handleJSON decodes one request type, runs the service call and encodes
// the response — the /v1 adapter.
func handleJSON[Req, Resp any](w http.ResponseWriter, r *http.Request, fn func(Req) (Resp, error)) {
	var req Req
	dsp := obs.StartSpan(r.Context(), "decode")
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	err := dec.Decode(&req)
	dsp.End()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
		return
	}
	resp, err := fn(req)
	if err != nil {
		writeJSON(w, errorStatusReq(r, err), errorBody{err.Error()})
		return
	}
	esp := obs.StartSpan(r.Context(), "encode")
	writeJSON(w, http.StatusOK, resp)
	esp.End()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// requestCounter feeds the per-request IDs; the header lets clients and
// the /v2 error envelope name a failing request in bug reports. The
// middleware that assigns (or adopts) the ID is withObs in metrics.go —
// it took over from the old withRequestID when IDs became the trace
// handle too.
var requestCounter atomic.Uint64

type ridKey struct{}

// requestID reads the request's ID back out of the context.
func requestID(r *http.Request) string {
	if rid, ok := r.Context().Value(ridKey{}).(string); ok {
		return rid
	}
	return ""
}
