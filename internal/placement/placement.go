// Package placement implements the paper's first use case (§7.5.1):
// online, contention-aware scheduling of arriving NFs onto a cluster of
// SmartNICs so as to minimize NICs used while meeting throughput SLAs.
//
// Strategies: Monopolization (one NF per NIC), Greedy (most free cores),
// and contention-aware placement driven by SLOMO or Yala predictions. An
// Oracle strategy that checks feasibility with actual co-runs stands in
// for the paper's exhaustive-search optimum (offline bin packing is
// NP-complete; the paper also compares against a search-based reference).
package placement

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/nicsim"
	"repro/internal/slomo"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

// Arrival is one NF arrival: a catalog NF with its traffic profile and an
// SLA expressed as the maximum tolerated throughput drop relative to solo
// (e.g. 0.1 = may lose at most 10%).
type Arrival struct {
	Name    string
	Profile traffic.Profile
	SLA     float64
}

// Strategy selects a placement policy.
type Strategy int

// Placement strategies, in the order of the paper's Table 6.
const (
	Monopolization Strategy = iota
	Greedy
	SLOMOAware
	YalaAware
	Oracle
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Monopolization:
		return "monopolization"
	case Greedy:
		return "greedy"
	case SLOMOAware:
		return "slomo"
	case YalaAware:
		return "yala"
	case Oracle:
		return "oracle"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// Result summarizes one placed sequence.
type Result struct {
	NICsUsed   int
	Violations int // NFs whose ground-truth throughput violates their SLA
	Total      int
}

// Simulator places NF arrival sequences under a strategy and evaluates
// the outcome against simulator ground truth.
type Simulator struct {
	TB    *testbed.Testbed
	Yala  map[string]*core.Model
	SLOMO map[string]*slomo.Model

	// NFCores is the per-NF core allocation; NICCores the per-NIC total.
	NFCores  int
	NICCores int

	soloCache  map[string]nicsim.Measurement
	coRunCache map[string][]nicsim.Measurement
}

// NewSimulator returns a placement simulator. The model maps may be nil
// for strategies that do not need them.
func NewSimulator(tb *testbed.Testbed, yala map[string]*core.Model, sl map[string]*slomo.Model) *Simulator {
	return &Simulator{
		TB: tb, Yala: yala, SLOMO: sl,
		NFCores:    2,
		NICCores:   tb.Config().Cores,
		soloCache:  map[string]nicsim.Measurement{},
		coRunCache: map[string][]nicsim.Measurement{},
	}
}

func arrivalKey(a Arrival) string {
	return fmt.Sprintf("%s@%s", a.Name, a.Profile)
}

// solo returns the cached solo measurement for an arrival.
func (s *Simulator) solo(a Arrival) (nicsim.Measurement, error) {
	key := arrivalKey(a)
	if m, ok := s.soloCache[key]; ok {
		return m, nil
	}
	m, err := s.TB.SoloNF(a.Name, a.Profile)
	if err != nil {
		return nicsim.Measurement{}, err
	}
	s.soloCache[key] = m
	return m, nil
}

// coRun measures a NIC's residents together, cached by the (sorted)
// resident multiset. The returned slice is ordered by the sorted keys.
func (s *Simulator) coRun(residents []Arrival) ([]nicsim.Measurement, []Arrival, error) {
	ordered := append([]Arrival(nil), residents...)
	sort.Slice(ordered, func(i, j int) bool {
		return arrivalKey(ordered[i]) < arrivalKey(ordered[j])
	})
	keys := make([]string, len(ordered))
	for i, a := range ordered {
		keys[i] = arrivalKey(a)
	}
	cacheKey := strings.Join(keys, "|")
	if ms, ok := s.coRunCache[cacheKey]; ok {
		return ms, ordered, nil
	}
	ws := make([]*nicsim.Workload, len(ordered))
	for i, a := range ordered {
		w, err := s.TB.Workload(a.Name, a.Profile)
		if err != nil {
			return nil, nil, err
		}
		ws[i] = w
	}
	ms, err := s.TB.Run(ws...)
	if err != nil {
		return nil, nil, err
	}
	s.coRunCache[cacheKey] = ms
	return ms, ordered, nil
}

// nic is one SmartNIC's residents during placement.
type nic struct {
	residents []Arrival
	cores     int
}

// Place runs the strategy over the arrival sequence and evaluates the
// final assignment against ground truth.
func (s *Simulator) Place(seq []Arrival, strat Strategy) (Result, error) {
	var nics []*nic
	for _, a := range seq {
		idx, err := s.chooseNIC(nics, a, strat)
		if err != nil {
			return Result{}, err
		}
		if idx < 0 {
			nics = append(nics, &nic{})
			idx = len(nics) - 1
		}
		nics[idx].residents = append(nics[idx].residents, a)
		nics[idx].cores += s.NFCores
	}
	res := Result{NICsUsed: len(nics), Total: len(seq)}
	for _, n := range nics {
		v, err := s.violations(n.residents)
		if err != nil {
			return Result{}, err
		}
		res.Violations += v
	}
	return res, nil
}

// chooseNIC returns the index of the NIC to place a on, or -1 for a new
// NIC.
func (s *Simulator) chooseNIC(nics []*nic, a Arrival, strat Strategy) (int, error) {
	fits := func(n *nic) bool { return n.cores+s.NFCores <= s.NICCores }
	switch strat {
	case Monopolization:
		return -1, nil
	case Greedy:
		// Most available resources first (the E3/Meili heuristic).
		best, bestFree := -1, -1
		for i, n := range nics {
			if !fits(n) {
				continue
			}
			if free := s.NICCores - n.cores; free > bestFree {
				best, bestFree = i, free
			}
		}
		return best, nil
	case SLOMOAware, YalaAware, Oracle:
		for i, n := range nics {
			if !fits(n) {
				continue
			}
			ok, err := s.feasible(n, a, strat)
			if err != nil {
				return 0, err
			}
			if ok {
				return i, nil
			}
		}
		return -1, nil
	}
	return 0, fmt.Errorf("placement: unknown strategy %v", strat)
}

// Fits reports whether a NIC already hosting residents NFs has the core
// budget for one more — the capacity half of the admission decision.
func (s *Simulator) Fits(residents int) bool {
	return (residents+1)*s.NFCores <= s.NICCores
}

// SeedSolo pre-populates the solo-measurement cache for an arrival. The
// serving layer shares its memoized deterministic measurements this way,
// so online feasibility checks skip re-simulating solos the server has
// already measured.
func (s *Simulator) SeedSolo(a Arrival, m nicsim.Measurement) {
	s.soloCache[arrivalKey(a)] = m
}

// Feasible reports whether adding a to a NIC already hosting residents
// keeps every NF (including a) within its SLA according to the strategy's
// predictor, and within the NIC's core budget — the same fits-plus-SLA
// pair Place applies. It is the admission-control primitive the serving
// layer (internal/serve) exposes online; Oracle additionally consults
// ground-truth co-runs.
func (s *Simulator) Feasible(residents []Arrival, a Arrival, strat Strategy) (bool, error) {
	if !s.Fits(len(residents)) {
		return false, nil
	}
	return s.feasible(&nic{residents: residents}, a, strat)
}

// feasible predicts whether adding a to the NIC keeps every resident
// (including a) within its SLA, according to the strategy's model.
func (s *Simulator) feasible(n *nic, a Arrival, strat Strategy) (bool, error) {
	all := append(append([]Arrival(nil), n.residents...), a)
	if strat == Oracle {
		ms, ordered, err := s.coRun(all)
		if err != nil {
			return false, err
		}
		for i, r := range ordered {
			solo, err := s.solo(r)
			if err != nil {
				return false, err
			}
			if ms[i].Throughput < (1-r.SLA)*solo.Throughput {
				return false, nil
			}
		}
		return true, nil
	}
	for ti, target := range all {
		var comps []core.Competitor
		var agg nicsim.Counters
		// Skip by index, not value: two identical arrivals (same NF,
		// profile and SLA) are distinct residents and contend with each
		// other.
		for oi, other := range all {
			if oi == ti {
				continue
			}
			m, err := s.solo(other)
			if err != nil {
				return false, err
			}
			comps = append(comps, core.CompetitorFromMeasurement(m))
			agg.Add(m.Counters)
		}
		solo, err := s.solo(target)
		if err != nil {
			return false, err
		}
		var predicted float64
		switch strat {
		case YalaAware:
			model, ok := s.Yala[target.Name]
			if !ok {
				return false, fmt.Errorf("placement: no Yala model for %s", target.Name)
			}
			predicted = model.Predict(target.Profile, comps).Throughput
		case SLOMOAware:
			model, ok := s.SLOMO[target.Name]
			if !ok {
				return false, fmt.Errorf("placement: no SLOMO model for %s", target.Name)
			}
			predicted = model.PredictExtrapolated(agg, solo.Throughput)
		}
		if predicted < (1-target.SLA)*solo.Throughput {
			return false, nil
		}
	}
	return true, nil
}

// batchKey identifies one (NF, profile) pair without string formatting —
// the per-call memo key FeasibleBatch uses instead of the simulator's
// string-keyed caches, whose fmt.Sprintf rendering dominates tight
// scheduling loops.
type batchKey struct {
	name string
	prof traffic.Profile
}

// batchState carries the buffers and memos one FeasibleBatch call reuses
// across candidate sets: solo measurements and competitor feature
// vectors per distinct (NF, profile), the Yala solo-model prediction per
// target, and a competitor slice that grows once and is re-sliced per
// evaluation.
type batchState struct {
	solos     map[batchKey]nicsim.Measurement
	comps     map[batchKey]core.Competitor
	soloPreds map[batchKey]float64
	compBuf   []core.Competitor
}

// solo resolves a measured solo through the per-call memo.
func (e *batchState) solo(s *Simulator, a Arrival) (nicsim.Measurement, error) {
	key := batchKey{a.Name, a.Profile}
	if m, ok := e.solos[key]; ok {
		return m, nil
	}
	m, err := s.solo(a)
	if err != nil {
		return nicsim.Measurement{}, err
	}
	e.solos[key] = m
	return m, nil
}

// competitor resolves an arrival's predictor-facing feature vector once
// per distinct (NF, profile).
func (e *batchState) competitor(s *Simulator, a Arrival) (core.Competitor, error) {
	key := batchKey{a.Name, a.Profile}
	if c, ok := e.comps[key]; ok {
		return c, nil
	}
	m, err := e.solo(s, a)
	if err != nil {
		return core.Competitor{}, err
	}
	c := core.CompetitorFromMeasurement(m)
	e.comps[key] = c
	return c, nil
}

// soloPredict memoizes the Yala solo-model prediction per target — the
// model is per-NF, so the (NF, profile) key pins it.
func (e *batchState) soloPredict(model *core.Model, a Arrival) float64 {
	key := batchKey{a.Name, a.Profile}
	if v, ok := e.soloPreds[key]; ok {
		return v
	}
	v := model.Solo.Predict(a.Profile)
	e.soloPreds[key] = v
	return v
}

// FeasibleBatch evaluates adding a to every candidate resident set in
// one pass — the batched form of Feasible the class-aware fleet
// scheduler scores all (NIC, class) slots through. Verdicts are
// bit-identical to calling Feasible per set (same fits-plus-SLA pair,
// same feature assembly order), but the per-arrival work is amortized:
// solo measurements, competitor vectors and solo-model predictions
// resolve once per distinct (NF, profile) per call, predictions go
// through core.PredictThroughput (no per-resource map), and the
// competitor buffer is reused across sets. Oracle feasibility needs
// per-set ground-truth co-runs, so it falls back to the per-set path.
func (s *Simulator) FeasibleBatch(sets [][]Arrival, a Arrival, strat Strategy) ([]bool, error) {
	out := make([]bool, len(sets))
	if strat == Oracle {
		for i, set := range sets {
			ok, err := s.Feasible(set, a, strat)
			if err != nil {
				return nil, err
			}
			out[i] = ok
		}
		return out, nil
	}
	e := &batchState{
		solos:     map[batchKey]nicsim.Measurement{},
		comps:     map[batchKey]core.Competitor{},
		soloPreds: map[batchKey]float64{},
	}
	for i, set := range sets {
		ok, err := s.feasibleBatched(e, set, a, strat)
		if err != nil {
			return nil, err
		}
		out[i] = ok
	}
	return out, nil
}

// feasibleBatched answers one set through the batch state. The SLA pass
// iterates targets and competitors in the same index order as feasible,
// so float accumulation (and therefore the verdict) matches it exactly.
func (s *Simulator) feasibleBatched(e *batchState, set []Arrival, a Arrival, strat Strategy) (bool, error) {
	if !s.Fits(len(set)) {
		return false, nil
	}
	n := len(set) + 1
	at := func(i int) Arrival {
		if i < len(set) {
			return set[i]
		}
		return a
	}
	for ti := 0; ti < n; ti++ {
		target := at(ti)
		soloMeas, err := e.solo(s, target)
		if err != nil {
			return false, err
		}
		var predicted float64
		switch strat {
		case YalaAware:
			model, ok := s.Yala[target.Name]
			if !ok {
				return false, fmt.Errorf("placement: no Yala model for %s", target.Name)
			}
			comps := e.compBuf[:0]
			for oi := 0; oi < n; oi++ {
				if oi == ti {
					continue
				}
				c, err := e.competitor(s, at(oi))
				if err != nil {
					return false, err
				}
				comps = append(comps, c)
			}
			e.compBuf = comps[:0]
			predicted = model.PredictThroughput(target.Profile, comps, e.soloPredict(model, target))
		case SLOMOAware:
			model, ok := s.SLOMO[target.Name]
			if !ok {
				return false, fmt.Errorf("placement: no SLOMO model for %s", target.Name)
			}
			var agg nicsim.Counters
			for oi := 0; oi < n; oi++ {
				if oi == ti {
					continue
				}
				m, err := e.solo(s, at(oi))
				if err != nil {
					return false, err
				}
				agg.Add(m.Counters)
			}
			predicted = model.PredictExtrapolated(agg, soloMeas.Throughput)
		default:
			return false, fmt.Errorf("placement: FeasibleBatch does not support strategy %v", strat)
		}
		if predicted < (1-target.SLA)*soloMeas.Throughput {
			return false, nil
		}
	}
	return true, nil
}

// Violations counts residents whose ground-truth throughput breaks
// their SLA when co-run together. It is the enforcement probe the fleet
// orchestrator (internal/cluster) applies after every placement and
// drift; co-runs are cached by resident multiset, so re-checking an
// unchanged NIC is a lookup.
func (s *Simulator) Violations(residents []Arrival) (int, error) {
	return s.violations(residents)
}

// violations counts residents whose ground-truth throughput breaks their
// SLA.
func (s *Simulator) violations(residents []Arrival) (int, error) {
	if len(residents) <= 1 {
		return 0, nil
	}
	ms, ordered, err := s.coRun(residents)
	if err != nil {
		return 0, err
	}
	count := 0
	for i, r := range ordered {
		solo, err := s.solo(r)
		if err != nil {
			return 0, err
		}
		if ms[i].Throughput < (1-r.SLA)*solo.Throughput {
			count++
		}
	}
	return count, nil
}
