package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/tenant"
)

// tenantTestServer boots a service with the admission gate mounted: one
// tenant capped at a single request of burst, keyless traffic allowed
// but unlimited.
func tenantTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	reg, err := tenant.Parse([]byte(`{
		"tenants": [{"name": "capped", "key": "k-capped", "rps": 1, "burst": 1}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(ServiceConfig{
		Registry: testRegistryConfig(t),
		Workers:  2,
		Gate:     tenant.NewGate(reg, tenant.GateConfig{}),
	})
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// postPredictAs posts a stub-backend predict as the given tenant key
// ("" = anonymous) and returns the response plus body.
func postPredictAs(t *testing.T, ts *httptest.Server, key string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v2/models/ACL/fake:predict", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestTenantGateOnService drives the gate through a real service: the
// capped tenant's second request sheds with the full 429 contract while
// anonymous traffic is untouched, and the shed surfaces in /metrics.
func TestTenantGateOnService(t *testing.T) {
	ts := tenantTestServer(t)

	// Burst of one: first capped request succeeds against the stub
	// backend, the second sheds.
	if resp, body := postPredictAs(t, ts, "k-capped"); resp.StatusCode != http.StatusOK {
		t.Fatalf("first capped request: %d %s", resp.StatusCode, body)
	}
	resp, body := postPredictAs(t, ts, "k-capped")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second capped request: %d, want 429 (%s)", resp.StatusCode, body)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want integer ≥ 1", resp.Header.Get("Retry-After"))
	}
	var envelope struct {
		Error struct {
			Code      string `json:"code"`
			Message   string `json:"message"`
			RequestID string `json:"request_id"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &envelope); err != nil {
		t.Fatalf("decoding 429 body %s: %v", body, err)
	}
	if envelope.Error.Code != tenant.CodeResourceExhausted {
		t.Fatalf("code = %q, want resource_exhausted", envelope.Error.Code)
	}
	// The envelope's request_id must match the response header — the
	// same ID names the request in logs and in the error body.
	if rid := resp.Header.Get("X-Request-Id"); envelope.Error.RequestID != rid || rid == "" {
		t.Fatalf("request_id %q != header %q", envelope.Error.RequestID, rid)
	}

	// Anonymous traffic rides the unlimited default tenant.
	for i := 0; i < 5; i++ {
		if resp, body := postPredictAs(t, ts, ""); resp.StatusCode != http.StatusOK {
			t.Fatalf("anonymous request %d: %d %s", i, resp.StatusCode, body)
		}
	}

	// The shed lands in the yala_tenant_* series on /metrics.
	mresp, metrics := roundTrip(t, ts, http.MethodGet, "/metrics", "")
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", mresp.StatusCode)
	}
	for _, want := range []string{
		`yala_tenant_shed_total{reason="rate_limited",tenant="capped"} 1`,
		`yala_tenant_requests_total{tenant="capped"} 1`,
		`yala_tenant_requests_total{tenant="anonymous"}`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestTenant429Golden pins the exact 429 envelope clients program
// against, next to the 400 envelope fixture.
func TestTenant429Golden(t *testing.T) {
	ts := tenantTestServer(t)
	if resp, body := postPredictAs(t, ts, "k-capped"); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up request: %d %s", resp.StatusCode, body)
	}
	resp, body := postPredictAs(t, ts, "k-capped")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	checkGolden(t, "v2_tenant_429_envelope.json", canonJSON(t, body))
}
