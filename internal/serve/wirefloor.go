package serve

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// WireFloorReport is the raw-transport ceiling measurement `yala
// loadgen -wirefloor` produces: TypeEcho frames carry no gate, no
// cache and no prediction, so frames/s here is what the framing,
// socket and scheduler cost alone allows. Comparing it against a wire
// predict run separates "the transport is the bottleneck" from "the
// serving stack is".
type WireFloorReport struct {
	Frames   int           `json:"frames"`
	Payload  int           `json:"payload_bytes"`
	Workers  int           `json:"workers"`
	Errors   int           `json:"errors"`
	Duration time.Duration `json:"duration"`
	FPS      float64       `json:"fps"`
	P50      time.Duration `json:"p50"`
	P99      time.Duration `json:"p99"`
}

// String renders the report for the CLI.
func (r WireFloorReport) String() string {
	return fmt.Sprintf("wire floor  %d echo frames (%d B payload, %d workers, %d errors)\nduration    %v\nthroughput  %.0f frames/s\nlatency     p50 %v  p99 %v",
		r.Frames, r.Payload, r.Workers, r.Errors,
		r.Duration.Round(time.Millisecond), r.FPS,
		r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond))
}

// WireEchoFloor measures the yalawire transport floor against a live
// wire listener: workers persistent connections exchanging frames
// round trips of TypeEcho frames carrying payloadBytes of opaque data.
func WireEchoFloor(addr string, workers, frames, payloadBytes int) (WireFloorReport, error) {
	if workers <= 0 {
		workers = 8
	}
	if frames <= 0 {
		frames = 100000
	}
	if payloadBytes < 0 {
		payloadBytes = 0
	}
	pool := wire.NewPool(addr, "", workers)
	defer pool.Close()
	payload := bytes.Repeat([]byte{0xab}, payloadBytes)

	var (
		issued    atomic.Int64
		errs      atomic.Int64
		firstErr  atomic.Pointer[error]
		latencies = make([][]time.Duration, workers)
		wg        sync.WaitGroup
	)
	start := time.Now()
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for {
				if issued.Add(1) > int64(frames) {
					return
				}
				t0 := time.Now()
				err := pool.Do(context.Background(), wire.TypeEcho, payload, func(f wire.Frame) error {
					if f.Type != wire.TypeEchoAck {
						return fmt.Errorf("serve: echo answered with frame type %d", f.Type)
					}
					return nil
				})
				latencies[wk] = append(latencies[wk], time.Since(t0))
				if err != nil {
					errs.Add(1)
					firstErr.CompareAndSwap(nil, &err)
				}
			}
		}(wk)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rep := WireFloorReport{
		Frames:   len(all),
		Payload:  payloadBytes,
		Workers:  workers,
		Errors:   int(errs.Load()),
		Duration: elapsed,
	}
	if elapsed > 0 {
		rep.FPS = float64(len(all)) / elapsed.Seconds()
	}
	if len(all) > 0 {
		rep.P50 = percentile(all, 0.50)
		rep.P99 = percentile(all, 0.99)
	}
	if ep := firstErr.Load(); ep != nil && rep.Errors > 0 {
		return rep, fmt.Errorf("serve: wire floor: %d/%d frames failed (first: %w)", rep.Errors, rep.Frames, *ep)
	}
	return rep, nil
}
