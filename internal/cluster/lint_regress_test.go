package cluster

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/nicsim"
)

// TestClassCfgDeterministic is the regression test for the lint-found
// nondeterminism in onlineLoop.classCfg: it used to take the first
// match out of a map range, so two replays of one recorded run could
// train against different classEnv instances (and their separately
// warmed co-run caches) when a class name carried several core-budget
// overrides. The walk is over sorted keys now — the same env every
// time, regardless of construction order.
func TestClassCfgDeterministic(t *testing.T) {
	build := func(coreOrder []int) *Env {
		e := testEnv(t, nil)
		for _, cores := range coreOrder {
			if _, err := e.classEnv(ClassSpec{Class: "bluefield2", Cores: cores}); err != nil {
				t.Fatalf("classEnv(cores=%d): %v", cores, err)
			}
		}
		return e
	}
	want := classKey{name: "bluefield2", cores: 2}
	for _, order := range [][]int{{2, 3, 4}, {4, 3, 2}, {3, 2, 4}} {
		l := &onlineLoop{env: build(order)}
		for i := 0; i < 10; i++ {
			ce, err := l.classCfg("bluefield2")
			if err != nil {
				t.Fatal(err)
			}
			if ce.key != want {
				t.Fatalf("insertion order %v, lookup %d: classCfg chose %+v, want %+v", order, i, ce.key, want)
			}
		}
	}
}

// TestSortedClassKeysOrder pins the helper the determinism fixes hang
// off: keys come back ordered by (name, cores), independent of map
// insertion order.
func TestSortedClassKeysOrder(t *testing.T) {
	e := testEnv(t, nil)
	for _, spec := range []ClassSpec{
		{Class: "pensando", Cores: 2},
		{Class: "bluefield2", Cores: 4},
		{Class: "bluefield2", Cores: 2},
	} {
		if _, err := e.classEnv(spec); err != nil {
			t.Fatal(err)
		}
	}
	got := e.sortedClassKeys()
	want := []classKey{
		{}, // NewEnv's base environment
		{name: "bluefield2", cores: 2},
		{name: "bluefield2", cores: 4},
		{name: "pensando", cores: 2},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sortedClassKeys = %+v, want %+v", got, want)
	}
}

// TestDecisionTimingIsReportingOnly is the regression test for the
// wallclock finding at orchestrator.decide: decision timing samples the
// host clock, which is fine exactly as long as it stays measurement.
// Two runs of one scenario under wildly different injected clocks must
// agree on every replay-visible field; only the latency report may
// move. If someone threads decide's stopwatch into scheduling state,
// this fails loudly.
func TestDecisionTimingIsReportingOnly(t *testing.T) {
	old := decisionClock
	defer func() { decisionClock = old }()

	runWith := func(step time.Duration) PolicyResult {
		var virtual time.Time
		decisionClock = func() time.Time {
			virtual = virtual.Add(step)
			return virtual
		}
		env := NewEnv(nicsim.BlueField2(), 1, MapModels{})
		sc := Scenario{NICs: 2, Arrivals: 8, Seed: 7, NFs: testNFs, Profiles: 2}.WithDefaults()
		policy, err := NewScheduler("firstfit", env, sc.Seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := env.RunPolicy(context.Background(), sc, policy)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	fast := runWith(time.Microsecond)
	slow := runWith(time.Hour)

	if fast.DecisionP50 >= slow.DecisionP50 {
		t.Fatalf("injected clock did not reach the latency report: fast p50 %v, slow p50 %v",
			fast.DecisionP50, slow.DecisionP50)
	}
	fast.DecisionP50, fast.DecisionP99 = 0, 0
	slow.DecisionP50, slow.DecisionP99 = 0, 0
	if !reflect.DeepEqual(fast, slow) {
		t.Fatalf("wall clock leaked into replay-visible state:\n fast: %+v\n slow: %+v", fast, slow)
	}
}
