package backend

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/nicsim"
	"repro/internal/profiling"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

// tinyYala is a minimal-cost training config: these tests assert
// interface plumbing and save/load fidelity, not model quality.
func tinyYala(seed uint64) core.TrainConfig {
	cfg := core.DefaultTrainConfig()
	cfg.Seed = seed
	cfg.Plan = profiling.Random(12, seed)
	cfg.PatternProbes = 1
	cfg.GBR = ml.GBRConfig{Trees: 25, LearningRate: 0.15, MaxDepth: 3, MinLeaf: 2, Subsample: 1, Seed: seed}
	return cfg
}

func tinySLOMO(seed uint64) SLOMOOptions {
	cfg := QuickSLOMOConfig(seed)
	cfg.Samples = 12
	cfg.GBR = ml.GBRConfig{Trees: 25, LearningRate: 0.15, MaxDepth: 3, MinLeaf: 2, Subsample: 1, Seed: seed}
	return SLOMOOptions{Config: cfg}
}

func TestBuiltinsRegistered(t *testing.T) {
	for _, name := range []string{"yala", "slomo"} {
		b, ok := Get(name)
		if !ok || b.Name() != name {
			t.Fatalf("builtin %q not registered", name)
		}
	}
	if _, ok := Get("nope"); ok {
		t.Fatal("unregistered backend resolved")
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted/unique: %v", names)
		}
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(yalaBackend{})
}

// scenario builds a Scenario over measured solos on a shared testbed.
func scenario(t *testing.T, tb *testbed.Testbed, comps []string, solo float64) Scenario {
	t.Helper()
	sc := Scenario{
		Profile: traffic.Default,
		Solo:    func() (float64, error) { return solo, nil },
	}
	for _, name := range comps {
		m, err := tb.SoloNF(name, traffic.Default)
		if err != nil {
			t.Fatal(err)
		}
		mm := m
		sc.Competitors = append(sc.Competitors, Competitor{NF: name, Profile: traffic.Default, Solo: &mm})
	}
	return sc
}

// TestBuiltinRoundTrip trains each builtin, saves and reloads it, and
// asserts the reloaded model predicts identically — plus foreign-model
// rejection and batch/plain agreement.
func TestBuiltinRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("model training is slow")
	}
	env := TrainEnv{NIC: nicsim.BlueField2(), Seed: 1}
	tb := testbed.New(env.NIC, env.Seed)
	soloM, err := tb.SoloNF("FlowStats", traffic.Default)
	if err != nil {
		t.Fatal(err)
	}
	opts := map[string]any{"yala": tinyYala(1), "slomo": tinySLOMO(1)}
	dir := t.TempDir()
	for _, name := range []string{"yala", "slomo"} {
		b, _ := Get(name)
		env.Options = opts[name]
		m, err := b.Train(env, "FlowStats")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.NF() != "FlowStats" {
			t.Fatalf("%s: NF() = %q", name, m.NF())
		}
		sc := scenario(t, tb, []string{"ACL", "NAT"}, soloM.Throughput)
		pred, err := b.Predict(m, sc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if pred.PredictedPPS <= 0 || pred.SoloPPS <= 0 {
			t.Fatalf("%s: implausible prediction %+v", name, pred)
		}

		path := filepath.Join(dir, name+".json")
		if err := b.Save(m, path); err != nil {
			t.Fatal(err)
		}
		loaded, err := b.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		pred2, err := b.Predict(loaded, sc)
		if err != nil {
			t.Fatal(err)
		}
		if pred2.PredictedPPS != pred.PredictedPPS || pred2.SoloPPS != pred.SoloPPS {
			t.Fatalf("%s: reloaded model diverged: %+v vs %+v", name, pred2, pred)
		}

		// The batched evaluator agrees exactly with the plain path.
		batch := NewBatch(b)
		got, err := batch.Predict(m, Key{NF: "FlowStats", Profile: traffic.Default}, sc.Competitors, soloM.Throughput)
		if err != nil {
			t.Fatal(err)
		}
		if got != pred.PredictedPPS {
			t.Fatalf("%s: batch %g != plain %g", name, got, pred.PredictedPPS)
		}

		// A foreign model handle errors instead of panicking.
		other := "yala"
		if name == "yala" {
			other = "slomo"
		}
		ob, _ := Get(other)
		if _, err := ob.Predict(m, sc); err == nil {
			t.Fatalf("%s model accepted by %s backend", name, other)
		}
	}
}

// stubBackend is a registration-only backend for the concurrency test.
type stubBackend struct{ name string }

func (s stubBackend) Name() string                                { return s.name }
func (s stubBackend) Train(TrainEnv, string) (Model, error)       { return nil, fmt.Errorf("stub") }
func (s stubBackend) Predict(Model, Scenario) (Prediction, error) { return Prediction{}, nil }
func (s stubBackend) Save(Model, string) error                    { return nil }
func (s stubBackend) Load(string) (Model, error)                  { return nil, fmt.Errorf("stub") }

// TestRegisterConcurrent hammers Register, Get and Names from many
// goroutines — run under -race — to lock in the registry's
// thread-safety.
func TestRegisterConcurrent(t *testing.T) {
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("race-stub-%d", i)
			Register(stubBackend{name: name})
			if _, ok := Get(name); !ok {
				t.Errorf("backend %s missing right after Register", name)
			}
			Names() // concurrent reads must not race the writes
		}(i)
	}
	wg.Wait()
	if len(Names()) < n {
		t.Fatalf("Names() lists %d backends, want at least %d", len(Names()), n)
	}
}
