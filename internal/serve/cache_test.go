package serve

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(cacheShards) // one entry per shard
	// Find two keys in the same shard so eviction is observable.
	base := "key-0"
	var sibling string
	for i := 1; i < 10000; i++ {
		k := fmt.Sprintf("key-%d", i)
		if c.shard(k) == c.shard(base) {
			sibling = k
			break
		}
	}
	if sibling == "" {
		t.Fatal("no same-shard sibling found")
	}
	c.Put(base, 1)
	c.Put(sibling, 2) // evicts base (shard capacity 1)
	if _, ok := c.Get(base); ok {
		t.Fatal("expected LRU eviction of the older same-shard key")
	}
	if v, ok := c.Get(sibling); !ok || v.(int) != 2 {
		t.Fatalf("expected sibling resident with value 2, got %v %v", v, ok)
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestCacheRecencyOrder(t *testing.T) {
	c := NewCache(2 * cacheShards) // capacity 2 per shard
	base := "k0"
	var k1, k2 string
	for i := 1; k2 == ""; i++ {
		k := fmt.Sprintf("k%d", i)
		if c.shard(k) == c.shard(base) {
			if k1 == "" {
				k1 = k
			} else {
				k2 = k
			}
		}
	}
	c.Put(base, 0)
	c.Put(k1, 1)
	c.Get(base)  // refresh base → k1 is now LRU
	c.Put(k2, 2) // evicts k1
	if _, ok := c.Get(k1); ok {
		t.Fatal("expected k1 evicted (least recently used)")
	}
	if _, ok := c.Get(base); !ok {
		t.Fatal("expected refreshed key to survive eviction")
	}
}

// TestCacheEvictMatching checks targeted invalidation drops exactly the
// matching entries, across shards, without touching the eviction stat.
func TestCacheEvictMatching(t *testing.T) {
	c := NewCache(256)
	for i := 0; i < 64; i++ {
		prefix := "keep"
		if i%4 == 0 {
			prefix = "drop"
		}
		c.Put(fmt.Sprintf("%s-%d", prefix, i), i)
	}
	dropped := c.EvictMatching(func(key string) bool {
		return key[:4] == "drop"
	})
	if dropped != 16 {
		t.Fatalf("dropped %d entries, want 16", dropped)
	}
	if c.Len() != 48 {
		t.Fatalf("len = %d after targeted eviction, want 48", c.Len())
	}
	for i := 0; i < 64; i++ {
		_, ok := c.getQuiet(fmt.Sprintf("keep-%d", i))
		if i%4 != 0 && !ok {
			t.Fatalf("keep-%d missing after unrelated eviction", i)
		}
	}
	if _, ok := c.getQuiet("drop-0"); ok {
		t.Fatal("matched entry survived EvictMatching")
	}
	if st := c.Stats(); st.Evictions != 0 {
		t.Fatalf("targeted eviction counted as capacity eviction: %d", st.Evictions)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(-1)
	c.Put("k", 1)
	if _, ok := c.Get("k"); ok {
		t.Fatal("disabled cache must not retain entries")
	}
}

// TestCacheConcurrent hammers all shards from many goroutines; run under
// -race to check shard locking.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				k := fmt.Sprintf("key-%d", (g*7+i)%512)
				if v, ok := c.Get(k); ok {
					if v.(string) != k {
						t.Errorf("cache returned %v for key %s", v, k)
						return
					}
				} else {
					c.Put(k, k)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 256 {
		t.Fatalf("cache over capacity: %d", c.Len())
	}
	st := c.Stats()
	if st.Hits+st.Misses != 8*1000 {
		t.Fatalf("hits+misses = %d, want %d", st.Hits+st.Misses, 8*1000)
	}
}
