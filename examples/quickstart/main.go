// Quickstart: predict FlowMonitor's throughput when co-located with
// NIDS and FlowStats — first offline (train a model, call it directly),
// then online (serve predictions over the versioned /v2 HTTP API and
// query it through the public pkg/yalaclient SDK), and compare both
// against the simulated ground truth. The equivalent of the paper
// artifact's train.py / predict.py walk-through, extended to the
// serving deployment an operator would actually run.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"

	"repro/internal/core"
	"repro/internal/nicsim"
	"repro/internal/serve"
	"repro/internal/testbed"
	"repro/internal/traffic"
	"repro/pkg/yalaclient"
)

func main() {
	// A testbed binds the simulated BlueField-2 to the NF catalog.
	tb := testbed.New(nicsim.BlueField2(), 42)

	// Offline phase (§3): adaptive profiling + model fitting. This runs
	// FlowMonitor's real packet-processing code over generated traffic,
	// co-runs it with mem-bench and regex-bench, and fits the
	// per-resource models.
	fmt.Println("training Yala model for FlowMonitor...")
	model, err := core.NewTrainer(tb, core.DefaultTrainConfig()).Train("FlowMonitor")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  detected execution pattern: %v\n", model.Pattern)
	am := model.Accels[nicsim.AccelRegex]
	fmt.Printf("  regex model: n=%g queues, t(m) = %.0fns + %.3fns·MTBR\n",
		am.Queues, am.T0*1e9, am.A*1e9)

	// Online phase: describe the co-location. Competitor contention
	// levels come from their offline solo profiles.
	var comps []core.Competitor
	ws := []*nicsim.Workload{}
	target, err := tb.Workload("FlowMonitor", traffic.Default)
	if err != nil {
		log.Fatal(err)
	}
	ws = append(ws, target)
	for _, name := range []string{"NIDS", "FlowStats"} {
		w, err := tb.Workload(name, traffic.Default)
		if err != nil {
			log.Fatal(err)
		}
		solo, err := tb.RunSolo(w)
		if err != nil {
			log.Fatal(err)
		}
		comps = append(comps, core.CompetitorFromMeasurement(solo))
		ws = append(ws, w)
	}

	pred := model.Predict(traffic.Default, comps)
	fmt.Printf("\npredicted solo throughput:       %.3f Mpps\n", pred.Solo/1e6)
	fmt.Printf("predicted co-located throughput: %.3f Mpps\n", pred.Throughput/1e6)
	fmt.Printf("predicted bottleneck:            %v\n", pred.Bottleneck)

	// Ground truth from the simulator.
	ms, err := tb.Run(ws...)
	if err != nil {
		log.Fatal(err)
	}
	truth := ms[0].Throughput
	errPct := 100 * abs(pred.Throughput-truth) / truth
	fmt.Printf("measured co-located throughput:  %.3f Mpps\n", truth/1e6)
	fmt.Printf("prediction error:                %.1f%%\n", errPct)

	// Serving phase: the same question answered over the wire, the way a
	// production consumer would ask it — `yala serve` behind the /v2 API,
	// queried through the typed SDK. The quick on-demand training config
	// keeps the demo fast; deployments point -models at offline-trained
	// artifacts.
	fmt.Println("\nstarting the prediction service (/v2) and querying it via pkg/yalaclient...")
	svc := serve.NewService(serve.ServiceConfig{Registry: serve.RegistryConfig{Seed: 42}})
	defer svc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: svc.Handler()}
	go srv.Serve(ln)
	defer srv.Close()

	client := yalaclient.New("http://" + ln.Addr().String())
	ctx := context.Background()
	served, err := client.Predict(ctx, yalaclient.ModelID{NF: "FlowMonitor"}, "",
		yalaclient.PredictParams{Competitors: []yalaclient.Competitor{
			{Name: "NIDS"}, {Name: "FlowStats"},
		}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("served prediction (%s backend):  %.3f Mpps, bottleneck %s\n",
		served.Backend, served.PredictedPPS/1e6, served.Bottleneck)

	models, err := client.AllModels(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("models now resident on the server: %d\n", len(models))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
