package tenant

import (
	"fmt"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// GateConfig tunes the admission gate. The zero value is completed by
// NewGate with the defaults below.
type GateConfig struct {
	// BulkShedAt is the load score at which bulk requests shed; default
	// 0.75. Bulk work always sheds before interactive work.
	BulkShedAt float64
	// InteractiveShedAt is the load score at which interactive requests
	// shed; default 0.95 — only near saturation.
	InteractiveShedAt float64
	// P99SLO is the latency objective the windowed p99 is normalized
	// against; default 250ms.
	P99SLO time.Duration
	// MaxErrorRate normalizes the windowed server-error rate; default
	// 0.10 (a 10% error rate alone saturates the signal).
	MaxErrorRate float64
	// OverloadRetryAfter is the Retry-After advertised on overload sheds
	// (rate-limit sheds advertise the bucket's own refill time); default
	// 1s.
	OverloadRetryAfter time.Duration
	// WindowSize is the ring-buffer sample count behind the windowed p99
	// and error-rate signals; default 512.
	WindowSize int
	// WindowAge bounds how long a completed request keeps feeding the
	// pressure signals; default 10s. Only admitted requests are
	// observed, so without an age-out a latency spike that drives the
	// gate to shed everything would starve the window of fresh samples
	// and latch the gate shut on the spike's stale p99 forever.
	WindowAge time.Duration
	// ShedDelay stalls each rate-limited refusal before the 429 is
	// written, tarpitting abusers: a keep-alive client hammering past
	// its quota spends its connection's time waiting on in-flight 429s
	// instead of burning server CPU with ever more attempts. Only
	// bucket sheds stall — overload sheds hit within-quota tenants who
	// should hear "back off" as fast as possible. Default 10ms;
	// negative disables.
	ShedDelay time.Duration
}

func (c *GateConfig) fillDefaults() {
	if c.BulkShedAt <= 0 {
		c.BulkShedAt = 0.75
	}
	if c.InteractiveShedAt <= 0 {
		c.InteractiveShedAt = 0.95
	}
	if c.P99SLO <= 0 {
		c.P99SLO = 250 * time.Millisecond
	}
	if c.MaxErrorRate <= 0 {
		c.MaxErrorRate = 0.10
	}
	if c.OverloadRetryAfter <= 0 {
		c.OverloadRetryAfter = time.Second
	}
	if c.WindowSize <= 0 {
		c.WindowSize = 512
	}
	if c.WindowAge <= 0 {
		c.WindowAge = 10 * time.Second
	}
	if c.ShedDelay == 0 {
		c.ShedDelay = 10 * time.Millisecond
	}
	if c.ShedDelay < 0 {
		c.ShedDelay = 0
	}
}

// sample is one completed request in the sliding window.
type sample struct {
	seconds float64
	isErr   bool
	at      int64 // mono nanos since the gate's epoch
}

// Gate is the admission controller: it resolves tenants, charges token
// buckets, and sheds load from combined pressure signals. One Gate is
// shared by every handler on a server (and its metrics middleware); all
// methods are safe for concurrent use.
type Gate struct {
	reg *Registry
	cfg GateConfig

	// queue reports embedding-layer queue occupancy in [0,1] (serve:
	// job-queue fill; gateway: inflight vs fleet capacity). Optional.
	queue atomic.Pointer[func() float64]

	// Sliding window over completed requests feeding the p99 and
	// error-rate pressure signals.
	winMu  sync.Mutex
	win    []sample
	winPos int
	winLen int

	// Cached load score, recomputed at most every scoreTTL so the
	// admission fast path is two atomic loads when fresh.
	scoreBits atomic.Uint64 // math.Float64bits of the cached score
	scoreAt   atomic.Int64  // mono nanos of the cache fill
	scoreMu   sync.Mutex
	epoch     time.Time

	shedTotal atomic.Uint64
	obsReg    atomic.Pointer[obs.Registry]
}

// scoreTTL bounds how stale the cached load score may be.
const scoreTTL = 100 * time.Millisecond

// NewGate builds a gate over a tenant registry. A nil registry gets the
// anonymous-only default.
func NewGate(reg *Registry, cfg GateConfig) *Gate {
	if reg == nil {
		reg = AnonymousOnly()
	}
	cfg.fillDefaults()
	g := &Gate{reg: reg, cfg: cfg, epoch: time.Now()}
	g.win = make([]sample, cfg.WindowSize)
	return g
}

// Registry returns the tenant registry the gate admits against.
func (g *Gate) Registry() *Registry { return g.reg }

// SetQueueFunc installs the embedding layer's queue-occupancy signal,
// a func returning [0,1]. Call before serving; may be nil.
func (g *Gate) SetQueueFunc(fn func() float64) {
	if fn == nil {
		g.queue.Store(nil)
		return
	}
	g.queue.Store(&fn)
}

// SetObs registers the yala_tenant_* series on reg and gives each
// tenant its latency histogram. Call once, before serving.
func (g *Gate) SetObs(reg *obs.Registry) {
	g.obsReg.Store(reg)
	for _, t := range g.reg.Tenants() {
		t := t
		reg.CounterFunc("yala_tenant_requests_total", t.Requests, "tenant", t.name)
		reg.CounterFunc("yala_tenant_shed_total", t.rateLimited.Load, "tenant", t.name, "reason", "rate_limited")
		reg.CounterFunc("yala_tenant_shed_total", t.overloaded.Load, "tenant", t.name, "reason", "overloaded")
		t.latency.Store(reg.Histogram("yala_tenant_request_seconds", nil, "tenant", t.name))
	}
	reg.GaugeFunc("yala_gate_load_score", g.LoadScore)
}

// Decision is the outcome of one admission check.
type Decision struct {
	// OK admits the request; the remaining fields describe the refusal
	// when false.
	OK     bool
	Tenant *Tenant
	Class  Class
	// Status/Code/Message shape the error response: 401 unauthenticated
	// or 429 resource_exhausted.
	Status  int
	Code    string
	Message string
	// RetryAfter is the advertised backoff on 429s; 0 on 401s.
	RetryAfter time.Duration
	// RateLimited marks a bucket shed (as opposed to an overload shed);
	// these refusals are tarpitted by ShedDelay.
	RateLimited bool
}

// Admission error codes in the /v2 envelope vocabulary.
const (
	CodeResourceExhausted = "resource_exhausted"
	CodeUnauthenticated   = "unauthenticated"
)

// Admit decides one request: resolve the key to a tenant, shed by load
// score (bulk first), then charge the class's token bucket.
func (g *Gate) Admit(key string, class Class, now time.Time) Decision {
	t, ok := g.reg.Lookup(key)
	if !ok {
		msg := "unknown API key"
		if key == "" {
			msg = "an API key is required; pass Authorization: Bearer <key> or X-API-Key"
		}
		return Decision{
			Status:  http.StatusUnauthorized,
			Code:    CodeUnauthenticated,
			Message: msg,
		}
	}
	// Overload shedding first: a saturated server refuses work even
	// from within-quota tenants, bulk class at a lower score.
	threshold := g.cfg.InteractiveShedAt
	if class == ClassBulk {
		threshold = g.cfg.BulkShedAt
	}
	if score := g.loadScoreAt(now); score >= threshold {
		t.overloaded.Add(1)
		g.shedTotal.Add(1)
		return Decision{
			Tenant:     t,
			Class:      class,
			Status:     http.StatusTooManyRequests,
			Code:       CodeResourceExhausted,
			Message:    fmt.Sprintf("server overloaded (load score %.2f), %s traffic is being shed", score, class),
			RetryAfter: g.cfg.OverloadRetryAfter,
		}
	}
	if b := t.bucketFor(class); b != nil {
		if ok, retry := b.Allow(now); !ok {
			t.rateLimited.Add(1)
			g.shedTotal.Add(1)
			return Decision{
				Tenant:      t,
				Class:       class,
				Status:      http.StatusTooManyRequests,
				Code:        CodeResourceExhausted,
				Message:     fmt.Sprintf("tenant %q exceeded its rate limit (%.4g rps, burst %.4g)", t.name, b.Rate(), b.Burst()),
				RetryAfter:  retry,
				RateLimited: true,
			}
		}
	}
	t.admitted[class].Add(1)
	return Decision{OK: true, Tenant: t, Class: class}
}

// Observe records one completed, admitted request: its latency lands in
// the tenant's histogram and in the sliding window behind the pressure
// signals.
func (g *Gate) Observe(d Decision, dur time.Duration, isErr bool) {
	if d.Tenant == nil {
		return
	}
	if isErr {
		d.Tenant.errors.Add(1)
	}
	if h := d.Tenant.latency.Load(); h != nil {
		h.Observe(dur.Seconds())
	}
	g.winMu.Lock()
	g.win[g.winPos] = sample{seconds: dur.Seconds(), isErr: isErr, at: time.Since(g.epoch).Nanoseconds()}
	g.winPos = (g.winPos + 1) % len(g.win)
	if g.winLen < len(g.win) {
		g.winLen++
	}
	g.winMu.Unlock()
}

// LoadScore returns the current combined pressure score: the maximum of
// queue occupancy, windowed p99 normalized by the SLO, and windowed
// error rate normalized by MaxErrorRate. 0 is idle; 1 is saturated on
// at least one signal; values above 1 are possible (e.g. p99 past SLO).
func (g *Gate) LoadScore() float64 { return g.loadScoreAt(time.Now()) }

func (g *Gate) loadScoreAt(now time.Time) float64 {
	mono := now.Sub(g.epoch).Nanoseconds()
	if at := g.scoreAt.Load(); at != 0 && mono-at < int64(scoreTTL) {
		return math.Float64frombits(g.scoreBits.Load())
	}
	g.scoreMu.Lock()
	defer g.scoreMu.Unlock()
	if at := g.scoreAt.Load(); at != 0 && mono-at < int64(scoreTTL) {
		return math.Float64frombits(g.scoreBits.Load())
	}
	score := g.computeScore()
	g.scoreBits.Store(math.Float64bits(score))
	g.scoreAt.Store(mono)
	return score
}

func (g *Gate) computeScore() float64 {
	var score float64
	if fn := g.queue.Load(); fn != nil {
		if q := (*fn)(); q > score {
			score = q
		}
	}
	p99, errRate := g.windowStats()
	if s := p99 / g.cfg.P99SLO.Seconds(); s > score {
		score = s
	}
	if s := errRate / g.cfg.MaxErrorRate; s > score {
		score = s
	}
	return score
}

// windowStats computes the p99 latency (seconds) and error rate over
// the samples younger than WindowAge; zeros when too few to be
// meaningful. The age cut means a spike's samples expire even when
// full-on shedding leaves nothing admitted to overwrite them.
func (g *Gate) windowStats() (p99, errRate float64) {
	cutoff := time.Since(g.epoch).Nanoseconds() - g.cfg.WindowAge.Nanoseconds()
	g.winMu.Lock()
	lat := make([]float64, 0, g.winLen)
	errs := 0
	for i := 0; i < g.winLen; i++ {
		if g.win[i].at < cutoff {
			continue
		}
		lat = append(lat, g.win[i].seconds)
		if g.win[i].isErr {
			errs++
		}
	}
	g.winMu.Unlock()
	n := len(lat)
	if n < 16 {
		return 0, 0
	}
	k := (n * 99) / 100
	if k >= n {
		k = n - 1
	}
	p99 = nthSmallest(lat, k)
	return p99, float64(errs) / float64(n)
}

// nthSmallest returns the k-th smallest element (0-based) by quickselect.
func nthSmallest(a []float64, k int) float64 {
	lo, hi := 0, len(a)-1
	for lo < hi {
		p := a[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for a[i] < p {
				i++
			}
			for a[j] > p {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return a[k]
}

// ShedTotal returns the number of requests this gate has shed (429s).
func (g *Gate) ShedTotal() uint64 { return g.shedTotal.Load() }

// Snapshots returns per-tenant accounting rows in stable name order.
func (g *Gate) Snapshots() []Snapshot {
	ts := g.reg.Tenants()
	out := make([]Snapshot, len(ts))
	for i, t := range ts {
		out[i] = t.Snapshot()
	}
	return out
}
