package gateway

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// AutoscaleConfig tunes the elastic replica pool behind
// `yala gateway -min/-max`.
type AutoscaleConfig struct {
	// Min and Max bound the pool. Min replicas boot immediately; the
	// ring is sized for Max so scale-ups never reshuffle key ranges.
	Min, Max int
	// Interval is the evaluation tick (default 1s).
	Interval time.Duration
	// TargetInflight is the per-replica in-flight request count the
	// pressure score normalizes against (default 8): at score 1.0 the
	// fleet is running exactly at target.
	TargetInflight int
	// P99SLO is the latency objective; the windowed p99 of the last tick
	// over it also saturates the pressure score (default 250ms) — the
	// combined-signal stance: queue depth alone misses a fleet that is
	// slow but not backlogged.
	P99SLO time.Duration
	// UpAfter is how many consecutive ticks at score ≥ 1 trigger a
	// scale-up (default 3) — hysteresis against one bursty tick.
	UpAfter int
	// DownAfter is how many consecutive ticks at score ≤ IdleBelow
	// trigger a scale-down (default 10): draining is cheap to defer and
	// expensive to flap.
	DownAfter int
	// IdleBelow is the score under which a tick counts as idle
	// (default 0.25).
	IdleBelow float64
	// DrainGrace is how long a detached replica keeps running before its
	// process closes, letting in-flight requests finish (default 1s).
	DrainGrace time.Duration
}

func (c *AutoscaleConfig) fillDefaults() error {
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.Max < c.Min {
		return fmt.Errorf("gateway: autoscale max %d < min %d", c.Max, c.Min)
	}
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.TargetInflight <= 0 {
		c.TargetInflight = 8
	}
	if c.P99SLO <= 0 {
		c.P99SLO = 250 * time.Millisecond
	}
	if c.UpAfter <= 0 {
		c.UpAfter = 3
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 10
	}
	if c.IdleBelow <= 0 {
		c.IdleBelow = 0.25
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = time.Second
	}
	return nil
}

// Autoscaler grows and shrinks an in-process replica pool behind a
// gateway: sustained pressure (in-flight requests over target, or the
// last tick's p99 over SLO) spawns a replica into a vacant ring slot;
// sustained idleness detaches the highest slot and closes its replica
// after a drain grace. Detached slots queue reload fan-outs, so a slot
// re-attached later replays what it missed and never serves stale.
type Autoscaler struct {
	g      *Gateway
	svcCfg serve.ServiceConfig
	cfg    AutoscaleConfig

	mu        sync.Mutex
	pool      map[int]*Replica // slot → live in-process replica
	upTicks   int
	downTicks int
	lastCum   []uint64 // reqSeconds snapshot at the previous tick

	scaleUps   atomic.Uint64
	scaleDowns atomic.Uint64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewElastic boots an elastic serving fleet: cfg.Min in-process
// replicas (SpawnReplicas over svcCfg), a gateway whose ring is sized
// for cfg.Max, and the autoscaler loop that moves the pool between the
// two bounds. gwCfg.Backends and gwCfg.Slots are derived and must be
// empty/zero. Close the Autoscaler first, then the Gateway.
func NewElastic(gwCfg Config, svcCfg serve.ServiceConfig, asCfg AutoscaleConfig) (*Gateway, *Autoscaler, error) {
	if err := asCfg.fillDefaults(); err != nil {
		return nil, nil, err
	}
	if len(gwCfg.Backends) != 0 || gwCfg.Slots != 0 {
		return nil, nil, fmt.Errorf("gateway: NewElastic derives Backends and Slots; set Min/Max instead")
	}
	replicas, err := SpawnReplicas(asCfg.Min, svcCfg)
	if err != nil {
		return nil, nil, err
	}
	for _, rep := range replicas {
		gwCfg.Backends = append(gwCfg.Backends, rep.URL)
	}
	gwCfg.Slots = asCfg.Max
	g, err := New(gwCfg)
	if err != nil {
		CloseReplicas(replicas)
		return nil, nil, err
	}
	as := &Autoscaler{
		g:      g,
		svcCfg: svcCfg,
		cfg:    asCfg,
		pool:   map[int]*Replica{},
		stop:   make(chan struct{}),
	}
	for i, rep := range replicas {
		as.pool[i] = rep
		g.WirePromote(rep)
	}
	if gwCfg.Gate != nil {
		// Re-wire the gate's queue signal to the autoscaler's own
		// target, so shedding and scaling read the same pressure.
		gwCfg.Gate.SetQueueFunc(func() float64 {
			return as.pressureFromInflight()
		})
	}
	g.obs.GaugeFunc("gateway_autoscale_pool", func() float64 { return float64(as.Active()) })
	g.obs.CounterFunc("gateway_autoscale_up_total", as.scaleUps.Load)
	g.obs.CounterFunc("gateway_autoscale_down_total", as.scaleDowns.Load)
	as.wg.Add(1)
	go as.loop()
	return g, as, nil
}

// Close stops the autoscaler loop and every replica it owns.
func (as *Autoscaler) Close() {
	as.stopOnce.Do(func() { close(as.stop) })
	as.wg.Wait()
	as.mu.Lock()
	defer as.mu.Unlock()
	for slot, rep := range as.pool {
		rep.Close()
		delete(as.pool, slot)
	}
}

// Active returns the current pool size.
func (as *Autoscaler) Active() int {
	as.mu.Lock()
	defer as.mu.Unlock()
	return len(as.pool)
}

// ScaleUps and ScaleDowns count lifecycle events (tests, metrics).
func (as *Autoscaler) ScaleUps() uint64   { return as.scaleUps.Load() }
func (as *Autoscaler) ScaleDowns() uint64 { return as.scaleDowns.Load() }

func (as *Autoscaler) loop() {
	defer as.wg.Done()
	ticker := time.NewTicker(as.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-as.stop:
			return
		case <-ticker.C:
			as.tick()
		}
	}
}

// pressureFromInflight is the queue-occupancy signal: gateway in-flight
// requests against the pool's aggregate target.
func (as *Autoscaler) pressureFromInflight() float64 {
	active := as.Active()
	if active == 0 {
		return 1
	}
	return float64(as.g.inflight.Load()) / float64(active*as.cfg.TargetInflight)
}

// tick evaluates one interval and applies at most one scaling action.
func (as *Autoscaler) tick() {
	score := as.evaluate()
	as.mu.Lock()
	active := len(as.pool)
	var action func()
	switch {
	case score >= 1:
		as.downTicks = 0
		as.upTicks++
		if as.upTicks >= as.cfg.UpAfter && active < as.cfg.Max {
			as.upTicks = 0
			action = as.scaleUpLocked()
		}
	case score <= as.cfg.IdleBelow:
		as.upTicks = 0
		as.downTicks++
		if as.downTicks >= as.cfg.DownAfter && active > as.cfg.Min {
			as.downTicks = 0
			action = as.scaleDownLocked()
		}
	default:
		as.upTicks, as.downTicks = 0, 0
	}
	as.mu.Unlock()
	if action != nil {
		action()
	}
}

// evaluate computes the pressure score for the tick that just ended:
// the maximum of in-flight occupancy and the tick's windowed p99 over
// SLO. Windowing subtracts the previous reqSeconds snapshot, so an old
// latency spike cannot hold the score up forever.
func (as *Autoscaler) evaluate() float64 {
	uppers, cum := as.g.reqSeconds.CumulativeBuckets()
	as.mu.Lock()
	var delta []uint64
	if len(as.lastCum) == len(cum) {
		delta = make([]uint64, len(cum))
		for i := range cum {
			delta[i] = cum[i] - as.lastCum[i]
		}
	} else {
		delta = cum
	}
	as.lastCum = cum
	as.mu.Unlock()

	score := as.pressureFromInflight()
	if total := delta[len(delta)-1]; total >= 4 {
		// Too few samples and the p99 is one request's noise.
		p99 := obs.BucketQuantile(uppers, delta, 0.99)
		if s := p99 / as.cfg.P99SLO.Seconds(); s > score {
			score = s
		}
	}
	return score
}

// scaleUpLocked (as.mu held) picks the first vacant slot and returns
// the action — spawn, attach, adopt — to run unlocked: attaching
// probes and drains over the network and must not block Active().
func (as *Autoscaler) scaleUpLocked() func() {
	slot := -1
	for s := 0; s < as.cfg.Max; s++ {
		if _, occupied := as.pool[s]; !occupied {
			slot = s
			break
		}
	}
	if slot < 0 {
		return nil
	}
	// Reserve the slot so a concurrent evaluation cannot double-fill it.
	as.pool[slot] = nil
	return func() {
		reps, err := SpawnReplicas(1, as.svcCfg)
		if err == nil {
			as.g.WirePromote(reps[0])
			err = as.g.Attach(slot, reps[0].URL)
			if err != nil {
				CloseReplicas(reps)
			}
		}
		as.mu.Lock()
		if err != nil {
			delete(as.pool, slot)
			as.mu.Unlock()
			log.Printf("gateway: autoscale up failed: %v", err)
			return
		}
		as.pool[slot] = reps[0]
		as.mu.Unlock()
		as.scaleUps.Add(1)
		log.Printf("gateway: autoscale up: slot %d -> %s (pool %d)", slot, reps[0].URL, as.Active())
	}
}

// scaleDownLocked (as.mu held) removes the highest occupied slot from
// the pool and returns the action that detaches it and closes the
// replica after the drain grace.
func (as *Autoscaler) scaleDownLocked() func() {
	slot := -1
	for s := range as.pool {
		if s > slot && as.pool[s] != nil {
			slot = s
		}
	}
	if slot < 0 {
		return nil
	}
	rep := as.pool[slot]
	delete(as.pool, slot)
	return func() {
		if _, err := as.g.Detach(slot); err != nil {
			log.Printf("gateway: autoscale down: detach slot %d: %v", slot, err)
		}
		as.scaleDowns.Add(1)
		log.Printf("gateway: autoscale down: slot %d (pool %d)", slot, as.Active())
		// New traffic stopped at Detach; give in-flight proxies the
		// grace to finish before the process goes away.
		as.wg.Add(1)
		go func() {
			defer as.wg.Done()
			select {
			case <-time.After(as.cfg.DrainGrace):
			case <-as.stop:
			}
			rep.Close()
		}()
	}
}
