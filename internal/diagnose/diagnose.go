// Package diagnose implements the paper's second use case (§7.5.2):
// identifying which resource bottlenecks an NF under contention and
// dynamic traffic, where the bottleneck may shift between the memory
// subsystem and an accelerator as traffic attributes change.
//
// The predicted bottleneck comes from Yala's per-resource breakdown; the
// ground truth from the simulator's hotspot attribution (the perf-tools
// stand-in). SLOMO, which models only memory, can never point anywhere
// else — the failure mode Table 7 quantifies.
package diagnose

import (
	"repro/internal/core"
	"repro/internal/nicsim"
	"repro/internal/traffic"
)

// Verdict is one diagnosis outcome.
type Verdict struct {
	Predicted nicsim.Resource
	Actual    nicsim.Resource
}

// Correct reports whether the prediction matched.
func (v Verdict) Correct() bool { return v.Predicted == v.Actual }

// YalaDiagnosis predicts the bottleneck with a Yala model's per-resource
// breakdown.
func YalaDiagnosis(m *core.Model, prof traffic.Profile, comps []core.Competitor, actual nicsim.Resource) Verdict {
	pred := m.Predict(prof, comps)
	return Verdict{Predicted: pred.Bottleneck, Actual: actual}
}

// SLOMODiagnosis is the baseline: a memory-only model attributes every
// contention-induced slowdown to the memory subsystem.
func SLOMODiagnosis(actual nicsim.Resource) Verdict {
	return Verdict{Predicted: nicsim.ResMemory, Actual: actual}
}

// Accuracy is the fraction (percent) of correct verdicts.
func Accuracy(vs []Verdict) float64 {
	if len(vs) == 0 {
		return 0
	}
	ok := 0
	for _, v := range vs {
		if v.Correct() {
			ok++
		}
	}
	return 100 * float64(ok) / float64(len(vs))
}
