package serve

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/tenant"
	"repro/internal/wire"
)

// This file mounts the yalawire binary protocol (internal/wire) on a
// Service: a persistent-connection listener that shares the Service's
// cache, worker pool, tenant gate and observability with the HTTP
// front end. Typed frames (TypePredict, TypeBatch) run the hot path
// with zero JSON; TypeCall tunnels any other request through the real
// HTTP handler so middleware semantics are byte-identical.

// wireTransportKey marks a request context as having arrived over the
// wire listener, so withObs attributes it to the right transport
// counter.
type wireTransportKey struct{}

// WireAddr returns the advertised yalawire listener address, "" when
// none is mounted.
func (s *Service) WireAddr() string {
	if p := s.wireAddr.Load(); p != nil {
		return *p
	}
	return ""
}

// WireServer is a running yalawire listener bound to a Service.
type WireServer struct {
	svc     *Service
	handler http.Handler
	lis     net.Listener
	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// ServeWire mounts a yalawire listener on the service. handler is the
// HTTP handler TypeCall frames dispatch through (normally the value of
// s.Handler(); nil disables TypeCall). The listener address is
// advertised in /v2/stats as wire_addr until Close.
func (s *Service) ServeWire(lis net.Listener, handler http.Handler) *WireServer {
	ctx, cancel := context.WithCancel(context.Background())
	ws := &WireServer{
		svc:     s,
		handler: handler,
		lis:     lis,
		ctx:     ctx,
		cancel:  cancel,
		conns:   map[net.Conn]struct{}{},
	}
	addr := lis.Addr().String()
	s.wireAddr.Store(&addr)
	ws.wg.Add(1)
	go ws.acceptLoop()
	return ws
}

// Addr returns the listener's address.
func (ws *WireServer) Addr() string { return ws.lis.Addr().String() }

// Close stops accepting, tears down every connection, and withdraws
// the wire_addr advertisement.
func (ws *WireServer) Close() {
	ws.cancel()
	ws.svc.wireAddr.Store(new(string))
	ws.lis.Close()
	ws.mu.Lock()
	for c := range ws.conns {
		c.Close()
	}
	ws.mu.Unlock()
	ws.wg.Wait()
}

func (ws *WireServer) acceptLoop() {
	defer ws.wg.Done()
	for {
		c, err := ws.lis.Accept()
		if err != nil {
			return
		}
		ws.mu.Lock()
		ws.conns[c] = struct{}{}
		ws.mu.Unlock()
		ws.wg.Add(1)
		go ws.serveConn(c)
	}
}

// serveConn drives one connection: a Hello handshake binding the API
// key, then strictly serial request frames until hangup or a framing
// error. Frame-level damage tears the connection down — clients fall
// back to HTTP and redial.
func (ws *WireServer) serveConn(c net.Conn) {
	defer ws.wg.Done()
	defer func() {
		ws.mu.Lock()
		delete(ws.conns, c)
		ws.mu.Unlock()
		c.Close()
	}()
	fr := wire.NewFramer(c)
	c.SetReadDeadline(time.Now().Add(10 * time.Second))
	f, err := fr.ReadFrame()
	if err != nil || f.Type != wire.TypeHello {
		return
	}
	apiKey, err := wire.DecodeHello(f.Payload)
	if err != nil {
		return
	}
	if fr.WriteFrame(wire.TypeHelloAck, f.ID, nil) != nil {
		return
	}
	c.SetReadDeadline(time.Time{})
	for {
		f, err := fr.ReadFrame()
		if err != nil {
			return
		}
		if !ws.serveFrame(fr, f, apiKey) {
			return
		}
	}
}

// serveFrame answers one request frame; false tears the conn down.
func (ws *WireServer) serveFrame(fr *wire.Framer, f wire.Frame, apiKey string) bool {
	switch f.Type {
	case wire.TypeEcho:
		// Pure transport floor: no gate, no counters, no serving.
		return fr.WriteFrame(wire.TypeEchoAck, f.ID, f.Payload) == nil
	case wire.TypePredict:
		return ws.servePredict(fr, f, apiKey)
	case wire.TypeBatch:
		return ws.serveBatch(fr, f, apiKey)
	case wire.TypeCall:
		return ws.serveCall(fr, f, apiKey)
	default:
		return ws.writeError(fr, f.ID, &wire.ErrorFrame{
			Status: http.StatusBadRequest, Code: codeInvalidArgument,
			Message: fmt.Sprintf("unknown frame type %d", f.Type),
		})
	}
}

func (ws *WireServer) writeError(fr *wire.Framer, id uint64, e *wire.ErrorFrame) bool {
	buf := wire.AppendError(wire.GetBuf(), e)
	err := fr.WriteFrame(wire.TypeError, id, buf)
	wire.PutBuf(buf)
	return err == nil
}

// admitWire runs the tenant gate for a typed frame. It mirrors the
// HTTP middleware minus the tarpit (a stalled wire conn would stall
// its whole pipeline). ok=false means the refusal frame was the
// answer; done must be called once with the final status when ok.
func (ws *WireServer) admitWire(fr *wire.Framer, id uint64, apiKey string, class tenant.Class, rid string) (done func(status int, dur time.Duration), ok, connOK bool) {
	g := ws.svc.cfg.Gate
	if g == nil {
		return func(int, time.Duration) {}, true, true
	}
	d := g.Admit(apiKey, class, time.Now())
	if !d.OK {
		connOK = ws.writeError(fr, id, &wire.ErrorFrame{
			Status: d.Status, Code: d.Code, Message: d.Message,
			RequestID: rid, RetryAfterSec: d.RetryAfter.Seconds(),
		})
		return nil, false, connOK
	}
	return func(status int, dur time.Duration) {
		if status == tenant.StatusClientClosedRequest {
			return
		}
		g.Observe(d, dur, status >= http.StatusInternalServerError)
	}, true, true
}

// wireReqContext builds one wire request's context: the server's
// lifetime context plus a fresh request ID and stage trace, marked
// with the wire transport.
func (ws *WireServer) wireReqContext() (context.Context, *obs.Trace, string) {
	rid := fmt.Sprintf("wire-%06d", requestCounter.Add(1))
	tr := obs.NewTrace(rid)
	ctx := context.WithValue(ws.ctx, ridKey{}, rid)
	ctx = context.WithValue(ctx, wireTransportKey{}, true)
	return obs.ContextWithTrace(ctx, tr), tr, rid
}

// observeWire feeds the shared request/stage histograms, mirroring
// withObs for a typed wire request.
func (ws *WireServer) observeWire(tr *obs.Trace, dur time.Duration) {
	s := ws.svc
	s.wireRequests.Add(1)
	s.reqSeconds.Observe(dur.Seconds())
	for name, d := range tr.Stages() {
		s.stageHistogram(name).Observe(d.Seconds())
	}
}

// toWireResponse converts a service response to its wire shape.
// PerResourcePPS iterates a map; the slice order is not significant to
// clients (the JSON shape is a map too).
func toWireResponse(r *PredictResponse) wire.PredictResponse {
	out := wire.PredictResponse{
		NF:      r.NF,
		HW:      r.HW,
		Backend: string(r.Backend),
		Profile: wire.Profile{
			Flows:   r.Profile.Flows,
			PktSize: r.Profile.PktSize,
			MTBR:    r.Profile.MTBR,
		},
		SoloPPS:      r.SoloPPS,
		PredictedPPS: r.PredictedPPS,
		Bottleneck:   r.Bottleneck,
	}
	if len(r.PerResourcePPS) > 0 {
		out.PerResource = make([]wire.ResourcePPS, 0, len(r.PerResourcePPS))
		for res, pps := range r.PerResourcePPS {
			out.PerResource = append(out.PerResource, wire.ResourcePPS{Resource: res, PPS: pps})
		}
	}
	return out
}

// fromWireRequest converts a wire predict request to the service shape
// plus its hardware qualifier.
func fromWireRequest(w *wire.PredictRequest) (string, PredictRequest) {
	req := PredictRequest{
		NF:      w.NF,
		Backend: w.Backend,
		Profile: ProfileSpec{Flows: w.Profile.Flows, PktSize: w.Profile.PktSize, MTBR: w.Profile.MTBR},
	}
	if len(w.Competitors) > 0 {
		req.Competitors = make([]CompetitorSpec, len(w.Competitors))
		for i, c := range w.Competitors {
			req.Competitors[i] = CompetitorSpec{
				Name:    c.Name,
				Profile: ProfileSpec{Flows: c.Profile.Flows, PktSize: c.Profile.PktSize, MTBR: c.Profile.MTBR},
			}
		}
	}
	return w.HW, req
}

// serviceErrorFrame maps a service error exactly like the /v2 JSON
// envelope does.
func serviceErrorFrame(err error, rid string) *wire.ErrorFrame {
	return &wire.ErrorFrame{
		Status:    errorStatus(err),
		Code:      errorCode(err),
		Message:   err.Error(),
		RequestID: rid,
	}
}

func (ws *WireServer) servePredict(fr *wire.Framer, f wire.Frame, apiKey string) bool {
	start := time.Now()
	ctx, tr, rid := ws.wireReqContext()
	done, ok, connOK := ws.admitWire(fr, f.ID, apiKey, tenant.ClassInteractive, rid)
	if !ok {
		return connOK
	}
	wreq, err := wire.DecodePredictRequest(f.Payload)
	if err != nil {
		done(http.StatusBadRequest, time.Since(start))
		return ws.writeError(fr, f.ID, &wire.ErrorFrame{
			Status: http.StatusBadRequest, Code: codeInvalidArgument,
			Message: err.Error(), RequestID: rid,
		})
	}
	hw, req := fromWireRequest(&wreq)
	resp, err := ws.svc.PredictOn(ctx, hw, req)
	dur := time.Since(start)
	ws.observeWire(tr, dur)
	if err != nil {
		e := serviceErrorFrame(err, rid)
		done(e.Status, dur)
		return ws.writeError(fr, f.ID, e)
	}
	done(http.StatusOK, dur)
	wresp := toWireResponse(&resp)
	esp := obs.StartSpan(ctx, "encode")
	buf := wire.AppendPredictResponse(wire.GetBuf(), &wresp)
	esp.End()
	werr := fr.WriteFrame(wire.TypePredictResp, f.ID, buf)
	wire.PutBuf(buf)
	return werr == nil
}

func (ws *WireServer) serveBatch(fr *wire.Framer, f wire.Frame, apiKey string) bool {
	start := time.Now()
	ctx, tr, rid := ws.wireReqContext()
	done, ok, connOK := ws.admitWire(fr, f.ID, apiKey, tenant.ClassBulk, rid)
	if !ok {
		return connOK
	}
	wreq, err := wire.DecodeBatchRequest(f.Payload)
	if err != nil {
		done(http.StatusBadRequest, time.Since(start))
		return ws.writeError(fr, f.ID, &wire.ErrorFrame{
			Status: http.StatusBadRequest, Code: codeInvalidArgument,
			Message: err.Error(), RequestID: rid,
		})
	}
	items := make([]hwPredict, len(wreq.Requests))
	for i := range wreq.Requests {
		items[i].hw, items[i].req = fromWireRequest(&wreq.Requests[i])
	}
	resp, err := ws.svc.predictBatch(ctx, items)
	dur := time.Since(start)
	ws.observeWire(tr, dur)
	if err != nil {
		e := serviceErrorFrame(err, rid)
		done(e.Status, dur)
		return ws.writeError(fr, f.ID, e)
	}
	done(http.StatusOK, dur)
	wresp := wire.BatchResponse{Responses: make([]wire.PredictResponse, len(resp.Responses)), Errors: resp.Errors}
	for i := range resp.Responses {
		wresp.Responses[i] = toWireResponse(&resp.Responses[i])
	}
	buf := wire.AppendBatchResponse(wire.GetBuf(), &wresp)
	werr := fr.WriteFrame(wire.TypeBatchResp, f.ID, buf)
	wire.PutBuf(buf)
	return werr == nil
}

// callForwardHeaders are the response headers a TypeCallResp carries
// back — the same set the gateway forwards downstream, plus
// Retry-After so wire clients see 429 backoff hints.
var callForwardHeaders = []string{"Content-Type", "X-Request-Id", "Deprecation", "Link", "Allow", "Retry-After", "X-Gateway-Cache"}

// memResponse is the in-memory http.ResponseWriter TypeCall dispatch
// renders into.
type memResponse struct {
	hdr    http.Header
	status int
	buf    bytes.Buffer
}

func (m *memResponse) Header() http.Header { return m.hdr }
func (m *memResponse) WriteHeader(code int) {
	if m.status == 0 {
		m.status = code
	}
}
func (m *memResponse) Write(b []byte) (int, error) {
	m.WriteHeader(http.StatusOK)
	return m.buf.Write(b)
}

// serveCall tunnels one HTTP-shaped request through the real HTTP
// handler: the tenant gate, withObs, routing, caching and error
// envelopes all behave exactly as over TCP HTTP, so wire upstreams
// never diverge semantically from JSON upstreams.
func (ws *WireServer) serveCall(fr *wire.Framer, f wire.Frame, apiKey string) bool {
	call, err := wire.DecodeCall(f.Payload)
	if err != nil {
		return ws.writeError(fr, f.ID, &wire.ErrorFrame{
			Status: http.StatusBadRequest, Code: codeInvalidArgument, Message: err.Error(),
		})
	}
	if ws.handler == nil {
		return ws.writeError(fr, f.ID, &wire.ErrorFrame{
			Status: http.StatusNotFound, Code: codeNotFound,
			Message: "wire listener mounted without an HTTP handler; TypeCall is disabled",
		})
	}
	ctx := context.WithValue(ws.ctx, wireTransportKey{}, true)
	req, err := http.NewRequestWithContext(ctx, call.Method, call.URI, bytes.NewReader(call.Body))
	if err != nil {
		return ws.writeError(fr, f.ID, &wire.ErrorFrame{
			Status: http.StatusBadRequest, Code: codeInvalidArgument, Message: err.Error(),
		})
	}
	if call.ContentType != "" {
		req.Header.Set("Content-Type", call.ContentType)
	}
	if call.RequestID != "" {
		req.Header.Set("X-Request-Id", call.RequestID)
	}
	if apiKey != "" {
		req.Header.Set("Authorization", "Bearer "+apiKey)
	}
	rec := &memResponse{hdr: http.Header{}}
	ws.handler.ServeHTTP(rec, req)
	if rec.status == 0 {
		rec.status = http.StatusOK
	}
	out := wire.CallResp{Status: rec.status, Body: rec.buf.Bytes()}
	for _, k := range callForwardHeaders {
		if v := rec.hdr.Get(k); v != "" {
			out.Headers = append(out.Headers, wire.HeaderKV{Key: k, Value: v})
		}
	}
	buf := wire.AppendCallResp(wire.GetBuf(), &out)
	werr := fr.WriteFrame(wire.TypeCallResp, f.ID, buf)
	wire.PutBuf(buf)
	return werr == nil
}
