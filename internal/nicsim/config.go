// Package nicsim models a SoC SmartNIC — the substrate the paper runs on
// (NVIDIA BlueField-2, plus AMD Pensando for the generalization study).
// Physical hardware is unavailable in this reproduction, so the package
// implements the architectural mechanisms Yala's models approximate:
//
//   - a shared memory subsystem (LLC occupancy under contention, miss-ratio
//     curves, DRAM bandwidth saturation),
//   - hardware accelerators arbitrated by round-robin over per-NF request
//     queues, simulated event-by-event with jittered service times, and
//   - ARM PMU-style performance counters (Table 11 of the paper) derived
//     from simulator state with measurement noise.
//
// Ground truth is intentionally richer than Yala's closed-form models:
// the accelerator is a discrete-event queue (not Eq. 1), and the memory
// system is a smooth occupancy/bandwidth model (not a GBR), so the
// prediction problem stays non-trivial.
package nicsim

// AccelKind identifies an onboard hardware accelerator.
type AccelKind int

// Accelerator kinds present on the simulated NICs.
const (
	AccelRegex AccelKind = iota
	AccelCompress
	numAccelKinds
)

// AccelKinds returns every accelerator kind in fixed declaration order —
// the canonical iteration order for code that must be deterministic
// across runs (model composition, feature assembly) where ranging over
// an AccelKind-keyed map would not be.
func AccelKinds() []AccelKind {
	return []AccelKind{AccelRegex, AccelCompress}
}

// String names the accelerator.
func (k AccelKind) String() string {
	switch k {
	case AccelRegex:
		return "regex"
	case AccelCompress:
		return "compress"
	}
	return "accel?"
}

// AccelConfig describes one accelerator's service characteristics. A
// request over b bytes containing m matches takes
//
//	BaseSec + b·PerByteSec + m·PerMatchSec
//
// seconds of engine time, jittered by ±Jitter (relative std dev).
type AccelConfig struct {
	BaseSec     float64
	PerByteSec  float64
	PerMatchSec float64
	Jitter      float64
}

// Config is the hardware parameter set for one SmartNIC model.
type Config struct {
	// Name identifies the preset ("bluefield2", "pensando").
	Name string

	// Cores is the number of SoC cores; CoreHz their clock rate.
	Cores  int
	CoreHz float64

	// LLCBytes is the shared last-level cache capacity.
	LLCBytes float64

	// CacheHitSec is the latency of an access served by the cache
	// hierarchy; MissPenaltySec the additional uncontended DRAM latency
	// of a miss. LineBytes is the cache line size.
	CacheHitSec    float64
	MissPenaltySec float64
	LineBytes      float64

	// DRAMBandwidth is peak memory bandwidth in bytes/s. As demand
	// approaches it, miss penalties inflate queueing-style.
	DRAMBandwidth float64

	// BaseMissRatio is the compulsory miss ratio seen even with the
	// working set fully cached.
	BaseMissRatio float64

	// LineRateBps is the aggregate port rate in bits/s (0 = uncapped).
	LineRateBps float64

	// Accels holds the accelerator parameter sets present on this NIC.
	Accels map[AccelKind]AccelConfig

	// MeasureNoise is the relative std dev applied to measured
	// throughputs and counters, emulating run-to-run variance.
	MeasureNoise float64

	// FreqScale models dynamic voltage and frequency scaling (the §8
	// discussion): the effective core frequency is CoreHz·FreqScale, so
	// per-packet CPU time inflates by 1/FreqScale. Zero means 1 (no
	// scaling; current SoC SmartNICs do not expose DVFS).
	FreqScale float64
}

// WithFrequencyScale returns a copy of the config under a DVFS governor
// running the cores at the given fraction of nominal frequency. It
// panics on non-positive scales.
func (c Config) WithFrequencyScale(f float64) Config {
	if f <= 0 {
		panic("nicsim: non-positive frequency scale")
	}
	c.FreqScale = f
	return c
}

// freqScale returns the effective DVFS factor.
func (c *Config) freqScale() float64 {
	if c.FreqScale <= 0 {
		return 1
	}
	return c.FreqScale
}

// BlueField2 returns the primary testbed preset: 8 ARM A72 cores at
// 2.5 GHz, 6 MB L3, DDR4, regex + compression accelerators (§7.1).
func BlueField2() Config {
	return Config{
		Name:           "bluefield2",
		Cores:          8,
		CoreHz:         2.5e9,
		LLCBytes:       6 << 20,
		CacheHitSec:    6e-9,
		MissPenaltySec: 95e-9,
		LineBytes:      64,
		DRAMBandwidth:  17e9,
		BaseMissRatio:  0.02,
		LineRateBps:    200e9, // dual ConnectX-6 100GbE ports
		Accels: map[AccelKind]AccelConfig{
			AccelRegex: {
				BaseSec:     180e-9,
				PerByteSec:  0.12e-9, // ~8.3 GB/s scan rate
				PerMatchSec: 320e-9,
				Jitter:      0.06,
			},
			AccelCompress: {
				BaseSec:     400e-9,
				PerByteSec:  0.35e-9, // ~2.9 GB/s
				PerMatchSec: 0,
				Jitter:      0.06,
			},
		},
		MeasureNoise: 0.01,
	}
}

// Pensando returns the secondary SoC preset used for the generalization
// experiment (Table 9): more cores, a larger LLC, different accelerator
// timings. Values are representative of the DSC class, not measured.
func Pensando() Config {
	return Config{
		Name:           "pensando",
		Cores:          16,
		CoreHz:         2.8e9,
		LLCBytes:       8 << 20,
		CacheHitSec:    5e-9,
		MissPenaltySec: 80e-9,
		LineBytes:      64,
		DRAMBandwidth:  25e9,
		BaseMissRatio:  0.02,
		LineRateBps:    200e9,
		Accels: map[AccelKind]AccelConfig{
			AccelRegex: {
				BaseSec:     150e-9,
				PerByteSec:  0.10e-9,
				PerMatchSec: 260e-9,
				Jitter:      0.06,
			},
			AccelCompress: {
				BaseSec:     350e-9,
				PerByteSec:  0.30e-9,
				PerMatchSec: 0,
				Jitter:      0.06,
			},
		},
		MeasureNoise: 0.01,
	}
}
