package cluster

import (
	"fmt"
	"math"

	"repro/internal/backend"
	"repro/internal/placement"
	"repro/internal/sim"
)

// Scheduler decides where an arriving NF goes. Choose returns the index
// of the NIC to place a on, or -1 to reject the arrival. Implementations
// must be deterministic given their construction seed — the comparison's
// reproducibility rests on it.
type Scheduler interface {
	Name() string
	Choose(f *Fleet, a placement.Arrival) (int, error)
}

// Policies lists the available scheduling policies in comparison order:
// the contention-blind baselines first, then one prediction-guided
// best-fit policy per registered prediction backend (alphabetical, so
// the classic random/firstfit/slomo/yala order is stable).
func Policies() []string {
	return append([]string{"random", "firstfit"}, backend.Names()...)
}

// policyStrategy maps a prediction-guided policy name to its placement
// strategy; ok is false for the model-free policies.
func policyStrategy(policy string) (placement.Strategy, bool) {
	if _, ok := backend.Get(policy); !ok {
		return placement.Strategy{}, false
	}
	return placement.PredictionAware(policy), true
}

// NewScheduler constructs a policy over the environment. The seed only
// matters to randomized policies. Any registered prediction backend
// names a prediction-guided best-fit policy — a new backend becomes
// schedulable with no edits here.
func NewScheduler(policy string, env *Env, seed uint64) (Scheduler, error) {
	switch policy {
	case "random":
		return &randomFit{rng: sim.NewRNG(seed ^ 0x72616e646f6d)}, nil
	case "firstfit":
		return firstFit{}, nil
	}
	if strat, ok := policyStrategy(policy); ok {
		return predictFit{env: env, strat: strat, name: policy}, nil
	}
	return nil, fmt.Errorf("cluster: unknown policy %q (have %v)", policy, Policies())
}

// randomFit places on a uniformly random NIC with core capacity —
// contention-blind, the scheduling floor.
type randomFit struct {
	rng *sim.RNG
}

func (r *randomFit) Name() string { return "random" }

func (r *randomFit) Choose(f *Fleet, a placement.Arrival) (int, error) {
	fitting := make([]int, 0, len(f.NICs))
	for i := range f.NICs {
		if f.Fits(i) {
			fitting = append(fitting, i)
		}
	}
	if len(fitting) == 0 {
		return -1, nil
	}
	return fitting[r.rng.Intn(len(fitting))], nil
}

// firstFit places on the lowest-indexed NIC with core capacity — the
// classic bin-packing heuristic, which concentrates load (and therefore
// contention) on the front of the fleet.
type firstFit struct{}

func (firstFit) Name() string { return "firstfit" }

func (firstFit) Choose(f *Fleet, a placement.Arrival) (int, error) {
	for i := range f.NICs {
		if f.Fits(i) {
			return i, nil
		}
	}
	return -1, nil
}

// predictFit is prediction-guided best-fit over a (possibly mixed)
// fleet: among (NIC, class) slots where the strategy's predictor deems
// the placement SLA-feasible on that class's hardware, pick the tightest
// fit — fewest free cores — to consolidate load without breaching SLAs.
// No feasible NIC means the arrival is rejected outright: admission
// control in the paper's §7.5.1 sense, applied fleet-wide.
//
// The default path scores all occupied candidate slots through one
// batched feasibility pass per class (placement.FeasibleBatch), which
// amortizes model lookups, solo resolution and feature assembly across
// the fleet. perSlot selects the original slot-at-a-time loop — kept as
// the reference implementation and benchmark baseline; both paths make
// identical decisions.
type predictFit struct {
	env     *Env
	strat   placement.Strategy
	name    string
	perSlot bool
}

func (p predictFit) Name() string { return p.name }

func (p predictFit) Choose(f *Fleet, a placement.Arrival) (int, error) {
	if p.perSlot {
		return p.choosePerSlot(f, a)
	}
	// An empty NIC is feasible by construction — alone, the NF runs at
	// its solo throughput — so no prediction is consulted. Occupied NICs
	// with capacity are bucketed by class and scored in one batched
	// feasibility call each.
	scored := 0
	defer func() { p.env.countSlots(p.name, len(f.NICs), scored) }()
	feasible := make([]bool, len(f.NICs))
	type bucket struct {
		ce   *classEnv
		idx  []int
		sets [][]placement.Arrival
	}
	var buckets []*bucket
	byKey := map[classKey]*bucket{}
	for i, n := range f.NICs {
		if !f.Fits(i) {
			continue
		}
		if len(n.Tenants) == 0 {
			feasible[i] = true
			continue
		}
		b, ok := byKey[n.key]
		if !ok {
			ce, ok := p.env.class[n.key]
			if !ok {
				return 0, fmt.Errorf("cluster: NIC %d has unresolved class %q", n.ID, n.Class)
			}
			b = &bucket{ce: ce}
			byKey[n.key] = b
			buckets = append(buckets, b)
		}
		b.idx = append(b.idx, i)
		b.sets = append(b.sets, n.arrivals())
		scored++
	}
	for _, b := range buckets {
		oks, err := p.env.feasibleBatch(b.ce, b.sets, a, p.strat)
		if err != nil {
			return 0, err
		}
		for j, ok := range oks {
			feasible[b.idx[j]] = ok
		}
	}
	// Best fit: fewest free cores; ties resolve to the lowest NIC index,
	// matching the per-slot loop exactly.
	best, bestFree := -1, math.MaxInt
	for i := range f.NICs {
		if !feasible[i] {
			continue
		}
		if free := f.FreeCores(i); free < bestFree {
			best, bestFree = i, free
		}
	}
	return best, nil
}

// choosePerSlot is the original slot-at-a-time loop.
func (p predictFit) choosePerSlot(f *Fleet, a placement.Arrival) (int, error) {
	scored := 0
	defer func() { p.env.countSlots(p.name, len(f.NICs), scored) }()
	best, bestFree := -1, math.MaxInt
	for i, n := range f.NICs {
		if !f.Fits(i) {
			continue
		}
		if len(n.Tenants) > 0 {
			ce, ok := p.env.class[n.key]
			if !ok {
				return 0, fmt.Errorf("cluster: NIC %d has unresolved class %q", n.ID, n.Class)
			}
			scored++
			ok2, err := p.env.feasible(ce, n.arrivals(), a, p.strat)
			if err != nil {
				return 0, err
			}
			if !ok2 {
				continue
			}
		}
		if free := f.FreeCores(i); free < bestFree {
			best, bestFree = i, free
		}
	}
	return best, nil
}
