package yalaclient

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// MetricPoint is one sample from a Prometheus text exposition:
// yala_requests_total{verb="predict"} 42 parses to
// {Name: "yala_requests_total", Labels: `verb="predict"`, Value: 42}.
type MetricPoint struct {
	Name   string
	Labels string // raw label text between the braces, "" when unlabeled
	Value  float64
}

// MetricsSnapshot is one parsed scrape of a server's GET /metrics —
// the serve replicas' yala_* series, or a gateway's gateway_* series
// plus the fleet-aggregated replica series.
type MetricsSnapshot struct {
	Points []MetricPoint
}

// Value returns the first sample with the given name whose label text
// contains labelSubstr ("" matches any labeling, including none).
func (s MetricsSnapshot) Value(name, labelSubstr string) (float64, bool) {
	for _, p := range s.Points {
		if p.Name == name && (labelSubstr == "" || strings.Contains(p.Labels, labelSubstr)) {
			return p.Value, true
		}
	}
	return 0, false
}

// Label extracts one label's value from a point's raw label text, ""
// when absent.
func (p MetricPoint) Label(key string) string {
	rest := p.Labels
	for rest != "" {
		rest = strings.TrimLeft(rest, ", ")
		eq := strings.Index(rest, `="`)
		if eq < 0 {
			return ""
		}
		k := strings.TrimSpace(rest[:eq])
		var val strings.Builder
		i := eq + 2
		for i < len(rest) && rest[i] != '"' {
			if rest[i] == '\\' && i+1 < len(rest) {
				i++
				if rest[i] == 'n' {
					val.WriteByte('\n')
					i++
					continue
				}
			}
			val.WriteByte(rest[i])
			i++
		}
		if i >= len(rest) {
			return "" // unterminated quote
		}
		if k == key {
			return val.String()
		}
		rest = rest[i+1:]
	}
	return ""
}

// ScrapeMetrics parses a Prometheus text exposition (version 0.0.4).
// The parser is deliberately tolerant: comment and TYPE lines are
// skipped, malformed lines are dropped, and an optional trailing
// timestamp is ignored — a scrape should degrade, not fail, when a
// server adds series this client predates.
func ScrapeMetrics(data string) MetricsSnapshot {
	var snap MetricsSnapshot
	sc := bufio.NewScanner(strings.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, labels, rest, ok := splitMetricLine(line)
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			continue
		}
		v, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			continue
		}
		snap.Points = append(snap.Points, MetricPoint{Name: name, Labels: labels, Value: v})
	}
	return snap
}

// splitMetricLine splits `name{labels} value [ts]` or `name value [ts]`
// into its parts, honoring quotes and escapes inside the label block.
func splitMetricLine(line string) (name, labels, rest string, ok bool) {
	if brace := strings.IndexByte(line, '{'); brace >= 0 && brace < strings.IndexByte(line+" ", ' ') {
		name = line[:brace]
		inQuote := false
		for i := brace + 1; i < len(line); i++ {
			c := line[i]
			if inQuote {
				if c == '\\' {
					i++
				} else if c == '"' {
					inQuote = false
				}
				continue
			}
			switch c {
			case '"':
				inQuote = true
			case '}':
				return name, line[brace+1 : i], line[i+1:], true
			}
		}
		return "", "", "", false
	}
	sp := strings.IndexAny(line, " \t")
	if sp < 0 {
		return "", "", "", false
	}
	return line[:sp], "", line[sp:], true
}

// Metrics scrapes and parses the server's GET /metrics. Pointed at a
// gateway it returns the gateway's own series plus the fleet-merged
// replica series.
func (c *Client) Metrics(ctx context.Context) (MetricsSnapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return MetricsSnapshot{}, err
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return MetricsSnapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return MetricsSnapshot{}, fmt.Errorf("yalaclient: GET /metrics: status %d", resp.StatusCode)
	}
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return MetricsSnapshot{}, err
	}
	return ScrapeMetrics(sb.String()), nil
}
