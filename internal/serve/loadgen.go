package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/traffic"
	"repro/pkg/yalaclient"
)

// LoadgenConfig shapes a load-generation run.
type LoadgenConfig struct {
	// URL is the server base URL.
	URL string
	// Workers is the number of concurrent client connections.
	Workers int
	// Requests is the total request count across workers.
	Requests int
	// Seed drives scenario randomization.
	Seed uint64
	// NFs is the target/competitor NF pool; empty selects a default mix
	// of memory-bound and accelerator-using catalog NFs.
	NFs []string
	// Profiles is the size of the distinct traffic-profile pool. Small
	// pools exercise the warm-cache path; large pools the miss path.
	Profiles int
	// MaxCompetitors bounds each scenario's co-location size.
	MaxCompetitors int
	// CompareFrac, DiagnoseFrac and AdmitFrac divert that fraction of
	// requests to the respective API; the rest are Predicts.
	CompareFrac  float64
	DiagnoseFrac float64
	AdmitFrac    float64
	// IngestFrac diverts that fraction of requests to the feedback
	// path: each one predicts the target solo, then reports IngestShift
	// times the prediction back through Ingest as a ground-truth
	// measurement. At the default shift of 1 the stream confirms the
	// model; a sustained shift away from 1 is the synthetic hardware
	// change the server's drift gate should trip on.
	IngestFrac  float64
	IngestShift float64
	// Batch groups that many scenarios per Predict round trip via the
	// batch endpoint (1 = single-scenario requests). Batching only
	// applies to the Predict share of the mix.
	Batch int
	// WireAddr, when set, routes the Predict/PredictBatch share of the
	// mix over the server's yalawire binary listener at this address
	// (yalaclient.WithWire); everything else stays on HTTP/JSON. The
	// report then measures the binary hot path with the JSON floor
	// removed.
	WireAddr string `json:",omitempty"`
	// Gateway marks the URL as a scale-out gateway: the run snapshots
	// /v2/gateway/stats around the workload and reports the per-replica
	// request distribution and edge-cache counters alongside the
	// aggregate latencies.
	Gateway bool
	// TenantKeys switches the run to multi-tenant mode: one simulated
	// tenant per API key (an empty string is the anonymous tenant), with
	// Workers and Requests split evenly across them. 429 refusals count
	// as shed traffic, not errors — they are the server doing its job.
	TenantKeys []string
	// HotTenant is the index into TenantKeys of one hostile flooder that
	// sends unpaced, as fast as its workers can; every other tenant
	// paces itself to QuietRPS. Negative = no flooder.
	HotTenant int
	// QuietRPS is each non-hot tenant's paced request rate
	// (default 20 rps per tenant).
	QuietRPS float64
}

func (c LoadgenConfig) withDefaults() LoadgenConfig {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Requests <= 0 {
		c.Requests = 10000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.NFs) == 0 {
		c.NFs = []string{"FlowStats", "ACL", "NAT", "FlowMonitor", "NIDS"}
	}
	if c.Profiles <= 0 {
		c.Profiles = 4
	}
	if c.MaxCompetitors <= 0 {
		c.MaxCompetitors = 3
	}
	if c.Batch <= 0 {
		c.Batch = 1
	}
	if c.IngestShift <= 0 {
		c.IngestShift = 1
	}
	return c
}

// LoadgenReport summarizes one run.
type LoadgenReport struct {
	// Requests is the HTTP round-trip count; Predictions the scenario
	// count (a batch round trip carries Batch scenarios, a Compare two).
	Requests    int           `json:"requests"`
	Predictions int           `json:"predictions"`
	Errors      int           `json:"errors"`
	Duration    time.Duration `json:"duration"`
	RPS         float64       `json:"rps"`
	// PPS is predictions per second.
	PPS float64       `json:"pps"`
	P50 time.Duration `json:"p50"`
	P90 time.Duration `json:"p90"`
	P99 time.Duration `json:"p99"`
	Max time.Duration `json:"max"`
	// Replicas is the per-replica request distribution across this run
	// (gateway mode only): how the rendezvous router spread the
	// workload, with edge-cache traffic accounted separately below.
	Replicas []ReplicaLoad `json:"replicas,omitempty"`
	// EdgeHits and EdgeMisses are the gateway edge cache's deltas across
	// this run (gateway mode only).
	EdgeHits   uint64 `json:"edge_hits,omitempty"`
	EdgeMisses uint64 `json:"edge_misses,omitempty"`
	// Shed counts 429 refusals across the run (tenant mode). Shed
	// round trips are neither successes nor errors: the quiet-tenant
	// isolation claim is "Errors 0 AND Shed 0 for quiet rows".
	Shed int `json:"shed,omitempty"`
	// Tenants is the per-tenant breakdown (tenant mode only).
	Tenants []TenantLoad `json:"tenants,omitempty"`
	// Stages is the server-side latency attribution for this run: the
	// delta of the server's yala_stage_seconds histograms between a
	// /metrics scrape before and after the workload. Client-observed
	// percentiles above include the network and queueing; this says
	// where the server itself spent the time (decode, cache, predict,
	// encode). Empty when the target predates /metrics.
	Stages []StageStat `json:"stages,omitempty"`
}

// StageStat is one request-pipeline stage's server-side latency over a
// loadgen run.
type StageStat struct {
	Stage string `json:"stage"`
	// Count is how many spans the stage recorded during the run.
	Count uint64        `json:"count"`
	Avg   time.Duration `json:"avg"`
	P50   time.Duration `json:"p50"`
	P99   time.Duration `json:"p99"`
}

// TenantLoad is one simulated tenant's outcome in a multi-tenant run.
// Latency percentiles cover only served requests — a shed request's
// fast rejection would otherwise flatter the numbers.
type TenantLoad struct {
	Key      string        `json:"key"`
	Hot      bool          `json:"hot,omitempty"`
	Requests int           `json:"requests"`
	OK       int           `json:"ok"`
	Shed     int           `json:"shed"`
	Errors   int           `json:"errors"`
	RPS      float64       `json:"rps"` // achieved (served) rps
	P50      time.Duration `json:"p50"`
	P99      time.Duration `json:"p99"`
}

// ReplicaLoad is one replica's share of a gateway loadgen run.
type ReplicaLoad struct {
	URL      string `json:"url"`
	Requests uint64 `json:"requests"`
	Healthy  bool   `json:"healthy"`
}

// String renders the report for the CLI.
func (r LoadgenReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests    %d (%d errors)\n", r.Requests, r.Errors)
	fmt.Fprintf(&b, "duration    %v\n", r.Duration.Round(time.Millisecond))
	fmt.Fprintf(&b, "throughput  %.0f req/s, %.0f predictions/s\n", r.RPS, r.PPS)
	fmt.Fprintf(&b, "latency     p50 %v  p90 %v  p99 %v  max %v",
		r.P50.Round(time.Microsecond), r.P90.Round(time.Microsecond),
		r.P99.Round(time.Microsecond), r.Max.Round(time.Microsecond))
	for _, st := range r.Stages {
		fmt.Fprintf(&b, "\nstage       %-8s n=%-7d avg %v  p50 %v  p99 %v",
			st.Stage, st.Count, st.Avg.Round(time.Microsecond),
			st.P50.Round(time.Microsecond), st.P99.Round(time.Microsecond))
	}
	for _, tn := range r.Tenants {
		name := tn.Key
		if name == "" {
			name = "(anonymous)"
		}
		if tn.Hot {
			name += " [hot]"
		}
		fmt.Fprintf(&b, "\ntenant      %-20s %6d reqs  ok %-6d shed %-6d errs %-4d %7.1f rps  p50 %v  p99 %v",
			name, tn.Requests, tn.OK, tn.Shed, tn.Errors, tn.RPS,
			tn.P50.Round(time.Microsecond), tn.P99.Round(time.Microsecond))
	}
	if len(r.Replicas) > 0 {
		fmt.Fprintf(&b, "\nedge cache  %d hits, %d misses this run", r.EdgeHits, r.EdgeMisses)
		for _, rep := range r.Replicas {
			state := "up"
			if !rep.Healthy {
				state = "DOWN"
			}
			fmt.Fprintf(&b, "\nreplica     %-28s %7d reqs (%s)", rep.URL, rep.Requests, state)
		}
	}
	return b.String()
}

// clientSpec converts a resolved traffic profile to the SDK wire form.
func clientSpec(p traffic.Profile) yalaclient.ProfileSpec {
	return yalaclient.ProfileSpec{Flows: p.Flows, PktSize: p.PktSize, MTBR: yalaclient.F64(p.MTBR)}
}

// Loadgen replays randomized arrival scenarios against a live server —
// through the public pkg/yalaclient SDK and the /v2 API — and measures
// client-observed latency. Scenarios are drawn from a bounded pool of
// (NF, competitor set, traffic profile) combinations, so a run first
// warms the server's cache and then mostly measures the hit path — the
// paper's serving regime, where the same co-location is consulted on
// every arrival event.
func Loadgen(cfg LoadgenConfig) (LoadgenReport, error) {
	cfg = cfg.withDefaults()
	if cfg.URL == "" {
		return LoadgenReport{}, fmt.Errorf("serve: loadgen needs a server URL")
	}
	if len(cfg.TenantKeys) > 0 {
		return loadgenTenants(cfg)
	}

	profiles := profilePool(cfg)

	var (
		issued      atomic.Int64
		errs        atomic.Int64
		predictions atomic.Int64
		latencies   = make([][]time.Duration, cfg.Workers)
		firstErr    atomic.Pointer[error]
		wg          sync.WaitGroup
	)
	// Workers share one client (one connection pool), as a real
	// high-fan-in front end would.
	client := yalaclient.New(cfg.URL, clientOpts(cfg)...)
	defer client.Close()
	var gwBefore yalaclient.GatewayStats
	if cfg.Gateway {
		var err error
		if gwBefore, err = client.GatewayStats(context.Background()); err != nil {
			return LoadgenReport{}, fmt.Errorf("serve: loadgen -gateway against %s: %w (is it a yala gateway?)", cfg.URL, err)
		}
	}
	// Scrape /metrics around the run for the server-side stage
	// breakdown. Best-effort on both sides: a target without /metrics
	// (or a scrape failing mid-teardown) drops the breakdown, never the
	// run. Against a gateway the scrape is the fleet-merged exposition,
	// so the breakdown covers every replica the run touched.
	metricsBefore, metricsErr := client.Metrics(context.Background())
	start := time.Now()
	for wk := 0; wk < cfg.Workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			wrng := sim.NewRNG(cfg.Seed + uint64(wk)*0x9e3779b9 + 1)
			for {
				n := issued.Add(1)
				if n > int64(cfg.Requests) {
					return
				}
				t0 := time.Now()
				preds, err := fireOne(client, cfg, wrng, profiles)
				latencies[wk] = append(latencies[wk], time.Since(t0))
				if err != nil {
					errs.Add(1)
					firstErr.CompareAndSwap(nil, &err)
				} else {
					// Only served predictions count toward PPS.
					predictions.Add(int64(preds))
				}
			}
		}(wk)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rep := LoadgenReport{
		Requests:    len(all),
		Predictions: int(predictions.Load()),
		Errors:      int(errs.Load()),
		Duration:    elapsed,
	}
	if elapsed > 0 {
		rep.RPS = float64(len(all)) / elapsed.Seconds()
		rep.PPS = float64(rep.Predictions) / elapsed.Seconds()
	}
	if len(all) > 0 {
		rep.P50 = percentile(all, 0.50)
		rep.P90 = percentile(all, 0.90)
		rep.P99 = percentile(all, 0.99)
		rep.Max = all[len(all)-1]
	}
	if metricsErr == nil {
		if metricsAfter, err := client.Metrics(context.Background()); err == nil {
			rep.Stages = stageBreakdown(metricsBefore, metricsAfter)
		}
	}
	if cfg.Gateway {
		// Distribution deltas are best-effort: the run's own numbers
		// stand even if the closing snapshot fails (gateway restarted).
		if after, err := client.GatewayStats(context.Background()); err == nil {
			before := map[string]uint64{}
			for _, r := range gwBefore.Replicas {
				before[r.URL] = r.Requests
			}
			for _, r := range after.Replicas {
				rep.Replicas = append(rep.Replicas, ReplicaLoad{
					URL:      r.URL,
					Requests: counterDelta(r.Requests, before[r.URL]),
					Healthy:  r.Healthy,
				})
			}
			rep.EdgeHits = counterDelta(after.EdgeHits, gwBefore.EdgeHits)
			rep.EdgeMisses = counterDelta(after.EdgeMisses, gwBefore.EdgeMisses)
		}
	}
	if ep := firstErr.Load(); ep != nil && rep.Errors > 0 {
		return rep, fmt.Errorf("serve: loadgen: %d/%d requests failed (first: %w)", rep.Errors, rep.Requests, *ep)
	}
	return rep, nil
}

// clientOpts builds the SDK options a loadgen client shares across
// modes.
func clientOpts(cfg LoadgenConfig) []yalaclient.Option {
	var opts []yalaclient.Option
	if cfg.WireAddr != "" {
		opts = append(opts, yalaclient.WithWire(cfg.WireAddr))
	}
	return opts
}

// profilePool pre-generates the traffic-profile pool every worker
// draws from: the default profile plus random draws.
func profilePool(cfg LoadgenConfig) []yalaclient.ProfileSpec {
	rng := sim.NewRNG(cfg.Seed)
	profiles := []yalaclient.ProfileSpec{clientSpec(traffic.Default)}
	for len(profiles) < cfg.Profiles {
		profiles = append(profiles, clientSpec(traffic.Random(rng)))
	}
	return profiles
}

// loadgenTenants is the multi-tenant run: each key gets its own
// authenticated client, an even share of the worker pool and request
// budget, and — unless it is the hostile flooder — pacing to QuietRPS.
// A 429 is recorded as shed, never as an error: the whole point of the
// scenario is watching the server refuse the flooder while the quiet
// tenants ride undisturbed.
func loadgenTenants(cfg LoadgenConfig) (LoadgenReport, error) {
	nt := len(cfg.TenantKeys)
	workersPer := cfg.Workers / nt
	if workersPer < 1 {
		workersPer = 1
	}
	reqsPer := cfg.Requests / nt
	if reqsPer < 1 {
		reqsPer = 1
	}
	quiet := cfg.QuietRPS
	if quiet <= 0 {
		quiet = 20
	}
	profiles := profilePool(cfg)

	type tenantState struct {
		key            string
		hot            bool
		client         *yalaclient.Client
		issued         atomic.Int64
		ok, shed, errs atomic.Int64
		preds          atomic.Int64
		mu             sync.Mutex
		lats           []time.Duration // served requests only
	}
	states := make([]*tenantState, nt)
	for i, key := range cfg.TenantKeys {
		states[i] = &tenantState{
			key:    key,
			hot:    i == cfg.HotTenant,
			client: yalaclient.New(cfg.URL, append(clientOpts(cfg), yalaclient.WithAPIKey(key))...),
		}
		defer states[i].client.Close()
	}

	var firstErr atomic.Pointer[error]
	var wg sync.WaitGroup
	start := time.Now()
	for ti, st := range states {
		// Pacing spreads the tenant's target rate across its workers;
		// the hot tenant gets none and floods.
		var pace time.Duration
		if !st.hot {
			pace = time.Duration(float64(workersPer) / quiet * float64(time.Second))
		}
		for wk := 0; wk < workersPer; wk++ {
			wg.Add(1)
			go func(ti, wk int, st *tenantState) {
				defer wg.Done()
				wrng := sim.NewRNG(cfg.Seed + uint64(ti)*0x1000193 + uint64(wk)*0x9e3779b9 + 1)
				for {
					n := st.issued.Add(1)
					if n > int64(reqsPer) {
						return
					}
					t0 := time.Now()
					preds, err := fireOne(st.client, cfg, wrng, profiles)
					d := time.Since(t0)
					var rle *yalaclient.RateLimitError
					switch {
					case err == nil:
						st.ok.Add(1)
						st.preds.Add(int64(preds))
						st.mu.Lock()
						st.lats = append(st.lats, d)
						st.mu.Unlock()
					case errors.As(err, &rle):
						st.shed.Add(1)
					default:
						st.errs.Add(1)
						firstErr.CompareAndSwap(nil, &err)
					}
					if d < pace {
						time.Sleep(pace - d)
					}
				}
			}(ti, wk, st)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := LoadgenReport{Duration: elapsed}
	var all []time.Duration
	for _, st := range states {
		sort.Slice(st.lats, func(i, j int) bool { return st.lats[i] < st.lats[j] })
		row := TenantLoad{
			Key:      st.key,
			Hot:      st.hot,
			Requests: int(st.ok.Load() + st.shed.Load() + st.errs.Load()),
			OK:       int(st.ok.Load()),
			Shed:     int(st.shed.Load()),
			Errors:   int(st.errs.Load()),
			P50:      percentile(st.lats, 0.50),
			P99:      percentile(st.lats, 0.99),
		}
		if elapsed > 0 {
			row.RPS = float64(row.OK) / elapsed.Seconds()
		}
		rep.Tenants = append(rep.Tenants, row)
		rep.Requests += row.Requests
		rep.Predictions += int(st.preds.Load())
		rep.Shed += row.Shed
		rep.Errors += row.Errors
		all = append(all, st.lats...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if elapsed > 0 {
		rep.RPS = float64(rep.Requests) / elapsed.Seconds()
		rep.PPS = float64(rep.Predictions) / elapsed.Seconds()
	}
	if len(all) > 0 {
		rep.P50 = percentile(all, 0.50)
		rep.P90 = percentile(all, 0.90)
		rep.P99 = percentile(all, 0.99)
		rep.Max = all[len(all)-1]
	}
	if ep := firstErr.Load(); ep != nil && rep.Errors > 0 {
		return rep, fmt.Errorf("serve: loadgen: %d/%d requests failed (first: %w)", rep.Errors, rep.Requests, *ep)
	}
	return rep, nil
}

// randomScenario draws one (target, profile, competitors) combination.
func randomScenario(cfg LoadgenConfig, rng *sim.RNG, profiles []yalaclient.ProfileSpec) (string, yalaclient.ProfileSpec, []yalaclient.Competitor) {
	nf := cfg.NFs[rng.Intn(len(cfg.NFs))]
	prof := profiles[rng.Intn(len(profiles))]
	nComp := rng.Intn(cfg.MaxCompetitors + 1)
	comps := make([]yalaclient.Competitor, 0, nComp)
	for i := 0; i < nComp; i++ {
		comps = append(comps, yalaclient.Competitor{
			Name:    cfg.NFs[rng.Intn(len(cfg.NFs))],
			Profile: profiles[rng.Intn(len(profiles))],
		})
	}
	return nf, prof, comps
}

// fireOne issues one randomized round trip and reports how many
// predictions it carried.
func fireOne(client *yalaclient.Client, cfg LoadgenConfig, rng *sim.RNG, profiles []yalaclient.ProfileSpec) (int, error) {
	ctx := context.Background()
	nf, prof, comps := randomScenario(cfg, rng, profiles)
	model := yalaclient.ModelID{NF: nf}
	switch roll := rng.Float64(); {
	case roll < cfg.IngestFrac:
		// Measure what the model believes solo, then report it back
		// scaled by IngestShift as ground truth. Rotating the source
		// label across a small set keeps a single origin from looking
		// like the lone dissenter the quarantine logic exists to catch.
		pred, err := client.Predict(ctx, model, "", yalaclient.PredictParams{Profile: prof})
		if err != nil {
			return 1, err
		}
		jitter := 1 + 0.01*(rng.Float64()-0.5)
		_, err = client.Ingest(ctx, yalaclient.Measurement{
			Model:       model,
			Profile:     prof,
			MeasuredPPS: pred.PredictedPPS * cfg.IngestShift * jitter,
			Source:      fmt.Sprintf("loadgen-%d", rng.Intn(3)),
		})
		return 1, err
	case roll < cfg.IngestFrac+cfg.AdmitFrac:
		residents := make([]yalaclient.Resident, 0, len(comps))
		for _, c := range comps {
			residents = append(residents, yalaclient.Resident{Name: c.Name, Profile: c.Profile, SLA: 0.1})
		}
		_, err := client.Admit(ctx, model, "", yalaclient.AdmitParams{
			Residents: residents,
			Profile:   prof,
			SLA:       0.1,
		})
		return 1, err
	case roll < cfg.IngestFrac+cfg.AdmitFrac+cfg.CompareFrac:
		_, err := client.Compare(ctx, model, yalaclient.CompareParams{Profile: prof, Competitors: comps})
		return 2, err // Yala + SLOMO
	case roll < cfg.IngestFrac+cfg.AdmitFrac+cfg.CompareFrac+cfg.DiagnoseFrac:
		_, err := client.Diagnose(ctx, model, yalaclient.PredictParams{Profile: prof, Competitors: comps})
		return 1, err
	case cfg.Batch > 1:
		items := make([]yalaclient.BatchItem, cfg.Batch)
		items[0] = yalaclient.BatchItem{Model: model, Profile: prof, Competitors: comps}
		for i := 1; i < cfg.Batch; i++ {
			bnf, bprof, bcomps := randomScenario(cfg, rng, profiles)
			items[i] = yalaclient.BatchItem{Model: yalaclient.ModelID{NF: bnf}, Profile: bprof, Competitors: bcomps}
		}
		resp, err := client.PredictBatch(ctx, items)
		if err != nil {
			return cfg.Batch, err
		}
		for _, e := range resp.Errors {
			if e != "" {
				return cfg.Batch, fmt.Errorf("serve: batch element failed: %s", e)
			}
		}
		return cfg.Batch, nil
	default:
		_, err := client.Predict(ctx, model, "", yalaclient.PredictParams{Profile: prof, Competitors: comps})
		return 1, err
	}
}

// stageSnap is one stage's histogram state in a single scrape.
type stageSnap struct {
	buckets map[float64]uint64 // upper bound (+Inf included) → cumulative count
	sum     float64
	count   uint64
}

// collectStages pulls the yala_stage_seconds histogram family out of a
// parsed /metrics scrape, one entry per stage label.
func collectStages(snap yalaclient.MetricsSnapshot) map[string]*stageSnap {
	m := map[string]*stageSnap{}
	get := func(stage string) *stageSnap {
		s, ok := m[stage]
		if !ok {
			s = &stageSnap{buckets: map[float64]uint64{}}
			m[stage] = s
		}
		return s
	}
	for _, p := range snap.Points {
		stage := p.Label("stage")
		if stage == "" {
			continue
		}
		switch p.Name {
		case "yala_stage_seconds_bucket":
			if le, err := strconv.ParseFloat(p.Label("le"), 64); err == nil {
				get(stage).buckets[le] = uint64(p.Value)
			}
		case "yala_stage_seconds_sum":
			get(stage).sum = p.Value
		case "yala_stage_seconds_count":
			get(stage).count = uint64(p.Value)
		}
	}
	return m
}

// stageBreakdown turns before/after /metrics scrapes into per-stage
// latency attribution: the bucket-count deltas form this run's own
// histogram (the difference of two cumulative histograms is itself a
// cumulative histogram), quantiles read off it via the shared
// estimator, and the mean comes from the sum/count deltas. A server
// restart mid-run makes a delta negative; that stage is dropped rather
// than reported from garbage.
func stageBreakdown(before, after yalaclient.MetricsSnapshot) []StageStat {
	bm, am := collectStages(before), collectStages(after)
	var out []StageStat
	for stage, a := range am {
		b := bm[stage]
		if b == nil {
			b = &stageSnap{buckets: map[float64]uint64{}}
		}
		if a.count < b.count {
			continue // counter reset: the delta is meaningless
		}
		n := a.count - b.count
		if n == 0 {
			continue // stage untouched by this run
		}
		uppers := make([]float64, 0, len(a.buckets))
		for le := range a.buckets {
			if le < math.Inf(1) {
				uppers = append(uppers, le)
			}
		}
		sort.Float64s(uppers)
		cum := make([]uint64, 0, len(uppers)+1)
		bad := false
		for _, le := range uppers {
			if a.buckets[le] < b.buckets[le] {
				bad = true
				break
			}
			cum = append(cum, a.buckets[le]-b.buckets[le])
		}
		if bad || a.buckets[math.Inf(1)] < b.buckets[math.Inf(1)] {
			continue
		}
		cum = append(cum, a.buckets[math.Inf(1)]-b.buckets[math.Inf(1)])
		st := StageStat{
			Stage: stage,
			Count: n,
			Avg:   time.Duration((a.sum - b.sum) / float64(n) * float64(time.Second)),
			P50:   time.Duration(obs.BucketQuantile(uppers, cum, 0.50) * float64(time.Second)),
			P99:   time.Duration(obs.BucketQuantile(uppers, cum, 0.99) * float64(time.Second)),
		}
		if st.Avg < 0 {
			st.Avg = 0
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stage < out[j].Stage })
	return out
}

// counterDelta is after-before for monotonic counters, degrading to the
// raw after-value when the counter reset between snapshots (a gateway
// or replica restart mid-run) — unsigned subtraction would otherwise
// wrap to a ~1.8e19 garbage delta in the report.
func counterDelta(after, before uint64) uint64 {
	if after < before {
		return after
	}
	return after - before
}

// percentile reads the p-quantile from sorted latencies. The empty
// slice has no quantile and reads 0; out-of-range p clamps to the
// boundaries (p<=0 is the minimum, p>=1 the maximum — the index math
// must never walk off either end), and a one-element slice answers
// every quantile with that element.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx > len(sorted)-1 {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
