package nicsim

import "fmt"

// ExecPattern is how an NF uses its resources end to end (§4.2 of the
// paper): as a pipeline of stages on different resources, or
// run-to-completion where each packet occupies a core until every stage
// (including accelerator round trips) finishes.
type ExecPattern int

// Execution patterns.
const (
	Pipeline ExecPattern = iota
	RunToCompletion
)

// String names the pattern.
func (p ExecPattern) String() string {
	if p == Pipeline {
		return "pipeline"
	}
	return "run-to-completion"
}

// AccelUse describes how a workload exercises one accelerator, per packet.
type AccelUse struct {
	// ReqsPerPkt is the number of accelerator requests issued per packet
	// (may be fractional for sampled inspection).
	ReqsPerPkt float64
	// BytesPerReq is the average request payload size.
	BytesPerReq float64
	// MatchesPerReq is the average ruleset matches per request; for the
	// regex engine this is MTBR·BytesPerReq/1e6.
	MatchesPerReq float64
	// Queues is the number of request queues the workload opens.
	Queues int
}

// Workload is what a packet-processing program looks like to the NIC
// hardware: its per-packet compute and memory footprint plus accelerator
// demands. Real NFs measure their own footprints from their packet-
// processing code (internal/nf); synthetic benchmarks construct them
// directly (internal/nfbench).
type Workload struct {
	// Name labels the workload in measurements.
	Name string

	// Pattern is the execution pattern.
	Pattern ExecPattern

	// Cores is the number of dedicated SoC cores (core-level isolation,
	// §4.1: CPU contention does not happen).
	Cores int

	// CPUSecPerPkt is pure compute time per packet, excluding memory
	// stalls and accelerator waits.
	CPUSecPerPkt float64

	// MemRefsPerPkt is the number of cache-hierarchy references per
	// packet; WSSBytes the working-set size backing them.
	MemRefsPerPkt float64
	WSSBytes      float64

	// MemMLP is the memory-level parallelism: how many references the
	// workload keeps outstanding on average. Pointer-chasing table
	// lookups sit near 1–2; streaming benchmarks reach 8+. Zero means 1.
	MemMLP float64

	// PktBytes is the average wire size of the packets processed,
	// used for the line-rate cap.
	PktBytes float64

	// Accel holds per-accelerator usage; absent kinds are unused.
	Accel map[AccelKind]AccelUse

	// OfferedRate, if positive, makes this an open-loop workload: it
	// processes at most this many packets/s regardless of capacity.
	// Synthetic contention generators (mem-bench, regex-bench) use this
	// to assert controllable contention levels.
	OfferedRate float64
}

// Validate reports configuration errors that would make the solver
// meaningless (non-positive cores, negative times).
func (w *Workload) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("nicsim: workload with empty name")
	}
	if w.Cores <= 0 {
		return fmt.Errorf("nicsim: workload %s has %d cores", w.Name, w.Cores)
	}
	if w.CPUSecPerPkt < 0 || w.MemRefsPerPkt < 0 || w.WSSBytes < 0 {
		return fmt.Errorf("nicsim: workload %s has negative cost", w.Name)
	}
	if w.PktBytes <= 0 {
		return fmt.Errorf("nicsim: workload %s has non-positive packet size", w.Name)
	}
	for k, u := range w.Accel {
		if u.ReqsPerPkt < 0 || u.BytesPerReq < 0 || u.MatchesPerReq < 0 {
			return fmt.Errorf("nicsim: workload %s has negative %v usage", w.Name, k)
		}
		if u.ReqsPerPkt > 0 && u.Queues <= 0 {
			return fmt.Errorf("nicsim: workload %s uses %v with %d queues", w.Name, k, u.Queues)
		}
	}
	return nil
}

// UsesAccel reports whether the workload issues requests to kind.
func (w *Workload) UsesAccel(kind AccelKind) bool {
	u, ok := w.Accel[kind]
	return ok && u.ReqsPerPkt > 0
}

// Resource identifies a contended resource for bottleneck attribution.
type Resource int

// Resources a workload can bottleneck on.
const (
	ResCPU Resource = iota
	ResMemory
	ResRegex
	ResCompress
	ResNICPort
)

// String names the resource.
func (r Resource) String() string {
	switch r {
	case ResCPU:
		return "cpu"
	case ResMemory:
		return "memory"
	case ResRegex:
		return "regex"
	case ResCompress:
		return "compress"
	case ResNICPort:
		return "nic-port"
	}
	return "resource?"
}

// AccelResource maps an accelerator kind to its Resource tag.
func AccelResource(k AccelKind) Resource {
	if k == AccelCompress {
		return ResCompress
	}
	return ResRegex
}
