package slomo

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/ml"
	"repro/internal/traffic"
)

// SLOMO models persist as JSON exactly like Yala's (core/persist.go), so
// the serving layer can load either predictor from a model directory
// without re-profiling.

// modelJSON mirrors Model.
type modelJSON struct {
	Name         string          `json:"name"`
	TrainProfile traffic.Profile `json:"train_profile"`
	SoloAtTrain  float64         `json:"solo_at_train"`
	GBR          *ml.GBR         `json:"gbr"`
}

// MarshalJSON implements json.Marshaler.
func (m *Model) MarshalJSON() ([]byte, error) {
	return json.Marshal(modelJSON{m.Name, m.TrainProfile, m.SoloAtTrain, m.gbr})
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *Model) UnmarshalJSON(data []byte) error {
	var v modelJSON
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	if v.GBR == nil {
		return fmt.Errorf("slomo: model without regressor")
	}
	m.Name, m.TrainProfile, m.SoloAtTrain, m.gbr = v.Name, v.TrainProfile, v.SoloAtTrain, v.GBR
	return nil
}

// Save writes the model as JSON.
func (m *Model) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(m); err != nil {
		return fmt.Errorf("slomo: saving model %s: %w", m.Name, err)
	}
	return nil
}

// SaveFile writes the model to a file.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadModel reads a model saved with Save.
func LoadModel(r io.Reader) (*Model, error) {
	var m Model
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("slomo: loading model: %w", err)
	}
	return &m, nil
}

// LoadModelFile reads a model from a file.
func LoadModelFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadModel(f)
}
