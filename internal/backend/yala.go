package backend

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/profiling"
	"repro/internal/testbed"
)

func init() { Register(yalaBackend{}) }

// yalaBackend is the paper's predictor: per-resource white/black-box
// models combined by execution-pattern composition (internal/core).
type yalaBackend struct{}

// yalaModel wraps the concrete trained model behind the opaque handle.
type yalaModel struct {
	m *core.Model
}

func (m yalaModel) NF() string { return m.m.Name }

// WrapYala adapts an already-trained core model into the backend
// handle — the bridge for callers (tests, experiments) that train
// offline with their own configuration and feed models in directly.
func WrapYala(m *core.Model) Model { return yalaModel{m} }

// QuickYalaConfig is a reduced-cost Yala training configuration for
// on-demand training in a serving context: a small random profiling
// plan and a slimmer regressor. Accuracy is below the paper's full
// protocol but training completes in well under a second per NF, which
// is what an online admission path can afford. Offline-trained full
// models in a model directory always take precedence.
func QuickYalaConfig(seed uint64) core.TrainConfig {
	cfg := core.DefaultTrainConfig()
	cfg.Seed = seed
	cfg.Plan = profiling.Random(48, seed)
	cfg.GBR = ml.GBRConfig{
		Trees:        60,
		LearningRate: 0.1,
		MaxDepth:     4,
		MinLeaf:      2,
		Subsample:    0.85,
		Seed:         seed,
	}
	return cfg
}

func (yalaBackend) Name() string { return "yala" }

func (yalaBackend) Train(env TrainEnv, nf string) (Model, error) {
	cfg, _ := env.Options.(core.TrainConfig)
	if cfg.GBR.Trees == 0 {
		cfg = QuickYalaConfig(env.Seed)
	}
	// A fresh testbed per training keeps concurrent trainings independent
	// (testbeds cache unsynchronized) and the result deterministic.
	tb := testbed.New(env.NIC, env.Seed)
	m, err := core.NewTrainer(tb, cfg).Train(nf)
	if err != nil {
		return nil, err
	}
	return yalaModel{m}, nil
}

// own asserts the handle came from this backend.
func (yalaBackend) own(m Model) (*core.Model, error) {
	ym, ok := m.(yalaModel)
	if !ok {
		return nil, fmt.Errorf("backend: yala handed a foreign model %T", m)
	}
	return ym.m, nil
}

func (b yalaBackend) Predict(m Model, sc Scenario) (Prediction, error) {
	ym, err := b.own(m)
	if err != nil {
		return Prediction{}, err
	}
	comps := make([]core.Competitor, 0, len(sc.Competitors))
	for _, c := range sc.Competitors {
		comps = append(comps, core.CompetitorFromMeasurement(*c.Solo))
	}
	pred := ym.Predict(sc.Profile, comps)
	out := Prediction{
		SoloPPS:        pred.Solo,
		PredictedPPS:   pred.Throughput,
		Bottleneck:     pred.Bottleneck.String(),
		PerResourcePPS: map[string]float64{},
	}
	for res, t := range pred.PerResource {
		out.PerResourcePPS[res.String()] = t
	}
	return out, nil
}

func (b yalaBackend) Save(m Model, path string) error {
	ym, err := b.own(m)
	if err != nil {
		return err
	}
	return ym.SaveFile(path)
}

func (yalaBackend) Load(path string) (Model, error) {
	m, err := core.LoadModelFile(path)
	if err != nil {
		return nil, err
	}
	return yalaModel{m}, nil
}

func (yalaBackend) NewBatch() Batch {
	return &yalaBatch{
		comps:     map[Key]core.Competitor{},
		soloPreds: map[Key]float64{},
	}
}

// yalaBatch memoizes the per-(NF, profile) derivations a fleet-wide
// scoring pass repeats: competitor feature vectors and the model's own
// solo prediction per target. The competitor buffer grows once and is
// re-sliced per evaluation.
type yalaBatch struct {
	comps     map[Key]core.Competitor
	soloPreds map[Key]float64
	buf       []core.Competitor
}

func (bt *yalaBatch) Predict(m Model, target Key, comps []Competitor, solo float64) (float64, error) {
	ym, err := yalaBackend{}.own(m)
	if err != nil {
		return 0, err
	}
	buf := bt.buf[:0]
	for i := range comps {
		k := Key{comps[i].NF, comps[i].Profile}
		c, ok := bt.comps[k]
		if !ok {
			c = core.CompetitorFromMeasurement(*comps[i].Solo)
			bt.comps[k] = c
		}
		buf = append(buf, c)
	}
	bt.buf = buf[:0]
	// The model predicts its own solo; the measured solo parameter is for
	// extrapolating backends. Memoized because the model is per-NF, so
	// the (NF, profile) key pins the value.
	sp, ok := bt.soloPreds[target]
	if !ok {
		sp = ym.Solo.Predict(target.Profile)
		bt.soloPreds[target] = sp
	}
	return ym.PredictThroughput(target.Profile, buf, sp), nil
}
