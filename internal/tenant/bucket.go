package tenant

import (
	"sync"
	"time"
)

// Bucket is a token-bucket rate limiter: capacity Burst tokens,
// refilled at Rate tokens per second from the elapsed monotonic clock
// on each Allow call — no background refill goroutine to leak or to
// wake idle processes. The zero Bucket is not usable; construct with
// NewBucket.
//
// The invariant property tests pin: across any window, the number of
// granted requests never exceeds burst + rate·elapsed, and the token
// balance never goes negative — concurrent Allow calls can interleave
// but can never jointly overdraw.
type Bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; > 0
	burst  float64 // bucket capacity; >= 1
	tokens float64
	last   time.Time
}

// NewBucket builds a full bucket granting rate requests per second
// sustained with bursts up to burst. rate must be positive (a tenant
// with no limit simply has no bucket); burst below 1 is raised to 1 so
// a configured tenant can always make at least one request.
func NewBucket(rate, burst float64) *Bucket {
	if burst < 1 {
		burst = 1
	}
	return &Bucket{rate: rate, burst: burst, tokens: burst}
}

// Rate returns the sustained refill rate (tokens per second).
func (b *Bucket) Rate() float64 { return b.rate }

// Burst returns the bucket capacity.
func (b *Bucket) Burst() float64 { return b.burst }

// Allow consumes one token if available. When the bucket is empty it
// returns false and how long the caller must wait for the next token —
// the Retry-After the admission gate advertises. now should come from
// time.Now() so the refill reads the monotonic clock; out-of-order
// timestamps (concurrent callers racing past each other) never refill
// backwards and never push the balance negative.
func (b *Bucket) Allow(now time.Time) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.last.IsZero() {
		b.last = now
	}
	if el := now.Sub(b.last); el > 0 {
		b.tokens += el.Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	// Time until the deficit refills to one whole token.
	return false, time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
}
