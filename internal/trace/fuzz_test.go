package trace

import (
	"bytes"
	"os"
	"testing"
)

// FuzzDecode feeds arbitrary bytes to the trace decoder: it must never
// panic, and anything it accepts must re-encode canonically — the
// encoded form decodes again to the identical trace and identical
// bytes (the schema's round-trip guarantee, fuzzed).
func FuzzDecode(f *testing.F) {
	// Seed with a real trace, its truncations, and hostile variants.
	var buf bytes.Buffer
	if _, err := Record(&buf, testScenario()); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	if committed, err := os.ReadFile(goldenTrace); err == nil {
		f.Add(committed)
	}
	f.Add([]byte(""))
	f.Add([]byte("{}\n"))
	f.Add([]byte(`{"version":1,"kind":"yala-cluster-trace","scenario":{}}` + "\n"))
	f.Add([]byte(`{"version":1,"kind":"yala-cluster-trace","scenario":{}}` + "\n" +
		`{"id":0,"at":1,"nf":"ACL","profile":{"flows":1,"pktsize":64,"mtbr":0},"sla":0.1,"lifetime":1}` + "\n"))
	f.Add([]byte("\x00\x01\x02"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var enc bytes.Buffer
		if err := Write(&enc, tr); err != nil {
			t.Fatalf("accepted trace failed to encode: %v", err)
		}
		tr2, err := Decode(bytes.NewReader(enc.Bytes()))
		if err != nil {
			t.Fatalf("canonical encoding of accepted trace failed to decode: %v", err)
		}
		if len(tr2.Stream) != len(tr.Stream) {
			t.Fatalf("round trip changed stream length: %d → %d", len(tr.Stream), len(tr2.Stream))
		}
		for i := range tr.Stream {
			if tr.Stream[i] != tr2.Stream[i] {
				t.Fatalf("round trip changed event %d: %+v → %+v", i, tr.Stream[i], tr2.Stream[i])
			}
		}
		var enc2 bytes.Buffer
		if err := Write(&enc2, tr2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc.Bytes(), enc2.Bytes()) {
			t.Fatal("canonical encoding is not a fixed point")
		}
	})
}
