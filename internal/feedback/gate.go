package feedback

import "sort"

// Gate decisions, in the order the gate checks them. Only Drift ever
// starts a retrain; Hold is the gate refusing to act on a signal it
// cannot trust.
const (
	// DecisionInvalid: the observation was malformed (non-positive or
	// non-finite measurement/prediction) and was discarded.
	DecisionInvalid = "invalid"
	// DecisionWarmup: the window is below the minimum sample count —
	// no decision yet.
	DecisionWarmup = "warmup"
	// DecisionOK: the trusted consensus agrees with the live model.
	DecisionOK = "ok"
	// DecisionHold: the signal is untrustworthy — too few trusted
	// samples survive filtering, or the trusted set is mutually
	// inconsistent. The gate neither trips nor clears.
	DecisionHold = "hold"
	// DecisionDrift: a self-consistent trusted majority disagrees with
	// the live model — genuine shift; retraining is warranted.
	DecisionDrift = "drift"
)

// minSourceSamples is the floor below which a source's outlier rate is
// not judged — two unlucky samples must not quarantine a reporter.
const minSourceSamples = 3

// gateResult is one evaluation of a key's window.
type gateResult struct {
	decision string
	// scale is the trusted median measured/predicted ratio — the
	// calibration factor retraining applies. 1 when no trusted
	// consensus exists.
	scale float64
	// quarantined is the set of sources whose windowed samples are
	// mostly outliers against the window median; nil when none are.
	quarantined map[string]bool
}

// evaluate runs the dDCA-style drift-vs-fault gate over one window.
//
// Data signal: the per-sample ratio q = measured/predicted; R = the
// window median. Diagnostic signals: per-sample outlierness (relative
// deviation from R beyond OutlierDev), per-source outlier rate (a
// source mostly emitting outliers is quarantined — the empty source is
// exempt, it means "untracked"), trusted-set size and trusted-set
// dispersion (relative MAD). The decision fuses them: distrust the
// window (hold) before distrusting the model (drift).
func evaluate(cfg Config, all []sample) gateResult {
	if len(all) < cfg.MinSamples {
		return gateResult{decision: DecisionWarmup, scale: 1}
	}
	ratios := make([]float64, len(all))
	for i, s := range all {
		ratios[i] = s.ratio
	}
	med := median(ratios)

	outlier := make([]bool, len(all))
	type srcStat struct{ n, out int }
	bySrc := map[string]*srcStat{}
	for i, s := range all {
		outlier[i] = abs(s.ratio-med)/med > cfg.OutlierDev
		if s.source == "" {
			continue
		}
		st := bySrc[s.source]
		if st == nil {
			st = &srcStat{}
			bySrc[s.source] = st
		}
		st.n++
		if outlier[i] {
			st.out++
		}
	}
	var quarantined map[string]bool
	for src, st := range bySrc {
		if st.n >= minSourceSamples && float64(st.out) > cfg.SourceOutlierFrac*float64(st.n) {
			if quarantined == nil {
				quarantined = map[string]bool{}
			}
			quarantined[src] = true
		}
	}

	trusted := make([]float64, 0, len(all))
	for i, s := range all {
		if outlier[i] || quarantined[s.source] {
			continue
		}
		trusted = append(trusted, s.ratio)
	}
	res := gateResult{quarantined: quarantined, scale: 1}
	if float64(len(trusted)) < cfg.MinTrustedFrac*float64(len(all)) {
		res.decision = DecisionHold
		return res
	}
	rt := median(trusted)
	devs := make([]float64, len(trusted))
	for i, q := range trusted {
		devs[i] = abs(q - rt)
	}
	if median(devs)/rt > cfg.ConsistencyMax {
		res.decision = DecisionHold
		return res
	}
	res.scale = rt
	if abs(rt-1) > cfg.DriftThreshold {
		res.decision = DecisionDrift
	} else {
		res.decision = DecisionOK
	}
	return res
}

// median sorts xs in place and returns its median. xs must be
// non-empty (the gate never evaluates an empty window past warmup).
func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
