package core
