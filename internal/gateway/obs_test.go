package gateway

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/pkg/yalaclient"
)

func (s *stubReplica) lastRequestID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastRID
}

// TestRequestIDForwardedUpstream: the gateway forwards the client's
// X-Request-Id to the replica, and generates one when the client sent
// none — either way the replica sees the same ID the client gets back.
func TestRequestIDForwardedUpstream(t *testing.T) {
	a := newStubReplica(t, "a")
	_, ts := testGateway(t, -1, a)

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v2/models/X:predict", strings.NewReader(`{}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "client-chose-this")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := a.lastRequestID(); got != "client-chose-this" {
		t.Fatalf("replica saw X-Request-Id %q, want the client's", got)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "client-chose-this" {
		t.Fatalf("response X-Request-Id %q, want the client's", got)
	}

	// No client ID: the gateway mints one and still propagates it.
	resp2, err := http.Post(ts.URL+"/v2/models/X:predict", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	rid := resp2.Header.Get("X-Request-Id")
	if !strings.HasPrefix(rid, "gw-") {
		t.Fatalf("generated request ID %q should carry the gw- prefix", rid)
	}
	if got := a.lastRequestID(); got != rid {
		t.Fatalf("replica saw %q, client saw %q — the hop broke the ID", got, rid)
	}
}

// TestRequestIDInReplicaEnvelope runs the real stack: a client-chosen
// X-Request-Id crosses the gateway hop and comes back inside the
// replica's own /v2 error envelope — the replica adopted the gateway's
// forwarded ID rather than minting its own.
func TestRequestIDInReplicaEnvelope(t *testing.T) {
	reps, err := SpawnReplicas(1, quickServiceConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { CloseReplicas(reps) })
	g, err := New(Config{Backends: []string{reps[0].URL}, HealthInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)

	// Malformed body → the replica answers 400 with the envelope; no
	// model ever loads, so the test costs one round trip.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v2/models/FlowStats/yala:predict", strings.NewReader(`{not json`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "trace-me-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var env struct {
		Error struct {
			RequestID string `json:"request_id"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.RequestID != "trace-me-7" {
		t.Fatalf("replica envelope request_id %q, want the client's trace-me-7", env.Error.RequestID)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "trace-me-7" {
		t.Fatalf("response header X-Request-Id %q, want trace-me-7", got)
	}
}

// TestAggregateStatsDoesNotSumUptime: two replicas up ~100s each must
// aggregate to a ~100s-old fleet, not a 200s-old one; start_time is
// the earliest replica's.
func TestAggregateStatsDoesNotSumUptime(t *testing.T) {
	a, b := newStubReplica(t, "a"), newStubReplica(t, "b")
	a.mu.Lock()
	a.uptimeSeconds, a.startTime = 100, 1700000000
	a.mu.Unlock()
	b.mu.Lock()
	b.uptimeSeconds, b.startTime = 90, 1700000010
	b.mu.Unlock()
	_, ts := testGateway(t, -1, a, b)

	resp, err := http.Get(ts.URL + "/v2/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st yalaclient.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.UptimeSeconds != 100 {
		t.Fatalf("aggregated uptime_seconds = %g, want the max 100 (summing uptimes fabricates fleet age)", st.UptimeSeconds)
	}
	if st.StartTime != 1700000000 {
		t.Fatalf("aggregated start_time = %d, want the earliest 1700000000", st.StartTime)
	}
}

// TestGatewayMetricsAggregation: GET /metrics carries the gateway's own
// series plus the fleet's merged yala_* series — counters and histogram
// components summed, uptime max'd, start time min'd.
func TestGatewayMetricsAggregation(t *testing.T) {
	a, b := newStubReplica(t, "a"), newStubReplica(t, "b")
	a.mu.Lock()
	a.uptimeSeconds, a.startTime = 100, 1700000000
	a.mu.Unlock()
	b.mu.Lock()
	b.uptimeSeconds, b.startTime = 90, 1700000010
	b.mu.Unlock()
	_, ts := testGateway(t, -1, a, b)

	// Two proxied requests so gateway counters are non-zero.
	for i := 0; i < 2; i++ {
		status, _ := post(t, ts.URL+"/v2/models/X:predict", `{}`)
		if status != http.StatusOK {
			t.Fatalf("proxied predict status %d", status)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := obs.ParseExposition(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := exp.Value("gateway_requests_total", ""); !ok || v < 2 {
		t.Fatalf("gateway_requests_total = %g (ok=%v), want >= 2", v, ok)
	}
	if v, ok := exp.Value("gateway_replica_up", a.url()); !ok || v != 1 {
		t.Fatalf("gateway_replica_up{%s} = %g (ok=%v), want 1", a.url(), v, ok)
	}
	// Each stub reports its own served count; the merged exposition sums
	// them — both replicas saw at least one request each or one saw all,
	// either way the sum is the fleet total (>= 2 predicts + scrapes).
	if v, ok := exp.Value("yala_requests_total", `verb="predict"`); !ok || v < 2 {
		t.Fatalf("merged yala_requests_total = %g (ok=%v), want >= 2", v, ok)
	}
	if v, ok := exp.Value("yala_uptime_seconds", ""); !ok || v != 100 {
		t.Fatalf("merged yala_uptime_seconds = %g (ok=%v), want max 100", v, ok)
	}
	if v, ok := exp.Value("yala_start_time_seconds", ""); !ok || v != 1700000000 {
		t.Fatalf("merged yala_start_time_seconds = %g (ok=%v), want min 1700000000", v, ok)
	}
	if v, ok := exp.Value("yala_stage_seconds_count", `stage="predict"`); !ok || v != 2 {
		t.Fatalf("merged yala_stage_seconds_count = %g (ok=%v), want 2 (one per replica)", v, ok)
	}
	// The two proxied predicts each went through send(), so the
	// per-replica upstream histograms hold two observations between them.
	va, _ := exp.Value("gateway_upstream_seconds_count", a.url())
	vb, _ := exp.Value("gateway_upstream_seconds_count", b.url())
	if va+vb < 2 {
		t.Fatalf("upstream latency histograms recorded %g+%g observations, want >= 2", va, vb)
	}
}
