package nf

import (
	"repro/internal/nicsim"
	"repro/internal/packet"
	"repro/internal/sim"
)

// routerFIBRoutes is the synthetic FIB size for IPRouter.
const routerFIBRoutes = 10000

// IPRouter forwards packets by longest-prefix match over a fixed FIB and
// decrements the TTL (Click, no accelerator). Its working set is the FIB,
// independent of flow count — the paper's traffic-insensitive router.
type IPRouter struct {
	fib     *LPM
	dropped uint64
}

// NewIPRouter returns a router with a deterministic random FIB.
func NewIPRouter() *IPRouter {
	r := &IPRouter{fib: NewLPM()}
	r.fib.PopulateRandom(routerFIBRoutes, sim.NewRNG(0xf1b))
	return r
}

// Name implements NF.
func (r *IPRouter) Name() string { return "IPRouter" }

// Pattern implements NF.
func (r *IPRouter) Pattern() nicsim.ExecPattern { return nicsim.RunToCompletion }

// StateBytes implements NF.
func (r *IPRouter) StateBytes() float64 { return r.fib.StateBytes() }

// Reset implements NF: the FIB is static configuration, so only the drop
// counter clears.
func (r *IPRouter) Reset() { r.dropped = 0 }

// Process implements NF.
func (r *IPRouter) Process(p *packet.Packet, st *OpStats) error {
	if err := ensureParsed(p); err != nil {
		return err
	}
	hop, steps := r.fib.Lookup(p.Tuple.DstIP)
	st.TrieSteps += float64(steps)
	if hop < 0 || !p.DecTTL() {
		r.dropped++
		st.Drops++
	}
	st.BytesTouched += headerBytes
	st.Packets++
	return nil
}

// Dropped reports packets dropped for missing routes or TTL expiry.
func (r *IPRouter) Dropped() uint64 { return r.dropped }

// tunnelEndpoints is the number of configured tunnel endpoints.
const tunnelEndpoints = 256

// IPTunnel encapsulates packets toward per-flow tunnel endpoints (Click).
// The encapsulation copy makes it packet-size sensitive, and the per-flow
// endpoint cache makes it flow-count sensitive — the NF the paper's
// traffic-awareness evaluation leans on (Table 5).
type IPTunnel struct {
	table *FlowTable
}

// NewIPTunnel returns an empty tunnel gateway.
func NewIPTunnel() *IPTunnel { return &IPTunnel{table: NewFlowTable()} }

// Name implements NF.
func (t *IPTunnel) Name() string { return "IPTunnel" }

// Pattern implements NF.
func (t *IPTunnel) Pattern() nicsim.ExecPattern { return nicsim.RunToCompletion }

// StateBytes implements NF.
func (t *IPTunnel) StateBytes() float64 { return t.table.StateBytes() }

// Reset implements NF.
func (t *IPTunnel) Reset() { t.table.Reset() }

// Process implements NF: pick (or assign) the flow's tunnel endpoint and
// encapsulate, which touches the whole frame.
func (t *IPTunnel) Process(p *packet.Packet, st *OpStats) error {
	if err := ensureParsed(p); err != nil {
		return err
	}
	key := p.Tuple.Hash()
	e, probes, created := t.table.Insert(key)
	if created {
		e.Data[0] = key % tunnelEndpoints
	}
	e.Data[1]++
	// Encapsulation: write a fresh outer header and copy the inner frame.
	outerDst := uint32(0xac100000 + e.Data[0]) // 172.16.0.0/16 endpoint block
	p.SetDstIP(outerDst)
	st.BytesTouched += float64(p.Len()) + packet.IPv4HeaderLen
	st.HashProbes += float64(probes)
	st.Packets++
	return nil
}

// natPortBase is the first port handed out by the NAT allocator.
const natPortBase = 20000

// NAT rewrites source addresses with per-flow port allocation (Click).
type NAT struct {
	table    *FlowTable
	nextPort uint64
	publicIP uint32
}

// NewNAT returns a NAT with an empty translation table.
func NewNAT() *NAT {
	return &NAT{table: NewFlowTable(), nextPort: natPortBase, publicIP: 0xc6336401} // 198.51.100.1
}

// Name implements NF.
func (n *NAT) Name() string { return "NAT" }

// Pattern implements NF.
func (n *NAT) Pattern() nicsim.ExecPattern { return nicsim.RunToCompletion }

// StateBytes implements NF.
func (n *NAT) StateBytes() float64 { return n.table.StateBytes() }

// Reset implements NF.
func (n *NAT) Reset() {
	n.table.Reset()
	n.nextPort = natPortBase
}

// Process implements NF: allocate a public port on the first packet of a
// flow, then rewrite the source address.
func (n *NAT) Process(p *packet.Packet, st *OpStats) error {
	if err := ensureParsed(p); err != nil {
		return err
	}
	e, probes, created := n.table.Insert(p.Tuple.Hash())
	if created {
		e.Data[0] = n.nextPort
		n.nextPort++
		if n.nextPort > 65000 {
			n.nextPort = natPortBase
		}
	}
	e.Data[1]++
	p.SetSrcIP(n.publicIP)
	st.HashProbes += float64(probes)
	st.BytesTouched += headerBytes + packet.IPv4HeaderLen // header rewrite
	st.Packets++
	return nil
}

// Translations reports the number of active NAT entries.
func (n *NAT) Translations() int { return n.table.Len() }
