package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/ml"
	"repro/internal/nicsim"
)

// Offline training is a one-time effort (§7.6); trained models persist as
// JSON so the online predictor can load them without re-profiling — the
// role of the paper artifact's models.pkl.

// memModelJSON mirrors MemModel.
type memModelJSON struct {
	GBR          *ml.GBR `json:"gbr"`
	TrafficAware bool    `json:"traffic_aware"`
}

// MarshalJSON implements json.Marshaler.
func (m *MemModel) MarshalJSON() ([]byte, error) {
	return json.Marshal(memModelJSON{m.gbr, m.trafficAware})
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *MemModel) UnmarshalJSON(data []byte) error {
	var v memModelJSON
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	if v.GBR == nil {
		return fmt.Errorf("core: memory model without regressor")
	}
	m.gbr, m.trafficAware = v.GBR, v.TrafficAware
	return nil
}

// soloModelJSON mirrors SoloModel.
type soloModelJSON struct {
	GBR *ml.GBR `json:"gbr"`
}

// MarshalJSON implements json.Marshaler.
func (m *SoloModel) MarshalJSON() ([]byte, error) {
	return json.Marshal(soloModelJSON{m.gbr})
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *SoloModel) UnmarshalJSON(data []byte) error {
	var v soloModelJSON
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	if v.GBR == nil {
		return fmt.Errorf("core: solo model without regressor")
	}
	m.gbr = v.GBR
	return nil
}

// Save writes the model as JSON.
func (m *Model) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(m); err != nil {
		return fmt.Errorf("core: saving model %s: %w", m.Name, err)
	}
	return nil
}

// SaveFile writes the model to a file.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadModel reads a model saved with Save.
func LoadModel(r io.Reader) (*Model, error) {
	var m Model
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("core: loading model: %w", err)
	}
	if m.Solo == nil || m.Mem == nil {
		return nil, fmt.Errorf("core: model %q missing solo or memory model", m.Name)
	}
	if m.Accels == nil {
		m.Accels = map[nicsim.AccelKind]*AccelModel{}
	}
	return &m, nil
}

// LoadModelFile reads a model from a file.
func LoadModelFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadModel(f)
}
