package gateway

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/tenant"
)

// initObs builds the gateway's own metric registry: routing counters
// the proxy paths already maintain as atomics, edge-cache state, and
// fleet-size gauges. Per-replica series register per attachment
// (registerEndpointObs) since the fleet is dynamic.
func (g *Gateway) initObs() {
	r := obs.NewRegistry()
	g.obs = r
	r.CounterFunc("gateway_requests_total", g.requests.Load)
	r.CounterFunc("gateway_retries_total", g.retries.Load)
	r.CounterFunc("gateway_fanouts_total", g.fanouts.Load)
	r.CounterFunc("gateway_coalesced_total", g.coalesced.Load)
	// gateway_-prefixed (not yala_) so the family never collides with
	// the replicas' own yala_client_canceled_total in the merged
	// exposition below.
	r.CounterFunc("gateway_client_canceled_total", g.canceled.Load)
	r.CounterFunc("gateway_edge_hits_total", g.edge.Hits)
	r.CounterFunc("gateway_edge_misses_total", g.edge.Misses)
	r.CounterFunc("gateway_edge_evictions_total", g.edge.Evictions)
	r.GaugeFunc("gateway_edge_entries", func() float64 { return float64(g.edge.Len()) })
	r.GaugeFunc("gateway_replicas_attached", func() float64 { return float64(g.attachedCount()) })
	r.GaugeFunc("gateway_inflight_requests", func() float64 { return float64(g.inflight.Load()) })
	g.reqSeconds = r.Histogram("gateway_request_seconds", nil)
}

// registerEndpointObs exposes one attachment's series, labeled by the
// replica URL — the operator-facing identity. The up gauge reports 0
// once the endpoint is detached (its slot moved on), so a superseded
// URL reads as a down target rather than mirroring its successor.
func (g *Gateway) registerEndpointObs(rep *replica, ep *endpoint) {
	r := g.obs
	r.GaugeFunc("gateway_replica_up", func() float64 {
		if rep.ep.Load() == ep && rep.healthy.Load() {
			return 1
		}
		return 0
	}, "replica", ep.url)
	r.CounterFunc("gateway_replica_requests_total", ep.requests.Load, "replica", ep.url)
	r.CounterFunc("gateway_replica_errors_total", ep.errors.Load, "replica", ep.url)
	r.CounterFunc("gateway_replica_fanouts_total", ep.fanouts.Load, "replica", ep.url)
	ep.upstream = r.Histogram("gateway_upstream_seconds", nil, "replica", ep.url)
}

// Obs exposes the gateway's metric registry.
func (g *Gateway) Obs() *obs.Registry { return g.obs }

// promContentType is the Prometheus text exposition media type.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// aggregationRule decides how one replica-exported family merges across
// the fleet: counters and histogram components sum; uptime reports the
// oldest replica's and start time the earliest — summing either would
// fabricate a server older than the fleet.
func aggregationRule(family string) obs.MergeRule {
	switch family {
	case "yala_uptime_seconds":
		return obs.MergeMax
	case "yala_start_time_seconds":
		return obs.MergeMin
	}
	return obs.MergeSum
}

// handleMetrics serves GET /metrics: the gateway's own gateway_* series
// followed by the replicas' yala_* series aggregated across the fleet
// (summed, except the uptime/start-time gauges per aggregationRule).
// Replica scrapes are concurrent and best-effort — a replica that fails
// to answer is simply absent from this scrape, like a down target in
// any Prometheus fleet.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", promContentType)
	g.obs.WriteProm(w)
	merged := obs.MergeExpositions(g.scrapeReplicas(r.Context()), aggregationRule)
	merged.Render(w)
}

// scrapeReplicas fetches and parses every healthy replica's /metrics.
func (g *Gateway) scrapeReplicas(ctx context.Context) []*obs.Exposition {
	exps := make([]*obs.Exposition, len(g.replicas))
	var wg sync.WaitGroup
	for i, rep := range g.replicas {
		ep := rep.ep.Load()
		if ep == nil || !rep.healthy.Load() {
			continue
		}
		wg.Add(1)
		go func(i int, ep *endpoint) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, g.cfg.HealthTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(sctx, http.MethodGet, ep.url+"/metrics", nil)
			if err != nil {
				return
			}
			resp, err := g.httpc.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return
			}
			exp, err := obs.ParseExposition(resp.Body)
			if err != nil {
				return
			}
			exps[i] = exp
		}(i, ep)
	}
	wg.Wait()
	return exps
}

// statusRecorder captures the response status for the access log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// withObs is the gateway's request middleware: it adopts the client's
// X-Request-Id (or generates a gw- one), carries it in the request
// context as an obs trace so send() can forward it upstream — one ID
// then names the request at the client, the gateway and the replica —
// and records overall gateway latency plus the optional access log.
func (g *Gateway) withObs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := fmt.Sprintf("gw-%06d", g.ridCounter.Add(1))
		if hdr := r.Header.Get("X-Request-Id"); hdr != "" && len(hdr) <= 64 {
			rid = hdr
		}
		w.Header().Set("X-Request-Id", rid)
		tr := obs.NewTrace(rid)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		g.inflight.Add(1)
		start := time.Now()
		next.ServeHTTP(rec, r.WithContext(obs.ContextWithTrace(r.Context(), tr)))
		dur := time.Since(start)
		g.inflight.Add(-1)
		if rec.status == tenant.StatusClientClosedRequest {
			g.canceled.Add(1)
		}
		g.reqSeconds.Observe(dur.Seconds())
		if g.cfg.AccessLog {
			log.Printf("gateway: rid=%s method=%s path=%s status=%d dur=%s",
				rid, r.Method, r.URL.Path, rec.status, dur.Round(time.Microsecond))
		}
	})
}

// requestIDFrom reads the request ID the middleware attached, "" on a
// context without one (direct library use).
func requestIDFrom(ctx context.Context) string {
	if tr := obs.FromContext(ctx); tr != nil {
		return tr.ID
	}
	return ""
}
