package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []float64
	for _, tm := range []float64{5, 1, 3, 2, 4} {
		tm := tm
		e.At(tm, func() { got = append(got, tm) })
	}
	e.Run()
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("events out of order: %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
}

func TestEngineSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(1.0, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", got)
		}
	}
}

func TestEngineAfterUsesCurrentTime(t *testing.T) {
	e := NewEngine()
	var at float64
	e.At(2, func() {
		e.After(3, func() { at = e.Now() })
	})
	e.Run()
	if at != 5 {
		t.Fatalf("After fired at %v, want 5", at)
	}
}

func TestEnginePastSchedulingClamps(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		e.At(1, func() {
			if e.Now() != 10 {
				t.Errorf("past event fired at %v, want clamped to 10", e.Now())
			}
		})
	})
	e.Run()
	if e.Now() != 10 {
		t.Fatalf("clock at %v, want 10", e.Now())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	for i := 1; i <= 10; i++ {
		e.At(float64(i), func() { fired++ })
	}
	e.RunUntil(5)
	if fired != 5 {
		t.Fatalf("fired %d events by t=5, want 5", fired)
	}
	if e.Now() != 5 {
		t.Fatalf("clock %v, want 5", e.Now())
	}
	if e.Pending() != 5 {
		t.Fatalf("pending %d, want 5", e.Pending())
	}
}

func TestEngineStepEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	a := NewRNG(42)
	b := a.Split()
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[a.Uint64()] = true
	}
	collisions := 0
	for i := 0; i < 100; i++ {
		if seen[b.Uint64()] {
			collisions++
		}
	}
	if collisions > 0 {
		t.Fatalf("split stream collided %d times with parent", collisions)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(1)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("mean %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Errorf("stddev %v, want ~2", math.Sqrt(variance))
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(3)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(4)
	}
	if m := sum / n; math.Abs(m-4) > 0.1 {
		t.Errorf("exp mean %v, want ~4", m)
	}
}

func TestRNGJitterNonNegative(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		if v := r.Jitter(1, 0.5); v < 0 {
			t.Fatalf("Jitter returned negative %v", v)
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		if n == 0 {
			return true
		}
		p := NewRNG(seed).Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
}

func TestRNGRangeBounds(t *testing.T) {
	r := NewRNG(6)
	for i := 0; i < 10000; i++ {
		if v := r.Range(2, 5); v < 2 || v >= 5 {
			t.Fatalf("Range(2,5) = %v", v)
		}
	}
}
