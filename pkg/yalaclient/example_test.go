package yalaclient_test

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http/httptest"

	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/profiling"
	"repro/internal/serve"
	"repro/internal/tenant"
	"repro/pkg/yalaclient"
)

// Example drives the SDK against an in-process prediction server: ask
// whether FlowStats keeps its SLA when co-located with ACL, then list
// the models the server materialized to answer. In production the
// server side is just `yala serve -models DIR`.
func Example() {
	// A quick-training server configuration keeps the example fast;
	// deployments point Dir at offline-trained full models instead.
	train := core.DefaultTrainConfig()
	train.Seed = 1
	train.Plan = profiling.Random(12, 1)
	train.PatternProbes = 1
	train.GBR = ml.GBRConfig{Trees: 25, LearningRate: 0.15, MaxDepth: 3, MinLeaf: 2, Subsample: 1, Seed: 1}
	svc := serve.NewService(serve.ServiceConfig{
		Registry: serve.RegistryConfig{Seed: 1, Train: train},
		Workers:  2,
	})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	client := yalaclient.New(srv.URL)
	ctx := context.Background()

	pred, err := client.Predict(ctx, yalaclient.ModelID{NF: "FlowStats"}, "",
		yalaclient.PredictParams{Competitors: []yalaclient.Competitor{{Name: "ACL"}}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s via %s: predicted throughput positive: %v\n",
		pred.NF, pred.Backend, pred.PredictedPPS > 0)

	admit, err := client.Admit(ctx, yalaclient.ModelID{NF: "FlowStats"}, "",
		yalaclient.AdmitParams{
			Residents: []yalaclient.Resident{{Name: "ACL", SLA: 1}},
			SLA:       1, // tolerate any drop — always admissible within core budget
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("admit with loose SLA: %v\n", admit.Admit)

	models, err := client.AllModels(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("models served: %d\n", len(models))

	// Output:
	// FlowStats via yala: predicted throughput positive: true
	// admit with loose SLA: true
	// models served: 2
}

// ExampleWithAPIKey authenticates against a multi-tenant server and
// shows the typed 429 a tenant sees once its token bucket empties. In
// production the tenant set comes from `yala serve -tenants keys.json`.
func ExampleWithAPIKey() {
	reg, err := tenant.NewRegistry(tenant.File{
		Tenants: []tenant.Spec{{Name: "team-a", Key: "k-team-a", RPS: 1, Burst: 1}},
	})
	if err != nil {
		log.Fatal(err)
	}
	train := core.DefaultTrainConfig()
	train.Seed = 1
	train.Plan = profiling.Random(12, 1)
	train.PatternProbes = 1
	train.GBR = ml.GBRConfig{Trees: 25, LearningRate: 0.15, MaxDepth: 3, MinLeaf: 2, Subsample: 1, Seed: 1}
	svc := serve.NewService(serve.ServiceConfig{
		Registry: serve.RegistryConfig{Seed: 1, Train: train},
		Workers:  2,
		Gate:     tenant.NewGate(reg, tenant.GateConfig{}),
	})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	ctx := context.Background()

	// Warm the model as the (unlimited) anonymous tenant so team-a's
	// requests below are back-to-back — a cold first predict trains the
	// model and would quietly refill the 1 rps bucket meanwhile.
	if _, err := yalaclient.New(srv.URL).Predict(ctx, yalaclient.ModelID{NF: "FlowStats"}, "", yalaclient.PredictParams{}); err != nil {
		log.Fatal(err)
	}

	client := yalaclient.New(srv.URL, yalaclient.WithAPIKey("k-team-a"))

	// The burst token admits the first request.
	if _, err := client.Predict(ctx, yalaclient.ModelID{NF: "FlowStats"}, "", yalaclient.PredictParams{}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("first predict: ok")

	// The second is shed with a structured, typed refusal. A client
	// built WithRetries would instead wait out RetryAfter automatically
	// (unless its context deadline cannot cover the wait).
	_, err = client.Predict(ctx, yalaclient.ModelID{NF: "FlowStats"}, "", yalaclient.PredictParams{})
	var rle *yalaclient.RateLimitError
	if errors.As(err, &rle) {
		fmt.Printf("second predict: %s, retry after %s\n", rle.Code, rle.RetryAfter)
	}

	// Output:
	// first predict: ok
	// second predict: resource_exhausted, retry after 1s
}
