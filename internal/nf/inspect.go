package nf

import (
	"repro/internal/nicsim"
	"repro/internal/packet"
)

// FlowMonitor combines per-flow statistics with payload inspection on the
// regex accelerator (Click + regex). It runs as a pipeline: the CPU stage
// updates flow state while the accelerator scans payloads — the paper's
// primary multi-resource NF.
type FlowMonitor struct {
	table   *FlowTable
	matched uint64
}

// NewFlowMonitor returns an empty FlowMonitor.
func NewFlowMonitor() *FlowMonitor { return &FlowMonitor{table: NewFlowTable()} }

// Name implements NF.
func (f *FlowMonitor) Name() string { return "FlowMonitor" }

// Pattern implements NF.
func (f *FlowMonitor) Pattern() nicsim.ExecPattern { return nicsim.Pipeline }

// StateBytes implements NF.
func (f *FlowMonitor) StateBytes() float64 { return f.table.StateBytes() }

// Reset implements NF.
func (f *FlowMonitor) Reset() {
	f.table.Reset()
	f.matched = 0
}

// Process implements NF.
func (f *FlowMonitor) Process(p *packet.Packet, st *OpStats) error {
	if err := ensureParsed(p); err != nil {
		return err
	}
	e, probes, _ := f.table.Insert(p.Tuple.Hash())
	e.Data[0]++
	e.Data[1] += uint64(p.Len())
	if m := scanPayload(p, st); m > 0 {
		e.Data[2] += uint64(m)
		f.matched++
	}
	st.HashProbes += float64(probes)
	st.BytesTouched += headerBytes
	st.Packets++
	return nil
}

// NIDS scans payloads against the ruleset while tracking per-flow stream
// state — the reassembly/context table real intrusion detectors keep for
// every connection (Click + regex). It runs run-to-completion: the
// verdict must be known before the packet leaves.
type NIDS struct {
	streams *FlowTable
	alerted uint64
}

// NewNIDS returns a NIDS with an empty stream table.
func NewNIDS() *NIDS { return &NIDS{streams: NewFlowTable()} }

// Name implements NF.
func (n *NIDS) Name() string { return "NIDS" }

// Pattern implements NF.
func (n *NIDS) Pattern() nicsim.ExecPattern { return nicsim.RunToCompletion }

// StateBytes implements NF.
func (n *NIDS) StateBytes() float64 { return n.streams.StateBytes() }

// Reset implements NF.
func (n *NIDS) Reset() {
	n.streams.Reset()
	n.alerted = 0
}

// Process implements NF: update the flow's stream context, scan the
// payload, and record alerts against the flow.
func (n *NIDS) Process(p *packet.Packet, st *OpStats) error {
	if err := ensureParsed(p); err != nil {
		return err
	}
	e, probes, _ := n.streams.Insert(p.Tuple.Hash())
	e.Data[0]++ // packets inspected
	matches := scanPayload(p, st)
	if matches > 0 {
		if e.Data[1] == 0 {
			n.alerted++
		}
		e.Data[1] += uint64(matches)
	}
	st.HashProbes += float64(probes)
	st.BytesTouched += headerBytes
	st.Packets++
	return nil
}

// AlertedFlows reports the number of flows with at least one alert.
func (n *NIDS) AlertedFlows() int { return int(n.alerted) }

// TrackedFlows reports the number of flows with stream state.
func (n *NIDS) TrackedFlows() int { return n.streams.Len() }

// PacketFilter drops packets whose payload matches the ruleset (DOCA +
// regex), run-to-completion.
type PacketFilter struct {
	dropped uint64
	passed  uint64
}

// NewPacketFilter returns a filter with zeroed counters.
func NewPacketFilter() *PacketFilter { return &PacketFilter{} }

// Name implements NF.
func (f *PacketFilter) Name() string { return "PacketFilter" }

// Pattern implements NF.
func (f *PacketFilter) Pattern() nicsim.ExecPattern { return nicsim.RunToCompletion }

// StateBytes implements NF: the filter is stateless beyond counters.
func (f *PacketFilter) StateBytes() float64 { return 64 }

// Reset implements NF.
func (f *PacketFilter) Reset() { f.dropped, f.passed = 0, 0 }

// Process implements NF.
func (f *PacketFilter) Process(p *packet.Packet, st *OpStats) error {
	if err := ensureParsed(p); err != nil {
		return err
	}
	if scanPayload(p, st) > 0 {
		f.dropped++
		st.Drops++
	} else {
		f.passed++
	}
	st.BytesTouched += headerBytes
	st.Packets++
	return nil
}

// Dropped reports packets dropped by the filter.
func (f *PacketFilter) Dropped() uint64 { return f.dropped }

// IPCompGateway scans payloads and compresses them toward the tunnel
// peer (Click + regex + compression), the paper's dual-accelerator NF.
// It runs as a pipeline across the two engines.
type IPCompGateway struct {
	table *FlowTable
}

// NewIPCompGateway returns an empty gateway.
func NewIPCompGateway() *IPCompGateway { return &IPCompGateway{table: NewFlowTable()} }

// Name implements NF.
func (g *IPCompGateway) Name() string { return "IPCompGateway" }

// Pattern implements NF.
func (g *IPCompGateway) Pattern() nicsim.ExecPattern { return nicsim.Pipeline }

// StateBytes implements NF.
func (g *IPCompGateway) StateBytes() float64 { return g.table.StateBytes() }

// Reset implements NF.
func (g *IPCompGateway) Reset() { g.table.Reset() }

// Process implements NF.
func (g *IPCompGateway) Process(p *packet.Packet, st *OpStats) error {
	if err := ensureParsed(p); err != nil {
		return err
	}
	e, probes, _ := g.table.Insert(p.Tuple.Hash())
	e.Data[0]++
	scanPayload(p, st)
	st.CompressBytes += float64(len(p.Payload()))
	st.HashProbes += float64(probes)
	st.BytesTouched += headerBytes
	st.Packets++
	return nil
}
