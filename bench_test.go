package repro

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates its experiment at a reduced
// protocol scale (the full protocol runs via cmd/experiments) and reports
// wall time per regeneration. Run with:
//
//	go test -bench=. -benchmem
//
// The per-iteration work includes offline model training where the
// experiment requires it, exactly as the paper's protocol does.

import (
	"testing"

	"repro/internal/experiments"
)

// benchScale keeps per-iteration cost tractable; cmd/experiments runs the
// full protocol.
const benchScale = 0.05

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		lab := experiments.NewLab(uint64(i)+1, benchScale)
		rep, err := experiments.ByID(lab, id)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Lines) == 0 {
			b.Fatalf("%s produced an empty report", id)
		}
	}
}

func BenchmarkFig1(b *testing.B)   { benchExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B)   { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }
func BenchmarkTable6(b *testing.B) { benchExperiment(b, "table6") }
func BenchmarkTable7(b *testing.B) { benchExperiment(b, "table7") }
func BenchmarkTable8(b *testing.B) { benchExperiment(b, "table8") }
func BenchmarkTable9(b *testing.B) { benchExperiment(b, "table9") }

// BenchmarkAblationAccelGBR contrasts Yala's white-box accelerator model
// against treating the accelerator as a black box (no queueing structure):
// it regenerates the Table 3 protocol, whose SLOMO column is exactly the
// black-box-only ablation.
func BenchmarkAblationAccelGBR(b *testing.B) { benchExperiment(b, "table3") }
