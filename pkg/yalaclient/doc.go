// Package yalaclient is the supported Go SDK for the yala prediction
// service's versioned /v2 HTTP API.
//
// A Client is constructed from a base URL plus functional options:
//
//	client := yalaclient.New("http://localhost:8844",
//		yalaclient.WithTimeout(5*time.Second),
//		yalaclient.WithRetries(2),
//	)
//
// Models are addressed by ModelID — an NF name, optionally qualified by
// a fleet hardware class ({NF: "FlowStats", HW: "pensando"} →
// "FlowStats@pensando") — and every prediction call names the backend
// that should answer ("" selects the default, "yala"). The surface maps
// one-to-one onto /v2:
//
//	Predict, PredictBatch   → :predict, /v2/models:batchPredict
//	Compare, Diagnose       → :compare, :diagnose
//	Admit                   → :admit
//	Reload                  → :reload
//	ListModels, AllModels   → GET /v2/models (paginated)
//	ClusterRun, ClusterPolicies → /v2/cluster/runs, /v2/cluster/policies
//	Stats, Health           → /v2/stats, /healthz
//	Metrics                 → GET /metrics (parsed Prometheus exposition)
//
// Server-side failures surface as *APIError carrying the structured
// envelope's machine-readable code, message and request ID:
//
//	_, err := client.Predict(ctx, yalaclient.ModelID{NF: "NoSuchNF"}, "", params)
//	var apiErr *yalaclient.APIError
//	if errors.As(err, &apiErr) && apiErr.Code == "invalid_argument" { ... }
//
// The package depends only on the standard library, so external tools
// can vendor it without pulling in the simulator tree. See
// Example (package example) for an end-to-end walkthrough against an
// in-process server.
package yalaclient
