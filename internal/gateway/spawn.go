package gateway

import (
	"fmt"
	"net"
	"net/http"

	"repro/internal/serve"
)

// Replica is one in-process serve instance bound to a loopback
// listener — the unit `yala gateway -replicas` scales out. Each
// replica also mounts a yalawire listener, advertised via /v2/stats,
// so the gateway's health loop upgrades its upstream hops to the
// binary transport automatically.
type Replica struct {
	// URL is the replica's base URL (http://127.0.0.1:<port>).
	URL string

	svc  *serve.Service
	srv  *http.Server
	wsrv *serve.WireServer
}

// Service exposes the replica's underlying serve.Service (tests,
// direct inspection).
func (r *Replica) Service() *serve.Service { return r.svc }

// Close stops the replica: the listeners close first (in-flight
// requests fail over at the gateway), then the service drains.
func (r *Replica) Close() {
	r.srv.Close()
	if r.wsrv != nil {
		r.wsrv.Close()
	}
	r.svc.Close()
}

// WirePromote connects an in-process replica's feedback-driven model
// promotions to the gateway's fleet-wide reload fan-out: when the
// replica's drift gate promotes a shadow model, every peer replica
// reloads the (backend, nf) pair from the shared model directory and
// the gateway's edge cache sheds the retired model's responses. The
// promoting replica is excluded from the fan-out — it already swapped
// atomically.
func (g *Gateway) WirePromote(rep *Replica) {
	url := rep.URL
	rep.Service().SetPromoteHook(func(backendName, _, nfName string) {
		g.PromoteReload(backendName, nfName, url)
	})
}

// SpawnReplicas boots n in-process serve replicas on loopback
// listeners — the single-binary deployment behind `yala gateway
// -replicas N`. The replicas share one model directory, and therefore
// one set of persisted models (training persists via atomic rename, so
// concurrent on-demand training converges on identical files), but
// each keeps a private worker pool and response cache — exactly the
// per-process resources the gateway shards traffic across. On error,
// already-spawned replicas are closed before returning.
func SpawnReplicas(n int, cfg serve.ServiceConfig) ([]*Replica, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gateway: replica count %d must be positive", n)
	}
	replicas := make([]*Replica, 0, n)
	for i := 0; i < n; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			CloseReplicas(replicas)
			return nil, fmt.Errorf("gateway: replica %d listener: %w", i, err)
		}
		svc := serve.NewService(cfg)
		handler := svc.Handler()
		rep := &Replica{
			URL: "http://" + lis.Addr().String(),
			svc: svc,
			srv: &http.Server{Handler: handler},
		}
		// The wire listener is best-effort: a replica that cannot bind a
		// second loopback port still serves HTTP, it just never advertises
		// wire_addr and the gateway stays on JSON toward it.
		if wlis, err := net.Listen("tcp", "127.0.0.1:0"); err == nil {
			rep.wsrv = svc.ServeWire(wlis, handler)
		}
		go rep.srv.Serve(lis)
		replicas = append(replicas, rep)
	}
	return replicas, nil
}

// CloseReplicas closes every replica in the slice.
func CloseReplicas(replicas []*Replica) {
	for _, rep := range replicas {
		rep.Close()
	}
}
