package analysis

import (
	"go/ast"
	"go/types"
)

// Boundedread flags io.ReadAll applied directly to a network-attached
// reader — an http.Request/Response Body or a net.Conn — anywhere in
// the repo. An unbounded read of a peer-controlled stream is a
// one-request memory DoS; the repo's convention (PR 8) is a 10MiB cap
// via io.LimitReader or http.MaxBytesReader at every trust boundary.
func Boundedread() *Analyzer {
	return &Analyzer{
		Name: "boundedread",
		Doc:  "forbids io.ReadAll on request/response bodies and net.Conn without a LimitReader/MaxBytesReader cap",
		Run: func(pass *Pass) {
			for _, f := range pass.Pkg.Files {
				file := f
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok || len(call.Args) != 1 {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok || !pass.usesPkgFunc(file, sel, "io", "ReadAll") {
						return true
					}
					arg := call.Args[0]
					if wrapped, ok := arg.(*ast.CallExpr); ok {
						if ws, ok := wrapped.Fun.(*ast.SelectorExpr); ok {
							if pass.usesPkgFunc(file, ws, "io", "LimitReader") ||
								pass.usesPkgFunc(file, ws, "net/http", "MaxBytesReader") {
								return true
							}
						}
					}
					if why := pass.networkReader(arg); why != "" {
						pass.Reportf(call.Pos(), "io.ReadAll of %s without a byte cap; wrap it in io.LimitReader or http.MaxBytesReader", why)
					}
					return true
				})
			}
		},
	}
}

// networkReader classifies e as a peer-controlled stream, returning a
// human description of why, or "" when e is not network-attached (or
// cannot be proven to be).
func (p *Pass) networkReader(e ast.Expr) string {
	if sel, ok := e.(*ast.SelectorExpr); ok && sel.Sel.Name == "Body" {
		t := p.TypeOf(sel.X)
		if t == nil {
			// No type info: a bare .Body is overwhelmingly an HTTP
			// body in this codebase; stay strict rather than blind.
			return "a .Body stream"
		}
		if n := namedIn(t, "net/http"); n == "Request" || n == "Response" {
			return "an http." + n + " body"
		}
		return ""
	}
	t := p.TypeOf(e)
	if t == nil {
		return ""
	}
	if conn, ok := p.Loader.Lookup("net", "Conn").(*types.TypeName); ok {
		if iface, ok := conn.Type().Underlying().(*types.Interface); ok && types.Implements(t, iface) {
			return "a net.Conn"
		}
	}
	return ""
}

// namedIn returns the name of t (pointers dereferenced) when it is a
// named type declared in package pkgPath, else "".
func namedIn(t types.Type, pkgPath string) string {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return ""
	}
	return obj.Name()
}
