package traffic

import (
	"math"
	"testing"

	"repro/internal/patmatch"
	"repro/internal/sim"
)

func TestDefaultProfileVector(t *testing.T) {
	v := Default.Vector()
	want := []float64{16000, 1500, 600}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("Vector = %v, want %v", v, want)
		}
	}
}

func TestProfileWithGetRoundTrip(t *testing.T) {
	p := Default
	for a := Attribute(0); a < NumAttributes; a++ {
		lo, hi := a.Bounds()
		if lo >= hi {
			t.Fatalf("%v bounds inverted: [%v,%v]", a, lo, hi)
		}
		q := p.With(a, hi)
		if got := q.Get(a); got != hi && a != AttrPktSize {
			t.Errorf("With/Get %v: got %v want %v", a, got, hi)
		}
	}
}

func TestProfileWithClampsPktSize(t *testing.T) {
	p := Default.With(AttrPktSize, 10)
	if p.PktSize != MinPktSize {
		t.Fatalf("PktSize = %d, want clamped to %d", p.PktSize, MinPktSize)
	}
}

func TestAttributeString(t *testing.T) {
	if AttrFlows.String() != "flows" || AttrMTBR.String() != "mtbr" {
		t.Fatal("attribute names wrong")
	}
}

func TestRandomProfileInBounds(t *testing.T) {
	rng := sim.NewRNG(1)
	for i := 0; i < 200; i++ {
		p := Random(rng)
		fl, fh := AttrFlows.Bounds()
		if float64(p.Flows) < fl || float64(p.Flows) >= fh {
			t.Fatalf("flows %d out of bounds", p.Flows)
		}
		sl, sh := AttrPktSize.Bounds()
		if float64(p.PktSize) < sl || float64(p.PktSize) >= sh {
			t.Fatalf("pktsize %d out of bounds", p.PktSize)
		}
		ml, mh := AttrMTBR.Bounds()
		if p.MTBR < ml || p.MTBR >= mh {
			t.Fatalf("mtbr %v out of bounds", p.MTBR)
		}
	}
}

func TestEvalProfilesContainsDefault(t *testing.T) {
	ps := EvalProfiles()
	if len(ps) != 9 {
		t.Fatalf("len = %d, want 9 (paper: 9 distinct profiles)", len(ps))
	}
	if ps[0] != Default {
		t.Fatal("first eval profile is not the default")
	}
}

func TestFullGridSize(t *testing.T) {
	g := FullGrid(16, 200)
	if len(g) != 3200 {
		t.Fatalf("grid size %d, want 3200 (paper's 3200x cost)", len(g))
	}
}

func TestGeneratorFlowCount(t *testing.T) {
	g := NewGenerator(Profile{Flows: 100, PktSize: 256, MTBR: 0}, sim.NewRNG(2))
	if g.NumFlows() != 100 {
		t.Fatalf("NumFlows = %d", g.NumFlows())
	}
	seen := map[string]bool{}
	for _, p := range g.Batch(2000) {
		seen[p.Tuple.String()] = true
	}
	// Uniform draws over 100 flows in 2000 packets should hit most flows.
	if len(seen) < 90 {
		t.Fatalf("saw only %d distinct flows", len(seen))
	}
}

func TestGeneratorPacketSize(t *testing.T) {
	g := NewGenerator(Profile{Flows: 10, PktSize: 512, MTBR: 600}, sim.NewRNG(3))
	for _, p := range g.Batch(50) {
		if p.Len() != 512 {
			t.Fatalf("packet len %d, want 512", p.Len())
		}
		if err := p.Parse(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGeneratorClampsDegenerate(t *testing.T) {
	g := NewGenerator(Profile{Flows: 0, PktSize: 1}, sim.NewRNG(4))
	if g.NumFlows() != 1 {
		t.Fatalf("NumFlows = %d, want 1", g.NumFlows())
	}
	if g.Profile().PktSize != MinPktSize {
		t.Fatalf("PktSize = %d, want %d", g.Profile().PktSize, MinPktSize)
	}
	if p := g.Packet(); p.Len() != MinPktSize {
		t.Fatalf("packet len %d", p.Len())
	}
}

func TestSynthPayloadMTBRAccuracy(t *testing.T) {
	m := patmatch.CompileDefault()
	rng := sim.NewRNG(5)
	for _, target := range []float64{100, 600, 1000} {
		var bytes, matches int
		for i := 0; i < 400; i++ {
			pl := SynthPayload(1460, target, rng)
			bytes += len(pl)
			matches += m.Count(pl)
		}
		got := float64(matches) / float64(bytes) * 1e6
		if math.Abs(got-target)/target > 0.15 {
			t.Errorf("target MTBR %v: measured %v", target, got)
		}
	}
}

func TestSynthPayloadZeroMTBRNoMatches(t *testing.T) {
	m := patmatch.CompileDefault()
	rng := sim.NewRNG(6)
	for i := 0; i < 100; i++ {
		if n := m.Count(SynthPayload(1460, 0, rng)); n != 0 {
			t.Fatalf("filler produced %d matches", n)
		}
	}
}

func TestSynthPayloadTiny(t *testing.T) {
	rng := sim.NewRNG(7)
	if got := len(SynthPayload(2, 600, rng)); got != 2 {
		t.Fatalf("len = %d", got)
	}
	if got := len(SynthPayload(0, 600, rng)); got != 0 {
		t.Fatalf("len = %d", got)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(Default, sim.NewRNG(42)).Batch(10)
	b := NewGenerator(Default, sim.NewRNG(42)).Batch(10)
	for i := range a {
		if string(a[i].Data) != string(b[i].Data) {
			t.Fatalf("packet %d differs between identical seeds", i)
		}
	}
}
