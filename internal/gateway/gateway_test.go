package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/pkg/yalaclient"
)

// stubReplica is a minimal fake serve replica over a controllable
// listener: /healthz, deterministic canned predict bodies that name the
// serving stub, reload accounting, a /v2/stats shape good enough for
// aggregation, and stop/restart on a stable address so recovery paths
// are testable.
type stubReplica struct {
	t  *testing.T
	id string

	mu      sync.Mutex
	addr    string
	srv     *http.Server
	served  int            // non-health requests served
	paths   map[string]int // path → count
	reloads int
	entries int    // cache size reported via /v2/stats
	lastRID string // X-Request-Id seen on the last non-health request

	// /v2/stats uptime fields, settable per stub so aggregation rules
	// (max uptime, min start) are observable.
	uptimeSeconds float64
	startTime     int64
}

func newStubReplica(t *testing.T, id string) *stubReplica {
	t.Helper()
	s := &stubReplica{t: t, id: id, paths: map[string]int{}, entries: 5}
	s.start()
	t.Cleanup(s.stop)
	return s
}

func (s *stubReplica) url() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return "http://" + s.addr
}

func (s *stubReplica) start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	addr := s.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		s.t.Fatalf("stub %s: %v", s.id, err)
	}
	s.addr = lis.Addr().String()
	s.srv = &http.Server{Handler: s.handler()}
	go s.srv.Serve(lis)
}

func (s *stubReplica) stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.srv != nil {
		s.srv.Close()
		s.srv = nil
	}
}

func (s *stubReplica) counts() (served, reloads int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served, s.reloads
}

func (s *stubReplica) pathCount(p string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.paths[p]
}

func (s *stubReplica) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Write([]byte("ok\n"))
			return
		}
		s.mu.Lock()
		s.served++
		s.paths[r.URL.Path]++
		s.lastRID = r.Header.Get("X-Request-Id")
		isReload := strings.HasSuffix(r.URL.Path, ":reload") || r.URL.Path == "/v1/reload"
		if isReload {
			s.reloads++
			s.entries = 0
		}
		entries := s.entries
		served := s.served
		uptime, start := s.uptimeSeconds, s.startTime
		s.mu.Unlock()

		if r.URL.Path == "/metrics" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			fmt.Fprintf(w, "# TYPE yala_requests_total counter\nyala_requests_total{verb=\"predict\"} %d\n", served)
			fmt.Fprintf(w, "# TYPE yala_uptime_seconds gauge\nyala_uptime_seconds %g\n", uptime)
			fmt.Fprintf(w, "# TYPE yala_start_time_seconds gauge\nyala_start_time_seconds %d\n", start)
			fmt.Fprint(w, "# TYPE yala_stage_seconds histogram\nyala_stage_seconds_bucket{stage=\"predict\",le=\"+Inf\"} 1\nyala_stage_seconds_sum{stage=\"predict\"} 0.25\nyala_stage_seconds_count{stage=\"predict\"} 1\n")
			return
		}

		w.Header().Set("Content-Type", "application/json")
		switch {
		case isReload:
			fmt.Fprint(w, `{"ok":true}`)
		case r.URL.Path == "/v2/stats":
			fmt.Fprintf(w, `{"uptime_sec":1,"uptime_seconds":%g,"start_time":%d,"workers":2,"backends":["yala","slomo"],"requests":{"predict":%d},"errors":0,"cache":{"entries":%d,"hits":1,"misses":1,"evictions":0},"models":[{"id":"A/yala","nf":"A","backend":"yala","loaded":true,"on_disk":false}]}`, uptime, start, served, entries)
		case r.URL.Path == "/v2/models:batchPredict":
			body, _ := io.ReadAll(r.Body)
			var params struct {
				Requests []struct {
					Model string `json:"model"`
				} `json:"requests"`
			}
			if err := json.Unmarshal(body, &params); err != nil {
				http.Error(w, `{"error":{"code":"invalid_argument","message":"bad batch"}}`, http.StatusBadRequest)
				return
			}
			var resp struct {
				Responses []map[string]string `json:"responses"`
				Errors    []string            `json:"errors,omitempty"`
			}
			anyErr := false
			resp.Errors = make([]string, len(params.Requests))
			for i, req := range params.Requests {
				resp.Responses = append(resp.Responses, map[string]string{"nf": req.Model, "backend": s.id})
				if req.Model == "BAD" {
					resp.Errors[i] = "stub: bad model"
					anyErr = true
				}
			}
			if !anyErr {
				resp.Errors = nil
			}
			json.NewEncoder(w).Encode(resp)
		case r.URL.Path == "/v2/ingest":
			body, _ := io.ReadAll(r.Body)
			var params struct {
				Measurements []struct {
					Model       string  `json:"model"`
					MeasuredPPS float64 `json:"measured_pps"`
				} `json:"measurements"`
			}
			if err := json.Unmarshal(body, &params); err != nil {
				http.Error(w, `{"error":{"code":"invalid_argument","message":"bad ingest"}}`, http.StatusBadRequest)
				return
			}
			for i, m := range params.Measurements {
				if m.MeasuredPPS <= 0 {
					http.Error(w, fmt.Sprintf(`{"error":{"code":"invalid_argument","message":"measurements[%d]: measured_pps must be positive and finite"}}`, i), http.StatusBadRequest)
					return
				}
			}
			fmt.Fprintf(w, `{"accepted":%d,"quarantined":0}`, len(params.Measurements))
		default:
			// Any other verb: a deterministic body naming the stub, so
			// tests can see which replica answered.
			fmt.Fprintf(w, `{"nf":"X","backend":%q,"predicted_pps":1}`, s.id)
		}
	})
}

// testGateway builds a gateway over the stubs with fast health probes.
func testGateway(t *testing.T, edgeEntries int, stubs ...*stubReplica) (*Gateway, *httptest.Server) {
	t.Helper()
	urls := make([]string, len(stubs))
	for i, s := range stubs {
		urls[i] = s.url()
	}
	g, err := New(Config{
		Backends:         urls,
		HealthInterval:   20 * time.Millisecond,
		HealthTimeout:    time.Second,
		EdgeCacheEntries: edgeEntries,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)
	return g, ts
}

func post(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data)
}

// TestRoutingStickyAndSpread: one model's requests all land on one
// replica (cache locality), while many models spread across both.
func TestRoutingStickyAndSpread(t *testing.T) {
	a, b := newStubReplica(t, "a"), newStubReplica(t, "b")
	_, ts := testGateway(t, -1, a, b) // edge cache off: observe every proxy

	for i := 0; i < 10; i++ {
		if status, body := post(t, ts.URL+"/v2/models/FlowStats/yala:predict", `{}`); status != 200 {
			t.Fatalf("predict %d: %d %s", i, status, body)
		}
	}
	servedA, _ := a.counts()
	servedB, _ := b.counts()
	if servedA != 10 && servedB != 10 {
		t.Fatalf("one model split across replicas: a=%d b=%d", servedA, servedB)
	}

	// Distinct models (and distinct backends of one model) spread.
	for _, m := range []string{"A", "B", "C", "D", "E", "F", "G", "H"} {
		for _, backend := range []string{"yala", "slomo"} {
			post(t, ts.URL+"/v2/models/"+m+"/"+backend+":predict", `{}`)
		}
	}
	servedA2, _ := a.counts()
	servedB2, _ := b.counts()
	if servedA2 == servedA || servedB2 == servedB {
		t.Fatalf("16 model/backend keys all routed one way: a=%d→%d b=%d→%d",
			servedA, servedA2, servedB, servedB2)
	}
}

// TestRoutingDefaultPoolSpreads pins the CI smoke's assumption: the
// loadgen default NF pool spreads across two replicas under the
// slot-indexed rendezvous hash (which is deterministic by design — the
// hash sees slot indices, never ephemeral ports).
func TestRoutingDefaultPoolSpreads(t *testing.T) {
	pool := []string{"FlowStats", "ACL", "NAT", "FlowMonitor", "NIDS"}
	slots := map[int]int{}
	for _, nf := range pool {
		key := modelKey(nf, "", "yala")
		best, bestSlot := uint64(0), 0
		for slot := 0; slot < 2; slot++ {
			if h := hashSlot(key, slot); h > best {
				best, bestSlot = h, slot
			}
		}
		slots[bestSlot]++
	}
	if len(slots) != 2 {
		t.Fatalf("default NF pool routes entirely to one of 2 slots: %v", slots)
	}
}

// TestReloadFanout: a /v2 reload reaches every replica exactly once and
// reports the fan-out width; the /v1 body-addressed form fans out too.
func TestReloadFanout(t *testing.T) {
	a, b := newStubReplica(t, "a"), newStubReplica(t, "b")
	g, ts := testGateway(t, 0, a, b)

	resp, err := http.Post(ts.URL+"/v2/models/FlowStats/yala:reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("reload status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Gateway-Fanout"); got != "2/2" {
		t.Fatalf("fan-out header %q, want 2/2", got)
	}
	if _, ra := a.counts(); ra != 1 {
		t.Fatalf("replica a reloads = %d, want 1", ra)
	}
	if _, rb := b.counts(); rb != 1 {
		t.Fatalf("replica b reloads = %d, want 1", rb)
	}

	if status, body := post(t, ts.URL+"/v1/reload", `{"nf":"ACL","backend":"slomo"}`); status != 200 {
		t.Fatalf("/v1/reload: %d %s", status, body)
	}
	if _, ra := a.counts(); ra != 2 {
		t.Fatalf("replica a reloads after /v1 = %d, want 2", ra)
	}
	if _, rb := b.counts(); rb != 2 {
		t.Fatalf("replica b reloads after /v1 = %d, want 2", rb)
	}
	if got := g.fanouts.Load(); got != 2 {
		t.Fatalf("gateway fanouts = %d, want 2", got)
	}
}

// TestReloadFanoutRequiresPost: a GET on the :reload path must proxy to
// one replica (which owns the 405) — never fan out across the fleet or
// count as a fan-out.
func TestReloadFanoutRequiresPost(t *testing.T) {
	a, b := newStubReplica(t, "a"), newStubReplica(t, "b")
	g, ts := testGateway(t, -1, a, b)

	resp, err := http.Get(ts.URL + "/v2/models/FlowStats/yala:reload")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := g.fanouts.Load(); got != 0 {
		t.Fatalf("GET :reload counted %d fan-outs, want 0", got)
	}
	_, ra := a.counts()
	_, rb := b.counts()
	if ra+rb != 1 {
		t.Fatalf("GET :reload reached %d replicas, want exactly 1 (proxied)", ra+rb)
	}
}

// TestNewRejectsEmptyBackend: a phantom empty-URL replica (trailing
// comma in -backends) is a construction error, not a dead fleet member.
func TestNewRejectsEmptyBackend(t *testing.T) {
	if _, err := New(Config{Backends: []string{"http://x", ""}}); err == nil {
		t.Fatal("empty backend URL accepted")
	}
	if _, err := New(Config{Backends: []string{"  "}}); err == nil {
		t.Fatal("blank backend URL accepted")
	}
}

// TestEdgeCache: a repeated deterministic verb serves from the gateway
// without touching a replica, and a reload fan-out naming the NF evicts
// it while unrelated entries survive.
func TestEdgeCache(t *testing.T) {
	a, b := newStubReplica(t, "a"), newStubReplica(t, "b")
	g, ts := testGateway(t, 0, a, b)

	body := `{"profile":{"flows":1000}}`
	_, first := post(t, ts.URL+"/v2/models/FlowStats/yala:predict", body)
	servedFirst, _ := a.counts()
	sb, _ := b.counts()
	servedFirst += sb

	resp, err := http.Post(ts.URL+"/v2/models/FlowStats/yala:predict", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	second, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.Header.Get("X-Gateway-Cache") != "hit" {
		t.Fatal("second identical request missed the edge cache")
	}
	if string(second) != first {
		t.Fatalf("edge hit differs from origin response:\n%s\n%s", first, second)
	}
	servedSecond, _ := a.counts()
	sb2, _ := b.counts()
	servedSecond += sb2
	if servedSecond != servedFirst {
		t.Fatalf("edge hit still reached a replica (%d → %d proxied)", servedFirst, servedSecond)
	}
	if st := g.edge.Stats(); st.Hits != 1 {
		t.Fatalf("edge stats %+v, want 1 hit", st)
	}

	// A different body is a different scenario: miss.
	post(t, ts.URL+"/v2/models/FlowStats/yala:predict", `{"profile":{"flows":2000}}`)
	// An unrelated model's entry...
	post(t, ts.URL+"/v2/models/ACL/slomo:predict", `{}`)
	if n := g.edge.Len(); n != 3 {
		t.Fatalf("edge holds %d entries, want 3", n)
	}

	// Reloading FlowStats evicts its entries; ACL's survives.
	post(t, ts.URL+"/v2/models/FlowStats/yala:reload", ``)
	if n := g.edge.Len(); n != 1 {
		t.Fatalf("edge holds %d entries after reload, want only the unrelated one", n)
	}
	resp2, err := http.Post(ts.URL+"/v2/models/FlowStats/yala:predict", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.Header.Get("X-Gateway-Cache") == "hit" {
		t.Fatal("evicted scenario still served from the edge")
	}
}

// TestBatchScatter: one batch spanning many models splits into
// per-replica sub-batches and reassembles in order, with per-element
// errors landing at the client's indices.
func TestBatchScatter(t *testing.T) {
	a, b := newStubReplica(t, "a"), newStubReplica(t, "b")
	_, ts := testGateway(t, -1, a, b)

	models := []string{"A", "B", "C", "D", "E", "F", "G", "BAD"}
	var req struct {
		Requests []map[string]string `json:"requests"`
	}
	for _, m := range models {
		req.Requests = append(req.Requests, map[string]string{"model": m})
	}
	raw, _ := json.Marshal(req)
	status, body := post(t, ts.URL+"/v2/models:batchPredict", string(raw))
	if status != 200 {
		t.Fatalf("batch status %d: %s", status, body)
	}
	var out struct {
		Responses []struct {
			NF      string `json:"nf"`
			Backend string `json:"backend"`
		} `json:"responses"`
		Errors []string `json:"errors"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Responses) != len(models) {
		t.Fatalf("got %d responses, want %d", len(out.Responses), len(models))
	}
	servers := map[string]bool{}
	for i, m := range models {
		if out.Responses[i].NF != m {
			t.Fatalf("response %d is %q, want %q (order lost in scatter/gather)", i, out.Responses[i].NF, m)
		}
		servers[out.Responses[i].Backend] = true
	}
	if len(servers) != 2 {
		t.Fatalf("8-model batch served entirely by %v, want both replicas", servers)
	}
	if len(out.Errors) != len(models) || out.Errors[7] == "" {
		t.Fatalf("per-element error lost its index: %v", out.Errors)
	}
	for i := 0; i < 7; i++ {
		if out.Errors[i] != "" {
			t.Fatalf("spurious error at %d: %v", i, out.Errors)
		}
	}
}

// TestRemapBatchIndices covers the sub-batch→client index rewrite.
func TestRemapBatchIndices(t *testing.T) {
	body := []byte(`{"error":{"code":"invalid_argument","message":"requests[1]: unknown NF"}}`)
	got := string(remapIndices(body, "requests[", []int{4, 9}))
	if !strings.Contains(got, "requests[9]") {
		t.Fatalf("remap produced %s", got)
	}
	ingest := []byte(`{"error":{"message":"measurements[0]: measured_pps must be positive and finite"}}`)
	if got := string(remapIndices(ingest, "measurements[", []int{7})); !strings.Contains(got, "measurements[7]") {
		t.Fatalf("ingest remap produced %s", got)
	}
	// No marker → unchanged.
	plain := []byte(`{"error":{"message":"boom"}}`)
	if string(remapIndices(plain, "requests[", []int{1})) != string(plain) {
		t.Fatal("markerless body rewritten")
	}
}

// TestIngestScatter: a /v2/ingest batch splits by each measurement's
// model key, every measurement reaches its home replica, and the
// per-replica accept counts sum into one response. A replica's
// per-element 400 proxies back with the index remapped to the
// client's batch.
func TestIngestScatter(t *testing.T) {
	a, b := newStubReplica(t, "a"), newStubReplica(t, "b")
	_, ts := testGateway(t, -1, a, b)

	var sb strings.Builder
	sb.WriteString(`{"measurements":[`)
	models := []string{"A", "B", "C", "D", "E", "F", "G", "H"}
	for i, m := range models {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"model":%q,"measured_pps":1000}`, m)
	}
	sb.WriteString(`]}`)
	status, body := post(t, ts.URL+"/v2/ingest", sb.String())
	if status != 200 {
		t.Fatalf("ingest scatter: %d %s", status, body)
	}
	var res struct {
		Accepted    int `json:"accepted"`
		Quarantined int `json:"quarantined"`
	}
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if res.Accepted != len(models) || res.Quarantined != 0 {
		t.Fatalf("scatter sum: %+v", res)
	}
	if a.pathCount("/v2/ingest") == 0 || b.pathCount("/v2/ingest") == 0 {
		t.Fatalf("8 models' measurements all routed one way: a=%d b=%d",
			a.pathCount("/v2/ingest"), b.pathCount("/v2/ingest"))
	}

	// A bad element's replica-side index remaps to the client's batch
	// position: the invalid measurement is client index 2, whatever
	// sub-batch position it held.
	status, body = post(t, ts.URL+"/v2/ingest",
		`{"measurements":[{"model":"A","measured_pps":1},{"model":"A","measured_pps":1},{"model":"A","measured_pps":-5}]}`)
	if status != http.StatusBadRequest || !strings.Contains(body, "measurements[2]") {
		t.Fatalf("remapped ingest error: %d %s", status, body)
	}
}

// TestPromoteReload: a feedback promotion on one replica fans the
// reload out to the rest of the fleet, skips the promoting replica
// (which already swapped atomically), and queues catch-up reloads for
// replicas that are down so they never rejoin stale.
func TestPromoteReload(t *testing.T) {
	a, b := newStubReplica(t, "a"), newStubReplica(t, "b")
	g, _ := testGateway(t, 8, a, b)

	g.PromoteReload("yala", "FlowStats", a.url())
	if _, r := a.counts(); r != 0 {
		t.Fatalf("promoting replica was told to reload its own promotion (%d reloads)", r)
	}
	if _, r := b.counts(); r != 1 {
		t.Fatalf("sibling replica missed the promotion fan-out (%d reloads)", r)
	}

	// A down replica gets the reload queued and replayed on recovery.
	b.stop()
	g.PromoteReload("yala", "NAT", a.url())
	b.start()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, r := b.counts(); r >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("recovered replica never received the queued promotion reload")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
func TestAggregateStats(t *testing.T) {
	a, b := newStubReplica(t, "a"), newStubReplica(t, "b")
	_, ts := testGateway(t, -1, a, b)
	post(t, ts.URL+"/v2/models/A/yala:predict", `{}`)
	post(t, ts.URL+"/v2/models/B/yala:predict", `{}`)

	st, err := yalaclient.New(ts.URL).Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 4 {
		t.Fatalf("aggregate workers %d, want 4 (2 replicas × 2)", st.Workers)
	}
	if st.Cache.Entries != 10 {
		t.Fatalf("aggregate cache entries %d, want 10", st.Cache.Entries)
	}
	if len(st.Models) != 1 || st.Models[0].NF != "A" {
		t.Fatalf("model union %+v", st.Models)
	}
	if len(st.Backends) != 2 {
		t.Fatalf("backend union %v", st.Backends)
	}
}

// TestGatewayStats checks the operator snapshot the CI smoke parses.
func TestGatewayStats(t *testing.T) {
	a, b := newStubReplica(t, "a"), newStubReplica(t, "b")
	_, ts := testGateway(t, 0, a, b)
	post(t, ts.URL+"/v2/models/FlowStats/yala:predict", `{}`)
	post(t, ts.URL+"/v2/models/FlowStats/yala:predict", `{}`) // edge hit
	post(t, ts.URL+"/v2/models/FlowStats/yala:reload", ``)

	st, err := yalaclient.New(ts.URL).GatewayStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Replicas) != 2 {
		t.Fatalf("replicas %+v", st.Replicas)
	}
	var fanouts, requests uint64
	for _, rep := range st.Replicas {
		if !rep.Healthy {
			t.Fatalf("replica %s reported unhealthy", rep.URL)
		}
		if rep.CacheEntries < 0 {
			t.Fatalf("replica %s cache entries unreported", rep.URL)
		}
		fanouts += rep.Fanouts
		requests += rep.Requests
	}
	if fanouts != 2 {
		t.Fatalf("per-replica fanouts sum %d, want 2", fanouts)
	}
	if st.Fanouts != 1 || st.EdgeHits != 1 {
		t.Fatalf("gateway counters %+v", st)
	}
	if requests == 0 {
		t.Fatal("no proxied requests counted")
	}
}
