// Command yala is the CLI front end for the Yala reproduction: profile an
// NF's footprint, train its models, predict throughput under a
// co-location, diagnose its bottleneck, or schedule an arrival sequence.
//
// Usage:
//
//	yala profile  -nf FlowMonitor [-flows n] [-pktsize n] [-mtbr f]
//	yala train    -nf FlowMonitor -out flowmonitor.json
//	yala predict  -nf FlowMonitor -with NIDS,FlowStats [-flows n] [-pktsize n] [-mtbr f]
//	yala diagnose -nf FlowMonitor [-mtbr f]
//	yala place    -arrivals 60 [-seed n]
//	yala list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/nf"
	"repro/internal/nfbench"
	"repro/internal/nicsim"
	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/slomo"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "profile":
		err = cmdProfile(args)
	case "train":
		err = cmdTrain(args)
	case "predict":
		err = cmdPredict(args)
	case "diagnose":
		err = cmdDiagnose(args)
	case "place":
		err = cmdPlace(args)
	case "list":
		fmt.Println(strings.Join(nf.Names(), "\n"))
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "yala:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: yala {profile|train|predict|diagnose|place|list} [flags]")
	os.Exit(2)
}

func profileFlags(fs *flag.FlagSet) (*string, *int, *int, *float64) {
	name := fs.String("nf", "FlowMonitor", "catalog NF name")
	flows := fs.Int("flows", traffic.Default.Flows, "flow count")
	pkt := fs.Int("pktsize", traffic.Default.PktSize, "packet size (B)")
	mtbr := fs.Float64("mtbr", traffic.Default.MTBR, "match-to-byte ratio (matches/MB)")
	return name, flows, pkt, mtbr
}

func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	name, flows, pkt, mtbr := profileFlags(fs)
	fs.Parse(args)
	prof := traffic.Profile{Flows: *flows, PktSize: *pkt, MTBR: *mtbr}

	tb := testbed.New(nicsim.BlueField2(), 1)
	w, err := tb.Workload(*name, prof)
	if err != nil {
		return err
	}
	m, err := tb.RunSolo(w)
	if err != nil {
		return err
	}
	fmt.Printf("NF %s at %s on %s\n", *name, prof, tb.Config().Name)
	fmt.Printf("  pattern            %v\n", w.Pattern)
	fmt.Printf("  cpu/packet         %.0f ns\n", w.CPUSecPerPkt*1e9)
	fmt.Printf("  mem refs/packet    %.1f\n", w.MemRefsPerPkt)
	fmt.Printf("  working set        %.2f MB\n", w.WSSBytes/(1<<20))
	for kind, u := range w.Accel {
		fmt.Printf("  %v: %.0f B/req, %.2f matches/req, %d queues\n",
			kind, u.BytesPerReq, u.MatchesPerReq, u.Queues)
	}
	fmt.Printf("  solo throughput    %.3f Mpps\n", m.Throughput/1e6)
	fmt.Printf("  bottleneck         %v\n", m.Bottleneck)
	return nil
}

// cmdTrain runs offline profiling and saves the fitted model as JSON —
// the artifact's train.py / models.pkl flow.
func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	name := fs.String("nf", "FlowMonitor", "catalog NF name")
	out := fs.String("out", "", "output model file (JSON)")
	seed := fs.Uint64("seed", 1, "training seed")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("train: -out is required")
	}
	tb := testbed.New(nicsim.BlueField2(), *seed)
	cfg := core.DefaultTrainConfig()
	cfg.Seed = *seed
	fmt.Printf("profiling and training %s...\n", *name)
	model, err := core.NewTrainer(tb, cfg).Train(*name)
	if err != nil {
		return err
	}
	if err := model.SaveFile(*out); err != nil {
		return err
	}
	fmt.Printf("saved %s model (pattern %v, %d accelerator models) to %s\n",
		model.Name, model.Pattern, len(model.Accels), *out)
	return nil
}

func cmdPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	name, flows, pkt, mtbr := profileFlags(fs)
	with := fs.String("with", "NIDS", "comma-separated competitor NFs")
	fs.Parse(args)
	prof := traffic.Profile{Flows: *flows, PktSize: *pkt, MTBR: *mtbr}

	tb := testbed.New(nicsim.BlueField2(), 1)
	fmt.Printf("training Yala model for %s (offline profiling)...\n", *name)
	model, err := core.NewTrainer(tb, core.DefaultTrainConfig()).Train(*name)
	if err != nil {
		return err
	}

	var comps []core.Competitor
	ws := []*nicsim.Workload{}
	targetW, err := tb.Workload(*name, prof)
	if err != nil {
		return err
	}
	ws = append(ws, targetW)
	for _, c := range strings.Split(*with, ",") {
		c = strings.TrimSpace(c)
		cw, err := tb.Workload(c, traffic.Default)
		if err != nil {
			return err
		}
		solo, err := tb.RunSolo(cw)
		if err != nil {
			return err
		}
		comps = append(comps, core.CompetitorFromMeasurement(solo))
		ws = append(ws, cw)
	}

	pred := model.Predict(prof, comps)
	fmt.Printf("predicted solo        %.3f Mpps\n", pred.Solo/1e6)
	fmt.Printf("predicted co-located  %.3f Mpps\n", pred.Throughput/1e6)
	for res, t := range pred.PerResource {
		fmt.Printf("  %-8v limit       %.3f Mpps\n", res, t/1e6)
	}
	fmt.Printf("predicted bottleneck  %v\n", pred.Bottleneck)

	ms, err := tb.Run(ws...)
	if err != nil {
		return err
	}
	truth := ms[0].Throughput
	fmt.Printf("measured  co-located  %.3f Mpps (prediction error %.1f%%)\n",
		truth/1e6, 100*abs(pred.Throughput-truth)/truth)
	return nil
}

func cmdDiagnose(args []string) error {
	fs := flag.NewFlagSet("diagnose", flag.ExitOnError)
	name, flows, pkt, mtbr := profileFlags(fs)
	fs.Parse(args)
	prof := traffic.Profile{Flows: *flows, PktSize: *pkt, MTBR: *mtbr}

	tb := testbed.New(nicsim.BlueField2(), 1)
	fmt.Printf("training Yala model for %s...\n", *name)
	model, err := core.NewTrainer(tb, core.DefaultTrainConfig()).Train(*name)
	if err != nil {
		return err
	}
	memB := nfbench.MemBench(120e6, 10<<20)
	regexB := nfbench.RegexBench(0.58e6, 1000, 2000, 1)
	memSolo, err := tb.RunSolo(memB)
	if err != nil {
		return err
	}
	regexSolo, err := tb.RunSolo(regexB)
	if err != nil {
		return err
	}
	pred := model.Predict(prof, []core.Competitor{
		core.CompetitorFromMeasurement(memSolo),
		core.CompetitorFromMeasurement(regexSolo),
	})
	w, err := tb.Workload(*name, prof)
	if err != nil {
		return err
	}
	ms, err := tb.Run(w, memB, regexB)
	if err != nil {
		return err
	}
	fmt.Printf("predicted bottleneck %v, ground truth %v\n", pred.Bottleneck, ms[0].Bottleneck)
	return nil
}

func cmdPlace(args []string) error {
	fs := flag.NewFlagSet("place", flag.ExitOnError)
	arrivals := fs.Int("arrivals", 40, "arrival count")
	seed := fs.Uint64("seed", 1, "sequence seed")
	fs.Parse(args)

	tb := testbed.New(nicsim.BlueField2(), *seed)
	names := []string{"FlowStats", "ACL", "FlowClassifier", "FlowTracker", "NAT"}
	yala := map[string]*core.Model{}
	slomoM := map[string]*slomo.Model{}
	for _, n := range names {
		fmt.Printf("training models for %s...\n", n)
		m, err := core.NewTrainer(tb, core.DefaultTrainConfig()).Train(n)
		if err != nil {
			return err
		}
		yala[n] = m
		sm, err := slomo.Train(tb, n, traffic.Default, slomo.DefaultConfig())
		if err != nil {
			return err
		}
		slomoM[n] = sm
	}
	ps := placement.NewSimulator(tb, yala, slomoM)
	rng := sim.NewRNG(*seed)
	var seq []placement.Arrival
	for i := 0; i < *arrivals; i++ {
		seq = append(seq, placement.Arrival{
			Name:    names[rng.Intn(len(names))],
			Profile: traffic.Default,
			SLA:     0.05 + 0.15*rng.Float64(),
		})
	}
	fmt.Printf("%-16s %6s %10s\n", "strategy", "NICs", "violations")
	for _, st := range []placement.Strategy{
		placement.Monopolization, placement.Greedy,
		placement.SLOMOAware, placement.YalaAware, placement.Oracle,
	} {
		res, err := ps.Place(seq, st)
		if err != nil {
			return err
		}
		fmt.Printf("%-16s %6d %10d\n", st, res.NICsUsed, res.Violations)
	}
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
