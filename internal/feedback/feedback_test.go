package feedback

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/backend"
)

// stubModel is the minimal backend.Model for controller tests.
type stubModel struct{ nf string }

func (m stubModel) NF() string { return m.nf }

func obs(k Key, ratio float64, source string) Observation {
	return Observation{Key: k, Source: source, Measured: ratio * 1000, LivePred: 1000}
}

func TestEmptyWindowAndWarmup(t *testing.T) {
	c := New(Config{})
	defer c.Close()
	k := Key{NF: "FlowStats", Backend: "yala"}

	if _, ok := c.ShadowModel(k); ok {
		t.Fatal("ShadowModel reported a candidate for an empty controller")
	}
	res := c.Observe(obs(k, 1.0, ""))
	if !res.Accepted || res.Decision != DecisionWarmup {
		t.Fatalf("first observation: got %+v, want accepted warmup", res)
	}
	st := c.Stats()
	if st.Observations != 1 || st.Trips != 0 || st.Holds != 0 || st.Quarantined != 0 {
		t.Fatalf("stats after one sample: %+v", st)
	}
}

func TestInvalidObservationRejected(t *testing.T) {
	c := New(Config{})
	defer c.Close()
	k := Key{NF: "ACL", Backend: "yala"}
	for _, o := range []Observation{
		{Key: k, Measured: 0, LivePred: 1000},
		{Key: k, Measured: -5, LivePred: 1000},
		{Key: k, Measured: 1000, LivePred: 0},
	} {
		res := c.Observe(o)
		if res.Accepted || res.Decision != DecisionInvalid {
			t.Fatalf("invalid observation %+v: got %+v", o, res)
		}
	}
	if st := c.Stats(); st.Observations != 0 {
		t.Fatalf("invalid observations were counted: %+v", st)
	}
}

// TestOutlierBurstHolds: a burst of mutually inconsistent junk from
// many sources must never trip retraining — the gate quarantines the
// junk sources and holds while the trusted fraction is low.
func TestOutlierBurstHolds(t *testing.T) {
	trainCalls := 0
	c := New(Config{
		WindowSize:  64,
		Synchronous: true,
		Train: func(Key, float64) (backend.Model, error) {
			trainCalls++
			return stubModel{}, nil
		},
	})
	defer c.Close()
	k := Key{NF: "NAT", Backend: "yala"}

	for i := 0; i < 30; i++ {
		src := fmt.Sprintf("good-%d", i%3)
		if res := c.Observe(obs(k, 1.0, src)); res.Decision == DecisionDrift {
			t.Fatalf("clean sample %d tripped drift", i)
		}
	}
	junk := []float64{0.2, 3.0, 0.1, 4.0, 5.0, 0.05, 2.5, 6.0}
	for i := 0; i < 40; i++ {
		src := fmt.Sprintf("junk-%d", i%8)
		if res := c.Observe(obs(k, junk[i%len(junk)], src)); res.Decision == DecisionDrift {
			t.Fatalf("junk sample %d tripped drift", i)
		}
	}
	st := c.Stats()
	if st.Trips != 0 || trainCalls != 0 {
		t.Fatalf("outlier burst tripped retraining: %+v, trainCalls=%d", st, trainCalls)
	}
	if st.Holds == 0 && st.Quarantined == 0 {
		t.Fatalf("gate neither held nor quarantined during the burst: %+v", st)
	}
}

// TestBadSourceQuarantined: one consistently-wrong source among honest
// reporters is quarantined while the gate keeps reporting OK off the
// honest consensus; honest sources are never quarantined.
func TestBadSourceQuarantined(t *testing.T) {
	c := New(Config{WindowSize: 64})
	defer c.Close()
	k := Key{NF: "NIDS", Backend: "yala"}

	var evilQuarantined, goodOK bool
	jitter := []float64{0.99, 1.0, 1.01, 1.02, 0.98}
	for i := 0; i < 80; i++ {
		var res Result
		if i%4 == 3 {
			res = c.Observe(obs(k, 3.0, "evil"))
			if res.Quarantined {
				evilQuarantined = true
			}
		} else {
			res = c.Observe(obs(k, jitter[i%len(jitter)], fmt.Sprintf("good-%d", i%3)))
			if res.Quarantined {
				t.Fatalf("honest source quarantined at sample %d: %+v", i, res)
			}
			if res.Decision == DecisionOK {
				goodOK = true
			}
		}
		if res.Decision == DecisionDrift {
			t.Fatalf("bad source tripped drift at sample %d", i)
		}
	}
	if !evilQuarantined {
		t.Fatal("consistently-wrong source was never quarantined")
	}
	if !goodOK {
		t.Fatal("gate never reported OK off the honest consensus")
	}
	if st := c.Stats(); st.Quarantined == 0 || st.Trips != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestSlowDriftTripsAndPromotes drives the full lifecycle in
// synchronous mode: genuine drift trips the gate, a candidate trains
// and shadows, ground-truth scoring promotes it, and the window resets.
func TestSlowDriftTripsAndPromotes(t *testing.T) {
	var trainCalls int
	var trainScale float64
	var promoted []backend.Model
	k := Key{NF: "FlowStats", Backend: "yala"}
	c := New(Config{
		WindowSize:        64,
		MinPromoteSamples: 5,
		Synchronous:       true,
		Train: func(gotK Key, scale float64) (backend.Model, error) {
			if gotK != k {
				return nil, errors.New("train called with wrong key")
			}
			trainCalls++
			trainScale = scale
			return stubModel{nf: k.NF}, nil
		},
		Promote: func(gotK Key, m backend.Model) error {
			if gotK != k {
				return errors.New("promote called with wrong key")
			}
			promoted = append(promoted, m)
			return nil
		},
	})
	defer c.Close()

	for i := 0; i < 30; i++ {
		c.Observe(obs(k, 1.0, ""))
	}
	// Slow genuine shift: every measurement walks coherently to 0.7x
	// the live prediction, then stays there.
	ratio := 1.0
	for i := 0; i < 120 && trainCalls == 0; i++ {
		if ratio > 0.7 {
			ratio -= 0.01
		}
		c.Observe(obs(k, ratio, ""))
	}
	if trainCalls != 1 {
		t.Fatalf("genuine drift never tripped retraining (trainCalls=%d, stats=%+v)", trainCalls, c.Stats())
	}
	if trainScale >= 1 || trainScale < 0.5 {
		t.Fatalf("calibration scale %v, want ~0.7", trainScale)
	}
	sm, ok := c.ShadowModel(k)
	if !ok {
		t.Fatal("no shadow candidate after retrain")
	}
	if sm.NF() != k.NF {
		t.Fatalf("shadow model NF %q", sm.NF())
	}

	// Ground truth 700, live predicts 1000 (err 0.43), shadow predicts
	// 705 (err 0.007): the candidate must promote at MinPromoteSamples.
	for i := 0; i < 5; i++ {
		c.Observe(Observation{Key: k, Measured: 700, LivePred: 1000, ShadowPred: 705, HasShadow: true})
	}
	st := c.Stats()
	if st.Promotions != 1 || len(promoted) != 1 {
		t.Fatalf("candidate not promoted: %+v, promoted=%d", st, len(promoted))
	}
	if _, ok := c.ShadowModel(k); ok {
		t.Fatal("shadow candidate still active after promotion")
	}
	// Window reset: the next observation is back in warmup.
	if res := c.Observe(obs(k, 1.0, "")); res.Decision != DecisionWarmup {
		t.Fatalf("window not reset after promotion: %+v", res)
	}
	if trainCalls != 1 {
		t.Fatalf("unexpected extra retrains: %d", trainCalls)
	}
}

// TestShadowAbort: a candidate that never beats the live model is
// discarded, not promoted.
func TestShadowAbort(t *testing.T) {
	k := Key{NF: "ACL", Backend: "yala"}
	c := New(Config{
		WindowSize:        64,
		MinPromoteSamples: 3,
		Synchronous:       true,
		Train:             func(Key, float64) (backend.Model, error) { return stubModel{nf: k.NF}, nil },
		Promote:           func(Key, backend.Model) error { return errors.New("must not be called") },
	})
	defer c.Close()

	for i := 0; i < 30; i++ {
		c.Observe(obs(k, 1.0, ""))
	}
	for i := 0; i < 64; i++ {
		c.Observe(obs(k, 0.7, ""))
	}
	if _, ok := c.ShadowModel(k); !ok {
		t.Fatalf("no shadow candidate after drift: %+v", c.Stats())
	}
	// Shadow is WORSE than live every sample; at 4x MinPromoteSamples
	// it must abort.
	for i := 0; i < 12; i++ {
		c.Observe(Observation{Key: k, Measured: 700, LivePred: 750, ShadowPred: 100, HasShadow: true})
	}
	st := c.Stats()
	if st.Promotions != 0 {
		t.Fatalf("losing candidate was promoted: %+v", st)
	}
	if st.ShadowAborts == 0 {
		t.Fatalf("losing candidate never aborted: %+v", st)
	}
}

// TestConcurrentHammer races ingest against background retraining,
// shadow reads and stats — run under -race.
func TestConcurrentHammer(t *testing.T) {
	k := Key{NF: "FlowStats", Backend: "yala"}
	c := New(Config{
		WindowSize:        32,
		MinSamples:        8,
		MinPromoteSamples: 2,
		Train: func(Key, float64) (backend.Model, error) {
			time.Sleep(200 * time.Microsecond)
			return stubModel{nf: k.NF}, nil
		},
		Promote: func(Key, backend.Model) error { return nil },
	})

	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ratio := 1.0 - float64(i%perWorker)/float64(2*perWorker) // walks 1.0 -> 0.5
				o := obs(k, ratio, fmt.Sprintf("src-%d", w))
				if sm, ok := c.ShadowModel(k); ok && sm != nil {
					o.ShadowPred = o.Measured * 1.01
					o.HasShadow = true
					c.RecordShadowCompare(k, o.LivePred, o.ShadowPred)
				}
				c.Observe(o)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			c.ShadowModel(k)
			if st := c.Stats(); st.Observations >= workers*perWorker {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	<-done
	c.Close()
	c.Close() // idempotent

	if st := c.Stats(); st.Observations != workers*perWorker {
		t.Fatalf("lost observations: %+v", st)
	}
}
