package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Profile is a traffic profile on the wire. Flows/PktSize zero means
// "server default", matching the JSON ProfileSpec's omitempty
// semantics; MTBR stays a pointer because 0 matches/MB must remain
// distinguishable from "not specified".
type Profile struct {
	Flows   int
	PktSize int
	MTBR    *float64
}

// Competitor is one co-located NF and its profile.
type Competitor struct {
	Name    string
	Profile Profile
}

// PredictRequest is the typed predict hot-path request: the same
// (model, backend, scenario) tuple POST /v2/models/{nf}/{backend}:predict
// carries, without the JSON.
type PredictRequest struct {
	NF          string
	HW          string
	Backend     string
	Profile     Profile
	Competitors []Competitor
}

// ResourcePPS is one per-resource throughput attribution row; the
// slice form keeps encoding deterministic where the JSON shape uses a
// map.
type ResourcePPS struct {
	Resource string
	PPS      float64
}

// PredictResponse mirrors the /v2 predict response body.
type PredictResponse struct {
	NF           string
	HW           string
	Backend      string
	Profile      Profile
	SoloPPS      float64
	PredictedPPS float64
	Bottleneck   string
	PerResource  []ResourcePPS
}

// BatchRequest is the typed :batchPredict payload.
type BatchRequest struct {
	Requests []PredictRequest
}

// BatchResponse returns one response per request in order; a failed
// element has a zero response and its message at the same index in
// Errors (all-empty Errors is encoded as absent, like the JSON shape).
type BatchResponse struct {
	Responses []PredictResponse
	Errors    []string
}

// ErrorFrame carries a request failure with the same status/code/
// message triple the /v2 JSON error envelope uses, so wire clients
// surface identical typed errors. RetryAfterSec > 0 maps to the
// Retry-After header on 429s.
type ErrorFrame struct {
	Status        int
	Code          string
	Message       string
	RequestID     string
	RetryAfterSec float64
}

// Call tunnels one HTTP-shaped request over the wire: the gateway's
// generic upstream path for verbs without a typed frame. Body is raw
// request bytes, forwarded without re-encoding.
type Call struct {
	Method      string
	URI         string
	ContentType string
	RequestID   string
	Body        []byte
}

// CallResp is a Call's answer: status, the response headers the
// gateway forwards (Content-Type, X-Request-Id, deprecation trio), and
// the raw body.
type CallResp struct {
	Status  int
	Headers []HeaderKV
	Body    []byte
}

// HeaderKV is one forwarded response header.
type HeaderKV struct {
	Key   string
	Value string
}

// --- append-style encoders -------------------------------------------
//
// All encoders append to buf (use GetBuf for a pooled one) and return
// the grown slice; the hot path allocates nothing beyond the payload
// itself.

func appendStr(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

func appendF64(buf []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(buf, math.Float64bits(v))
}

func appendProfile(buf []byte, p Profile) []byte {
	buf = binary.AppendVarint(buf, int64(p.Flows))
	buf = binary.AppendVarint(buf, int64(p.PktSize))
	if p.MTBR != nil {
		buf = append(buf, 1)
		buf = appendF64(buf, *p.MTBR)
	} else {
		buf = append(buf, 0)
	}
	return buf
}

func appendPredictRequest(buf []byte, r *PredictRequest) []byte {
	buf = appendStr(buf, r.NF)
	buf = appendStr(buf, r.HW)
	buf = appendStr(buf, r.Backend)
	buf = appendProfile(buf, r.Profile)
	buf = binary.AppendUvarint(buf, uint64(len(r.Competitors)))
	for i := range r.Competitors {
		buf = appendStr(buf, r.Competitors[i].Name)
		buf = appendProfile(buf, r.Competitors[i].Profile)
	}
	return buf
}

// AppendHello encodes a Hello payload: the client's API key.
func AppendHello(buf []byte, apiKey string) []byte { return appendStr(buf, apiKey) }

// AppendPredictRequest encodes a predict request payload.
func AppendPredictRequest(buf []byte, r *PredictRequest) []byte {
	return appendPredictRequest(buf, r)
}

// AppendPredictResponse encodes a predict response payload.
func AppendPredictResponse(buf []byte, r *PredictResponse) []byte {
	buf = appendStr(buf, r.NF)
	buf = appendStr(buf, r.HW)
	buf = appendStr(buf, r.Backend)
	buf = appendProfile(buf, r.Profile)
	buf = appendF64(buf, r.SoloPPS)
	buf = appendF64(buf, r.PredictedPPS)
	buf = appendStr(buf, r.Bottleneck)
	buf = binary.AppendUvarint(buf, uint64(len(r.PerResource)))
	for i := range r.PerResource {
		buf = appendStr(buf, r.PerResource[i].Resource)
		buf = appendF64(buf, r.PerResource[i].PPS)
	}
	return buf
}

// AppendBatchRequest encodes a batch request payload.
func AppendBatchRequest(buf []byte, r *BatchRequest) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(r.Requests)))
	for i := range r.Requests {
		buf = appendPredictRequest(buf, &r.Requests[i])
	}
	return buf
}

// AppendBatchResponse encodes a batch response payload. Errors must be
// empty or exactly as long as Responses.
func AppendBatchResponse(buf []byte, r *BatchResponse) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(r.Responses)))
	hasErrs := byte(0)
	if len(r.Errors) > 0 {
		hasErrs = 1
	}
	buf = append(buf, hasErrs)
	for i := range r.Responses {
		buf = AppendPredictResponse(buf, &r.Responses[i])
		if hasErrs == 1 {
			buf = appendStr(buf, r.Errors[i])
		}
	}
	return buf
}

// AppendError encodes an error payload.
func AppendError(buf []byte, e *ErrorFrame) []byte {
	buf = binary.AppendUvarint(buf, uint64(e.Status))
	buf = appendStr(buf, e.Code)
	buf = appendStr(buf, e.Message)
	buf = appendStr(buf, e.RequestID)
	buf = appendF64(buf, e.RetryAfterSec)
	return buf
}

// AppendCall encodes a generic tunneled request payload.
func AppendCall(buf []byte, c *Call) []byte {
	buf = appendStr(buf, c.Method)
	buf = appendStr(buf, c.URI)
	buf = appendStr(buf, c.ContentType)
	buf = appendStr(buf, c.RequestID)
	return appendBytes(buf, c.Body)
}

// AppendCallResp encodes a tunneled response payload.
func AppendCallResp(buf []byte, c *CallResp) []byte {
	buf = binary.AppendUvarint(buf, uint64(c.Status))
	buf = binary.AppendUvarint(buf, uint64(len(c.Headers)))
	for i := range c.Headers {
		buf = appendStr(buf, c.Headers[i].Key)
		buf = appendStr(buf, c.Headers[i].Value)
	}
	return appendBytes(buf, c.Body)
}

// --- decoders ---------------------------------------------------------
//
// Decoders parse a full payload and must never panic on malformed
// input: every length is checked against the remaining bytes, and any
// damage surfaces as errBadPayload. Decoded strings and byte slices
// are copies — safe to keep after the Framer's buffer is reused.

type reader struct {
	b   []byte
	off int
	bad bool
}

func (r *reader) fail() { r.bad = true }

func (r *reader) uvarint() uint64 {
	if r.bad {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *reader) varint() int64 {
	if r.bad {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *reader) f64() float64 {
	if r.bad || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

func (r *reader) byteVal() byte {
	if r.bad || r.off >= len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) str() string {
	n := r.uvarint()
	if r.bad || uint64(len(r.b)-r.off) < n {
		r.fail()
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *reader) bytesCopy() []byte {
	n := r.uvarint()
	if r.bad || uint64(len(r.b)-r.off) < n {
		r.fail()
		return nil
	}
	out := make([]byte, n)
	copy(out, r.b[r.off:r.off+int(n)])
	r.off += int(n)
	return out
}

// count validates a collection length against what the remaining bytes
// could possibly hold (at least one byte per element) before any
// allocation, so a forged huge count cannot make decode allocate
// gigabytes.
func (r *reader) count() int {
	n := r.uvarint()
	if r.bad || n > uint64(len(r.b)-r.off) {
		r.fail()
		return 0
	}
	return int(n)
}

func (r *reader) done() error {
	if r.bad {
		return errBadPayload
	}
	if r.off != len(r.b) {
		return fmt.Errorf("%w: %d trailing bytes", errBadPayload, len(r.b)-r.off)
	}
	return nil
}

func (r *reader) profile() Profile {
	p := Profile{Flows: int(r.varint()), PktSize: int(r.varint())}
	if r.byteVal() == 1 {
		v := r.f64()
		p.MTBR = &v
	}
	return p
}

func (r *reader) predictRequest() PredictRequest {
	out := PredictRequest{
		NF:      r.str(),
		HW:      r.str(),
		Backend: r.str(),
		Profile: r.profile(),
	}
	if n := r.count(); n > 0 {
		out.Competitors = make([]Competitor, n)
		for i := range out.Competitors {
			out.Competitors[i] = Competitor{Name: r.str(), Profile: r.profile()}
		}
	}
	return out
}

func (r *reader) predictResponse() PredictResponse {
	out := PredictResponse{
		NF:           r.str(),
		HW:           r.str(),
		Backend:      r.str(),
		Profile:      r.profile(),
		SoloPPS:      r.f64(),
		PredictedPPS: r.f64(),
		Bottleneck:   r.str(),
	}
	if n := r.count(); n > 0 {
		out.PerResource = make([]ResourcePPS, n)
		for i := range out.PerResource {
			out.PerResource[i] = ResourcePPS{Resource: r.str(), PPS: r.f64()}
		}
	}
	return out
}

// DecodeHello parses a TypeHello payload.
func DecodeHello(b []byte) (string, error) {
	r := reader{b: b}
	key := r.str()
	return key, r.done()
}

// DecodePredictRequest parses a TypePredict payload.
func DecodePredictRequest(b []byte) (PredictRequest, error) {
	r := reader{b: b}
	out := r.predictRequest()
	return out, r.done()
}

// DecodePredictResponse parses a TypePredictResp payload.
func DecodePredictResponse(b []byte) (PredictResponse, error) {
	r := reader{b: b}
	out := r.predictResponse()
	return out, r.done()
}

// DecodeBatchRequest parses a TypeBatch payload.
func DecodeBatchRequest(b []byte) (BatchRequest, error) {
	r := reader{b: b}
	var out BatchRequest
	if n := r.count(); n > 0 {
		out.Requests = make([]PredictRequest, n)
		for i := range out.Requests {
			out.Requests[i] = r.predictRequest()
		}
	}
	return out, r.done()
}

// DecodeBatchResponse parses a TypeBatchResp payload.
func DecodeBatchResponse(b []byte) (BatchResponse, error) {
	r := reader{b: b}
	var out BatchResponse
	n := r.count()
	hasErrs := r.byteVal() == 1
	if n > 0 {
		out.Responses = make([]PredictResponse, n)
		if hasErrs {
			out.Errors = make([]string, n)
		}
		for i := range out.Responses {
			out.Responses[i] = r.predictResponse()
			if hasErrs {
				out.Errors[i] = r.str()
			}
		}
	}
	return out, r.done()
}

// DecodeError parses a TypeError payload.
func DecodeError(b []byte) (ErrorFrame, error) {
	r := reader{b: b}
	out := ErrorFrame{
		Status:        int(r.uvarint()),
		Code:          r.str(),
		Message:       r.str(),
		RequestID:     r.str(),
		RetryAfterSec: r.f64(),
	}
	return out, r.done()
}

// DecodeCall parses a TypeCall payload.
func DecodeCall(b []byte) (Call, error) {
	r := reader{b: b}
	out := Call{
		Method:      r.str(),
		URI:         r.str(),
		ContentType: r.str(),
		RequestID:   r.str(),
		Body:        r.bytesCopy(),
	}
	return out, r.done()
}

// DecodeCallResp parses a TypeCallResp payload.
func DecodeCallResp(b []byte) (CallResp, error) {
	r := reader{b: b}
	var out CallResp
	out.Status = int(r.uvarint())
	if n := r.count(); n > 0 {
		out.Headers = make([]HeaderKV, n)
		for i := range out.Headers {
			out.Headers[i] = HeaderKV{Key: r.str(), Value: r.str()}
		}
	}
	out.Body = r.bytesCopy()
	return out, r.done()
}
