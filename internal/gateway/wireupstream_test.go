package gateway

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"testing"
	"time"

	"repro/pkg/yalaclient"
)

var wireCountRe = regexp.MustCompile(`yala_requests_total\{transport="wire"\} (\d+)`)

// TestGatewayWireUpstreamDiscovery proves the gateway's wire-first
// upstream path end to end against a real replica: the health loop
// discovers the wire_addr advertised in /v2/stats, proxied predicts
// then ride binary frames (the replica's own transport="wire" counter
// moves), and the answers are indistinguishable from HTTP proxying.
func TestGatewayWireUpstreamDiscovery(t *testing.T) {
	reps, err := SpawnReplicas(1, quickServiceConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { CloseReplicas(reps) })
	g, err := New(Config{Backends: []string{reps[0].URL}, HealthInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)

	// Discovery is asynchronous: a health probe has to read the
	// replica's stats and build the pool.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if ep := g.replicas[0].ep.Load(); ep != nil && ep.wire.Load() != nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	ep := g.replicas[0].ep.Load()
	if ep == nil || ep.wire.Load() == nil {
		t.Fatal("gateway never discovered the replica's wire listener")
	}

	client := yalaclient.New(ts.URL)
	res, err := client.Predict(context.Background(), yalaclient.ModelID{NF: "FlowStats"}, "", yalaclient.PredictParams{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NF != "FlowStats" || res.PredictedPPS <= 0 {
		t.Fatalf("proxied-over-wire predict looks wrong: %+v", res)
	}

	// The replica's own exposition is the ground truth for which
	// transport served it. Health probes ride HTTP, so only count the
	// wire series.
	resp, err := http.Get(reps[0].URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	m := wireCountRe.FindSubmatch(raw)
	if m == nil {
		t.Fatalf("replica exposition has no transport=\"wire\" series:\n%s", raw)
	}
	if n, _ := strconv.Atoi(string(m[1])); n == 0 {
		t.Fatal("gateway proxied over HTTP despite a discovered wire pool")
	}
}
