package gateway

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
	"repro/pkg/yalaclient"
)

// endpoint is one attachment of a backend URL to a replica slot. The
// slot (hash identity, pending-reload queue, health flag) outlives
// attachments; the endpoint (URL, client, traffic counters, latency
// histogram) is created per attachment so a slot re-attached to a new
// URL starts clean metric series instead of cross-contaminating the old
// URL's. A vacant slot has a nil endpoint and is skipped by routing.
type endpoint struct {
	url    string
	client *yalaclient.Client // health probes and pending-reload replay

	requests atomic.Uint64
	errors   atomic.Uint64
	fanouts  atomic.Uint64

	// wire is the discovered binary-transport pool toward this
	// attachment, nil until a health probe finds a wire_addr advertised
	// in the replica's /v2/stats. A wire transport failure mid-proxy
	// clears it (dropWire) and re-arms discovery, so the gateway rides
	// HTTP until the next probe proves the wire listener back.
	wire       atomic.Pointer[wire.Pool]
	wireProbed atomic.Bool

	// upstream records proxied round-trip latency to this attachment
	// (gateway_upstream_seconds{replica=url}).
	upstream *obs.Histogram
}

// dropWire retires a failed wire pool: only the exact pool the caller
// used is cleared, so a concurrent rediscovery's fresh pool survives.
func (ep *endpoint) dropWire(wp *wire.Pool) {
	if ep.wire.CompareAndSwap(wp, nil) {
		wp.Close()
		ep.wireProbed.Store(false)
	}
}

// closeWire drops whatever pool the endpoint holds (detach, shutdown).
func (ep *endpoint) closeWire() {
	if wp := ep.wire.Swap(nil); wp != nil {
		wp.Close()
	}
}

// newEndpoint dials nothing; it just binds the trimmed URL.
func newEndpoint(url string) (*endpoint, error) {
	url = strings.TrimRight(strings.TrimSpace(url), "/")
	if url == "" {
		return nil, fmt.Errorf("gateway: empty replica URL")
	}
	return &endpoint{url: url, client: yalaclient.New(url)}, nil
}

// Attach occupies a vacant slot with a live backend: probe until the
// backend answers (bounded by HealthTimeout), expose its metric series,
// make it routable, and replay every reload fan-out the slot missed
// while vacant — the rejoining replica is never stale. The endpoint is
// published before the drain, so a fan-out racing the attach dials the
// replica directly instead of falling into the pending queue; fan-outs
// that landed before publication are exactly what drainPending replays.
func (g *Gateway) Attach(slot int, url string) error {
	if slot < 0 || slot >= len(g.replicas) {
		return fmt.Errorf("gateway: attach slot %d out of range [0,%d)", slot, len(g.replicas))
	}
	rep := g.replicas[slot]
	if rep.ep.Load() != nil {
		return fmt.Errorf("gateway: slot %d is already attached to %s", slot, rep.ep.Load().url)
	}
	ep, err := newEndpoint(url)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.HealthTimeout)
	defer cancel()
	for {
		if err := ep.client.Health(ctx); err == nil {
			break
		} else if ctx.Err() != nil {
			return fmt.Errorf("gateway: attaching %s to slot %d: backend never became healthy: %w", ep.url, slot, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	g.registerEndpointObs(rep, ep)
	rep.ep.Store(ep)
	g.drainPending(rep)
	rep.healthy.Store(true)
	return nil
}

// Detach vacates a slot: the replica stops receiving new traffic
// immediately (in-flight proxies finish on the endpoint they already
// hold), and reload fan-outs from here on queue on the slot for replay
// at the next Attach. Returns the detached URL.
func (g *Gateway) Detach(slot int) (string, error) {
	if slot < 0 || slot >= len(g.replicas) {
		return "", fmt.Errorf("gateway: detach slot %d out of range [0,%d)", slot, len(g.replicas))
	}
	rep := g.replicas[slot]
	ep := rep.ep.Load()
	if ep == nil {
		return "", fmt.Errorf("gateway: slot %d is not attached", slot)
	}
	rep.healthy.Store(false)
	rep.ep.Store(nil)
	ep.closeWire()
	return ep.url, nil
}

// Attached reports the currently attached replica URLs by slot; vacant
// slots map to "".
func (g *Gateway) Attached() []string {
	out := make([]string, len(g.replicas))
	for i, rep := range g.replicas {
		if ep := rep.ep.Load(); ep != nil {
			out[i] = ep.url
		}
	}
	return out
}

// attachedCount returns how many slots hold a live endpoint.
func (g *Gateway) attachedCount() int {
	n := 0
	for _, rep := range g.replicas {
		if rep.ep.Load() != nil {
			n++
		}
	}
	return n
}
