package tenant

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync/atomic"

	"repro/internal/obs"
)

// Class is a request priority class. Interactive traffic (single-model
// :predict/:admit/:compare/:diagnose) is what tenants are latency-
// sensitive about; bulk traffic (:batchPredict, cluster runs) is
// throughput work that sheds first under pressure.
type Class int

const (
	ClassInteractive Class = iota
	ClassBulk
	numClasses
)

// String names the class for labels and stats.
func (c Class) String() string {
	if c == ClassBulk {
		return "bulk"
	}
	return "interactive"
}

// Spec is one tenant's configuration as it appears in the -tenants
// JSON file.
type Spec struct {
	// Name identifies the tenant in stats, metrics and logs; unique.
	Name string `json:"name"`
	// Key is the API key presented as `Authorization: Bearer <key>` or
	// `X-API-Key: <key>`; unique across tenants. Empty only on the
	// anonymous spec.
	Key string `json:"key,omitempty"`
	// RPS is the sustained request rate across both classes (token
	// bucket refill); 0 means unlimited.
	RPS float64 `json:"rps,omitempty"`
	// Burst is the bucket capacity; 0 defaults to 2·RPS (min 1).
	Burst float64 `json:"burst,omitempty"`
	// BulkRPS, when positive, moves the bulk class to its own bucket at
	// this rate, so a tenant's batch jobs cannot starve its interactive
	// quota. 0 charges bulk requests to the shared bucket above.
	BulkRPS float64 `json:"bulk_rps,omitempty"`
	// BulkBurst is the bulk bucket capacity; 0 defaults to 2·BulkRPS
	// (min 1).
	BulkBurst float64 `json:"bulk_burst,omitempty"`
}

// File is the -tenants JSON file shape.
type File struct {
	// Tenants lists the keyed tenants.
	Tenants []Spec `json:"tenants"`
	// Anonymous configures the tenant serving keyless requests; nil
	// means anonymous traffic is unlimited (the pre-multi-tenancy
	// behavior). Its Key must be empty.
	Anonymous *Spec `json:"anonymous,omitempty"`
	// RequireKey rejects keyless requests with 401 instead of admitting
	// them as the anonymous tenant.
	RequireKey bool `json:"require_key,omitempty"`
}

// Tenant is one live tenant: identity, limiters, and SLO accounting.
// Counter fields are atomics so the admission path never takes a lock
// beyond the charged bucket's.
type Tenant struct {
	name string
	key  string

	// shared limits both classes; bulk, when non-nil, takes the bulk
	// class to its own bucket. nil shared = unlimited tenant.
	shared *Bucket
	bulk   *Bucket

	admitted    [numClasses]atomic.Uint64
	rateLimited atomic.Uint64
	overloaded  atomic.Uint64
	errors      atomic.Uint64

	// latency is the per-tenant request-latency histogram
	// (yala_tenant_request_seconds); nil until the gate is given an obs
	// registry.
	latency atomic.Pointer[obs.Histogram]
}

// Name returns the tenant's display name.
func (t *Tenant) Name() string { return t.name }

// Limited reports whether the tenant has any rate limit configured.
func (t *Tenant) Limited() bool { return t.shared != nil || t.bulk != nil }

// bucketFor picks the bucket charged for one request of class c; nil
// means the class is unlimited for this tenant.
func (t *Tenant) bucketFor(c Class) *Bucket {
	if c == ClassBulk && t.bulk != nil {
		return t.bulk
	}
	return t.shared
}

// Requests returns the total admitted request count.
func (t *Tenant) Requests() uint64 {
	return t.admitted[ClassInteractive].Load() + t.admitted[ClassBulk].Load()
}

// Shed returns the total 429 count (rate-limited plus overload-shed).
func (t *Tenant) Shed() uint64 {
	return t.rateLimited.Load() + t.overloaded.Load()
}

// Snapshot is one tenant's accounting row, the wire shape behind the
// per-tenant rows in /v2/gateway/stats.
type Snapshot struct {
	Tenant      string `json:"tenant"`
	Limited     bool   `json:"limited"`
	Requests    uint64 `json:"requests"`
	Interactive uint64 `json:"interactive"`
	Bulk        uint64 `json:"bulk"`
	Shed        uint64 `json:"shed"`
	RateLimited uint64 `json:"rate_limited"`
	Overloaded  uint64 `json:"overloaded"`
	Errors      uint64 `json:"errors"`
}

// Snapshot reads the tenant's counters.
func (t *Tenant) Snapshot() Snapshot {
	return Snapshot{
		Tenant:      t.name,
		Limited:     t.Limited(),
		Requests:    t.Requests(),
		Interactive: t.admitted[ClassInteractive].Load(),
		Bulk:        t.admitted[ClassBulk].Load(),
		Shed:        t.Shed(),
		RateLimited: t.rateLimited.Load(),
		Overloaded:  t.overloaded.Load(),
		Errors:      t.errors.Load(),
	}
}

// newTenant builds a live tenant from its spec.
func newTenant(sp Spec) *Tenant {
	t := &Tenant{name: sp.Name, key: sp.Key}
	if sp.RPS > 0 {
		burst := sp.Burst
		if burst <= 0 {
			burst = 2 * sp.RPS
		}
		t.shared = NewBucket(sp.RPS, burst)
	}
	if sp.BulkRPS > 0 {
		burst := sp.BulkBurst
		if burst <= 0 {
			burst = 2 * sp.BulkRPS
		}
		t.bulk = NewBucket(sp.BulkRPS, burst)
	}
	return t
}

// Registry resolves API keys to tenants. It is immutable after
// construction — reload semantics are a restart, like the model
// directory's — so lookups are lock-free map reads.
type Registry struct {
	byKey      map[string]*Tenant
	anon       *Tenant // nil when RequireKey
	requireKey bool
	ordered    []*Tenant // stable iteration order for stats/metrics
}

// AnonymousName is the display name of the keyless default tenant.
const AnonymousName = "anonymous"

// NewRegistry builds a registry from a parsed file. Tenant names and
// keys must be non-empty and unique; the anonymous spec, when present,
// must not carry a key.
func NewRegistry(f File) (*Registry, error) {
	r := &Registry{byKey: make(map[string]*Tenant, len(f.Tenants)), requireKey: f.RequireKey}
	names := map[string]bool{}
	for i, sp := range f.Tenants {
		if sp.Name == "" {
			return nil, fmt.Errorf("tenant: tenants[%d] has no name", i)
		}
		if sp.Key == "" {
			return nil, fmt.Errorf("tenant: tenant %q has no key", sp.Name)
		}
		if sp.RPS < 0 || sp.Burst < 0 || sp.BulkRPS < 0 || sp.BulkBurst < 0 {
			return nil, fmt.Errorf("tenant: tenant %q has a negative rate or burst", sp.Name)
		}
		if names[sp.Name] {
			return nil, fmt.Errorf("tenant: duplicate tenant name %q", sp.Name)
		}
		names[sp.Name] = true
		if _, dup := r.byKey[sp.Key]; dup {
			return nil, fmt.Errorf("tenant: tenant %q reuses another tenant's key", sp.Name)
		}
		t := newTenant(sp)
		r.byKey[sp.Key] = t
		r.ordered = append(r.ordered, t)
	}
	if !f.RequireKey {
		anonSpec := Spec{Name: AnonymousName}
		if f.Anonymous != nil {
			if f.Anonymous.Key != "" {
				return nil, fmt.Errorf("tenant: the anonymous tenant cannot have a key")
			}
			anonSpec = *f.Anonymous
			if anonSpec.Name == "" {
				anonSpec.Name = AnonymousName
			}
			if names[anonSpec.Name] {
				return nil, fmt.Errorf("tenant: duplicate tenant name %q", anonSpec.Name)
			}
		}
		r.anon = newTenant(anonSpec)
		r.ordered = append(r.ordered, r.anon)
	}
	sort.Slice(r.ordered, func(i, j int) bool { return r.ordered[i].name < r.ordered[j].name })
	return r, nil
}

// AnonymousOnly is the default registry an unconfigured server runs
// with: a single unlimited anonymous tenant, preserving pre-tenancy
// behavior exactly (accounting still happens, nothing is ever shed by
// rate).
func AnonymousOnly() *Registry {
	r, err := NewRegistry(File{})
	if err != nil {
		panic(err) // the empty file is statically valid
	}
	return r
}

// Parse decodes a -tenants file strictly (unknown fields are config
// typos, not extensions) and builds the registry.
func Parse(data []byte) (*Registry, error) {
	var f File
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("tenant: decoding tenants file: %w", err)
	}
	return NewRegistry(f)
}

// Load reads and parses a -tenants JSON file.
func Load(path string) (*Registry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenant: %w", err)
	}
	return Parse(data)
}

// Lookup resolves an API key: the empty key is the anonymous tenant
// (nil, false when the registry requires keys), an unknown key is
// (nil, false).
func (r *Registry) Lookup(key string) (*Tenant, bool) {
	if key == "" {
		if r.anon == nil {
			return nil, false
		}
		return r.anon, true
	}
	t, ok := r.byKey[key]
	return t, ok
}

// RequireKey reports whether keyless requests are rejected.
func (r *Registry) RequireKey() bool { return r.requireKey }

// Tenants lists every tenant in stable name order.
func (r *Registry) Tenants() []*Tenant { return r.ordered }
