package serve

import "sync"

// FlightGroup memoizes successful results per key with duplicate-call
// suppression: the first caller for a key computes while concurrent
// callers wait on the same attempt; failed attempts are evicted so a
// later call retries. It is the one implementation of the idiom the
// model registry, the solo-measurement memo and the gateway's request
// coalescing all need — exported so other packages generalize over it
// instead of growing a second singleflight.
type FlightGroup[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]*flight[V]
}

// flight is one load attempt; ready closes when it resolves.
type flight[V any] struct {
	ready chan struct{}
	val   V
	err   error
}

// Do returns the memoized value for key, computing it with fn on first
// use. A positive maxEntries bounds the memo: resolved entries are
// evicted (oldest-iteration-order) to stay under it — only correct when
// fn is deterministic, so eviction merely costs recomputation.
func (g *FlightGroup[K, V]) Do(key K, maxEntries int, fn func() (V, error)) (V, error) {
	g.mu.Lock()
	if g.entries == nil {
		g.entries = map[K]*flight[V]{}
	}
	e, ok := g.entries[key]
	if !ok {
		if maxEntries > 0 && len(g.entries) >= maxEntries {
			g.evictResolvedLocked(maxEntries)
		}
		e = &flight[V]{ready: make(chan struct{})}
		g.entries[key] = e
	}
	g.mu.Unlock()
	if !ok {
		e.val, e.err = fn()
		if e.err != nil {
			g.mu.Lock()
			if g.entries[key] == e {
				delete(g.entries, key)
			}
			g.mu.Unlock()
		}
		close(e.ready)
	}
	<-e.ready
	return e.val, e.err
}

// Coalesce is the do-and-forget mode: concurrent callers for one key
// share a single computation, but the result is dropped the moment it
// resolves — the next call recomputes. It returns shared=true for
// callers that rode an already-in-flight attempt (they never ran fn).
// This is request coalescing, not memoization: correct for any
// idempotent fn, because two calls only ever share a result when they
// overlap in time.
func (g *FlightGroup[K, V]) Coalesce(key K, fn func() (V, error)) (val V, shared bool, err error) {
	g.mu.Lock()
	if g.entries == nil {
		g.entries = map[K]*flight[V]{}
	}
	e, ok := g.entries[key]
	if !ok {
		e = &flight[V]{ready: make(chan struct{})}
		g.entries[key] = e
	}
	g.mu.Unlock()
	if !ok {
		e.val, e.err = fn()
		// Leader drops the entry before resolving: success or failure,
		// nothing outlives the flight. A Do-mode entry for the same key
		// is left alone (distinguished by pointer identity).
		g.mu.Lock()
		if g.entries[key] == e {
			delete(g.entries, key)
		}
		g.mu.Unlock()
		close(e.ready)
		return e.val, false, e.err
	}
	<-e.ready
	return e.val, true, e.err
}

// Put installs a value for key as an already-resolved entry, replacing
// whatever was there. Waiters on an in-flight attempt for the same key
// still receive that attempt's result (their flight resolves
// independently); only later calls observe the installed value. This is
// the promotion path: a model trained out-of-band replaces the served
// one atomically, with no caller ever seeing an empty slot.
func (g *FlightGroup[K, V]) Put(key K, v V) {
	g.mu.Lock()
	if g.entries == nil {
		g.entries = map[K]*flight[V]{}
	}
	e := &flight[V]{ready: make(chan struct{}), val: v}
	close(e.ready)
	g.entries[key] = e
	g.mu.Unlock()
}

// evictResolvedLocked drops resolved entries until under max; in-flight
// attempts are never dropped. Caller holds g.mu.
func (g *FlightGroup[K, V]) evictResolvedLocked(max int) {
	for k, e := range g.entries {
		select {
		case <-e.ready:
			delete(g.entries, k)
		default:
		}
		if len(g.entries) < max {
			return
		}
	}
}

// Forget drops the key so the next Do recomputes (operator reloads).
func (g *FlightGroup[K, V]) Forget(key K) {
	g.mu.Lock()
	delete(g.entries, key)
	g.mu.Unlock()
}

// ForgetMatching drops every key the predicate selects — the multi-key
// form of Forget, for reloads that span derived keys (e.g. one NF's
// models across every hardware class).
func (g *FlightGroup[K, V]) ForgetMatching(match func(K) bool) {
	g.mu.Lock()
	for k := range g.entries {
		if match(k) {
			delete(g.entries, k)
		}
	}
	g.mu.Unlock()
}

// Resolved lists keys whose attempts completed successfully.
func (g *FlightGroup[K, V]) Resolved() []K {
	g.mu.Lock()
	defer g.mu.Unlock()
	keys := make([]K, 0, len(g.entries))
	for k, e := range g.entries {
		select {
		case <-e.ready:
			if e.err == nil {
				keys = append(keys, k)
			}
		default:
		}
	}
	return keys
}
