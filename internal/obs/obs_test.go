package obs

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("yala_requests_total", "verb", "predict")
	c.Add(3)
	c.Inc()
	if got := c.Load(); got != 4 {
		t.Fatalf("Load = %d, want 4", got)
	}
	// Same series identity on re-lookup.
	if r.Counter("yala_requests_total", "verb", "predict") != c {
		t.Fatal("re-lookup returned a different counter")
	}
	r.Counter("yala_requests_total", "verb", "admit").Inc()
	r.GaugeFunc("yala_workers", func() float64 { return 8 })
	r.CounterFunc("yala_cache_hits_total", func() uint64 { return 42 })

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE yala_requests_total counter\n",
		`yala_requests_total{verb="predict"} 4` + "\n",
		`yala_requests_total{verb="admit"} 1` + "\n",
		"# TYPE yala_workers gauge\n",
		"yala_workers 8\n",
		"# TYPE yala_cache_hits_total counter\n",
		"yala_cache_hits_total 42\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Sorted label sets: admit before predict.
	if strings.Index(out, `verb="admit"`) > strings.Index(out, `verb="predict"`) {
		t.Error("series not sorted by labels")
	}
}

func TestLabelCanonicalization(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("m", "b", "2", "a", "1")
	b := r.Counter("m", "a", "1", "b", "2")
	if a != b {
		t.Fatal("label order should not create distinct series")
	}
	var sb strings.Builder
	r.WriteProm(&sb)
	if !strings.Contains(sb.String(), `m{a="1",b="2"} 0`) {
		t.Fatalf("labels not key-sorted: %s", sb.String())
	}
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "path", `a"b\c`).Inc()
	var sb strings.Builder
	r.WriteProm(&sb)
	if !strings.Contains(sb.String(), `m{path="a\"b\\c"} 1`) {
		t.Fatalf("bad escaping: %s", sb.String())
	}
	// Round-trips through the parser.
	exp, err := ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if v, got := labelValue(exp.Samples[0].Labels, "path"); got != true || v != `a\"b\\c` {
		t.Fatalf("labelValue = %q, %v", v, got)
	}
}

// Satellite: zero observations must still render a valid exposition
// with every bucket (including +Inf) present and consistent.
func TestHistogramZeroObservations(t *testing.T) {
	r := NewRegistry()
	r.Histogram("yala_stage_seconds", []float64{0.001, 0.01, 0.1}, "stage", "decode")
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE yala_stage_seconds histogram\n",
		`yala_stage_seconds_bucket{stage="decode",le="0.001"} 0`,
		`yala_stage_seconds_bucket{stage="decode",le="0.01"} 0`,
		`yala_stage_seconds_bucket{stage="decode",le="0.1"} 0`,
		`yala_stage_seconds_bucket{stage="decode",le="+Inf"} 0`,
		`yala_stage_seconds_sum{stage="decode"} 0`,
		`yala_stage_seconds_count{stage="decode"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("zero-obs exposition missing %q in:\n%s", want, out)
		}
	}
	exp, err := ParseExposition(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	uppers, cum, _, count, ok := exp.HistogramSeries("yala_stage_seconds", `stage="decode"`)
	if !ok || count != 0 || len(uppers) != 3 || len(cum) != 4 {
		t.Fatalf("parse-back: uppers=%v cum=%v count=%d ok=%v", uppers, cum, count, ok)
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1.5, 1.7, 4, 100} {
		h.Observe(v)
	}
	cum := h.snapshotCumulative()
	want := []uint64{1, 3, 4, 5}
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("cum = %v, want %v", cum, want)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	if math.Abs(h.Sum()-107.7) > 1e-9 {
		t.Fatalf("Sum = %g", h.Sum())
	}
	// Boundary value lands in its own bucket (le is inclusive).
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(1)
	if c := h2.snapshotCumulative(); c[0] != 1 {
		t.Fatalf("boundary observation not in le=1 bucket: %v", c)
	}
}

func TestHistogramDropsExplicitInf(t *testing.T) {
	h := NewHistogram([]float64{1, math.Inf(1)})
	if len(h.uppers) != 1 {
		t.Fatalf("explicit +Inf bound kept: %v", h.uppers)
	}
	h.Observe(5)
	if c := h.snapshotCumulative(); c[len(c)-1] != 1 || c[0] != 0 {
		t.Fatalf("overflow bucket wrong: %v", c)
	}
}

// Satellite: concurrent Observe under -race, with a reader racing the
// writers through snapshot and exposition paths.
func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("hammer_seconds", []float64{0.25, 0.5, 0.75}, "stage", "x")
	const (
		workers = 8
		perW    = 2000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // racing reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sb strings.Builder
			r.WriteProm(&sb)
			h.Quantile(0.5)
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.Observe(float64(i%100) / 100)
				r.Counter("hammer_total", "w", "shared").Inc()
			}
		}(w)
	}
	// Let the writers drain, then stop the racing reader.
	for h.Count() < workers*perW {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if got := h.Count(); got != workers*perW {
		t.Fatalf("Count = %d, want %d", got, workers*perW)
	}
	cum := h.snapshotCumulative()
	if cum[len(cum)-1] != workers*perW {
		t.Fatalf("cumulative total = %d", cum[len(cum)-1])
	}
	if got := r.Counter("hammer_total", "w", "shared").Load(); got != workers*perW {
		t.Fatalf("counter = %d", got)
	}
	wantSum := float64(workers) * 2000 * 0.495 // mean of (i%100)/100 over 2000 iterations
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Fatalf("Sum = %g, want %g", h.Sum(), wantSum)
	}
}

// Satellite: the quantile estimator clamps instead of returning NaN on
// degenerate inputs — the same contract serve's percentile() keeps for
// client-side latencies.
func TestBucketQuantileClamps(t *testing.T) {
	tests := []struct {
		name   string
		uppers []float64
		cum    []uint64
		p      float64
		want   float64
	}{
		{"empty everything", nil, nil, 0.5, 0},
		{"zero observations", []float64{1, 2}, []uint64{0, 0, 0}, 0.99, 0},
		{"no finite buckets all inf", nil, []uint64{7}, 0.5, 0},
		{"one bucket", []float64{1}, []uint64{4, 4}, 0.5, 0.5},
		{"p below zero clamps", []float64{1, 2}, []uint64{2, 4, 4}, -3, 0},
		{"p above one clamps", []float64{1, 2}, []uint64{2, 4, 4}, 7, 2},
		{"mass in inf bucket clamps to last upper", []float64{1, 2}, []uint64{0, 0, 5}, 0.5, 2},
		{"median interpolates", []float64{1, 2}, []uint64{2, 4, 4}, 0.5, 1},
		{"p99 in top finite bucket", []float64{1, 2}, []uint64{2, 4, 4}, 0.99, 1.98},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := BucketQuantile(tc.uppers, tc.cum, tc.p)
			if math.IsNaN(got) {
				t.Fatalf("returned NaN")
			}
			if math.Abs(got-tc.want) > 1e-9 {
				t.Fatalf("BucketQuantile = %g, want %g", got, tc.want)
			}
		})
	}
	// Histogram.Quantile on a fresh histogram must not NaN either.
	h := NewHistogram(nil)
	if q := h.Quantile(0.99); q != 0 || math.IsNaN(q) {
		t.Fatalf("empty histogram Quantile = %g", q)
	}
}

func TestTraceSpans(t *testing.T) {
	tr := NewTrace("req-000001")
	ctx := ContextWithTrace(context.Background(), tr)
	sp := StartSpan(ctx, "decode")
	time.Sleep(2 * time.Millisecond)
	sp.End()
	// Concurrent spans on one trace (batch fan-out shape).
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := StartSpan(ctx, "predict")
			time.Sleep(time.Millisecond)
			s.End()
		}()
	}
	wg.Wait()
	st := tr.Stages()
	if st["decode"] < 2*time.Millisecond {
		t.Fatalf("decode = %v", st["decode"])
	}
	if st["predict"] < 4*time.Millisecond {
		t.Fatalf("predict should sum concurrent spans: %v", st["predict"])
	}
	// Untraced context: everything is a no-op.
	s := StartSpan(context.Background(), "decode")
	s.End()
	if FromContext(context.Background()) != nil {
		t.Fatal("FromContext on untraced ctx")
	}
}

func TestParseAndMergeExpositions(t *testing.T) {
	mk := func(uptime, start, reqs float64) *Exposition {
		r := NewRegistry()
		c := r.Counter("yala_requests_total", "verb", "predict")
		c.Add(uint64(reqs))
		r.GaugeFunc("yala_uptime_seconds", func() float64 { return uptime })
		r.GaugeFunc("yala_start_time_seconds", func() float64 { return start })
		r.Histogram("yala_stage_seconds", []float64{0.1}, "stage", "predict").Observe(0.05)
		var sb strings.Builder
		r.WriteProm(&sb)
		exp, err := ParseExposition(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatal(err)
		}
		return exp
	}
	a := mk(100, 1000, 3)
	b := mk(50, 2000, 5)

	rule := func(fam string) MergeRule {
		switch fam {
		case "yala_uptime_seconds":
			return MergeMax
		case "yala_start_time_seconds":
			return MergeMin
		}
		return MergeSum
	}
	m := MergeExpositions([]*Exposition{a, b, nil}, rule)

	if v, ok := m.Value("yala_requests_total", `verb="predict"`); !ok || v != 8 {
		t.Fatalf("merged requests = %v, %v", v, ok)
	}
	if v, ok := m.Value("yala_uptime_seconds", ""); !ok || v != 100 {
		t.Fatalf("merged uptime = %v (must be max, not sum)", v)
	}
	if v, ok := m.Value("yala_start_time_seconds", ""); !ok || v != 1000 {
		t.Fatalf("merged start = %v (must be min)", v)
	}
	// Histogram components summed.
	uppers, cum, sum, count, ok := m.HistogramSeries("yala_stage_seconds", `stage="predict"`)
	if !ok || count != 2 || len(uppers) != 1 || cum[0] != 2 || math.Abs(sum-0.1) > 1e-9 {
		t.Fatalf("merged histogram: uppers=%v cum=%v sum=%g count=%d ok=%v", uppers, cum, sum, count, ok)
	}
	// Merged exposition renders back to valid text.
	var sb strings.Builder
	if err := m.Render(&sb); err != nil {
		t.Fatal(err)
	}
	re, err := ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(re.Samples) != len(m.Samples) {
		t.Fatalf("re-parse lost samples: %d != %d", len(re.Samples), len(m.Samples))
	}
	if re.Types["yala_requests_total"] != "counter" {
		t.Fatalf("TYPE lines lost: %v", re.Types)
	}
}

func TestParseExpositionTolerant(t *testing.T) {
	in := `# HELP something helpful
# TYPE m counter
m{a="x}y"} 3
garbage line without value
m_nolabels 4 1700000000
`
	exp, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Samples) != 2 {
		t.Fatalf("samples = %+v", exp.Samples)
	}
	if v, _ := labelValue(exp.Samples[0].Labels, "a"); v != "x}y" {
		t.Fatalf("brace-in-value mishandled: %q", v)
	}
	if exp.Samples[1].Value != 4 {
		t.Fatalf("timestamped sample: %+v", exp.Samples[1])
	}
}
