// Package wire implements "yalawire", the length-prefixed binary
// protocol behind the predict hot path. See doc.go for the protocol
// overview and frame layout.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Version is the protocol version carried in every frame header. A
// server answers a frame with an unknown version with an Error frame
// and closes the connection — the client falls back to HTTP, so /v2
// JSON stays the compatible front door across version skew.
const Version = 1

// MaxPayload bounds a single frame's payload, mirroring the HTTP
// layer's request-body cap (maxBodyBytes) and the new response-read
// caps: no peer can make the other side buffer more than this.
const MaxPayload = 10 << 20

// headerSize is the fixed frame prefix: magic(2) version(1) type(1)
// length(4, big-endian) request-id(8, big-endian).
const headerSize = 16

// magic0, magic1 open every frame ("YW"); anything else on the socket
// is not yalawire and the connection is torn down immediately.
const (
	magic0 = 'Y'
	magic1 = 'W'
)

// Frame types. Requests and responses pair up: a peer answers TypeX
// with TypeXAck/TypeXResp carrying the same request id, or with
// TypeError.
const (
	// TypeHello opens a connection: payload is the client's API key
	// (may be empty). The server answers TypeHelloAck. Any other first
	// frame is a protocol error.
	TypeHello byte = 1
	// TypeHelloAck acknowledges TypeHello; empty payload.
	TypeHelloAck byte = 2
	// TypeEcho asks the peer to reflect the payload back verbatim as
	// TypeEchoAck. It bypasses serving entirely — it exists to measure
	// the transport floor (framing + syscalls, zero serving cost).
	TypeEcho    byte = 3
	TypeEchoAck byte = 4
	// TypePredict carries a binary PredictRequest; answered with
	// TypePredictResp (PredictResponse) or TypeError.
	TypePredict     byte = 5
	TypePredictResp byte = 6
	// TypeBatch carries a BatchRequest; answered with TypeBatchResp.
	TypeBatch     byte = 7
	TypeBatchResp byte = 8
	// TypeCall tunnels a generic HTTP-shaped request (method, URI,
	// body) for verbs without a typed frame — the gateway uses it to
	// reach wire upstreams without re-encoding JSON bodies. Answered
	// with TypeCallResp carrying the status, selected headers, and raw
	// body bytes.
	TypeCall     byte = 9
	TypeCallResp byte = 10
	// TypeError reports a request failure: an ErrorFrame payload with
	// the same status/code/message the /v2 JSON envelope would carry.
	TypeError byte = 15
)

// Framing errors. ErrTransport additionally tags connection-level
// failures (dial, read, write, framing) so callers can distinguish
// "the transport broke — fall back" from "the server answered with an
// application error".
var (
	ErrTransport  = errors.New("wire: transport failure")
	errMagic      = errors.New("wire: bad frame magic")
	errVersion    = errors.New("wire: unsupported protocol version")
	errOversized  = fmt.Errorf("wire: frame exceeds %d-byte payload cap", MaxPayload)
	errTruncated  = errors.New("wire: truncated payload")
	errBadPayload = errors.New("wire: malformed payload")
)

// Frame is one decoded frame. Payload aliases the Framer's internal
// read buffer: it is valid only until the next ReadFrame on the same
// Framer — decode or copy before reading again.
type Frame struct {
	Type    byte
	ID      uint64
	Payload []byte
}

// Framer reads and writes frames over one stream. It is not
// goroutine-safe; a connection is driven by one goroutine at a time
// (the server's per-conn loop, or a pooled client conn checked out
// exclusively).
type Framer struct {
	br   *bufio.Reader
	bw   *bufio.Writer
	rbuf []byte // payload buffer, reused across ReadFrame calls
	hdr  [headerSize]byte
}

// NewFramer wraps a stream (normally a net.Conn) for framed I/O.
func NewFramer(rw io.ReadWriter) *Framer {
	return &Framer{br: bufio.NewReaderSize(rw, 32<<10), bw: bufio.NewWriterSize(rw, 32<<10)}
}

// WriteFrame writes and flushes one frame. The payload is not
// retained.
func (f *Framer) WriteFrame(typ byte, id uint64, payload []byte) error {
	if len(payload) > MaxPayload {
		return errOversized
	}
	f.hdr[0], f.hdr[1], f.hdr[2], f.hdr[3] = magic0, magic1, Version, typ
	binary.BigEndian.PutUint32(f.hdr[4:8], uint32(len(payload)))
	binary.BigEndian.PutUint64(f.hdr[8:16], id)
	if _, err := f.bw.Write(f.hdr[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrTransport, err)
	}
	if _, err := f.bw.Write(payload); err != nil {
		return fmt.Errorf("%w: %v", ErrTransport, err)
	}
	if err := f.bw.Flush(); err != nil {
		return fmt.Errorf("%w: %v", ErrTransport, err)
	}
	return nil
}

// ReadFrame reads the next frame. The returned payload is only valid
// until the next ReadFrame. io.EOF is returned bare on a clean
// between-frames close so server loops can distinguish hangup from
// protocol damage.
func (f *Framer) ReadFrame() (Frame, error) {
	if _, err := io.ReadFull(f.br, f.hdr[:]); err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("%w: %v", ErrTransport, err)
	}
	if f.hdr[0] != magic0 || f.hdr[1] != magic1 {
		return Frame{}, fmt.Errorf("%w: %v", ErrTransport, errMagic)
	}
	if f.hdr[2] != Version {
		return Frame{}, fmt.Errorf("%w: %v (got %d, want %d)", ErrTransport, errVersion, f.hdr[2], Version)
	}
	n := binary.BigEndian.Uint32(f.hdr[4:8])
	if n > MaxPayload {
		return Frame{}, fmt.Errorf("%w: %v", ErrTransport, errOversized)
	}
	if cap(f.rbuf) < int(n) {
		f.rbuf = make([]byte, n)
	}
	f.rbuf = f.rbuf[:n]
	if _, err := io.ReadFull(f.br, f.rbuf); err != nil {
		return Frame{}, fmt.Errorf("%w: %v", ErrTransport, errTruncated)
	}
	return Frame{Type: f.hdr[3], ID: binary.BigEndian.Uint64(f.hdr[8:16]), Payload: f.rbuf}, nil
}

// bufPool recycles encode buffers so the steady-state hot path
// allocates nothing for framing: GetBuf for an empty append target,
// PutBuf when the frame has been written.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// GetBuf returns an empty pooled append buffer.
func GetBuf() []byte { return (*(bufPool.Get().(*[]byte)))[:0] }

// PutBuf returns a buffer obtained from GetBuf (possibly grown) to the
// pool. Oversized buffers are dropped so one huge batch doesn't pin
// megabytes in the pool forever.
func PutBuf(b []byte) {
	if cap(b) > 1<<20 {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}
