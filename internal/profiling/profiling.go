// Package profiling implements Yala's offline data-collection strategies
// (§5.2): full profiling over an attribute grid, random sampling, and the
// paper's Algorithm 1 — adaptive profiling, which prunes traffic
// attributes the NF is insensitive to and concentrates samples in the
// attribute ranges where solo performance changes the most.
package profiling

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

// Spec is one sample to collect: a traffic profile for the target NF and
// a synthetic memory-contention level to apply while measuring.
type Spec struct {
	Profile    traffic.Profile
	Contention testbed.MemContention
}

// SoloObs is a solo-throughput observation made while planning; trainers
// reuse these for the solo model rather than re-measuring.
type SoloObs struct {
	Profile    traffic.Profile
	Throughput float64
}

// Plan is the outcome of a profiling strategy.
type Plan struct {
	// Attributes are the traffic attributes kept after pruning (all of
	// them for full/random plans).
	Attributes []traffic.Attribute
	// Samples are the contended measurements to collect.
	Samples []Spec
	// SoloObs are the solo measurements taken during planning.
	SoloObs []SoloObs
}

// Cost is the number of contended samples the plan collects.
func (p *Plan) Cost() int { return len(p.Samples) }

// Config tunes adaptive profiling (Algorithm 1's hyperparameters).
type Config struct {
	// Quota bounds the number of contended samples (q).
	Quota int
	// PruneFrac (ε₀) prunes an attribute when the solo-throughput swing
	// across its range is below this fraction of the default-profile
	// solo throughput.
	PruneFrac float64
	// RangeFrac (ε₁) recurses into a range only when the solo swing
	// across it exceeds this fraction.
	RangeFrac float64
	// PerMidpoint (m) is the number of random-contention samples taken
	// at each recursion midpoint.
	PerMidpoint int
	// Seed drives contention-level randomization.
	Seed uint64
}

// DefaultConfig mirrors the paper's regime: a modest quota with targeted
// bisection.
func DefaultConfig(quota int) Config {
	return Config{Quota: quota, PruneFrac: 0.05, RangeFrac: 0.03, PerMidpoint: 12, Seed: 1}
}

// SoloFunc measures the target NF's solo throughput at a profile.
type SoloFunc func(traffic.Profile) (float64, error)

// randomContention draws a mem-bench level uniformly from the standard
// bounds.
func randomContention(rng *sim.RNG) testbed.MemContention {
	b := testbed.MemContentionBounds
	return testbed.MemContention{
		CAR: rng.Range(b.CARLo, b.CARHi),
		WSS: rng.Range(b.WSSLo, b.WSSHi),
	}
}

// contentionSequence yields k contention levels: the first draws walk a
// stratified 3×3 grid over (CAR, WSS) so every profile sees the corners
// of the contention space, and the rest are uniform. Purely random draws
// underweight the high-CAR/high-WSS corner where sensitivity is steepest.
func contentionSequence(rng *sim.RNG, k int) []testbed.MemContention {
	b := testbed.MemContentionBounds
	var grid []testbed.MemContention
	for _, fc := range []float64{0.1, 0.5, 0.95} {
		for _, fw := range []float64{0.1, 0.5, 0.95} {
			grid = append(grid, testbed.MemContention{
				CAR: b.CARLo + (b.CARHi-b.CARLo)*fc,
				WSS: b.WSSLo + (b.WSSHi-b.WSSLo)*fw,
			})
		}
	}
	rng.Shuffle(len(grid), func(i, j int) { grid[i], grid[j] = grid[j], grid[i] })
	out := make([]testbed.MemContention, 0, k)
	for i := 0; i < k; i++ {
		if i < len(grid) {
			out = append(out, grid[i])
		} else {
			out = append(out, randomContention(rng))
		}
	}
	return out
}

// Random returns a plan of quota samples at uniformly random profiles and
// contention levels — the paper's random-profiling baseline.
func Random(quota int, seed uint64) *Plan {
	rng := sim.NewRNG(seed)
	p := &Plan{Attributes: allAttributes()}
	for i := 0; i < quota; i++ {
		p.Samples = append(p.Samples, Spec{
			Profile:    traffic.Random(rng),
			Contention: randomContention(rng),
		})
	}
	return p
}

// Full returns a plan covering an attribute grid with perProfile random
// contention levels each — the paper's 3200× full-profiling reference.
func Full(grid []traffic.Profile, perProfile int, seed uint64) *Plan {
	rng := sim.NewRNG(seed)
	p := &Plan{Attributes: allAttributes()}
	for _, prof := range grid {
		for i := 0; i < perProfile; i++ {
			p.Samples = append(p.Samples, Spec{
				Profile:    prof,
				Contention: randomContention(rng),
			})
		}
	}
	return p
}

func allAttributes() []traffic.Attribute {
	attrs := make([]traffic.Attribute, 0, traffic.NumAttributes)
	for a := traffic.Attribute(0); a < traffic.NumAttributes; a++ {
		attrs = append(attrs, a)
	}
	return attrs
}

// Adaptive runs Algorithm 1: prune insensitive attributes using solo
// throughput at the attribute extremes, then recursively bisect the kept
// attribute region, collecting PerMidpoint random-contention samples at
// each midpoint whose enclosing range still shows a solo-throughput
// swing above ε₁.
func Adaptive(solo SoloFunc, cfg Config) (*Plan, error) {
	if cfg.Quota <= 0 {
		return nil, fmt.Errorf("profiling: non-positive quota %d", cfg.Quota)
	}
	if cfg.PerMidpoint <= 0 {
		cfg.PerMidpoint = 1
	}
	rng := sim.NewRNG(cfg.Seed)
	plan := &Plan{}

	cache := map[traffic.Profile]float64{}
	soloAt := func(p traffic.Profile) (float64, error) {
		if v, ok := cache[p]; ok {
			return v, nil
		}
		v, err := solo(p)
		if err != nil {
			return 0, err
		}
		cache[p] = v
		plan.SoloObs = append(plan.SoloObs, SoloObs{Profile: p, Throughput: v})
		return v, nil
	}

	ref, err := soloAt(traffic.Default)
	if err != nil {
		return nil, err
	}
	if ref <= 0 {
		return nil, fmt.Errorf("profiling: zero solo throughput at default profile")
	}

	// Phase 1: attribute pruning (Algorithm 1 lines 7–11).
	for a := traffic.Attribute(0); a < traffic.NumAttributes; a++ {
		lo, hi := a.Bounds()
		tMin, err := soloAt(traffic.Default.With(a, lo))
		if err != nil {
			return nil, err
		}
		tMax, err := soloAt(traffic.Default.With(a, hi))
		if err != nil {
			return nil, err
		}
		if math.Abs(tMax-tMin) >= cfg.PruneFrac*ref {
			plan.Attributes = append(plan.Attributes, a)
		}
	}

	if len(plan.Attributes) == 0 {
		// Nothing traffic-sensitive: spend the quota at the default
		// profile across random contention levels.
		for len(plan.Samples) < cfg.Quota {
			plan.Samples = append(plan.Samples, Spec{
				Profile:    traffic.Default,
				Contention: randomContention(rng),
			})
		}
		return plan, nil
	}

	// Phase 2: recursive range bisection (Algorithm 1 lines 14–26).
	// Each kept attribute is bisected on its own axis (others at their
	// defaults) so the default-anchored slices the NF actually operates
	// in are densely covered; a final joint bisection sweeps the
	// diagonal for cross-attribute interactions.
	axes := len(plan.Attributes) + 1
	perAxis := cfg.Quota / axes
	for _, a := range plan.Attributes {
		l, h := a.Bounds()
		axisCfg := cfg
		axisCfg.Quota = len(plan.Samples) + perAxis
		if err := bisect(plan, soloAt, traffic.Default.With(a, l), traffic.Default.With(a, h),
			[]traffic.Attribute{a}, axisCfg, rng, ref); err != nil {
			return nil, err
		}
	}
	lo := traffic.Default
	hi := traffic.Default
	for _, a := range plan.Attributes {
		l, h := a.Bounds()
		lo = lo.With(a, l)
		hi = hi.With(a, h)
	}
	if err := bisect(plan, soloAt, lo, hi, plan.Attributes, cfg, rng, ref); err != nil {
		return nil, err
	}
	// If bisection converged before exhausting the quota, spread the rest
	// over a bounded pool of extra profiles in the kept region. A pool —
	// rather than a fresh profile per draw — keeps the number of distinct
	// profiles (each needing its own footprint profiling) proportional to
	// the bisection, not the quota.
	const spreadPool = 16
	var pool []traffic.Profile
	for i := 0; i < spreadPool; i++ {
		p := traffic.Default
		for _, a := range plan.Attributes {
			l, h := a.Bounds()
			p = p.With(a, rng.Range(l, h))
		}
		pool = append(pool, p)
	}
	for i := 0; len(plan.Samples) < cfg.Quota; i++ {
		plan.Samples = append(plan.Samples, Spec{
			Profile:    pool[i%len(pool)],
			Contention: randomContention(rng),
		})
	}
	return plan, nil
}

// maxBisectDepth bounds bisection depth independent of the quota.
const maxBisectDepth = 12

// bisect performs the range_profile recursion of Algorithm 1 breadth-
// first: every range at depth d is sampled before any range at depth d+1,
// so a tight quota still spreads over the whole sensitive region rather
// than one flank of it.
func bisect(plan *Plan, solo SoloFunc, lo, hi traffic.Profile, attrs []traffic.Attribute, cfg Config, rng *sim.RNG, ref float64) error {
	type span struct{ lo, hi traffic.Profile }
	// Anchor the region endpoints with contended samples first: the
	// bisection below only refines interior midpoints, and the extremes
	// (e.g. very low flow counts) can behave differently under contention
	// even where solo throughput is flat.
	for _, p := range []traffic.Profile{lo, hi} {
		for _, c := range contentionSequence(rng, cfg.PerMidpoint) {
			if len(plan.Samples) >= cfg.Quota {
				return nil
			}
			plan.Samples = append(plan.Samples, Spec{Profile: p, Contention: c})
		}
	}
	frontier := []span{{lo, hi}}
	for depth := 0; depth <= maxBisectDepth && len(frontier) > 0; depth++ {
		var next []span
		for _, s := range frontier {
			if len(plan.Samples) >= cfg.Quota {
				return nil
			}
			tMin, err := solo(s.lo)
			if err != nil {
				return err
			}
			tMax, err := solo(s.hi)
			if err != nil {
				return err
			}
			if math.Abs(tMax-tMin) < cfg.RangeFrac*ref {
				continue
			}
			mid := s.lo
			for _, a := range attrs {
				mid = mid.With(a, (s.lo.Get(a)+s.hi.Get(a))/2)
			}
			for _, c := range contentionSequence(rng, cfg.PerMidpoint) {
				if len(plan.Samples) >= cfg.Quota {
					break
				}
				plan.Samples = append(plan.Samples, Spec{Profile: mid, Contention: c})
			}
			next = append(next, span{s.lo, mid}, span{mid, s.hi})
		}
		frontier = next
	}
	return nil
}
