package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/nicsim"
	"repro/internal/placement"
	"repro/internal/slomo"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

// ServiceConfig tunes a Service.
type ServiceConfig struct {
	Registry RegistryConfig
	// Workers bounds concurrent prediction work; default GOMAXPROCS.
	Workers int
	// QueueDepth is the pending-request backlog before submitters block
	// (backpressure); default 4×Workers.
	QueueDepth int
	// CacheEntries is the LRU capacity across all shards; default 8192.
	// Negative disables caching.
	CacheEntries int
}

func (c ServiceConfig) withDefaults() ServiceConfig {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 8192
	}
	return c
}

// soloKey identifies one solo measurement.
type soloKey struct {
	name string
	prof traffic.Profile
}

// Service answers prediction-serving requests: Predict, Compare, Admit
// and Diagnose run on a bounded worker pool, consult the model registry,
// and memoize full responses in a sharded LRU. Every measurement a
// request needs runs on a fresh deterministic testbed, so a response is a
// pure function of the request (plus the registry's models) and caching
// is exact, not approximate.
type Service struct {
	cfg   ServiceConfig
	reg   *ModelRegistry
	cache *Cache

	solo flightGroup[soloKey, nicsim.Measurement]

	jobs    chan func()
	wg      sync.WaitGroup
	closeMu sync.RWMutex
	closed  bool

	// clusterSem serializes cluster comparison runs: they are
	// multi-second batch jobs that bypass the worker pool, so without a
	// cap abandoned or hostile requests could pin every CPU.
	clusterSem chan struct{}

	started time.Time

	predicts    atomic.Uint64
	compares    atomic.Uint64
	admits      atomic.Uint64
	diagnoses   atomic.Uint64
	clusterRuns atomic.Uint64
	errors      atomic.Uint64
}

// NewService starts a service and its worker pool. Call Close to stop it.
func NewService(cfg ServiceConfig) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:        cfg,
		reg:        NewRegistry(cfg.Registry),
		cache:      NewCache(cfg.CacheEntries),
		jobs:       make(chan func(), cfg.QueueDepth),
		clusterSem: make(chan struct{}, 1),
		started:    time.Now(),
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go func() {
			defer s.wg.Done()
			for job := range s.jobs {
				job()
			}
		}()
	}
	return s
}

// Registry exposes the service's model registry.
func (s *Service) Registry() *ModelRegistry { return s.reg }

// Reload evicts a model so the next request re-reads the model directory
// — the operator hook for pushing retrained models into a live server —
// and flushes the response cache, whose entries were computed with the
// old model. The solo-measurement memo survives: measurements depend
// only on the testbed, not on models.
func (s *Service) Reload(backend Backend, name string) {
	s.reg.Reload(backend, name)
	s.cache.Flush()
}

// ErrClosed reports a request arriving after Close. The HTTP layer maps
// it to 503 so retry policies treat it as a transient server condition,
// not a bad request.
var ErrClosed = errors.New("serve: service closed")

// Close drains the worker pool. In-flight requests finish; subsequent
// requests fail with ErrClosed.
func (s *Service) Close() {
	s.closeMu.Lock()
	if !s.closed {
		s.closed = true
		close(s.jobs)
	}
	s.closeMu.Unlock()
	s.wg.Wait()
}

// enqueue hands a job to the pool. A full backlog applies backpressure
// until the caller's context expires — abandoned clients must not keep
// handler goroutines parked on the queue forever.
func (s *Service) enqueue(ctx context.Context, job func()) error {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	select {
	case s.jobs <- job:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// submit runs fn on the worker pool and waits for its result. A context
// canceled while the job is still queued skips the compute.
func submit[T any](ctx context.Context, s *Service, fn func() (T, error)) (T, error) {
	type outcome struct {
		v   T
		err error
	}
	ch := make(chan outcome, 1)
	if err := s.enqueue(ctx, func() {
		if ctx.Err() != nil {
			ch <- outcome{err: ctx.Err()}
			return
		}
		v, err := fn()
		ch <- outcome{v, err}
	}); err != nil {
		var zero T
		return zero, err
	}
	o := <-ch
	if o.err != nil {
		s.errors.Add(1)
	}
	return o.v, o.err
}

// freshTestbed returns a new testbed at the service's NIC preset and
// seed. Measurements on a fresh testbed are deterministic regardless of
// request interleaving — the property the response cache relies on.
func (s *Service) freshTestbed() *testbed.Testbed {
	cfg := s.cfg.Registry.withDefaults()
	return testbed.New(cfg.NIC, cfg.Seed)
}

// maxSoloEntries bounds the solo-measurement memo. Clients choose
// profiles freely, so without a cap a profile-sweeping client would grow
// the map (one full simulation result per distinct profile) forever.
// Eviction only costs a deterministic re-measurement later.
const maxSoloEntries = 4096

// soloMeasurement returns the NF's solo measurement at a profile, with
// duplicate-measurement suppression across concurrent requests. The cap
// is safe because measurements are deterministic — eviction only costs a
// re-measurement.
func (s *Service) soloMeasurement(name string, prof traffic.Profile) (nicsim.Measurement, error) {
	return s.solo.do(soloKey{name, prof}, maxSoloEntries, func() (nicsim.Measurement, error) {
		return s.freshTestbed().SoloNF(name, prof)
	})
}

// competitors resolves competitor specs into the predictor-facing form
// plus the aggregate counters SLOMO consumes.
func (s *Service) competitors(specs []CompetitorSpec) ([]core.Competitor, nicsim.Counters, error) {
	var comps []core.Competitor
	var agg nicsim.Counters
	for _, spec := range specs {
		m, err := s.soloMeasurement(spec.Name, spec.Profile.Profile())
		if err != nil {
			return nil, nicsim.Counters{}, err
		}
		comps = append(comps, core.CompetitorFromMeasurement(m))
		agg.Add(m.Counters)
	}
	return comps, agg, nil
}

// PredictRequest asks for an NF's throughput under a co-location.
type PredictRequest struct {
	NF          string           `json:"nf"`
	Profile     ProfileSpec      `json:"profile,omitzero"`
	Competitors []CompetitorSpec `json:"competitors,omitempty"`
	Backend     string           `json:"backend,omitempty"`
}

// PredictResponse is the predictor's answer.
type PredictResponse struct {
	NF           string      `json:"nf"`
	Backend      Backend     `json:"backend"`
	Profile      ProfileSpec `json:"profile"`
	SoloPPS      float64     `json:"solo_pps"`
	PredictedPPS float64     `json:"predicted_pps"`
	// PerResourcePPS and Bottleneck carry Yala's per-resource breakdown;
	// SLOMO, memory-only, omits them.
	PerResourcePPS map[string]float64 `json:"per_resource_pps,omitempty"`
	Bottleneck     string             `json:"bottleneck,omitempty"`
}

// predictKey is the shared cache key for one prediction scenario;
// Compare and Diagnose derive from the same entries.
func predictKey(backend Backend, name string, prof traffic.Profile, comps []CompetitorSpec) string {
	return fmt.Sprintf("predict|%s|%s", backend, scenarioKey(name, prof, comps))
}

// predictCached answers one scenario through the shared predict cache,
// on the caller's goroutine (pool scheduling is the caller's concern).
// Its lookup is quiet: the API entry point already counted this request
// in the hit/miss stats.
func (s *Service) predictCached(backend Backend, name string, prof traffic.Profile, comps []CompetitorSpec) (PredictResponse, error) {
	key := predictKey(backend, name, prof, comps)
	if v, ok := s.cache.getQuiet(key); ok {
		return v.(PredictResponse), nil
	}
	resp, err := s.predictUncached(backend, name, prof, comps)
	if err != nil {
		return PredictResponse{}, err
	}
	s.cache.Put(key, resp)
	return resp, nil
}

// Predict estimates throughput for the request's scenario, serving from
// the response cache when the scenario has been answered before. Cache
// hits answer synchronously on the caller's goroutine; only predictor
// work goes through the worker pool — the pool bounds compute, and a
// lookup is not compute.
func (s *Service) Predict(ctx context.Context, req PredictRequest) (PredictResponse, error) {
	s.predicts.Add(1)
	if err := validateScenario(req.NF, req.Profile, req.Competitors, req.Backend); err != nil {
		s.errors.Add(1)
		return PredictResponse{}, err
	}
	backend, _ := ParseBackend(req.Backend)
	prof := req.Profile.Profile()
	comps := canonSpecs(req.Competitors)
	// A hit answers inline — a lookup is not compute. A miss (including
	// the rare eviction race) always goes through the worker pool, so
	// predictor work stays bounded no matter the HTTP concurrency.
	if v, ok := s.cache.Get(predictKey(backend, req.NF, prof, comps)); ok {
		return v.(PredictResponse), nil
	}
	return submit(ctx, s, func() (PredictResponse, error) {
		return s.predictCached(backend, req.NF, prof, comps)
	})
}

// predictUncached computes a prediction straight from the models.
func (s *Service) predictUncached(backend Backend, name string, prof traffic.Profile, specs []CompetitorSpec) (PredictResponse, error) {
	comps, agg, err := s.competitors(specs)
	if err != nil {
		return PredictResponse{}, err
	}
	resp := PredictResponse{NF: name, Backend: backend, Profile: SpecOf(prof)}
	switch backend {
	case BackendYala:
		model, err := s.reg.Yala(name)
		if err != nil {
			return PredictResponse{}, err
		}
		pred := model.Predict(prof, comps)
		resp.SoloPPS = pred.Solo
		resp.PredictedPPS = pred.Throughput
		resp.Bottleneck = pred.Bottleneck.String()
		resp.PerResourcePPS = map[string]float64{}
		for res, t := range pred.PerResource {
			resp.PerResourcePPS[res.String()] = t
		}
	case BackendSLOMO:
		model, err := s.reg.SLOMO(name)
		if err != nil {
			return PredictResponse{}, err
		}
		// SLOMO extrapolates its fixed-profile sensitivity using the NF's
		// solo throughput at the requested profile (§7.1).
		solo, err := s.soloMeasurement(name, prof)
		if err != nil {
			return PredictResponse{}, err
		}
		resp.SoloPPS = solo.Throughput
		resp.PredictedPPS = model.PredictExtrapolated(agg, solo.Throughput)
	}
	return resp, nil
}

// BatchRequest carries many prediction scenarios in one round trip —
// the amortization lever for high-throughput clients (an operator
// evaluating a whole arrival wave at once).
type BatchRequest struct {
	Requests []PredictRequest `json:"requests"`
}

// BatchResponse returns one response per request, in order. A scenario
// that fails reports its error in Errors at the same index and a zero
// response; the batch itself still succeeds.
type BatchResponse struct {
	Responses []PredictResponse `json:"responses"`
	Errors    []string          `json:"errors,omitempty"`
}

// PredictBatch serves every scenario in the batch, each through the
// cache. Elements run concurrently so a batch of misses overlaps on the
// worker pool instead of serializing; hits cost a lookup each.
func (s *Service) PredictBatch(ctx context.Context, req BatchRequest) (BatchResponse, error) {
	// A malformed element fails the whole batch up front: element-level
	// Errors are for scenarios the service could not answer, not for
	// requests the client should not have sent.
	for i, r := range req.Requests {
		if err := validateScenario(r.NF, r.Profile, r.Competitors, r.Backend); err != nil {
			s.errors.Add(1)
			return BatchResponse{}, fmt.Errorf("requests[%d]: %w", i, err)
		}
	}
	resp := BatchResponse{Responses: make([]PredictResponse, len(req.Requests))}
	errs := make([]string, len(req.Requests))
	var failed atomic.Bool
	var wg sync.WaitGroup
	for i, r := range req.Requests {
		wg.Add(1)
		go func(i int, r PredictRequest) {
			defer wg.Done()
			one, err := s.Predict(ctx, r)
			if err != nil {
				errs[i] = err.Error()
				failed.Store(true)
				return
			}
			resp.Responses[i] = one
		}(i, r)
	}
	wg.Wait()
	if failed.Load() {
		resp.Errors = errs
	}
	return resp, nil
}

// CompareRequest pits Yala against SLOMO on one scenario.
type CompareRequest struct {
	NF          string           `json:"nf"`
	Profile     ProfileSpec      `json:"profile,omitzero"`
	Competitors []CompetitorSpec `json:"competitors,omitempty"`
	// GroundTruth additionally co-runs the scenario on the simulator and
	// reports each predictor's error against the measurement.
	GroundTruth bool `json:"ground_truth,omitempty"`
}

// CompareResponse is the head-to-head result.
type CompareResponse struct {
	NF      string          `json:"nf"`
	Profile ProfileSpec     `json:"profile"`
	Yala    PredictResponse `json:"yala"`
	SLOMO   PredictResponse `json:"slomo"`

	MeasuredPPS float64 `json:"measured_pps,omitempty"`
	YalaErrPct  float64 `json:"yala_err_pct,omitempty"`
	SLOMOErrPct float64 `json:"slomo_err_pct,omitempty"`
}

// Compare runs both predictors on the same scenario. It is assembled
// entirely from predict-keyed (and measure-keyed) cache entries, so a
// Compare after a Predict of the same scenario reuses that work instead
// of recomputing it under a separate key.
func (s *Service) Compare(ctx context.Context, req CompareRequest) (CompareResponse, error) {
	s.compares.Add(1)
	if err := validateScenario(req.NF, req.Profile, req.Competitors, ""); err != nil {
		s.errors.Add(1)
		return CompareResponse{}, err
	}
	prof := req.Profile.Profile()
	comps := canonSpecs(req.Competitors)
	// Warm fast path: every piece already resident → assemble inline.
	// Any missing piece (including an eviction race) goes through the
	// worker pool; assembly itself is not compute.
	vy, okY := s.cache.Get(predictKey(BackendYala, req.NF, prof, comps))
	vs, okS := s.cache.Get(predictKey(BackendSLOMO, req.NF, prof, comps))
	truth, okM := 0.0, !req.GroundTruth
	if req.GroundTruth {
		if v, ok := s.cache.Get(measureKey(req.NF, prof, comps)); ok {
			truth, okM = v.(float64), true
		}
	}
	if okY && okS && okM {
		return assembleCompare(req.NF, prof, vy.(PredictResponse), vs.(PredictResponse), req.GroundTruth, truth), nil
	}
	return submit(ctx, s, func() (CompareResponse, error) {
		yala, err := s.predictCached(BackendYala, req.NF, prof, comps)
		if err != nil {
			return CompareResponse{}, err
		}
		sl, err := s.predictCached(BackendSLOMO, req.NF, prof, comps)
		if err != nil {
			return CompareResponse{}, err
		}
		var truth float64
		if req.GroundTruth {
			if truth, err = s.measureCached(req.NF, prof, comps); err != nil {
				return CompareResponse{}, err
			}
		}
		return assembleCompare(req.NF, prof, yala, sl, req.GroundTruth, truth), nil
	})
}

// assembleCompare builds the head-to-head response from its parts.
func assembleCompare(nf string, prof traffic.Profile, yala, sl PredictResponse, groundTruth bool, truth float64) CompareResponse {
	resp := CompareResponse{NF: nf, Profile: SpecOf(prof), Yala: yala, SLOMO: sl}
	if groundTruth {
		resp.MeasuredPPS = truth
		if truth > 0 {
			resp.YalaErrPct = 100 * math.Abs(yala.PredictedPPS-truth) / truth
			resp.SLOMOErrPct = 100 * math.Abs(sl.PredictedPPS-truth) / truth
		}
	}
	return resp
}

// measureKey caches ground-truth co-run measurements.
func measureKey(name string, prof traffic.Profile, comps []CompetitorSpec) string {
	return "measure|" + scenarioKey(name, prof, comps)
}

// measureCached memoizes measureScenario in the response cache. Quiet
// lookup: the API entry point already counted this request.
func (s *Service) measureCached(name string, prof traffic.Profile, comps []CompetitorSpec) (float64, error) {
	key := measureKey(name, prof, comps)
	if v, ok := s.cache.getQuiet(key); ok {
		return v.(float64), nil
	}
	truth, err := s.measureScenario(name, prof, comps)
	if err != nil {
		return 0, err
	}
	s.cache.Put(key, truth)
	return truth, nil
}

// measureScenario co-runs the scenario on a fresh testbed and returns the
// target's ground-truth throughput.
func (s *Service) measureScenario(name string, prof traffic.Profile, specs []CompetitorSpec) (float64, error) {
	tb := s.freshTestbed()
	ws := make([]*nicsim.Workload, 0, len(specs)+1)
	w, err := tb.Workload(name, prof)
	if err != nil {
		return 0, err
	}
	ws = append(ws, w)
	for _, spec := range specs {
		cw, err := tb.Workload(spec.Name, spec.Profile.Profile())
		if err != nil {
			return 0, err
		}
		ws = append(ws, cw)
	}
	ms, err := tb.Run(ws...)
	if err != nil {
		return 0, err
	}
	return ms[0].Throughput, nil
}

// ColoNF is one NF in an admission scenario: its traffic profile and SLA
// (maximum tolerated throughput drop relative to solo, e.g. 0.1).
type ColoNF struct {
	Name    string      `json:"name"`
	Profile ProfileSpec `json:"profile,omitzero"`
	SLA     float64     `json:"sla"`
}

// AdmitRequest asks whether placing Candidate on a NIC already hosting
// Residents keeps every SLA intact, per the chosen predictor.
type AdmitRequest struct {
	Residents []ColoNF `json:"residents"`
	Candidate ColoNF   `json:"candidate"`
	Backend   string   `json:"backend,omitempty"`
}

// AdmitResponse is the admission decision. Reason distinguishes a
// core-capacity rejection from a predicted SLA violation.
type AdmitResponse struct {
	Admit     bool    `json:"admit"`
	Backend   Backend `json:"backend"`
	Residents int     `json:"residents"`
	Reason    string  `json:"reason,omitempty"`
}

// Admit answers an online admission-control query by reusing the
// placement package's feasibility check (§7.5.1) with registry models.
func (s *Service) Admit(ctx context.Context, req AdmitRequest) (AdmitResponse, error) {
	s.admits.Add(1)
	if err := req.validate(); err != nil {
		s.errors.Add(1)
		return AdmitResponse{}, err
	}
	backend, _ := ParseBackend(req.Backend)
	// Canonical resident order makes the cache key (and the fresh
	// testbed's measurement order) independent of caller ordering.
	residents := append([]ColoNF(nil), req.Residents...)
	sort.Slice(residents, func(i, j int) bool {
		return coloKey(residents[i]) < coloKey(residents[j])
	})
	parts := make([]string, len(residents))
	for i, r := range residents {
		parts[i] = coloKey(r)
	}
	key := fmt.Sprintf("admit|%s|%s|cand=%s", backend, strings.Join(parts, ","), coloKey(req.Candidate))
	if v, ok := s.cache.Get(key); ok {
		return v.(AdmitResponse), nil
	}
	return submit(ctx, s, func() (AdmitResponse, error) {
		return s.admit(backend, key, residents, req.Candidate)
	})
}

func (s *Service) admit(backend Backend, key string, residents []ColoNF, candidate ColoNF) (AdmitResponse, error) {
	// Load every model involved before building the simulator, so the
	// feasibility pass never trains under its own latency budget. A fresh
	// simulator per request keeps the answer a pure function of the
	// request (the simulator's measurement caches are order-dependent).
	strat := placement.YalaAware
	sim := placement.NewSimulator(s.freshTestbed(), map[string]*core.Model{}, map[string]*slomo.Model{})

	// Core capacity first — placement always pairs the SLA check with the
	// Fits check, and an infeasible core budget needs no predictions.
	if !sim.Fits(len(residents)) {
		resp := AdmitResponse{Admit: false, Backend: backend, Residents: len(residents), Reason: "cores"}
		s.cache.Put(key, resp)
		return resp, nil
	}

	names := map[string]bool{candidate.Name: true}
	for _, r := range residents {
		names[r.Name] = true
	}
	for name := range names {
		switch backend {
		case BackendYala:
			m, err := s.reg.Yala(name)
			if err != nil {
				return AdmitResponse{}, err
			}
			sim.Yala[name] = m
		case BackendSLOMO:
			strat = placement.SLOMOAware
			m, err := s.reg.SLOMO(name)
			if err != nil {
				return AdmitResponse{}, err
			}
			sim.SLOMO[name] = m
		}
	}

	arr := make([]placement.Arrival, len(residents))
	for i, r := range residents {
		arr[i] = placement.Arrival{Name: r.Name, Profile: r.Profile.Profile(), SLA: r.SLA}
	}
	cand := placement.Arrival{
		Name:    candidate.Name,
		Profile: candidate.Profile.Profile(),
		SLA:     candidate.SLA,
	}
	// Seed the simulator with the service's memoized solo measurements:
	// the feasibility pass then runs no simulations of its own, and
	// repeated admits over the same NFs reuse the same measurements.
	for _, a := range append(append([]placement.Arrival(nil), arr...), cand) {
		m, err := s.soloMeasurement(a.Name, a.Profile)
		if err != nil {
			return AdmitResponse{}, err
		}
		sim.SeedSolo(a, m)
	}
	ok, err := sim.Feasible(arr, cand, strat)
	if err != nil {
		return AdmitResponse{}, err
	}
	resp := AdmitResponse{Admit: ok, Backend: backend, Residents: len(residents)}
	if !ok {
		resp.Reason = "sla"
	}
	s.cache.Put(key, resp)
	return resp, nil
}

// validate rejects malformed admission requests: every participant must
// be a catalog NF with a well-formed profile and an SLA in [0, 1].
func (r AdmitRequest) validate() error {
	if _, err := ParseBackend(r.Backend); err != nil {
		return badRequestf("%v", err)
	}
	if err := r.Candidate.validate(); err != nil {
		return fmt.Errorf("candidate: %w", err)
	}
	for i, res := range r.Residents {
		if err := res.validate(); err != nil {
			return fmt.Errorf("residents[%d]: %w", i, err)
		}
	}
	return nil
}

// validate checks one admission participant.
func (c ColoNF) validate() error {
	if err := validNF(c.Name); err != nil {
		return err
	}
	if err := c.Profile.validate(); err != nil {
		return err
	}
	if c.SLA < 0 || c.SLA > 1 {
		return badRequestf("SLA %g out of range [0, 1]", c.SLA)
	}
	return nil
}

// coloKey renders one admission participant canonically. The SLA prints
// at full precision — a truncated rendering would alias near-equal SLAs
// onto one cache key and serve the wrong admission decision.
func coloKey(c ColoNF) string {
	return fmt.Sprintf("%s@%s~%s", c.Name, c.Profile.Profile(),
		strconv.FormatFloat(c.SLA, 'g', -1, 64))
}

// DiagnoseRequest asks which resource bottlenecks the NF in a scenario.
type DiagnoseRequest struct {
	NF          string           `json:"nf"`
	Profile     ProfileSpec      `json:"profile,omitzero"`
	Competitors []CompetitorSpec `json:"competitors,omitempty"`
}

// DiagnoseResponse is Yala's bottleneck attribution (§7.5.2).
type DiagnoseResponse struct {
	NF             string             `json:"nf"`
	Profile        ProfileSpec        `json:"profile"`
	Bottleneck     string             `json:"bottleneck"`
	SoloPPS        float64            `json:"solo_pps"`
	PredictedPPS   float64            `json:"predicted_pps"`
	DropPct        float64            `json:"drop_pct"`
	PerResourcePPS map[string]float64 `json:"per_resource_pps"`
}

// Diagnose attributes the scenario's predicted slowdown to a resource.
// The response is pure derivation from the Yala prediction, so it shares
// the predict-keyed cache entry instead of storing its own.
func (s *Service) Diagnose(ctx context.Context, req DiagnoseRequest) (DiagnoseResponse, error) {
	s.diagnoses.Add(1)
	if err := validateScenario(req.NF, req.Profile, req.Competitors, ""); err != nil {
		s.errors.Add(1)
		return DiagnoseResponse{}, err
	}
	prof := req.Profile.Profile()
	comps := canonSpecs(req.Competitors)
	if v, ok := s.cache.Get(predictKey(BackendYala, req.NF, prof, comps)); ok {
		return diagnoseFrom(v.(PredictResponse)), nil
	}
	return submit(ctx, s, func() (DiagnoseResponse, error) {
		pred, err := s.predictCached(BackendYala, req.NF, prof, comps)
		if err != nil {
			return DiagnoseResponse{}, err
		}
		return diagnoseFrom(pred), nil
	})
}

// diagnoseFrom derives the diagnosis view of a Yala prediction.
func diagnoseFrom(pred PredictResponse) DiagnoseResponse {
	resp := DiagnoseResponse{
		NF:             pred.NF,
		Profile:        pred.Profile,
		Bottleneck:     pred.Bottleneck,
		SoloPPS:        pred.SoloPPS,
		PredictedPPS:   pred.PredictedPPS,
		PerResourcePPS: pred.PerResourcePPS,
	}
	if pred.SoloPPS > 0 {
		resp.DropPct = 100 * (pred.SoloPPS - pred.PredictedPPS) / pred.SoloPPS
	}
	return resp
}

// ServiceStats is the operator-facing counter snapshot.
type ServiceStats struct {
	UptimeSec       float64           `json:"uptime_sec"`
	Workers         int               `json:"workers"`
	Requests        map[string]uint64 `json:"requests"`
	Errors          uint64            `json:"errors"`
	Cache           CacheStats        `json:"cache"`
	Models          []ModelInfo       `json:"models"`
	PersistFailures uint64            `json:"persist_failures,omitempty"`
	LastPersistErr  string            `json:"last_persist_error,omitempty"`
}

// Stats snapshots the service counters.
func (s *Service) Stats() ServiceStats {
	fails, lastErr := s.reg.PersistFailures()
	return ServiceStats{
		UptimeSec: time.Since(s.started).Seconds(),
		Workers:   s.cfg.Workers,
		Requests: map[string]uint64{
			"predict":     s.predicts.Load(),
			"compare":     s.compares.Load(),
			"admit":       s.admits.Load(),
			"diagnose":    s.diagnoses.Load(),
			"cluster_run": s.clusterRuns.Load(),
		},
		Errors:          s.errors.Load(),
		Cache:           s.cache.Stats(),
		Models:          s.reg.Models(),
		PersistFailures: fails,
		LastPersistErr:  lastErr,
	}
}
