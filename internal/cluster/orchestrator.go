package cluster

import (
	"context"
	"sort"
	"time"

	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// PolicyResult summarizes one policy's run over a scenario.
type PolicyResult struct {
	Policy   string `json:"policy"`
	Arrivals int    `json:"arrivals"`
	// Admitted counts placements that stuck: chosen by the policy and
	// clean under ground-truth SLA enforcement at placement time.
	Admitted int `json:"admitted"`
	// Rejected counts arrivals the policy declined (no capacity, or no
	// predicted-feasible NIC for prediction-guided policies).
	Rejected int `json:"rejected"`
	// Rollbacks counts placements undone by enforcement: the policy
	// placed, ground truth immediately breached an SLA, the newcomer was
	// evicted.
	Rollbacks int `json:"rollbacks"`
	// Migrations counts tenants moved to another NIC after drift pushed
	// their NIC out of feasibility; Evictions counts drifted tenants no
	// NIC could host within SLA.
	Migrations int `json:"migrations"`
	Evictions  int `json:"evictions"`
	Departures int `json:"departures"`
	// Violations is the total count of NF-SLA breaches observed by
	// ground-truth checks (at placements, drifts and migrations).
	Violations int `json:"violations"`
	// PeakTenants is the high-water fleet occupancy; AvgUtilization the
	// time-weighted fraction of fleet cores allocated.
	PeakTenants    int     `json:"peak_tenants"`
	AvgUtilization float64 `json:"avg_utilization"`
	// DecisionP50/P99 are wall-clock scheduling-decision latencies.
	DecisionP50 time.Duration `json:"decision_p50_ns"`
	DecisionP99 time.Duration `json:"decision_p99_ns"`
}

// orchestrator replays one scenario against one policy on a discrete
// event loop.
type orchestrator struct {
	ctx    context.Context
	env    *Env
	sc     Scenario
	policy Scheduler
	fleet  *Fleet
	engine *sim.Engine
	pool   []traffic.Profile

	res       PolicyResult
	decisions []time.Duration

	// Utilization integral: allocated core-seconds accumulated at every
	// state transition.
	lastT       float64
	coreSeconds float64

	err error
}

// newOrchestrator wires a run; Run drives it.
func newOrchestrator(ctx context.Context, env *Env, sc Scenario, policy Scheduler) *orchestrator {
	return &orchestrator{
		ctx:    ctx,
		env:    env,
		sc:     sc,
		policy: policy,
		fleet:  env.NewFleet(sc.NICs),
		engine: sim.NewEngine(),
		pool:   sc.ProfilePool(),
		res:    PolicyResult{Policy: policy.Name()},
	}
}

// halted reports whether the run should stop: a prior error, or the
// caller's context expired (an abandoned HTTP request must not keep a
// fleet simulation running to completion). Event handlers call it first.
func (o *orchestrator) halted() bool {
	if o.err != nil {
		return true
	}
	if err := o.ctx.Err(); err != nil {
		o.err = err
		return true
	}
	return false
}

// RunPolicy replays the scenario against one scheduling policy: arrivals
// are placed (or rejected), placements are enforced against simulator
// ground truth, admitted tenants live out exponential lifetimes, and
// drift triggers migration or eviction. Deterministic given (env state,
// scenario, policy) — only the reported decision latencies vary run to
// run. The context cancels the run between events.
func (e *Env) RunPolicy(ctx context.Context, sc Scenario, policy Scheduler) (PolicyResult, error) {
	sc = sc.WithDefaults()
	if err := sc.Validate(); err != nil {
		return PolicyResult{}, err
	}
	o := newOrchestrator(ctx, e, sc, policy)
	for _, ev := range sc.ArrivalStream() {
		ev := ev
		o.engine.At(ev.Time, func() { o.arrive(ev.Tenant) })
	}
	o.engine.Run()
	if o.err != nil {
		return PolicyResult{}, o.err
	}
	o.tick()
	if total := float64(o.fleet.NICCores*len(o.fleet.NICs)) * o.engine.Now(); total > 0 {
		o.res.AvgUtilization = o.coreSeconds / total
	}
	o.res.DecisionP50 = latencyPercentile(o.decisions, 0.50)
	o.res.DecisionP99 = latencyPercentile(o.decisions, 0.99)
	return o.res, nil
}

// tick folds the interval since the last state change into the
// core-seconds integral.
func (o *orchestrator) tick() {
	now := o.engine.Now()
	o.coreSeconds += float64(o.fleet.UsedCores()) * (now - o.lastT)
	o.lastT = now
}

// decide times one scheduling decision — the latency the comparison
// reports.
func (o *orchestrator) decide(a placement.Arrival) (int, error) {
	t0 := time.Now()
	idx, err := o.policy.Choose(o.fleet, a)
	o.decisions = append(o.decisions, time.Since(t0))
	return idx, err
}

// enforce ground-truth-checks NIC i, counting breaches. The placement
// simulator caches co-runs by resident multiset, so repeated checks of
// an unchanged NIC are lookups.
func (o *orchestrator) enforce(i int) (int, error) {
	breaches, err := o.env.Sim.Violations(o.fleet.NICs[i].arrivals())
	if err != nil {
		return 0, err
	}
	o.res.Violations += breaches
	return breaches, nil
}

// arrive handles one arrival event: decide, place, enforce, and — if the
// placement sticks — schedule the tenant's departure and optional drift.
func (o *orchestrator) arrive(t Tenant) {
	if o.halted() {
		return
	}
	o.res.Arrivals++
	o.tick()
	idx, err := o.decide(t.Arrival)
	if err != nil {
		o.err = err
		return
	}
	if idx < 0 {
		o.res.Rejected++
		return
	}
	o.fleet.place(idx, t)
	breaches, err := o.enforce(idx)
	if err != nil {
		o.err = err
		return
	}
	if breaches > 0 {
		// SLA enforcement: a placement that breaches ground truth is
		// rolled back — the blind policies pay here, the guided ones
		// only on prediction error.
		o.fleet.remove(idx, t.ID)
		o.res.Rollbacks++
		return
	}
	o.res.Admitted++
	if n := o.fleet.Tenants(); n > o.res.PeakTenants {
		o.res.PeakTenants = n
	}
	trng := o.sc.tenantRNG(t.ID)
	life := trng.Exp(o.sc.MeanLifetime)
	o.engine.After(life, func() { o.depart(t.ID) })
	if trng.Float64() < o.sc.DriftProb {
		at := trng.Range(0.1, 0.9) * life
		prof := o.pool[trng.Intn(len(o.pool))]
		o.engine.After(at, func() { o.drift(t.ID, prof) })
	}
}

// depart removes a tenant at end of life, if enforcement has not already
// evicted it.
func (o *orchestrator) depart(id int) {
	if o.halted() {
		return
	}
	idx := o.fleet.locate(id)
	if idx < 0 {
		return
	}
	o.tick()
	o.fleet.remove(idx, id)
	o.res.Departures++
}

// drift mutates a tenant's traffic profile in place and re-enforces its
// NIC. A breach triggers the rebalance path: ask the policy for a new
// home; a move that holds is a migration, anything else evicts the
// drifted tenant.
func (o *orchestrator) drift(id int, prof traffic.Profile) {
	if o.halted() {
		return
	}
	idx := o.fleet.locate(id)
	if idx < 0 {
		return
	}
	o.tick()
	t, _ := o.fleet.remove(idx, id)
	t.Profile = prof
	o.fleet.place(idx, t)
	breaches, err := o.enforce(idx)
	if err != nil {
		o.err = err
		return
	}
	if breaches == 0 {
		return
	}
	// Drift pushed the NIC out of feasibility; try to rehome the
	// drifted tenant.
	o.fleet.remove(idx, id)
	target, err := o.decide(t.Arrival)
	if err != nil {
		o.err = err
		return
	}
	if target < 0 || target == idx {
		o.res.Evictions++
		return
	}
	o.fleet.place(target, t)
	breaches, err = o.enforce(target)
	if err != nil {
		o.err = err
		return
	}
	if breaches > 0 {
		o.fleet.remove(target, id)
		o.res.Evictions++
		return
	}
	o.res.Migrations++
}

// latencyPercentile reads the p-quantile of the (unsorted) samples.
func latencyPercentile(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[int(p*float64(len(sorted)-1))]
}
