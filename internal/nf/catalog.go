package nf

import (
	"fmt"
	"sort"

	"repro/internal/nicsim"
)

// constructors maps catalog names to NF factories, covering the paper's
// Table 1 plus the Pensando Firewall (Table 9).
var constructors = map[string]func() NF{
	"FlowStats":      func() NF { return NewFlowStats() },
	"IPRouter":       func() NF { return NewIPRouter() },
	"IPTunnel":       func() NF { return NewIPTunnel() },
	"NAT":            func() NF { return NewNAT() },
	"FlowMonitor":    func() NF { return NewFlowMonitor() },
	"NIDS":           func() NF { return NewNIDS() },
	"IPCompGateway":  func() NF { return NewIPCompGateway() },
	"ACL":            func() NF { return NewACL() },
	"FlowClassifier": func() NF { return NewFlowClassifier() },
	"FlowTracker":    func() NF { return NewFlowTracker() },
	"PacketFilter":   func() NF { return NewPacketFilter() },
	"Firewall":       func() NF { return NewFirewall() },
}

// New constructs a fresh NF by catalog name.
func New(name string) (NF, error) {
	c, ok := constructors[name]
	if !ok {
		return nil, fmt.Errorf("nf: unknown NF %q (have %v)", name, Names())
	}
	return c(), nil
}

// Known reports whether name is in the catalog, without constructing
// the NF — request validation uses it on serving hot paths.
func Known(name string) bool {
	_, ok := constructors[name]
	return ok
}

// MustNew is New for static names; it panics on unknown names.
func MustNew(name string) NF {
	n, err := New(name)
	if err != nil {
		panic(err)
	}
	return n
}

// Names lists the catalog in sorted order.
func Names() []string {
	names := make([]string, 0, len(constructors))
	for n := range constructors {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Table1Names lists the nine NFs the paper's Figure 1 and Table 2
// evaluate (the BlueField-2 set minus the two DOCA/regex special cases
// it plots separately), in the paper's order.
func Table1Names() []string {
	return []string{
		"FlowStats", "NAT", "IPTunnel", "IPRouter", "FlowMonitor",
		"NIDS", "FlowTracker", "ACL", "FlowClassifier",
	}
}

// UsesAccelerator reports which accelerators the named NF exercises,
// per the paper's Table 1.
func UsesAccelerator(name string) []nicsim.AccelKind {
	switch name {
	case "FlowMonitor", "NIDS", "PacketFilter":
		return []nicsim.AccelKind{nicsim.AccelRegex}
	case "IPCompGateway":
		return []nicsim.AccelKind{nicsim.AccelRegex, nicsim.AccelCompress}
	}
	return nil
}
