// Package core implements Yala, the paper's contribution: a multi-
// resource contention- and traffic-aware performance prediction framework
// for on-NIC network functions.
//
// Yala is built from three pieces (§3):
//
//   - per-resource contention models: a white-box round-robin queueing
//     model for hardware accelerators (accelmodel.go) and a black-box
//     gradient-boosting model for the memory subsystem (memmodel.go),
//     both traffic-aware (§4.1, §5.1);
//   - execution-pattern-based composition that turns per-resource
//     throughput drops into an end-to-end prediction (compose.go, §4.2);
//   - an offline Trainer that profiles an NF against synthetic
//     contention generators and fits the models (trainer.go), and an
//     online Predictor used for placement and diagnosis (predictor.go).
package core

import (
	"fmt"

	"repro/internal/nicsim"
)

// Composition identifies a strategy for combining per-resource throughput
// drops into an end-to-end prediction.
type Composition int

// Composition strategies. Yala uses the execution-pattern-based pair
// (ComposePipeline / ComposeRTC); Sum and Min are the strawman baselines
// of §2.2.1.
const (
	ComposePipeline Composition = iota
	ComposeRTC
	ComposeSum
	ComposeMin
)

// String names the composition.
func (c Composition) String() string {
	switch c {
	case ComposePipeline:
		return "pipeline"
	case ComposeRTC:
		return "run-to-completion"
	case ComposeSum:
		return "sum"
	case ComposeMin:
		return "min"
	}
	return fmt.Sprintf("composition(%d)", int(c))
}

// ForPattern maps an execution pattern to Yala's composition for it.
func ForPattern(p nicsim.ExecPattern) Composition {
	if p == nicsim.Pipeline {
		return ComposePipeline
	}
	return ComposeRTC
}

// Compose combines per-resource throughput drops into an end-to-end
// throughput. soloT is the NF's solo throughput; drops[k] is the
// throughput loss attributable to contention on resource k alone
// (non-negative, ≤ soloT).
//
// Pipeline (Eq. 2): the slowest stage bounds the pipeline, so only the
// largest per-resource drop matters:
//
//	T = T_solo − max_k ΔT_k
//
// Run-to-completion (Eq. 3): each stage's inflated sojourn time adds to
// the per-packet service time:
//
//	T = 1 / ( Σ_k 1/(T_solo − ΔT_k) − (r−1)/T_solo )
//
// Sum subtracts every drop; Min takes the best per-resource throughput
// (equivalently the max drop — the paper's "min composition" names the
// resulting throughput, which coincides with pipeline composition).
func Compose(c Composition, soloT float64, drops []float64) float64 {
	if soloT <= 0 {
		return 0
	}
	// Clamp into a stack buffer when the drop set is small (always, for
	// the per-resource models) — Compose sits on the placement hot path,
	// where a per-call allocation is measurable.
	var buf [8]float64
	clamped := buf[:0]
	if len(drops) > len(buf) {
		clamped = make([]float64, 0, len(drops))
	}
	clamped = clamped[:len(drops)]
	for i, d := range drops {
		switch {
		case d < 0:
			clamped[i] = 0
		case d >= soloT:
			clamped[i] = soloT * (1 - 1e-6) // keep per-resource rate positive
		default:
			clamped[i] = d
		}
	}
	switch c {
	case ComposePipeline, ComposeMin:
		maxDrop := 0.0
		for _, d := range clamped {
			if d > maxDrop {
				maxDrop = d
			}
		}
		return soloT - maxDrop
	case ComposeSum:
		total := 0.0
		for _, d := range clamped {
			total += d
		}
		if total >= soloT {
			return 0
		}
		return soloT - total
	case ComposeRTC:
		if len(clamped) == 0 {
			return soloT
		}
		sum := 0.0
		for _, d := range clamped {
			sum += 1 / (soloT - d)
		}
		sum -= float64(len(clamped)-1) / soloT
		if sum <= 0 {
			return soloT
		}
		return 1 / sum
	}
	return soloT
}

// DetectPattern picks the execution pattern whose composition best
// explains observed throughputs. Each observation pairs the per-resource
// drops with the measured end-to-end throughput at one contention level
// (§4.2's testing procedure: co-run with benchmark NFs and see whether
// Eq. 2 or Eq. 3 fits better).
type PatternObservation struct {
	SoloT    float64
	Drops    []float64
	Measured float64
}

// DetectPattern returns the pattern with the lower total absolute
// prediction error over the observations.
func DetectPattern(obs []PatternObservation) nicsim.ExecPattern {
	var errPipe, errRTC float64
	for _, o := range obs {
		p := Compose(ComposePipeline, o.SoloT, o.Drops)
		r := Compose(ComposeRTC, o.SoloT, o.Drops)
		errPipe += abs(p - o.Measured)
		errRTC += abs(r - o.Measured)
	}
	if errPipe <= errRTC {
		return nicsim.Pipeline
	}
	return nicsim.RunToCompletion
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
