package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/nicsim"
	"repro/internal/placement"
	"repro/internal/slomo"
	"repro/internal/testbed"
	"repro/internal/traffic"
	"repro/pkg/yalaclient"
)

func testService(t *testing.T) *Service {
	t.Helper()
	s := NewService(ServiceConfig{
		Registry: testRegistryConfig(t),
		Workers:  4,
	})
	t.Cleanup(s.Close)
	return s
}

// TestPredictCacheMatchesDirectPredictor is the cache-correctness
// contract: a cached response must be identical — byte-for-byte once
// marshaled — to both the first (uncached) response and to the output of
// the underlying core predictor invoked directly on the same persisted
// model and the same deterministic measurements.
func TestPredictCacheMatchesDirectPredictor(t *testing.T) {
	s := testService(t)
	req := PredictRequest{
		NF:      "FlowStats",
		Profile: ProfileSpec{Flows: 32000, PktSize: 512, MTBR: F64(600)},
		Competitors: []CompetitorSpec{
			{Name: "ACL"},
			{Name: "NAT", Profile: ProfileSpec{Flows: 8000}},
		},
	}
	first, err := s.Predict(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.cache.Stats(); st.Hits != 0 {
		t.Fatalf("first request should miss, stats %+v", st)
	}
	second, err := s.Predict(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.cache.Stats(); st.Hits != 1 {
		t.Fatalf("second request should hit, stats %+v", st)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cached response differs:\nfirst  %+v\nsecond %+v", first, second)
	}
	b1, _ := json.Marshal(first)
	b2, _ := json.Marshal(second)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("cached response not byte-identical:\n%s\n%s", b1, b2)
	}

	// Direct path: load the persisted model the service trained, rebuild
	// the competitors from the same deterministic fresh-testbed solo
	// measurements, and predict.
	cfg := s.cfg.Registry.withDefaults()
	model, err := core.LoadModelFile(filepath.Join(cfg.Dir, "FlowStats.yala.json"))
	if err != nil {
		t.Fatal(err)
	}
	var comps []core.Competitor
	for _, spec := range req.Competitors {
		m, err := testbed.New(nicsim.BlueField2(), cfg.Seed).SoloNF(spec.Name, spec.Profile.Profile())
		if err != nil {
			t.Fatal(err)
		}
		comps = append(comps, core.CompetitorFromMeasurement(m))
	}
	direct := model.Predict(req.Profile.Profile(), comps)
	if second.PredictedPPS != direct.Throughput || second.SoloPPS != direct.Solo {
		t.Fatalf("cached response diverges from direct predictor: served (%.6f, %.6f), direct (%.6f, %.6f)",
			second.PredictedPPS, second.SoloPPS, direct.Throughput, direct.Solo)
	}
	if second.Bottleneck != direct.Bottleneck.String() {
		t.Fatalf("bottleneck %q, direct %q", second.Bottleneck, direct.Bottleneck)
	}
	for res, want := range direct.PerResource {
		if got := second.PerResourcePPS[res.String()]; got != want {
			t.Fatalf("per-resource %v: served %.6f, direct %.6f", res, got, want)
		}
	}
}

// TestSLOMOBackendMatchesDirectPredictor does the same for the baseline.
func TestSLOMOBackendMatchesDirectPredictor(t *testing.T) {
	s := testService(t)
	req := PredictRequest{
		NF:          "ACL",
		Profile:     ProfileSpec{Flows: 64000},
		Competitors: []CompetitorSpec{{Name: "FlowStats"}},
		Backend:     "slomo",
	}
	got, err := s.Predict(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := s.Predict(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cached) {
		t.Fatalf("cached slomo response differs: %+v vs %+v", got, cached)
	}

	cfg := s.cfg.Registry.withDefaults()
	model, err := slomo.LoadModelFile(filepath.Join(cfg.Dir, "ACL.slomo.json"))
	if err != nil {
		t.Fatal(err)
	}
	var agg nicsim.Counters
	for _, spec := range req.Competitors {
		m, err := testbed.New(nicsim.BlueField2(), cfg.Seed).SoloNF(spec.Name, spec.Profile.Profile())
		if err != nil {
			t.Fatal(err)
		}
		agg.Add(m.Counters)
	}
	solo, err := testbed.New(nicsim.BlueField2(), cfg.Seed).SoloNF(req.NF, req.Profile.Profile())
	if err != nil {
		t.Fatal(err)
	}
	direct := model.PredictExtrapolated(agg, solo.Throughput)
	if got.PredictedPPS != direct {
		t.Fatalf("served %.6f, direct slomo %.6f", got.PredictedPPS, direct)
	}
}

// TestCompare checks both predictors answer the same scenario and ground
// truth is attached on request.
func TestCompare(t *testing.T) {
	s := testService(t)
	resp, err := s.Compare(context.Background(), CompareRequest{
		NF:          "FlowStats",
		Competitors: []CompetitorSpec{{Name: "ACL"}},
		GroundTruth: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Yala.PredictedPPS <= 0 || resp.SLOMO.PredictedPPS <= 0 {
		t.Fatalf("non-positive predictions: %+v", resp)
	}
	if resp.MeasuredPPS <= 0 {
		t.Fatalf("ground truth missing: %+v", resp)
	}
	if resp.Yala.Backend != BackendYala || resp.SLOMO.Backend != BackendSLOMO {
		t.Fatalf("backend labels wrong: %+v", resp)
	}
}

// TestAdmitMatchesPlacementFeasibility checks Admit agrees with the
// placement package invoked directly with the same models and testbed
// seed, and that the trivial SLA cases come out right.
func TestAdmitMatchesPlacementFeasibility(t *testing.T) {
	s := testService(t)
	residents := []ColoNF{{Name: "ACL", SLA: 0.15}}
	candidate := ColoNF{Name: "FlowStats", SLA: 0.15}
	resp, err := s.Admit(context.Background(), AdmitRequest{Residents: residents, Candidate: candidate})
	if err != nil {
		t.Fatal(err)
	}

	cfg := s.cfg.Registry.withDefaults()
	sim := placement.NewSimulator(testbed.New(nicsim.BlueField2(), cfg.Seed))
	for _, name := range []string{"ACL", "FlowStats"} {
		m, err := s.Registry().Model("yala", name)
		if err != nil {
			t.Fatal(err)
		}
		sim.SetModel("yala", name, m)
	}
	// Seed solos exactly as the service does (fresh testbed per
	// measurement) so the decisions must match, not merely tend to.
	for _, name := range []string{"ACL", "FlowStats"} {
		m, err := testbed.New(nicsim.BlueField2(), cfg.Seed).SoloNF(name, traffic.Default)
		if err != nil {
			t.Fatal(err)
		}
		sim.SeedSolo(placement.Arrival{Name: name, Profile: traffic.Default}, m)
	}
	want, err := sim.Feasible(
		[]placement.Arrival{{Name: "ACL", Profile: traffic.Default, SLA: 0.15}},
		placement.Arrival{Name: "FlowStats", Profile: traffic.Default, SLA: 0.15},
		placement.YalaAware,
	)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Admit != want {
		t.Fatalf("Admit = %v, placement.Feasible = %v", resp.Admit, want)
	}

	// An empty NIC and a 100%-drop SLA always admits.
	free, err := s.Admit(context.Background(), AdmitRequest{Candidate: ColoNF{Name: "ACL", SLA: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !free.Admit {
		t.Fatal("empty NIC with SLA=1 must admit")
	}

	// Core capacity rejects before any SLA prediction: BlueField-2 has 8
	// cores at 2 per NF, so a 4-resident NIC cannot take a fifth even
	// with maximally loose SLAs.
	var full []ColoNF
	for i := 0; i < 4; i++ {
		full = append(full, ColoNF{Name: "ACL", SLA: 1})
	}
	over, err := s.Admit(context.Background(), AdmitRequest{Residents: full, Candidate: ColoNF{Name: "ACL", SLA: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if over.Admit || over.Reason != "cores" {
		t.Fatalf("over-capacity NIC admitted: %+v", over)
	}
}

// TestHTTPRoundTrip runs the full stack: HTTP server, the public SDK
// against /v2, and a small load-generation run that must complete
// without errors.
func TestHTTPRoundTrip(t *testing.T) {
	s := testService(t)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	client := yalaclient.New(srv.URL)
	ctx := context.Background()

	direct, err := s.Predict(ctx, PredictRequest{NF: "ACL", Competitors: []CompetitorSpec{{Name: "FlowStats"}}})
	if err != nil {
		t.Fatal(err)
	}
	viaHTTP, err := client.Predict(ctx, yalaclient.ModelID{NF: "ACL"}, "",
		yalaclient.PredictParams{Competitors: []yalaclient.Competitor{{Name: "FlowStats"}}})
	if err != nil {
		t.Fatal(err)
	}
	// The SDK's wire types mirror the service's exactly, so the
	// marshaled forms must be byte-identical.
	directJSON, _ := json.Marshal(direct)
	viaJSON, _ := json.Marshal(viaHTTP)
	if !bytes.Equal(directJSON, viaJSON) {
		t.Fatalf("HTTP response differs from direct call:\n%s\n%s", directJSON, viaJSON)
	}

	if _, err := client.Diagnose(ctx, yalaclient.ModelID{NF: "FlowStats"},
		yalaclient.PredictParams{Competitors: []yalaclient.Competitor{{Name: "ACL"}}}); err != nil {
		t.Fatal(err)
	}

	// Unknown NFs surface as a structured client error, not a hang or a
	// 500-shaped mystery.
	_, err = client.Predict(ctx, yalaclient.ModelID{NF: "NoSuchNF"}, "", yalaclient.PredictParams{})
	var apiErr *yalaclient.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 400 || apiErr.Code != "invalid_argument" {
		t.Fatalf("unknown NF error = %v, want invalid_argument APIError", err)
	}

	rep, err := Loadgen(LoadgenConfig{
		URL:          srv.URL,
		Workers:      4,
		Requests:     200,
		Seed:         7,
		NFs:          []string{"FlowStats", "ACL"},
		Profiles:     2,
		DiagnoseFrac: 0.1,
		AdmitFrac:    0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("loadgen saw %d errors", rep.Errors)
	}
	if rep.Requests != 200 {
		t.Fatalf("loadgen issued %d requests, want 200", rep.Requests)
	}
	// The /metrics scrapes around the run attribute server-side time to
	// pipeline stages; a run this size must have recorded decode and
	// cache spans (every request decodes and consults the cache).
	stages := map[string]StageStat{}
	for _, st := range rep.Stages {
		stages[st.Stage] = st
	}
	for _, want := range []string{"decode", "cache"} {
		if stages[want].Count == 0 {
			t.Fatalf("stage breakdown missing %q spans: %+v", want, rep.Stages)
		}
	}

	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cache.Hits == 0 {
		t.Fatalf("expected warm-cache hits after loadgen, stats %+v", stats.Cache)
	}
	if stats.Requests["predict"] == 0 {
		t.Fatalf("stats did not count predicts: %+v", stats.Requests)
	}
}

// TestPredictBatch checks batch elements match single-request answers
// and that a malformed element fails the whole batch as a bad request
// (the HTTP layer turns that into a 400) naming the offending index.
func TestPredictBatch(t *testing.T) {
	s := testService(t)
	good := PredictRequest{NF: "ACL", Competitors: []CompetitorSpec{{Name: "FlowStats"}}}
	single, err := s.Predict(context.Background(), good)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := s.PredictBatch(context.Background(), BatchRequest{Requests: []PredictRequest{
		good,
		good,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batch.Responses[0], single) || !reflect.DeepEqual(batch.Responses[1], single) {
		t.Fatalf("batch elements differ from single response: %+v", batch.Responses)
	}
	if len(batch.Errors) != 0 {
		t.Fatalf("good batch reported errors: %+v", batch.Errors)
	}
	_, err = s.PredictBatch(context.Background(), BatchRequest{Requests: []PredictRequest{
		good,
		{NF: "NoSuchNF"},
	}})
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("batch with unknown NF returned %v, want ErrBadRequest", err)
	}
	if err == nil || !strings.Contains(err.Error(), "requests[1]") {
		t.Fatalf("batch error %v does not name the offending element", err)
	}
}

// TestReloadTargetedEviction is the over-eviction regression test:
// Service.Reload must drop every memoized response computed with the
// reloaded (backend, NF) model — otherwise scenarios answered before
// the reload would keep serving the old model's predictions — while
// every unrelated entry keeps serving warm. A single-model push used to
// Flush the whole cache, cold-starting every other (backend, NF, hw)
// key on the server.
func TestReloadTargetedEviction(t *testing.T) {
	s := testService(t)
	ctx := context.Background()

	// Warm one entry per kind: predictions for ACL under both backends
	// and for FlowStats under yala, a ground-truth measurement for ACL,
	// and admissions naming ACL (as resident) and not naming it.
	if _, err := s.Predict(ctx, PredictRequest{NF: "ACL"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Predict(ctx, PredictRequest{NF: "ACL", Backend: "slomo"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Predict(ctx, PredictRequest{NF: "FlowStats", Competitors: []CompetitorSpec{{Name: "ACL"}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Compare(ctx, CompareRequest{NF: "ACL", GroundTruth: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Admit(ctx, AdmitRequest{
		Residents: []ColoNF{{Name: "ACL", SLA: 0.5}},
		Candidate: ColoNF{Name: "FlowStats", SLA: 0.5},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Admit(ctx, AdmitRequest{Candidate: ColoNF{Name: "FlowStats", SLA: 0.5}}); err != nil {
		t.Fatal(err)
	}

	prof := ProfileSpec{}.Profile()
	has := func(key string) bool {
		_, ok := s.cache.getQuiet(key)
		return ok
	}
	aclYala := predictKey(BackendYala, "", "ACL", prof, nil)
	aclSLOMO := predictKey(BackendSLOMO, "", "ACL", prof, nil)
	fsYala := predictKey(BackendYala, "", "FlowStats", prof, []CompetitorSpec{{Name: "ACL"}})
	aclMeasure := measureKey("", "ACL", prof, nil)
	for _, key := range []string{aclYala, aclSLOMO, fsYala, aclMeasure} {
		if !has(key) {
			t.Fatalf("expected %q cached before reload", key)
		}
	}
	admitEntries := func() int {
		n := 0
		for i := range s.cache.shards {
			sh := &s.cache.shards[i]
			sh.mu.Lock()
			for key := range sh.items {
				if strings.HasPrefix(key, "admit|") {
					n++
				}
			}
			sh.mu.Unlock()
		}
		return n
	}
	if n := admitEntries(); n != 2 {
		t.Fatalf("expected 2 admit entries before reload, have %d", n)
	}

	before := s.cache.Len()
	s.Reload(BackendYala, "ACL")

	// Evicted: the yala ACL prediction, ACL's ground-truth measurement,
	// and the admission whose colo list names ACL.
	if has(aclYala) {
		t.Fatal("yala ACL prediction survived its own reload")
	}
	if has(aclMeasure) {
		t.Fatal("ACL measurement survived reload")
	}
	if n := admitEntries(); n != 1 {
		t.Fatalf("expected only the ACL-free admit entry to survive, have %d", n)
	}
	// Survivors: the same NF under the other backend, and the other NF
	// under the reloaded backend — even with ACL as a competitor, since
	// competitors contribute measurements, not models.
	if !has(aclSLOMO) {
		t.Fatal("slomo ACL prediction evicted by a yala reload")
	}
	if !has(fsYala) {
		t.Fatal("yala FlowStats prediction evicted by an ACL reload")
	}
	if after := s.cache.Len(); after >= before {
		t.Fatalf("reload evicted nothing (%d -> %d entries)", before, after)
	}

	// The evicted scenario recomputes on demand with the fresh model.
	if _, err := s.Predict(ctx, PredictRequest{NF: "ACL"}); err != nil {
		t.Fatal(err)
	}
	if !has(aclYala) {
		t.Fatal("reloaded scenario did not re-cache")
	}
}

// TestReloadAffects pins the cache-key parsing behind targeted reload
// eviction, including the boundary cases the key grammar makes easy to
// get wrong: NF names that are substrings of other NF names, hardware
// qualifiers, and profile renderings containing separators.
func TestReloadAffects(t *testing.T) {
	prof := ProfileSpec{Flows: 32000}.Profile()
	cases := []struct {
		key         string
		backend, nf string
		want        bool
		why         string
	}{
		{predictKey(BackendYala, "", "ACL", prof, nil), "yala", "ACL", true, "default-hw predict of the reloaded model"},
		{predictKey(BackendYala, "bluefield2", "ACL", prof, nil), "yala", "ACL", true, "reload spans hardware classes"},
		{predictKey(BackendSLOMO, "", "ACL", prof, nil), "yala", "ACL", false, "other backend's model untouched"},
		{predictKey(BackendYala, "", "NAT", prof, []CompetitorSpec{{Name: "ACL"}}), "yala", "ACL", false, "competitors contribute measurements, not models"},
		{measureKey("", "ACL", prof, nil), "yala", "ACL", true, "target measurement follows its NF"},
		{measureKey("", "NAT", prof, []CompetitorSpec{{Name: "ACL"}}), "yala", "ACL", false, "competitor in a measurement is model-free"},
		{"admit|yala||ACL@(32000, 512, 600)~0.5|cand=NAT@(32000, 512, 600)~0.5", "yala", "ACL", true, "resident named in colo list"},
		{"admit|yala||ACL@(32000, 512, 600)~0.5|cand=NAT@(32000, 512, 600)~0.5", "yala", "NAT", true, "candidate named after cand="},
		{"admit|yala||SNAT@(32000, 512, 600)~0.5|cand=SNAT@(32000, 512, 600)~0.5", "yala", "NAT", false, "NAT must not match inside SNAT"},
		{"admit|slomo||ACL@(32000, 512, 600)~0.5|cand=NAT@(32000, 512, 600)~0.5", "yala", "ACL", false, "admit under the other backend"},
	}
	for _, tc := range cases {
		if got := reloadAffects(tc.key, tc.backend, tc.nf); got != tc.want {
			t.Errorf("reloadAffects(%q, %s, %s) = %v, want %v (%s)", tc.key, tc.backend, tc.nf, got, tc.want, tc.why)
		}
	}
}

// TestServiceClosedRejects verifies requests after Close fail cleanly.
func TestServiceClosedRejects(t *testing.T) {
	s := NewService(ServiceConfig{Registry: testRegistryConfig(t), Workers: 1})
	s.Close()
	if _, err := s.Predict(context.Background(), PredictRequest{NF: "ACL"}); err == nil {
		t.Fatal("expected error from closed service")
	}
}
