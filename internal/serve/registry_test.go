package serve

import (
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/nicsim"
	"repro/internal/profiling"
	"repro/internal/slomo"
)

// testTrainConfig is a minimal-cost Yala training setup for tests: a tiny
// random plan and a small regressor. Accuracy is irrelevant here — the
// serving tests assert determinism and plumbing, not model quality.
func testTrainConfig(seed uint64) core.TrainConfig {
	cfg := core.DefaultTrainConfig()
	cfg.Seed = seed
	cfg.Plan = profiling.Random(12, seed)
	cfg.PatternProbes = 1
	cfg.GBR = ml.GBRConfig{Trees: 25, LearningRate: 0.15, MaxDepth: 3, MinLeaf: 2, Subsample: 1, Seed: seed}
	return cfg
}

func testSLOMOConfig(seed uint64) slomo.Config {
	cfg := slomo.DefaultConfig()
	cfg.Seed = seed
	cfg.Samples = 12
	cfg.GBR = ml.GBRConfig{Trees: 25, LearningRate: 0.15, MaxDepth: 3, MinLeaf: 2, Subsample: 1, Seed: seed}
	return cfg
}

func testRegistryConfig(t *testing.T) RegistryConfig {
	t.Helper()
	return RegistryConfig{
		Dir:   t.TempDir(),
		Seed:  1,
		Train: testTrainConfig(1),
		SLOMO: testSLOMOConfig(1),
	}
}

// TestRegistryConcurrentLoad drives many concurrent Gets at one model and
// asserts exactly one training happens and every caller sees the same
// model instance (duplicate-load suppression). Run under -race.
func TestRegistryConcurrentLoad(t *testing.T) {
	reg := NewRegistry(testRegistryConfig(t))
	var trainings atomic.Int64
	reg.trainHook = func(Backend, string, string) { trainings.Add(1) }

	const goroutines = 16
	models := make([]backend.Model, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := reg.Model("yala", "FlowStats")
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			models[i] = m
		}(i)
	}
	wg.Wait()
	if n := trainings.Load(); n != 1 {
		t.Fatalf("expected exactly 1 training, got %d", n)
	}
	for i := 1; i < goroutines; i++ {
		if models[i] != models[0] {
			t.Fatalf("goroutine %d received a different model instance", i)
		}
	}
}

// TestRegistryConcurrentKeyedLoad hammers the registry with goroutines
// requesting a mix of identical and distinct (backend, hardware, NF)
// keys concurrently — run under -race — and asserts duplicate-load
// suppression holds per key: every distinct key trains exactly once and
// all requesters of a key receive the same model instance.
func TestRegistryConcurrentKeyedLoad(t *testing.T) {
	reg := NewRegistry(testRegistryConfig(t))
	type trainKey struct {
		backend Backend
		hw      string
		name    string
	}
	var mu sync.Mutex
	trainings := map[trainKey]int{}
	reg.trainHook = func(b Backend, hw, name string) {
		mu.Lock()
		trainings[trainKey{b, hw, name}]++
		mu.Unlock()
	}

	type req struct {
		backend string
		hw      string
		name    string
	}
	var reqs []req
	for _, hw := range []string{"", "bluefield2", "pensando"} {
		reqs = append(reqs, req{"yala", hw, "FlowStats"}, req{"slomo", hw, "FlowStats"})
	}

	const waves = 4 // every key requested by 4 goroutines at once
	results := make([][]backend.Model, len(reqs))
	for i := range results {
		results[i] = make([]backend.Model, waves)
	}
	var wg sync.WaitGroup
	for w := 0; w < waves; w++ {
		for i, r := range reqs {
			wg.Add(1)
			go func(w, i int, r req) {
				defer wg.Done()
				v, err := reg.ModelOn(r.backend, r.hw, nicForHW(r.hw), r.name)
				if err != nil {
					t.Errorf("%s/%s@%q: %v", r.backend, r.name, r.hw, err)
					return
				}
				results[i][w] = v
			}(w, i, r)
		}
	}
	wg.Wait()

	for i, r := range reqs {
		for w := 1; w < waves; w++ {
			if results[i][w] != results[i][0] {
				t.Errorf("%s/%s@%q: wave %d received a different model instance", r.backend, r.name, r.hw, w)
			}
		}
	}
	// Distinct hardware keys that persist to distinct paths each train
	// once; nothing trains twice.
	for key, n := range trainings {
		if n != 1 {
			t.Errorf("key %+v trained %d times, want 1", key, n)
		}
	}
	if want := len(reqs); len(trainings) != want {
		t.Errorf("%d distinct keys trained, want %d", len(trainings), want)
	}

	// Reload drops every hardware variant of the (backend, NF) pair: the
	// next round re-reads each key from disk rather than retraining.
	reg.Reload("yala", "FlowStats")
	for _, hw := range []string{"", "bluefield2", "pensando"} {
		if _, err := reg.ModelOn("yala", hw, nicForHW(hw), "FlowStats"); err != nil {
			t.Fatal(err)
		}
	}
	// Models persisted to disk on first training, so the reload round
	// loads files rather than retraining — training counts stay at 1.
	for key, n := range trainings {
		if n != 1 {
			t.Errorf("after reload, key %+v trained %d times, want 1 (should reload from disk)", key, n)
		}
	}
}

// TestRegistryRejectsBadHW covers hardware-key hygiene: keys that cannot
// name a file and named keys with no registered config.
func TestRegistryRejectsBadHW(t *testing.T) {
	reg := NewRegistry(testRegistryConfig(t))
	if _, err := reg.ModelOn("yala", "Bad/Key", nicForHW("pensando"), "FlowStats"); err == nil {
		t.Fatal("path-hostile hardware key accepted")
	}
	if _, err := reg.ModelOn("yala", "mystery", nicsim.Config{}, "FlowStats"); err == nil {
		t.Fatal("unknown hardware key with no config accepted")
	}
	// A key binds to one preset for the registry's lifetime: models under
	// it were trained on that hardware, so rebinding must fail loudly.
	if _, err := reg.ModelOn("yala", "edge", nicsim.BlueField2(), "FlowStats"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.ModelOn("yala", "edge", nicsim.Pensando(), "ACL"); err == nil {
		t.Fatal("conflicting rebind of hardware key accepted")
	}
	if _, err := reg.ModelOn("yala", "edge", nicsim.Config{}, "FlowStats"); err != nil {
		t.Fatalf("config-less lookup of bound key failed: %v", err)
	}
	// An unregistered backend is an error naming the registered set.
	if _, err := reg.Model("mystery", "FlowStats"); err == nil {
		t.Fatal("unregistered backend accepted")
	}
}

// nicForHW maps a test hardware key to its preset; the empty key lets
// the registry use its default.
func nicForHW(hw string) nicsim.Config {
	switch hw {
	case "pensando":
		return nicsim.Pensando()
	case "bluefield2":
		return nicsim.BlueField2()
	}
	return nicsim.Config{}
}

// TestRegistryPersistsAndReloads checks the train-on-demand path writes a
// model file a second registry can load without retraining, and that
// Reload forces a re-read.
func TestRegistryPersistsAndReloads(t *testing.T) {
	cfg := testRegistryConfig(t)
	reg := NewRegistry(cfg)
	var trainings atomic.Int64
	reg.trainHook = func(Backend, string, string) { trainings.Add(1) }

	if _, err := reg.Model("yala", "ACL"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Model("slomo", "ACL"); err != nil {
		t.Fatal(err)
	}
	if n := trainings.Load(); n != 2 {
		t.Fatalf("expected 2 trainings (yala+slomo), got %d", n)
	}
	if _, err := core.LoadModelFile(filepath.Join(cfg.Dir, "ACL.yala.json")); err != nil {
		t.Fatalf("persisted yala model unreadable: %v", err)
	}
	sm, err := slomo.LoadModelFile(filepath.Join(cfg.Dir, "ACL.slomo.json"))
	if err != nil {
		t.Fatalf("persisted slomo model unreadable: %v", err)
	}
	if sm.Name != "ACL" || sm.SoloAtTrain <= 0 {
		t.Fatalf("persisted slomo model %q solo=%.0f, want ACL with positive solo", sm.Name, sm.SoloAtTrain)
	}

	// A fresh registry over the same directory must load, not train.
	reg2 := NewRegistry(cfg)
	reg2.trainHook = func(b Backend, hw, name string) {
		t.Errorf("unexpected retraining of %s/%s@%q", b, name, hw)
	}
	m, err := reg2.Model("yala", "ACL")
	if err != nil {
		t.Fatal(err)
	}
	if m.NF() != "ACL" {
		t.Fatalf("loaded model for %q, want ACL", m.NF())
	}
	if sm2, err := reg2.Model("slomo", "ACL"); err != nil || sm2.NF() != "ACL" {
		t.Fatalf("loaded slomo model %v (err %v), want ACL", sm2, err)
	}

	// Reload drops the in-memory copy; the next Get re-reads the file.
	before, err := reg2.Model("yala", "ACL")
	if err != nil {
		t.Fatal(err)
	}
	reg2.Reload("yala", "ACL")
	after, err := reg2.Model("yala", "ACL")
	if err != nil {
		t.Fatal(err)
	}
	if before == after {
		t.Fatal("Reload did not evict the cached model")
	}

	infos := reg2.Models()
	if len(infos) != 2 {
		t.Fatalf("Models() = %+v, want 2 entries", infos)
	}
	for _, info := range infos {
		if info.NF != "ACL" || !info.OnDisk {
			t.Fatalf("unexpected model info %+v", info)
		}
	}
}

// TestRegistryReloadRace hammers hardware-keyed loads against
// concurrent Reloads — run under -race. Every load must return a valid
// model no matter how reloads interleave with in-flight loads; the stub
// backend keeps the hammer cheap (no training cost).
func TestRegistryReloadRace(t *testing.T) {
	reg := NewRegistry(testRegistryConfig(t))
	hws := []string{"", "bluefield2", "pensando"}

	stop := make(chan struct{})
	var reloaders sync.WaitGroup
	for i := 0; i < 2; i++ {
		reloaders.Add(1)
		go func() {
			defer reloaders.Done()
			for {
				select {
				case <-stop:
					return
				default:
					reg.Reload("fake", "FlowStats")
				}
			}
		}()
	}

	var loaders sync.WaitGroup
	for w := 0; w < 8; w++ {
		loaders.Add(1)
		go func(w int) {
			defer loaders.Done()
			for i := 0; i < 100; i++ {
				hw := hws[(w+i)%len(hws)]
				m, err := reg.ModelOn("fake", hw, nicForHW(hw), "FlowStats")
				if err != nil || m == nil || m.NF() != "FlowStats" {
					t.Errorf("loader %d iter %d: m=%v err=%v", w, i, m, err)
					return
				}
			}
		}(w)
	}
	loaders.Wait()
	close(stop)
	reloaders.Wait()

	// The registry settles into a servable state: one more load per key.
	for _, hw := range hws {
		if _, err := reg.ModelOn("fake", hw, nicForHW(hw), "FlowStats"); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRegistryFailedLoadRetries ensures a failed load is not cached as a
// permanent error.
func TestRegistryFailedLoadRetries(t *testing.T) {
	reg := NewRegistry(testRegistryConfig(t))
	if _, err := reg.Model("yala", "NoSuchNF"); err == nil {
		t.Fatal("expected error for unknown NF")
	}
	// The failed entry must have been evicted so a valid name still works
	// and the bad name fails again rather than deadlocking.
	if _, err := reg.Model("yala", "NoSuchNF"); err == nil {
		t.Fatal("expected second failure for unknown NF")
	}
}
