package ml

import "sort"

// TreeConfig bounds CART regression-tree growth.
type TreeConfig struct {
	MaxDepth int
	MinLeaf  int // minimum samples per leaf
}

// treeNode is one node of a regression tree, stored in a flat slice.
// Leaves have left == -1.
type treeNode struct {
	feature     int
	threshold   float64
	left, right int32
	value       float64 // leaf prediction
}

// Tree is a fitted CART regression tree.
type Tree struct {
	nodes []treeNode
}

// FitTree grows a regression tree on (X, y) minimizing the sum of squared
// errors at each split.
func FitTree(X [][]float64, y []float64, cfg TreeConfig) *Tree {
	if cfg.MinLeaf < 1 {
		cfg.MinLeaf = 1
	}
	if cfg.MaxDepth < 1 {
		cfg.MaxDepth = 1
	}
	idx := make([]int, len(y))
	for i := range idx {
		idx[i] = i
	}
	t := &Tree{}
	t.grow(X, y, idx, cfg, 0)
	return t
}

// grow builds the subtree over idx and returns its node index.
func (t *Tree) grow(X [][]float64, y []float64, idx []int, cfg TreeConfig, depth int) int32 {
	node := treeNode{left: -1, right: -1, value: meanAt(y, idx)}
	self := int32(len(t.nodes))
	t.nodes = append(t.nodes, node)

	if depth >= cfg.MaxDepth || len(idx) < 2*cfg.MinLeaf {
		return self
	}
	feat, thr, gain := bestSplit(X, y, idx, cfg.MinLeaf)
	if gain <= 0 {
		return self
	}
	var left, right []int
	for _, i := range idx {
		if X[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < cfg.MinLeaf || len(right) < cfg.MinLeaf {
		return self
	}
	l := t.grow(X, y, left, cfg, depth+1)
	r := t.grow(X, y, right, cfg, depth+1)
	t.nodes[self].feature = feat
	t.nodes[self].threshold = thr
	t.nodes[self].left = l
	t.nodes[self].right = r
	return self
}

// bestSplit scans every feature for the threshold with the largest SSE
// reduction, honouring the min-leaf constraint.
func bestSplit(X [][]float64, y []float64, idx []int, minLeaf int) (feat int, thr, gain float64) {
	n := len(idx)
	if n < 2 {
		return 0, 0, 0
	}
	dims := len(X[idx[0]])
	var totalSum, totalSq float64
	for _, i := range idx {
		totalSum += y[i]
		totalSq += y[i] * y[i]
	}
	parentSSE := totalSq - totalSum*totalSum/float64(n)

	order := make([]int, n)
	bestGain := 0.0
	for f := 0; f < dims; f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return X[order[a]][f] < X[order[b]][f] })
		var leftSum, leftSq float64
		for pos := 0; pos < n-1; pos++ {
			i := order[pos]
			leftSum += y[i]
			leftSq += y[i] * y[i]
			// Can't split between equal feature values.
			if X[order[pos]][f] == X[order[pos+1]][f] {
				continue
			}
			nl, nr := pos+1, n-pos-1
			if nl < minLeaf || nr < minLeaf {
				continue
			}
			rightSum := totalSum - leftSum
			rightSq := totalSq - leftSq
			sse := (leftSq - leftSum*leftSum/float64(nl)) +
				(rightSq - rightSum*rightSum/float64(nr))
			if g := parentSSE - sse; g > bestGain {
				bestGain = g
				feat = f
				thr = (X[order[pos]][f] + X[order[pos+1]][f]) / 2
			}
		}
	}
	return feat, thr, bestGain
}

func meanAt(y []float64, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	var sum float64
	for _, i := range idx {
		sum += y[i]
	}
	return sum / float64(len(idx))
}

// Predict evaluates the tree at x.
func (t *Tree) Predict(x []float64) float64 {
	n := int32(0)
	for {
		node := &t.nodes[n]
		if node.left < 0 {
			return node.value
		}
		if node.feature < len(x) && x[node.feature] <= node.threshold {
			n = node.left
		} else {
			n = node.right
		}
	}
}

// Depth reports the tree's depth (a single leaf is depth 0).
func (t *Tree) Depth() int { return t.depthFrom(0) }

func (t *Tree) depthFrom(n int32) int {
	node := &t.nodes[n]
	if node.left < 0 {
		return 0
	}
	l := t.depthFrom(node.left)
	r := t.depthFrom(node.right)
	if l > r {
		return l + 1
	}
	return r + 1
}
