package diagnose

import (
	"testing"

	"repro/internal/core"
	"repro/internal/nfbench"
	"repro/internal/nicsim"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

func TestAccuracy(t *testing.T) {
	vs := []Verdict{
		{Predicted: nicsim.ResMemory, Actual: nicsim.ResMemory},
		{Predicted: nicsim.ResRegex, Actual: nicsim.ResRegex},
		{Predicted: nicsim.ResMemory, Actual: nicsim.ResRegex},
		{Predicted: nicsim.ResRegex, Actual: nicsim.ResMemory},
	}
	if got := Accuracy(vs); got != 50 {
		t.Fatalf("Accuracy = %v, want 50", got)
	}
	if Accuracy(nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func TestSLOMOAlwaysSaysMemory(t *testing.T) {
	v := SLOMODiagnosis(nicsim.ResRegex)
	if v.Predicted != nicsim.ResMemory || v.Correct() {
		t.Fatalf("verdict %+v", v)
	}
}

func TestYalaDiagnosisShiftsWithMTBR(t *testing.T) {
	tb := testbed.New(nicsim.BlueField2(), 41)
	model, err := core.NewTrainer(tb, core.DefaultTrainConfig()).Train("FlowMonitor")
	if err != nil {
		t.Fatal(err)
	}
	memB := nfbench.MemBench(120e6, 10<<20)
	regexB := nfbench.RegexBench(0.58e6, 1000, 2000, 1)
	memSolo, err := tb.RunSolo(memB)
	if err != nil {
		t.Fatal(err)
	}
	regexSolo, err := tb.RunSolo(regexB)
	if err != nil {
		t.Fatal(err)
	}
	comps := []core.Competitor{
		core.CompetitorFromMeasurement(memSolo),
		core.CompetitorFromMeasurement(regexSolo),
	}

	var verdicts []Verdict
	for _, mtbr := range []float64{40, 80, 800, 1000, 1100} {
		prof := traffic.Default.With(traffic.AttrMTBR, mtbr)
		w, err := tb.Workload("FlowMonitor", prof)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := tb.Run(w, memB, regexB)
		if err != nil {
			t.Fatal(err)
		}
		verdicts = append(verdicts, YalaDiagnosis(model, prof, comps, ms[0].Bottleneck))
	}
	// The bottleneck must actually shift across the sweep (ground truth),
	// and Yala should track it with high accuracy.
	seen := map[nicsim.Resource]bool{}
	for _, v := range verdicts {
		seen[v.Actual] = true
	}
	if len(seen) < 2 {
		t.Fatalf("ground-truth bottleneck never shifted: %v", verdicts)
	}
	if acc := Accuracy(verdicts); acc < 80 {
		t.Fatalf("Yala diagnosis accuracy %.0f%% (verdicts %v)", acc, verdicts)
	}
}
