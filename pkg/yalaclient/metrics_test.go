package yalaclient

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

const sampleExposition = `# HELP yala_requests_total requests by verb
# TYPE yala_requests_total counter
yala_requests_total{verb="predict"} 42
yala_requests_total{verb="compare"} 7
# TYPE yala_uptime_seconds gauge
yala_uptime_seconds 123.5
# TYPE yala_stage_seconds histogram
yala_stage_seconds_bucket{stage="decode",le="0.001"} 10
yala_stage_seconds_bucket{stage="decode",le="+Inf"} 12
yala_stage_seconds_sum{stage="decode"} 0.025
yala_stage_seconds_count{stage="decode"} 12
weird{a="br{ce",b="q\"uote"} 1 1700000000000
malformed line without a value
`

func TestScrapeMetrics(t *testing.T) {
	snap := ScrapeMetrics(sampleExposition)
	if v, ok := snap.Value("yala_requests_total", `verb="predict"`); !ok || v != 42 {
		t.Fatalf("predict counter = %g (ok=%v), want 42", v, ok)
	}
	if v, ok := snap.Value("yala_uptime_seconds", ""); !ok || v != 123.5 {
		t.Fatalf("uptime = %g (ok=%v), want 123.5", v, ok)
	}
	if v, ok := snap.Value("yala_stage_seconds_bucket", `le="+Inf"`); !ok || v != 12 {
		t.Fatalf("+Inf bucket = %g (ok=%v), want 12", v, ok)
	}
	// Label values containing braces, quotes and timestamps still parse.
	if v, ok := snap.Value("weird", ""); !ok || v != 1 {
		t.Fatalf("weird = %g (ok=%v), want 1", v, ok)
	}
	if _, ok := snap.Value("malformed", ""); ok {
		t.Fatal("malformed line should have been dropped")
	}
	for _, p := range snap.Points {
		if p.Name == "weird" {
			if got := p.Label("a"); got != "br{ce" {
				t.Fatalf("label a = %q, want br{ce", got)
			}
			if got := p.Label("b"); got != `q"uote` {
				t.Fatalf("label b = %q, want q\"uote", got)
			}
			if got := p.Label("missing"); got != "" {
				t.Fatalf("missing label = %q, want empty", got)
			}
		}
	}
}

func TestClientMetrics(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, sampleExposition)
	}))
	defer ts.Close()

	snap, err := New(ts.URL).Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := snap.Value("yala_requests_total", `verb="compare"`); !ok || v != 7 {
		t.Fatalf("compare counter = %g (ok=%v), want 7", v, ok)
	}
	if v, ok := snap.Value("yala_stage_seconds_count", `stage="decode"`); !ok || v != 12 {
		t.Fatalf("decode stage count = %g (ok=%v), want 12", v, ok)
	}
}
