package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"

	"repro/internal/cluster"
)

// httpModelDir is shared by every HTTP-layer test server: the first
// server quick-trains and persists the tiny models, later servers load
// them from disk instead of retraining. TestMain removes it.
var (
	httpModelDirOnce sync.Once
	httpModelDir     string
)

func TestMain(m *testing.M) {
	code := m.Run()
	if httpModelDir != "" {
		os.RemoveAll(httpModelDir)
	}
	os.Exit(code)
}

// testServer runs a service behind httptest with the cheap test
// training config and the shared model directory.
func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	httpModelDirOnce.Do(func() {
		dir, err := os.MkdirTemp("", "serve-http-models-")
		if err != nil {
			t.Fatalf("creating shared model dir: %v", err)
		}
		httpModelDir = dir
	})
	cfg := RegistryConfig{
		Dir:   httpModelDir,
		Seed:  1,
		Train: testTrainConfig(1),
		SLOMO: testSLOMOConfig(1),
	}
	svc := NewService(ServiceConfig{Registry: cfg, Workers: 2})
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// postRaw round-trips a raw JSON body and returns (status, body).
func postRaw(t *testing.T, ts *httptest.Server, path, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s response: %v", path, err)
	}
	return resp.StatusCode, string(data)
}

// postAs posts a typed request and decodes the 200 response into Resp —
// the raw-HTTP stand-in for the removed internal client (the public SDK
// in pkg/yalaclient speaks /v2; these tests pin /v1).
func postAs[Resp any](t *testing.T, ts *httptest.Server, path string, req any) Resp {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	status, data := postRaw(t, ts, path, string(body))
	if status != http.StatusOK {
		t.Fatalf("POST %s: status %d, body %s", path, status, data)
	}
	var resp Resp
	if err := json.Unmarshal([]byte(data), &resp); err != nil {
		t.Fatalf("decoding %s response %q: %v", path, data, err)
	}
	return resp
}

// getAs fetches a path and decodes the 200 response.
func getAs[Resp any](t *testing.T, ts *httptest.Server, path string) Resp {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d, body %s", path, resp.StatusCode, data)
	}
	var out Resp
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("decoding %s response %q: %v", path, data, err)
	}
	return out
}

func TestHTTPPredict(t *testing.T) {
	ts := testServer(t)
	resp := postAs[PredictResponse](t, ts, "/v1/predict", PredictRequest{
		NF:          "FlowStats",
		Competitors: []CompetitorSpec{{Name: "ACL"}},
	})
	if resp.NF != "FlowStats" || resp.SoloPPS <= 0 || resp.PredictedPPS <= 0 {
		t.Fatalf("implausible prediction: %+v", resp)
	}
}

// TestHTTPPredictBadRequest is the regression test for unknown NFs and
// malformed profiles: both must surface as HTTP 400 with a message that
// names the problem, not as an opaque 5xx.
func TestHTTPPredictBadRequest(t *testing.T) {
	ts := testServer(t)
	cases := []struct {
		name, body, wantMsg string
	}{
		{"unknown nf", `{"nf":"NoSuchNF"}`, "unknown NF"},
		{"missing nf", `{}`, "missing NF name"},
		{"unknown competitor", `{"nf":"FlowStats","competitors":[{"name":"Bogus"}]}`, "unknown NF"},
		{"negative flows", `{"nf":"FlowStats","profile":{"flows":-5}}`, "flows"},
		{"oversized pktsize", `{"nf":"FlowStats","profile":{"pktsize":100000}}`, "pktsize"},
		{"negative mtbr", `{"nf":"FlowStats","profile":{"mtbr":-1}}`, "mtbr"},
		{"unknown backend", `{"nf":"FlowStats","backend":"magic"}`, "unknown backend"},
	}
	for _, tc := range cases {
		status, body := postRaw(t, ts, "/v1/predict", tc.body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, status, body)
		}
		if !strings.Contains(body, tc.wantMsg) {
			t.Errorf("%s: body %q does not mention %q", tc.name, body, tc.wantMsg)
		}
	}
}

func TestHTTPPredictBatch(t *testing.T) {
	ts := testServer(t)
	resp := postAs[BatchResponse](t, ts, "/v1/predict/batch", BatchRequest{Requests: []PredictRequest{
		{NF: "FlowStats"},
		{NF: "ACL", Competitors: []CompetitorSpec{{Name: "FlowStats"}}},
	}})
	if len(resp.Responses) != 2 || len(resp.Errors) != 0 {
		t.Fatalf("batch response: %+v", resp)
	}
	// A malformed element fails the whole batch with 400 and an index.
	status, body := postRaw(t, ts, "/v1/predict/batch",
		`{"requests":[{"nf":"FlowStats"},{"nf":"NoSuchNF"}]}`)
	if status != http.StatusBadRequest {
		t.Fatalf("bad batch element: status %d, want 400 (body %s)", status, body)
	}
	if !strings.Contains(body, "requests[1]") {
		t.Fatalf("bad batch element: body %q does not name the element", body)
	}
}

func TestHTTPCompareAdmitDiagnose(t *testing.T) {
	ts := testServer(t)
	cmp := postAs[CompareResponse](t, ts, "/v1/compare", CompareRequest{NF: "FlowStats", Competitors: []CompetitorSpec{{Name: "ACL"}}})
	if cmp.Yala.PredictedPPS <= 0 || cmp.SLOMO.PredictedPPS <= 0 {
		t.Fatalf("implausible compare: %+v", cmp)
	}
	adm := postAs[AdmitResponse](t, ts, "/v1/admit", AdmitRequest{
		Residents: []ColoNF{{Name: "ACL", SLA: 0.9}},
		Candidate: ColoNF{Name: "FlowStats", SLA: 0.9},
	})
	if adm.Residents != 1 {
		t.Fatalf("admit response: %+v", adm)
	}
	diag := postAs[DiagnoseResponse](t, ts, "/v1/diagnose", DiagnoseRequest{NF: "FlowStats", Competitors: []CompetitorSpec{{Name: "ACL"}}})
	if diag.Bottleneck == "" {
		t.Fatalf("diagnose response: %+v", diag)
	}
	// Admission validation: an out-of-range SLA is a 400.
	status, body := postRaw(t, ts, "/v1/admit",
		`{"candidate":{"name":"FlowStats","sla":1.5}}`)
	if status != http.StatusBadRequest || !strings.Contains(body, "SLA") {
		t.Fatalf("bad admit SLA: status %d body %s", status, body)
	}
}

func TestHTTPStatsModelsHealthz(t *testing.T) {
	ts := testServer(t)
	postAs[PredictResponse](t, ts, "/v1/predict", PredictRequest{NF: "FlowStats"})
	stats := getAs[ServiceStats](t, ts, "/v1/stats")
	if stats.Requests["predict"] != 1 || len(stats.Models) == 0 {
		t.Fatalf("stats: %+v", stats)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	models := getAs[[]ModelInfo](t, ts, "/v1/models")
	if len(models) == 0 {
		t.Fatal("model listing empty after a predict")
	}
}

// TestHTTPReloadValidation pins the reload endpoint's error contract:
// unknown backends and unknown NFs are 400s, not silent no-ops.
func TestHTTPReloadValidation(t *testing.T) {
	ts := testServer(t)
	status, body := postRaw(t, ts, "/v1/reload", `{"nf":"FlowStats","backend":"wat"}`)
	if status != http.StatusBadRequest || !strings.Contains(body, "unknown backend") {
		t.Fatalf("unknown backend reload: status %d body %s", status, body)
	}
	status, body = postRaw(t, ts, "/v1/reload", `{"nf":"NoSuchNF"}`)
	if status != http.StatusBadRequest || !strings.Contains(body, "unknown NF") {
		t.Fatalf("unknown NF reload: status %d body %s", status, body)
	}
	status, _ = postRaw(t, ts, "/v1/reload", `{"nf":"FlowStats"}`)
	if status != http.StatusOK {
		t.Fatalf("valid reload: status %d", status)
	}
}

// TestHTTPErrorEnvelopeEverywhere asserts no /v1 error path falls
// through to net/http's plain-text responses: wrong methods and unknown
// routes both return JSON envelopes.
func TestHTTPErrorEnvelopeEverywhere(t *testing.T) {
	ts := testServer(t)
	// Wrong method on a /v1 route → 405 with the flat envelope.
	resp, err := http.Get(ts.URL + "/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/predict: status %d, want 405", resp.StatusCode)
	}
	var flat struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(data, &flat); err != nil || flat.Error == "" {
		t.Fatalf("GET /v1/predict: body %q is not the /v1 error envelope", data)
	}
	if allow := resp.Header.Get("Allow"); allow != "POST" {
		t.Fatalf("GET /v1/predict: Allow %q, want POST", allow)
	}
	// Unknown route → structured 404.
	resp, err = http.Get(ts.URL + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /v1/nope: status %d, want 404", resp.StatusCode)
	}
	var v2 errorBodyV2
	if err := json.Unmarshal(data, &v2); err != nil || v2.Error.Code != codeNotFound {
		t.Fatalf("GET /v1/nope: body %q is not the structured envelope", data)
	}
}

func TestHTTPClusterPolicies(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/v1/cluster/policies")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("policies status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range cluster.Policies() {
		if !strings.Contains(string(data), p) {
			t.Fatalf("policies body %q missing %q", data, p)
		}
	}
}

func TestHTTPClusterRun(t *testing.T) {
	ts := testServer(t)
	drift := 0.5
	cmp := postAs[cluster.Comparison](t, ts, "/v1/cluster/run", ClusterRunRequest{
		NICs:      2,
		Arrivals:  6,
		Seed:      3,
		NFs:       []string{"FlowStats", "ACL"},
		Policies:  []string{"firstfit", "yala"},
		Profiles:  2,
		DriftProb: &drift,
	})
	if len(cmp.Results) != 2 {
		t.Fatalf("cluster run returned %d results, want 2", len(cmp.Results))
	}
	for _, r := range cmp.Results {
		if r.Arrivals != 6 {
			t.Fatalf("policy %s saw %d arrivals, want 6", r.Policy, r.Arrivals)
		}
		if r.Admitted+r.Rejected+r.Rollbacks != 6 {
			t.Fatalf("policy %s accounting off: %+v", r.Policy, r)
		}
	}
}

func TestHTTPClusterRunBadRequest(t *testing.T) {
	ts := testServer(t)
	cases := []struct {
		name, body, wantMsg string
	}{
		{"bad nf", `{"nfs":["NoSuchNF"]}`, "unknown NF"},
		{"bad policy", `{"policies":["zeus"]}`, "unknown policy"},
		{"oversized fleet", `{"nics":100000}`, "nics"},
		{"oversized arrivals", `{"arrivals":1000000}`, "arrivals"},
		{"bad drift", `{"drift_prob":1.5}`, "drift_prob"},
		// The SLA range is only inverted after defaults fill sla_hi —
		// still the client's doing, still a 400.
		{"inverted sla after defaults", `{"sla_lo":0.5}`, "SLA range"},
		{"negative iat", `{"mean_iat":-5}`, "mean_iat"},
	}
	for _, tc := range cases {
		status, body := postRaw(t, ts, "/v1/cluster/run", tc.body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, status, body)
		}
		if !strings.Contains(body, tc.wantMsg) {
			t.Errorf("%s: body %q does not mention %q", tc.name, body, tc.wantMsg)
		}
	}
}
