package nicsim

import (
	"math"
	"testing"
	"testing/quick"
)

func testCfg() Config { return BlueField2() }

func wl(name string, refs, wss float64) *Workload {
	return &Workload{
		Name: name, Pattern: RunToCompletion, Cores: 2,
		CPUSecPerPkt: 500e-9, MemRefsPerPkt: refs, WSSBytes: wss,
		PktBytes: 1500,
	}
}

func TestOccupancyFitsWhenUnderLLC(t *testing.T) {
	cfg := testCfg()
	ws := []*Workload{wl("a", 50, 1<<20), wl("b", 50, 2<<20)}
	states, _ := memSolve(&cfg, ws, []float64{1e6, 1e6})
	for i, s := range states {
		if math.Abs(s.occupancy-ws[i].WSSBytes) > 1 {
			t.Errorf("workload %d occupancy %v, want full WSS %v", i, s.occupancy, ws[i].WSSBytes)
		}
		if s.missRatio > cfg.BaseMissRatio+1e-9 {
			t.Errorf("workload %d miss ratio %v above base", i, s.missRatio)
		}
	}
}

func TestOccupancyNeverExceedsLLC(t *testing.T) {
	cfg := testCfg()
	f := func(w1, w2, w3 uint32, r1, r2, r3 uint16) bool {
		ws := []*Workload{
			wl("a", float64(r1)+1, float64(w1%64)*1e6+1),
			wl("b", float64(r2)+1, float64(w2%64)*1e6+1),
			wl("c", float64(r3)+1, float64(w3%64)*1e6+1),
		}
		states, _ := memSolve(&cfg, ws, []float64{1e6, 1e6, 1e6})
		var total float64
		for i, s := range states {
			if s.occupancy < 0 || s.occupancy > ws[i].WSSBytes+1 {
				return false
			}
			total += s.occupancy
		}
		return total <= cfg.LLCBytes*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMissRatioRisesWithCompetingWSS(t *testing.T) {
	cfg := testCfg()
	target := wl("target", 50, 4<<20)
	// Competitor pressure grows through its working-set size (the Fig. 6b
	// knob): bigger competing WSS squeezes the target's occupancy.
	prevMiss := -1.0
	for _, compWSS := range []float64{1 << 20, 4 << 20, 16 << 20, 64 << 20} {
		comp := wl("comp", 100, compWSS)
		states, _ := memSolve(&cfg, []*Workload{target, comp}, []float64{1e6, 1e6})
		if states[0].missRatio < prevMiss-1e-9 {
			t.Fatalf("miss ratio decreased under more contention: %v -> %v",
				prevMiss, states[0].missRatio)
		}
		prevMiss = states[0].missRatio
	}
	if prevMiss <= cfg.BaseMissRatio {
		t.Fatal("heavy contention did not raise miss ratio above base")
	}
}

func TestPenaltyExcludesSelfTraffic(t *testing.T) {
	cfg := testCfg()
	// A single workload with enormous bandwidth demand must not inflate
	// its own penalty: memSec should match the uncontended formula.
	w := wl("solo", 2000, 64<<20)
	states, _ := memSolve(&cfg, []*Workload{w}, []float64{2e6})
	wantPerRef := cfg.CacheHitSec + states[0].missRatio*cfg.MissPenaltySec
	want := w.MemRefsPerPkt * wantPerRef / 1 // MLP defaults to 1 in wl()
	if math.Abs(states[0].memSec-want)/want > 1e-9 {
		t.Fatalf("solo memSec %v, want uninflated %v", states[0].memSec, want)
	}
}

func TestMemTimeGrowsWithMissRatio(t *testing.T) {
	cfg := testCfg()
	target := wl("target", 80, 5<<20)
	solo, _ := memSolve(&cfg, []*Workload{target}, []float64{1e6})
	comp := wl("comp", 600, 32<<20)
	contended, _ := memSolve(&cfg, []*Workload{target, comp}, []float64{1e6, 1e6})
	if contended[0].memSec <= solo[0].memSec {
		t.Fatalf("memSec did not grow: solo %v contended %v", solo[0].memSec, contended[0].memSec)
	}
}

func TestBandwidthSaturationInflatesPenalty(t *testing.T) {
	cfg := testCfg()
	// Enormous miss traffic from a giant-WSS, high-rate competitor.
	a := wl("a", 100, 64<<20)
	b := wl("b", 2000, 64<<20)
	_, util := memSolve(&cfg, []*Workload{a, b}, []float64{2e6, 2e6})
	if util <= 0.2 {
		t.Fatalf("expected high DRAM utilization, got %v", util)
	}
	if util > 0.95 {
		t.Fatalf("utilization should be clamped at 0.95, got %v", util)
	}
}

func TestMissRatioEdgeCases(t *testing.T) {
	if got := missRatio(0.02, 0, 0); got != 0 {
		t.Errorf("zero WSS miss ratio = %v, want 0", got)
	}
	if got := missRatio(0.02, 100, 200); got != 0.02 {
		t.Errorf("over-resident miss ratio = %v, want base", got)
	}
	if got := missRatio(0.02, 100, 0); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("zero occupancy miss ratio = %v, want 1", got)
	}
}

func TestZeroRateWorkloadStillGetsOccupancy(t *testing.T) {
	cfg := testCfg()
	ws := []*Workload{wl("idle", 10, 1<<20)}
	states, _ := memSolve(&cfg, ws, []float64{0})
	if states[0].occupancy <= 0 {
		t.Fatal("idle workload got no occupancy despite empty LLC")
	}
}
