package gateway

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// slowStub is a replica stub whose predict answers block on a release
// channel, so tests can hold an upstream call in flight while
// concurrent gateway requests pile onto it. Run the coalescing tests
// under -race: the leader/follower split is exactly the kind of
// sharing a data race would corrupt silently.
type slowStub struct {
	calls   atomic.Int64 // predict calls that reached the stub
	release chan struct{}
	srv     *httptest.Server
}

func newSlowStub(t *testing.T) *slowStub {
	t.Helper()
	s := &slowStub{release: make(chan struct{})}
	s.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			w.Write([]byte("ok\n"))
			return
		case "/v2/stats":
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, `{"uptime_sec":1,"workers":1,"requests":{},"errors":0,"cache":{"entries":0,"hits":0,"misses":0,"evictions":0},"models":[]}`)
			return
		}
		n := s.calls.Add(1)
		<-s.release
		w.Header().Set("Content-Type", "application/json")
		// The serial makes separate upstream calls distinguishable: if
		// coalescing ever split, bodies would differ.
		fmt.Fprintf(w, `{"nf":"FlowStats","backend":"stub","serial":%d}`, n)
	}))
	t.Cleanup(s.srv.Close)
	return s
}

func slowGateway(t *testing.T, stub *slowStub) (*Gateway, *httptest.Server) {
	t.Helper()
	g, err := New(Config{
		Backends:       []string{stub.srv.URL},
		HealthInterval: 20 * time.Millisecond,
		HealthTimeout:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)
	return g, ts
}

// TestCoalesceIdenticalPredicts: N concurrent requests for the same
// (method, URI, body) on a cold key make exactly one upstream call and
// all receive the leader's bytes; followers are marked with
// X-Gateway-Coalesced and every response keeps its own request ID.
func TestCoalesceIdenticalPredicts(t *testing.T) {
	stub := newSlowStub(t)
	g, ts := slowGateway(t, stub)

	const n = 8
	body := `{"profile":{"flows":1000}}`
	type answer struct {
		status    int
		body      string
		coalesced bool
		cacheHit  bool
		rid       string
	}
	answers := make([]answer, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v2/models/FlowStats/yala:predict", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			answers[i] = answer{
				status:    resp.StatusCode,
				body:      string(data),
				coalesced: resp.Header.Get("X-Gateway-Coalesced") == "hit",
				cacheHit:  resp.Header.Get("X-Gateway-Cache") == "hit",
				rid:       resp.Header.Get("X-Request-Id"),
			}
		}(i)
	}
	// Give every request time to send and reach the flight group while
	// the leader's upstream call is pinned open, then let it answer.
	time.Sleep(300 * time.Millisecond)
	close(stub.release)
	wg.Wait()

	if got := stub.calls.Load(); got != 1 {
		t.Fatalf("upstream saw %d predict calls, want exactly 1", got)
	}
	rids := map[string]bool{}
	leaders := 0
	for i, a := range answers {
		if a.status != http.StatusOK {
			t.Fatalf("request %d: status %d (%s)", i, a.status, a.body)
		}
		if a.body != answers[0].body {
			t.Fatalf("request %d body diverged:\n%s\n%s", i, a.body, answers[0].body)
		}
		if a.rid == "" || rids[a.rid] {
			t.Fatalf("request %d: request ID %q missing or shared", i, a.rid)
		}
		rids[a.rid] = true
		if !a.coalesced && !a.cacheHit {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d requests proxied upstream (no share marker), want exactly 1 leader", leaders)
	}
	if got := g.coalesced.Load(); got == 0 {
		t.Fatal("gateway coalesced counter never moved")
	}
	if got := int(g.coalesced.Load()); got > n-1 {
		t.Fatalf("coalesced counter %d exceeds follower count %d", got, n-1)
	}
}

// TestCoalesceDistinctBodies: different bodies are different scenarios
// and must never share an answer — both reach the upstream.
func TestCoalesceDistinctBodies(t *testing.T) {
	stub := newSlowStub(t)
	_, ts := slowGateway(t, stub)

	bodies := []string{`{"profile":{"flows":1000}}`, `{"profile":{"flows":2000}}`}
	got := make([]string, len(bodies))
	var wg sync.WaitGroup
	for i, b := range bodies {
		wg.Add(1)
		go func(i int, b string) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v2/models/FlowStats/yala:predict", "application/json", strings.NewReader(b))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			if resp.Header.Get("X-Gateway-Coalesced") == "hit" {
				t.Errorf("request %d coalesced across distinct bodies", i)
			}
			got[i] = string(data)
		}(i, b)
	}
	// Both upstream calls must be in flight together before release —
	// that is the proof they did not coalesce.
	deadline := time.Now().Add(2 * time.Second)
	for stub.calls.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if stub.calls.Load() != 2 {
		t.Fatalf("upstream saw %d concurrent calls, want 2 (distinct bodies coalesced?)", stub.calls.Load())
	}
	close(stub.release)
	wg.Wait()
	if got[0] == got[1] {
		t.Fatalf("distinct scenarios shared one response: %s", got[0])
	}
}

// TestEdgeCacheHitHeaders: an edge hit must still answer like a real
// response — Content-Type set and a fresh X-Request-Id — not a bare
// byte replay.
func TestEdgeCacheHitHeaders(t *testing.T) {
	a := newStubReplica(t, "a")
	_, ts := testGateway(t, 0, a)

	body := `{"profile":{"flows":1000}}`
	first, err := http.Post(ts.URL+"/v2/models/FlowStats/yala:predict", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, first.Body)
	first.Body.Close()
	second, err := http.Post(ts.URL+"/v2/models/FlowStats/yala:predict", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer second.Body.Close()
	io.Copy(io.Discard, second.Body)
	if second.Header.Get("X-Gateway-Cache") != "hit" {
		t.Fatal("second identical request missed the edge cache")
	}
	if ct := second.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("edge hit lost Content-Type: %q", ct)
	}
	rid1, rid2 := first.Header.Get("X-Request-Id"), second.Header.Get("X-Request-Id")
	if rid2 == "" {
		t.Fatal("edge hit lost X-Request-Id")
	}
	if rid1 == rid2 {
		t.Fatalf("edge hit replayed the miss's request ID %q", rid1)
	}
}

// TestUpstreamResponseTooLarge: a replica answering more than the
// gateway's buffering cap is a misbehaving replica — the gateway must
// refuse to balloon and fail the request over, never stream the bytes.
func TestUpstreamResponseTooLarge(t *testing.T) {
	huge := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Write([]byte("ok\n"))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		chunk := make([]byte, 1<<20)
		for i := 0; i < 11; i++ { // 11 MiB > the 10 MiB cap
			w.Write(chunk)
		}
	}))
	t.Cleanup(huge.Close)
	g, err := New(Config{Backends: []string{huge.URL}, HealthInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Post(ts.URL+"/v2/models/FlowStats/yala:predict", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("oversized upstream proxied with status %d (%d bytes)", resp.StatusCode, len(data))
	}
	if !strings.Contains(string(data), "cap") {
		t.Fatalf("503 body does not name the size cap: %s", data)
	}
	// The misbehaving replica is marked down like any transport failure.
	if g.replicas[0].healthy.Load() {
		t.Fatal("oversized-response replica still marked healthy")
	}
}

// TestCanceledClientIs499: a client that hangs up mid-proxy produces a
// 499 and the gateway_client_canceled_total counter — never a 503, a
// shed observation, or a replica marked down for the caller's
// impatience.
func TestCanceledClientIs499(t *testing.T) {
	stub := newSlowStub(t)
	g, ts := slowGateway(t, stub)
	defer close(stub.release)

	ctx, cancel := context.WithCancel(context.Background())
	// A GET proxies on the caller's own context (no coalescing, no
	// detached leader) — the pure pass-through path.
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v2/models", nil)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, rerr := http.DefaultClient.Do(req)
		errc <- rerr
	}()
	// Wait for the proxied call to pin upstream, then hang up.
	deadline := time.Now().Add(2 * time.Second)
	for stub.calls.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if stub.calls.Load() == 0 {
		t.Fatal("request never reached the stub")
	}
	cancel()
	if rerr := <-errc; rerr == nil {
		t.Fatal("canceled client saw a response")
	}

	deadline = time.Now().Add(2 * time.Second)
	for g.canceled.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := g.canceled.Load(); got != 1 {
		t.Fatalf("canceled counter = %d, want 1", got)
	}
	if !g.replicas[0].healthy.Load() {
		t.Fatal("replica marked down because a client hung up")
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(raw), "gateway_client_canceled_total 1") {
		t.Fatalf("exposition missing gateway_client_canceled_total:\n%s", raw)
	}
}
