package tenant

import (
	"encoding/json"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// StatusClientClosedRequest is the non-standard 499 status (the nginx
// convention) a handler writes when the *client* abandoned the request
// — its context was canceled before a response could be sent. It is
// neither a success nor a server error; the gate's Middleware excludes
// it from SLO accounting entirely, because a burst of client
// disconnects says nothing about server health and must not push the
// windowed error-rate/latency pressure toward shedding live traffic.
const StatusClientClosedRequest = 499

// KeyFromRequest extracts the API key: `Authorization: Bearer <key>`
// wins, then `X-API-Key`; "" means anonymous.
func KeyFromRequest(r *http.Request) string {
	if auth := r.Header.Get("Authorization"); auth != "" {
		const prefix = "Bearer "
		if len(auth) > len(prefix) && strings.EqualFold(auth[:len(prefix)], prefix) {
			return strings.TrimSpace(auth[len(prefix):])
		}
	}
	return strings.TrimSpace(r.Header.Get("X-API-Key"))
}

// ClassifyPath maps a request path to its priority class: batch and
// cluster endpoints are bulk, everything else interactive.
func ClassifyPath(path string) Class {
	if strings.HasSuffix(path, ":batchPredict") ||
		path == "/v1/predict/batch" ||
		path == "/v1/cluster/run" ||
		strings.HasPrefix(path, "/v2/cluster/runs") {
		return ClassBulk
	}
	return ClassInteractive
}

// exempt lists paths the gate never touches: health probes, metric
// scrapes, profiling, and the gateway's own control surface. Shedding a
// health check would flap the fleet; shedding /metrics would blind the
// operator exactly when the data matters.
func exempt(path string) bool {
	switch path {
	case "/healthz", "/metrics", "/v2/gateway/stats":
		return true
	}
	return strings.HasPrefix(path, "/debug/pprof")
}

// gateRecorder captures the status for SLO accounting.
type gateRecorder struct {
	http.ResponseWriter
	status int
}

func (r *gateRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Middleware returns the admission handler wrapping next. Mount it
// inside the observability middleware (withObs) so refusals carry the
// request ID in the envelope, and outside the business mux so shed
// requests never reach a worker.
func (g *Gate) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if exempt(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		d := g.Admit(KeyFromRequest(r), ClassifyPath(r.URL.Path), time.Now())
		if !d.OK {
			if d.RateLimited && g.cfg.ShedDelay > 0 {
				// Tarpit: stall the refusal so an unpaced keep-alive
				// abuser is bounded by ShedDelay per connection, not by
				// how fast the server can write 429s.
				select {
				case <-time.After(g.cfg.ShedDelay):
				case <-r.Context().Done():
				}
			}
			writeRefusal(w, r, d)
			return
		}
		rec := &gateRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		if rec.status == StatusClientClosedRequest {
			// The client hung up: not an error, and not a latency sample
			// either — how long an abandoned request lingered measures the
			// client's impatience, not the server's SLO.
			return
		}
		g.Observe(d, time.Since(start), rec.status >= http.StatusInternalServerError)
	})
}

// refusalBody is the /v2 structured error envelope (the same wire shape
// internal/serve's writeErrorV2 emits; duplicated here because serve
// imports tenant, not the other way around — the contract test in serve
// pins both to one fixture).
type refusalBody struct {
	Error struct {
		Code      string `json:"code"`
		Message   string `json:"message"`
		RequestID string `json:"request_id,omitempty"`
	} `json:"error"`
}

// writeRefusal answers a shed or unauthenticated request: the /v2 error
// envelope, plus a Retry-After header (whole seconds, rounded up, min
// 1) on 429s so clients back off by the bucket's actual refill time.
func writeRefusal(w http.ResponseWriter, r *http.Request, d Decision) {
	if d.RetryAfter > 0 {
		secs := int(math.Ceil(d.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	var body refusalBody
	body.Error.Code = d.Code
	body.Error.Message = d.Message
	if tr := obs.FromContext(r.Context()); tr != nil {
		body.Error.RequestID = tr.ID
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(d.Status)
	json.NewEncoder(w).Encode(body)
}
