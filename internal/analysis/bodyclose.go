package analysis

import (
	"go/ast"
	"go/types"
)

// Bodyclose flags http.Response values whose Body is never closed in
// the function that obtained them and which do not escape it. A leaked
// body pins the underlying connection, defeating keep-alive reuse and
// eventually exhausting the file-descriptor budget under load.
//
// The check is flow-insensitive by design (stdlib-only, no SSA): a
// Close anywhere in the obtaining function — including inside a
// deferred closure — satisfies it, and a response that escapes
// (returned, passed to a call, stored anywhere) transfers the
// obligation to the receiver. That trades missed leaks on exotic paths
// for zero false positives on the repo's real proxying code.
func Bodyclose() *Analyzer {
	return &Analyzer{
		Name: "bodyclose",
		Doc:  "requires http.Response bodies to be closed (or the response to escape) in the obtaining function",
		Run: func(pass *Pass) {
			for _, f := range pass.Pkg.Files {
				checkBodyClose(pass, f)
			}
		},
	}
}

// respSource is one call that produced an *http.Response in some
// function.
type respSource struct {
	call *ast.CallExpr
	obj  types.Object // the variable bound to the response; nil when dropped
	fn   ast.Node     // innermost enclosing FuncDecl/FuncLit
}

func checkBodyClose(pass *Pass, f *ast.File) {
	var sources []respSource
	walkStack(f, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		idx, ok := responseResult(pass, call)
		if !ok {
			return
		}
		// A call used as an expression inside a larger statement
		// (return f(...), helper(client.Do(...))) hands the response
		// to someone else; only direct assignments and dropped calls
		// are this function's responsibility.
		fn := enclosingFunc(stack)
		switch parent := parentNode(stack).(type) {
		case *ast.AssignStmt:
			if obj, bound := assignedObj(pass, parent, call, idx); bound {
				sources = append(sources, respSource{call: call, obj: obj, fn: fn})
			} else {
				// Bound to _: the body can never be closed.
				sources = append(sources, respSource{call: call, fn: fn})
			}
		case *ast.ExprStmt:
			sources = append(sources, respSource{call: call, fn: fn})
		}
	})
	for _, src := range sources {
		if src.obj == nil {
			pass.Reportf(src.call.Pos(), "http response is discarded without closing its Body")
			continue
		}
		if src.fn == nil {
			continue // package-level var initializer; out of scope
		}
		if closedOrEscapes(pass, src.fn, src.obj) {
			continue
		}
		pass.Reportf(src.call.Pos(), "%s.Body is never closed in this function and %s does not escape it; add defer %s.Body.Close()",
			src.obj.Name(), src.obj.Name(), src.obj.Name())
	}
}

// responseResult reports whether call returns an *http.Response and at
// which tuple index.
func responseResult(pass *Pass, call *ast.CallExpr) (int, bool) {
	t := pass.TypeOf(call)
	if t == nil {
		return 0, false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if namedIn(tup.At(i).Type(), "net/http") == "Response" {
				return i, true
			}
		}
		return 0, false
	}
	if namedIn(t, "net/http") == "Response" {
		return 0, true
	}
	return 0, false
}

// assignedObj resolves the variable the idx-th result of call is bound
// to in assign. The second result is false when the slot is the blank
// identifier or cannot be resolved.
func assignedObj(pass *Pass, assign *ast.AssignStmt, call *ast.CallExpr, idx int) (types.Object, bool) {
	if len(assign.Rhs) != 1 || assign.Rhs[0] != call || idx >= len(assign.Lhs) {
		return nil, false
	}
	id, ok := assign.Lhs[idx].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil, false
	}
	if obj := pass.ObjectOf(id); obj != nil {
		return obj, true
	}
	return nil, false
}

// closedOrEscapes scans fn's entire subtree (nested closures included —
// defer func() { resp.Body.Close() }() counts) for either a
// <obj>.Body.Close() call or an escape of obj.
func closedOrEscapes(pass *Pass, fn ast.Node, obj types.Object) bool {
	done := false
	walkStack(fn, func(n ast.Node, stack []ast.Node) {
		if done {
			return
		}
		id, ok := n.(*ast.Ident)
		if !ok || pass.ObjectOf(id) != obj {
			return
		}
		parent := parentNode(stack)
		if sel, ok := parent.(*ast.SelectorExpr); ok && sel.X == id {
			if sel.Sel.Name == "Body" && isCloseOn(stack, sel) {
				done = true
			}
			return // other field/method reads neither close nor escape
		}
		if escapesAt(id, parent) {
			done = true
		}
	})
	return done
}

// isCloseOn reports whether bodySel (resp.Body) is itself the receiver
// of a .Close() call: the grandparent must be a SelectorExpr selecting
// Close whose parent is a call.
func isCloseOn(stack []ast.Node, bodySel *ast.SelectorExpr) bool {
	if len(stack) < 2 {
		return false
	}
	outer, ok := stack[len(stack)-2].(*ast.SelectorExpr)
	if !ok || outer.X != bodySel || outer.Sel.Name != "Close" {
		return false
	}
	if len(stack) < 3 {
		return false
	}
	call, ok := stack[len(stack)-3].(*ast.CallExpr)
	return ok && call.Fun == outer
}

// escapesAt reports whether the identifier's immediate context hands
// the response to code outside the function: call argument, return
// value, reassignment, composite literal, channel send, or
// address-taking.
func escapesAt(id *ast.Ident, parent ast.Node) bool {
	switch p := parent.(type) {
	case *ast.CallExpr:
		for _, arg := range p.Args {
			if arg == id {
				return true
			}
		}
	case *ast.ReturnStmt:
		return true
	case *ast.AssignStmt:
		for _, rhs := range p.Rhs {
			if rhs == id {
				return true
			}
		}
	case *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt:
		return true
	case *ast.UnaryExpr:
		return true
	}
	return false
}

// parentNode returns the immediate parent from a walk stack.
func parentNode(stack []ast.Node) ast.Node {
	if len(stack) == 0 {
		return nil
	}
	return stack[len(stack)-1]
}

// enclosingFunc returns the innermost FuncDecl or FuncLit on the stack.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}
