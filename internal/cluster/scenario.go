package cluster

import (
	"fmt"

	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// DefaultDriftProb is the standard churn setup's traffic-drift
// probability. It lives here — not in WithDefaults — because a zero
// DriftProb legitimately means "no drift": callers with an
// absent-vs-zero distinction on the wire (the serve layer, the CLI flag
// default) apply it themselves.
const DefaultDriftProb = 0.35

// Scenario specifies one churning fleet workload. Everything the run
// does is a deterministic function of the scenario (given an Env), so a
// seed fully reproduces a comparison.
type Scenario struct {
	// NICs is the fleet size.
	NICs int `json:"nics"`
	// Arrivals is the total NF-arrival count in the stream.
	Arrivals int `json:"arrivals"`
	// Seed drives every random draw: the arrival stream and each
	// tenant's lifetime/drift schedule.
	Seed uint64 `json:"seed"`
	// NFs is the catalog pool arrivals draw from.
	NFs []string `json:"nfs"`
	// Profiles is the traffic-profile pool size: the default profile
	// plus random draws from the paper's attribute bounds.
	Profiles int `json:"profiles"`
	// MeanIAT is the mean inter-arrival time (exponential), seconds.
	MeanIAT float64 `json:"mean_iat"`
	// MeanLifetime is the mean tenant lifetime (exponential), seconds.
	// Lifetime/MeanIAT sets the steady-state load on the fleet.
	MeanLifetime float64 `json:"mean_lifetime"`
	// DriftProb is the probability a tenant's traffic profile drifts to
	// a new pool draw at a random point of its life.
	DriftProb float64 `json:"drift_prob"`
	// SLALo and SLAHi bound each arrival's SLA draw (max tolerated
	// throughput drop relative to solo).
	SLALo float64 `json:"sla_lo"`
	SLAHi float64 `json:"sla_hi"`
}

// WithDefaults fills unset scenario fields with the standard churn
// setup: a 16-NIC fleet at ~60% steady-state core load with a mixed
// memory/accelerator NF pool and the paper's placement SLA range.
func (sc Scenario) WithDefaults() Scenario {
	if sc.NICs <= 0 {
		sc.NICs = 16
	}
	if sc.Arrivals <= 0 {
		sc.Arrivals = 120
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	if len(sc.NFs) == 0 {
		sc.NFs = []string{"FlowStats", "ACL", "NAT", "FlowMonitor", "NIDS"}
	}
	if sc.Profiles <= 0 {
		sc.Profiles = 4
	}
	if sc.MeanIAT <= 0 {
		sc.MeanIAT = 1
	}
	if sc.MeanLifetime <= 0 {
		sc.MeanLifetime = 40
	}
	if sc.DriftProb < 0 {
		sc.DriftProb = 0
	}
	if sc.SLALo <= 0 {
		sc.SLALo = 0.05
	}
	if sc.SLAHi <= 0 {
		sc.SLAHi = 0.2
	}
	return sc
}

// Validate rejects scenarios the orchestrator cannot run.
func (sc Scenario) Validate() error {
	if len(sc.NFs) == 0 {
		return fmt.Errorf("cluster: scenario has no NF pool")
	}
	if sc.SLAHi < sc.SLALo {
		return fmt.Errorf("cluster: SLA range [%g, %g] is inverted", sc.SLALo, sc.SLAHi)
	}
	if sc.DriftProb > 1 {
		return fmt.Errorf("cluster: drift probability %g above 1", sc.DriftProb)
	}
	return nil
}

// ProfilePool returns the scenario's traffic-profile pool: the paper's
// default profile plus deterministic random draws. The pool is derived
// from the seed alone, so drift redraws and the arrival stream agree on
// it.
func (sc Scenario) ProfilePool() []traffic.Profile {
	rng := sim.NewRNG(sc.Seed ^ 0x70726f66696c6573) // "profiles"
	pool := []traffic.Profile{traffic.Default}
	for len(pool) < sc.Profiles {
		pool = append(pool, traffic.Random(rng))
	}
	return pool
}

// ArrivalEvent is one NF arrival in the stream.
type ArrivalEvent struct {
	Time   float64
	Tenant Tenant
}

// ArrivalStream generates the scenario's arrival sequence: exponential
// inter-arrival times, NFs and profiles drawn from the pools, SLAs from
// the scenario range. The stream depends only on the scenario, never on
// placement outcomes, so every policy replays the identical workload.
func (sc Scenario) ArrivalStream() []ArrivalEvent {
	rng := sim.NewRNG(sc.Seed)
	pool := sc.ProfilePool()
	events := make([]ArrivalEvent, 0, sc.Arrivals)
	now := 0.0
	for i := 0; i < sc.Arrivals; i++ {
		now += rng.Exp(sc.MeanIAT)
		events = append(events, ArrivalEvent{
			Time: now,
			Tenant: Tenant{
				ID: i,
				Arrival: placement.Arrival{
					Name:    sc.NFs[rng.Intn(len(sc.NFs))],
					Profile: pool[rng.Intn(len(pool))],
					SLA:     sc.SLALo + (sc.SLAHi-sc.SLALo)*rng.Float64(),
				},
			},
		})
	}
	return events
}

// tenantRNG derives tenant id's private random stream. Lifetime and
// drift draws come from here, so a tenant behaves identically under
// every policy that admits it, regardless of what else that policy
// placed.
func (sc Scenario) tenantRNG(id int) *sim.RNG {
	return sim.NewRNG(sc.Seed ^ (uint64(id)+1)*0x9e3779b97f4a7c15)
}
