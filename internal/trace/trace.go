// Package trace records and replays cluster workload streams as
// versioned JSONL files — the determinism seam of the fleet stack.
//
// A trace captures everything a comparison run consumes from the random
// stream: the scenario (fleet classes, pools, seed) and the complete
// per-tenant lifecycle schedule (arrival time, NF, profile, SLA,
// lifetime, optional drift). Replaying a trace through
// cluster.RunStream therefore reproduces a recorded run event for
// event, whatever scheduler refactors happened in between — the golden
// tests in this package pin exactly that.
//
// # Format
//
// Line 1 is the header: {"version":1,"kind":"yala-cluster-trace",
// "scenario":{...}}. Every following non-empty line is one tenant
// event in arrival order. Encoding is canonical (encoding/json with
// fixed field order, one object per line), so decode→encode is
// byte-identical — the property the round-trip tests assert.
package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/placement"
	"repro/internal/traffic"
)

// Version is the trace schema version this package writes. Decode
// rejects any other version: a reader must never silently misinterpret
// a future schema.
const Version = 1

// Kind tags the header so arbitrary JSONL files are not mistaken for
// traces.
const Kind = "yala-cluster-trace"

// Header is the first line of a trace file.
type Header struct {
	Version  int              `json:"version"`
	Kind     string           `json:"kind"`
	Scenario cluster.Scenario `json:"scenario"`
}

// profileJSON is a traffic profile on the trace wire, with explicit
// lowercase field names (traffic.Profile itself carries no tags and
// must stay decoupled from the schema).
type profileJSON struct {
	Flows   int     `json:"flows"`
	PktSize int     `json:"pktsize"`
	MTBR    float64 `json:"mtbr"`
}

func toProfileJSON(p traffic.Profile) profileJSON {
	return profileJSON{Flows: p.Flows, PktSize: p.PktSize, MTBR: p.MTBR}
}

func (p profileJSON) profile() traffic.Profile {
	return traffic.Profile{Flows: p.Flows, PktSize: p.PktSize, MTBR: p.MTBR}
}

// driftJSON is the optional drift leg of an event.
type driftJSON struct {
	At      float64     `json:"at"`
	Profile profileJSON `json:"profile"`
}

// Event is one tenant lifecycle line.
type Event struct {
	ID       int         `json:"id"`
	At       float64     `json:"at"`
	NF       string      `json:"nf"`
	Profile  profileJSON `json:"profile"`
	SLA      float64     `json:"sla"`
	Lifetime float64     `json:"lifetime"`
	Drift    *driftJSON  `json:"drift,omitempty"`
}

// toEvent projects a cluster tenant spec onto the wire.
func toEvent(s cluster.TenantSpec) Event {
	ev := Event{
		ID:       s.ID,
		At:       s.At,
		NF:       s.Name,
		Profile:  toProfileJSON(s.Profile),
		SLA:      s.SLA,
		Lifetime: s.Lifetime,
	}
	if s.DriftAt > 0 {
		ev.Drift = &driftJSON{At: s.DriftAt, Profile: toProfileJSON(s.DriftProfile)}
	}
	return ev
}

// spec reconstructs the cluster-facing form.
func (ev Event) spec() cluster.TenantSpec {
	s := cluster.TenantSpec{
		Tenant: cluster.Tenant{
			ID: ev.ID,
			Arrival: placement.Arrival{
				Name:    ev.NF,
				Profile: ev.Profile.profile(),
				SLA:     ev.SLA,
			},
		},
		At:       ev.At,
		Lifetime: ev.Lifetime,
	}
	if ev.Drift != nil {
		s.DriftAt = ev.Drift.At
		s.DriftProfile = ev.Drift.Profile.profile()
	}
	return s
}

// Trace is a decoded trace: the scenario and the full tenant stream.
type Trace struct {
	Scenario cluster.Scenario
	Stream   []cluster.TenantSpec
}

// Record generates the scenario's stream and writes the trace — the
// `yala trace record` core.
func Record(w io.Writer, sc cluster.Scenario) (Trace, error) {
	sc = sc.WithDefaults()
	if err := sc.Validate(); err != nil {
		return Trace{}, err
	}
	t := Trace{Scenario: sc, Stream: sc.Stream()}
	return t, Write(w, t)
}

// Write encodes a trace canonically: header line, then one event line
// per tenant in stream order.
func Write(w io.Writer, t Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(Header{Version: Version, Kind: Kind, Scenario: t.Scenario}); err != nil {
		return err
	}
	for _, s := range t.Stream {
		if err := enc.Encode(toEvent(s)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads and validates a trace. Malformed input — wrong version
// or kind, truncated lines, out-of-order or duplicated tenants,
// non-finite or out-of-range fields — returns an error naming the
// offending line; it never panics.
func Decode(r io.Reader) (Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return Trace{}, fmt.Errorf("trace: reading header: %w", err)
		}
		return Trace{}, fmt.Errorf("trace: empty input")
	}
	var hdr Header
	if err := strictUnmarshal(sc.Bytes(), &hdr); err != nil {
		return Trace{}, fmt.Errorf("trace: line 1: malformed header: %w", err)
	}
	if hdr.Kind != Kind {
		return Trace{}, fmt.Errorf("trace: line 1: kind %q, want %q", hdr.Kind, Kind)
	}
	if hdr.Version != Version {
		return Trace{}, fmt.Errorf("trace: line 1: unsupported version %d (this reader handles %d)", hdr.Version, Version)
	}
	if err := hdr.Scenario.WithDefaults().Validate(); err != nil {
		return Trace{}, fmt.Errorf("trace: line 1: %w", err)
	}
	t := Trace{Scenario: hdr.Scenario}
	line := 1
	lastAt := 0.0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var ev Event
		if err := strictUnmarshal(raw, &ev); err != nil {
			return Trace{}, fmt.Errorf("trace: line %d: malformed event: %w", line, err)
		}
		if err := ev.validate(); err != nil {
			return Trace{}, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if ev.ID != len(t.Stream) {
			return Trace{}, fmt.Errorf("trace: line %d: tenant ID %d out of order (want %d)", line, ev.ID, len(t.Stream))
		}
		if ev.At < lastAt {
			return Trace{}, fmt.Errorf("trace: line %d: arrival at %g before previous %g", line, ev.At, lastAt)
		}
		lastAt = ev.At
		t.Stream = append(t.Stream, ev.spec())
	}
	if err := sc.Err(); err != nil {
		return Trace{}, fmt.Errorf("trace: line %d: %w", line, err)
	}
	return t, nil
}

// validate applies the per-event schema rules.
func (ev Event) validate() error {
	if ev.NF == "" {
		return fmt.Errorf("event %d: missing nf", ev.ID)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"at", ev.At}, {"sla", ev.SLA}, {"lifetime", ev.Lifetime},
		{"profile.mtbr", ev.Profile.MTBR},
	} {
		if !finite(f.v) || f.v < 0 {
			return fmt.Errorf("event %d: %s %g must be finite and non-negative", ev.ID, f.name, f.v)
		}
	}
	if ev.SLA > 1 {
		return fmt.Errorf("event %d: sla %g above 1", ev.ID, ev.SLA)
	}
	if ev.Lifetime <= 0 {
		return fmt.Errorf("event %d: lifetime %g must be positive", ev.ID, ev.Lifetime)
	}
	if ev.Profile.Flows < 0 || ev.Profile.PktSize < 0 {
		return fmt.Errorf("event %d: negative profile attribute", ev.ID)
	}
	if ev.Drift != nil {
		if !finite(ev.Drift.At) || ev.Drift.At <= 0 {
			return fmt.Errorf("event %d: drift.at %g must be finite and positive", ev.ID, ev.Drift.At)
		}
		if !finite(ev.Drift.Profile.MTBR) || ev.Drift.Profile.MTBR < 0 ||
			ev.Drift.Profile.Flows < 0 || ev.Drift.Profile.PktSize < 0 {
			return fmt.Errorf("event %d: malformed drift profile", ev.ID)
		}
	}
	return nil
}

// finite reports whether v is neither NaN nor ±Inf (x != x catches NaN;
// the subtraction catches infinities without importing math).
func finite(v float64) bool {
	return v == v && v-v == 0
}

// strictUnmarshal decodes one JSON value, rejecting unknown fields and
// trailing garbage — schema drift must surface as an error, not be
// silently dropped.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err != io.EOF {
		return fmt.Errorf("trailing data after value")
	}
	return nil
}
