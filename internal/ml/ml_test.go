package ml

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestMAPEBasics(t *testing.T) {
	if got := MAPE([]float64{110, 90}, []float64{100, 100}); math.Abs(got-10) > 1e-9 {
		t.Fatalf("MAPE = %v, want 10", got)
	}
	if got := MAPE([]float64{1}, []float64{0}); got != 0 {
		t.Fatalf("MAPE with zero truth = %v", got)
	}
	if got := MAPE(nil, nil); got != 0 {
		t.Fatalf("MAPE empty = %v", got)
	}
}

func TestAccWithin(t *testing.T) {
	pred := []float64{100, 104, 111, 95}
	truth := []float64{100, 100, 100, 100}
	if got := AccWithin(pred, truth, 0.05); math.Abs(got-75) > 1e-9 {
		t.Fatalf("±5%% acc = %v, want 75", got)
	}
	if got := AccWithin(pred, truth, 0.10); math.Abs(got-75) > 1e-9 {
		t.Fatalf("±10%% acc = %v, want 75", got)
	}
	if got := AccWithin(pred, truth, 0.12); math.Abs(got-100) > 1e-9 {
		t.Fatalf("±12%% acc = %v, want 100", got)
	}
}

func TestAccWithinAtLeastAsLooseToleranceProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		truth := make([]float64, len(raw))
		pred := make([]float64, len(raw))
		for i, v := range raw {
			truth[i] = 100
			pred[i] = 100 + math.Mod(math.Abs(v), 50)
		}
		return AccWithin(pred, truth, 0.10) >= AccWithin(pred, truth, 0.05)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileAndMedian(t *testing.T) {
	v := []float64{5, 1, 3, 2, 4}
	if got := Median(v); got != 3 {
		t.Fatalf("median = %v", got)
	}
	if got := Quantile(v, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(v, 1); got != 5 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(v, 0.25); got != 2 {
		t.Fatalf("q25 = %v", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
	// Input must not be mutated.
	if v[0] != 5 {
		t.Fatal("Quantile mutated input")
	}
}

func TestRMSE(t *testing.T) {
	if got := RMSE([]float64{3, 5}, []float64{0, 1}); math.Abs(got-3.53553) > 1e-4 {
		t.Fatalf("RMSE = %v", got)
	}
}

func TestFitLinearRecoversCoefficients(t *testing.T) {
	rng := sim.NewRNG(1)
	var X [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		a, b := rng.Range(-5, 5), rng.Range(-5, 5)
		X = append(X, []float64{a, b})
		y = append(y, 3+2*a-7*b)
	}
	m, err := FitLinear(X, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Intercept-3) > 1e-6 || math.Abs(m.Coef[0]-2) > 1e-6 || math.Abs(m.Coef[1]+7) > 1e-6 {
		t.Fatalf("fit = %+v", m)
	}
}

func TestFitLinearNoisy(t *testing.T) {
	rng := sim.NewRNG(2)
	var X [][]float64
	var y []float64
	for i := 0; i < 2000; i++ {
		a := rng.Range(0, 10)
		X = append(X, []float64{a})
		y = append(y, 5+1.5*a+rng.Norm(0, 0.5))
	}
	m, err := FitLinear(X, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]-1.5) > 0.05 || math.Abs(m.Intercept-5) > 0.3 {
		t.Fatalf("noisy fit off: %+v", m)
	}
}

func TestFitLinearSingular(t *testing.T) {
	// Perfectly collinear features without ridge: singular.
	X := [][]float64{{1, 2}, {2, 4}, {3, 6}}
	y := []float64{1, 2, 3}
	if _, err := FitLinear(X, y, 0); err == nil {
		t.Fatal("expected singular-matrix error")
	}
	// Ridge rescues it.
	if _, err := FitLinear(X, y, 1e-6); err != nil {
		t.Fatalf("ridge fit failed: %v", err)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear(nil, nil, 0); err == nil {
		t.Fatal("expected error for empty fit")
	}
	if _, err := FitLinear([][]float64{{1}, {2, 3}}, []float64{1, 2}, 0); err == nil {
		t.Fatal("expected error for ragged rows")
	}
}

func TestTreeFitsStepFunction(t *testing.T) {
	var X [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		v := float64(i) / 20
		X = append(X, []float64{v})
		if v < 5 {
			y = append(y, 1)
		} else {
			y = append(y, 9)
		}
	}
	tree := FitTree(X, y, TreeConfig{MaxDepth: 3, MinLeaf: 2})
	if got := tree.Predict([]float64{2}); math.Abs(got-1) > 1e-9 {
		t.Fatalf("left leaf = %v", got)
	}
	if got := tree.Predict([]float64{8}); math.Abs(got-9) > 1e-9 {
		t.Fatalf("right leaf = %v", got)
	}
}

func TestTreeConstantTarget(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{5, 5, 5, 5}
	tree := FitTree(X, y, TreeConfig{MaxDepth: 5, MinLeaf: 1})
	if tree.Depth() != 0 {
		t.Fatalf("constant target grew depth %d", tree.Depth())
	}
	if got := tree.Predict([]float64{10}); got != 5 {
		t.Fatalf("predict = %v", got)
	}
}

func TestTreeRespectsMaxDepth(t *testing.T) {
	rng := sim.NewRNG(3)
	var X [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		v := rng.Range(0, 10)
		X = append(X, []float64{v})
		y = append(y, math.Sin(v)*rng.Range(0.5, 1.5))
	}
	tree := FitTree(X, y, TreeConfig{MaxDepth: 3, MinLeaf: 1})
	if d := tree.Depth(); d > 3 {
		t.Fatalf("depth %d exceeds max 3", d)
	}
}

func TestTreePicksInformativeFeature(t *testing.T) {
	rng := sim.NewRNG(4)
	var X [][]float64
	var y []float64
	for i := 0; i < 300; i++ {
		noise := rng.Range(0, 100)
		signal := rng.Range(0, 10)
		X = append(X, []float64{noise, signal})
		y = append(y, signal*signal)
	}
	tree := FitTree(X, y, TreeConfig{MaxDepth: 1, MinLeaf: 5})
	if tree.nodes[0].left < 0 {
		t.Fatal("no split found")
	}
	if tree.nodes[0].feature != 1 {
		t.Fatalf("split on feature %d, want informative feature 1", tree.nodes[0].feature)
	}
}

func TestGBRBeatsLinearOnNonlinear(t *testing.T) {
	rng := sim.NewRNG(5)
	target := func(x []float64) float64 {
		// Piecewise-linear with saturation, the shape memory contention
		// curves take.
		v := 100 - 8*math.Min(x[0], 6)
		return v * (1 + 0.05*x[1])
	}
	var train Dataset
	for i := 0; i < 800; i++ {
		x := []float64{rng.Range(0, 12), rng.Range(-1, 1)}
		train.Add(x, target(x)+rng.Norm(0, 0.5))
	}
	g, err := FitGBR(train.X, train.Y, DefaultGBRConfig())
	if err != nil {
		t.Fatal(err)
	}
	lin, err := FitLinear(train.X, train.Y, 0)
	if err != nil {
		t.Fatal(err)
	}
	var gbrPred, linPred, truth []float64
	for i := 0; i < 300; i++ {
		x := []float64{rng.Range(0, 12), rng.Range(-1, 1)}
		truth = append(truth, target(x))
		gbrPred = append(gbrPred, g.Predict(x))
		linPred = append(linPred, lin.Predict(x))
	}
	gm, lm := MAPE(gbrPred, truth), MAPE(linPred, truth)
	if gm >= lm {
		t.Fatalf("GBR MAPE %v not better than linear %v", gm, lm)
	}
	if gm > 3 {
		t.Fatalf("GBR MAPE %v too high on smooth target", gm)
	}
}

func TestGBRDeterministic(t *testing.T) {
	rng := sim.NewRNG(6)
	var X [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		v := rng.Range(0, 10)
		X = append(X, []float64{v})
		y = append(y, v*v)
	}
	cfg := DefaultGBRConfig()
	g1, err := FitGBR(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := FitGBR(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		x := []float64{float64(i) / 2}
		if g1.Predict(x) != g2.Predict(x) {
			t.Fatal("same seed, different predictions")
		}
	}
}

func TestGBRErrors(t *testing.T) {
	if _, err := FitGBR(nil, nil, DefaultGBRConfig()); err == nil {
		t.Fatal("expected error for empty fit")
	}
	cfg := DefaultGBRConfig()
	cfg.Trees = 0
	if _, err := FitGBR([][]float64{{1}}, []float64{1}, cfg); err == nil {
		t.Fatal("expected error for zero trees")
	}
	cfg = DefaultGBRConfig()
	cfg.LearningRate = 0
	if _, err := FitGBR([][]float64{{1}}, []float64{1}, cfg); err == nil {
		t.Fatal("expected error for zero learning rate")
	}
}

func TestDatasetSplit(t *testing.T) {
	var d Dataset
	for i := 0; i < 100; i++ {
		d.Add([]float64{float64(i)}, float64(i))
	}
	train, test := d.Split(0.8, sim.NewRNG(7))
	if train.Len() != 80 || test.Len() != 20 {
		t.Fatalf("split sizes %d/%d", train.Len(), test.Len())
	}
	seen := map[float64]bool{}
	for _, v := range append(append([]float64{}, train.Y...), test.Y...) {
		if seen[v] {
			t.Fatal("duplicate sample after split")
		}
		seen[v] = true
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDatasetValidate(t *testing.T) {
	d := Dataset{X: [][]float64{{1, 2}, {3}}, Y: []float64{1, 2}}
	if err := d.Validate(); err == nil {
		t.Fatal("expected ragged-row error")
	}
	d2 := Dataset{X: [][]float64{{1}}, Y: []float64{1, 2}}
	if err := d2.Validate(); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestDatasetAddCopies(t *testing.T) {
	var d Dataset
	x := []float64{1, 2}
	d.Add(x, 3)
	x[0] = 99
	if d.X[0][0] != 1 {
		t.Fatal("Add did not copy the feature vector")
	}
}

func TestDatasetMerge(t *testing.T) {
	var a, b Dataset
	a.Add([]float64{1}, 1)
	b.Add([]float64{2}, 2)
	a.Merge(&b)
	if a.Len() != 2 || a.Y[1] != 2 {
		t.Fatalf("merge failed: %+v", a)
	}
}
