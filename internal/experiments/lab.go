// Package experiments regenerates every table and figure of the paper's
// evaluation (§2's motivating figures and §7's results) on the simulated
// testbed. Each experiment returns a Report with the same rows/series the
// paper presents; EXPERIMENTS.md records a reference run against the
// paper's numbers.
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/nicsim"
	"repro/internal/slomo"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

// Lab is the shared experimental context: one testbed plus caches of
// trained Yala and SLOMO models, since several experiments reuse the same
// NF models.
type Lab struct {
	TB *testbed.Testbed
	// Scale trades experiment size for runtime: 1.0 runs the full
	// evaluation protocol, smaller values shrink sample counts
	// proportionally (minimums keep statistics meaningful).
	Scale float64
	Seed  uint64

	yala    map[string]*core.Model
	slomoM  map[string]*slomo.Model
	fixedTA map[string]*core.Model // traffic-agnostic ablation models
}

// NewLab returns a lab on the BlueField-2 preset.
func NewLab(seed uint64, scale float64) *Lab {
	return NewLabOn(nicsim.BlueField2(), seed, scale)
}

// NewLabOn returns a lab on an explicit NIC configuration (the Pensando
// generalization experiment uses this).
func NewLabOn(cfg nicsim.Config, seed uint64, scale float64) *Lab {
	if scale <= 0 {
		scale = 1
	}
	return &Lab{
		TB:      testbed.New(cfg, seed),
		Scale:   scale,
		Seed:    seed,
		yala:    map[string]*core.Model{},
		slomoM:  map[string]*slomo.Model{},
		fixedTA: map[string]*core.Model{},
	}
}

// n scales a full-protocol count, with a floor.
func (l *Lab) n(full, min int) int {
	v := int(float64(full) * l.Scale)
	if v < min {
		v = min
	}
	return v
}

// Yala returns the cached Yala model for an NF, training it on first use
// with the default (adaptive-profiling) configuration.
func (l *Lab) Yala(name string) (*core.Model, error) {
	if m, ok := l.yala[name]; ok {
		return m, nil
	}
	cfg := core.DefaultTrainConfig()
	cfg.Seed = l.Seed
	m, err := core.NewTrainer(l.TB, cfg).Train(name)
	if err != nil {
		return nil, fmt.Errorf("experiments: training yala/%s: %w", name, err)
	}
	l.yala[name] = m
	return m, nil
}

// SLOMO returns the cached SLOMO baseline model for an NF, trained at the
// default traffic profile.
func (l *Lab) SLOMO(name string) (*slomo.Model, error) {
	if m, ok := l.slomoM[name]; ok {
		return m, nil
	}
	cfg := slomo.DefaultConfig()
	cfg.Seed = l.Seed
	m, err := slomo.Train(l.TB, name, traffic.Default, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: training slomo/%s: %w", name, err)
	}
	l.slomoM[name] = m
	return m, nil
}

// soloAt returns the NF's measured solo throughput at a profile (SLOMO's
// extrapolation input).
func (l *Lab) soloAt(name string, prof traffic.Profile) (float64, error) {
	m, err := l.TB.SoloNF(name, prof)
	if err != nil {
		return 0, err
	}
	return m.Throughput, nil
}
