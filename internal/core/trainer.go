package core

import (
	"fmt"
	"math"

	"repro/internal/ml"
	"repro/internal/nf"
	"repro/internal/nfbench"
	"repro/internal/nicsim"
	"repro/internal/profiling"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

// Model is a trained Yala model for one NF: a solo-throughput model, a
// memory contention model, per-accelerator queueing models, and the
// detected execution pattern.
type Model struct {
	Name    string
	Pattern nicsim.ExecPattern
	Solo    *SoloModel
	Mem     *MemModel
	Accels  map[nicsim.AccelKind]*AccelModel
}

// TrainConfig tunes offline training.
type TrainConfig struct {
	// Plan is the profiling plan for memory-contention sampling. Nil
	// selects a random plan of DefaultMemSamples.
	Plan *profiling.Plan
	// GBR configures the black-box models.
	GBR ml.GBRConfig
	// AccelAttrPoints are the attribute values (MTBR for regex, packet
	// size for compression) swept during accelerator calibration.
	AccelAttrPoints []float64
	// PatternProbes is the number of combined-contention co-runs used to
	// detect the execution pattern.
	PatternProbes int
	// TrafficAware toggles §5's traffic augmentation (Yala: true; the
	// fixed-traffic ablation: false).
	TrafficAware bool
	// Seed drives sampling randomness.
	Seed uint64
}

// DefaultMemSamples is the default random-plan quota.
const DefaultMemSamples = 800

// DefaultTrainConfig returns Yala's standard training setup.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		GBR:             ml.DefaultGBRConfig(),
		AccelAttrPoints: nil, // chosen per accelerator kind at train time
		PatternProbes:   3,
		TrafficAware:    true,
		Seed:            1,
	}
}

// Trainer fits Yala models against a testbed.
type Trainer struct {
	TB  *testbed.Testbed
	Cfg TrainConfig
}

// WorkloadSource supplies the hardware workload of the NF under training
// at a given traffic profile. Catalog NFs use the testbed's measured
// footprints; synthetic NFs (NF1/NF2 of the composition experiments)
// supply theirs directly.
type WorkloadSource func(traffic.Profile) (*nicsim.Workload, error)

// NewTrainer returns a trainer.
func NewTrainer(tb *testbed.Testbed, cfg TrainConfig) *Trainer {
	return &Trainer{TB: tb, Cfg: cfg}
}

// benchCalib holds measured regex-/compression-bench parameters.
type benchCalib struct {
	serviceSec float64
	queues     float64
	bytesPer   float64
	attrValue  float64 // the bench's own attribute (MTBR) during calibration
}

// Train profiles the named catalog NF and fits its Yala model (§3's
// offline phase): solo sweeps, mem-bench co-runs for the memory model,
// saturated regex-/compression-bench co-runs for the accelerator models,
// and combined probes for execution-pattern detection.
func (tr *Trainer) Train(name string) (*Model, error) {
	src := func(p traffic.Profile) (*nicsim.Workload, error) {
		return tr.TB.Workload(name, p)
	}
	return tr.TrainSource(name, src, nf.UsesAccelerator(name))
}

// TrainSource is Train for an explicit workload source and accelerator
// list.
func (tr *Trainer) TrainSource(name string, src WorkloadSource, accels []nicsim.AccelKind) (*Model, error) {
	plan := tr.Cfg.Plan
	if plan == nil {
		var err error
		plan, err = tr.AdaptivePlanSource(src, profiling.DefaultConfig(DefaultMemSamples))
		if err != nil {
			return nil, err
		}
	}

	model := &Model{Name: name, Accels: map[nicsim.AccelKind]*AccelModel{}}

	// Solo model: reuse the plan's solo observations and add the
	// distinct contended-sample profiles.
	soloSamples, soloCache, err := tr.soloSamples(src, plan)
	if err != nil {
		return nil, err
	}
	model.Solo, err = FitSoloModel(soloSamples, tr.Cfg.GBR)
	if err != nil {
		return nil, err
	}

	// Memory model from the plan's contended samples plus zero-contention
	// anchors (the solo observations with empty competitor counters), so
	// the model is well-behaved at and near no contention.
	memSamples, err := tr.memSamples(src, plan, soloCache)
	if err != nil {
		return nil, err
	}
	for _, s := range soloSamples {
		memSamples = append(memSamples, MemSample{
			Profile:        s.Profile,
			Throughput:     s.Throughput,
			SoloThroughput: s.Throughput,
		})
	}
	model.Mem, err = FitMemModel(memSamples, tr.Cfg.TrafficAware, tr.Cfg.GBR)
	if err != nil {
		return nil, err
	}

	// Accelerator models.
	for _, kind := range accels {
		am, err := tr.fitAccel(src, kind)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %v accelerator: %w", name, kind, err)
		}
		model.Accels[kind] = am
	}

	// Execution pattern: detected from combined-contention probes for
	// multi-resource NFs; single-resource NFs default to
	// run-to-completion (composition is degenerate for them anyway).
	if len(model.Accels) > 0 {
		pattern, err := tr.detectPattern(src, soloCache)
		if err != nil {
			return nil, err
		}
		model.Pattern = pattern
	} else {
		model.Pattern = nicsim.RunToCompletion
	}
	return model, nil
}

// AdaptivePlan runs the paper's Algorithm 1 against the testbed: the solo
// oracle is a solo run of the NF at each probed profile.
func (tr *Trainer) AdaptivePlan(name string, cfg profiling.Config) (*profiling.Plan, error) {
	return tr.AdaptivePlanSource(func(p traffic.Profile) (*nicsim.Workload, error) {
		return tr.TB.Workload(name, p)
	}, cfg)
}

// AdaptivePlanSource is AdaptivePlan for an explicit workload source.
func (tr *Trainer) AdaptivePlanSource(src WorkloadSource, cfg profiling.Config) (*profiling.Plan, error) {
	return profiling.Adaptive(func(p traffic.Profile) (float64, error) {
		w, err := src(p)
		if err != nil {
			return 0, err
		}
		m, err := tr.TB.RunSolo(w)
		if err != nil {
			return 0, err
		}
		return m.Throughput, nil
	}, cfg)
}

// soloSamples measures solo throughput at every profile the plan touches.
func (tr *Trainer) soloSamples(src WorkloadSource, plan *profiling.Plan) ([]SoloSample, map[traffic.Profile]float64, error) {
	cache := map[traffic.Profile]float64{}
	var samples []SoloSample
	add := func(p traffic.Profile) error {
		if _, ok := cache[p]; ok {
			return nil
		}
		w, err := src(p)
		if err != nil {
			return err
		}
		m, err := tr.TB.RunSolo(w)
		if err != nil {
			return err
		}
		cache[p] = m.Throughput
		samples = append(samples, SoloSample{Profile: p, Throughput: m.Throughput})
		return nil
	}
	for _, o := range plan.SoloObs {
		if _, ok := cache[o.Profile]; !ok {
			cache[o.Profile] = o.Throughput
			samples = append(samples, SoloSample{Profile: o.Profile, Throughput: o.Throughput})
		}
	}
	if err := add(traffic.Default); err != nil {
		return nil, nil, err
	}
	for _, s := range plan.Samples {
		if err := add(s.Profile); err != nil {
			return nil, nil, err
		}
	}
	return samples, cache, nil
}

// memSamples collects the plan's contended measurements. The feature
// counters come from a solo run of the contention generator at the same
// level — the same offline-profile representation the online predictor
// receives for real competitors, keeping train and test feature
// distributions aligned.
func (tr *Trainer) memSamples(src WorkloadSource, plan *profiling.Plan, soloCache map[traffic.Profile]float64) ([]MemSample, error) {
	var samples []MemSample
	for _, spec := range plan.Samples {
		w, err := src(spec.Profile)
		if err != nil {
			return nil, err
		}
		bench := nfbench.MemBench(spec.Contention.CAR, spec.Contention.WSS)
		benchSolo, err := tr.TB.RunSolo(bench)
		if err != nil {
			return nil, err
		}
		m, err := tr.TB.WithMemBench(w, spec.Contention.CAR, spec.Contention.WSS)
		if err != nil {
			return nil, err
		}
		solo, ok := soloCache[spec.Profile]
		if !ok || solo <= 0 {
			return nil, fmt.Errorf("core: missing solo baseline for %v", spec.Profile)
		}
		samples = append(samples, MemSample{
			Competitors:    benchSolo.Counters,
			Profile:        spec.Profile,
			Throughput:     m.Throughput,
			SoloThroughput: solo,
		})
	}
	return samples, nil
}

// calibrateBench measures a synthetic bench's true per-request service
// time by running it saturated and alone.
func (tr *Trainer) calibrateBench(kind nicsim.AccelKind) (benchCalib, error) {
	const (
		benchBytes = 1000
		benchMTBR  = 2000 // high match rate per §4.1.1's estimation setup
	)
	var w *nicsim.Workload
	switch kind {
	case nicsim.AccelCompress:
		w = nfbench.CompressBench(1e9, benchBytes, 1)
	default:
		w = nfbench.RegexBench(1e9, benchBytes, benchMTBR, 1)
	}
	m, err := tr.TB.RunSolo(w)
	if err != nil {
		return benchCalib{}, err
	}
	st, ok := m.AccelStats[kind]
	if !ok || st.RequestRate <= 0 {
		return benchCalib{}, fmt.Errorf("core: bench calibration produced no %v completions", kind)
	}
	return benchCalib{
		serviceSec: 1 / st.RequestRate,
		queues:     1,
		bytesPer:   benchBytes,
		attrValue:  benchMTBR,
	}, nil
}

// fitAccel runs the §4.1.1 estimation procedure for one accelerator.
func (tr *Trainer) fitAccel(src WorkloadSource, kind nicsim.AccelKind) (*AccelModel, error) {
	attr := AttrFor(kind)
	points := tr.Cfg.AccelAttrPoints
	if len(points) == 0 {
		switch attr {
		case traffic.AttrPktSize:
			points = []float64{128, 512, 1024, 1500}
		default:
			points = []float64{100, 400, 700, 1000}
		}
	}
	calib, err := tr.calibrateBench(kind)
	if err != nil {
		return nil, err
	}
	var samples []AccelSample
	var reqsPerPkt float64
	for _, v := range points {
		prof := traffic.Default.With(attr, v)
		w, err := src(prof)
		if err != nil {
			return nil, err
		}
		u, ok := w.Accel[kind]
		if !ok {
			return nil, fmt.Errorf("core: workload %s does not use %v at %v", w.Name, kind, prof)
		}
		reqsPerPkt = u.ReqsPerPkt
		var bench *nicsim.Workload
		if kind == nicsim.AccelCompress {
			bench = nfbench.CompressBench(1e9, calib.bytesPer, 1)
		} else {
			bench = nfbench.RegexBench(1e9, calib.bytesPer, calib.attrValue, 1)
		}
		ms, err := tr.TB.Run(w, bench)
		if err != nil {
			return nil, err
		}
		tst, ok1 := ms[0].AccelStats[kind]
		bst, ok2 := ms[1].AccelStats[kind]
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("core: calibration co-run missing %v stats", kind)
		}
		samples = append(samples, AccelSample{
			Attr:            v,
			TargetRate:      tst.RequestRate,
			BenchRate:       bst.RequestRate,
			BenchServiceSec: calib.serviceSec,
			BenchQueues:     calib.queues,
		})
	}
	return FitAccelModel(samples, attr, reqsPerPkt)
}

// detectPattern probes combined contention and picks the composition that
// explains the measurements best (§4.2's testing procedure).
func (tr *Trainer) detectPattern(src WorkloadSource, soloCache map[traffic.Profile]float64) (nicsim.ExecPattern, error) {
	w, err := src(traffic.Default)
	if err != nil {
		return 0, err
	}
	solo, ok := soloCache[traffic.Default]
	if !ok {
		m, err := tr.TB.RunSolo(w)
		if err != nil {
			return 0, err
		}
		solo = m.Throughput
	}

	rng := sim.NewRNG(tr.Cfg.Seed ^ 0xbeef)
	probes := tr.Cfg.PatternProbes
	if probes <= 0 {
		probes = 3
	}
	// Probe in the linear (non-saturated) contention regime: at deep
	// accelerator saturation every NF degenerates to its round-robin
	// share and the two composition laws coincide, so only moderate
	// contention discriminates them.
	var obs []PatternObservation
	b := testbed.MemContentionBounds
	for i := 0; i < probes; i++ {
		car := rng.Range(b.CARHi/6, b.CARHi/2)
		wss := rng.Range(b.WSSHi/4, b.WSSHi/2)
		regexRate := rng.Range(0.25e6, 0.5e6)

		memOnly, err := tr.TB.WithMemBench(w, car, wss)
		if err != nil {
			return 0, err
		}
		bench := nfbench.RegexBench(regexRate, 1000, 2000, 1)
		accOnly, err := tr.TB.Run(w, bench)
		if err != nil {
			return 0, err
		}
		both, err := tr.TB.Run(w, nfbench.MemBench(car, wss), bench)
		if err != nil {
			return 0, err
		}
		obs = append(obs, PatternObservation{
			SoloT: solo,
			Drops: []float64{
				math.Max(0, solo-memOnly.Throughput),
				math.Max(0, solo-accOnly[0].Throughput),
			},
			Measured: both[0].Throughput,
		})
	}
	return DetectPattern(obs), nil
}
