package packet

import (
	"testing"
	"testing/quick"
)

func tuple() FiveTuple {
	return FiveTuple{
		SrcIP: 0x0a000001, DstIP: 0x0a000002,
		SrcPort: 1234, DstPort: 80, Proto: ProtoTCP,
	}
}

func TestBuildParseRoundTrip(t *testing.T) {
	payload := []byte("hello on-nic world")
	p := Build(tuple(), 128, payload)
	if p.Len() != 128 {
		t.Fatalf("len %d, want 128", p.Len())
	}
	q := &Packet{Data: p.Data}
	if err := q.Parse(); err != nil {
		t.Fatal(err)
	}
	if q.Tuple != tuple() {
		t.Fatalf("tuple %v, want %v", q.Tuple, tuple())
	}
	got := string(q.Payload()[:len(payload)])
	if got != string(payload) {
		t.Fatalf("payload %q, want %q", got, payload)
	}
}

func TestBuildUDP(t *testing.T) {
	tp := tuple()
	tp.Proto = ProtoUDP
	p := Build(tp, 64, nil)
	q := &Packet{Data: p.Data}
	if err := q.Parse(); err != nil {
		t.Fatal(err)
	}
	if q.Tuple.Proto != ProtoUDP {
		t.Fatalf("proto %d, want UDP", q.Tuple.Proto)
	}
	if q.PayloadOff != EthHeaderLen+IPv4HeaderLen+UDPHeaderLen {
		t.Fatalf("payload offset %d", q.PayloadOff)
	}
}

func TestBuildChecksumValid(t *testing.T) {
	p := Build(tuple(), 256, nil)
	if !p.VerifyIPChecksum() {
		t.Fatal("fresh packet has invalid IP checksum")
	}
}

func TestSetDstIPFixesChecksum(t *testing.T) {
	p := Build(tuple(), 128, nil)
	p.SetDstIP(0xc0a80101)
	if !p.VerifyIPChecksum() {
		t.Fatal("checksum invalid after SetDstIP")
	}
	q := &Packet{Data: p.Data}
	if err := q.Parse(); err != nil {
		t.Fatal(err)
	}
	if q.Tuple.DstIP != 0xc0a80101 {
		t.Fatalf("dst %x", q.Tuple.DstIP)
	}
}

func TestSetSrcIPFixesChecksum(t *testing.T) {
	p := Build(tuple(), 128, nil)
	p.SetSrcIP(0xc0a80105)
	if !p.VerifyIPChecksum() {
		t.Fatal("checksum invalid after SetSrcIP")
	}
}

func TestDecTTL(t *testing.T) {
	p := Build(tuple(), 128, nil)
	for i := 0; i < 63; i++ {
		if !p.DecTTL() {
			t.Fatalf("TTL exhausted after %d decrements", i+1)
		}
		if !p.VerifyIPChecksum() {
			t.Fatal("checksum invalid after DecTTL")
		}
	}
	if p.DecTTL() {
		t.Fatal("expected TTL exhaustion at 64th decrement")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short", make([]byte, 10)},
		{"non-ipv4", func() []byte {
			d := Build(tuple(), 64, nil).Data
			d[12], d[13] = 0x86, 0xdd // IPv6 ethertype
			return d
		}()},
		{"bad-version", func() []byte {
			d := Build(tuple(), 64, nil).Data
			d[EthHeaderLen] = 0x65
			return d
		}()},
		{"bad-proto", func() []byte {
			d := Build(tuple(), 64, nil).Data
			d[EthHeaderLen+9] = 47 // GRE
			return d
		}()},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := &Packet{Data: c.data}
			if err := p.Parse(); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestBuildPanicsOnTinySize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build(tuple(), 10, nil)
}

func TestHashDistinguishesTuples(t *testing.T) {
	a := tuple()
	b := a
	b.SrcPort++
	if a.Hash() == b.Hash() {
		t.Fatal("hash collision on adjacent tuples")
	}
}

func TestHashDeterministic(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, proto uint8) bool {
		tp := FiveTuple{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp, Proto: proto}
		return tp.Hash() == tp.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, udp bool, extra uint8) bool {
		tp := FiveTuple{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp, Proto: ProtoTCP}
		if udp {
			tp.Proto = ProtoUDP
		}
		size := 64 + int(extra)
		p := Build(tp, size, []byte("x"))
		q := &Packet{Data: p.Data}
		if err := q.Parse(); err != nil {
			return false
		}
		return q.Tuple == tp && q.Len() == size && q.VerifyIPChecksum()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTupleString(t *testing.T) {
	s := tuple().String()
	if s != "10.0.0.1:1234->10.0.0.2:80/6" {
		t.Fatalf("String() = %q", s)
	}
}
