package core

import (
	"testing"

	"repro/internal/nfbench"
	"repro/internal/nicsim"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

func quickTrainConfig() TrainConfig {
	cfg := DefaultTrainConfig()
	cfg.PatternProbes = 2
	return cfg
}

func trainModel(t *testing.T, tb *testbed.Testbed, name string) *Model {
	t.Helper()
	m, err := NewTrainer(tb, quickTrainConfig()).Train(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTrainFlowStatsPredictsMemContention(t *testing.T) {
	tb := testbed.New(nicsim.BlueField2(), 11)
	model := trainModel(t, tb, "FlowStats")

	if len(model.Accels) != 0 {
		t.Fatal("FlowStats should have no accelerator models")
	}

	// Held-out contention levels at the default profile.
	w, err := tb.Workload("FlowStats", traffic.Default)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for _, c := range []testbed.MemContention{
		{CAR: 40e6, WSS: 2 << 20},
		{CAR: 120e6, WSS: 8 << 20},
		{CAR: 200e6, WSS: 14 << 20},
	} {
		truth, err := tb.WithMemBench(w, c.CAR, c.WSS)
		if err != nil {
			t.Fatal(err)
		}
		comp := CompetitorFromMeasurement(truthCompetitor(tb, t, c))
		pred := model.Predict(traffic.Default, []Competitor{comp})
		rel := rel(pred.Throughput, truth.Throughput)
		if rel > worst {
			worst = rel
		}
	}
	if worst > 0.15 {
		t.Fatalf("worst relative error %.1f%% above 15%%", worst*100)
	}
}

// truthCompetitor measures mem-bench solo so the predictor sees its
// counters (the operator's offline profile of the contender).
func truthCompetitor(tb *testbed.Testbed, t *testing.T, c testbed.MemContention) nicsim.Measurement {
	t.Helper()
	m, err := tb.RunSolo(nfbench.MemBench(c.CAR, c.WSS))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func rel(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / b
}

func TestTrainFlowMonitorHasRegexModelAndPattern(t *testing.T) {
	tb := testbed.New(nicsim.BlueField2(), 12)
	model := trainModel(t, tb, "FlowMonitor")

	am, ok := model.Accels[nicsim.AccelRegex]
	if !ok {
		t.Fatal("FlowMonitor missing regex model")
	}
	if am.T0 <= 0 || am.A <= 0 {
		t.Fatalf("implausible regex fit: t0=%v a=%v", am.T0, am.A)
	}
	if am.Queues != 2 {
		t.Fatalf("queues = %v, want 2 (one per worker core)", am.Queues)
	}
	if model.Pattern != nicsim.Pipeline {
		t.Fatalf("pattern = %v, want pipeline", model.Pattern)
	}
	// Service time must grow with MTBR and predict lower stage rates.
	if am.SoloPacketRate(1000) >= am.SoloPacketRate(100) {
		t.Fatal("regex stage rate should fall with MTBR")
	}
}

func TestTrainNIDSPatternRTC(t *testing.T) {
	tb := testbed.New(nicsim.BlueField2(), 13)
	model := trainModel(t, tb, "NIDS")
	if _, ok := model.Accels[nicsim.AccelRegex]; !ok {
		t.Fatal("NIDS missing regex model")
	}
	if model.Pattern != nicsim.RunToCompletion {
		t.Fatalf("pattern = %v, want run-to-completion", model.Pattern)
	}
}

func TestPredictMultiResourceContention(t *testing.T) {
	tb := testbed.New(nicsim.BlueField2(), 14)
	model := trainModel(t, tb, "FlowMonitor")

	w, err := tb.Workload("FlowMonitor", traffic.Default)
	if err != nil {
		t.Fatal(err)
	}
	memB := nfbench.MemBench(100e6, 8<<20)
	regexB := nfbench.RegexBench(1e6, 1000, 2000, 1)

	truth, err := tb.Run(w, memB, regexB)
	if err != nil {
		t.Fatal(err)
	}
	memSolo, err := tb.RunSolo(memB)
	if err != nil {
		t.Fatal(err)
	}
	regexSolo, err := tb.RunSolo(regexB)
	if err != nil {
		t.Fatal(err)
	}
	pred := model.Predict(traffic.Default, []Competitor{
		CompetitorFromMeasurement(memSolo),
		CompetitorFromMeasurement(regexSolo),
	})
	if e := rel(pred.Throughput, truth[0].Throughput); e > 0.2 {
		t.Fatalf("multi-resource prediction error %.1f%% (pred %.0f truth %.0f)",
			e*100, pred.Throughput, truth[0].Throughput)
	}
	if pred.PerResource[nicsim.ResMemory] <= 0 || pred.PerResource[nicsim.ResRegex] <= 0 {
		t.Fatalf("per-resource breakdown missing: %+v", pred.PerResource)
	}
}

func TestPredictTrafficAwareness(t *testing.T) {
	tb := testbed.New(nicsim.BlueField2(), 15)
	model := trainModel(t, tb, "FlowStats")

	// Solo prediction should fall as flow count rises well past the LLC.
	lo := model.Solo.Predict(traffic.Default.With(traffic.AttrFlows, 4000))
	hi := model.Solo.Predict(traffic.Default.With(traffic.AttrFlows, 400000))
	if hi >= lo {
		t.Fatalf("solo model insensitive to flows: %v vs %v", lo, hi)
	}
}

func TestPredictNoCompetitors(t *testing.T) {
	tb := testbed.New(nicsim.BlueField2(), 16)
	model := trainModel(t, tb, "FlowStats")
	pred := model.Predict(traffic.Default, nil)
	if rel(pred.Throughput, pred.Solo) > 0.1 {
		t.Fatalf("no-contention prediction %v far from solo %v", pred.Throughput, pred.Solo)
	}
}

func TestPredictWithCompositionBaselines(t *testing.T) {
	tb := testbed.New(nicsim.BlueField2(), 17)
	model := trainModel(t, tb, "FlowMonitor")
	comp := Competitor{Counters: nicsim.Counters{L2CRD: 70e6, L2CWR: 30e6, MEMRD: 20e6, MEMWR: 9e6, WSS: 8 << 20}}
	sum := model.PredictWith(ComposeSum, traffic.Default, []Competitor{comp})
	min := model.PredictWith(ComposeMin, traffic.Default, []Competitor{comp})
	if sum.Throughput > min.Throughput {
		t.Fatalf("sum composition %v should not exceed min %v", sum.Throughput, min.Throughput)
	}
}
