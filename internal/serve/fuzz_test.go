package serve

import (
	"encoding/json"
	"testing"
)

// FuzzProfileSpecValidate drives arbitrary JSON through the wire-profile
// pipeline: decoding, validation and resolution must never panic, and
// any spec that validates must resolve to a profile that round-trips
// through SpecOf exactly (the property the cache keys and trace schema
// rely on).
func FuzzProfileSpecValidate(f *testing.F) {
	for _, seed := range []string{
		`{}`,
		`{"flows":16000,"pktsize":1500,"mtbr":600}`,
		`{"flows":-1}`,
		`{"pktsize":9217}`,
		`{"mtbr":0}`,
		`{"mtbr":1e300}`,
		`{"flows":1000000,"pktsize":9216,"mtbr":100000}`,
		`{"mtbr":null}`,
		`[1,2]`,
		`"nope"`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var spec ProfileSpec
		if err := json.Unmarshal(data, &spec); err != nil {
			return
		}
		if err := spec.validate(); err != nil {
			return
		}
		prof := spec.Profile()
		// Resolved profiles are fixed points: converting back to the wire
		// form and resolving again must be the identity.
		if got := SpecOf(prof).Profile(); got != prof {
			t.Fatalf("SpecOf/Profile is not identity: %+v → %+v", prof, got)
		}
		// A valid spec resolves inside the validated bounds (or to the
		// defaults for absent attributes).
		if prof.Flows <= 0 || prof.PktSize <= 0 || prof.MTBR < 0 {
			t.Fatalf("validated spec %+v resolved out of bounds: %+v", spec, prof)
		}
	})
}

// FuzzAdmitRequestValidate covers the composite request validator the
// admission path runs before any simulation: arbitrary JSON must never
// panic it.
func FuzzAdmitRequestValidate(f *testing.F) {
	for _, seed := range []string{
		`{"candidate":{"name":"FlowStats","sla":0.1}}`,
		`{"residents":[{"name":"ACL","sla":2}],"candidate":{"name":"NIDS","sla":0.1}}`,
		`{"candidate":{"name":"","sla":-1},"backend":"slomo"}`,
		`{"backend":"wat"}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var req AdmitRequest
		if err := json.Unmarshal(data, &req); err != nil {
			return
		}
		_ = req.validate()
	})
}
