package patmatch

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func mustCompile(t *testing.T, pats ...string) *Matcher {
	t.Helper()
	m, err := Compile(pats)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// naiveCount is the reference implementation: overlapping substring counts.
func naiveCount(pats []string, data []byte) int {
	total := 0
	s := string(data)
	for _, p := range pats {
		for i := 0; i+len(p) <= len(s); i++ {
			if s[i:i+len(p)] == p {
				total++
			}
		}
	}
	return total
}

func TestCountSimple(t *testing.T) {
	m := mustCompile(t, "he", "she", "his", "hers")
	if got := m.Count([]byte("ushers")); got != 3 { // she, he, hers
		t.Fatalf("Count = %d, want 3", got)
	}
}

func TestCountOverlapping(t *testing.T) {
	m := mustCompile(t, "aa")
	if got := m.Count([]byte("aaaa")); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
}

func TestCountNoMatch(t *testing.T) {
	m := mustCompile(t, "needle")
	if got := m.Count([]byte("haystack without it")); got != 0 {
		t.Fatalf("Count = %d, want 0", got)
	}
}

func TestCountEmptyData(t *testing.T) {
	m := mustCompile(t, "x")
	if got := m.Count(nil); got != 0 {
		t.Fatalf("Count(nil) = %d", got)
	}
}

func TestDuplicatePatternsCountTwice(t *testing.T) {
	m := mustCompile(t, "ab", "ab")
	if got := m.Count([]byte("ab")); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
}

func TestPatternIsSuffixOfAnother(t *testing.T) {
	m := mustCompile(t, "abcd", "bcd", "cd", "d")
	if got := m.Count([]byte("abcd")); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
}

func TestContains(t *testing.T) {
	m := mustCompile(t, "GET ", "POST ")
	if !m.Contains([]byte("GET /index.html")) {
		t.Fatal("Contains missed a match")
	}
	if m.Contains([]byte("OPTIONS /")) {
		t.Fatal("Contains false positive")
	}
}

func TestEmptyPatternRejected(t *testing.T) {
	if _, err := Compile([]string{"a", ""}); err == nil {
		t.Fatal("expected error for empty pattern")
	}
}

func TestCountMatchesNaive(t *testing.T) {
	pats := []string{"ab", "abc", "bca", "c", "cab"}
	m := mustCompile(t, pats...)
	inputs := []string{
		"", "a", "abc", "abcabcabc", "cccc", "bcabca",
		"xxabcxxcabxx", strings.Repeat("abc", 100),
	}
	for _, in := range inputs {
		want := naiveCount(pats, []byte(in))
		if got := m.Count([]byte(in)); got != want {
			t.Fatalf("Count(%q) = %d, want %d", in, got, want)
		}
	}
}

func TestCountPropertyVsNaive(t *testing.T) {
	pats := []string{"ab", "ba", "aab", "bbb", "abab"}
	m := mustCompile(t, pats...)
	f := func(raw []byte) bool {
		// Restrict alphabet to {a,b} to make matches frequent.
		data := make([]byte, len(raw))
		for i, b := range raw {
			data[i] = 'a' + b%2
		}
		return m.Count(data) == naiveCount(pats, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMTBR(t *testing.T) {
	m := mustCompile(t, "zz")
	data := bytes.Repeat([]byte("zzx"), 1000) // 1000 non-overlapping zz in 3000 bytes
	got := m.MTBR(data)
	want := 1000.0 / 3000.0 * 1e6
	if got != want {
		t.Fatalf("MTBR = %v, want %v", got, want)
	}
	if m.MTBR(nil) != 0 {
		t.Fatal("MTBR(nil) != 0")
	}
}

func TestBinaryPatterns(t *testing.T) {
	m := mustCompile(t, "\x16\x03\x01", "\x00\x00")
	data := []byte{0x16, 0x03, 0x01, 0x00, 0x00, 0x00}
	// one TLS match + two overlapping 0x0000 matches
	if got := m.Count(data); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
}

func TestDefaultRulesetCompiles(t *testing.T) {
	m := CompileDefault()
	if m.NumPatterns() != len(DefaultRules) {
		t.Fatalf("NumPatterns = %d, want %d", m.NumPatterns(), len(DefaultRules))
	}
	if m.NumStates() < 10 {
		t.Fatalf("suspiciously small automaton: %d states", m.NumStates())
	}
	if got := m.Count([]byte("GET /index HTTP/1.1\r\nHost: example\r\n")); got < 3 {
		t.Fatalf("default rules matched %d times, want >=3", got)
	}
}

func BenchmarkCount1500B(b *testing.B) {
	m := CompileDefault()
	payload := bytes.Repeat([]byte("GET /x HTTP/1.1 filler filler "), 50)[:1460]
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Count(payload)
	}
}
