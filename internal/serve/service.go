package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backend"
	"repro/internal/cluster"
	"repro/internal/feedback"
	"repro/internal/nicsim"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/tenant"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

// ServiceConfig tunes a Service.
type ServiceConfig struct {
	Registry RegistryConfig
	// Workers bounds concurrent prediction work; default GOMAXPROCS.
	Workers int
	// QueueDepth is the pending-request backlog before submitters block
	// (backpressure); default 4×Workers.
	QueueDepth int
	// CacheEntries is the LRU capacity across all shards; default 8192.
	// Negative disables caching.
	CacheEntries int
	// AccessLog emits one log line per HTTP request (request ID, status,
	// duration, stage breakdown). Off by default: the hot path should not
	// pay for logging unless an operator asked for it.
	AccessLog bool
	// Gate, when set, mounts the multi-tenant admission gate on the HTTP
	// surface: API-key auth, per-tenant rate limits, and load shedding
	// (see internal/tenant). Nil serves every request unconditionally,
	// the pre-tenancy behavior.
	Gate *tenant.Gate
	// Feedback overrides the online-feedback controller's tuning (drift
	// gate thresholds, synchronous mode, custom train/promote hooks —
	// see internal/feedback). Nil selects the defaults; the controller
	// always runs, wired to this service's registry for retraining and
	// promotion.
	Feedback *feedback.Config
}

func (c ServiceConfig) withDefaults() ServiceConfig {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 8192
	}
	return c
}

// soloKey identifies one solo measurement: hardware class (empty = the
// registry's default NIC), NF and profile.
type soloKey struct {
	hw   string
	name string
	prof traffic.Profile
}

// Service answers prediction-serving requests: Predict, Compare, Admit
// and Diagnose run on a bounded worker pool, consult the model registry
// through the backend interface, and memoize full responses in a sharded
// LRU. Every measurement a request needs runs on a fresh deterministic
// testbed, so a response is a pure function of the request (plus the
// registry's models) and caching is exact, not approximate. The /v2 API
// additionally serves hardware-qualified models ("nf@hw"): predictions
// then run against that fleet class's NIC preset.
type Service struct {
	cfg   ServiceConfig
	reg   *ModelRegistry
	cache *Cache

	solo FlightGroup[soloKey, nicsim.Measurement]

	jobs    chan func()
	wg      sync.WaitGroup
	closeMu sync.RWMutex
	closed  bool

	// clusterSem serializes cluster comparison runs: they are
	// multi-second batch jobs that bypass the worker pool, so without a
	// cap abandoned or hostile requests could pin every CPU.
	clusterSem chan struct{}

	started time.Time

	predicts    atomic.Uint64
	compares    atomic.Uint64
	admits      atomic.Uint64
	diagnoses   atomic.Uint64
	clusterRuns atomic.Uint64
	ingests     atomic.Uint64
	errors      atomic.Uint64

	// fb is the online-feedback controller: ingest windows, the drift
	// gate, background retraining, shadow scoring and promotion.
	fb *feedback.Controller

	// promoteHook, when set, observes every promotion after the model
	// swap and cache eviction — the gateway uses it to fan the reload
	// out to sibling replicas and evict its edge cache.
	promoteMu   sync.Mutex
	promoteHook func(backendName, hw, nf string)

	// Transport split of the same request stream: httpRequests counts
	// requests arriving through the HTTP front door, wireRequests those
	// through the yalawire listener; canceled counts requests whose
	// client went away before the response (not server errors — see the
	// tenant gate's shed-signal handling of status 499).
	httpRequests atomic.Uint64
	wireRequests atomic.Uint64
	canceled     atomic.Uint64

	// wireAddr is the yalawire listener's address when one is mounted
	// ("" otherwise); /v2/stats advertises it so gateways can discover
	// and upgrade to wire upstream transport.
	wireAddr atomic.Pointer[string]

	// obs is the /metrics registry; reqSeconds and stageHist are its
	// hot-path histograms, held directly so observations never take the
	// registry lock (see initObs).
	obs        *obs.Registry
	reqSeconds *obs.Histogram
	stageHist  map[string]*obs.Histogram
}

// NewService starts a service and its worker pool. Call Close to stop it.
func NewService(cfg ServiceConfig) *Service {
	cfg = cfg.withDefaults()
	// Resolve the registry defaults once: request paths (hardware
	// resolution, fresh testbeds) read the config on every call, and the
	// default quick-training configs are not free to construct.
	cfg.Registry = cfg.Registry.withDefaults()
	s := &Service{
		cfg:        cfg,
		reg:        NewRegistry(cfg.Registry),
		cache:      NewCache(cfg.CacheEntries),
		jobs:       make(chan func(), cfg.QueueDepth),
		clusterSem: make(chan struct{}, 1),
		started:    time.Now(),
	}
	// The feedback controller defaults to this service's own training
	// and promotion paths; a caller-supplied Config may override either
	// (simulations, tests).
	fbCfg := feedback.Config{}
	if cfg.Feedback != nil {
		fbCfg = *cfg.Feedback
	}
	if fbCfg.Train == nil {
		fbCfg.Train = s.feedbackTrain
	}
	if fbCfg.Promote == nil {
		fbCfg.Promote = s.feedbackPromote
	}
	s.fb = feedback.New(fbCfg)
	s.initObs()
	if cfg.Gate != nil {
		// The gate's queue-pressure signal is this service's own job
		// backlog; its yala_tenant_* series land in this /metrics registry.
		cfg.Gate.SetQueueFunc(func() float64 {
			return float64(len(s.jobs)) / float64(cap(s.jobs))
		})
		cfg.Gate.SetObs(s.obs)
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go func() {
			defer s.wg.Done()
			for job := range s.jobs {
				job()
			}
		}()
	}
	return s
}

// Registry exposes the service's model registry.
func (s *Service) Registry() *ModelRegistry { return s.reg }

// Reload evicts a model so the next request re-reads the model directory
// — the operator hook for pushing retrained models into a live server —
// and drops exactly the response-cache entries computed with the old
// model: predictions for that backend+NF (the diagnose and compare views
// are assembled from those same entries), admissions under that backend
// naming the NF as candidate or resident, and the NF's ground-truth
// co-run measurements. Entries for unrelated (backend, NF) pairs keep
// serving warm — a single-model push must not cold-start every key the
// server holds. The solo-measurement memo survives: measurements depend
// only on the testbed, not on models.
func (s *Service) Reload(backendName Backend, name string) {
	s.reg.Reload(string(backendName), name)
	s.cache.EvictMatching(func(key string) bool {
		return reloadAffects(key, string(backendName), name)
	})
}

// reloadAffects reports whether one cache entry was computed with the
// (backend, nf) model being reloaded. The key shapes it parses are the
// ones this file builds:
//
//	predict|<backend>|<hw>|<nf>@<profile>|<competitors>
//	measure|<hw>|<nf>@<profile>|<competitors>
//	admit|<backend>|<hw>|<colo>,<colo>,...|cand=<colo>   (colo = <nf>@<profile>~<sla>)
//
// Competitors contribute only their memoized solo measurements — never
// their models — so a predict entry depends on exactly one model: its
// target NF's under its backend. An admit entry consults models for
// every participant, so the NF may appear anywhere in the colo list.
// Measure entries are model-independent, but they follow the reloaded
// NF out of the cache anyway: Reload's contract is "the next request
// involving this NF recomputes", and a re-measurement is deterministic.
// The reload spans hardware classes (the registry drops every hw key),
// so hw never narrows the match.
func reloadAffects(key, backendName, name string) bool {
	kind, rest, ok := strings.Cut(key, "|")
	if !ok {
		return false
	}
	switch kind {
	case "predict":
		b, rest, ok := strings.Cut(rest, "|")
		if !ok || b != backendName {
			return false
		}
		_, scenario, ok := strings.Cut(rest, "|") // strip hw
		if !ok {
			return false
		}
		target, _, _ := strings.Cut(scenario, "@")
		return target == name
	case "measure":
		_, scenario, ok := strings.Cut(rest, "|") // strip hw
		if !ok {
			return false
		}
		target, _, _ := strings.Cut(scenario, "@")
		return target == name
	case "admit":
		b, rest, ok := strings.Cut(rest, "|")
		if !ok || b != backendName {
			return false
		}
		_, colos, ok := strings.Cut(rest, "|") // strip hw
		if !ok {
			return false
		}
		return admitKeyNames(colos, name)
	}
	return false
}

// admitKeyNames reports whether an admit key's participant list names
// nf. A participant name appears as "<nf>@" at the start of the list or
// right after a separator: ',' between residents, '|' before the
// candidate clause, '=' after "cand". Profile renderings "(f, p, m)"
// contain commas, but only ever followed by digits — never by a name —
// so a separator-preceded match is always a real participant boundary.
func admitKeyNames(colos, nf string) bool {
	marker := nf + "@"
	for off := 0; ; {
		i := strings.Index(colos[off:], marker)
		if i < 0 {
			return false
		}
		i += off
		if i == 0 {
			return true
		}
		switch colos[i-1] {
		case ',', '|', '=':
			return true
		}
		off = i + 1
	}
}

// ErrClosed reports a request arriving after Close. The HTTP layer maps
// it to 503 so retry policies treat it as a transient server condition,
// not a bad request.
var ErrClosed = errors.New("serve: service closed")

// Close drains the worker pool. In-flight requests finish; subsequent
// requests fail with ErrClosed.
func (s *Service) Close() {
	s.closeMu.Lock()
	if !s.closed {
		s.closed = true
		close(s.jobs)
	}
	s.closeMu.Unlock()
	s.wg.Wait()
	s.fb.Close()
}

// enqueue hands a job to the pool. A full backlog applies backpressure
// until the caller's context expires — abandoned clients must not keep
// handler goroutines parked on the queue forever.
func (s *Service) enqueue(ctx context.Context, job func()) error {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	select {
	case s.jobs <- job:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// submit runs fn on the worker pool and waits for its result. A context
// canceled while the job is still queued skips the compute.
func submit[T any](ctx context.Context, s *Service, fn func() (T, error)) (T, error) {
	type outcome struct {
		v   T
		err error
	}
	ch := make(chan outcome, 1)
	if err := s.enqueue(ctx, func() {
		if ctx.Err() != nil {
			ch <- outcome{err: ctx.Err()}
			return
		}
		v, err := fn()
		ch <- outcome{v, err}
	}); err != nil {
		var zero T
		return zero, err
	}
	o := <-ch
	if o.err != nil && !callerCanceled(ctx, o.err) {
		s.errors.Add(1)
	}
	return o.v, o.err
}

// callerCanceled reports a failure whose cause is the caller's own
// departure: the request context is dead and the error is its
// cancellation. Such outcomes answer 499 and stay out of the error
// counter — a flood of canceled clients says nothing about server
// health, and counting it would poison the shed signal the tenant gate
// and the autoscaler act on.
func callerCanceled(ctx context.Context, err error) bool {
	return ctx.Err() != nil &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
}

// hwNIC resolves a request's hardware qualifier to a NIC preset: the
// empty qualifier is the registry's default NIC; named qualifiers are
// the fleet hardware classes (cluster.ClassConfig), which share the
// registry's hardware-keyed on-disk layout with cluster runs.
func (s *Service) hwNIC(hw string) (nicsim.Config, error) {
	if hw == "" {
		return s.cfg.Registry.NIC, nil
	}
	cfg, err := cluster.ClassConfig(hw)
	if err != nil {
		return nicsim.Config{}, badRequestf("unknown hardware class %q (have %s)", hw, strings.Join(cluster.ClassNames(), ", "))
	}
	return cfg, nil
}

// validateHW rejects hardware qualifiers outside the known classes
// before any model or measurement work happens.
func (s *Service) validateHW(hw string) error {
	_, err := s.hwNIC(hw)
	return err
}

// freshTestbed returns a new testbed at the hardware class's NIC preset
// and the service's seed. Measurements on a fresh testbed are
// deterministic regardless of request interleaving — the property the
// response cache relies on.
func (s *Service) freshTestbed(hw string) (*testbed.Testbed, error) {
	nic, err := s.hwNIC(hw)
	if err != nil {
		return nil, err
	}
	return testbed.New(nic, s.cfg.Registry.Seed), nil
}

// maxSoloEntries bounds the solo-measurement memo. Clients choose
// profiles freely, so without a cap a profile-sweeping client would grow
// the map (one full simulation result per distinct profile) forever.
// Eviction only costs a deterministic re-measurement later.
const maxSoloEntries = 4096

// soloMeasurement returns the NF's solo measurement at a profile on a
// hardware class, with duplicate-measurement suppression across
// concurrent requests. The cap is safe because measurements are
// deterministic — eviction only costs a re-measurement.
func (s *Service) soloMeasurement(hw, name string, prof traffic.Profile) (nicsim.Measurement, error) {
	return s.solo.Do(soloKey{hw, name, prof}, maxSoloEntries, func() (nicsim.Measurement, error) {
		tb, err := s.freshTestbed(hw)
		if err != nil {
			return nicsim.Measurement{}, err
		}
		return tb.SoloNF(name, prof)
	})
}

// competitors resolves competitor specs into the backend-facing form:
// each co-resident's identity plus its memoized solo measurement.
func (s *Service) competitors(hw string, specs []CompetitorSpec) ([]backend.Competitor, error) {
	comps := make([]backend.Competitor, 0, len(specs))
	for _, spec := range specs {
		prof := spec.Profile.Profile()
		m, err := s.soloMeasurement(hw, spec.Name, prof)
		if err != nil {
			return nil, err
		}
		mm := m
		comps = append(comps, backend.Competitor{NF: spec.Name, Profile: prof, Solo: &mm})
	}
	return comps, nil
}

// PredictRequest asks for an NF's throughput under a co-location.
type PredictRequest struct {
	NF          string           `json:"nf"`
	Profile     ProfileSpec      `json:"profile,omitzero"`
	Competitors []CompetitorSpec `json:"competitors,omitempty"`
	Backend     string           `json:"backend,omitempty"`
}

// PredictResponse is the predictor's answer. HW is set only for
// hardware-qualified (/v2) requests, so the /v1 wire shape is unchanged.
type PredictResponse struct {
	NF           string      `json:"nf"`
	HW           string      `json:"hw,omitempty"`
	Backend      Backend     `json:"backend"`
	Profile      ProfileSpec `json:"profile"`
	SoloPPS      float64     `json:"solo_pps"`
	PredictedPPS float64     `json:"predicted_pps"`
	// PerResourcePPS and Bottleneck carry a per-resource breakdown for
	// backends that attribute (yala); extrapolating backends omit them.
	PerResourcePPS map[string]float64 `json:"per_resource_pps,omitempty"`
	Bottleneck     string             `json:"bottleneck,omitempty"`
}

// predictKey is the shared cache key for one prediction scenario;
// Compare and Diagnose derive from the same entries, and /v1 and /v2
// requests for the default hardware share them too (hw = "").
func predictKey(backendName Backend, hw, name string, prof traffic.Profile, comps []CompetitorSpec) string {
	return fmt.Sprintf("predict|%s|%s|%s", backendName, hw, scenarioKey(name, prof, comps))
}

// predictCached answers one scenario through the shared predict cache,
// on the caller's goroutine (pool scheduling is the caller's concern).
// Its lookup is quiet: the API entry point already counted this request
// in the hit/miss stats.
func (s *Service) predictCached(backendName Backend, hw, name string, prof traffic.Profile, comps []CompetitorSpec) (PredictResponse, error) {
	key := predictKey(backendName, hw, name, prof, comps)
	if v, ok := s.cache.getQuiet(key); ok {
		return v.(PredictResponse), nil
	}
	resp, err := s.predictUncached(backendName, hw, name, prof, comps)
	if err != nil {
		return PredictResponse{}, err
	}
	s.cache.Put(key, resp)
	return resp, nil
}

// Predict estimates throughput for the request's scenario on the default
// hardware — the /v1 entry point.
func (s *Service) Predict(ctx context.Context, req PredictRequest) (PredictResponse, error) {
	return s.PredictOn(ctx, "", req)
}

// PredictOn is the hardware-qualified form behind /v2: hw names a fleet
// hardware class ("" = the server's default NIC). Responses serve from
// the response cache when the scenario has been answered before. Cache
// hits answer synchronously on the caller's goroutine; only predictor
// work goes through the worker pool — the pool bounds compute, and a
// lookup is not compute.
func (s *Service) PredictOn(ctx context.Context, hw string, req PredictRequest) (PredictResponse, error) {
	s.predicts.Add(1)
	if err := s.validateScenarioOn(hw, req.NF, req.Profile, req.Competitors, req.Backend); err != nil {
		s.errors.Add(1)
		return PredictResponse{}, err
	}
	backendName, _ := ParseBackend(req.Backend)
	prof := req.Profile.Profile()
	comps := canonSpecs(req.Competitors)
	// A hit answers inline — a lookup is not compute. A miss (including
	// the rare eviction race) always goes through the worker pool, so
	// predictor work stays bounded no matter the HTTP concurrency.
	csp := obs.StartSpan(ctx, "cache")
	v, ok := s.cache.Get(predictKey(backendName, hw, req.NF, prof, comps))
	csp.End()
	if ok {
		return v.(PredictResponse), nil
	}
	psp := obs.StartSpan(ctx, "predict")
	defer psp.End()
	return submit(ctx, s, func() (PredictResponse, error) {
		return s.predictCached(backendName, hw, req.NF, prof, comps)
	})
}

// predictUncached computes a prediction straight from the models,
// through the backend interface — no backend-specific code remains on
// this path.
func (s *Service) predictUncached(backendName Backend, hw, name string, prof traffic.Profile, specs []CompetitorSpec) (PredictResponse, error) {
	b, ok := backend.Get(string(backendName))
	if !ok {
		return PredictResponse{}, badRequestf("unknown backend %q", backendName)
	}
	comps, err := s.competitors(hw, specs)
	if err != nil {
		return PredictResponse{}, err
	}
	nic, err := s.hwNIC(hw)
	if err != nil {
		return PredictResponse{}, err
	}
	model, err := s.reg.ModelOn(string(backendName), hw, nic, name)
	if err != nil {
		return PredictResponse{}, err
	}
	sc := backend.Scenario{
		Profile:     prof,
		Competitors: comps,
		Solo: func() (float64, error) {
			m, err := s.soloMeasurement(hw, name, prof)
			if err != nil {
				return 0, err
			}
			return m.Throughput, nil
		},
	}
	pred, err := b.Predict(model, sc)
	if err != nil {
		return PredictResponse{}, err
	}
	fbKey := feedback.Key{NF: name, HW: hw, Backend: string(backendName)}
	if sm, ok := s.fb.ShadowModel(fbKey); ok {
		// Shadow-serve the candidate on live traffic: it predicts the
		// same scenario and the divergence is recorded, but its output
		// goes nowhere — the response below is built exclusively from
		// the live model's prediction.
		if sp, serr := b.Predict(sm, sc); serr == nil {
			s.fb.RecordShadowCompare(fbKey, pred.PredictedPPS, sp.PredictedPPS)
		}
	}
	return PredictResponse{
		NF:             name,
		HW:             hw,
		Backend:        backendName,
		Profile:        SpecOf(prof),
		SoloPPS:        pred.SoloPPS,
		PredictedPPS:   pred.PredictedPPS,
		PerResourcePPS: pred.PerResourcePPS,
		Bottleneck:     pred.Bottleneck,
	}, nil
}

// validateScenarioOn is validateScenario plus the hardware qualifier.
func (s *Service) validateScenarioOn(hw, nfName string, prof ProfileSpec, comps []CompetitorSpec, backendName string) error {
	if err := s.validateHW(hw); err != nil {
		return err
	}
	return validateScenario(nfName, prof, comps, backendName)
}

// BatchRequest carries many prediction scenarios in one round trip —
// the amortization lever for high-throughput clients (an operator
// evaluating a whole arrival wave at once).
type BatchRequest struct {
	Requests []PredictRequest `json:"requests"`
}

// BatchResponse returns one response per request, in order. A scenario
// that fails reports its error in Errors at the same index and a zero
// response; the batch itself still succeeds.
type BatchResponse struct {
	Responses []PredictResponse `json:"responses"`
	Errors    []string          `json:"errors,omitempty"`
}

// hwPredict is one batch element with its hardware qualifier resolved —
// /v1 elements always carry "", /v2 elements parse theirs from the
// model ID.
type hwPredict struct {
	hw  string
	req PredictRequest
}

// PredictBatch serves every scenario in the batch, each through the
// cache — the /v1 entry point (default hardware throughout).
func (s *Service) PredictBatch(ctx context.Context, req BatchRequest) (BatchResponse, error) {
	items := make([]hwPredict, len(req.Requests))
	for i, r := range req.Requests {
		items[i] = hwPredict{req: r}
	}
	return s.predictBatch(ctx, items)
}

// predictBatch serves every scenario, each through the cache. Elements
// run concurrently so a batch of misses overlaps on the worker pool
// instead of serializing; hits cost a lookup each.
func (s *Service) predictBatch(ctx context.Context, items []hwPredict) (BatchResponse, error) {
	// A malformed element fails the whole batch up front: element-level
	// Errors are for scenarios the service could not answer, not for
	// requests the client should not have sent.
	for i, it := range items {
		if err := s.validateScenarioOn(it.hw, it.req.NF, it.req.Profile, it.req.Competitors, it.req.Backend); err != nil {
			s.errors.Add(1)
			return BatchResponse{}, fmt.Errorf("requests[%d]: %w", i, err)
		}
	}
	resp := BatchResponse{Responses: make([]PredictResponse, len(items))}
	errs := make([]string, len(items))
	var failed atomic.Bool
	var wg sync.WaitGroup
	for i, it := range items {
		wg.Add(1)
		go func(i int, it hwPredict) {
			defer wg.Done()
			one, err := s.PredictOn(ctx, it.hw, it.req)
			if err != nil {
				errs[i] = err.Error()
				failed.Store(true)
				return
			}
			resp.Responses[i] = one
		}(i, it)
	}
	wg.Wait()
	if failed.Load() {
		resp.Errors = errs
	}
	return resp, nil
}

// CompareRequest pits Yala against SLOMO on one scenario.
type CompareRequest struct {
	NF          string           `json:"nf"`
	Profile     ProfileSpec      `json:"profile,omitzero"`
	Competitors []CompetitorSpec `json:"competitors,omitempty"`
	// GroundTruth additionally co-runs the scenario on the simulator and
	// reports each predictor's error against the measurement.
	GroundTruth bool `json:"ground_truth,omitempty"`
}

// CompareResponse is the head-to-head result.
type CompareResponse struct {
	NF      string          `json:"nf"`
	HW      string          `json:"hw,omitempty"`
	Profile ProfileSpec     `json:"profile"`
	Yala    PredictResponse `json:"yala"`
	SLOMO   PredictResponse `json:"slomo"`

	MeasuredPPS float64 `json:"measured_pps,omitempty"`
	YalaErrPct  float64 `json:"yala_err_pct,omitempty"`
	SLOMOErrPct float64 `json:"slomo_err_pct,omitempty"`
}

// Compare runs both predictors on the same scenario — /v1 entry point.
func (s *Service) Compare(ctx context.Context, req CompareRequest) (CompareResponse, error) {
	return s.CompareOn(ctx, "", req)
}

// CompareOn is the hardware-qualified Compare. It is assembled entirely
// from predict-keyed (and measure-keyed) cache entries, so a Compare
// after a Predict of the same scenario reuses that work instead of
// recomputing it under a separate key.
func (s *Service) CompareOn(ctx context.Context, hw string, req CompareRequest) (CompareResponse, error) {
	s.compares.Add(1)
	if err := s.validateScenarioOn(hw, req.NF, req.Profile, req.Competitors, ""); err != nil {
		s.errors.Add(1)
		return CompareResponse{}, err
	}
	prof := req.Profile.Profile()
	comps := canonSpecs(req.Competitors)
	// Warm fast path: every piece already resident → assemble inline.
	// Any missing piece (including an eviction race) goes through the
	// worker pool; assembly itself is not compute.
	csp := obs.StartSpan(ctx, "cache")
	vy, okY := s.cache.Get(predictKey(BackendYala, hw, req.NF, prof, comps))
	vs, okS := s.cache.Get(predictKey(BackendSLOMO, hw, req.NF, prof, comps))
	truth, okM := 0.0, !req.GroundTruth
	if req.GroundTruth {
		if v, ok := s.cache.Get(measureKey(hw, req.NF, prof, comps)); ok {
			truth, okM = v.(float64), true
		}
	}
	csp.End()
	if okY && okS && okM {
		return assembleCompare(req.NF, hw, prof, vy.(PredictResponse), vs.(PredictResponse), req.GroundTruth, truth), nil
	}
	psp := obs.StartSpan(ctx, "predict")
	defer psp.End()
	return submit(ctx, s, func() (CompareResponse, error) {
		yala, err := s.predictCached(BackendYala, hw, req.NF, prof, comps)
		if err != nil {
			return CompareResponse{}, err
		}
		sl, err := s.predictCached(BackendSLOMO, hw, req.NF, prof, comps)
		if err != nil {
			return CompareResponse{}, err
		}
		var truth float64
		if req.GroundTruth {
			if truth, err = s.measureCached(hw, req.NF, prof, comps); err != nil {
				return CompareResponse{}, err
			}
		}
		return assembleCompare(req.NF, hw, prof, yala, sl, req.GroundTruth, truth), nil
	})
}

// assembleCompare builds the head-to-head response from its parts.
func assembleCompare(nf, hw string, prof traffic.Profile, yala, sl PredictResponse, groundTruth bool, truth float64) CompareResponse {
	resp := CompareResponse{NF: nf, HW: hw, Profile: SpecOf(prof), Yala: yala, SLOMO: sl}
	if groundTruth {
		resp.MeasuredPPS = truth
		if truth > 0 {
			resp.YalaErrPct = 100 * math.Abs(yala.PredictedPPS-truth) / truth
			resp.SLOMOErrPct = 100 * math.Abs(sl.PredictedPPS-truth) / truth
		}
	}
	return resp
}

// measureKey caches ground-truth co-run measurements.
func measureKey(hw, name string, prof traffic.Profile, comps []CompetitorSpec) string {
	return fmt.Sprintf("measure|%s|%s", hw, scenarioKey(name, prof, comps))
}

// measureCached memoizes measureScenario in the response cache. Quiet
// lookup: the API entry point already counted this request.
func (s *Service) measureCached(hw, name string, prof traffic.Profile, comps []CompetitorSpec) (float64, error) {
	key := measureKey(hw, name, prof, comps)
	if v, ok := s.cache.getQuiet(key); ok {
		return v.(float64), nil
	}
	truth, err := s.measureScenario(hw, name, prof, comps)
	if err != nil {
		return 0, err
	}
	s.cache.Put(key, truth)
	return truth, nil
}

// measureScenario co-runs the scenario on a fresh testbed and returns the
// target's ground-truth throughput.
func (s *Service) measureScenario(hw, name string, prof traffic.Profile, specs []CompetitorSpec) (float64, error) {
	tb, err := s.freshTestbed(hw)
	if err != nil {
		return 0, err
	}
	ws := make([]*nicsim.Workload, 0, len(specs)+1)
	w, err := tb.Workload(name, prof)
	if err != nil {
		return 0, err
	}
	ws = append(ws, w)
	for _, spec := range specs {
		cw, err := tb.Workload(spec.Name, spec.Profile.Profile())
		if err != nil {
			return 0, err
		}
		ws = append(ws, cw)
	}
	ms, err := tb.Run(ws...)
	if err != nil {
		return 0, err
	}
	return ms[0].Throughput, nil
}

// ColoNF is one NF in an admission scenario: its traffic profile and SLA
// (maximum tolerated throughput drop relative to solo, e.g. 0.1).
type ColoNF struct {
	Name    string      `json:"name"`
	Profile ProfileSpec `json:"profile,omitzero"`
	SLA     float64     `json:"sla"`
}

// AdmitRequest asks whether placing Candidate on a NIC already hosting
// Residents keeps every SLA intact, per the chosen predictor.
type AdmitRequest struct {
	Residents []ColoNF `json:"residents"`
	Candidate ColoNF   `json:"candidate"`
	Backend   string   `json:"backend,omitempty"`
}

// AdmitResponse is the admission decision. Reason distinguishes a
// core-capacity rejection from a predicted SLA violation.
type AdmitResponse struct {
	Admit     bool    `json:"admit"`
	Backend   Backend `json:"backend"`
	Residents int     `json:"residents"`
	Reason    string  `json:"reason,omitempty"`
}

// Admit answers an online admission-control query — /v1 entry point.
func (s *Service) Admit(ctx context.Context, req AdmitRequest) (AdmitResponse, error) {
	return s.AdmitOn(ctx, "", req)
}

// AdmitOn is the hardware-qualified admission check: it reuses the
// placement package's feasibility primitive (§7.5.1) with registry
// models for any backend, on the class's NIC preset and core budget.
func (s *Service) AdmitOn(ctx context.Context, hw string, req AdmitRequest) (AdmitResponse, error) {
	s.admits.Add(1)
	if err := s.validateHW(hw); err != nil {
		s.errors.Add(1)
		return AdmitResponse{}, err
	}
	if err := req.validate(); err != nil {
		s.errors.Add(1)
		return AdmitResponse{}, err
	}
	backendName, _ := ParseBackend(req.Backend)
	// Canonical resident order makes the cache key (and the fresh
	// testbed's measurement order) independent of caller ordering.
	residents := append([]ColoNF(nil), req.Residents...)
	sort.Slice(residents, func(i, j int) bool {
		return coloKey(residents[i]) < coloKey(residents[j])
	})
	parts := make([]string, len(residents))
	for i, r := range residents {
		parts[i] = coloKey(r)
	}
	key := fmt.Sprintf("admit|%s|%s|%s|cand=%s", backendName, hw, strings.Join(parts, ","), coloKey(req.Candidate))
	csp := obs.StartSpan(ctx, "cache")
	v, ok := s.cache.Get(key)
	csp.End()
	if ok {
		return v.(AdmitResponse), nil
	}
	psp := obs.StartSpan(ctx, "predict")
	defer psp.End()
	return submit(ctx, s, func() (AdmitResponse, error) {
		return s.admit(backendName, hw, key, residents, req.Candidate)
	})
}

func (s *Service) admit(backendName Backend, hw, key string, residents []ColoNF, candidate ColoNF) (AdmitResponse, error) {
	// Load every model involved before building the simulator, so the
	// feasibility pass never trains under its own latency budget. A fresh
	// simulator per request keeps the answer a pure function of the
	// request (the simulator's measurement caches are order-dependent).
	strat := placement.PredictionAware(string(backendName))
	tb, err := s.freshTestbed(hw)
	if err != nil {
		return AdmitResponse{}, err
	}
	sim := placement.NewSimulator(tb)

	// Core capacity first — placement always pairs the SLA check with the
	// Fits check, and an infeasible core budget needs no predictions.
	if !sim.Fits(len(residents)) {
		resp := AdmitResponse{Admit: false, Backend: backendName, Residents: len(residents), Reason: "cores"}
		s.cache.Put(key, resp)
		return resp, nil
	}

	nic, err := s.hwNIC(hw)
	if err != nil {
		return AdmitResponse{}, err
	}
	names := map[string]bool{candidate.Name: true}
	for _, r := range residents {
		names[r.Name] = true
	}
	for name := range names {
		m, err := s.reg.ModelOn(string(backendName), hw, nic, name)
		if err != nil {
			return AdmitResponse{}, err
		}
		sim.SetModel(string(backendName), name, m)
	}

	arr := make([]placement.Arrival, len(residents))
	for i, r := range residents {
		arr[i] = placement.Arrival{Name: r.Name, Profile: r.Profile.Profile(), SLA: r.SLA}
	}
	cand := placement.Arrival{
		Name:    candidate.Name,
		Profile: candidate.Profile.Profile(),
		SLA:     candidate.SLA,
	}
	// Seed the simulator with the service's memoized solo measurements:
	// the feasibility pass then runs no simulations of its own, and
	// repeated admits over the same NFs reuse the same measurements.
	for _, a := range append(append([]placement.Arrival(nil), arr...), cand) {
		m, err := s.soloMeasurement(hw, a.Name, a.Profile)
		if err != nil {
			return AdmitResponse{}, err
		}
		sim.SeedSolo(a, m)
	}
	ok, err := sim.Feasible(arr, cand, strat)
	if err != nil {
		return AdmitResponse{}, err
	}
	resp := AdmitResponse{Admit: ok, Backend: backendName, Residents: len(residents)}
	if !ok {
		resp.Reason = "sla"
	}
	s.cache.Put(key, resp)
	return resp, nil
}

// validate rejects malformed admission requests: every participant must
// be a catalog NF with a well-formed profile and an SLA in [0, 1].
func (r AdmitRequest) validate() error {
	if _, err := ParseBackend(r.Backend); err != nil {
		return badRequestf("%v", err)
	}
	if err := r.Candidate.validate(); err != nil {
		return fmt.Errorf("candidate: %w", err)
	}
	for i, res := range r.Residents {
		if err := res.validate(); err != nil {
			return fmt.Errorf("residents[%d]: %w", i, err)
		}
	}
	return nil
}

// validate checks one admission participant.
func (c ColoNF) validate() error {
	if err := validNF(c.Name); err != nil {
		return err
	}
	if err := c.Profile.validate(); err != nil {
		return err
	}
	if c.SLA < 0 || c.SLA > 1 {
		return badRequestf("SLA %g out of range [0, 1]", c.SLA)
	}
	return nil
}

// coloKey renders one admission participant canonically. The SLA prints
// at full precision — a truncated rendering would alias near-equal SLAs
// onto one cache key and serve the wrong admission decision.
func coloKey(c ColoNF) string {
	return fmt.Sprintf("%s@%s~%s", c.Name, c.Profile.Profile(),
		strconv.FormatFloat(c.SLA, 'g', -1, 64))
}

// DiagnoseRequest asks which resource bottlenecks the NF in a scenario.
type DiagnoseRequest struct {
	NF          string           `json:"nf"`
	Profile     ProfileSpec      `json:"profile,omitzero"`
	Competitors []CompetitorSpec `json:"competitors,omitempty"`
}

// DiagnoseResponse is Yala's bottleneck attribution (§7.5.2).
type DiagnoseResponse struct {
	NF             string             `json:"nf"`
	HW             string             `json:"hw,omitempty"`
	Profile        ProfileSpec        `json:"profile"`
	Bottleneck     string             `json:"bottleneck"`
	SoloPPS        float64            `json:"solo_pps"`
	PredictedPPS   float64            `json:"predicted_pps"`
	DropPct        float64            `json:"drop_pct"`
	PerResourcePPS map[string]float64 `json:"per_resource_pps"`
}

// Diagnose attributes the scenario's predicted slowdown to a resource —
// /v1 entry point.
func (s *Service) Diagnose(ctx context.Context, req DiagnoseRequest) (DiagnoseResponse, error) {
	return s.DiagnoseOn(ctx, "", req)
}

// DiagnoseOn is the hardware-qualified Diagnose. The response is pure
// derivation from the Yala prediction, so it shares the predict-keyed
// cache entry instead of storing its own.
func (s *Service) DiagnoseOn(ctx context.Context, hw string, req DiagnoseRequest) (DiagnoseResponse, error) {
	s.diagnoses.Add(1)
	if err := s.validateScenarioOn(hw, req.NF, req.Profile, req.Competitors, ""); err != nil {
		s.errors.Add(1)
		return DiagnoseResponse{}, err
	}
	prof := req.Profile.Profile()
	comps := canonSpecs(req.Competitors)
	csp := obs.StartSpan(ctx, "cache")
	v, ok := s.cache.Get(predictKey(BackendYala, hw, req.NF, prof, comps))
	csp.End()
	if ok {
		return diagnoseFrom(v.(PredictResponse)), nil
	}
	psp := obs.StartSpan(ctx, "predict")
	defer psp.End()
	return submit(ctx, s, func() (DiagnoseResponse, error) {
		pred, err := s.predictCached(BackendYala, hw, req.NF, prof, comps)
		if err != nil {
			return DiagnoseResponse{}, err
		}
		return diagnoseFrom(pred), nil
	})
}

// diagnoseFrom derives the diagnosis view of a Yala prediction.
func diagnoseFrom(pred PredictResponse) DiagnoseResponse {
	resp := DiagnoseResponse{
		NF:             pred.NF,
		HW:             pred.HW,
		Profile:        pred.Profile,
		Bottleneck:     pred.Bottleneck,
		SoloPPS:        pred.SoloPPS,
		PredictedPPS:   pred.PredictedPPS,
		PerResourcePPS: pred.PerResourcePPS,
	}
	if pred.SoloPPS > 0 {
		resp.DropPct = 100 * (pred.SoloPPS - pred.PredictedPPS) / pred.SoloPPS
	}
	return resp
}

// ServiceStats is the operator-facing counter snapshot. The shape is
// the frozen /v1 wire form; /v2 wraps it with the registered-backend
// list (statsV2).
type ServiceStats struct {
	UptimeSec       float64           `json:"uptime_sec"`
	Workers         int               `json:"workers"`
	Requests        map[string]uint64 `json:"requests"`
	Errors          uint64            `json:"errors"`
	Cache           CacheStats        `json:"cache"`
	Models          []ModelInfo       `json:"models"`
	PersistFailures uint64            `json:"persist_failures,omitempty"`
	LastPersistErr  string            `json:"last_persist_error,omitempty"`
}

// Stats snapshots the service counters.
func (s *Service) Stats() ServiceStats {
	fails, lastErr := s.reg.PersistFailures()
	return ServiceStats{
		UptimeSec: time.Since(s.started).Seconds(),
		Workers:   s.cfg.Workers,
		Requests: map[string]uint64{
			"predict":     s.predicts.Load(),
			"compare":     s.compares.Load(),
			"admit":       s.admits.Load(),
			"diagnose":    s.diagnoses.Load(),
			"cluster_run": s.clusterRuns.Load(),
			"ingest":      s.ingests.Load(),
		},
		Errors:          s.errors.Load(),
		Cache:           s.cache.Stats(),
		Models:          s.reg.Models(),
		PersistFailures: fails,
		LastPersistErr:  lastErr,
	}
}
