package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/feedback"
	"repro/internal/nicsim"
	"repro/internal/slomo"
	"repro/internal/testbed"
)

// driftNFs mixes contention-light and contention-heavy NFs: NIDS and
// FlowMonitor co-runs lose 15-40% to interference, and the loss widens
// as core frequency rises — the structure a frequency shift exploits.
var driftNFs = []string{"FlowStats", "ACL", "NIDS", "FlowMonitor"}

var (
	driftModelsOnce sync.Once
	driftTinyModels MapModels
	driftModelsErr  error
)

// driftModels trains minimal-cost yala models for driftNFs once per
// test binary (the drift comparison only schedules the yala policy).
func driftModels(t testing.TB) MapModels {
	t.Helper()
	driftModelsOnce.Do(func() {
		tb := testbed.New(nicsim.BlueField2(), 1)
		cfg := driftTrainOptions("yala").(core.TrainConfig)
		driftTinyModels = MapModels{"yala": {}}
		for _, name := range driftNFs {
			m, err := core.NewTrainer(tb, cfg).Train(name)
			if err != nil {
				driftModelsErr = err
				return
			}
			driftTinyModels["yala"][name] = backend.WrapYala(m)
		}
	})
	if driftModelsErr != nil {
		t.Fatalf("training drift test models: %v", driftModelsErr)
	}
	return driftTinyModels
}

// driftScenario is the mid-run hardware-shift scenario the
// static-vs-online comparison replays: a DVFS governor change raises
// core frequency 1.8x partway through the stream, so models trained
// pre-shift mispredict post-shift contention and the stale-model policy
// keeps admitting placements that breach SLAs.
func driftScenario() Scenario {
	return Scenario{
		NICs:         6,
		Arrivals:     100,
		Seed:         9,
		NFs:          driftNFs,
		Profiles:     1,
		MeanIAT:      1,
		MeanLifetime: 12,
		DriftProb:    DefaultDriftProb,
		// The SLA band covers the placements the shift flips from
		// feasible to violating: FlowStats in three-NF mixes (breaks in
		// the 0.13-0.20 band), FlowStats in full quads (0.33-0.48) and
		// ACL packed with FlowMonitor/NIDS (0.21-0.33). That marginal
		// range is exactly where a stale model keeps admitting and a
		// recalibrated one stops.
		SLALo:      0.12,
		SLAHi:      0.35,
		ShiftAt:    20,
		ShiftScale: 1.8,
	}.WithDefaults()
}

// driftTrainOptions uses the full default training recipe: the drift
// comparison turns on prediction-guided admission near the SLA margin,
// where the minimal-cost configs the other cluster tests use are too
// inaccurate to ever admit a marginal placement. The default plan
// trains one NF in ~2s, so four NFs plus a handful of online retrains
// stay affordable for a default-run test.
func driftTrainOptions(backendName string) any {
	switch backendName {
	case "yala":
		cfg := core.DefaultTrainConfig()
		cfg.Seed = 1
		return cfg
	case "slomo":
		scfg := slomo.DefaultConfig()
		scfg.Seed = 1
		return scfg
	}
	return nil
}

// driftFeedbackConfig tunes the gate for enforcement-probe cadence:
// cluster probes are far sparser than serving-path ingests, and their
// scenarios are heterogeneous (solo and co-run ratios respond to a
// frequency shift differently), so the window is shorter and the
// consistency bar looser than the serving defaults.
func driftFeedbackConfig() *feedback.Config {
	return &feedback.Config{
		WindowSize:        16,
		MinSamples:        8,
		MinPromoteSamples: 4,
		ConsistencyMax:    0.25,
	}
}

// runDriftComparison replays the identical stream under the yala policy
// twice — loop open, then loop closed — on fresh environments.
func runDriftComparison(t *testing.T, sc Scenario) (static, online PolicyResult) {
	t.Helper()
	ctx := context.Background()
	run := func(on bool) PolicyResult {
		s := sc
		s.Online = on
		env := testEnv(t, driftModels(t))
		env.TrainOptions = driftTrainOptions
		env.Feedback = driftFeedbackConfig()
		if err := env.Prewarm(ctx, s, []string{"yala"}); err != nil {
			t.Fatal(err)
		}
		sched, err := NewScheduler("yala", env, s.Seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := env.RunPolicyStream(ctx, s, sc.Stream(), sched)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	return run(false), run(true)
}

// TestOnlineFeedbackClosesLoop is the end-to-end claim behind the
// online-learning subsystem at fleet scale: under a mid-run hardware
// shift the closed loop detects drift from enforcement measurements
// alone, retrains and shadow-scores a calibrated candidate, promotes
// it, and ends the run with strictly fewer SLA violations than the
// static policy replaying the identical stream.
func TestOnlineFeedbackClosesLoop(t *testing.T) {
	static, online := runDriftComparison(t, driftScenario())
	t.Logf("static: violations=%d admitted=%d rejected=%d rollbacks=%d",
		static.Violations, static.Admitted, static.Rejected, static.Rollbacks)
	t.Logf("online: violations=%d admitted=%d rejected=%d rollbacks=%d retrains=%d promotions=%d",
		online.Violations, online.Admitted, online.Rejected, online.Rollbacks, online.Retrains, online.Promotions)
	if static.Retrains != 0 || static.Promotions != 0 {
		t.Fatalf("static run reports feedback activity: %+v", static)
	}
	if online.Retrains == 0 {
		t.Fatalf("online run never retrained: %+v", online)
	}
	if online.Promotions == 0 {
		t.Fatalf("online run never promoted a candidate: %+v", online)
	}
	if online.Violations >= static.Violations {
		t.Fatalf("online policy saw %d violations, static %d — the closed loop must strictly reduce SLA breaches",
			online.Violations, static.Violations)
	}
}

// driftBaselinePath is the committed drift-benchmark record, relative
// to this package.
const driftBaselinePath = "../../BENCH_drift.json"

// driftBaseline is the committed benchmark record CI gates against.
// Every field is deterministic given the scenario, so the gate checks
// exact equality (re-baseline after intentional model changes).
type driftBaseline struct {
	Kind             string  `json:"kind"`
	Scenario         string  `json:"scenario"`
	ShiftAt          float64 `json:"shift_at"`
	ShiftScale       float64 `json:"shift_scale"`
	StaticViolations int     `json:"static_violations"`
	OnlineViolations int     `json:"online_violations"`
	Retrains         int     `json:"retrains"`
	Promotions       int     `json:"promotions"`
}

// TestDriftBenchGate is the CI drift-bench gate, opt-in alongside the
// scheduler bench gate:
//
//	YALA_BENCH_SMOKE=1      go test ./internal/cluster -run TestDriftBenchGate   # gate
//	YALA_BENCH_SMOKE=update go test ./internal/cluster -run TestDriftBenchGate   # re-baseline
//
// It replays the mid-run-shift scenario under the static and online
// yala policies and fails when the online policy stops strictly beating
// the static one on SLA violations, or when the (deterministic) counts
// diverge from the committed BENCH_drift.json.
func TestDriftBenchGate(t *testing.T) {
	mode := os.Getenv("YALA_BENCH_SMOKE")
	if mode == "" {
		t.Skip("set YALA_BENCH_SMOKE=1 to run the drift bench gate (update to re-baseline)")
	}
	sc := driftScenario()
	static, online := runDriftComparison(t, sc)
	cur := driftBaseline{
		Kind: "cluster-drift-bench",
		Scenario: fmt.Sprintf("%s, %d arrivals, %d NFs, %.1fx frequency shift at t=%g, yala policy",
			sc.FleetDesc(), sc.Arrivals, len(sc.NFs), sc.ShiftScale, sc.ShiftAt),
		ShiftAt:          sc.ShiftAt,
		ShiftScale:       sc.ShiftScale,
		StaticViolations: static.Violations,
		OnlineViolations: online.Violations,
		Retrains:         online.Retrains,
		Promotions:       online.Promotions,
	}
	t.Logf("static %d violations, online %d (retrains %d, promotions %d)",
		cur.StaticViolations, cur.OnlineViolations, cur.Retrains, cur.Promotions)

	if mode == "update" {
		data, err := json.MarshalIndent(cur, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(driftBaselinePath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", driftBaselinePath)
		return
	}

	if cur.OnlineViolations >= cur.StaticViolations {
		t.Errorf("online policy saw %d violations, static %d — online retraining must strictly win under the shift",
			cur.OnlineViolations, cur.StaticViolations)
	}
	raw, err := os.ReadFile(driftBaselinePath)
	if err != nil {
		t.Fatalf("reading committed baseline (regenerate with YALA_BENCH_SMOKE=update): %v", err)
	}
	var base driftBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	if cur != base {
		t.Errorf("drift bench diverged from committed baseline:\n got %+v\nwant %+v\n(re-baseline with YALA_BENCH_SMOKE=update after intentional model changes)", cur, base)
	}
}
