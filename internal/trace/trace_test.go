package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/nicsim"
)

func testScenario() cluster.Scenario {
	return cluster.Scenario{
		Classes:   []cluster.ClassSpec{{Class: "bluefield2", Count: 3}, {Class: "pensando", Count: 1}},
		Arrivals:  24,
		Seed:      7,
		NFs:       []string{"FlowStats", "ACL"},
		Profiles:  2,
		DriftProb: 0.5,
		Workload:  cluster.WorkloadFlashCrowd,
	}.WithDefaults()
}

// TestRoundTripByteIdentical pins the canonical-encoding guarantee:
// record → decode → re-encode reproduces the identical bytes, and the
// decoded stream equals the generated one.
func TestRoundTripByteIdentical(t *testing.T) {
	sc := testScenario()
	var buf bytes.Buffer
	rec, err := Record(&buf, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Stream) != sc.Arrivals {
		t.Fatalf("recorded %d events, want %d", len(rec.Stream), sc.Arrivals)
	}
	first := append([]byte(nil), buf.Bytes()...)

	dec, err := Decode(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Stream) != len(rec.Stream) {
		t.Fatalf("decoded %d events, want %d", len(dec.Stream), len(rec.Stream))
	}
	for i := range dec.Stream {
		if dec.Stream[i] != rec.Stream[i] {
			t.Fatalf("event %d did not round-trip:\n  recorded %+v\n  decoded  %+v", i, rec.Stream[i], dec.Stream[i])
		}
	}

	var buf2 bytes.Buffer
	if err := Write(&buf2, dec); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, buf2.Bytes()) {
		t.Fatal("decode→encode is not byte-identical")
	}
}

// TestDecodeRejectsMalformed walks the schema's failure modes; every one
// must produce an error (never a panic, never silent acceptance).
func TestDecodeRejectsMalformed(t *testing.T) {
	sc := testScenario()
	var buf bytes.Buffer
	if _, err := Record(&buf, sc); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")

	cases := map[string]string{
		"empty":            "",
		"not json":         "garbage\n",
		"wrong kind":       `{"version":1,"kind":"nope","scenario":{}}` + "\n",
		"future version":   strings.Replace(lines[0], `"version":1`, `"version":99`, 1) + "\n",
		"unknown field":    lines[0] + "\n" + `{"id":0,"at":1,"nf":"ACL","profile":{"flows":1,"pktsize":64,"mtbr":0},"sla":0.1,"lifetime":1,"bogus":true}` + "\n",
		"trailing garbage": lines[0] + "\n" + lines[1] + ` {"x":1}` + "\n",
		"missing nf":       lines[0] + "\n" + `{"id":0,"at":1,"nf":"","profile":{"flows":1,"pktsize":64,"mtbr":0},"sla":0.1,"lifetime":1}` + "\n",
		"id out of order":  lines[0] + "\n" + strings.Replace(lines[1], `"id":0`, `"id":5`, 1) + "\n",
		"negative sla":     lines[0] + "\n" + `{"id":0,"at":1,"nf":"ACL","profile":{"flows":1,"pktsize":64,"mtbr":0},"sla":-0.1,"lifetime":1}` + "\n",
		"sla above one":    lines[0] + "\n" + `{"id":0,"at":1,"nf":"ACL","profile":{"flows":1,"pktsize":64,"mtbr":0},"sla":1.5,"lifetime":1}` + "\n",
		"zero lifetime":    lines[0] + "\n" + `{"id":0,"at":1,"nf":"ACL","profile":{"flows":1,"pktsize":64,"mtbr":0},"sla":0.1,"lifetime":0}` + "\n",
		"nan mtbr":         lines[0] + "\n" + `{"id":0,"at":1,"nf":"ACL","profile":{"flows":1,"pktsize":64,"mtbr":1e999},"sla":0.1,"lifetime":1}` + "\n",
		"bad drift":        lines[0] + "\n" + `{"id":0,"at":1,"nf":"ACL","profile":{"flows":1,"pktsize":64,"mtbr":0},"sla":0.1,"lifetime":1,"drift":{"at":-1,"profile":{"flows":1,"pktsize":64,"mtbr":0}}}` + "\n",
		"unknown class":    strings.Replace(lines[0], `"class":"pensando"`, `"class":"wat"`, 1) + "\n",
	}
	for name, input := range cases {
		if _, err := Decode(strings.NewReader(input)); err == nil {
			t.Errorf("%s: Decode accepted malformed input", name)
		}
	}
}

// TestDecodeOutOfOrderArrivals covers the time-monotonicity check.
func TestDecodeOutOfOrderArrivals(t *testing.T) {
	sc := testScenario()
	var buf bytes.Buffer
	rec, err := Record(&buf, sc)
	if err != nil {
		t.Fatal(err)
	}
	// Re-stamp event 1 to arrive before event 0 and re-encode.
	rec.Stream[1].At = rec.Stream[0].At / 2
	rec.Stream[1].ID = 1
	var bad bytes.Buffer
	if err := Write(&bad, rec); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(&bad); err == nil {
		t.Fatal("Decode accepted out-of-order arrival times")
	}
}

// TestReplayThroughCluster runs a decoded trace through the fleet
// orchestrator and checks it reproduces a straight scenario run — the
// trace layer must be a transparent detour.
func TestReplayThroughCluster(t *testing.T) {
	sc := cluster.Scenario{
		NICs:      3,
		Arrivals:  10,
		Seed:      5,
		NFs:       []string{"FlowStats", "ACL"},
		Profiles:  2,
		DriftProb: 0.5,
	}.WithDefaults()
	var buf bytes.Buffer
	if _, err := Record(&buf, sc); err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	newEnv := func() *cluster.Env {
		return cluster.NewEnv(nicsim.BlueField2(), 1, cluster.MapModels{})
	}
	policies := []string{"random", "firstfit"}
	direct, err := cluster.Run(t.Context(), newEnv(), sc, policies)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := cluster.RunStream(t.Context(), newEnv(), dec.Scenario, dec.Stream, policies)
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct.Results {
		d, r := direct.Results[i], replayed.Results[i]
		d.DecisionP50, d.DecisionP99, r.DecisionP50, r.DecisionP99 = 0, 0, 0, 0
		if d != r {
			t.Fatalf("trace replay diverged for %s:\n direct %+v\n replay %+v", d.Policy, d, r)
		}
	}
}
