package cluster

import (
	"context"
	"sync"
	"testing"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/nicsim"
	"repro/internal/placement"
	"repro/internal/profiling"
	"repro/internal/slomo"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

// testNFs is the pool the model-needing tests draw from; kept to two NFs
// so tiny-model training stays cheap.
var testNFs = []string{"FlowStats", "ACL"}

var (
	modelsOnce sync.Once
	tinyModels MapModels
	modelsErr  error
)

// testModels trains minimal-cost Yala and SLOMO models for testNFs once
// per test binary. Accuracy is irrelevant — these tests assert
// determinism and orchestration logic, not model quality.
func testModels(t testing.TB) MapModels {
	t.Helper()
	modelsOnce.Do(func() {
		tb := testbed.New(nicsim.BlueField2(), 1)
		cfg := core.DefaultTrainConfig()
		cfg.Seed = 1
		cfg.Plan = profiling.Random(12, 1)
		cfg.PatternProbes = 1
		cfg.GBR = ml.GBRConfig{Trees: 25, LearningRate: 0.15, MaxDepth: 3, MinLeaf: 2, Subsample: 1, Seed: 1}
		scfg := slomo.DefaultConfig()
		scfg.Seed = 1
		scfg.Samples = 12
		scfg.GBR = cfg.GBR
		tinyModels = MapModels{"yala": {}, "slomo": {}}
		for _, name := range testNFs {
			m, err := core.NewTrainer(tb, cfg).Train(name)
			if err != nil {
				modelsErr = err
				return
			}
			tinyModels["yala"][name] = backend.WrapYala(m)
			sm, err := slomo.Train(tb, name, traffic.Default, scfg)
			if err != nil {
				modelsErr = err
				return
			}
			tinyModels["slomo"][name] = backend.WrapSLOMO(sm)
		}
	})
	if modelsErr != nil {
		t.Fatalf("training test models: %v", modelsErr)
	}
	return tinyModels
}

func testEnv(t testing.TB, models ModelSource) *Env {
	t.Helper()
	if models == nil {
		models = MapModels{}
	}
	return NewEnv(nicsim.BlueField2(), 1, models)
}

func testScenario() Scenario {
	return Scenario{
		NICs:      4,
		Arrivals:  12,
		Seed:      3,
		NFs:       testNFs,
		Profiles:  2,
		DriftProb: 0.5,
	}.WithDefaults()
}

func TestStreamDeterministicAndOrdered(t *testing.T) {
	for _, kind := range Workloads() {
		sc := testScenario()
		sc.Workload = kind
		s1, s2 := sc.Stream(), sc.Stream()
		if len(s1) != sc.Arrivals {
			t.Fatalf("%s: stream has %d events, want %d", kind, len(s1), sc.Arrivals)
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("%s: stream not deterministic at %d: %+v vs %+v", kind, i, s1[i], s2[i])
			}
			if s1[i].ID != i {
				t.Fatalf("%s: event %d has tenant ID %d", kind, i, s1[i].ID)
			}
			if i > 0 && s1[i].At < s1[i-1].At {
				t.Fatalf("%s: event %d at %g before event %d at %g", kind, i, s1[i].At, i-1, s1[i-1].At)
			}
			if sla := s1[i].SLA; sla < sc.SLALo || sla > sc.SLAHi {
				t.Fatalf("%s: event %d SLA %g outside [%g, %g]", kind, i, sla, sc.SLALo, sc.SLAHi)
			}
			if s1[i].Lifetime <= 0 {
				t.Fatalf("%s: event %d has non-positive lifetime %g", kind, i, s1[i].Lifetime)
			}
			if s1[i].DriftAt < 0 {
				t.Fatalf("%s: event %d has negative drift time %g", kind, i, s1[i].DriftAt)
			}
		}
		// A different seed must produce a different stream.
		sc2 := sc
		sc2.Seed = sc.Seed + 1
		d1, d2 := sc.Stream(), sc2.Stream()
		same := true
		for i := range d1 {
			if d1[i] != d2[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: different seeds produced identical streams", kind)
		}
	}
}

func TestWorkloadKindsDiffer(t *testing.T) {
	base := testScenario()
	base.Arrivals = 40
	streams := map[string][]TenantSpec{}
	for _, kind := range Workloads() {
		sc := base
		sc.Workload = kind
		streams[kind] = sc.Stream()
	}
	// Each non-churn generator must actually reshape the workload.
	for _, kind := range []string{WorkloadDiurnal, WorkloadFlashCrowd, WorkloadHeavyTail} {
		same := true
		for i := range streams[kind] {
			if streams[kind][i] != streams[WorkloadChurn][i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("workload %s generated the identical stream to churn", kind)
		}
	}
	// Unknown kinds are rejected.
	bad := base
	bad.Workload = "nope"
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown workload kind validated")
	}
}

func TestFirstFitAndRandomPolicies(t *testing.T) {
	env := testEnv(t, nil)
	f := env.NewFleet(3)
	a := placement.Arrival{Name: "FlowStats", Profile: traffic.Default, SLA: 0.1}

	ff, err := NewScheduler("firstfit", env, 1)
	if err != nil {
		t.Fatal(err)
	}
	if idx, _ := ff.Choose(f, a); idx != 0 {
		t.Fatalf("firstfit on empty fleet chose %d, want 0", idx)
	}
	// Fill NIC 0; first-fit moves to NIC 1.
	for f.Fits(0) {
		f.place(0, Tenant{ID: 100 + len(f.NICs[0].Tenants), Arrival: a})
	}
	if idx, _ := ff.Choose(f, a); idx != 1 {
		t.Fatalf("firstfit with NIC 0 full chose %d, want 1", idx)
	}

	// Random only ever picks NICs with capacity, deterministically under
	// one seed.
	r1, _ := NewScheduler("random", env, 7)
	r2, _ := NewScheduler("random", env, 7)
	for i := 0; i < 20; i++ {
		i1, _ := r1.Choose(f, a)
		i2, _ := r2.Choose(f, a)
		if i1 != i2 {
			t.Fatalf("random policy not deterministic: %d vs %d", i1, i2)
		}
		if i1 == 0 {
			t.Fatal("random chose a full NIC")
		}
	}

	// A full fleet rejects under every policy.
	for i := 1; i < 3; i++ {
		for f.Fits(i) {
			f.place(i, Tenant{ID: 200 + 10*i + len(f.NICs[i].Tenants), Arrival: a})
		}
	}
	for _, name := range []string{"random", "firstfit"} {
		s, _ := NewScheduler(name, env, 1)
		if idx, _ := s.Choose(f, a); idx != -1 {
			t.Fatalf("%s on full fleet chose %d, want -1", name, idx)
		}
	}

	if _, err := NewScheduler("nope", env, 1); err == nil {
		t.Fatal("unknown policy did not error")
	}
}

func TestPredictFitConsolidatesUnderGenerousSLA(t *testing.T) {
	env := testEnv(t, testModels(t))
	f := env.NewFleet(3)
	// NIC 1 holds one resident; a generous SLA makes co-location
	// predicted-feasible, so best-fit must consolidate onto NIC 1 rather
	// than open an empty NIC.
	generous := placement.Arrival{Name: "FlowStats", Profile: traffic.Default, SLA: 0.95}
	f.place(1, Tenant{ID: 0, Arrival: generous})
	for _, policy := range []string{"yala", "slomo"} {
		s, err := NewScheduler(policy, env, 1)
		if err != nil {
			t.Fatal(err)
		}
		idx, err := s.Choose(f, generous)
		if err != nil {
			t.Fatal(err)
		}
		if idx != 1 {
			t.Fatalf("%s chose NIC %d, want consolidation on 1", policy, idx)
		}
	}
}

func TestEventOrdering(t *testing.T) {
	env := testEnv(t, nil)
	// One NIC, one tenant slot: admission outcomes depend entirely on
	// event order.
	env.Sim.NFCores = env.Sim.NICCores
	sc := Scenario{NICs: 1, Arrivals: 3, Seed: 5, NFs: testNFs, DriftProb: -1}.WithDefaults()
	o, err := newOrchestrator(context.Background(), env, sc, firstFit{})
	if err != nil {
		t.Fatal(err)
	}
	a := placement.Arrival{Name: "FlowStats", Profile: traffic.Default, SLA: 0.1}
	// Tenant 0 occupies the slot for life0 seconds; tenant 1 arrives
	// mid-life and must be rejected; tenant 2 arrives after the
	// departure and must be admitted.
	const life0 = 20.0
	spec := func(id int, at, life float64) TenantSpec {
		return TenantSpec{Tenant: Tenant{ID: id, Arrival: a}, At: at, Lifetime: life}
	}
	for _, s := range []TenantSpec{
		spec(0, 1, life0),
		spec(1, 1+life0/2, life0),
		spec(2, 1+life0+1, life0),
	} {
		s := s
		o.engine.At(s.At, func() { o.arrive(s) })
	}
	o.engine.Run()
	if o.err != nil {
		t.Fatal(o.err)
	}
	if o.res.Admitted != 2 || o.res.Rejected != 1 || o.res.Departures != 2 {
		t.Fatalf("admitted/rejected/departed = %d/%d/%d, want 2/1/2",
			o.res.Admitted, o.res.Rejected, o.res.Departures)
	}
	if o.fleet.Tenants() != 0 {
		t.Fatalf("%d tenants still resident after drain", o.fleet.Tenants())
	}
}

// scriptSched returns a fixed sequence of targets — the migration tests
// drive the orchestrator with it, independent of any model.
type scriptSched struct {
	targets []int
	i       int
}

func (s *scriptSched) Name() string { return "script" }

func (s *scriptSched) Choose(f *Fleet, a placement.Arrival) (int, error) {
	t := s.targets[s.i%len(s.targets)]
	s.i++
	return t, nil
}

func TestDriftMigration(t *testing.T) {
	env := testEnv(t, nil)
	sc := Scenario{NICs: 2, Arrivals: 1, Seed: 1, NFs: testNFs}.WithDefaults()
	// Two regex-accelerator NFs share NIC 0 under zero-tolerance SLAs:
	// any throughput drop is a breach, so the post-drift check must
	// breach and the scripted policy migrates the drifted tenant to the
	// empty NIC 1.
	o, err := newOrchestrator(context.Background(), env, sc, &scriptSched{targets: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	o.fleet.place(0, Tenant{ID: 0, Arrival: placement.Arrival{Name: "NIDS", Profile: traffic.Default, SLA: 0}})
	o.fleet.place(0, Tenant{ID: 1, Arrival: placement.Arrival{Name: "FlowMonitor", Profile: traffic.Default, SLA: 0}})
	o.drift(1, traffic.Profile{Flows: 64000, PktSize: 512, MTBR: 1000})
	if o.err != nil {
		t.Fatal(o.err)
	}
	if o.res.Violations == 0 {
		t.Fatal("zero-tolerance co-location drifted without a recorded violation")
	}
	if o.res.Migrations != 1 || o.res.Evictions != 0 {
		t.Fatalf("migrations/evictions = %d/%d, want 1/0", o.res.Migrations, o.res.Evictions)
	}
	if got := o.fleet.locate(1); got != 1 {
		t.Fatalf("drifted tenant on NIC %d, want 1", got)
	}
	if len(o.fleet.NICs[0].Tenants) != 1 {
		t.Fatalf("NIC 0 has %d tenants after migration, want 1", len(o.fleet.NICs[0].Tenants))
	}
}

func TestDriftEvictionWhenNoTarget(t *testing.T) {
	env := testEnv(t, nil)
	sc := Scenario{NICs: 1, Arrivals: 1, Seed: 1, NFs: testNFs}.WithDefaults()
	// Single-NIC fleet: the policy can only re-offer the breached NIC,
	// so the drifted tenant must be evicted.
	o, err := newOrchestrator(context.Background(), env, sc, &scriptSched{targets: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	o.fleet.place(0, Tenant{ID: 0, Arrival: placement.Arrival{Name: "NIDS", Profile: traffic.Default, SLA: 0}})
	o.fleet.place(0, Tenant{ID: 1, Arrival: placement.Arrival{Name: "FlowMonitor", Profile: traffic.Default, SLA: 0}})
	o.drift(1, traffic.Profile{Flows: 64000, PktSize: 512, MTBR: 1000})
	if o.err != nil {
		t.Fatal(o.err)
	}
	if o.res.Evictions != 1 || o.res.Migrations != 0 {
		t.Fatalf("evictions/migrations = %d/%d, want 1/0", o.res.Evictions, o.res.Migrations)
	}
	if got := o.fleet.locate(1); got != -1 {
		t.Fatalf("evicted tenant still resident on NIC %d", got)
	}
}

// stripLatencies zeroes the wall-clock fields so runs compare on
// placement outcomes alone.
func stripLatencies(rs []PolicyResult) []PolicyResult {
	out := append([]PolicyResult(nil), rs...)
	for i := range out {
		out[i].DecisionP50, out[i].DecisionP99 = 0, 0
	}
	return out
}

// TestBatchedMatchesPerSlot pins the batched scheduler hot path to the
// per-slot reference loop: over a mixed, partially loaded fleet, both
// must make the identical decision for a spread of arrivals — the
// invariant every future hot-path refactor must keep.
func TestBatchedMatchesPerSlot(t *testing.T) {
	env := testEnv(t, testModels(t))
	sc := Scenario{
		Classes:   []ClassSpec{{Class: "bluefield2", Count: 3}, {Class: "pensando", Count: 2}},
		NFs:       testNFs,
		Profiles:  3,
		Seed:      11,
		DriftProb: 0.5,
	}.WithDefaults()
	if err := env.Prewarm(context.Background(), sc, []string{"yala", "slomo"}); err != nil {
		t.Fatal(err)
	}
	f, err := env.ScenarioFleet(sc)
	if err != nil {
		t.Fatal(err)
	}
	pool := sc.ProfilePool()
	// Load the fleet unevenly so empty, partial and full NICs all occur.
	id := 0
	for i := range f.NICs {
		for j := 0; j < i%3; j++ {
			f.place(i, Tenant{ID: id, Arrival: placement.Arrival{
				Name:    testNFs[id%len(testNFs)],
				Profile: pool[id%len(pool)],
				SLA:     0.3 + 0.1*float64(id%4),
			}})
			id++
		}
	}
	for _, strat := range []placement.Strategy{placement.YalaAware, placement.SLOMOAware} {
		name := "yala"
		if strat == placement.SLOMOAware {
			name = "slomo"
		}
		batched := predictFit{env: env, strat: strat, name: name}
		perSlot := predictFit{env: env, strat: strat, name: name, perSlot: true}
		for k := 0; k < 12; k++ {
			a := placement.Arrival{
				Name:    testNFs[k%len(testNFs)],
				Profile: pool[k%len(pool)],
				SLA:     0.05 + 0.08*float64(k%8),
			}
			got, err := batched.Choose(f, a)
			if err != nil {
				t.Fatal(err)
			}
			want, err := perSlot.Choose(f, a)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s arrival %d: batched chose %d, per-slot chose %d", name, k, got, want)
			}
		}
	}
}

// TestHeterogeneousFleet checks class resolution end to end: per-class
// core budgets (including the capacity override), scenario totals, and a
// full comparison run over a mixed fleet.
func TestHeterogeneousFleet(t *testing.T) {
	env := testEnv(t, testModels(t))
	sc := Scenario{
		Classes: []ClassSpec{
			{Class: "bluefield2", Count: 2},
			{Class: "pensando", Count: 1},
			{Class: "bluefield2", Count: 1, Cores: 4},
		},
		Arrivals:  10,
		Seed:      3,
		NFs:       testNFs,
		Profiles:  2,
		DriftProb: 0.5,
	}.WithDefaults()
	if sc.NICs != 4 {
		t.Fatalf("WithDefaults derived %d NICs, want 4", sc.NICs)
	}
	f, err := env.ScenarioFleet(sc)
	if err != nil {
		t.Fatal(err)
	}
	wantCores := []int{8, 8, 16, 4}
	for i, n := range f.NICs {
		if n.Cores != wantCores[i] {
			t.Fatalf("NIC %d has %d cores, want %d", i, n.Cores, wantCores[i])
		}
	}
	if got := f.TotalCores(); got != 36 {
		t.Fatalf("fleet total cores %d, want 36", got)
	}
	// The scaled-down class must reject a second tenant (4 cores, 2 per NF
	// → one resident fills it at two).
	if !f.Fits(3) {
		t.Fatal("empty 4-core NIC should fit one NF")
	}
	f.place(3, Tenant{ID: 99, Arrival: placement.Arrival{Name: testNFs[0], Profile: traffic.Default, SLA: 0.5}})
	f.place(3, Tenant{ID: 100, Arrival: placement.Arrival{Name: testNFs[0], Profile: traffic.Default, SLA: 0.5}})
	if f.Fits(3) {
		t.Fatal("4-core NIC fit a third NF")
	}

	run := func() []PolicyResult {
		cmp, err := Run(context.Background(), testEnv(t, testModels(t)), sc, []string{"firstfit", "yala"})
		if err != nil {
			t.Fatal(err)
		}
		return stripLatencies(cmp.Results)
	}
	r1, r2 := run(), run()
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("mixed-fleet run not deterministic:\n%+v\n%+v", r1[i], r2[i])
		}
		if got := r1[i].Admitted + r1[i].Rejected + r1[i].Rollbacks; got != sc.Arrivals {
			t.Fatalf("policy %s: admitted+rejected+rollbacks = %d, want %d", r1[i].Policy, got, sc.Arrivals)
		}
	}

	// Unknown classes fail validation and fleet construction.
	bad := sc
	bad.Classes = []ClassSpec{{Class: "connectx", Count: 1}}
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown class validated")
	}
	if _, err := env.ScenarioFleet(bad); err == nil {
		t.Fatal("unknown class built a fleet")
	}
}

// TestRunStreamReplayIdentical asserts the core replay guarantee: a
// comparison over a scenario equals a comparison over its recorded
// stream, event for event, on a fresh environment.
func TestRunStreamReplayIdentical(t *testing.T) {
	models := testModels(t)
	sc := testScenario()
	policies := []string{"random", "firstfit", "yala"}
	direct, err := Run(context.Background(), testEnv(t, models), sc, policies)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := RunStream(context.Background(), testEnv(t, models), sc, sc.Stream(), policies)
	if err != nil {
		t.Fatal(err)
	}
	d, r := stripLatencies(direct.Results), stripLatencies(replayed.Results)
	for i := range d {
		if d[i] != r[i] {
			t.Fatalf("replay diverged for %s:\n direct %+v\n replay %+v", d[i].Policy, d[i], r[i])
		}
	}
}

func TestRunComparisonDeterministicAndAccounted(t *testing.T) {
	models := testModels(t)
	sc := testScenario()
	policies := []string{"random", "firstfit", "slomo", "yala"}

	run := func() []PolicyResult {
		cmp, err := Run(context.Background(), testEnv(t, models), sc, policies)
		if err != nil {
			t.Fatal(err)
		}
		return stripLatencies(cmp.Results)
	}
	r1, r2 := run(), run()
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("policy %s not deterministic across envs:\n%+v\n%+v",
				r1[i].Policy, r1[i], r2[i])
		}
		if r1[i].Arrivals != sc.Arrivals {
			t.Fatalf("policy %s saw %d arrivals, want %d", r1[i].Policy, r1[i].Arrivals, sc.Arrivals)
		}
		if got := r1[i].Admitted + r1[i].Rejected + r1[i].Rollbacks; got != sc.Arrivals {
			t.Fatalf("policy %s: admitted+rejected+rollbacks = %d, want %d",
				r1[i].Policy, got, sc.Arrivals)
		}
	}
}
