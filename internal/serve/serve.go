// Package serve is the online prediction-serving subsystem: the
// long-running system the paper's operators would deploy, layered over
// the offline artifacts the rest of the tree produces.
//
// The paper frames Yala's predictor as an online component consulted at
// NF-arrival time — persisted models are loaded "without re-profiling"
// and drive admission and placement decisions. This package turns the
// one-shot CLI flow into a service:
//
//   - ModelRegistry discovers and lazily loads persisted per-NF models
//     (Yala and the SLOMO baseline) from a model directory, suppressing
//     duplicate loads under concurrency and training-and-persisting on
//     demand when a model file is absent.
//   - Service answers Predict / Compare / Admit / Diagnose requests
//     through a bounded worker pool, with a sharded LRU cache keyed on
//     (NF, competitor set, traffic profile) — sound because predictions
//     are deterministic functions of that key.
//   - Handler exposes the service over HTTP/JSON (yala serve), and
//     Loadgen replays randomized arrival scenarios against a live server
//     (yala loadgen), reporting throughput and latency percentiles.
//   - Telemetry (internal/obs) rides every request: GET /metrics serves
//     Prometheus-format counters, gauges and latency histograms, each
//     request carries an X-Request-Id through a trace context, and
//     per-stage spans (decode, cache, predict, encode) attribute where
//     server time went — surfaced in /metrics, the optional access log,
//     and loadgen's server-side stage breakdown.
package serve

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/backend"
	"repro/internal/nf"
	"repro/internal/traffic"
)

// ErrBadRequest tags request errors the client caused — unknown NF
// names, malformed traffic profiles, unknown backends or policies. The
// HTTP layer maps it to 400 so clients can distinguish "fix your
// request" from "the service could not answer" (422) and transient
// conditions (503).
var ErrBadRequest = errors.New("bad request")

// badRequestf builds an ErrBadRequest-tagged error.
func badRequestf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadRequest, fmt.Sprintf(format, args...))
}

// validNF rejects NF names outside the catalog before any model or
// measurement work happens.
func validNF(name string) error {
	if strings.TrimSpace(name) == "" {
		return badRequestf("missing NF name")
	}
	if !nf.Known(name) {
		return badRequestf("unknown NF %q (have %s)", name, strings.Join(nf.Names(), ", "))
	}
	return nil
}

// Profile attribute sanity bounds. The simulator would accept larger
// values, but a request beyond these is a malformed profile, not a
// workload — and unbounded values turn one request into an arbitrarily
// expensive simulation.
const (
	maxProfileFlows   = 1_000_000
	maxProfilePktSize = 9216 // jumbo frame
	maxProfileMTBR    = 1e5
)

// validate rejects malformed traffic profiles. Zero values mean "use the
// default attribute" on the wire, so only negative or absurd values are
// errors.
func (p ProfileSpec) validate() error {
	if p.Flows < 0 || p.Flows > maxProfileFlows {
		return badRequestf("profile flows %d out of range [0, %d]", p.Flows, maxProfileFlows)
	}
	if p.PktSize < 0 || p.PktSize > maxProfilePktSize {
		return badRequestf("profile pktsize %d out of range [0, %d]", p.PktSize, maxProfilePktSize)
	}
	if p.MTBR != nil && (*p.MTBR < 0 || *p.MTBR > maxProfileMTBR) {
		return badRequestf("profile mtbr %g out of range [0, %g]", *p.MTBR, float64(maxProfileMTBR))
	}
	return nil
}

// validateScenario checks the (NF, profile, competitors, backend) tuple
// every prediction-shaped request carries.
func validateScenario(nfName string, prof ProfileSpec, comps []CompetitorSpec, backend string) error {
	if _, err := ParseBackend(backend); err != nil {
		return badRequestf("%v", err)
	}
	if err := validNF(nfName); err != nil {
		return err
	}
	if err := prof.validate(); err != nil {
		return err
	}
	for i, c := range comps {
		if err := validNF(c.Name); err != nil {
			return fmt.Errorf("competitors[%d]: %w", i, err)
		}
		if err := c.Profile.validate(); err != nil {
			return fmt.Errorf("competitors[%d]: %w", i, err)
		}
	}
	return nil
}

// Backend selects which predictor answers a request. Valid values are
// the names registered with internal/backend.
type Backend string

// The built-in prediction backends.
const (
	BackendYala  Backend = "yala"
	BackendSLOMO Backend = "slomo"
)

// ParseBackend normalizes a request's backend field against the backend
// registry; empty selects the default (yala). Any registered backend —
// including ones this package has never heard of — parses.
func ParseBackend(s string) (Backend, error) {
	name := strings.ToLower(strings.TrimSpace(s))
	if name == "" {
		name = backend.DefaultName
	}
	if _, ok := backend.Get(name); !ok {
		return "", fmt.Errorf("serve: unknown backend %q (have %s)", s, strings.Join(backend.Names(), ", "))
	}
	return Backend(name), nil
}

// ProfileSpec is a traffic profile on the wire. Absent attributes fall
// back to the paper's default profile. MTBR is a pointer because 0
// matches/MB is a valid value (a match-free workload) that must remain
// distinguishable from "not specified"; flows and packet size have
// positive lower bounds, so 0 can mean absent there.
type ProfileSpec struct {
	Flows   int      `json:"flows,omitempty"`
	PktSize int      `json:"pktsize,omitempty"`
	MTBR    *float64 `json:"mtbr,omitempty"`
}

// F64 builds the pointer form MTBR takes in a ProfileSpec literal.
func F64(v float64) *float64 { return &v }

// Profile resolves the spec against the default profile.
func (p ProfileSpec) Profile() traffic.Profile {
	prof := traffic.Default
	if p.Flows > 0 {
		prof.Flows = p.Flows
	}
	if p.PktSize > 0 {
		prof.PktSize = p.PktSize
	}
	if p.MTBR != nil {
		prof.MTBR = *p.MTBR
	}
	return prof
}

// SpecOf converts a resolved profile back to its wire form.
func SpecOf(p traffic.Profile) ProfileSpec {
	return ProfileSpec{Flows: p.Flows, PktSize: p.PktSize, MTBR: F64(p.MTBR)}
}

// CompetitorSpec names one co-located NF and its traffic profile.
type CompetitorSpec struct {
	Name    string      `json:"name"`
	Profile ProfileSpec `json:"profile,omitzero"`
}

// specKey renders one competitor canonically.
func specKey(c CompetitorSpec) string {
	return fmt.Sprintf("%s@%s", c.Name, c.Profile.Profile())
}

// canonSpecs returns the competitor set in canonical order. Both the
// cache key and the computation must see one order: counter aggregation
// and ground-truth co-runs are order-sensitive (IPC averaging, per-run
// RNG draws), so serving a sorted-key cache entry for an unsorted
// computation would break the cache-equals-direct invariant.
func canonSpecs(specs []CompetitorSpec) []CompetitorSpec {
	out := append([]CompetitorSpec(nil), specs...)
	sort.Slice(out, func(i, j int) bool { return specKey(out[i]) < specKey(out[j]) })
	return out
}

// scenarioKey renders the deterministic cache-key fragment for a target
// NF, its profile and a canonically ordered competitor set (canonSpecs).
func scenarioKey(nf string, prof traffic.Profile, comps []CompetitorSpec) string {
	parts := make([]string, len(comps))
	for i, c := range comps {
		parts[i] = specKey(c)
	}
	return fmt.Sprintf("%s@%s|%s", nf, prof, strings.Join(parts, ","))
}

// The quick on-demand training configurations moved to internal/backend
// (QuickYalaConfig, QuickSLOMOConfig) alongside the backends that
// consume them.
