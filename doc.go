// Package repro is a from-scratch Go reproduction of "Performance
// Prediction of On-NIC Network Functions with Multi-Resource Contention
// and Traffic Awareness" (ASPLOS 2025): the Yala prediction framework,
// the network functions it models, and a simulated SoC SmartNIC standing
// in for the paper's BlueField-2 testbed.
//
// See README.md for the package map, CLI entry points and the online
// prediction-serving subsystem (internal/serve). The benchmarks in
// bench_test.go regenerate each of the paper's experiments.
package repro
