package serve

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/backend"
	"repro/internal/cluster"
	"repro/internal/feedback"
	"repro/internal/obs"
	"repro/internal/tenant"
)

// The /v2 API is resource-oriented: models are resources named
// "<nf>[@<hw>]" (hw = a fleet hardware class; absent = the server's
// default NIC), predictions are custom methods on a model's backend, and
// cluster runs are a collection:
//
//	GET  /v2/models?page_size=&page_token=       → paginated model list
//	POST /v2/models:batchPredict                 → batch predict across models
//	POST /v2/models/{model}/{backend}:predict    → PredictResponse
//	POST /v2/models/{model}/{backend}:admit      → AdmitResponse
//	POST /v2/models/{model}/{backend}:reload     → {"ok": true}
//	POST /v2/models/{model}:compare              → CompareResponse
//	POST /v2/models/{model}:diagnose             → DiagnoseResponse
//	POST /v2/ingest                              → IngestResult (online feedback)
//	POST /v2/cluster/runs                        → cluster.Comparison
//	GET  /v2/cluster/policies                    → ClusterPoliciesResponse
//	GET  /v2/stats                               → ServiceStats
//
// Every /v2 error is the structured envelope {"error": {code, message,
// details?, request_id}} with a machine-readable code; the request ID is
// echoed in the X-Request-Id header on every response.

// /v2 error codes.
const (
	codeInvalidArgument    = "invalid_argument"
	codeNotFound           = "not_found"
	codeMethodNotAllowed   = "method_not_allowed"
	codeFailedPrecondition = "failed_precondition"
	codeUnavailable        = "unavailable"
)

// errorInfoV2 is the structured /v2 error payload.
type errorInfoV2 struct {
	Code      string            `json:"code"`
	Message   string            `json:"message"`
	Details   map[string]string `json:"details,omitempty"`
	RequestID string            `json:"request_id,omitempty"`
}

// errorBodyV2 is the /v2 error envelope.
type errorBodyV2 struct {
	Error errorInfoV2 `json:"error"`
}

// errorCode maps a service error to its /v2 code, mirroring errorStatus.
func errorCode(err error) string {
	switch {
	case errors.Is(err, ErrBadRequest):
		return codeInvalidArgument
	case errors.Is(err, ErrClosed), errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return codeUnavailable
	}
	return codeFailedPrecondition
}

func writeErrorV2(w http.ResponseWriter, r *http.Request, status int, code, message string, details map[string]string) {
	writeJSON(w, status, errorBodyV2{Error: errorInfoV2{
		Code:      code,
		Message:   message,
		Details:   details,
		RequestID: requestID(r),
	}})
}

// codeCanceled marks a request the client abandoned (499); it is not
// in the regular code table because only the request's own context can
// produce it.
const codeCanceled = "canceled"

// writeServiceErrorV2 renders a service-layer error in the envelope. A
// cancellation caused by the request's own context maps to 499/
// "canceled" rather than 503/"unavailable" so client disconnects never
// read as server errors (see errorStatusReq).
func writeServiceErrorV2(w http.ResponseWriter, r *http.Request, err error) {
	status := errorStatusReq(r, err)
	code := errorCode(err)
	if status == tenant.StatusClientClosedRequest {
		code = codeCanceled
	}
	writeErrorV2(w, r, status, code, err.Error(), nil)
}

// decodeV2 reads a /v2 request body strictly. An empty body decodes to
// the zero request — custom verbs like :diagnose and :reload are usable
// without one.
func decodeV2[Req any](w http.ResponseWriter, r *http.Request, req *Req) bool {
	sp := obs.StartSpan(r.Context(), "decode")
	defer sp.End()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 10<<20))
	if err != nil {
		writeErrorV2(w, r, http.StatusBadRequest, codeInvalidArgument, "reading request body: "+err.Error(), nil)
		return false
	}
	if len(bytes.TrimSpace(body)) == 0 {
		return true
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(req); err != nil {
		writeErrorV2(w, r, http.StatusBadRequest, codeInvalidArgument, "decoding request body: "+err.Error(), nil)
		return false
	}
	return true
}

// handleV2 decodes, runs and encodes one /v2 call.
func handleV2[Req, Resp any](w http.ResponseWriter, r *http.Request, fn func(Req) (Resp, error)) {
	var req Req
	if !decodeV2(w, r, &req) {
		return
	}
	resp, err := fn(req)
	if err != nil {
		writeServiceErrorV2(w, r, err)
		return
	}
	esp := obs.StartSpan(r.Context(), "encode")
	writeJSON(w, http.StatusOK, resp)
	esp.End()
}

// parseModelID splits a /v2 model resource name "<nf>[@<hw>]".
func parseModelID(id string) (nf, hw string, err error) {
	var qualified bool
	nf, hw, qualified = strings.Cut(id, "@")
	if nf == "" {
		return "", "", fmt.Errorf("model id %q: want <nf> or <nf>@<hw>", id)
	}
	if strings.Contains(hw, "@") {
		return "", "", fmt.Errorf("model id %q: more than one @", id)
	}
	// A trailing "@" is a malformed qualifier, not a quiet request for
	// the default hardware.
	if qualified && hw == "" {
		return "", "", fmt.Errorf("model id %q: empty hardware qualifier", id)
	}
	return nf, hw, nil
}

// splitVerb cuts one "name:verb" path segment.
func splitVerb(seg string) (name, verb string, ok bool) {
	name, verb, ok = strings.Cut(seg, ":")
	return name, verb, ok && name != "" && verb != ""
}

// v2Route registers a /v2 endpoint plus a methodless fallback that
// answers wrong-method requests with the structured 405 envelope.
func v2Route(mux *http.ServeMux, method, pattern string, h http.HandlerFunc) {
	mux.HandleFunc(method+" "+pattern, h)
	mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", method)
		writeErrorV2(w, r, http.StatusMethodNotAllowed, codeMethodNotAllowed,
			fmt.Sprintf("method %s not allowed (use %s)", r.Method, method), nil)
	})
}

// Wire shapes of the /v2 custom methods. The model and backend live in
// the path, so the bodies carry only the scenario.
type (
	// predictParamsV2 is the body of :predict and :diagnose.
	predictParamsV2 struct {
		Profile     ProfileSpec      `json:"profile,omitzero"`
		Competitors []CompetitorSpec `json:"competitors,omitempty"`
	}
	// compareParamsV2 is the body of :compare.
	compareParamsV2 struct {
		Profile     ProfileSpec      `json:"profile,omitzero"`
		Competitors []CompetitorSpec `json:"competitors,omitempty"`
		GroundTruth bool             `json:"ground_truth,omitempty"`
	}
	// admitParamsV2 is the body of :admit; the candidate NF is the path
	// model, so only its profile and SLA appear here.
	admitParamsV2 struct {
		Residents []ColoNF    `json:"residents,omitempty"`
		Profile   ProfileSpec `json:"profile,omitzero"`
		SLA       float64     `json:"sla"`
	}
	// batchItemV2 is one element of :batchPredict — a fully qualified
	// (model, backend, scenario) tuple, so one batch can span NFs,
	// hardware classes and backends.
	batchItemV2 struct {
		Model       string           `json:"model"`
		Backend     string           `json:"backend,omitempty"`
		Profile     ProfileSpec      `json:"profile,omitzero"`
		Competitors []CompetitorSpec `json:"competitors,omitempty"`
	}
	batchParamsV2 struct {
		Requests []batchItemV2 `json:"requests"`
	}
	// ingestItemV2 is one ground-truth measurement of POST /v2/ingest —
	// the scenario it was taken under plus the observed throughput.
	ingestItemV2 struct {
		Model       string           `json:"model"`
		Backend     string           `json:"backend,omitempty"`
		Profile     ProfileSpec      `json:"profile,omitzero"`
		Competitors []CompetitorSpec `json:"competitors,omitempty"`
		MeasuredPPS float64          `json:"measured_pps"`
		Source      string           `json:"source,omitempty"`
	}
	ingestParamsV2 struct {
		Measurements []ingestItemV2 `json:"measurements"`
	}
	// modelInfoV2 wraps the /v1 listing entry with its resource ID.
	modelInfoV2 struct {
		ID string `json:"id"`
		ModelInfo
	}
	// statsV2 wraps the frozen /v1 stats shape with the registered
	// backend list — additions land here, never on ServiceStats.
	// UptimeSeconds duplicates the /v1 uptime_sec under the documented
	// /v2 name; StartTime (Unix seconds) is the monotonic anchor a
	// gateway aggregates by (min across replicas — uptimes must never
	// be summed).
	statsV2 struct {
		ServiceStats
		Backends      []string `json:"backends"`
		UptimeSeconds float64  `json:"uptime_seconds"`
		StartTime     int64    `json:"start_time"`
		// WireAddr advertises the yalawire listener (host:port) when one
		// is mounted — the discovery hook gateways use to upgrade their
		// upstream transport.
		WireAddr string `json:"wire_addr,omitempty"`
		// Drift is the online-feedback controller's counter snapshot
		// (ingest windows, gate decisions, shadow scoring, promotions).
		Drift feedback.Stats `json:"drift"`
	}
	// modelsPageV2 is one page of the model listing.
	modelsPageV2 struct {
		Models        []modelInfoV2 `json:"models"`
		NextPageToken string        `json:"next_page_token,omitempty"`
		TotalSize     int           `json:"total_size"`
	}
)

// Model-listing pagination bounds.
const (
	defaultPageSize = 50
	maxPageSize     = 500
)

// encodePageToken renders an opaque continuation token for offset off.
func encodePageToken(off int) string {
	return base64.RawURLEncoding.EncodeToString([]byte("off=" + strconv.Itoa(off)))
}

// decodePageToken validates and decodes a continuation token.
func decodePageToken(tok string) (int, error) {
	raw, err := base64.RawURLEncoding.DecodeString(tok)
	if err != nil {
		return 0, fmt.Errorf("malformed page_token")
	}
	v, ok := strings.CutPrefix(string(raw), "off=")
	if !ok {
		return 0, fmt.Errorf("malformed page_token")
	}
	off, err := strconv.Atoi(v)
	if err != nil || off < 0 {
		return 0, fmt.Errorf("malformed page_token")
	}
	return off, nil
}

func (s *Service) registerV2(mux *http.ServeMux) {
	v2Route(mux, "GET", "/v2/models", s.handleListModels)
	v2Route(mux, "POST", "/v2/models:batchPredict", s.handleBatchPredictV2)
	v2Route(mux, "POST", "/v2/ingest", s.handleIngestV2)
	v2Route(mux, "POST", "/v2/models/{modelverb}", s.handleModelVerbV2)
	v2Route(mux, "POST", "/v2/models/{model}/{backendverb}", s.handleBackendVerbV2)
	v2Route(mux, "POST", "/v2/cluster/runs", func(w http.ResponseWriter, r *http.Request) {
		handleV2(w, r, func(req ClusterRunRequest) (cluster.Comparison, error) {
			return s.ClusterRun(r.Context(), req)
		})
	})
	v2Route(mux, "GET", "/v2/cluster/policies", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, ClusterPoliciesResponse{Policies: cluster.Policies()})
	})
	v2Route(mux, "GET", "/v2/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, statsV2{
			ServiceStats:  s.Stats(),
			Backends:      backend.Names(),
			UptimeSeconds: time.Since(s.started).Seconds(),
			StartTime:     s.started.Unix(),
			WireAddr:      s.WireAddr(),
			Drift:         s.fb.Stats(),
		})
	})
}

// handleListModels serves GET /v2/models with offset-token pagination
// over the registry's deterministic (NF, hw, backend) ordering.
func (s *Service) handleListModels(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	size := defaultPageSize
	if v := q.Get("page_size"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeErrorV2(w, r, http.StatusBadRequest, codeInvalidArgument,
				fmt.Sprintf("page_size %q: want a positive integer", v), nil)
			return
		}
		size = min(n, maxPageSize)
	}
	off := 0
	if tok := q.Get("page_token"); tok != "" {
		var err error
		if off, err = decodePageToken(tok); err != nil {
			writeErrorV2(w, r, http.StatusBadRequest, codeInvalidArgument, err.Error(), nil)
			return
		}
	}
	all := s.reg.Models()
	page := modelsPageV2{Models: []modelInfoV2{}, TotalSize: len(all)}
	if off < len(all) {
		end := min(off+size, len(all))
		for _, info := range all[off:end] {
			page.Models = append(page.Models, modelInfoV2{ID: info.ResourceID(), ModelInfo: info})
		}
		if end < len(all) {
			page.NextPageToken = encodePageToken(end)
		}
	}
	writeJSON(w, http.StatusOK, page)
}

// handleModelVerbV2 dispatches the model-scoped custom methods:
// /v2/models/{nf[@hw]}:compare and :diagnose.
func (s *Service) handleModelVerbV2(w http.ResponseWriter, r *http.Request) {
	id, verb, ok := splitVerb(r.PathValue("modelverb"))
	if !ok {
		writeErrorV2(w, r, http.StatusNotFound, codeNotFound,
			fmt.Sprintf("no such endpoint %s %s (want /v2/models/{model}:{verb})", r.Method, r.URL.Path), nil)
		return
	}
	nf, hw, err := parseModelID(id)
	if err != nil {
		writeErrorV2(w, r, http.StatusBadRequest, codeInvalidArgument, err.Error(), nil)
		return
	}
	switch verb {
	case "compare":
		handleV2(w, r, func(p compareParamsV2) (CompareResponse, error) {
			return s.CompareOn(r.Context(), hw, CompareRequest{
				NF: nf, Profile: p.Profile, Competitors: p.Competitors, GroundTruth: p.GroundTruth,
			})
		})
	case "diagnose":
		handleV2(w, r, func(p predictParamsV2) (DiagnoseResponse, error) {
			return s.DiagnoseOn(r.Context(), hw, DiagnoseRequest{
				NF: nf, Profile: p.Profile, Competitors: p.Competitors,
			})
		})
	default:
		writeErrorV2(w, r, http.StatusNotFound, codeNotFound,
			fmt.Sprintf("unknown verb %q on %s (have compare, diagnose)", verb, id), nil)
	}
}

// handleBackendVerbV2 dispatches the backend-scoped custom methods:
// /v2/models/{nf[@hw]}/{backend}:predict, :admit and :reload.
func (s *Service) handleBackendVerbV2(w http.ResponseWriter, r *http.Request) {
	nf, hw, err := parseModelID(r.PathValue("model"))
	if err != nil {
		writeErrorV2(w, r, http.StatusBadRequest, codeInvalidArgument, err.Error(), nil)
		return
	}
	backendName, verb, ok := splitVerb(r.PathValue("backendverb"))
	if !ok {
		writeErrorV2(w, r, http.StatusNotFound, codeNotFound,
			fmt.Sprintf("no such endpoint %s %s (want /v2/models/{model}/{backend}:{verb})", r.Method, r.URL.Path), nil)
		return
	}
	switch verb {
	case "predict":
		handleV2(w, r, func(p predictParamsV2) (PredictResponse, error) {
			return s.PredictOn(r.Context(), hw, PredictRequest{
				NF: nf, Profile: p.Profile, Competitors: p.Competitors, Backend: backendName,
			})
		})
	case "admit":
		handleV2(w, r, func(p admitParamsV2) (AdmitResponse, error) {
			return s.AdmitOn(r.Context(), hw, AdmitRequest{
				Residents: p.Residents,
				Candidate: ColoNF{Name: nf, Profile: p.Profile, SLA: p.SLA},
				Backend:   backendName,
			})
		})
	case "reload":
		handleV2(w, r, func(struct{}) (map[string]bool, error) {
			parsed, err := ParseBackend(backendName)
			if err != nil {
				return nil, badRequestf("%v", err)
			}
			if err := validNF(nf); err != nil {
				return nil, err
			}
			s.Reload(parsed, nf)
			return map[string]bool{"ok": true}, nil
		})
	default:
		writeErrorV2(w, r, http.StatusNotFound, codeNotFound,
			fmt.Sprintf("unknown verb %q on %s/%s (have predict, admit, reload)", verb, nf, backendName), nil)
	}
}

// handleIngestV2 serves POST /v2/ingest — ground-truth measurements
// flowing into the online-feedback loop.
func (s *Service) handleIngestV2(w http.ResponseWriter, r *http.Request) {
	var params ingestParamsV2
	if !decodeV2(w, r, &params) {
		return
	}
	items := make([]IngestMeasurement, len(params.Measurements))
	for i, it := range params.Measurements {
		nf, hw, err := parseModelID(it.Model)
		if err != nil {
			writeErrorV2(w, r, http.StatusBadRequest, codeInvalidArgument,
				fmt.Sprintf("measurements[%d]: %v", i, err), nil)
			return
		}
		items[i] = IngestMeasurement{
			NF: nf, HW: hw, Backend: it.Backend,
			Profile: it.Profile, Competitors: it.Competitors,
			MeasuredPPS: it.MeasuredPPS, Source: it.Source,
		}
	}
	resp, err := s.Ingest(r.Context(), items)
	if err != nil {
		writeServiceErrorV2(w, r, err)
		return
	}
	esp := obs.StartSpan(r.Context(), "encode")
	writeJSON(w, http.StatusOK, resp)
	esp.End()
}

// handleBatchPredictV2 serves POST /v2/models:batchPredict — the /v2
// form of the batch endpoint, with a fully qualified model per element.
func (s *Service) handleBatchPredictV2(w http.ResponseWriter, r *http.Request) {
	var params batchParamsV2
	if !decodeV2(w, r, &params) {
		return
	}
	items := make([]hwPredict, len(params.Requests))
	for i, it := range params.Requests {
		nf, hw, err := parseModelID(it.Model)
		if err != nil {
			writeErrorV2(w, r, http.StatusBadRequest, codeInvalidArgument,
				fmt.Sprintf("requests[%d]: %v", i, err), nil)
			return
		}
		items[i] = hwPredict{hw: hw, req: PredictRequest{
			NF: nf, Profile: it.Profile, Competitors: it.Competitors, Backend: it.Backend,
		}}
	}
	resp, err := s.predictBatch(r.Context(), items)
	if err != nil {
		writeServiceErrorV2(w, r, err)
		return
	}
	esp := obs.StartSpan(r.Context(), "encode")
	writeJSON(w, http.StatusOK, resp)
	esp.End()
}
