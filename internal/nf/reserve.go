package nf

// FlowReserver is implemented by NFs whose per-flow state can pre-size
// for an expected flow population; Measure uses it to avoid growth
// cascades during table population.
type FlowReserver interface {
	ReserveFlows(n int)
}

// ReserveFlows implements FlowReserver.
func (f *FlowStats) ReserveFlows(n int) { f.table.Reserve(n) }

// ReserveFlows implements FlowReserver.
func (f *FlowClassifier) ReserveFlows(n int) { f.table.Reserve(n) }

// ReserveFlows implements FlowReserver.
func (f *FlowTracker) ReserveFlows(n int) { f.table.Reserve(n) }

// ReserveFlows implements FlowReserver.
func (t *IPTunnel) ReserveFlows(n int) { t.table.Reserve(n) }

// ReserveFlows implements FlowReserver.
func (n *NAT) ReserveFlows(flows int) { n.table.Reserve(flows) }

// ReserveFlows implements FlowReserver.
func (f *FlowMonitor) ReserveFlows(n int) { f.table.Reserve(n) }

// ReserveFlows implements FlowReserver.
func (n *NIDS) ReserveFlows(flows int) { n.streams.Reserve(flows) }

// ReserveFlows implements FlowReserver.
func (g *IPCompGateway) ReserveFlows(n int) { g.table.Reserve(n) }

// ReserveFlows implements FlowReserver.
func (f *Firewall) ReserveFlows(n int) { f.table.Reserve(n) }
