package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/nfbench"
	"repro/internal/nicsim"
	"repro/internal/profiling"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// Pseudo-composition keys for the single-resource rows of Fig. 2(b).
const (
	memOnlyKey   core.Composition = 100
	regexOnlyKey core.Composition = 101
)

// synthSource adapts a synthetic workload builder into a traffic-aware
// WorkloadSource: the regex stage's matches follow the profile MTBR, the
// compression stage's request size follows the packet size.
func synthSource(mk func(nicsim.ExecPattern) *nicsim.Workload, pattern nicsim.ExecPattern) core.WorkloadSource {
	return func(p traffic.Profile) (*nicsim.Workload, error) {
		w := mk(pattern)
		if u, ok := w.Accel[nicsim.AccelRegex]; ok {
			u.MatchesPerReq = p.MTBR * u.BytesPerReq / 1e6
			w.Accel[nicsim.AccelRegex] = u
		}
		if u, ok := w.Accel[nicsim.AccelCompress]; ok {
			payload := float64(p.PktSize) - 54
			if payload < 64 {
				payload = 64
			}
			u.BytesPerReq = payload
			w.Accel[nicsim.AccelCompress] = u
		}
		w.PktBytes = float64(p.PktSize)
		return w, nil
	}
}

// synthBuilders maps the synthetic NF names to their builders.
var synthBuilders = map[string]func(nicsim.ExecPattern) *nicsim.Workload{
	"NF1": nfbench.NF1,
	"NF2": nfbench.NF2,
}

// synthYala trains (and caches) a Yala model for a synthetic NF in a
// given execution pattern.
func (l *Lab) synthYala(name string, pattern nicsim.ExecPattern) (*core.Model, error) {
	key := fmt.Sprintf("%s/%v", name, pattern)
	if m, ok := l.yala[key]; ok {
		return m, nil
	}
	mk, ok := synthBuilders[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown synthetic NF %q", name)
	}
	accels := []nicsim.AccelKind{nicsim.AccelRegex}
	if name == "NF2" {
		accels = append(accels, nicsim.AccelCompress)
	}
	cfg := core.DefaultTrainConfig()
	cfg.Seed = l.Seed
	m, err := core.NewTrainer(l.TB, cfg).TrainSource(key, synthSource(mk, pattern), accels)
	if err != nil {
		return nil, err
	}
	l.yala[key] = m
	return m, nil
}

// synthComposition evaluates every composition strategy for a synthetic
// NF under combined contention and returns per-strategy MAPE. The map
// also contains the single-resource baselines of Fig. 2(b).
func (l *Lab) synthComposition(name string, pattern nicsim.ExecPattern) (map[core.Composition]float64, error) {
	model, err := l.synthYala(name, pattern)
	if err != nil {
		return nil, err
	}
	src := synthSource(synthBuilders[name], pattern)
	rng := sim.NewRNG(l.Seed ^ 0x5c0)

	preds := map[core.Composition][]float64{}
	var truths []float64
	for i := 0; i < l.n(40, 12); i++ {
		w, err := src(traffic.Default)
		if err != nil {
			return nil, err
		}
		memB := nfbench.MemBench(rng.Range(40e6, 160e6), rng.Range(2<<20, 12<<20))
		regexB := nfbench.RegexBench(rng.Range(0.2e6, 0.6e6), 1000, 2000, 1)
		ws := []*nicsim.Workload{w, memB, regexB}
		if name == "NF2" {
			ws = append(ws, nfbench.CompressBench(rng.Range(0.2e6, 0.5e6), 1400, 1))
		}
		ms, err := l.TB.Run(ws...)
		if err != nil {
			return nil, err
		}
		truths = append(truths, ms[0].Throughput)

		var comps []core.Competitor
		for _, bench := range ws[1:] {
			solo, err := l.TB.RunSolo(bench)
			if err != nil {
				return nil, err
			}
			comps = append(comps, core.CompetitorFromMeasurement(solo))
		}
		full := model.Predict(traffic.Default, comps)
		for _, c := range []core.Composition{core.ComposeSum, core.ComposeMin, core.ForPattern(pattern)} {
			preds[c] = append(preds[c], model.PredictWith(c, traffic.Default, comps).Throughput)
		}
		preds[memOnlyKey] = append(preds[memOnlyKey], full.PerResource[nicsim.ResMemory])
		regexT := full.PerResource[nicsim.ResRegex]
		preds[regexOnlyKey] = append(preds[regexOnlyKey], regexT)
	}
	out := map[core.Composition]float64{}
	for c, p := range preds {
		out[c] = ml.MAPE(p, truths)
	}
	return out, nil
}

// planKind selects a profiling strategy for the cost/accuracy studies.
type planKind int

const (
	planAdaptive planKind = iota
	planRandom
	planFull
)

// buildPlan constructs the requested plan for an NF.
func (l *Lab) buildPlan(name string, kind planKind, quota int) (*profiling.Plan, error) {
	switch kind {
	case planRandom:
		return profiling.Random(quota, l.Seed^0x9a), nil
	case planFull:
		// Reduced full grid: the paper's reference uses 16 packet sizes x
		// 200 flow counts (3200x); we grid 8x24 with 4 contention levels
		// per point, which preserves the cost ordering at tractable cost.
		grid := traffic.FullGrid(l.n(8, 4), l.n(24, 8))
		return profiling.Full(grid, 4, l.Seed^0x9b), nil
	default:
		cfg := core.DefaultTrainConfig()
		cfg.Seed = l.Seed
		return core.NewTrainer(l.TB, cfg).AdaptivePlan(name, profiling.DefaultConfig(quota))
	}
}

// profiledMAPE trains the NF's Yala model from the given plan and
// evaluates it on held-out random (profile, contention) points under
// memory contention.
func (l *Lab) profiledMAPE(name string, kind planKind, quota int) (float64, error) {
	plan, err := l.buildPlan(name, kind, quota)
	if err != nil {
		return 0, err
	}
	cfg := core.DefaultTrainConfig()
	cfg.Seed = l.Seed
	cfg.Plan = plan
	model, err := core.NewTrainer(l.TB, cfg).Train(name)
	if err != nil {
		return 0, err
	}
	rng := sim.NewRNG(l.Seed ^ 0x7e57)
	var preds, truths []float64
	for i := 0; i < l.n(30, 12); i++ {
		// Operational test distribution: traffic drifts from the default
		// profile along one attribute at a time (the paper's evaluation
		// varies deployments around the default, not uniformly over the
		// whole attribute cube).
		attr := traffic.Attribute(rng.Intn(int(traffic.NumAttributes)))
		lo, hi := attr.Bounds()
		prof := traffic.Default.With(attr, rng.Range(lo, hi))
		w, err := l.TB.Workload(name, prof)
		if err != nil {
			return 0, err
		}
		car, wss := rng.Range(30e6, 220e6), rng.Range(1<<20, 15<<20)
		truth, err := l.TB.WithMemBench(w, car, wss)
		if err != nil {
			return 0, err
		}
		benchSolo, err := l.TB.RunSolo(nfbench.MemBench(car, wss))
		if err != nil {
			return 0, err
		}
		pred := model.Predict(prof, []core.Competitor{core.CompetitorFromMeasurement(benchSolo)})
		preds = append(preds, pred.Throughput)
		truths = append(truths, truth.Throughput)
	}
	return ml.MAPE(preds, truths), nil
}

// accStats renders MAPE / ±5% / ±10% accuracy for a prediction set.
type accStats struct {
	preds, truths []float64
}

func (a *accStats) add(pred, truth float64) {
	a.preds = append(a.preds, pred)
	a.truths = append(a.truths, truth)
}

func (a *accStats) mape() float64  { return ml.MAPE(a.preds, a.truths) }
func (a *accStats) acc5() float64  { return ml.AccWithin(a.preds, a.truths, 0.05) }
func (a *accStats) acc10() float64 { return ml.AccWithin(a.preds, a.truths, 0.10) }

// ape returns the absolute percentage error.
func ape(pred, truth float64) float64 {
	if truth == 0 {
		return 0
	}
	return 100 * math.Abs(pred-truth) / truth
}
