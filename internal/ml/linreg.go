package ml

import (
	"fmt"
	"math"
)

// LinearModel is an ordinary-least-squares linear regressor with
// intercept, y = Intercept + Coef·x. The paper uses linear regression to
// fit the accelerator model's (t₀, a) parameters (§5.1.1).
type LinearModel struct {
	Coef      []float64
	Intercept float64
}

// FitLinear fits y ≈ b0 + b·x by solving the (optionally ridge-damped)
// normal equations with Gaussian elimination. ridge stabilizes
// near-collinear designs; 0 is plain OLS.
func FitLinear(X [][]float64, y []float64, ridge float64) (*LinearModel, error) {
	n := len(X)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("ml: FitLinear with %d rows, %d targets", n, len(y))
	}
	d := len(X[0])
	// Augmented design: leading 1 for the intercept.
	k := d + 1
	// A = XᵀX (+ ridge·I on non-intercept terms), b = Xᵀy.
	A := make([][]float64, k)
	for i := range A {
		A[i] = make([]float64, k)
	}
	b := make([]float64, k)
	row := make([]float64, k)
	for s := 0; s < n; s++ {
		if len(X[s]) != d {
			return nil, fmt.Errorf("ml: FitLinear row %d has %d features, want %d", s, len(X[s]), d)
		}
		row[0] = 1
		copy(row[1:], X[s])
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				A[i][j] += row[i] * row[j]
			}
			b[i] += row[i] * y[s]
		}
	}
	for i := 1; i < k; i++ {
		A[i][i] += ridge
	}
	sol, err := solveGaussian(A, b)
	if err != nil {
		return nil, err
	}
	return &LinearModel{Intercept: sol[0], Coef: sol[1:]}, nil
}

// Predict evaluates the model at x.
func (m *LinearModel) Predict(x []float64) float64 {
	y := m.Intercept
	for i, c := range m.Coef {
		if i < len(x) {
			y += c * x[i]
		}
	}
	return y
}

// solveGaussian solves A·x = b with partial pivoting, destroying A and b.
func solveGaussian(A [][]float64, b []float64) ([]float64, error) {
	k := len(A)
	for col := 0; col < k; col++ {
		// Pivot.
		best := col
		for r := col + 1; r < k; r++ {
			if math.Abs(A[r][col]) > math.Abs(A[best][col]) {
				best = r
			}
		}
		if math.Abs(A[best][col]) < 1e-12 {
			return nil, fmt.Errorf("ml: singular design matrix at column %d", col)
		}
		A[col], A[best] = A[best], A[col]
		b[col], b[best] = b[best], b[col]
		// Eliminate.
		for r := col + 1; r < k; r++ {
			f := A[r][col] / A[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < k; c++ {
				A[r][c] -= f * A[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	// Back-substitute.
	x := make([]float64, k)
	for i := k - 1; i >= 0; i-- {
		sum := b[i]
		for j := i + 1; j < k; j++ {
			sum -= A[i][j] * x[j]
		}
		x[i] = sum / A[i][i]
	}
	return x, nil
}
