// Trafficsweep: show why traffic awareness matters. A FlowStats model is
// evaluated under the same memory contention while the flow count sweeps
// far from the training default; Yala tracks the sensitivity change,
// SLOMO's fixed-profile model (even extrapolated) drifts — the Fig. 3/7b
// phenomenon.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/nfbench"
	"repro/internal/nicsim"
	"repro/internal/slomo"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

func main() {
	tb := testbed.New(nicsim.BlueField2(), 5)
	fmt.Println("training Yala and SLOMO models for FlowStats...")
	yala, err := core.NewTrainer(tb, core.DefaultTrainConfig()).Train("FlowStats")
	if err != nil {
		log.Fatal(err)
	}
	sl, err := slomo.Train(tb, "FlowStats", traffic.Default, slomo.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	const car, wss = 140e6, 10 << 20
	benchSolo, err := tb.RunSolo(nfbench.MemBench(car, wss))
	if err != nil {
		log.Fatal(err)
	}
	comp := core.CompetitorFromMeasurement(benchSolo)

	fmt.Printf("\n%8s  %10s  %10s  %10s  %8s  %8s\n",
		"flows", "truth", "yala", "slomo", "yala-err", "slomo-err")
	for _, flows := range []float64{2000, 8000, 16000, 32000, 64000, 128000, 256000, 500000} {
		prof := traffic.Default.With(traffic.AttrFlows, flows)
		w, err := tb.Workload("FlowStats", prof)
		if err != nil {
			log.Fatal(err)
		}
		truth, err := tb.WithMemBench(w, car, wss)
		if err != nil {
			log.Fatal(err)
		}
		soloNew, err := tb.RunSolo(w)
		if err != nil {
			log.Fatal(err)
		}
		yp := yala.Predict(prof, []core.Competitor{comp}).Throughput
		sp := sl.PredictExtrapolated(benchSolo.Counters, soloNew.Throughput)
		t := truth.Throughput
		fmt.Printf("%8.0f  %10.3f  %10.3f  %10.3f  %7.1f%%  %7.1f%%\n",
			flows, t/1e6, yp/1e6, sp/1e6,
			100*math.Abs(yp-t)/t, 100*math.Abs(sp-t)/t)
	}
}
