// Package packet provides a minimal but real packet representation used by
// the network functions: Ethernet/IPv4/TCP/UDP header construction and
// parsing over raw bytes, plus the FiveTuple flow key.
//
// NFs in this repository operate on actual packet bytes (parse headers,
// rewrite addresses, scan payloads), so the substrate exercises the same
// code paths a DPDK/Click NF would.
package packet

import (
	"encoding/binary"
	"fmt"
)

// Header sizes and offsets for the fixed-size headers we generate.
const (
	EthHeaderLen  = 14
	IPv4HeaderLen = 20
	TCPHeaderLen  = 20
	UDPHeaderLen  = 8

	// EtherTypeIPv4 is the Ethernet type for IPv4 payloads.
	EtherTypeIPv4 = 0x0800

	// ProtoTCP and ProtoUDP are IPv4 protocol numbers.
	ProtoTCP = 6
	ProtoUDP = 17
)

// FiveTuple identifies a flow.
type FiveTuple struct {
	SrcIP   uint32
	DstIP   uint32
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// String renders the tuple in a dotted-quad form, useful in logs and tests.
func (t FiveTuple) String() string {
	return fmt.Sprintf("%s:%d->%s:%d/%d",
		ipString(t.SrcIP), t.SrcPort, ipString(t.DstIP), t.DstPort, t.Proto)
}

func ipString(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// Hash returns a 64-bit hash of the tuple (FNV-1a over the 13 key bytes).
// NFs use it to index their flow tables.
func (t FiveTuple) Hash() uint64 {
	var b [13]byte
	binary.BigEndian.PutUint32(b[0:], t.SrcIP)
	binary.BigEndian.PutUint32(b[4:], t.DstIP)
	binary.BigEndian.PutUint16(b[8:], t.SrcPort)
	binary.BigEndian.PutUint16(b[10:], t.DstPort)
	b[12] = t.Proto
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// Packet is a raw frame plus a parsed view. Data holds the full frame
// starting at the Ethernet header.
type Packet struct {
	Data []byte

	// Parsed view, valid after Parse.
	Tuple      FiveTuple
	PayloadOff int // offset of L4 payload within Data
}

// Build constructs an Ethernet+IPv4+L4 frame of exactly size bytes carrying
// payload (truncated or zero-padded to fit). size must leave room for the
// headers; Build panics otherwise, since callers control sizes.
func Build(t FiveTuple, size int, payload []byte) *Packet {
	l4len := TCPHeaderLen
	if t.Proto == ProtoUDP {
		l4len = UDPHeaderLen
	}
	hdr := EthHeaderLen + IPv4HeaderLen + l4len
	if size < hdr {
		panic(fmt.Sprintf("packet: size %d smaller than headers %d", size, hdr))
	}
	data := make([]byte, size)

	// Ethernet: synthetic MACs, IPv4 ethertype.
	copy(data[0:6], []byte{0x02, 0, 0, 0, 0, 1})
	copy(data[6:12], []byte{0x02, 0, 0, 0, 0, 2})
	binary.BigEndian.PutUint16(data[12:], EtherTypeIPv4)

	// IPv4.
	ip := data[EthHeaderLen:]
	ip[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(ip[2:], uint16(size-EthHeaderLen))
	ip[8] = 64 // TTL
	ip[9] = t.Proto
	binary.BigEndian.PutUint32(ip[12:], t.SrcIP)
	binary.BigEndian.PutUint32(ip[16:], t.DstIP)
	binary.BigEndian.PutUint16(ip[10:], 0)
	binary.BigEndian.PutUint16(ip[10:], ipChecksum(ip[:IPv4HeaderLen]))

	// L4.
	l4 := ip[IPv4HeaderLen:]
	binary.BigEndian.PutUint16(l4[0:], t.SrcPort)
	binary.BigEndian.PutUint16(l4[2:], t.DstPort)
	if t.Proto == ProtoTCP {
		l4[12] = 5 << 4 // data offset
	} else {
		binary.BigEndian.PutUint16(l4[4:], uint16(size-EthHeaderLen-IPv4HeaderLen))
	}

	off := hdr
	copy(data[off:], payload)

	return &Packet{Data: data, Tuple: t, PayloadOff: off}
}

// Parse decodes the headers in p.Data, filling Tuple and PayloadOff.
// It returns an error for truncated or non-IPv4 frames.
func (p *Packet) Parse() error {
	if len(p.Data) < EthHeaderLen+IPv4HeaderLen {
		return fmt.Errorf("packet: truncated frame (%d bytes)", len(p.Data))
	}
	if et := binary.BigEndian.Uint16(p.Data[12:]); et != EtherTypeIPv4 {
		return fmt.Errorf("packet: unsupported ethertype %#04x", et)
	}
	ip := p.Data[EthHeaderLen:]
	if v := ip[0] >> 4; v != 4 {
		return fmt.Errorf("packet: unsupported IP version %d", v)
	}
	ihl := int(ip[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(ip) < ihl {
		return fmt.Errorf("packet: bad IHL %d", ihl)
	}
	p.Tuple.Proto = ip[9]
	p.Tuple.SrcIP = binary.BigEndian.Uint32(ip[12:])
	p.Tuple.DstIP = binary.BigEndian.Uint32(ip[16:])

	l4 := ip[ihl:]
	var l4len int
	switch p.Tuple.Proto {
	case ProtoTCP:
		l4len = TCPHeaderLen
	case ProtoUDP:
		l4len = UDPHeaderLen
	default:
		return fmt.Errorf("packet: unsupported protocol %d", p.Tuple.Proto)
	}
	if len(l4) < l4len {
		return fmt.Errorf("packet: truncated L4 header")
	}
	p.Tuple.SrcPort = binary.BigEndian.Uint16(l4[0:])
	p.Tuple.DstPort = binary.BigEndian.Uint16(l4[2:])
	p.PayloadOff = EthHeaderLen + ihl + l4len
	return nil
}

// Payload returns the L4 payload bytes. Parse (or Build) must have run.
func (p *Packet) Payload() []byte {
	if p.PayloadOff <= 0 || p.PayloadOff > len(p.Data) {
		return nil
	}
	return p.Data[p.PayloadOff:]
}

// Len returns the total frame length in bytes.
func (p *Packet) Len() int { return len(p.Data) }

// SetDstIP rewrites the IPv4 destination address and fixes the checksum.
func (p *Packet) SetDstIP(ip uint32) {
	hdr := p.Data[EthHeaderLen : EthHeaderLen+IPv4HeaderLen]
	binary.BigEndian.PutUint32(hdr[16:], ip)
	p.Tuple.DstIP = ip
	p.reIPChecksum(hdr)
}

// SetSrcIP rewrites the IPv4 source address and fixes the checksum.
func (p *Packet) SetSrcIP(ip uint32) {
	hdr := p.Data[EthHeaderLen : EthHeaderLen+IPv4HeaderLen]
	binary.BigEndian.PutUint32(hdr[12:], ip)
	p.Tuple.SrcIP = ip
	p.reIPChecksum(hdr)
}

// DecTTL decrements the IPv4 TTL, fixing the checksum, and reports whether
// the packet is still live (TTL > 0).
func (p *Packet) DecTTL() bool {
	hdr := p.Data[EthHeaderLen : EthHeaderLen+IPv4HeaderLen]
	if hdr[8] == 0 {
		return false
	}
	hdr[8]--
	p.reIPChecksum(hdr)
	return hdr[8] > 0
}

func (p *Packet) reIPChecksum(hdr []byte) {
	binary.BigEndian.PutUint16(hdr[10:], 0)
	binary.BigEndian.PutUint16(hdr[10:], ipChecksum(hdr))
}

// ipChecksum computes the standard Internet checksum over hdr, which must
// have the checksum field zeroed.
func ipChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(hdr[i:]))
	}
	if len(hdr)%2 == 1 {
		sum += uint32(hdr[len(hdr)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// VerifyIPChecksum reports whether the IPv4 header checksum in p is valid.
func (p *Packet) VerifyIPChecksum() bool {
	if len(p.Data) < EthHeaderLen+IPv4HeaderLen {
		return false
	}
	hdr := p.Data[EthHeaderLen : EthHeaderLen+IPv4HeaderLen]
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(hdr[i:]))
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return uint16(sum) == 0xffff
}
