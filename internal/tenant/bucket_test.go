package tenant

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBucketProperty drives a bucket with randomized clock steps and
// checks the defining invariant at every point: total grants never
// exceed burst + rate·elapsed (plus one token of quantization slack).
func TestBucketProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		rate := 1 + rng.Float64()*200
		burst := 1 + rng.Float64()*50
		b := NewBucket(rate, burst)
		start := time.Unix(1000, 0)
		now := start
		granted := 0
		for step := 0; step < 2000; step++ {
			// Mostly tight loops, occasionally an idle gap.
			if rng.Intn(10) == 0 {
				now = now.Add(time.Duration(rng.Intn(200)) * time.Millisecond)
			} else {
				now = now.Add(time.Duration(rng.Intn(500)) * time.Microsecond)
			}
			ok, retry := b.Allow(now)
			if ok {
				granted++
				if retry != 0 {
					t.Fatalf("trial %d: granted request carries retryAfter %v", trial, retry)
				}
			} else if retry <= 0 {
				t.Fatalf("trial %d: denied request has non-positive retryAfter %v", trial, retry)
			}
			elapsed := now.Sub(start).Seconds()
			if limit := b.Burst() + b.Rate()*elapsed + 1; float64(granted) > limit {
				t.Fatalf("trial %d: granted %d > burst(%.3f) + rate(%.3f)·%.3fs",
					trial, granted, b.Burst(), b.Rate(), elapsed)
			}
		}
	}
}

// TestBucketRetryAfter pins the advertised wait: draining the burst
// then asking again must advertise roughly one token's refill time, and
// waiting that long must actually admit the next request.
func TestBucketRetryAfter(t *testing.T) {
	b := NewBucket(2, 1) // 1 burst, 2 tokens/sec
	now := time.Unix(0, 0)
	if ok, _ := b.Allow(now); !ok {
		t.Fatal("fresh bucket denied its burst")
	}
	ok, retry := b.Allow(now)
	if ok {
		t.Fatal("empty bucket granted a token")
	}
	if retry <= 0 || retry > 500*time.Millisecond {
		t.Fatalf("retryAfter = %v, want (0, 500ms]", retry)
	}
	if ok, _ := b.Allow(now.Add(retry)); !ok {
		t.Fatalf("request denied after waiting the advertised %v", retry)
	}
}

// TestBucketBackwardClock feeds out-of-order timestamps (concurrent
// callers racing past each other): the bucket must never refill
// backwards or go negative.
func TestBucketBackwardClock(t *testing.T) {
	b := NewBucket(1000, 5)
	base := time.Unix(0, 0)
	granted := 0
	for i := 0; i < 100; i++ {
		ts := base
		if i%2 == 0 {
			ts = base.Add(-time.Duration(i) * time.Millisecond)
		}
		if ok, _ := b.Allow(ts); ok {
			granted++
		}
	}
	if granted > 5 {
		t.Fatalf("granted %d with a frozen/backward clock, want ≤ burst 5", granted)
	}
}

// TestBucketConcurrentHammer is the -race hammer: many goroutines
// slamming one bucket with the real clock. Grants across the run must
// stay within burst + rate·elapsed (measured generously), and the
// balance must never go negative (checked via the invariant that a
// denial's retryAfter never exceeds one full token's refill time —
// tokens below -ε would advertise longer).
func TestBucketConcurrentHammer(t *testing.T) {
	const (
		rate  = 500.0
		burst = 20.0
		goros = 16
		iters = 2000
	)
	b := NewBucket(rate, burst)
	var granted atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < goros; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				ok, retry := b.Allow(time.Now())
				if ok {
					granted.Add(1)
				} else if retry > time.Second/time.Duration(rate)+10*time.Millisecond {
					t.Errorf("retryAfter %v implies a negative balance", retry)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	limit := burst + rate*elapsed + 1
	if g := float64(granted.Load()); g > limit {
		t.Fatalf("granted %.0f > burst + rate·elapsed = %.1f (elapsed %.3fs)", g, limit, elapsed)
	}
}
