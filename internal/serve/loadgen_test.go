package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/pkg/yalaclient"
)

// TestPercentile pins the quantile edge cases: the empty slice, exact
// boundary quantiles, one-element slices (p99 of one sample is that
// sample) and out-of-range p must all read without indexing out of
// range.
func TestPercentile(t *testing.T) {
	ms := func(vs ...int) []time.Duration {
		out := make([]time.Duration, len(vs))
		for i, v := range vs {
			out[i] = time.Duration(v) * time.Millisecond
		}
		return out
	}
	cases := []struct {
		name   string
		sorted []time.Duration
		p      float64
		want   time.Duration
	}{
		{"empty p50", nil, 0.50, 0},
		{"empty p0", ms(), 0.0, 0},
		{"empty p100", ms(), 1.0, 0},
		{"one element p0", ms(7), 0.0, 7 * time.Millisecond},
		{"one element p50", ms(7), 0.50, 7 * time.Millisecond},
		{"one element p99", ms(7), 0.99, 7 * time.Millisecond},
		{"one element p100", ms(7), 1.0, 7 * time.Millisecond},
		{"two elements p0 is min", ms(1, 9), 0.0, 1 * time.Millisecond},
		{"two elements p100 is max", ms(1, 9), 1.0, 9 * time.Millisecond},
		{"ten elements p50", ms(1, 2, 3, 4, 5, 6, 7, 8, 9, 10), 0.50, 5 * time.Millisecond},
		{"ten elements p99", ms(1, 2, 3, 4, 5, 6, 7, 8, 9, 10), 0.99, 9 * time.Millisecond},
		{"negative p clamps to min", ms(1, 9), -0.5, 1 * time.Millisecond},
		{"p beyond 1 clamps to max", ms(1, 9), 1.5, 9 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := percentile(tc.sorted, tc.p); got != tc.want {
			t.Errorf("%s: percentile(%v, %g) = %v, want %v", tc.name, tc.sorted, tc.p, got, tc.want)
		}
	}
}

// TestCounterDelta: monotonic-counter deltas degrade to the raw after
// value on a mid-run counter reset instead of wrapping unsigned.
func TestCounterDelta(t *testing.T) {
	cases := []struct{ after, before, want uint64 }{
		{10, 3, 7},
		{3, 3, 0},
		{2, 10, 2}, // reset between snapshots
		{0, 5, 0},
	}
	for _, tc := range cases {
		if got := counterDelta(tc.after, tc.before); got != tc.want {
			t.Errorf("counterDelta(%d, %d) = %d, want %d", tc.after, tc.before, got, tc.want)
		}
	}
}

// TestStageBreakdown: the before/after /metrics delta becomes per-stage
// attribution — untouched stages vanish, counter resets are dropped
// instead of reported from garbage, and quantiles come off the delta
// histogram.
func TestStageBreakdown(t *testing.T) {
	scrape := func(text string) yalaclient.MetricsSnapshot { return yalaclient.ScrapeMetrics(text) }
	before := scrape(`
yala_stage_seconds_bucket{stage="decode",le="0.001"} 10
yala_stage_seconds_bucket{stage="decode",le="0.01"} 10
yala_stage_seconds_bucket{stage="decode",le="+Inf"} 10
yala_stage_seconds_sum{stage="decode"} 0.005
yala_stage_seconds_count{stage="decode"} 10
yala_stage_seconds_bucket{stage="cache",le="0.001"} 5
yala_stage_seconds_bucket{stage="cache",le="+Inf"} 5
yala_stage_seconds_sum{stage="cache"} 0.001
yala_stage_seconds_count{stage="cache"} 5
yala_stage_seconds_bucket{stage="reset",le="+Inf"} 100
yala_stage_seconds_count{stage="reset"} 100
`)
	after := scrape(`
yala_stage_seconds_bucket{stage="decode",le="0.001"} 20
yala_stage_seconds_bucket{stage="decode",le="0.01"} 30
yala_stage_seconds_bucket{stage="decode",le="+Inf"} 30
yala_stage_seconds_sum{stage="decode"} 0.105
yala_stage_seconds_count{stage="decode"} 30
yala_stage_seconds_bucket{stage="cache",le="0.001"} 5
yala_stage_seconds_bucket{stage="cache",le="+Inf"} 5
yala_stage_seconds_sum{stage="cache"} 0.001
yala_stage_seconds_count{stage="cache"} 5
yala_stage_seconds_bucket{stage="reset",le="+Inf"} 3
yala_stage_seconds_count{stage="reset"} 3
`)
	stages := stageBreakdown(before, after)
	if len(stages) != 1 || stages[0].Stage != "decode" {
		t.Fatalf("stages = %+v, want exactly the decode stage (cache untouched, reset dropped)", stages)
	}
	d := stages[0]
	if d.Count != 20 {
		t.Fatalf("decode count = %d, want 20", d.Count)
	}
	// sum delta 0.1s over 20 spans → 5ms average (within float rounding).
	if diff := d.Avg - 5*time.Millisecond; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("decode avg = %v, want ~5ms", d.Avg)
	}
	// Delta histogram: 10 spans ≤1ms, 10 more ≤10ms → p50 at the 1ms
	// boundary, p99 inside the (1ms, 10ms] bucket.
	if d.P50 != time.Millisecond {
		t.Fatalf("decode p50 = %v, want 1ms", d.P50)
	}
	if d.P99 <= time.Millisecond || d.P99 > 10*time.Millisecond {
		t.Fatalf("decode p99 = %v, want within (1ms, 10ms]", d.P99)
	}
}

// TestLoadgenReportsServerErrors is the regression test for the CI gate:
// a run that recorded server errors must return a non-nil error (so
// `yala loadgen` exits nonzero) while still carrying the counts.
func TestLoadgenReportsServerErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	defer ts.Close()

	rep, err := Loadgen(LoadgenConfig{URL: ts.URL, Workers: 2, Requests: 10})
	if err == nil {
		t.Fatal("loadgen against an erroring server returned nil error")
	}
	if rep.Errors != 10 || rep.Requests != 10 {
		t.Fatalf("errors/requests = %d/%d, want 10/10", rep.Errors, rep.Requests)
	}
}

// TestLoadgenTenantMode: the hostile flooder's 429s land in the shed
// column of its own row — never in Errors, never in the quiet tenant's
// row — and the run as a whole still exits clean.
func TestLoadgenTenantMode(t *testing.T) {
	// A server that admits the hot tenant twice, then sheds it; every
	// other key is always served.
	var hotCalls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Authorization") == "Bearer k-hot" && hotCalls.Add(1) > 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":{"code":"resource_exhausted","message":"shed"}}`))
			return
		}
		fmt.Fprint(w, `{}`)
	}))
	defer ts.Close()

	rep, err := Loadgen(LoadgenConfig{
		URL:        ts.URL,
		Workers:    4,
		Requests:   40,
		TenantKeys: []string{"k-quiet", "k-hot"},
		HotTenant:  1,
		QuietRPS:   200,
	})
	if err != nil {
		t.Fatalf("tenant-mode run with only 429s must not error: %v", err)
	}
	if rep.Requests != 40 || rep.Errors != 0 {
		t.Fatalf("requests/errors = %d/%d, want 40/0", rep.Requests, rep.Errors)
	}
	if rep.Shed != 18 {
		t.Fatalf("shed = %d, want 18 (20 hot requests minus 2 admitted)", rep.Shed)
	}
	if len(rep.Tenants) != 2 {
		t.Fatalf("tenant rows: %+v", rep.Tenants)
	}
	q, h := rep.Tenants[0], rep.Tenants[1]
	if q.Key != "k-quiet" || q.Hot || q.OK != 20 || q.Shed != 0 || q.Errors != 0 {
		t.Fatalf("quiet row %+v", q)
	}
	if q.RPS <= 0 || q.P99 <= 0 {
		t.Fatalf("quiet row missing achieved rps/p99: %+v", q)
	}
	if h.Key != "k-hot" || !h.Hot || h.OK != 2 || h.Shed != 18 {
		t.Fatalf("hot row %+v", h)
	}
}

// TestLoadgenTenantModeRealErrors: non-429 failures still fail the run.
func TestLoadgenTenantModeRealErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	defer ts.Close()
	rep, err := Loadgen(LoadgenConfig{
		URL:        ts.URL,
		Workers:    2,
		Requests:   8,
		TenantKeys: []string{"a", "b"},
		HotTenant:  -1,
		QuietRPS:   1000,
	})
	if err == nil {
		t.Fatal("tenant-mode run against an erroring server returned nil error")
	}
	if rep.Errors != 8 || rep.Shed != 0 {
		t.Fatalf("errors/shed = %d/%d, want 8/0", rep.Errors, rep.Shed)
	}
}

// TestLoadgenTransportErrors covers the connection-refused flavor: the
// run must fail, not silently report zero throughput.
func TestLoadgenTransportErrors(t *testing.T) {
	// A closed server: every request fails at the transport.
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close()

	rep, err := Loadgen(LoadgenConfig{URL: url, Workers: 2, Requests: 4})
	if err == nil {
		t.Fatal("loadgen against a dead server returned nil error")
	}
	if rep.Errors != 4 {
		t.Fatalf("errors = %d, want 4", rep.Errors)
	}
}
