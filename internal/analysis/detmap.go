package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DefaultCriticalPackages are the replay-determinism-critical packages:
// everything a recorded trace's bit-identical replay flows through. A
// map iteration or wall-clock read here can silently change scheduling
// outcomes between two runs of the same scenario.
var DefaultCriticalPackages = []string{
	"internal/sim",
	"internal/placement",
	"internal/trace",
	"internal/cluster",
	"internal/wire",
}

// keyCollectionOnly recognizes the one blessed map-range shape: a loop
// whose body does nothing but append the key to a slice —
//
//	for k := range m { keys = append(keys, k) }
//
// the first half of the iterate-sorted-keys idiom. Its iteration order
// cannot be observed, so flagging it would force an ignore onto the
// exact pattern the analyzer exists to encourage.
func keyCollectionOnly(rs *ast.RangeStmt) bool {
	if rs.Value != nil || rs.Body == nil || len(rs.Body.List) != 1 {
		return false
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	return ok && arg.Name == key.Name
}

// inPackages reports whether the pass's package path, stripped of the
// module prefix, is one of rels or nested under one.
func inPackages(pass *Pass, rels []string) bool {
	path := pass.Pkg.Path
	if rest, ok := strings.CutPrefix(path, pass.Loader.ModPath+"/"); ok {
		path = rest
	}
	for _, r := range rels {
		if path == r || strings.HasPrefix(path, r+"/") {
			return true
		}
	}
	return false
}

// Detmap flags `range` over a map in determinism-critical packages. Map
// iteration order is randomized per run; deterministic code must
// collect the keys, sort them, and range over the slice. Provably
// order-independent loops (pure counting, commutative folds reviewed by
// a human) carry a //yalalint:ignore detmap annotation instead.
func Detmap(critical ...string) *Analyzer {
	if critical == nil {
		critical = DefaultCriticalPackages
	}
	return &Analyzer{
		Name: "detmap",
		Doc:  "forbids range over a map in determinism-critical packages; iterate sorted keys instead",
		Run: func(pass *Pass) {
			if !inPackages(pass, critical) {
				return
			}
			for _, f := range pass.Pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					rs, ok := n.(*ast.RangeStmt)
					if !ok {
						return true
					}
					t := pass.TypeOf(rs.X)
					if t == nil {
						return true
					}
					if m, ok := t.Underlying().(*types.Map); ok && !keyCollectionOnly(rs) {
						pass.Reportf(rs.For, "range over %s iterates in nondeterministic order; range over sorted keys instead",
							types.TypeString(m, types.RelativeTo(pass.Pkg.Types)))
					}
					return true
				})
			}
		},
	}
}
