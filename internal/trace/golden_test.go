package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/backend"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/nicsim"
	"repro/internal/profiling"
	"repro/internal/slomo"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

// update regenerates the golden files:
//
//	go test ./internal/trace -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden trace and report files")

const (
	goldenTrace   = "testdata/golden.trace.jsonl"
	goldenReports = "testdata/golden_reports.json"
)

// goldenScenario is the committed reference scenario: a mixed
// bluefield2/pensando fleet under churn with drift — small enough to
// replay in seconds, rich enough to exercise class-aware scheduling,
// rollbacks, migrations and evictions.
func goldenScenario() cluster.Scenario {
	return cluster.Scenario{
		Classes:   []cluster.ClassSpec{{Class: "bluefield2", Count: 3}, {Class: "pensando", Count: 1}},
		Arrivals:  24,
		Seed:      7,
		NFs:       goldenNFs,
		Profiles:  2,
		DriftProb: 0.5,
	}.WithDefaults()
}

var goldenNFs = []string{"FlowStats", "ACL"}

var (
	modelsOnce sync.Once
	tinyModels cluster.MapModels
	modelsErr  error
)

// testModels trains minimal-cost Yala and SLOMO models once per test
// binary. Accuracy is irrelevant — the golden tests pin determinism and
// orchestration, not model quality — but training is fully deterministic
// (seeded profiling plan, seeded GBR), which is what makes a committed
// expected report meaningful.
func testModels(t testing.TB) cluster.MapModels {
	t.Helper()
	modelsOnce.Do(func() {
		tb := testbed.New(nicsim.BlueField2(), 1)
		cfg := core.DefaultTrainConfig()
		cfg.Seed = 1
		cfg.Plan = profiling.Random(12, 1)
		cfg.PatternProbes = 1
		cfg.GBR = ml.GBRConfig{Trees: 25, LearningRate: 0.15, MaxDepth: 3, MinLeaf: 2, Subsample: 1, Seed: 1}
		scfg := slomo.DefaultConfig()
		scfg.Seed = 1
		scfg.Samples = 12
		scfg.GBR = cfg.GBR
		tinyModels = cluster.MapModels{"yala": {}, "slomo": {}}
		for _, name := range goldenNFs {
			m, err := core.NewTrainer(tb, cfg).Train(name)
			if err != nil {
				modelsErr = err
				return
			}
			tinyModels["yala"][name] = backend.WrapYala(m)
			sm, err := slomo.Train(tb, name, traffic.Default, scfg)
			if err != nil {
				modelsErr = err
				return
			}
			tinyModels["slomo"][name] = backend.WrapSLOMO(sm)
		}
	})
	if modelsErr != nil {
		t.Fatalf("training test models: %v", modelsErr)
	}
	return tinyModels
}

// goldenRun replays a trace under every built-in policy on a fresh
// environment and renders the comparison with wall-clock latencies
// zeroed — the deterministic projection the golden file stores.
func goldenRun(t *testing.T, tr Trace) []byte {
	t.Helper()
	env := cluster.NewEnv(nicsim.BlueField2(), 1, testModels(t))
	cmp, err := cluster.RunStream(context.Background(), env, tr.Scenario, tr.Stream, cluster.Policies())
	if err != nil {
		t.Fatal(err)
	}
	for i := range cmp.Results {
		cmp.Results[i].DecisionP50 = 0
		cmp.Results[i].DecisionP99 = 0
	}
	data, err := json.MarshalIndent(cmp.Results, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(data, '\n')
}

// TestGoldenReplay is the determinism/regression gate for the whole
// stack: the committed trace must decode, replay under every policy, and
// reproduce the committed per-policy reports byte for byte — admits,
// rollbacks, migrations, evictions and violations exactly. Any scheduler
// or simulator change that shifts an outcome fails here and must either
// be fixed or consciously re-baselined with -update.
func TestGoldenReplay(t *testing.T) {
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenTrace), 0o755); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		tr, err := Record(&buf, goldenScenario())
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenTrace, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenReports, goldenRun(t, tr), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s and %s", goldenTrace, goldenReports)
		return
	}

	raw, err := os.ReadFile(goldenTrace)
	if err != nil {
		t.Fatalf("reading committed trace (regenerate with -update): %v", err)
	}
	tr, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("committed trace no longer decodes: %v", err)
	}

	// The committed trace must itself be canonical: re-encoding it must
	// reproduce the file, and re-generating from the scenario must too —
	// the generator, the schema and the file all agree.
	var reenc bytes.Buffer
	if err := Write(&reenc, tr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, reenc.Bytes()) {
		t.Fatal("committed trace is not canonical (decode→encode differs)")
	}
	var regen bytes.Buffer
	if _, err := Record(&regen, goldenScenario()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, regen.Bytes()) {
		t.Fatal("stream generator no longer reproduces the committed trace (re-baseline with -update if intended)")
	}

	want, err := os.ReadFile(goldenReports)
	if err != nil {
		t.Fatalf("reading committed reports (regenerate with -update): %v", err)
	}
	got := goldenRun(t, tr)
	if !bytes.Equal(got, want) {
		t.Fatalf("golden replay diverged from committed reports (re-baseline with -update if intended)\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
}
