package placement

import (
	"testing"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/nicsim"
	"repro/internal/sim"
	"repro/internal/slomo"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

// testArrivals builds a deterministic arrival sequence over memory-only
// NFs (fast to model and to co-run).
func testArrivals(n int, seed uint64) []Arrival {
	names := []string{"FlowStats", "ACL", "FlowClassifier", "FlowTracker"}
	rng := sim.NewRNG(seed)
	seq := make([]Arrival, n)
	for i := range seq {
		seq[i] = Arrival{
			Name:    names[rng.Intn(len(names))],
			Profile: traffic.Default,
			SLA:     0.05 + 0.15*rng.Float64(),
		}
	}
	return seq
}

// buildSim trains models for the test NF pool and installs them through
// the backend interface; the raw Yala models are returned too, for
// tests that pin the simulator against the predictor invoked directly.
func buildSim(t *testing.T) (*Simulator, map[string]*core.Model) {
	t.Helper()
	tb := testbed.New(nicsim.BlueField2(), 31)
	names := []string{"FlowStats", "ACL", "FlowClassifier", "FlowTracker"}
	s := NewSimulator(tb)
	yala := map[string]*core.Model{}
	trainCfg := core.DefaultTrainConfig()
	for _, n := range names {
		m, err := core.NewTrainer(tb, trainCfg).Train(n)
		if err != nil {
			t.Fatal(err)
		}
		yala[n] = m
		s.SetModel("yala", n, backend.WrapYala(m))
		sm, err := slomo.Train(tb, n, traffic.Default, slomo.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		s.SetModel("slomo", n, backend.WrapSLOMO(sm))
	}
	return s, yala
}

func TestPlacementStrategies(t *testing.T) {
	if testing.Short() {
		t.Skip("placement integration test is slow")
	}
	s, _ := buildSim(t)
	seq := testArrivals(40, 1)

	mono, err := s.Place(seq, Monopolization)
	if err != nil {
		t.Fatal(err)
	}
	if mono.NICsUsed != len(seq) {
		t.Fatalf("monopolization used %d NICs, want %d", mono.NICsUsed, len(seq))
	}
	if mono.Violations != 0 {
		t.Fatalf("monopolization violated %d SLAs", mono.Violations)
	}

	greedy, err := s.Place(seq, Greedy)
	if err != nil {
		t.Fatal(err)
	}
	if greedy.NICsUsed >= mono.NICsUsed {
		t.Fatal("greedy should pack tighter than monopolization")
	}

	oracle, err := s.Place(seq, Oracle)
	if err != nil {
		t.Fatal(err)
	}
	if oracle.Violations != 0 {
		t.Fatalf("oracle violated %d SLAs", oracle.Violations)
	}

	yala, err := s.Place(seq, YalaAware)
	if err != nil {
		t.Fatal(err)
	}
	if yala.Violations > greedy.Violations {
		t.Fatalf("yala violations %d exceed greedy %d", yala.Violations, greedy.Violations)
	}
	// Yala should land near the oracle packing.
	if yala.NICsUsed > oracle.NICsUsed*2 {
		t.Fatalf("yala used %d NICs vs oracle %d", yala.NICsUsed, oracle.NICsUsed)
	}

	slomoRes, err := s.Place(seq, SLOMOAware)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("nics: mono=%d greedy=%d oracle=%d yala=%d slomo=%d",
		mono.NICsUsed, greedy.NICsUsed, oracle.NICsUsed, yala.NICsUsed, slomoRes.NICsUsed)
	t.Logf("violations: greedy=%d yala=%d slomo=%d",
		greedy.Violations, yala.Violations, slomoRes.Violations)
}

// TestFeasibleBatchMatchesFeasible pins the batched scheduler primitive
// to the per-set reference: identical verdicts over a spread of resident
// sets, candidates and strategies — including sets at and over core
// capacity, and the Oracle fallback.
func TestFeasibleBatchMatchesFeasible(t *testing.T) {
	if testing.Short() {
		t.Skip("model training is slow")
	}
	s, _ := buildSim(t)
	pool := testArrivals(10, 7)
	sets := [][]Arrival{
		nil,
		{pool[0]},
		{pool[1], pool[2]},
		{pool[3], pool[4], pool[5]},
		pool[:4],
		pool[:5], // over the 4-per-NIC core budget → infeasible on cores
		{pool[6], pool[6]},
	}
	for _, strat := range []Strategy{YalaAware, SLOMOAware, Oracle} {
		for k, cand := range pool[6:9] {
			got, err := s.FeasibleBatch(sets, cand, strat)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(sets) {
				t.Fatalf("%v: got %d verdicts for %d sets", strat, len(got), len(sets))
			}
			for i, set := range sets {
				want, err := s.Feasible(set, cand, strat)
				if err != nil {
					t.Fatal(err)
				}
				if got[i] != want {
					t.Fatalf("%v candidate %d set %d: batch=%v, per-set=%v", strat, k, i, got[i], want)
				}
			}
		}
	}
	// A missing model surfaces as an error, exactly like Feasible.
	bare := NewSimulator(s.TB)
	if _, err := bare.FeasibleBatch(sets[:3], pool[0], YalaAware); err == nil {
		t.Fatal("expected error without Yala models")
	}
	// An unregistered prediction backend is an error, not a panic.
	if _, err := bare.FeasibleBatch(sets[:3], pool[0], PredictionAware("nope")); err == nil {
		t.Fatal("expected error for unregistered backend")
	}
}

// TestPredictThroughputMatchesPredict checks the allocation-lean fast
// path agrees exactly with the full predictor on composed throughput.
func TestPredictThroughputMatchesPredict(t *testing.T) {
	if testing.Short() {
		t.Skip("model training is slow")
	}
	s, yala := buildSim(t)
	pool := testArrivals(8, 11)
	for _, target := range pool[:3] {
		model := yala[target.Name]
		var comps []core.Competitor
		for _, other := range pool[3:6] {
			m, err := s.solo(other)
			if err != nil {
				t.Fatal(err)
			}
			comps = append(comps, core.CompetitorFromMeasurement(*m))
			full := model.Predict(target.Profile, comps)
			fast := model.PredictThroughput(target.Profile, comps, 0)
			if fast != full.Throughput {
				t.Fatalf("%s with %d comps: fast %g != full %g", target.Name, len(comps), fast, full.Throughput)
			}
			hinted := model.PredictThroughput(target.Profile, comps, full.Solo)
			if hinted != full.Throughput {
				t.Fatalf("%s with %d comps: hinted %g != full %g", target.Name, len(comps), hinted, full.Throughput)
			}
		}
	}
}

func TestPlacementCoreCapacity(t *testing.T) {
	tb := testbed.New(nicsim.BlueField2(), 32)
	s := NewSimulator(tb)
	seq := testArrivals(9, 2)
	res, err := s.Place(seq, Greedy)
	if err != nil {
		t.Fatal(err)
	}
	// 8 cores / 2 per NF = 4 NFs per NIC; 9 NFs need >= 3 NICs.
	if res.NICsUsed < 3 {
		t.Fatalf("used %d NICs for 9 NFs, capacity 4/NIC", res.NICsUsed)
	}
}

func TestPlacementUnknownStrategyModel(t *testing.T) {
	tb := testbed.New(nicsim.BlueField2(), 33)
	s := NewSimulator(tb)
	seq := testArrivals(6, 3)
	if _, err := s.Place(seq, YalaAware); err == nil {
		t.Fatal("expected error without Yala models")
	}
}

func TestStrategyString(t *testing.T) {
	for s, want := range map[Strategy]string{
		Monopolization: "monopolization", Greedy: "greedy",
		SLOMOAware: "slomo", YalaAware: "yala", Oracle: "oracle",
	} {
		if s.String() != want {
			t.Errorf("%v.String() = %q", s, s.String())
		}
	}
}
