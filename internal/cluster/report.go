package cluster

import (
	"context"
	"fmt"
	"strings"
	"time"
)

// Comparison is the result of running one scenario under several
// policies on a shared environment.
type Comparison struct {
	Scenario Scenario       `json:"scenario"`
	Results  []PolicyResult `json:"results"`
}

// Run replays the scenario under each named policy on the shared
// environment and collects the comparison. One environment means one
// model load per NF (via the ModelSource) and one ground-truth
// measurement per distinct co-location across all policies. The context
// cancels the comparison between events.
func Run(ctx context.Context, env *Env, sc Scenario, policies []string) (Comparison, error) {
	sc = sc.WithDefaults()
	if err := sc.Validate(); err != nil {
		return Comparison{}, err
	}
	if len(policies) == 0 {
		policies = Policies()
	}
	if err := env.Prewarm(ctx, sc, policies); err != nil {
		return Comparison{}, err
	}
	cmp := Comparison{Scenario: sc}
	for _, p := range policies {
		sched, err := NewScheduler(p, env, sc.Seed)
		if err != nil {
			return Comparison{}, err
		}
		res, err := env.RunPolicy(ctx, sc, sched)
		if err != nil {
			return Comparison{}, fmt.Errorf("cluster: policy %s: %w", p, err)
		}
		cmp.Results = append(cmp.Results, res)
	}
	return cmp, nil
}

// Table renders the policy comparison for the CLI.
func (c Comparison) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario: %d NICs, %d arrivals, %d NFs × %d profiles, drift %.0f%%, SLA %.0f–%.0f%%, seed %d\n",
		c.Scenario.NICs, c.Scenario.Arrivals, len(c.Scenario.NFs), c.Scenario.Profiles,
		100*c.Scenario.DriftProb, 100*c.Scenario.SLALo, 100*c.Scenario.SLAHi, c.Scenario.Seed)
	fmt.Fprintf(&b, "%-10s %9s %9s %10s %9s %9s %11s %6s %10s %10s\n",
		"policy", "admitted", "rejected", "rollbacks", "migrated", "evicted", "violations", "util", "p50", "p99")
	for _, r := range c.Results {
		fmt.Fprintf(&b, "%-10s %9d %9d %10d %9d %9d %11d %5.1f%% %10v %10v\n",
			r.Policy, r.Admitted, r.Rejected, r.Rollbacks, r.Migrations, r.Evictions,
			r.Violations, 100*r.AvgUtilization,
			r.DecisionP50.Round(time.Microsecond), r.DecisionP99.Round(time.Microsecond))
	}
	return strings.TrimRight(b.String(), "\n")
}
