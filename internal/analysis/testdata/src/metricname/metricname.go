// Package fixture exercises the metricname analyzer against the real
// obs.Registry API.
package fixture

import "repro/internal/obs"

func register(r *obs.Registry, hits func() uint64) {
	// Well-formed names with the three sanctioned prefixes — fine.
	r.Counter("yala_good_total")
	r.Counter("gateway_good_total", "verb", "predict")
	r.Histogram("cluster_good_seconds", nil)

	// Name fails the regex — flagged.
	r.Counter("Bad-Name")
	// Wrong prefix — flagged.
	r.GaugeFunc("mylib_queue_depth", func() float64 { return 0 })

	// Duplicate func registration of one literal series — the second
	// silently replaces the first's read function; flagged at the
	// second site.
	r.CounterFunc("yala_dup_total", hits)
	r.CounterFunc("yala_dup_total", hits)
	// Same family, different literal labels — a distinct series, fine.
	r.CounterFunc("yala_dup_total", hits, "verb", "predict")

	// Computed name — unverifiable, flagged.
	name := "yala_" + "computed_total"
	r.Counter(name)

	// Computed label values sit out the duplicate check (per-tenant
	// loops legitimately re-run one registration site).
	for _, tenant := range []string{"a", "b"} {
		r.CounterFunc("yala_tenant_bytes_total", hits, "tenant", tenant)
	}
}
