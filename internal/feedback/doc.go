// Package feedback closes the loop between served predictions and
// measured ground truth: it ingests throughput measurements, decides
// whether the live model has drifted, retrains a candidate in the
// background, shadow-serves it against live traffic, and promotes it
// atomically once it provably beats the live model.
//
// The lifecycle, per (nf, hw, backend) key:
//
//	ingest ──► drift gate ──► retrain ──► shadow ──► promote
//	   │           │             │           │          │
//	   │           │             │           │          └─ persist + swap model,
//	   │           │             │           │             bump generation
//	   │           │             │           └─ live traffic predicted by BOTH
//	   │           │             │              models; candidate output recorded,
//	   │           │             │              never returned to clients
//	   │           │             └─ candidate trained through the Backend
//	   │           │                interface, calibrated by the gate's
//	   │           │                measured/predicted ratio
//	   │           └─ dDCA-style fusion: a data signal (windowed
//	   │              prediction-error ratio) gated by diagnostic signals
//	   │              (self-consistency, per-source outlier rate) so faulty
//	   │              or hostile measurement bursts are quarantined while
//	   │              genuine shift trips retraining
//	   └─ bounded per-key ring window of measured/predicted ratios
//
// The hard problem is separating real workload shift from bad sensors:
// both look like "measurements disagree with the model". The gate
// borrows the dendritic-cell trick of fusing the data signal with
// diagnostics about the data itself. A genuine hardware or workload
// shift moves *every* source's measurements coherently — the trusted
// median ratio walks away from 1 while the trusted set stays
// self-consistent, and the gate trips. A faulty or hostile source
// disagrees with the consensus — its samples are outliers against the
// window median, the source is quarantined, and the gate reports OK
// off the remaining trusted set. A burst of mutually inconsistent junk
// inflates the trusted set's dispersion (or shrinks the trusted
// fraction), and the gate holds: it refuses to either trip or clear
// until the signal cleans up.
//
// Retraining never touches the serving path: the candidate is
// shadow-served (both models predict, only the live answer leaves the
// process) and promoted only when its cumulative relative error on
// ground-truth-bearing observations beats the live model's over a
// minimum sample count. Promotion is atomic — the registry swaps the
// memoized model in one step, so no request ever observes an empty
// slot — and bumps the model's generation so promotions are externally
// observable via /v2/models and /v2/stats.
package feedback
